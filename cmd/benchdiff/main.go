// Command benchdiff is the benchmark-regression guard around
// internal/benchdiff. It consumes `go test -bench` output on stdin (or
// -in) in two modes:
//
//	go test -bench ... -count=5 | benchdiff -record -out BENCH_PR3.json
//	go test -bench ... -count=5 | benchdiff -baseline BENCH_PR3.json
//
// Record mode reduces the repeated runs to per-benchmark median ns/op
// and writes the baseline JSON. Compare mode (the default) prints a
// per-benchmark delta table and exits 1 if any benchmark's median
// slowed past -threshold (default 0.30 = 30%) or vanished from the
// current run. `make benchrecord` / `make benchdiff` wrap the two.
//
// -metric selects a different result column than ns/op — any custom
// b.ReportMetric unit. The Gauss guard (make gauss-bench) uses
// `-metric conflicts` so the deterministic solver-effort count is what
// is pinned, independent of the CI machine's wall clock.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchdiff"
)

func main() {
	record := flag.Bool("record", false, "record a baseline instead of comparing")
	out := flag.String("out", "", "baseline file to write (record mode)")
	baseline := flag.String("baseline", "", "baseline file to compare against")
	in := flag.String("in", "", "bench output file (default: stdin)")
	threshold := flag.Float64("threshold", 0.30, "relative slowdown that fails the guard")
	note := flag.String("note", "", "note stored in a recorded baseline")
	metric := flag.String("metric", "ns/op", "result column to guard (ns/op or a custom b.ReportMetric unit, e.g. conflicts)")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = f
	}
	samples, err := benchdiff.ParseUnit(src, *metric)
	if err != nil {
		fail(err)
	}
	medians := benchdiff.Summarize(samples)

	if *record {
		if *out == "" {
			fail(fmt.Errorf("-record needs -out"))
		}
		nSamples := 0
		for _, xs := range samples {
			if len(xs) > nSamples {
				nSamples = len(xs)
			}
		}
		b := benchdiff.Baseline{Note: *note, Samples: nSamples, Benchmarks: medians}
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := b.WriteBaseline(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("benchdiff: recorded %d benchmarks (%d samples each) to %s\n",
			len(medians), nSamples, *out)
		return
	}

	if *baseline == "" {
		fail(fmt.Errorf("need -baseline (or -record -out)"))
	}
	f, err := os.Open(*baseline)
	if err != nil {
		fail(err)
	}
	base, err := benchdiff.ReadBaseline(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	deltas, failures := benchdiff.Compare(base.Benchmarks, medians, *threshold)
	for _, d := range deltas {
		d.Unit = *metric
		fmt.Println(d)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed past %.0f%%: %v\n",
			len(failures), 100**threshold, failures)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within %.0f%% of %s\n",
		len(deltas), 100**threshold, *baseline)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
