// Command timeprintd is the streaming reconstruction daemon: it
// accepts timeprint logs — core.WriteLog wire format or JSON job specs
// — over HTTP and answers signal-reconstruction queries with the
// internal/reconstruct engine (see internal/service for the endpoint
// and serving semantics).
//
//	timeprintd -addr :8080 -httpobs :6060
//	timeprintd -addr :8080 -store-dir /var/lib/timeprintd
//	timeprintd -smoke          # self-contained end-to-end smoke test
//
// With -store-dir every ingested wire log — unary request bodies and
// streaming-ingest frames alike — is also appended to a durable
// segmented log store (internal/logstore) keyed by (device, signal,
// epoch), and two forensic endpoints open up: GET /v1/logs lists and
// ranges the stored streams, POST /v1/query replays stored frames
// through the same reconstruction pipeline as live requests. The
// store recovers crash-torn tails on open and enforces retention by
// dropping whole sealed segments (-store-max-segments).
//
// The daemon sheds load with 429 once its admission queue fills,
// enforces per-request deadlines by interrupting the SAT solver
// cooperatively, coalesces concurrent identical requests onto a single
// solve, and drains gracefully on SIGTERM/SIGINT: in-flight requests
// get -drain to finish before connections are closed hard.
//
// -httpobs additionally serves the live metrics registry, expvar and
// net/http/pprof on a second address via obs.Serve; the same /metrics
// and /metrics.txt snapshots are always available on the service
// address itself.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/reconstruct"
	"repro/internal/service"
)

func main() {
	fs := flag.NewFlagSet("timeprintd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "service listen address")
	streamAddr := fs.String("stream", "", "streaming-ingest listen address (persistent TCP, empty disables)")
	obsAddr := fs.String("httpobs", "", "also serve expvar, pprof and live metrics on this address")
	queue := fs.Int("queue", 64, "admission queue depth before load is shed with 429")
	workers := fs.Int("workers", 0, "concurrent SAT solves (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 1024, "LRU result-cache capacity (entries)")
	timeout := fs.Duration("timeout", 10*time.Second, "default per-request solve deadline")
	maxTimeout := fs.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
	maxConflicts := fs.Int64("max-conflicts", 0, "server-side solver conflict budget per solve (0 = unlimited)")
	drain := fs.Duration("drain", 15*time.Second, "graceful-drain budget after SIGTERM")
	sessionMaxK := fs.Int("session-maxk", 16, "largest change count the per-session incremental solver encodes; larger k falls back to one-shot solves")
	noIncremental := fs.Bool("no-incremental", false, "disable per-session solver reuse; every solve builds a fresh SAT instance (ablation)")
	gauss := fs.Bool("gauss", false, "in-search Gaussian elimination: keep the reduced parity matrix live across decision levels in the incremental session solvers")
	oracle := fs.String("oracle", "auto", "reconstruction backend: auto (cost-model routing), sat, sat-par, sat-inc, decode, brute or exhaustive")
	storeDir := fs.String("store-dir", "", "durable log store directory: ingested wire logs are persisted here and served back via /v1/logs and /v1/query (empty disables)")
	storeSegBytes := fs.Int64("store-segment-bytes", 0, "log store segment size before rotation (0 = default)")
	storeMaxSegments := fs.Int("store-max-segments", 0, "retention: drop oldest sealed segments beyond this many (0 = keep everything)")
	smoke := fs.Bool("smoke", false, "run an end-to-end smoke test against an in-process server and exit")
	_ = fs.Parse(os.Args[1:])
	if !reconstruct.KnownOracle(*oracle) {
		fmt.Fprintf(os.Stderr, "timeprintd: unknown -oracle %q (want auto|sat|sat-par|sat-inc|decode|brute|exhaustive)\n", *oracle)
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	core.SetObserver(reg)
	defer core.SetObserver(nil)
	cfg := service.Config{
		Addr:               *addr,
		StreamAddr:         *streamAddr,
		QueueDepth:         *queue,
		Workers:            *workers,
		CacheSize:          *cacheSize,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxConflicts:       *maxConflicts,
		DrainTimeout:       *drain,
		SessionMaxK:        *sessionMaxK,
		DisableIncremental: *noIncremental,
		GaussInSearch:      *gauss,
		Oracle:             *oracle,
		Obs:                reg,
	}

	if *smoke {
		cfg.Addr = "127.0.0.1:0"
		if err := runSmoke(cfg, reg); err != nil {
			fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke: ok")
		return
	}

	if *storeDir != "" {
		st, rec, err := logstore.Open(*storeDir, logstore.Options{
			SegmentBytes: *storeSegBytes,
			MaxSegments:  *storeMaxSegments,
			Obs:          reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeprintd:", err)
			os.Exit(1)
		}
		defer st.Close()
		if rec.Corrupt() {
			fmt.Fprintf(os.Stderr, "timeprintd: store recovery salvaged %d record(s) across %d segment(s), dropped %d damaged byte(s)\n",
				rec.Records, rec.Segments, rec.TruncatedBytes)
			for _, e := range rec.Errs {
				fmt.Fprintf(os.Stderr, "timeprintd:   %v\n", e)
			}
		}
		fmt.Fprintf(os.Stderr, "timeprintd: log store at %s (%d record(s) across %d segment(s))\n",
			st.Dir(), rec.Records, rec.Segments)
		cfg.Store = st
	}

	srv := service.New(cfg)
	bound, err := srv.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "timeprintd:", err)
		os.Exit(1)
	}
	endpoints := "/v1/{reconstruct,count,compare,batch}"
	if cfg.Store != nil {
		endpoints = "/v1/{reconstruct,count,compare,batch,logs,query}"
	}
	fmt.Fprintf(os.Stderr, "timeprintd: serving %s on http://%s\n", endpoints, bound)
	if *streamAddr != "" {
		fmt.Fprintf(os.Stderr, "timeprintd: streaming ingest on %s\n", srv.StreamAddr())
	}
	if *obsAddr != "" {
		oa, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timeprintd:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "timeprintd: observability on http://%s (/debug/vars /debug/pprof /metrics)\n", oa)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	<-ctx.Done()
	fmt.Fprintf(os.Stderr, "timeprintd: signal received, draining (budget %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "timeprintd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "timeprintd: drained cleanly")
}

// runSmoke exercises the daemon end to end, in-process but over real
// HTTP: it logs a known signal, POSTs the wire log twice, checks the
// reconstruction contains the true signal and that the repeat was a
// cache hit, runs a count and a compare, and validates the cache
// counters through the obs.Serve /metrics endpoint. This is what
// `make service-smoke` and the service-smoke CI job run.
func runSmoke(cfg service.Config, reg *obs.Registry) error {
	cfg.StreamAddr = "127.0.0.1:0"
	const m, b = 64, 13
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		return err
	}
	truth := core.SignalFromChanges(m, 5, 6, 20)
	entry := core.Log(enc, truth)
	var wire bytes.Buffer
	if err := core.WriteLog(&wire, m, b, []core.LogEntry{entry}); err != nil {
		return err
	}

	srv := service.New(cfg)
	bound, err := srv.Start()
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	base := "http://" + bound.String()

	// The observability side: the same registry through obs.Serve.
	obsBound, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		return err
	}

	post := func(url, contentType string, body []byte) (map[string]any, error) {
		resp, err := http.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, raw)
		}
		var out map[string]any
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, fmt.Errorf("%s: bad JSON: %v", url, err)
		}
		return out, nil
	}

	// Reconstruct the wire log twice: the first solves, the second must
	// be answered from the LRU.
	target := base + "/v1/reconstruct?scheme=incremental&depth=4&limit=-1"
	first, err := post(target, "application/octet-stream", wire.Bytes())
	if err != nil {
		return err
	}
	results := first["results"].([]any)
	if len(results) != 1 {
		return fmt.Errorf("want 1 result, got %d", len(results))
	}
	r0 := results[0].(map[string]any)
	found := false
	for _, c := range r0["candidates"].([]any) {
		if c.(string) == truth.String() {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("true signal %s not among candidates %v", truth, r0["candidates"])
	}
	if ex, _ := r0["exhausted"].(bool); !ex {
		return fmt.Errorf("enumeration not exhausted: %v", r0)
	}
	second, err := post(target, "application/octet-stream", wire.Bytes())
	if err != nil {
		return err
	}
	r0 = second["results"].([]any)[0].(map[string]any)
	if cached, _ := r0["cached"].(bool); !cached {
		return fmt.Errorf("repeat request was not served from cache: %v", r0)
	}

	// A property-bearing request: under auto-routing this takes the
	// incremental SAT session (k=3 is too small for brute force at this
	// nullity and the property bars the algebraic decoder), so it also
	// proves solver instrumentation flows through the registry.
	propTarget := target + "&properties=mingap(1)"
	withProp, err := post(propTarget, "application/octet-stream", wire.Bytes())
	if err != nil {
		return err
	}
	r0 = withProp["results"].([]any)[0].(map[string]any)
	found = false
	for _, c := range r0["candidates"].([]any) {
		if c.(string) == truth.String() {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("true signal %s not among property-constrained candidates %v", truth, r0["candidates"])
	}

	// Count through the JSON job-spec path.
	countJob, _ := json.Marshal(map[string]any{
		"encoding": map[string]any{"scheme": "incremental", "m": m, "b": b},
		"tp":       entry.TP.String(),
		"k":        entry.K,
		"limit":    -1,
	})
	count, err := post(base+"/v1/count", "application/json", countJob)
	if err != nil {
		return err
	}
	c0 := count["results"].([]any)[0].(map[string]any)
	if n, _ := c0["count"].(float64); n < 1 {
		return fmt.Errorf("count returned %v candidates", c0["count"])
	}

	// Compare the log against a corrupted sibling; the flipped
	// trace-cycle must be localized.
	bad := core.Log(enc, core.SignalFromChanges(m, 5, 6, 21))
	var badWire bytes.Buffer
	if err := core.WriteLog(&badWire, m, b, []core.LogEntry{bad}); err != nil {
		return err
	}
	compareJob, _ := json.Marshal(map[string]any{
		"encoding": map[string]any{"scheme": "incremental", "m": m, "b": b, "clock_hz": 5e6},
		"ref":      wire.Bytes(),
		"obs":      badWire.Bytes(),
	})
	cmp, err := post(base+"/v1/compare", "application/json", compareJob)
	if err != nil {
		return err
	}
	if fm, _ := cmp["first_mismatch"].(float64); fm != 0 {
		return fmt.Errorf("compare localized mismatch at %v, want 0", cmp["first_mismatch"])
	}

	// Counter contract, read back through the obs.Serve endpoint.
	resp, err := http.Get("http://" + obsBound.String() + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	snap, err := obs.ParseSnapshot(resp.Body)
	if err != nil {
		return err
	}
	for counter, want := range map[string]int64{
		service.MetricCacheHits:      1,
		service.MetricCacheMisses:    3, // reconstruct + property reconstruct + count
		service.MetricSolves:         3,
		service.MetricReqReconstruct: 3,
		service.MetricReqCount:       1,
		service.MetricReqCompare:     1,
	} {
		if got := snap.Counters[counter]; got != want {
			return fmt.Errorf("counter %s = %d, want %d (snapshot %v)", counter, got, want, snap.Counters)
		}
	}
	// Routing contract under the default auto oracle: the two plain
	// k=3 queries go to the algebraic decoder, the property-bearing one
	// to the incremental session, and nothing mispredicts.
	if cfg.Oracle == "" || cfg.Oracle == "auto" {
		if got := snap.Counters[reconstruct.MetricDispatchChosenPrefix+"decode"]; got != 2 {
			return fmt.Errorf("dispatch chose decode %d times, want 2 (snapshot %v)", got, snap.Counters)
		}
		if got := snap.Counters[reconstruct.MetricDispatchChosenPrefix+"sat-inc"]; got != 1 {
			return fmt.Errorf("dispatch chose sat-inc %d times, want 1 (snapshot %v)", got, snap.Counters)
		}
		if got := snap.Counters[reconstruct.MetricDispatchFallback]; got != 0 {
			return fmt.Errorf("dispatch fallbacks = %d, want 0", got)
		}
	}
	if snap.Counters["sat.solve.calls"] == 0 {
		return fmt.Errorf("solver instrumentation missing from /metrics")
	}

	// Batch and stream phases run after the exact-counter snapshot above
	// and are asserted as deltas against it, so the unary contract stays
	// byte-for-byte intact.
	if err := smokeBatch(base, post); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if err := smokeStream(srv.StreamAddr().String()); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	resp2, err := http.Get("http://" + obsBound.String() + "/metrics")
	if err != nil {
		return err
	}
	defer resp2.Body.Close()
	after, err := obs.ParseSnapshot(resp2.Body)
	if err != nil {
		return err
	}
	for counter, want := range map[string]int64{
		service.MetricReqBatch:      1,
		service.MetricBatchJobs:     3,
		service.MetricBatchShed:     0,
		service.MetricReqStream:     1,
		service.MetricStreamFrames:  2,
		service.MetricStreamEntries: 2,
		// The amortization witness: one build for the whole batch spec,
		// one for the whole stream spec.
		service.MetricEncodingBuilds: 2,
	} {
		if got := after.Counters[counter] - snap.Counters[counter]; got != want {
			return fmt.Errorf("counter %s moved by %d across batch+stream, want %d", counter, got, want)
		}
	}
	if err := smokeStore(cfg); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// smokeStore proves the durable-store acceptance path end to end: a
// server with -store-dir ingests one wire log over HTTP and one frame
// over the stream listener, both tee into the store, /v1/logs lists
// them and /v1/query replays the stored frames bit-identically to the
// request-body path — then the server AND store are torn down and
// reopened on the same directory, and the historical query still
// answers identically from disk.
func smokeStore(cfg service.Config) error {
	dir, err := os.MkdirTemp("", "timeprintd-smoke-store-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	const m, b = 32, 11
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		return err
	}
	truth := core.SignalFromChanges(m, 3, 9)
	var wire bytes.Buffer
	if err := core.WriteLog(&wire, m, b, []core.LogEntry{core.Log(enc, truth)}); err != nil {
		return err
	}
	var streamWire bytes.Buffer
	if err := core.WriteLog(&streamWire, m, b, []core.LogEntry{core.Log(enc, core.SignalFromChanges(m, 7))}); err != nil {
		return err
	}

	// One "server generation": open the store, serve, run fn, drain.
	withServer := func(fn func(base, streamAddr string) error) error {
		st, rec, err := logstore.Open(dir, logstore.Options{Obs: cfg.Obs})
		if err != nil {
			return err
		}
		defer st.Close()
		if rec.Corrupt() {
			return fmt.Errorf("smoke store dir corrupt on open: %v", rec.Errs)
		}
		gen := cfg
		gen.Addr = "127.0.0.1:0"
		gen.StreamAddr = "127.0.0.1:0"
		gen.Store = st
		srv := service.New(gen)
		bound, err := srv.Start()
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		return fn("http://"+bound.String(), srv.StreamAddr().String())
	}

	// The request-body answer the stored replay must match. The replay
	// legitimately hits the LRU the body path just filled, so the
	// cached/coalesced markers are volatile and excluded from the
	// equivalence.
	var bodyAnswer []any
	stripVolatile := func(results []any) []any {
		for _, r := range results {
			if m, ok := r.(map[string]any); ok {
				delete(m, "cached")
				delete(m, "coalesced")
			}
		}
		return results
	}
	queryStore := func(base string) ([]any, error) {
		req, _ := json.Marshal(map[string]any{
			"device": "smoke-dev", "signal": "bus",
			"encoding": map[string]any{"scheme": "incremental", "m": m, "b": b, "depth": 4},
			"limit":    -1,
		})
		resp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(req))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("/v1/query: HTTP %d: %s", resp.StatusCode, raw)
		}
		var out struct {
			Records []any `json:"records"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			return nil, err
		}
		return out.Records, nil
	}

	err = withServer(func(base, streamAddr string) error {
		// Unary ingest with identity: tees into the store.
		resp, err := http.Post(base+"/v1/reconstruct?scheme=incremental&depth=4&limit=-1&device=smoke-dev&signal=bus&epoch_us=1000",
			"application/octet-stream", bytes.NewReader(wire.Bytes()))
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ingest: HTTP %d: %s", resp.StatusCode, raw)
		}
		var body map[string]any
		if err := json.Unmarshal(raw, &body); err != nil {
			return err
		}
		bodyAnswer = stripVolatile(body["results"].([]any))

		// Stream ingest tees too, under the hello's identity.
		sc, err := service.DialStream(streamAddr, 5*time.Second)
		if err != nil {
			return err
		}
		defer sc.Close()
		if _, err := sc.Hello(service.StreamHello{
			Device: "smoke-dev", Signal: "net", Encoding: service.EncodingSpec{M: m, B: b}, CountOnly: true,
		}); err != nil {
			return err
		}
		if msg, err := sc.SendFrame(streamWire.Bytes()); err != nil || msg.Status != 0 {
			return fmt.Errorf("stream frame: %v (status %v)", err, msg)
		}
		if _, err := sc.End(); err != nil {
			return err
		}

		// Both streams visible in the range listing.
		lr, err := http.Get(base + "/v1/logs")
		if err != nil {
			return err
		}
		defer lr.Body.Close()
		var listing struct {
			Keys []struct {
				Device  string `json:"device"`
				Signal  string `json:"signal"`
				Records int    `json:"records"`
			} `json:"keys"`
		}
		if err := json.NewDecoder(lr.Body).Decode(&listing); err != nil {
			return err
		}
		if len(listing.Keys) != 2 {
			return fmt.Errorf("/v1/logs listed %d keys, want 2 (%+v)", len(listing.Keys), listing.Keys)
		}

		// Historical replay matches the live request-body answer.
		recs, err := queryStore(base)
		if err != nil {
			return err
		}
		if len(recs) != 1 {
			return fmt.Errorf("first-generation /v1/query returned %d records, want 1", len(recs))
		}
		got, _ := json.Marshal(stripVolatile(recs[0].(map[string]any)["results"].([]any)))
		want, _ := json.Marshal(bodyAnswer)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("stored replay diverged from request-body answer:\n  body:  %s\n  store: %s", want, got)
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Second generation: fresh server and store on the same directory —
	// the restart-persistence acceptance criterion.
	return withServer(func(base, _ string) error {
		recs, err := queryStore(base)
		if err != nil {
			return err
		}
		if len(recs) != 1 {
			return fmt.Errorf("post-restart /v1/query returned %d records, want 1", len(recs))
		}
		got, _ := json.Marshal(stripVolatile(recs[0].(map[string]any)["results"].([]any)))
		want, _ := json.Marshal(bodyAnswer)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("post-restart replay diverged from request-body answer:\n  body:  %s\n  store: %s", want, got)
		}
		return nil
	})
}

// smokeBatch drives POST /v1/batch: three jobs (a wire log, a
// count-only twin, a malformed one) against one shared spec, asserting
// per-job statuses and that the malformed job fails alone.
func smokeBatch(base string, post func(url, contentType string, body []byte) (map[string]any, error)) error {
	const m, b = 32, 11
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		return err
	}
	truth := core.SignalFromChanges(m, 3, 9)
	entry := core.Log(enc, truth)
	var wire bytes.Buffer
	if err := core.WriteLog(&wire, m, b, []core.LogEntry{entry}); err != nil {
		return err
	}
	body, _ := json.Marshal(map[string]any{
		"jobs": []any{
			map[string]any{"log": wire.Bytes(), "limit": -1},
			map[string]any{"tp": entry.TP.String(), "k": entry.K, "count_only": true},
			map[string]any{"tp": "10", "k": 1},
		},
	})
	out, err := post(base+"/v1/batch", "application/json", body)
	if err != nil {
		return err
	}
	jobs := out["jobs"].([]any)
	if len(jobs) != 3 {
		return fmt.Errorf("want 3 job results, got %d", len(jobs))
	}
	for i, want := range []float64{200, 200, 400} {
		if got, _ := jobs[i].(map[string]any)["status"].(float64); got != want {
			return fmt.Errorf("job %d status %v, want %v", i, got, want)
		}
	}
	r0 := jobs[0].(map[string]any)["results"].([]any)[0].(map[string]any)
	found := false
	for _, c := range r0["candidates"].([]any) {
		if c.(string) == truth.String() {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("true signal %s not among batch candidates %v", truth, r0["candidates"])
	}
	return nil
}

// smokeStream drives the streaming-ingest listener: hello, two frames
// advancing the trace-cycle position, a clean end.
func smokeStream(addr string) error {
	const m, b = 16, 9
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		return err
	}
	frames := make([][]byte, 2)
	truth := core.SignalFromChanges(m, 4, 11)
	for i, sig := range []core.Signal{truth, core.SignalFromChanges(m, 2)} {
		var wire bytes.Buffer
		if err := core.WriteLog(&wire, m, b, []core.LogEntry{core.Log(enc, sig)}); err != nil {
			return err
		}
		frames[i] = wire.Bytes()
	}

	sc, err := service.DialStream(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer sc.Close()
	ack, err := sc.Hello(service.StreamHello{
		Device: "smoke", Signal: "net", Encoding: service.EncodingSpec{M: m, B: b}, Limit: -1,
	})
	if err != nil {
		return err
	}
	if ack.NextTraceCycle != 0 {
		return fmt.Errorf("fresh stream starts at trace-cycle %d, want 0", ack.NextTraceCycle)
	}
	for i, frame := range frames {
		msg, err := sc.SendFrame(frame)
		if err != nil {
			return err
		}
		if msg.Status != 0 || msg.TraceCycleBase != i {
			return fmt.Errorf("frame %d: status %d base %d", i, msg.Status, msg.TraceCycleBase)
		}
		if i == 0 {
			found := false
			for _, c := range msg.Results[0].Candidates {
				if c == truth.String() {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("true signal %s not among stream candidates", truth)
			}
		}
	}
	done, err := sc.End()
	if err != nil {
		return err
	}
	if done.Frames != 2 || done.Entries != 2 {
		return fmt.Errorf("done summary frames=%d entries=%d, want 2/2", done.Frames, done.Entries)
	}
	return nil
}
