// Command metricscheck validates a metrics snapshot produced by a
// -metrics flag (timeprint, tprbench): the JSON must parse as an
// internal/obs snapshot (strict fields), every -counter must be
// present with a positive value, and every -hist must be present with
// at least one observation. CI's metrics-smoke job runs it against a
// `timeprint selfcheck -metrics` dump, so the observability contract —
// flag, file format, and the key instrument names — cannot silently
// rot.
//
//	metricscheck -in m.json -counter sat.solve.calls -hist sat.solve.ns
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
)

// listFlag collects a repeatable string flag.
type listFlag []string

func (l *listFlag) String() string { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var counters, hists listFlag
	in := flag.String("in", "", "metrics snapshot file to validate")
	flag.Var(&counters, "counter", "counter that must be present and positive (repeatable)")
	flag.Var(&hists, "hist", "histogram that must be present with observations (repeatable)")
	flag.Parse()
	if *in == "" {
		fail(fmt.Errorf("need -in"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	snap, err := obs.ParseSnapshot(f)
	if err != nil {
		fail(err)
	}

	var problems []string
	for _, name := range counters {
		v, ok := snap.Counters[name]
		switch {
		case !ok:
			problems = append(problems, fmt.Sprintf("counter %q missing", name))
		case v <= 0:
			problems = append(problems, fmt.Sprintf("counter %q = %d, want > 0", name, v))
		}
	}
	for _, name := range hists {
		h, ok := snap.Histograms[name]
		switch {
		case !ok:
			problems = append(problems, fmt.Sprintf("histogram %q missing", name))
		case h.Count <= 0:
			problems = append(problems, fmt.Sprintf("histogram %q has no observations", name))
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "metricscheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %s ok (%d counters, %d gauges, %d histograms; %d/%d requirements)\n",
		*in, len(snap.Counters), len(snap.Gauges), len(snap.Histograms), len(counters), len(hists))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "metricscheck:", err)
	os.Exit(1)
}
