// Command tprbench regenerates every table and figure of the paper's
// evaluation section:
//
//	tprbench -table 1          Table 1 (reconstruction time vs m, k, properties)
//	tprbench -table 2          Table 2 (timestamp encoding schemes)
//	tprbench -exp fig4         Figure 4 candidate-count staircase
//	tprbench -exp can          Section 5.2.1 CAN bus experiment
//	tprbench -exp refresh      Section 5.2.2 refresh-effects experiment
//	tprbench -exp sweep        Section 5.2.2 temperature sweep
//	tprbench -all              everything
//
// -quick restricts the tables to the small m values; -maxconflicts
// bounds each SAT query (0 = unlimited); -parallel N runs the
// experiments with N workers (cube-split SAT portfolio for the CAN
// queries, concurrent simulations and localizations for refresh/sweep;
// 1 = the paper's serial tool, 0 = GOMAXPROCS).
//
// -metrics FILE dumps an internal/obs registry snapshot (solver
// counters, presolve outcomes, pool utilization, span latencies) as
// JSON when the run finishes — readable with `timeprint stats -in`.
// -httpobs ADDR serves the live registry plus expvar and
// net/http/pprof for the duration of the run, which is the intended
// way to profile the long sweeps.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	table := flag.Int("table", 0, "regenerate table 1 or 2")
	exp := flag.String("exp", "", "experiment: fig4, can, refresh, sweep")
	all := flag.Bool("all", false, "run everything")
	quick := flag.Bool("quick", false, "restrict tables to small m")
	maxConflicts := flag.Int64("maxconflicts", 0, "per-query SAT conflict budget (0 = unlimited)")
	parallel := flag.Int("parallel", 1, "experiment worker count (1 = serial, 0 = GOMAXPROCS)")
	metrics := flag.String("metrics", "", "write a metrics snapshot (JSON) to this file at exit")
	httpAddr := flag.String("httpobs", "", "serve expvar, pprof and live metrics on this address (e.g. :6060)")
	flag.Parse()
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}

	var reg *obs.Registry
	if *metrics != "" || *httpAddr != "" {
		reg = obs.NewRegistry()
		core.SetObserver(reg)
		defer core.SetObserver(nil)
		if *httpAddr != "" {
			addr, err := obs.Serve(*httpAddr, reg)
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "httpobs: serving /debug/vars /debug/pprof /metrics on http://%s\n", addr)
		}
	}
	flushObs := func() {
		if *metrics == "" {
			return
		}
		f, err := os.Create(*metrics)
		if err != nil {
			fail(err)
		}
		if err := reg.DumpJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	ran := false
	progress := func(s string) { fmt.Fprintf(os.Stderr, "... %s\n", s) }

	if *all || *table == 1 {
		ran = true
		fmt.Println("== Table 1: reconstruction time for different m, k (incremental LI-4 timestamps) ==")
		rows := bench.Table1(*quick, *maxConflicts, progress)
		fmt.Println(bench.FormatTable1(rows))
		fmt.Println("== Table 1 effort: SAT conflicts per cell (deterministic) ==")
		fmt.Println(bench.FormatTable1Conflicts(rows))
	}
	if *all || *table == 2 {
		ran = true
		fmt.Println("== Table 2: timestamp encoding schemes (first-solution times) ==")
		rows := bench.Table2(*quick, *maxConflicts, progress)
		fmt.Println(bench.FormatTable2(rows))
	}
	if *all || *exp == "fig4" {
		ran = true
		fmt.Println("== Figure 4: didactic reconstruction staircase ==")
		res, err := bench.Figure4()
		if err != nil {
			fail(err)
		}
		fmt.Printf("signals aggregating to TP (any k):      %d (paper: 256)\n", res.AnyK)
		fmt.Printf("candidates with the logged k = 4:       %d (paper: 8)\n", res.WithK)
		fmt.Printf("candidates with paired-changes property: %d (paper: 1)\n\n", res.WithProperty)
	}
	if *all || *exp == "can" {
		ran = true
		fmt.Println("== Section 5.2.1: CAN bus communication ==")
		canCfg := experiments.DefaultCANConfig()
		canCfg.Parallel = *parallel
		canCfg.Obs = reg
		res, err := experiments.RunCAN(canCfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("log rate: %.0f bit/s; analysed trace-cycle %d (k=%d)\n",
			res.LogRateBps, res.TraceCycle, res.Entry.K)
		fmt.Printf("whole trace-cycle reconstruction: offsets %v in %v (paper: 823 in 38.279s)\n",
			res.WholeOffsets, res.WholeDuration)
		fmt.Printf("failure-window reconstruction:    offsets %v in %v (paper: 3.082s)\n",
			res.WindowOffsets, res.WindowDuration)
		fmt.Printf("before-deadline proof:            %v in %v (paper: UNSAT in 1.597s)\n\n",
			res.DeadlineStatus, res.DeadlineDuration)
	}
	if *all || *exp == "refresh" {
		ran = true
		fmt.Println("== Section 5.2.2: temperature-compensated refresh effects (ambient 45C) ==")
		refCfg := experiments.DefaultRefreshConfig(45)
		refCfg.Parallel = *parallel
		refCfg.Obs = reg
		res, err := experiments.RunRefresh(refCfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("k mismatches vs misconfigured sim: %d (wait-state bug found)\n", res.KMismatchesBuggy)
		fmt.Printf("k mismatches vs fixed sim:         %d (paper: k became exactly the same)\n", res.KMismatchesFixed)
		fmt.Printf("timeprint mismatches (refresh):    trace-cycles %v\n", res.TPMismatches)
		diagnosed := 0
		for _, l := range res.Localizations {
			if l.Candidates == 1 && l.Verified {
				diagnosed++
			}
		}
		fmt.Printf("one-cycle delays localized+verified: %d of %d mismatches\n\n",
			diagnosed, len(res.TPMismatches))
	}
	if *all || *exp == "sweep" {
		ran = true
		fmt.Println("== Section 5.2.2: mismatch onset vs temperature ==")
		sweepCfg := experiments.DefaultRefreshConfig(0)
		sweepCfg.Parallel = *parallel
		sweepCfg.Obs = reg
		sweep, err := experiments.RefreshSweep(sweepCfg, []float64{25, 45, 65, 85})
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %-22s %-12s %-12s\n", "ambient C", "first steady mismatch", "collisions", "final temp")
		for _, r := range sweep {
			fmt.Printf("%-10.0f %-22d %-12d %-12.1f\n",
				r.Config.AmbientC, r.FirstSteadyMismatch, r.Collisions, r.FinalTempC)
		}
		fmt.Println("(paper: mismatch onset between the 3rd and 28th trace-cycle across temperatures)")
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	flushObs()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tprbench:", err)
	os.Exit(1)
}
