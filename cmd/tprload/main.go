// Command tprload is the timeprintd load-test harness: it drives a
// server (an external one via -addr, or a self-contained in-process
// instance via -self) through the internal/load request mixes and
// asserts the service's operational contract — latency SLOs, shed
// budget, batch/stream encoding amortization, atomic batch admission,
// malformed-traffic rejection.
//
//	tprload -self                          # CI smoke: spawn + assert
//	tprload -self -store                   # spawn with a durable log store
//	tprload -addr http://host:8080 -stream-addr host:9090
//	tprload -self -bench -count 5          # emit benchdiff-style lines
//
// In -bench mode each run prints `BenchmarkLoad<Class> 1 <mean-ns>
// ns/op` lines (client-side mean latency per mix) on stdout for
// cmd/benchdiff, with the human report on stderr; run seeds vary so
// cold phases stay cold across repeats.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/load"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	self := flag.Bool("self", false, "spawn an in-process timeprintd and test it")
	addr := flag.String("addr", "", "external server base URL, e.g. http://127.0.0.1:8080")
	streamAddr := flag.String("stream-addr", "", "external streaming-ingest address (host:port)")
	seed := flag.Int64("seed", 1, "workload seed")
	count := flag.Int("count", 1, "repeat the whole workload this many times")
	bench := flag.Bool("bench", false, "emit benchdiff-style BenchmarkLoad* lines on stdout")

	cold := flag.Int("cold", 4, "cold phase: distinct session specs")
	hot := flag.Int("hot", 200, "hot phase: identical requests")
	hotWorkers := flag.Int("hot-workers", 8, "hot phase concurrency")
	batches := flag.Int("batches", 4, "batch phase: /v1/batch requests")
	batchJobs := flag.Int("batch-jobs", 8, "jobs per batch")
	streamFrames := flag.Int("stream-frames", 4, "stream phase: frames")
	frameEntries := flag.Int("frame-entries", 4, "entries per stream frame")
	queueDepth := flag.Int("queue-depth", 0, "server queue depth for the overload probe (0 skips; -self sets it)")
	store := flag.Bool("store", false, "assert the -store-dir tee contract; with -self the spawned server gets a temporary durable log store")

	hotP50 := flag.Duration("hot-p50", 250*time.Millisecond, "SLO: hot-mix p50 budget (0 disables)")
	hotP99 := flag.Duration("hot-p99", 2*time.Second, "SLO: hot-mix p99 budget (0 disables)")
	batchP99 := flag.Duration("batch-p99", 30*time.Second, "SLO: batch p99 budget (0 disables)")
	maxShed := flag.Float64("max-shed-rate", 0, "SLO: shed-rate budget outside the overload probe")
	flag.Parse()

	report := os.Stdout
	if *bench {
		report = os.Stderr
	}
	logf := func(format string, args ...any) { fmt.Fprintf(report, format+"\n", args...) }

	cfg := load.Config{
		BaseURL:      *addr,
		StreamAddr:   *streamAddr,
		Seed:         *seed,
		Cold:         *cold,
		Hot:          *hot,
		HotWorkers:   *hotWorkers,
		Batches:      *batches,
		BatchJobs:    *batchJobs,
		StreamFrames: *streamFrames,
		FrameEntries: *frameEntries,
		QueueDepth:   *queueDepth,
		ExpectStore:  *store,
		SLO: load.SLO{
			HotP50:      *hotP50,
			HotP99:      *hotP99,
			BatchP99:    *batchP99,
			MaxShedRate: *maxShed,
		},
		Logf: logf,
	}

	if *self {
		// A self-contained server: ephemeral ports, a small queue so the
		// overload probe stays cheap, metrics on (the harness scrapes
		// them).
		const selfQueueDepth = 16
		reg := obs.NewRegistry()
		selfCfg := service.Config{
			Addr:       "127.0.0.1:0",
			StreamAddr: "127.0.0.1:0",
			QueueDepth: selfQueueDepth,
			Obs:        reg,
		}
		if *store {
			dir, err := os.MkdirTemp("", "tprload-store-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
			st, _, err := logstore.Open(dir, logstore.Options{NoSync: true, Obs: reg})
			if err != nil {
				fatal(err)
			}
			defer st.Close()
			selfCfg.Store = st
			logf("tprload: durable log store at %s", dir)
		}
		srv := service.New(selfCfg)
		httpAddr, err := srv.Start()
		if err != nil {
			fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		cfg.BaseURL = "http://" + httpAddr.String()
		cfg.StreamAddr = srv.StreamAddr().String()
		cfg.QueueDepth = selfQueueDepth
		logf("tprload: self server on %s (stream %s)", cfg.BaseURL, cfg.StreamAddr)
	} else if cfg.BaseURL == "" {
		fatal(fmt.Errorf("need -addr or -self"))
	}

	failed := 0
	for run := 0; run < *count; run++ {
		// Distinct seeds keep every run's cold/batch/stream specs
		// genuinely cold on the shared server.
		cfg.Seed = *seed + int64(run)*10000
		if *count > 1 {
			logf("=== run %d/%d (seed %d)", run+1, *count, cfg.Seed)
		}
		res, err := load.Run(cfg)
		if err != nil {
			fatal(err)
		}
		printReport(report, res)
		if *bench {
			printBenchLines(res)
		}
		failed += len(res.Failed())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tprload: %d check(s) failed\n", failed)
		os.Exit(1)
	}
	logf("tprload: all checks passed")
}

func printReport(w *os.File, res load.Result) {
	classes := make([]string, 0, len(res.Classes))
	for c := range res.Classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "%-10s %8s %7s %12s %12s %12s\n", "class", "count", "errors", "p50", "p99", "mean")
	for _, c := range classes {
		s := res.Classes[c]
		fmt.Fprintf(w, "%-10s %8d %7d %12v %12v %12v\n", c, s.Count, s.Errors, s.P50, s.P99, s.Mean)
	}
	for _, c := range res.Failed() {
		fmt.Fprintf(w, "FAILED %s: %s\n", c.Name, c.Detail)
	}
}

// printBenchLines renders per-class mean latency in `go test -bench`
// format so cmd/benchdiff can guard it. Means (not bucketed quantiles)
// keep the guarded number continuous.
func printBenchLines(res load.Result) {
	for _, c := range []struct{ class, name string }{
		{"hot", "LoadHot"},
		{"cold", "LoadCold"},
		{"batch", "LoadBatch"},
		{"stream", "LoadStream"},
	} {
		s, ok := res.Classes[c.class]
		if !ok || s.Count == 0 {
			continue
		}
		fmt.Printf("Benchmark%s\t%d\t%d ns/op\n", c.name, 1, s.Mean.Nanoseconds())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tprload:", err)
	os.Exit(1)
}
