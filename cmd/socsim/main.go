// Command socsim runs the experiment-5.2.2 system-on-chip simulator
// standalone: a LEON3-style core executing the sensor-loop image
// against a configurable SRAM, with the timeprints agg-log hardware
// attached to the AHB address signals. It prints the timeprint log
// and, optionally, dumps the traced signal as a VCD waveform and the
// log in the binary wire format.
//
//	socsim -cycles 20480 -m 1024 -b 24 -ambient 45
//	socsim -ideal -waits 2          # the misconfigured simulation twin
//	socsim -vcd out.vcd -log out.tpr
package main

import (
	"flag"
	"fmt"
	"os"

	timeprints "repro"
	"repro/internal/encoding"
	"repro/internal/soc"
	"repro/internal/sram"
	"repro/internal/vcd"
)

func main() {
	m := flag.Int("m", 1024, "trace-cycle length")
	b := flag.Int("b", 24, "timestamp width")
	cycles := flag.Int64("cycles", 0, "clock cycles to run (default 20 trace-cycles)")
	ambient := flag.Float64("ambient", 25, "ambient temperature (C)")
	ideal := flag.Bool("ideal", false, "idealized memory: no refresh, no thermal drift")
	waits := flag.Int("waits", 1, "memory wait states")
	burst := flag.Int("burst", 100, "boot-burst words")
	period := flag.Uint("period", 100, "sensor-loop timer period")
	vcdOut := flag.String("vcd", "", "dump the traced signal as VCD")
	logOut := flag.String("log", "", "write the timeprint log in wire format")
	flag.Parse()

	enc, err := encoding.Incremental(*m, *b, 4)
	if err != nil {
		fail(err)
	}
	var mem sram.Config
	if *ideal {
		mem = sram.Config{WaitStates: *waits, CoolingPerCycle: 1}
	} else {
		mem = sram.DefaultConfig(*ambient)
		mem.WaitStates = *waits
		mem.BaseIntervalCycles = 1200
		mem.MinIntervalCycles = 250
		mem.IntervalSlopeCyclesPerC = 16
		mem.RefreshCycles = 13
		mem.HeatPerAccessC = 0.25
	}
	sys, err := soc.Build(soc.Config{
		Program: soc.SensorProgram(*burst, uint16(*period)),
		Mem:     mem,
		Enc:     enc,
		ClockHz: 50e6,
	})
	if err != nil {
		fail(err)
	}
	n := *cycles
	if n <= 0 {
		n = 20 * int64(*m)
	}
	n = n / int64(*m) * int64(*m)
	sys.Run(n)

	entries := sys.AggLog.Entries()
	fmt.Printf("ran %d cycles (%d trace-cycles), core retired %d instructions\n",
		n, len(entries), sys.Core.Retired())
	st := sys.Mem.Stats()
	fmt.Printf("memory: %d accesses, %d refreshes, %d collisions, die %.1f C\n",
		st.Accesses, st.Refreshes, st.Collisions, sys.Mem.TemperatureC())
	for i, e := range entries {
		fmt.Printf("trace-cycle %3d: TP=%s k=%d\n", i, e.TP, e.K)
	}

	if *vcdOut != "" {
		f, err := os.Create(*vcdOut)
		if err != nil {
			fail(err)
		}
		if err := vcd.WriteSignal(f, "soc.ahb.addr_change", sys.AddrRec.Changes(), n); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote VCD waveform to %s\n", *vcdOut)
	}
	if *logOut != "" {
		f, err := os.Create(*logOut)
		if err != nil {
			fail(err)
		}
		if err := timeprints.WriteLog(f, *m, *b, entries); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d log entries to %s\n", len(entries), *logOut)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "socsim:", err)
	os.Exit(1)
}
