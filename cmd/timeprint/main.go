// Command timeprint is the file-based front end of the library:
//
//	timeprint encode -m 64 -b 13                 print an LI-4 encoding
//	timeprint minb   -m 1024                     find the minimal b
//	timeprint log -m 64 -b 13 -changes 5,6,20    log a trace-cycle
//	timeprint log -m 64 -b 13 -in wire.txt       log a 0/1 wire dump
//	timeprint log -m 64 -b 13 -vcd dump.vcd -signal top.sig -out x.tpr
//	timeprint decode -in x.tpr                   print a binary log
//	timeprint reconstruct -m 64 -b 13 -tp <bits> -k 3 [-limit 10]
//	              [-window lo:hi] [-deadline D] [-paired]
//	              [-prop "mingap(3); dk(32,3)"] [-parallel N]
//	timeprint rate -m 1024 -b 24 -clock 100e6    logging bit-rate
//	timeprint selfcheck -seed 1 -cases 200       differential oracle check
//	timeprint stats -in metrics.json             pretty-print a metrics dump
//	timeprint mine -store DIR -ref-device NAME   fleet anomaly mining over
//	              a timeprintd log store (see -store-dir)
//
// The wire dump format is one '0' or '1' per clock-cycle (whitespace
// ignored). Reconstruction prints one candidate change-map per line,
// clock-cycle 0 leftmost.
//
// reconstruct and selfcheck accept two observability flags: -metrics
// FILE writes an internal/obs registry snapshot (solver counters,
// presolve outcomes, span latencies) as JSON at exit, readable with
// `timeprint stats`; -httpobs ADDR serves the live registry plus
// expvar and net/http/pprof on ADDR for the duration of the run.
//
// selfcheck runs the internal/diffcheck trust harness: a seeded corpus
// of randomized (encoding, entry) cases pushed through every
// reconstruction oracle (algebraic decode, serial SAT, parallel SAT
// portfolio, incremental session, GF(2) brute force, exhaustive
// concretization, and the cost-model dispatcher that routes between
// them) with all pairs of solution sets compared, followed by fault
// injection into
// timeprint logs asserting every corruption fails closed. It exits
// nonzero on any divergence; the printed CaseSpec reproduces a
// divergence independently of the corpus.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	timeprints "repro"
	"repro/internal/core"
	"repro/internal/diffcheck"
	"repro/internal/obs"
	"repro/internal/vcd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "encode":
		cmdEncode(args)
	case "minb":
		cmdMinB(args)
	case "log":
		cmdLog(args)
	case "reconstruct":
		cmdReconstruct(args)
	case "decode":
		cmdDecode(args)
	case "rate":
		cmdRate(args)
	case "selfcheck":
		cmdSelfcheck(args)
	case "stats":
		cmdStats(args)
	case "mine":
		cmdMine(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: timeprint encode|minb|log|reconstruct|decode|rate|selfcheck|stats|mine [flags]")
	os.Exit(2)
}

// obsFlags registers the shared -metrics/-httpobs flags on fs and
// returns a setup function to call after parsing. Setup returns the
// registry (nil when neither flag was given, so the instrumented paths
// stay on their free nil fast path) and a flush function that writes
// the -metrics snapshot; call flush once the command's work is done.
func obsFlags(fs *flag.FlagSet) func() (*obs.Registry, func()) {
	metrics := fs.String("metrics", "", "write a metrics snapshot (JSON) to this file at exit")
	httpAddr := fs.String("httpobs", "", "serve expvar, pprof and live metrics on this address (e.g. :6060)")
	return func() (*obs.Registry, func()) {
		if *metrics == "" && *httpAddr == "" {
			return nil, func() {}
		}
		reg := obs.NewRegistry()
		if *httpAddr != "" {
			addr, err := obs.Serve(*httpAddr, reg)
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "httpobs: serving /debug/vars /debug/pprof /metrics on http://%s\n", addr)
		}
		flush := func() {
			if *metrics == "" {
				return
			}
			f, err := os.Create(*metrics)
			if err != nil {
				fail(err)
			}
			if err := reg.DumpJSON(f); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}
		return reg, flush
	}
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "", "metrics snapshot file (as written by -metrics)")
	asJSON := fs.Bool("json", false, "re-emit the snapshot as JSON instead of text")
	_ = fs.Parse(args)
	if *in == "" {
		fail(fmt.Errorf("need -in"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	snap, err := obs.ParseSnapshot(f)
	if err != nil {
		fail(err)
	}
	if *asJSON {
		if err := snap.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(snap.Text())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "timeprint:", err)
	os.Exit(1)
}

func newEncoding(m, b int) *timeprints.Encoding {
	enc, err := timeprints.NewEncoding(m, b)
	if err != nil {
		fail(err)
	}
	return enc
}

func cmdEncode(args []string) {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	m := fs.Int("m", 64, "trace-cycle length")
	b := fs.Int("b", 13, "timestamp width")
	_ = fs.Parse(args)
	enc := newEncoding(*m, *b)
	for i := 0; i < enc.M(); i++ {
		fmt.Printf("TS(%d) = %s\n", i, enc.Timestamp(i))
	}
}

func cmdMinB(args []string) {
	fs := flag.NewFlagSet("minb", flag.ExitOnError)
	m := fs.Int("m", 64, "trace-cycle length")
	_ = fs.Parse(args)
	enc, err := timeprints.MinimalEncoding(*m)
	if err != nil {
		fail(err)
	}
	fmt.Printf("m=%d: minimal b=%d for LI-4 incremental timestamps\n", *m, enc.B())
	fmt.Printf("log size: %d bits per trace-cycle\n", timeprints.BitsPerTraceCycle(enc.B(), *m))
}

func cmdLog(args []string) {
	fs := flag.NewFlagSet("log", flag.ExitOnError)
	m := fs.Int("m", 64, "trace-cycle length")
	b := fs.Int("b", 13, "timestamp width")
	changes := fs.String("changes", "", "comma-separated change cycles")
	in := fs.String("in", "", "wire dump file (0/1 per cycle)")
	vcdFile := fs.String("vcd", "", "VCD file to read the traced signal from")
	signal := fs.String("signal", "", "signal name within the VCD file")
	out := fs.String("out", "", "write binary log to file")
	_ = fs.Parse(args)
	enc := newEncoding(*m, *b)

	var entries []timeprints.LogEntry
	switch {
	case *vcdFile != "":
		if *signal == "" {
			fail(fmt.Errorf("-vcd needs -signal"))
		}
		f, err := os.Open(*vcdFile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		doc, err := vcd.Parse(f)
		if err != nil {
			fail(err)
		}
		instants, err := doc.ChangeInstants(*signal)
		if err != nil {
			fail(err)
		}
		whole := doc.End / int64(*m) * int64(*m)
		var inRange []int64
		for _, c := range instants {
			if c < whole {
				inRange = append(inRange, c)
			}
		}
		entries, err = core.LogSignalTrace(enc, inRange, whole)
		if err != nil {
			fail(err)
		}
	case *changes != "":
		var cs []int
		for _, f := range strings.Split(*changes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fail(err)
			}
			cs = append(cs, v)
		}
		entries = append(entries, timeprints.Log(enc, timeprints.SignalFromChanges(*m, cs...)))
	case *in != "":
		raw, err := os.ReadFile(*in)
		if err != nil {
			fail(err)
		}
		logger := timeprints.NewLogger(enc)
		for _, c := range string(raw) {
			switch c {
			case '0', '1':
				if e, done := logger.TickValue(c == '1'); done {
					entries = append(entries, e)
				}
			case ' ', '\n', '\t', '\r':
			default:
				fail(fmt.Errorf("invalid wire character %q", c))
			}
		}
	default:
		fail(fmt.Errorf("need -changes, -in or -vcd"))
	}
	for i, e := range entries {
		fmt.Printf("trace-cycle %d: TP=%s k=%d\n", i, e.TP, e.K)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := timeprints.WriteLog(f, *m, *b, entries); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d entries (%d payload bits) to %s\n",
			len(entries), len(entries)*timeprints.BitsPerTraceCycle(*b, *m), *out)
	}
}

func cmdReconstruct(args []string) {
	fs := flag.NewFlagSet("reconstruct", flag.ExitOnError)
	m := fs.Int("m", 64, "trace-cycle length")
	b := fs.Int("b", 13, "timestamp width")
	tp := fs.String("tp", "", "timeprint, MSB-first binary")
	k := fs.Int("k", 0, "logged change count")
	limit := fs.Int("limit", 10, "max candidates (0 = all)")
	window := fs.String("window", "", "restrict changes to lo:hi")
	deadline := fs.Int("deadline", -1, "require >=1 change before this cycle")
	paired := fs.Bool("paired", false, "changes come in adjacent pairs")
	propSpec := fs.String("prop", "", "property expression, e.g. \"mingap(3); dk(32,3)\"")
	parallel := fs.Int("parallel", 1, "cube-split solver workers (1 = serial, 0 = GOMAXPROCS)")
	oracle := fs.String("oracle", "auto", "backend: auto (cost-model routing), sat, sat-par, sat-inc, decode, brute or exhaustive")
	gauss := fs.Bool("gauss", false, "in-search Gaussian elimination: keep the reduced parity matrix live across decision levels on the sat-inc route")
	obsSetup := obsFlags(fs)
	_ = fs.Parse(args)
	enc := newEncoding(*m, *b)
	reg, flushObs := obsSetup()
	if *parallel <= 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}

	if len(*tp) != *b {
		fail(fmt.Errorf("timeprint must be exactly %d bits", *b))
	}
	tpVec, err := timeprints.ParseVector(*tp)
	if err != nil {
		fail(err)
	}
	entry := timeprints.LogEntry{TP: tpVec, K: *k}

	var props []timeprints.Constraint
	if *window != "" {
		parts := strings.SplitN(*window, ":", 2)
		if len(parts) != 2 {
			fail(fmt.Errorf("window must be lo:hi"))
		}
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			fail(fmt.Errorf("bad window %q", *window))
		}
		props = append(props, timeprints.Window{Lo: lo, Hi: hi})
	}
	if *deadline >= 0 {
		props = append(props, timeprints.ChangeBefore{D: *deadline})
	}
	if *paired {
		props = append(props, timeprints.PairedChanges{})
	}
	if *propSpec != "" {
		p, err := timeprints.ParseProperty(*propSpec)
		if err != nil {
			fail(err)
		}
		props = append(props, p)
	}

	disp, err := timeprints.NewDispatcher(enc, timeprints.DispatchOptions{
		Force:         *oracle,
		Workers:       *parallel,
		GaussInSearch: *gauss,
		Obs:           reg,
	})
	if err != nil {
		fail(err)
	}
	sigs, complete, err := disp.Enumerate(context.Background(), entry, props, *limit)
	if err != nil {
		fail(err)
	}
	for _, s := range sigs {
		fmt.Printf("%s  changes=%v\n", s, s.Changes())
	}
	switch {
	case len(sigs) == 0 && complete:
		fmt.Println("UNSAT: no signal matches the log under the given properties")
	case complete:
		fmt.Printf("%d candidate(s), search space exhausted\n", len(sigs))
	default:
		fmt.Printf("%d candidate(s) shown (limit reached)\n", len(sigs))
	}
	flushObs()
}

func cmdDecode(args []string) {
	fs := flag.NewFlagSet("decode", flag.ExitOnError)
	in := fs.String("in", "", "binary log file (as written by log -out)")
	_ = fs.Parse(args)
	if *in == "" {
		fail(fmt.Errorf("need -in"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	m, b, entries, err := timeprints.ReadLog(f)
	if err != nil {
		fail(err)
	}
	fmt.Printf("log header: m=%d b=%d, %d trace-cycles, %d payload bits\n",
		m, b, len(entries), len(entries)*timeprints.BitsPerTraceCycle(b, m))
	for i, e := range entries {
		fmt.Printf("trace-cycle %d: TP=%s k=%d\n", i, e.TP, e.K)
	}
}

func cmdSelfcheck(args []string) {
	fs := flag.NewFlagSet("selfcheck", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "corpus seed")
	cases := fs.Int("cases", 200, "number of (encoding, entry) cases")
	workers := fs.String("workers", "2,4", "comma-separated worker counts for the parallel oracle")
	obsSetup := obsFlags(fs)
	_ = fs.Parse(args)
	reg, flushObs := obsSetup()
	if reg != nil {
		// Wire-format counters (fault injection serializes logs) live on
		// core's package-level observer.
		core.SetObserver(reg)
		defer core.SetObserver(nil)
	}

	var ws []int
	for _, f := range strings.Split(*workers, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w, err := strconv.Atoi(f)
		if err != nil || w < 1 {
			fail(fmt.Errorf("bad -workers value %q", f))
		}
		ws = append(ws, w)
	}

	rep, err := diffcheck.Run(diffcheck.Config{Seed: *seed, Cases: *cases, Workers: ws, Obs: reg})
	if err != nil {
		fail(err)
	}
	fmt.Println("differential corpus:", rep.Summary())
	ok := rep.Ok()
	for _, d := range rep.Divergences {
		fmt.Fprintln(os.Stderr, "DIVERGENCE:", d.Error())
	}

	frep, err := diffcheck.InjectFaults(*seed)
	if err != nil {
		fail(err)
	}
	fmt.Println("fault injection:   ", frep.Summary())
	for _, f := range frep.Failures {
		fmt.Fprintln(os.Stderr, "FAULT NOT CONTAINED:", f)
	}
	flushObs() // before the failure exit, so a red run still dumps metrics
	if !ok || !frep.Ok() {
		os.Exit(1)
	}
	fmt.Println("selfcheck: all oracles agree, all faults fail closed")
}

func cmdRate(args []string) {
	fs := flag.NewFlagSet("rate", flag.ExitOnError)
	m := fs.Int("m", 1024, "trace-cycle length")
	b := fs.Int("b", 24, "timestamp width")
	clock := fs.Float64("clock", 100e6, "signal clock in Hz")
	_ = fs.Parse(args)
	fmt.Printf("bits per trace-cycle: %d\n", timeprints.BitsPerTraceCycle(*b, *m))
	fmt.Printf("logging rate at %.0f Hz: %.1f bit/s\n", *clock, timeprints.LogRate(*b, *m, *clock))
}
