package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/logstore"
)

// cmdMine runs fleet-scale anomaly mining over a timeprintd log store
// directory: every device's stored timeprints are compared against the
// reference device's stream of the same signal with the Section 5.2.2
// refresh-delay/k-mismatch detection, and the population's mismatch
// onsets are summarized.
//
//	timeprint mine -store DIR -ref-device NAME [-signal S]
//	    [-from-us N] [-to-us N] [-parallel N] [-json]
func cmdMine(args []string) {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	storeDir := fs.String("store", "", "log store directory (timeprintd -store-dir)")
	refDevice := fs.String("ref-device", "", "reference device name (the golden unit or simulation twin)")
	signal := fs.String("signal", "", "mine only this signal (default: every signal the reference has)")
	fromUS := fs.Int64("from-us", 0, "earliest stored epoch to consider (Unix microseconds)")
	toUS := fs.Int64("to-us", 0, "latest stored epoch to consider (0 = unbounded)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "device streams compared concurrently")
	asJSON := fs.Bool("json", false, "emit the full report as JSON")
	setupObs := obsFlags(fs)
	_ = fs.Parse(args)
	if *storeDir == "" || *refDevice == "" {
		fail(fmt.Errorf("mine needs -store and -ref-device"))
	}
	reg, flush := setupObs()

	st, rec, err := logstore.Open(*storeDir, logstore.Options{Obs: reg})
	if err != nil {
		fail(err)
	}
	defer st.Close()
	if rec.Corrupt() {
		fmt.Fprintf(os.Stderr, "mine: store recovery salvaged %d record(s) across %d segment(s), dropped %d damaged byte(s):\n",
			rec.Records, rec.Segments, rec.TruncatedBytes)
		for _, e := range rec.Errs {
			fmt.Fprintf(os.Stderr, "mine:   %v\n", e)
		}
	}

	rep, err := experiments.MineStore(st, experiments.MineConfig{
		RefDevice: *refDevice,
		Signal:    *signal,
		From:      *fromUS,
		To:        *toUS,
		Parallel:  *parallel,
		Obs:       reg,
	})
	if err != nil {
		fail(err)
	}
	flush()

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("reference device: %s\n", rep.RefDevice)
	for _, p := range rep.Populations {
		fmt.Printf("signal %s: %d compared, %d affected", p.Signal, p.Compared, p.Affected)
		if p.Failed > 0 {
			fmt.Printf(", %d failed", p.Failed)
		}
		if p.Affected > 0 {
			fmt.Printf("; onset min/median/max = %d/%d/%d", p.OnsetMin, p.OnsetMedian, p.OnsetMax)
		}
		fmt.Println()
	}
	for _, d := range rep.Devices {
		switch {
		case d.Err != "":
			fmt.Printf("  %s/%s: FAILED: %s\n", d.Device, d.Signal, d.Err)
		case !d.Affected():
			fmt.Printf("  %s/%s: clean (%d cycles, %d records)\n", d.Device, d.Signal, d.Cycles, d.Records)
		default:
			fmt.Printf("  %s/%s: first mismatch at trace-cycle %d (%d k-mismatches, %d tp-mismatches over %d cycles)\n",
				d.Device, d.Signal, d.FirstMismatch, d.KMismatches, len(d.TPMismatches), d.Cycles)
		}
	}
}
