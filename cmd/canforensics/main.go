// Command canforensics is the CAN postmortem tool of Section 5.2.1: it
// generates (or accepts parameters describing) a CAN scenario with a
// delayed message, logs timeprints of the bus line, and answers the
// liability question from the log alone — reconstructing when the
// frame appeared on the wire and proving whether it could have met its
// deadline.
//
//	canforensics -start 823 -deadline 900 -window 665 [-m 1000 -b 24]
package main

import (
	"flag"
	"fmt"
	"os"

	timeprints "repro"
	"repro/internal/experiments"
)

func main() {
	cfg := experiments.DefaultCANConfig()
	flag.IntVar(&cfg.M, "m", cfg.M, "trace-cycle length in bit times")
	flag.IntVar(&cfg.B, "b", cfg.B, "timestamp width")
	flag.IntVar(&cfg.StartCycle, "start", cfg.StartCycle, "delayed frame start cycle within the trace-cycle")
	flag.IntVar(&cfg.DeadlineCycle, "deadline", cfg.DeadlineCycle, "deadline cycle within the trace-cycle")
	flag.IntVar(&cfg.WindowLo, "window", cfg.WindowLo, "failure window start cycle")
	flag.Float64Var(&cfg.BitRate, "bitrate", cfg.BitRate, "bus bit rate in bit/s")
	verbose := flag.Bool("v", false, "print the software log")
	flag.Parse()

	res, err := experiments.RunCAN(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "canforensics:", err)
		os.Exit(1)
	}

	if *verbose {
		fmt.Println("software log:")
		for _, r := range res.SoftwareLog {
			fmt.Printf("  %s\n", r)
		}
		fmt.Println()
	}
	fmt.Printf("timeprint log: %d bits per trace-cycle, %.0f bit/s\n",
		timeprints.BitsPerTraceCycle(cfg.B, cfg.M), res.LogRateBps)
	fmt.Printf("trace-cycle %d: TP=%s k=%d\n", res.TraceCycle, res.Entry.TP, res.Entry.K)
	fmt.Printf("whole-cycle reconstruction: start offsets %v (%v)\n", res.WholeOffsets, res.WholeDuration)
	fmt.Printf("window reconstruction:      start offsets %v (%v)\n", res.WindowOffsets, res.WindowDuration)
	fmt.Printf("met-deadline proof:         %v (%v)\n", res.DeadlineStatus, res.DeadlineDuration)

	if len(res.WholeOffsets) == 1 {
		start := res.WholeOffsets[0]
		end := start + res.FrameBits
		fmt.Printf("\nframe on the wire: cycles %d..%d; deadline: %d\n", start, end, cfg.DeadlineCycle)
		if end > cfg.DeadlineCycle {
			fmt.Println("verdict: the transmitter put the frame on the bus too late")
		} else {
			fmt.Println("verdict: the frame met its deadline; the receiver is responsible")
		}
	}
}
