// Package encoding constructs and validates timestamp encodings.
//
// An encoding assigns each clock-cycle i of a trace-cycle (0-based,
// i in [0, m)) a unique nonzero b-bit timestamp TS(i). The paper
// requires injectivity and, to bound reconstruction ambiguity, linear
// independence up to a depth d (every subset of at most d timestamps is
// linearly independent over F2; the paper fixes d = 4). Two generators
// from Section 5.1.2 are provided:
//
//   - Incremental: start from the smallest value satisfying LI-d, then
//     keep incrementing and retaining candidates that preserve LI-d
//     (a greedy lexicode construction). It yields the smallest b.
//   - RandomConstrained: draw timestamps uniformly at random, keeping
//     those that preserve LI-d. It needs a larger b for the same m.
//
// One-hot (b = m, zero ambiguity) and plain binary (b = ⌈log2(m+1)⌉,
// ambiguous) encodings bracket the design space for the ablation
// benchmarks.
package encoding

import (
	"fmt"
	"math/bits"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/gf2"
)

// MaxWidth bounds the timestamp width the uint64-backed generators
// accept.
const MaxWidth = 62

// Encoding is an injective map from clock-cycles to b-bit timestamps.
type Encoding struct {
	scheme string
	ts     []bitvec.Vector // ts[i] is TS(i), width b
	b      int
	depth  int // LI depth the generator guaranteed, 0 if none
}

// Scheme names the generator that produced the encoding.
func (e *Encoding) Scheme() string { return e.scheme }

// M returns the trace-cycle length (number of timestamps).
func (e *Encoding) M() int { return len(e.ts) }

// B returns the timestamp width in bits.
func (e *Encoding) B() int { return e.b }

// Depth returns the linear-independence depth guaranteed at
// construction (0 when the generator makes no such guarantee).
func (e *Encoding) Depth() int { return e.depth }

// Timestamp returns TS(i) for clock-cycle i in [0, M).
func (e *Encoding) Timestamp(i int) bitvec.Vector { return e.ts[i].Clone() }

// Timestamps returns copies of all timestamps in clock-cycle order.
func (e *Encoding) Timestamps() []bitvec.Vector {
	out := make([]bitvec.Vector, len(e.ts))
	for i, t := range e.ts {
		out[i] = t.Clone()
	}
	return out
}

// Matrix returns A = [TS(0) | … | TS(m−1)] ∈ F2^{b×m}.
func (e *Encoding) Matrix() *gf2.Matrix { return gf2.FromColumns(e.ts) }

// FromTimestamps wraps explicit timestamps (all one width) as an
// encoding, validating injectivity and nonzero-ness. Use this for
// hand-specified encodings such as the paper's Figure 4 table.
func FromTimestamps(ts []bitvec.Vector, scheme string) (*Encoding, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("encoding: no timestamps")
	}
	b := ts[0].Width()
	seen := map[string]int{}
	cp := make([]bitvec.Vector, len(ts))
	for i, t := range ts {
		if t.Width() != b {
			return nil, fmt.Errorf("encoding: timestamp %d has width %d, want %d", i, t.Width(), b)
		}
		if t.IsZero() {
			return nil, fmt.Errorf("encoding: timestamp %d is zero", i)
		}
		if j, dup := seen[t.Key()]; dup {
			return nil, fmt.Errorf("encoding: timestamps %d and %d are equal", j, i)
		}
		seen[t.Key()] = i
		cp[i] = t.Clone()
	}
	return &Encoding{scheme: scheme, ts: cp, b: b}, nil
}

// OneHot returns the one-hot encoding with b = m: TS(i) = e_i. All m
// timestamps are linearly independent, so reconstruction is always
// unambiguous, at the cost of an m-bit timeprint.
func OneHot(m int) *Encoding {
	ts := make([]bitvec.Vector, m)
	for i := range ts {
		ts[i] = bitvec.FromOnes(m, i)
	}
	return &Encoding{scheme: "one-hot", ts: ts, b: m, depth: m}
}

// Binary returns the plain binary encoding TS(i) = i+1 with
// b = ⌈log2(m+1)⌉ — maximally compact and maximally ambiguous
// (guaranteed LI depth 2 only: values are distinct and nonzero).
func Binary(m int) *Encoding {
	b := bits.Len(uint(m))
	ts := make([]bitvec.Vector, m)
	for i := range ts {
		ts[i] = bitvec.FromUint(uint64(i+1), b)
	}
	return &Encoding{scheme: "binary", ts: ts, b: b, depth: 2}
}

// liState incrementally maintains the data needed to test whether a
// candidate preserves linear independence of depth d (d <= 4): the
// accepted set S, and for d >= 3 the set of pairwise XORs P. A
// candidate c keeps LI-d iff
//
//	d>=1: c != 0;  d>=2: c ∉ S;  d>=3: c ∉ P;  d>=4: ∀a∈S: c^a ∉ P.
//
// Two representations are used. For widths up to bitmapMaxB a "blocked"
// bitmap of 2^b bits answers admissibility in O(1): on accepting c we
// pre-mark every value a future candidate must avoid (c itself, c^a for
// all accepted a, and — for depth 4 — c^p for every pairwise XOR p),
// which makes the greedy incremental generator O(m³/6) total instead of
// O(candidates·m) map probes. Wider encodings fall back to hash sets.
type liState struct {
	d    int
	s    []uint64
	p    []uint64 // pairwise XORs, kept only when the bitmap is in use and d >= 4
	sSet map[uint64]struct{}
	pSet map[uint64]struct{}

	blocked []uint64 // bitmap of 2^b bits, nil in hash mode
}

// bitmapMaxB caps bitmap memory at 2^27 bits = 16 MiB.
const bitmapMaxB = 27

func newLIState(d, b int) *liState {
	st := &liState{d: d}
	if b <= bitmapMaxB {
		st.blocked = make([]uint64, (1<<uint(b))/64+1)
	} else {
		st.sSet = map[uint64]struct{}{}
		st.pSet = map[uint64]struct{}{}
	}
	return st
}

func (st *liState) mark(v uint64) { st.blocked[v/64] |= 1 << (v % 64) }

func (st *liState) admissible(c uint64) bool {
	if c == 0 {
		return false
	}
	if st.blocked != nil {
		return st.blocked[c/64]&(1<<(c%64)) == 0
	}
	if st.d >= 2 {
		if _, ok := st.sSet[c]; ok {
			return false
		}
	}
	if st.d >= 3 {
		if _, ok := st.pSet[c]; ok {
			return false
		}
	}
	if st.d >= 4 {
		for _, a := range st.s {
			if _, ok := st.pSet[c^a]; ok {
				return false
			}
		}
	}
	return true
}

func (st *liState) accept(c uint64) {
	if st.blocked != nil {
		if st.d >= 2 {
			st.mark(c)
		}
		if st.d >= 3 {
			for _, a := range st.s {
				st.mark(c ^ a)
			}
		}
		if st.d >= 4 {
			for _, p := range st.p {
				st.mark(c ^ p)
			}
			for _, a := range st.s {
				st.p = append(st.p, c^a)
			}
		}
		st.s = append(st.s, c)
		return
	}
	if st.d >= 3 {
		for _, a := range st.s {
			st.pSet[c^a] = struct{}{}
		}
	}
	st.s = append(st.s, c)
	st.sSet[c] = struct{}{}
}

// Incremental generates m timestamps of width b by the paper's greedy
// heuristic: try candidate values 1, 2, 3, … and keep each candidate
// that preserves linear independence of depth d. It returns an error if
// fewer than m admissible values exist below 2^b, which signals that b
// is too small for this (m, d).
func Incremental(m, b, d int) (*Encoding, error) {
	if err := checkParams(m, b, d); err != nil {
		return nil, err
	}
	st := newLIState(d, b)
	ts := make([]bitvec.Vector, 0, m)
	limit := uint64(1) << uint(b)
	for c := uint64(1); c < limit && len(ts) < m; c++ {
		if !st.admissible(c) {
			continue
		}
		st.accept(c)
		ts = append(ts, bitvec.FromUint(c, b))
	}
	if len(ts) < m {
		return nil, fmt.Errorf("encoding: incremental LI-%d exhausted 2^%d values after %d of %d timestamps", d, b, len(ts), m)
	}
	return &Encoding{scheme: "incremental", ts: ts, b: b, depth: d}, nil
}

// RandomConstrained generates m timestamps of width b by drawing
// uniform random values and keeping those that preserve linear
// independence of depth d, per Section 5.1.2. The seed makes runs
// reproducible. It gives up after maxDraws failed draws in a row
// (default 1<<16 when maxDraws <= 0), which signals b is too small.
func RandomConstrained(m, b, d int, seed int64, maxDraws int) (*Encoding, error) {
	if err := checkParams(m, b, d); err != nil {
		return nil, err
	}
	if maxDraws <= 0 {
		maxDraws = 1 << 16
	}
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(1)<<uint(b) - 1
	st := newLIState(d, b)
	ts := make([]bitvec.Vector, 0, m)
	fails := 0
	for len(ts) < m {
		c := rng.Uint64() & mask
		if !st.admissible(c) {
			fails++
			if fails > maxDraws {
				return nil, fmt.Errorf("encoding: random LI-%d stuck after %d draws at %d of %d timestamps (b=%d too small?)", d, fails, len(ts), m, b)
			}
			continue
		}
		fails = 0
		st.accept(c)
		ts = append(ts, bitvec.FromUint(c, b))
	}
	return &Encoding{scheme: "random-constrained", ts: ts, b: b, depth: d}, nil
}

func checkParams(m, b, d int) error {
	if m <= 0 {
		return fmt.Errorf("encoding: m = %d must be positive", m)
	}
	if b <= 0 || b > MaxWidth {
		return fmt.Errorf("encoding: b = %d out of range (0, %d]", b, MaxWidth)
	}
	if d < 1 || d > 4 {
		return fmt.Errorf("encoding: LI depth %d not supported (1..4)", d)
	}
	return nil
}

// MinimalB searches for the smallest b for which the incremental LI-d
// generator can produce m timestamps — the paper's open "smallest
// possible b" question answered by the same practical heuristic the
// authors use. The search starts at the information-theoretic lower
// bound ⌈log2(m+1)⌉ and stops at maxB (default MaxWidth when <= 0).
func MinimalB(m, d, maxB int) (*Encoding, error) {
	if maxB <= 0 {
		maxB = MaxWidth
	}
	for b := bits.Len(uint(m)); b <= maxB; b++ {
		if e, err := Incremental(m, b, d); err == nil {
			return e, nil
		}
	}
	return nil, fmt.Errorf("encoding: no b <= %d supports m=%d at LI-%d", maxB, m, d)
}

// VerifyDepth exhaustively checks that every nonempty subset of at most
// d timestamps is linearly independent, i.e. no subset of size <= d
// XORs to zero. Cost grows as C(m, d); intended for tests and for
// small-to-moderate m.
func VerifyDepth(e *Encoding, d int) error {
	m := len(e.ts)
	idx := make([]int, d)
	var rec func(start, depth int, acc bitvec.Vector) error
	rec = func(start, depth int, acc bitvec.Vector) error {
		if depth > 0 && acc.IsZero() {
			return fmt.Errorf("encoding: timestamps %v XOR to zero", append([]int(nil), idx[:depth]...))
		}
		if depth == d {
			return nil
		}
		for i := start; i < m; i++ {
			idx[depth] = i
			if err := rec(i+1, depth+1, acc.Xor(e.ts[i])); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, 0, bitvec.New(e.b))
}
