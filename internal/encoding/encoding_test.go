package encoding

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/gf2"
)

func TestOneHot(t *testing.T) {
	e := OneHot(8)
	if e.M() != 8 || e.B() != 8 {
		t.Fatalf("dims m=%d b=%d", e.M(), e.B())
	}
	if e.Matrix().Rank() != 8 {
		t.Error("one-hot matrix not full rank")
	}
	if err := VerifyDepth(e, 4); err != nil {
		t.Error(err)
	}
}

func TestBinaryEncoding(t *testing.T) {
	e := Binary(16)
	if e.B() != 5 { // values 1..16 need 5 bits
		t.Fatalf("b=%d", e.B())
	}
	// Injective and nonzero.
	if _, err := FromTimestamps(e.Timestamps(), "check"); err != nil {
		t.Error(err)
	}
	// Binary is NOT LI-3: 1 ^ 2 ^ 3 = 0.
	if err := VerifyDepth(e, 3); err == nil {
		t.Error("binary encoding should fail depth-3 verification")
	}
	if err := VerifyDepth(e, 2); err != nil {
		t.Error(err)
	}
}

func TestIncrementalSmall(t *testing.T) {
	for _, tc := range []struct{ m, b, d int }{
		{16, 8, 4},
		{16, 8, 2},
		{32, 11, 4},
		{64, 13, 4}, // the paper's m=64 row uses b=13
	} {
		e, err := Incremental(tc.m, tc.b, tc.d)
		if err != nil {
			t.Errorf("Incremental(%d,%d,%d): %v", tc.m, tc.b, tc.d, err)
			continue
		}
		if e.M() != tc.m || e.B() != tc.b {
			t.Errorf("dims %d/%d", e.M(), e.B())
		}
		if err := VerifyDepth(e, tc.d); err != nil {
			t.Errorf("Incremental(%d,%d,%d) violates LI-%d: %v", tc.m, tc.b, tc.d, tc.d, err)
		}
	}
}

func TestIncrementalTooSmallB(t *testing.T) {
	// 64 LI-4 timestamps cannot fit in 6 bits (Sidon bound ~ 2^(b/2)).
	if _, err := Incremental(64, 6, 4); err == nil {
		t.Error("expected failure for b too small")
	}
}

func TestIncrementalDeterministic(t *testing.T) {
	a, err := Incremental(50, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Incremental(50, 12, 4)
	for i := 0; i < 50; i++ {
		if !a.Timestamp(i).Equal(b.Timestamp(i)) {
			t.Fatal("incremental generation not deterministic")
		}
	}
	// First accepted values for LI-4 are the greedy lexicode prefix:
	// 1, 2, 4, 7 is wrong for XOR-Sidon; check the actual invariant
	// instead: first element is 1 and the sequence is strictly
	// increasing.
	prev := uint64(0)
	for i := 0; i < 50; i++ {
		v := a.Timestamp(i).Uint64()
		if v <= prev {
			t.Fatal("sequence not strictly increasing")
		}
		prev = v
	}
	if a.Timestamp(0).Uint64() != 1 {
		t.Errorf("first timestamp %d, want 1", a.Timestamp(0).Uint64())
	}
}

func TestRandomConstrained(t *testing.T) {
	e, err := RandomConstrained(64, 20, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDepth(e, 4); err != nil {
		t.Error(err)
	}
	// Reproducible for the same seed.
	e2, _ := RandomConstrained(64, 20, 4, 1, 0)
	for i := 0; i < 64; i++ {
		if !e.Timestamp(i).Equal(e2.Timestamp(i)) {
			t.Fatal("random-constrained not reproducible for equal seeds")
		}
	}
	// Different for different seeds (overwhelmingly likely).
	e3, _ := RandomConstrained(64, 20, 4, 2, 0)
	same := true
	for i := 0; i < 64; i++ {
		if !e.Timestamp(i).Equal(e3.Timestamp(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical encodings")
	}
}

func TestRandomConstrainedGivesUp(t *testing.T) {
	// b=7 cannot hold 64 LI-4 timestamps; must give up, not loop.
	if _, err := RandomConstrained(64, 7, 4, 1, 500); err == nil {
		t.Error("expected give-up error")
	}
}

func TestMinimalB(t *testing.T) {
	e, err := MinimalB(16, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDepth(e, 4); err != nil {
		t.Error(err)
	}
	// One bit fewer must fail, or MinimalB did not find the minimum.
	if _, err := Incremental(16, e.B()-1, 4); err == nil {
		t.Errorf("b=%d works, so %d is not minimal", e.B()-1, e.B())
	}
}

func TestFromTimestampsValidation(t *testing.T) {
	good := []bitvec.Vector{bitvec.FromOnes(4, 0), bitvec.FromOnes(4, 1)}
	if _, err := FromTimestamps(good, "x"); err != nil {
		t.Error(err)
	}
	dup := []bitvec.Vector{bitvec.FromOnes(4, 0), bitvec.FromOnes(4, 0)}
	if _, err := FromTimestamps(dup, "x"); err == nil {
		t.Error("accepted duplicate timestamps")
	}
	zero := []bitvec.Vector{bitvec.New(4)}
	if _, err := FromTimestamps(zero, "x"); err == nil {
		t.Error("accepted zero timestamp")
	}
	mixed := []bitvec.Vector{bitvec.FromOnes(4, 0), bitvec.FromOnes(5, 0)}
	if _, err := FromTimestamps(mixed, "x"); err == nil {
		t.Error("accepted mixed widths")
	}
	if _, err := FromTimestamps(nil, "x"); err == nil {
		t.Error("accepted empty set")
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := Incremental(0, 8, 4); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Incremental(8, 0, 4); err == nil {
		t.Error("b=0 accepted")
	}
	if _, err := Incremental(8, 70, 4); err == nil {
		t.Error("b>MaxWidth accepted")
	}
	if _, err := Incremental(8, 8, 5); err == nil {
		t.Error("d=5 accepted")
	}
	if _, err := RandomConstrained(8, 8, 0, 1, 0); err == nil {
		t.Error("d=0 accepted")
	}
}

func TestBitmapAndHashModesAgree(t *testing.T) {
	// The incremental sequence must be identical whichever liState
	// representation is active. Build the same encoding through the
	// hash fallback by constructing the state directly.
	m, b, d := 40, 12, 4
	want, err := Incremental(m, b, d) // bitmap mode (b <= 27)
	if err != nil {
		t.Fatal(err)
	}
	st := &liState{d: d, sSet: map[uint64]struct{}{}, pSet: map[uint64]struct{}{}}
	var got []uint64
	for c := uint64(1); c < 1<<uint(b) && len(got) < m; c++ {
		if st.admissible(c) {
			st.accept(c)
			got = append(got, c)
		}
	}
	for i := range got {
		if got[i] != want.Timestamp(i).Uint64() {
			t.Fatalf("representations diverge at %d: %d vs %d", i, got[i], want.Timestamp(i).Uint64())
		}
	}
}

func TestDepthMatchesRankCheck(t *testing.T) {
	// Cross-validate VerifyDepth against gf2 rank computation on all
	// 4-subsets for a small encoding.
	e, err := Incremental(20, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	ts := e.Timestamps()
	for a := 0; a < 20; a++ {
		for b := a + 1; b < 20; b++ {
			for c := b + 1; c < 20; c++ {
				for d := c + 1; d < 20; d++ {
					sub := []bitvec.Vector{ts[a], ts[b], ts[c], ts[d]}
					if !gf2.IsLinearlyIndependent(sub) {
						t.Fatalf("4-subset (%d,%d,%d,%d) dependent", a, b, c, d)
					}
				}
			}
		}
	}
}

func TestPaperBValues(t *testing.T) {
	// The paper's Table 1 uses b = 13, 16, 22, 24 for m = 64, 128, 512,
	// 1024 with LI-4 timestamps. Our greedy incremental generator must
	// succeed at (or very near) those widths. Allow +2 bits of slack:
	// the paper's exact heuristic is unspecified.
	if testing.Short() {
		t.Skip("slow encoding generation")
	}
	for _, tc := range []struct{ m, paperB int }{
		{64, 13}, {128, 16}, {512, 22}, {1024, 24},
	} {
		e, err := MinimalB(tc.m, 4, tc.paperB+2)
		if err != nil {
			t.Errorf("m=%d: no b <= %d+2 found: %v", tc.m, tc.paperB, err)
			continue
		}
		t.Logf("m=%d: minimal b=%d (paper %d)", tc.m, e.B(), tc.paperB)
	}
}
