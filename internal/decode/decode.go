// Package decode solves the signal reconstruction problem by
// information-set / meet-in-the-middle syndrome decoding instead of
// SAT. Section 4.2 observes that SR "in terms of linear algebra" is
// the syndrome decoding problem of coding theory (Berlekamp–McEliece–
// van Tilborg): find all weight-k x with A·x = TP. For the small
// change counts where SR is hardest for CDCL search (k <= 4), the
// algebraic structure admits a much faster exact algorithm:
//
//   - k = 0: TP must be zero.
//   - k = 1: TP must equal some timestamp.
//   - k = 2: hash all timestamps; for each i, TP ^ TS(i) must be a
//     later timestamp — O(m) with a hash table.
//   - k = 3: for each i, solve the k=2 instance on TP ^ TS(i) — O(m²).
//   - k = 4: meet in the middle — hash all pairwise XORs (O(m²)
//     space), then match TP ^ (pair) against the table.
//
// The decoder is exact, deterministic, and used as a second
// independent oracle against the SAT reconstructor, and as the
// baseline of the "SAT vs algebraic" ablation. It intentionally does
// NOT support temporal-property pruning — that is the SAT encoding's
// advantage and exactly the trade-off the ablation exposes.
package decode

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
)

// MaxK is the largest change count the algebraic decoder handles.
const MaxK = 4

// Decoder holds the precomputed index structures for one encoding.
type Decoder struct {
	enc *encoding.Encoding
	ts  []bitvec.Vector

	// single maps a timestamp's key to its clock-cycle.
	single map[string]int
	// pairs maps the key of TS(i)^TS(j) to the (i, j) pairs producing
	// it. LI-4 guarantees at most one pair per key; weaker encodings
	// may have several, all of which are tracked.
	pairs      map[string][][2]int
	pairsBuilt bool
}

// check validates an entry's shape against the decoder's encoding,
// wrapping the shared core sentinels for typed classification.
func (d *Decoder) check(entry core.LogEntry) error {
	if entry.TP.Width() != d.enc.B() {
		return fmt.Errorf("decode: timeprint width %d, want %d: %w", entry.TP.Width(), d.enc.B(), core.ErrWidth)
	}
	if entry.K < 0 || entry.K > MaxK {
		return fmt.Errorf("decode: k=%d outside [0,%d] (use the SAT reconstructor): %w", entry.K, MaxK, core.ErrKRange)
	}
	return nil
}

// New builds a decoder for the encoding. The single-timestamp index is
// built eagerly (O(m)); the pairwise index lazily on the first k >= 3
// query (O(m²) time and space).
func New(enc *encoding.Encoding) *Decoder {
	d := &Decoder{
		enc:    enc,
		ts:     enc.Timestamps(),
		single: make(map[string]int, enc.M()),
		pairs:  map[string][][2]int{},
	}
	for i, t := range d.ts {
		d.single[t.Key()] = i
	}
	return d
}

func (d *Decoder) buildPairs() {
	if d.pairsBuilt {
		return
	}
	for i := 0; i < len(d.ts); i++ {
		for j := i + 1; j < len(d.ts); j++ {
			key := d.ts[i].Xor(d.ts[j]).Key()
			d.pairs[key] = append(d.pairs[key], [2]int{i, j})
		}
	}
	d.pairsBuilt = true
}

// Decode returns every signal with exactly entry.K changes whose
// timestamps XOR to entry.TP, in deterministic order. It returns an
// error for k > MaxK.
func (d *Decoder) Decode(entry core.LogEntry) ([]core.Signal, error) {
	if err := d.check(entry); err != nil {
		return nil, err
	}
	m := d.enc.M()
	// Deduplicate (weak encodings only; canonical enumeration order
	// makes duplicates impossible in theory, kept as a safety net) and
	// materialize the signals.
	seen := map[string]bool{}
	var out []core.Signal
	d.forEachSet(entry, func(cs []int) {
		s := core.SignalFromChanges(m, cs...)
		if k := s.K(); k != entry.K {
			return // repeated indices collapsed: not a valid k-set
		}
		key := s.Vector().Key()
		if !seen[key] {
			seen[key] = true
			out = append(out, s)
		}
	})
	sort.Slice(out, func(i, j int) bool {
		return out[i].Vector().Key() < out[j].Vector().Key()
	})
	return out, nil
}

// forEachSet enumerates candidate change sets for the entry, invoking
// fn with each set in canonical increasing index order. The slice is
// reused across calls; fn must not retain it. Every emitted set has
// exactly entry.K strictly increasing indices, so each candidate signal
// appears exactly once (the canonical-order guards make decompositions
// unique even under weak encodings where pairs has multi-pair
// collisions).
func (d *Decoder) forEachSet(entry core.LogEntry, fn func(cs []int)) {
	tp := entry.TP
	var buf [MaxK]int
	switch entry.K {
	case 0:
		if tp.IsZero() {
			fn(buf[:0])
		}
	case 1:
		if i, ok := d.single[tp.Key()]; ok {
			buf[0] = i
			fn(buf[:1])
		}
	case 2:
		for i, t := range d.ts {
			rest := tp.Xor(t)
			if j, ok := d.single[rest.Key()]; ok && j > i {
				buf[0], buf[1] = i, j
				fn(buf[:2])
			}
		}
	case 3:
		d.buildPairs()
		for i, t := range d.ts {
			rest := tp.Xor(t)
			for _, p := range d.pairs[rest.Key()] {
				if p[0] > i { // canonical order i < p0 < p1
					buf[0], buf[1], buf[2] = i, p[0], p[1]
					fn(buf[:3])
				}
			}
		}
	case 4:
		d.buildPairs()
		for i := 0; i < len(d.ts); i++ {
			for j := i + 1; j < len(d.ts); j++ {
				rest := tp.Xor(d.ts[i]).Xor(d.ts[j])
				for _, p := range d.pairs[rest.Key()] {
					// Canonical: i < j < p0 < p1 avoids duplicates.
					if p[0] > j {
						buf[0], buf[1], buf[2], buf[3] = i, j, p[0], p[1]
						fn(buf[:4])
					}
				}
			}
		}
	}
}

// Count returns the number of weight-k solutions without materializing
// the signals: candidate sets are counted as they are enumerated,
// deduplicated by their index-set key alone — no per-candidate bit
// vector, string key, or final sort as in Decode. The canonical
// enumeration order makes duplicates impossible, so the dedup set only
// guards against regressions; it stays cheap ([MaxK]int keys).
func (d *Decoder) Count(entry core.LogEntry) (int, error) {
	if err := d.check(entry); err != nil {
		return 0, err
	}
	seen := map[[MaxK]int]struct{}{}
	n := 0
	d.forEachSet(entry, func(cs []int) {
		key := [MaxK]int{-1, -1, -1, -1}
		copy(key[:], cs)
		if _, dup := seen[key]; !dup {
			seen[key] = struct{}{}
			n++
		}
	})
	return n, nil
}

// Unique reports whether the entry has exactly one reconstruction and
// returns it.
func (d *Decoder) Unique(entry core.LogEntry) (core.Signal, bool, error) {
	sigs, err := d.Decode(entry)
	if err != nil {
		return core.Signal{}, false, err
	}
	if len(sigs) != 1 {
		return core.Signal{}, false, nil
	}
	return sigs[0], true, nil
}

// AmbiguityProfile counts, over every weight-k signal sampled by the
// caller-provided list, how many reconstruct uniquely vs ambiguously —
// the empirical view of Section 4.3's encoding trade-off.
type AmbiguityProfile struct {
	Total     int
	Unique    int
	MaxCands  int
	MeanCands float64
}

// Profile decodes each signal's log entry and aggregates ambiguity.
func (d *Decoder) Profile(signals []core.Signal) (AmbiguityProfile, error) {
	var p AmbiguityProfile
	sum := 0
	for _, s := range signals {
		entry := core.Log(d.enc, s)
		n, err := d.Count(entry)
		if err != nil {
			return p, err
		}
		p.Total++
		sum += n
		if n == 1 {
			p.Unique++
		}
		if n > p.MaxCands {
			p.MaxCands = n
		}
	}
	if p.Total > 0 {
		p.MeanCands = float64(sum) / float64(p.Total)
	}
	return p, nil
}
