package decode

// HasPairCollisions exposes the pairwise-XOR index to the external test
// package: it reports whether any TS(i)^TS(j) value is produced by more
// than one pair, i.e. the encoding is weak enough to exercise the
// multi-pair decomposition paths.
func (d *Decoder) HasPairCollisions() bool {
	d.buildPairs()
	for _, ps := range d.pairs {
		if len(ps) > 1 {
			return true
		}
	}
	return false
}
