// Package decode_test is an external test package: it cross-checks the
// algebraic decoder against the reconstruct oracles, and reconstruct
// itself imports decode (the dispatcher's decode route), so an internal
// test package would form an import cycle.
package decode_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/encoding"
	"repro/internal/reconstruct"
)

func mustEnc(t testing.TB, m, b, d int) *encoding.Encoding {
	t.Helper()
	e, err := encoding.Incremental(m, b, d)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDecodeMatchesSATAllK(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	enc := mustEnc(t, 48, 12, 4)
	dec := decode.New(enc)
	for k := 0; k <= decode.MaxK; k++ {
		for trial := 0; trial < 10; trial++ {
			// Random weight-k signal.
			perm := r.Perm(48)[:k]
			truth := core.SignalFromChanges(48, perm...)
			entry := core.Log(enc, truth)

			alg, err := dec.Decode(entry)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := reconstruct.New(enc, entry, nil, reconstruct.Options{})
			if err != nil {
				t.Fatal(err)
			}
			satSigs, exhausted, err := rec.EnumerateStrict(0)
			if err != nil {
				t.Fatal(err)
			}
			if !exhausted {
				t.Fatal("SAT not exhausted")
			}
			if len(alg) != len(satSigs) {
				t.Fatalf("k=%d: algebraic %d vs SAT %d", k, len(alg), len(satSigs))
			}
			found := false
			satSet := map[string]bool{}
			for _, s := range satSigs {
				satSet[s.Vector().Key()] = true
			}
			for _, s := range alg {
				if !satSet[s.Vector().Key()] {
					t.Fatalf("k=%d: algebraic solution not found by SAT", k)
				}
				if s.Equal(truth) {
					found = true
				}
			}
			if !found {
				t.Fatalf("k=%d: truth not decoded", k)
			}
		}
	}
}

func TestDecodeZeroK(t *testing.T) {
	enc := mustEnc(t, 16, 8, 4)
	dec := decode.New(enc)
	// Quiet trace-cycle: exactly the empty signal.
	sigs, err := dec.Decode(core.Log(enc, core.NewSignal(16)))
	if err != nil || len(sigs) != 1 || sigs[0].K() != 0 {
		t.Fatalf("quiet decode: %v %v", sigs, err)
	}
	// Nonzero TP with k=0: impossible.
	sigs, err = dec.Decode(core.LogEntry{TP: bitvec.FromOnes(8, 0), K: 0})
	if err != nil || len(sigs) != 0 {
		t.Fatalf("nonzero TP k=0: %v %v", sigs, err)
	}
}

func TestDecodeRejectsLargeK(t *testing.T) {
	enc := mustEnc(t, 16, 8, 4)
	dec := decode.New(enc)
	if _, err := dec.Decode(core.LogEntry{TP: bitvec.New(8), K: 5}); err == nil {
		t.Error("k=5 accepted")
	}
	if _, err := dec.Decode(core.LogEntry{TP: bitvec.New(9), K: 1}); err == nil {
		t.Error("wrong width accepted")
	}
}

func TestLI4GivesUniqueUpToK2(t *testing.T) {
	// With LI-4 timestamps, any weight <= 2 signal reconstructs
	// uniquely: two distinct subsets of size <= 2 XORing equal would
	// form a dependent set of size <= 4.
	enc := mustEnc(t, 64, 13, 4)
	dec := decode.New(enc)
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j += 7 {
			entry := core.Log(enc, core.SignalFromChanges(64, i, j))
			s, unique, err := dec.Unique(entry)
			if err != nil {
				t.Fatal(err)
			}
			if !unique {
				t.Fatalf("(%d,%d) ambiguous under LI-4", i, j)
			}
			if !s.Equal(core.SignalFromChanges(64, i, j)) {
				t.Fatalf("(%d,%d) decoded wrongly", i, j)
			}
		}
	}
}

func TestBinaryEncodingAmbiguous(t *testing.T) {
	// The plain binary encoding is only LI-2: weight-2 signals often
	// collide with other weight-2 signals (1^2 = 3 etc.).
	enc := encoding.Binary(16)
	dec := decode.New(enc)
	entry := core.Log(enc, core.SignalFromChanges(16, 0, 1)) // TS 1^2 = 3
	sigs, err := dec.Decode(entry)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) < 2 {
		t.Fatalf("binary encoding should be ambiguous, got %d candidates", len(sigs))
	}
}

func TestProfile(t *testing.T) {
	enc := mustEnc(t, 32, 11, 4)
	dec := decode.New(enc)
	r := rand.New(rand.NewSource(3))
	var sigs []core.Signal
	for i := 0; i < 50; i++ {
		k := 1 + r.Intn(4)
		sigs = append(sigs, core.SignalFromChanges(32, r.Perm(32)[:k]...))
	}
	p, err := dec.Profile(sigs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total != 50 || p.Unique == 0 || p.MeanCands < 1 {
		t.Fatalf("profile %+v", p)
	}
	// One-hot: everything unique.
	oh := decode.New(encoding.OneHot(16))
	var ohSigs []core.Signal
	for i := 0; i < 10; i++ {
		ohSigs = append(ohSigs, core.SignalFromChanges(16, r.Perm(16)[:3]...))
	}
	pOH, err := oh.Profile(ohSigs)
	if err != nil {
		t.Fatal(err)
	}
	if pOH.Unique != pOH.Total || pOH.MaxCands != 1 {
		t.Fatalf("one-hot profile %+v", pOH)
	}
}

// TestWeakEncodingsHighKMatchBruteForce pits the k=3 and k=4 canonical
// enumeration against exhaustive oracles on encodings that are NOT
// LI-4, where the pairwise-XOR index has multi-pair collisions (many
// (i,j) with equal TS(i)^TS(j)) — exactly the regime where a
// double-counting or missed-decomposition bug in the meet-in-the-middle
// would surface. Every decoded set must match GF(2) brute force and
// full 2^m concretization, and Count must agree with len(Decode).
func TestWeakEncodingsHighKMatchBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	encs := []struct {
		name string
		enc  *encoding.Encoding
	}{
		{"binary-12", encoding.Binary(12)}, // LI-2 only: maximal pair collisions
		{"binary-16", encoding.Binary(16)},
		{"inc-16-9-2", mustEnc(t, 16, 9, 2)}, // depth-2 incremental: not LI-4
	}
	for _, tc := range encs {
		enc := tc.enc
		m := enc.M()
		dec := decode.New(enc)
		// Confirm the encoding is genuinely weak: some pairwise XOR must
		// collide, otherwise this test is not exercising the multi-pair
		// paths.
		if !dec.HasPairCollisions() {
			t.Fatalf("%s: no pairwise collisions — test encoding too strong", tc.name)
		}
		for k := 3; k <= 4; k++ {
			for trial := 0; trial < 6; trial++ {
				truth := core.SignalFromChanges(m, r.Perm(m)[:k]...)
				entry := core.Log(enc, truth)
				alg, err := dec.Decode(entry)
				if err != nil {
					t.Fatal(err)
				}
				n, err := dec.Count(entry)
				if err != nil {
					t.Fatal(err)
				}
				if n != len(alg) {
					t.Fatalf("%s k=%d: Count %d != len(Decode) %d", tc.name, k, n, len(alg))
				}
				want := map[string]bool{}
				bf, err := reconstruct.BruteForce(enc, entry, 0, 24)
				if err != nil {
					t.Fatal(err)
				}
				for _, s := range bf {
					want[s.Vector().Key()] = true
				}
				exSet := map[string]bool{}
				for _, s := range core.Concretize(enc, entry) {
					exSet[s.Vector().Key()] = true
				}
				if len(exSet) != len(want) {
					t.Fatalf("%s k=%d: brute force %d vs exhaustive %d", tc.name, k, len(want), len(exSet))
				}
				got := map[string]bool{}
				for _, s := range alg {
					if got[s.Vector().Key()] {
						t.Fatalf("%s k=%d: duplicate in Decode output", tc.name, k)
					}
					got[s.Vector().Key()] = true
					if !want[s.Vector().Key()] {
						t.Fatalf("%s k=%d: decoded set not in brute force", tc.name, k)
					}
				}
				for key := range want {
					if !got[key] {
						t.Fatalf("%s k=%d: brute-force solution missed by decode (%d vs %d)",
							tc.name, k, len(got), len(want))
					}
				}
				if !got[truth.Vector().Key()] {
					t.Fatalf("%s k=%d: truth not decoded", tc.name, k)
				}
			}
		}
	}
}

func TestCountMatchesDecodeLen(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, enc := range []*encoding.Encoding{
		encoding.Binary(14),
		mustEnc(t, 32, 11, 4),
		mustEnc(t, 48, 12, 4),
	} {
		dec := decode.New(enc)
		for k := 0; k <= decode.MaxK; k++ {
			for trial := 0; trial < 8; trial++ {
				entry := core.Log(enc, core.SignalFromChanges(enc.M(), r.Perm(enc.M())[:k]...))
				sigs, err := dec.Decode(entry)
				if err != nil {
					t.Fatal(err)
				}
				n, err := dec.Count(entry)
				if err != nil {
					t.Fatal(err)
				}
				if n != len(sigs) {
					t.Fatalf("m=%d k=%d: Count %d != len(Decode) %d", enc.M(), k, n, len(sigs))
				}
			}
		}
	}
}

func TestDecodeTypedErrors(t *testing.T) {
	dec := decode.New(mustEnc(t, 16, 8, 4))
	if _, err := dec.Decode(core.LogEntry{TP: bitvec.New(9), K: 1}); !errors.Is(err, core.ErrWidth) {
		t.Errorf("decode width: %v", err)
	}
	if _, err := dec.Decode(core.LogEntry{TP: bitvec.New(8), K: decode.MaxK + 1}); !errors.Is(err, core.ErrKRange) {
		t.Errorf("decode k: %v", err)
	}
	if _, err := dec.Count(core.LogEntry{TP: bitvec.New(9), K: 1}); !errors.Is(err, core.ErrWidth) {
		t.Errorf("count width: %v", err)
	}
	if _, err := dec.Count(core.LogEntry{TP: bitvec.New(8), K: -1}); !errors.Is(err, core.ErrKRange) {
		t.Errorf("count negative k: %v", err)
	}
}

// BenchmarkCount vs BenchmarkDecodeForCount: the satellite fix makes
// Count enumerate index sets without materializing signals, string keys
// or sorting. Run with -bench 'Count|DecodeForCount' to compare.
func benchEntry(b *testing.B) (*decode.Decoder, core.LogEntry) {
	b.Helper()
	enc := encoding.Binary(24) // weak: thousands of k=4 candidates
	r := rand.New(rand.NewSource(17))
	return decode.New(enc), core.Log(enc, core.SignalFromChanges(24, r.Perm(24)[:4]...))
}

func BenchmarkCount(b *testing.B) {
	dec, entry := benchEntry(b)
	if _, err := dec.Count(entry); err != nil { // warm the pair index
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Count(entry); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeForCount(b *testing.B) {
	dec, entry := benchEntry(b)
	if _, err := dec.Decode(entry); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigs, err := dec.Decode(entry)
		if err != nil {
			b.Fatal(err)
		}
		_ = len(sigs)
	}
}

func TestDecodeDeterministicOrder(t *testing.T) {
	enc := encoding.Binary(12)
	dec := decode.New(enc)
	entry := core.Log(enc, core.SignalFromChanges(12, 0, 1))
	a, _ := dec.Decode(entry)
	b, _ := dec.Decode(entry)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("nondeterministic order")
		}
	}
}
