package rtl

import "testing"

func TestWireBasics(t *testing.T) {
	w := NewWire("w", 8)
	if w.Get() != 0 {
		t.Fatal("nonzero initial value")
	}
	w.Set(0x1FF) // masked to 8 bits
	if w.Get() != 0 {
		t.Fatal("Set visible before commit")
	}
	w.commit()
	if w.Get() != 0xFF {
		t.Fatalf("got %#x", w.Get())
	}
	w.Reset(3)
	if w.Get() != 3 {
		t.Fatal("Reset not immediate")
	}
}

func TestWireBool(t *testing.T) {
	w := NewWire("b", 1)
	w.SetBool(true)
	w.commit()
	if !w.GetBool() {
		t.Fatal("bool set")
	}
	w.SetBool(false)
	w.commit()
	if w.GetBool() {
		t.Fatal("bool clear")
	}
}

func TestWireWidthValidation(t *testing.T) {
	for _, wd := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d accepted", wd)
				}
			}()
			NewWire("x", wd)
		}()
	}
	// 64 is fine and must not mask.
	w := NewWire("x", 64)
	w.Set(^uint64(0))
	w.commit()
	if w.Get() != ^uint64(0) {
		t.Error("64-bit wire masked")
	}
}

// counter increments its output wire every cycle.
type counter struct{ out *Wire }

func (c *counter) Eval(cycle int64) { c.out.Set(c.out.Get() + 1) }

// follower copies its input to its output (one cycle behind).
type follower struct{ in, out *Wire }

func (f *follower) Eval(cycle int64) { f.out.Set(f.in.Get()) }

func TestTwoPhaseSemantics(t *testing.T) {
	sim := NewSimulator()
	a := sim.Wire("a", 32)
	b := sim.Wire("b", 32)
	sim.Add(&counter{out: a})
	sim.Add(&follower{in: a, out: b})
	sim.Run(5)
	// After 5 cycles: a = 5; b lags one cycle: b = 4.
	if a.Get() != 5 || b.Get() != 4 {
		t.Fatalf("a=%d b=%d", a.Get(), b.Get())
	}
	if sim.Cycle() != 5 {
		t.Fatalf("cycle %d", sim.Cycle())
	}
}

func TestEvaluationOrderIndependence(t *testing.T) {
	// Registering components in either order must give identical
	// results — the committed-read discipline guarantees it.
	run := func(followerFirst bool) uint64 {
		sim := NewSimulator()
		a := sim.Wire("a", 32)
		b := sim.Wire("b", 32)
		cnt := &counter{out: a}
		fol := &follower{in: a, out: b}
		if followerFirst {
			sim.Add(fol)
			sim.Add(cnt)
		} else {
			sim.Add(cnt)
			sim.Add(fol)
		}
		sim.Run(10)
		return b.Get()
	}
	if run(true) != run(false) {
		t.Fatal("evaluation order changed results")
	}
}

type proberec struct {
	vals []uint64
	w    *Wire
}

func (p *proberec) Observe(cycle int64) { p.vals = append(p.vals, p.w.Get()) }

func TestProbeSeesCommittedValues(t *testing.T) {
	sim := NewSimulator()
	a := sim.Wire("a", 32)
	sim.Add(&counter{out: a})
	p := &proberec{w: a}
	sim.AddProbe(p)
	sim.Run(3)
	want := []uint64{1, 2, 3}
	for i, v := range want {
		if p.vals[i] != v {
			t.Fatalf("probe values %v", p.vals)
		}
	}
}
