// Package rtl is a small cycle-accurate simulation kernel in the style
// of an RTL simulator: components exchange values through wires and
// advance under a two-phase clock. In the evaluation phase every
// component reads the current wire values and schedules its outputs;
// at the clock edge all wires commit simultaneously. This mirrors
// synchronous hardware semantics (no evaluation-order dependence) and
// hosts the LEON3-style core, the AHB bus, the SRAM model, the
// timeprints agg-log hardware and the UART of experiment 5.2.2 — the
// same stack the paper runs on a Nexys3 FPGA and in Questa-Sim.
package rtl

import "fmt"

// Wire is a clocked value holder: reads see the value committed at the
// last clock edge; writes become visible at the next edge. Width is
// informational (values are masked to it).
type Wire struct {
	Name  string
	Width int
	cur   uint64
	next  uint64
	dirty bool
	mask  uint64
}

// NewWire creates a wire of the given bit width (1..64).
func NewWire(name string, width int) *Wire {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("rtl: wire %q width %d", name, width))
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = (1 << uint(width)) - 1
	}
	return &Wire{Name: name, Width: width, mask: mask}
}

// Get reads the current (committed) value.
func (w *Wire) Get() uint64 { return w.cur }

// GetBool reads the current value as a boolean (bit 0).
func (w *Wire) GetBool() bool { return w.cur&1 != 0 }

// Set schedules a new value for the next clock edge.
func (w *Wire) Set(v uint64) {
	w.next = v & w.mask
	w.dirty = true
}

// SetBool schedules a boolean value.
func (w *Wire) SetBool(v bool) {
	if v {
		w.Set(1)
	} else {
		w.Set(0)
	}
}

// commit latches the scheduled value.
func (w *Wire) commit() {
	if w.dirty {
		w.cur = w.next
		w.dirty = false
	}
}

// Reset forces the wire to a value immediately (both phases) — for
// power-on initialization only.
func (w *Wire) Reset(v uint64) {
	w.cur = v & w.mask
	w.next = w.cur
	w.dirty = false
}

// Component is a clocked hardware block.
type Component interface {
	// Eval reads wires and schedules outputs for the next edge.
	Eval(cycle int64)
}

// Probe observes committed wire values once per cycle, after the edge.
type Probe interface {
	Observe(cycle int64)
}

// Simulator owns the clock, the wires and the components.
type Simulator struct {
	wires  []*Wire
	comps  []Component
	probes []Probe
	cycle  int64
}

// NewSimulator returns an empty simulator at cycle 0.
func NewSimulator() *Simulator { return &Simulator{} }

// Wire creates and registers a wire.
func (s *Simulator) Wire(name string, width int) *Wire {
	w := NewWire(name, width)
	s.wires = append(s.wires, w)
	return w
}

// Add registers a component. Evaluation order never affects results —
// all reads see pre-edge values — but is kept stable for reproducible
// diagnostics.
func (s *Simulator) Add(c Component) { s.comps = append(s.comps, c) }

// AddProbe registers an observer called after every clock edge.
func (s *Simulator) AddProbe(p Probe) { s.probes = append(s.probes, p) }

// Cycle returns the number of completed clock cycles.
func (s *Simulator) Cycle() int64 { return s.cycle }

// Step advances one clock cycle: evaluate every component against the
// committed state, then commit all wires, then fire probes.
func (s *Simulator) Step() {
	for _, c := range s.comps {
		c.Eval(s.cycle)
	}
	for _, w := range s.wires {
		w.commit()
	}
	s.cycle++
	for _, p := range s.probes {
		p.Observe(s.cycle)
	}
}

// Run advances n cycles.
func (s *Simulator) Run(n int64) {
	for i := int64(0); i < n; i++ {
		s.Step()
	}
}
