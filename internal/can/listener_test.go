package can

import (
	"math/rand"
	"testing"
)

func TestDecodeLineSingleFrame(t *testing.T) {
	f := Frame{ID: 100, Data: []byte{0, 0, 0x19, 0, 0, 0, 0, 0}}
	bits, err := f.Bits(true)
	if err != nil {
		t.Fatal(err)
	}
	// Embed at offset 37 on an idle line.
	line := make([]bool, 400)
	for i := range line {
		line[i] = true
	}
	copy(line[37:], bits)

	got := DecodeLine(line)
	if len(got) != 1 {
		t.Fatalf("%d frames decoded", len(got))
	}
	if got[0].StartBit != 37 || got[0].Frame.ID != 100 {
		t.Fatalf("frame %+v", got[0])
	}
	if got[0].Frame.Data[2] != 0x19 {
		t.Fatal("payload wrong")
	}
}

func TestDecodeLineScheduleRoundTrip(t *testing.T) {
	// Every frame the scheduler put on the wire must be recovered with
	// the right identifier, payload and position.
	bus := Bus{BitRate: 5e6, Stuffing: true}
	msgs := DemoScenario(bus.BitRate)
	horizon := bus.BitTime(0.05)
	txs, err := bus.Schedule(msgs, horizon, nil)
	if err != nil {
		t.Fatal(err)
	}
	line := Wire(txs, horizon)
	got := DecodeLine(line)
	if len(got) != len(txs) {
		t.Fatalf("decoded %d frames, scheduled %d", len(got), len(txs))
	}
	for i, d := range got {
		if d.StartBit != int(txs[i].StartBit) {
			t.Errorf("frame %d at %d, want %d", i, d.StartBit, txs[i].StartBit)
		}
		if d.Frame.ID != txs[i].Msg.Frame.ID {
			t.Errorf("frame %d id %d, want %d", i, d.Frame.ID, txs[i].Msg.Frame.ID)
		}
		want := txs[i].Msg.Frame.Data
		if len(d.Frame.Data) != len(want) {
			t.Errorf("frame %d dlc %d, want %d", i, len(d.Frame.Data), len(want))
			continue
		}
		for j := range want {
			if d.Frame.Data[j] != want[j] {
				t.Errorf("frame %d byte %d", i, j)
			}
		}
	}
}

func TestDecodeLineChangesRoundTrip(t *testing.T) {
	// The reconstruction pipeline's view: line -> changes -> line ->
	// frames.
	bus := Bus{BitRate: 5e6, Stuffing: true}
	txs, err := bus.Schedule(DemoScenario(bus.BitRate), bus.BitTime(0.02), nil)
	if err != nil {
		t.Fatal(err)
	}
	horizon := bus.BitTime(0.02)
	line := Wire(txs, horizon)
	changes := Changes(line)
	rebuilt := LineFromChanges(changes, horizon)
	for i := range line {
		if line[i] != rebuilt[i] {
			t.Fatalf("line mismatch at %d", i)
		}
	}
	if got := DecodeLine(rebuilt); len(got) != len(txs) {
		t.Fatalf("decoded %d frames from rebuilt line, want %d", len(got), len(txs))
	}
}

func TestDecodeLineIgnoresGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	line := make([]bool, 500)
	for i := range line {
		line[i] = r.Intn(2) == 1
	}
	// Must not panic; any decoded frame must have a valid CRC by
	// construction of the parser (random noise rarely passes CRC-15).
	_ = DecodeLine(line)
}

func TestDecodeLineTruncatedFrame(t *testing.T) {
	f := Frame{ID: 5, Data: []byte{1, 2, 3}}
	bits, _ := f.Bits(true)
	line := make([]bool, 30) // too short for the frame
	for i := range line {
		line[i] = true
	}
	copy(line[5:], bits[:20])
	if got := DecodeLine(line); len(got) != 0 {
		t.Fatalf("decoded %d frames from a truncation", len(got))
	}
}
