package can

import "testing"

// FuzzDestuff ensures the destuffer never panics and that
// stuff/destuff stays inverse on destuffable inputs.
func FuzzDestuff(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 1, 1, 1, 1, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		bits := make([]bool, len(raw))
		for i, b := range raw {
			bits[i] = b&1 == 1
		}
		if _, err := Destuff(bits); err != nil {
			return
		}
		// Destuffable inputs must equal stuff(destuff(input))? No —
		// only the converse holds; check stuff's own invariant instead.
		st := stuff(bits)
		back, err := Destuff(st)
		if err != nil {
			t.Fatalf("stuffed stream not destuffable: %v", err)
		}
		if len(back) != len(bits) {
			t.Fatal("stuff/destuff length mismatch")
		}
	})
}

// FuzzParseFrame ensures arbitrary bit patterns never panic the frame
// parser.
func FuzzParseFrame(f *testing.F) {
	good, _ := Frame{ID: 100, Data: []byte{1, 2}}.Bits(false)
	raw := make([]byte, len(good))
	for i, b := range good {
		if b {
			raw[i] = 1
		}
	}
	f.Add(raw)
	f.Fuzz(func(t *testing.T, data []byte) {
		bits := make([]bool, len(data))
		for i, b := range data {
			bits[i] = b&1 == 1
		}
		frame, err := ParseFrame(bits)
		if err != nil {
			return
		}
		// Accepted frames must re-encode to the same raw bits.
		re, err := frame.Bits(false)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		rawLen := 1 + 11 + 3 + 4 + len(frame.Data)*8 + 15
		for i := 0; i < rawLen; i++ {
			if re[i] != bits[i] {
				t.Fatal("re-encoded frame differs")
			}
		}
	})
}
