package can

import "fmt"

// ExtendedFrame is a CAN 2.0B data frame with a 29-bit identifier,
// transmitted as an 11-bit base ID, SRR/IDE recessive, an 18-bit ID
// extension, then RTR/r1/r0 and the usual control/data/CRC fields.
type ExtendedFrame struct {
	ID   uint32 // 29-bit identifier
	Data []byte // 0..8 bytes
}

// Validate checks identifier range and payload length.
func (f ExtendedFrame) Validate() error {
	if f.ID > 0x1FFF_FFFF {
		return fmt.Errorf("can: identifier %#x exceeds 29 bits", f.ID)
	}
	if len(f.Data) > 8 {
		return fmt.Errorf("can: %d data bytes exceed 8", len(f.Data))
	}
	return nil
}

// Bits serializes the extended frame to bus levels (true = recessive),
// SOF through EOF plus intermission, with optional stuffing over
// SOF..CRC.
func (f ExtendedFrame) Bits(stuffing bool) ([]bool, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	var raw []bool
	push := func(v uint32, n int) {
		for i := n - 1; i >= 0; i-- {
			raw = append(raw, v&(1<<uint(i)) != 0)
		}
	}
	base := f.ID >> 18    // 11 most significant bits
	ext := f.ID & 0x3FFFF // 18 least significant bits
	push(0, 1)            // SOF
	push(base, 11)        // base identifier
	push(1, 1)            // SRR: recessive
	push(1, 1)            // IDE: recessive marks extended format
	push(ext, 18)         // identifier extension
	push(0, 1)            // RTR: dominant for data frames
	push(0, 2)            // r1, r0
	push(uint32(len(f.Data)), 4)
	for _, d := range f.Data {
		push(uint32(d), 8)
	}
	crc := CRC15(raw)
	push(uint32(crc), 15)

	out := raw
	if stuffing {
		out = stuff(raw)
	}
	out = append(out, true, false, true) // CRC del, ACK, ACK del
	for i := 0; i < 7+3; i++ {
		out = append(out, true)
	}
	return out, nil
}

// WireLength returns the on-wire length in bit times.
func (f ExtendedFrame) WireLength(stuffing bool) (int, error) {
	bits, err := f.Bits(stuffing)
	if err != nil {
		return 0, err
	}
	return len(bits), nil
}

// ParseExtendedFrame decodes an extended frame from its unstuffed
// SOF..CRC bit sequence, verifying structure and CRC.
func ParseExtendedFrame(raw []bool) (ExtendedFrame, error) {
	const header = 1 + 11 + 2 + 18 + 3 + 4
	if len(raw) < header+15 {
		return ExtendedFrame{}, fmt.Errorf("can: extended frame too short (%d bits)", len(raw))
	}
	pos := 0
	read := func(n int) uint32 {
		var v uint32
		for i := 0; i < n; i++ {
			v <<= 1
			if raw[pos] {
				v |= 1
			}
			pos++
		}
		return v
	}
	if read(1) != 0 {
		return ExtendedFrame{}, fmt.Errorf("can: missing SOF")
	}
	base := read(11)
	if read(1) != 1 {
		return ExtendedFrame{}, fmt.Errorf("can: SRR must be recessive")
	}
	if read(1) != 1 {
		return ExtendedFrame{}, fmt.Errorf("can: not an extended frame (IDE dominant)")
	}
	ext := read(18)
	if read(1) != 0 {
		return ExtendedFrame{}, fmt.Errorf("can: RTR frames not supported")
	}
	read(2) // r1, r0
	dlc := int(read(4))
	if dlc > 8 {
		return ExtendedFrame{}, fmt.Errorf("can: DLC %d exceeds 8", dlc)
	}
	if len(raw) != header+dlc*8+15 {
		return ExtendedFrame{}, fmt.Errorf("can: frame length %d does not match DLC %d", len(raw), dlc)
	}
	data := make([]byte, dlc)
	for i := range data {
		data[i] = byte(read(8))
	}
	wantCRC := CRC15(raw[:pos])
	if uint16(read(15)) != wantCRC {
		return ExtendedFrame{}, fmt.Errorf("can: CRC mismatch")
	}
	return ExtendedFrame{ID: base<<18 | ext, Data: data}, nil
}
