package can

import (
	"fmt"
	"sort"
)

// Message is a periodic application-level CAN message, mirroring a
// CANoe scenario row.
type Message struct {
	Name  string
	Frame Frame
	// PeriodBits is the transmission period in bit times. (At 5 Mbps a
	// bit time is 200 ns, so a 10 ms period is 50 000 bit times.)
	PeriodBits int64
	// OffsetBits shifts the first release.
	OffsetBits int64
}

// Transmission is one frame instance as it appeared on the wire.
type Transmission struct {
	Msg      *Message
	Release  int64 // bit time the message became ready (incl. injected delay)
	StartBit int64 // bit time SOF appeared on the bus
	Bits     []bool
}

// EndBit returns the first bit time after the transmission (including
// EOF and intermission).
func (t Transmission) EndBit() int64 { return t.StartBit + int64(len(t.Bits)) }

// Bus is a single CAN bus. The idle level is recessive (1). Pending
// messages arbitrate by identifier: lower ID wins, FIFO within one ID.
type Bus struct {
	// BitRate in bits/second; used only to convert to/from seconds.
	BitRate float64
	// Stuffing enables ISO 11898 bit stuffing.
	Stuffing bool
}

// Seconds converts a bit time to seconds.
func (b Bus) Seconds(bit int64) float64 { return float64(bit) / b.BitRate }

// BitTime converts seconds to a bit time (truncating).
func (b Bus) BitTime(sec float64) int64 { return int64(sec * b.BitRate) }

// DelayKey identifies one instance of a periodic message for delay
// injection: the message name and its occurrence index (0-based).
type DelayKey struct {
	Name     string
	Instance int
}

// Schedule serializes the periodic messages over horizonBits bit times
// and returns the transmissions in wire order. delays adds extra
// release latency (in bit times) to specific message instances — the
// experiment's manually applied delays.
func (b Bus) Schedule(msgs []Message, horizonBits int64, delays map[DelayKey]int64) ([]Transmission, error) {
	type pending struct {
		msg     *Message
		release int64
		seq     int64 // release order for FIFO tie-breaking
	}
	var queue []pending
	var seq int64
	for mi := range msgs {
		m := &msgs[mi]
		if m.PeriodBits <= 0 {
			return nil, fmt.Errorf("can: message %q has period %d", m.Name, m.PeriodBits)
		}
		if err := m.Frame.Validate(); err != nil {
			return nil, fmt.Errorf("can: message %q: %w", m.Name, err)
		}
		inst := 0
		for t := m.OffsetBits; t < horizonBits; t += m.PeriodBits {
			rel := t
			if d, ok := delays[DelayKey{Name: m.Name, Instance: inst}]; ok {
				rel += d
			}
			queue = append(queue, pending{msg: m, release: rel, seq: seq})
			seq++
			inst++
		}
	}
	// Deterministic ordering of the pending pool.
	sort.Slice(queue, func(i, j int) bool {
		if queue[i].release != queue[j].release {
			return queue[i].release < queue[j].release
		}
		if queue[i].msg.Frame.ID != queue[j].msg.Frame.ID {
			return queue[i].msg.Frame.ID < queue[j].msg.Frame.ID
		}
		return queue[i].seq < queue[j].seq
	})

	var out []Transmission
	var busFree int64 // first bit time the bus is idle
	for len(queue) > 0 {
		// Candidates: released at or before the bus-free instant; if
		// none, the bus idles until the earliest release.
		at := busFree
		if queue[0].release > at {
			at = queue[0].release
		}
		// Collect all released by `at` and pick the arbitration winner.
		win := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].release > at {
				break
			}
			wi, ci := queue[win], queue[i]
			if ci.msg.Frame.ID < wi.msg.Frame.ID ||
				(ci.msg.Frame.ID == wi.msg.Frame.ID && ci.seq < wi.seq) {
				win = i
			}
		}
		p := queue[win]
		queue = append(queue[:win], queue[win+1:]...)

		bits, err := p.msg.Frame.Bits(b.Stuffing)
		if err != nil {
			return nil, err
		}
		start := p.release
		if start < busFree {
			start = busFree
		}
		out = append(out, Transmission{Msg: p.msg, Release: p.release, StartBit: start, Bits: bits})
		busFree = start + int64(len(bits))
	}
	return out, nil
}

// Wire renders the transmissions into the bus line's level sequence
// over [0, horizonBits): recessive when idle, frame bits otherwise.
func Wire(txs []Transmission, horizonBits int64) []bool {
	line := make([]bool, horizonBits)
	for i := range line {
		line[i] = true // idle recessive
	}
	for _, tx := range txs {
		for i, bit := range tx.Bits {
			pos := tx.StartBit + int64(i)
			if pos >= 0 && pos < horizonBits {
				line[pos] = bit
			}
		}
	}
	return line
}

// Changes extracts the change instants (bit times where the line level
// differs from the previous bit) from a line level sequence. The level
// before time 0 is recessive idle.
func Changes(line []bool) []int64 {
	var out []int64
	prev := true
	for i, v := range line {
		if v != prev {
			out = append(out, int64(i))
		}
		prev = v
	}
	return out
}

// LogRecord is one row of the transmitter-side software log — what the
// paper's message listing shows (timestamp, name, id, payload).
type LogRecord struct {
	Time float64 // seconds of SOF on the wire
	Name string
	ID   uint16
	Data []byte
	Bits int // wire length, the paper's "-> N" column
}

// SoftwareLog renders the transmissions as the application-level log.
func (b Bus) SoftwareLog(txs []Transmission) []LogRecord {
	out := make([]LogRecord, len(txs))
	for i, tx := range txs {
		out[i] = LogRecord{
			Time: b.Seconds(tx.StartBit),
			Name: tx.Msg.Name,
			ID:   tx.Msg.Frame.ID,
			Data: append([]byte(nil), tx.Msg.Frame.Data...),
			Bits: len(tx.Bits),
		}
	}
	return out
}

func (r LogRecord) String() string {
	s := fmt.Sprintf("%.6fs %s(%d)d %d", r.Time, r.Name, r.ID, len(r.Data))
	for _, d := range r.Data {
		s += fmt.Sprintf(" %02x", d)
	}
	return fmt.Sprintf("%s -> %d", s, r.Bits)
}

// DemoScenario returns the paper's message mix: the four messages of
// the Section 5.2.1 listing with realistic periods (in bit times at
// the given bit rate).
func DemoScenario(bitRate float64) []Message {
	ms := func(d float64) int64 { return int64(d / 1000 * bitRate) }
	return []Message{
		{
			Name:       "EngineData",
			Frame:      Frame{ID: 100, Data: []byte{0x00, 0x00, 0x19, 0x00, 0x00, 0x00, 0x00, 0x00}},
			PeriodBits: ms(10),
		},
		{
			Name:       "Ignition_Info",
			Frame:      Frame{ID: 103, Data: []byte{0x01, 0x00}},
			PeriodBits: ms(20),
			OffsetBits: ms(2),
		},
		{
			Name:       "ABSdata",
			Frame:      Frame{ID: 201, Data: []byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00}},
			PeriodBits: ms(15),
			OffsetBits: ms(5),
		},
		{
			Name:       "GearBoxInfo",
			Frame:      Frame{ID: 1020, Data: []byte{0x01}},
			PeriodBits: ms(25),
			OffsetBits: ms(8),
		},
	}
}
