package can

import (
	"math/rand"
	"testing"
)

func TestExtendedFrameValidate(t *testing.T) {
	if err := (ExtendedFrame{ID: 0x1FFFFFFF, Data: make([]byte, 8)}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (ExtendedFrame{ID: 0x20000000}).Validate(); err == nil {
		t.Error("30-bit ID accepted")
	}
	if err := (ExtendedFrame{ID: 1, Data: make([]byte, 9)}).Validate(); err == nil {
		t.Error("9 bytes accepted")
	}
}

func TestExtendedFrameStructure(t *testing.T) {
	f := ExtendedFrame{ID: 0x1ABCDE42, Data: []byte{0x55}}
	bits, err := f.Bits(false)
	if err != nil {
		t.Fatal(err)
	}
	// SOF(1)+base(11)+SRR(1)+IDE(1)+ext(18)+RTR(1)+r1r0(2)+DLC(4)+
	// data(8)+CRC(15)+del/ack/del(3)+EOF(7)+IFS(3).
	want := 1 + 11 + 1 + 1 + 18 + 1 + 2 + 4 + 8 + 15 + 3 + 7 + 3
	if len(bits) != want {
		t.Fatalf("length %d want %d", len(bits), want)
	}
	// SRR and IDE recessive at positions 12, 13.
	if !bits[12] || !bits[13] {
		t.Error("SRR/IDE not recessive")
	}
	if bits[0] {
		t.Error("SOF not dominant")
	}
}

func TestExtendedFrameRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		f := ExtendedFrame{ID: r.Uint32() & 0x1FFFFFFF, Data: make([]byte, r.Intn(9))}
		for i := range f.Data {
			f.Data[i] = byte(r.Intn(256))
		}
		bits, err := f.Bits(false)
		if err != nil {
			t.Fatal(err)
		}
		rawLen := 1 + 11 + 2 + 18 + 3 + 4 + len(f.Data)*8 + 15
		got, err := ParseExtendedFrame(bits[:rawLen])
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if got.ID != f.ID || len(got.Data) != len(f.Data) {
			t.Fatalf("round trip mismatch: %x vs %x", got.ID, f.ID)
		}
		for i := range f.Data {
			if got.Data[i] != f.Data[i] {
				t.Fatal("payload mismatch")
			}
		}
	}
}

func TestExtendedFrameRejectsBaseFormat(t *testing.T) {
	base := Frame{ID: 100, Data: []byte{1}}
	bits, _ := base.Bits(false)
	rawLen := 1 + 11 + 3 + 4 + 8 + 15
	if _, err := ParseExtendedFrame(bits[:rawLen]); err == nil {
		t.Error("base-format frame parsed as extended")
	}
}

func TestExtendedFrameStuffingRoundTrip(t *testing.T) {
	f := ExtendedFrame{ID: 0, Data: []byte{0x00, 0x00}} // long dominant runs
	stuffed, err := f.Bits(true)
	if err != nil {
		t.Fatal(err)
	}
	unstuffed, err := f.Bits(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(stuffed) <= len(unstuffed) {
		t.Error("stuffing added no bits to an all-zero frame")
	}
	// Destuff the SOF..CRC region and re-parse.
	tail := 3 + 7 + 3
	raw, err := Destuff(stuffed[:len(stuffed)-tail])
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseExtendedFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != f.ID {
		t.Error("stuffed round trip mismatch")
	}
}
