// Package can models a Controller Area Network bus (ISO 11898, CAN
// 2.0A base format) at bit level: frame encoding with CRC-15 and
// optional bit stuffing, an arbitrating bus with periodic traffic and
// injectable per-message delays, the transmitter-side software log the
// paper's Section 5.2.1 starts from, and the bus-line change trace the
// timeprint logger consumes. It replaces the Vector CANoe Demo9
// scenario the authors recorded: a synthetic automotive message set
// with the same message mix (EngineData, ABSdata, GearBoxInfo,
// Ignition_Info) and configurable delays.
package can

import (
	"fmt"
)

// crcPoly is the CAN CRC-15 polynomial
// x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1.
const crcPoly = 0x4599

// Frame is a CAN 2.0A data frame (11-bit identifier, up to 8 data
// bytes).
type Frame struct {
	ID   uint16 // 11-bit identifier
	Data []byte // 0..8 bytes
}

// Validate checks identifier range and payload length.
func (f Frame) Validate() error {
	if f.ID > 0x7FF {
		return fmt.Errorf("can: identifier %#x exceeds 11 bits", f.ID)
	}
	if len(f.Data) > 8 {
		return fmt.Errorf("can: %d data bytes exceed 8", len(f.Data))
	}
	return nil
}

// CRC15 computes the CAN CRC over a bit sequence (true = recessive/1).
func CRC15(bits []bool) uint16 {
	var crc uint16
	for _, b := range bits {
		inv := b != (crc&0x4000 != 0)
		crc <<= 1
		if inv {
			crc ^= crcPoly
		}
		crc &= 0x7FFF
	}
	return crc
}

// Bits serializes the frame to bus levels, true = recessive (1),
// false = dominant (0), from SOF through EOF plus the 3-bit
// intermission. With stuffing enabled, a complement bit is inserted
// after every run of five equal bits between SOF and the CRC sequence
// inclusive, per ISO 11898-1 (the paper's didactic bitstream omits
// stuffing; pass false to match it).
func (f Frame) Bits(stuffing bool) ([]bool, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	// Unstuffed SOF..CRC portion.
	var raw []bool
	push := func(v uint32, n int) {
		for i := n - 1; i >= 0; i-- {
			raw = append(raw, v&(1<<uint(i)) != 0)
		}
	}
	push(0, 1)                   // SOF: dominant
	push(uint32(f.ID), 11)       // identifier, MSB first
	push(0, 1)                   // RTR: dominant for data frames
	push(0, 1)                   // IDE: dominant for base format
	push(0, 1)                   // r0
	push(uint32(len(f.Data)), 4) // DLC
	for _, d := range f.Data {
		push(uint32(d), 8)
	}
	crc := CRC15(raw)
	push(uint32(crc), 15)

	out := raw
	if stuffing {
		out = stuff(raw)
	}
	// CRC delimiter, ACK slot (dominant: some receiver acked), ACK
	// delimiter, 7-bit EOF, 3-bit intermission — never stuffed.
	out = append(out, true, false, true)
	for i := 0; i < 7+3; i++ {
		out = append(out, true)
	}
	return out, nil
}

// stuff inserts a complement bit after each run of five equal bits.
func stuff(in []bool) []bool {
	out := make([]bool, 0, len(in)+len(in)/5)
	run := 0
	var last bool
	for i, b := range in {
		if i > 0 && b == last {
			run++
		} else {
			run = 1
		}
		out = append(out, b)
		last = b
		if run == 5 {
			out = append(out, !b)
			last = !b
			run = 1
		}
	}
	return out
}

// Destuff removes stuffing bits, returning the raw sequence. It
// reports an error on a stuffing violation (six equal consecutive
// bits), which on a real bus signals an error frame.
func Destuff(in []bool) ([]bool, error) {
	var out []bool
	run := 0
	var last bool
	for i := 0; i < len(in); i++ {
		b := in[i]
		if len(out) > 0 && b == last {
			run++
		} else {
			run = 1
		}
		if run == 6 {
			return nil, fmt.Errorf("can: stuffing violation at bit %d", i)
		}
		out = append(out, b)
		last = b
		if run == 5 {
			// Next bit is a stuff bit and must be the complement.
			if i+1 < len(in) {
				if in[i+1] == b {
					return nil, fmt.Errorf("can: stuffing violation at bit %d", i+1)
				}
				last = in[i+1]
				i++
				run = 1
			}
		}
	}
	return out, nil
}

// ParseFrame decodes a frame from its unstuffed SOF..CRC bit sequence,
// verifying the CRC. It is the inverse of the raw portion of Bits.
func ParseFrame(raw []bool) (Frame, error) {
	if len(raw) < 1+11+3+4+15 {
		return Frame{}, fmt.Errorf("can: frame too short (%d bits)", len(raw))
	}
	pos := 0
	read := func(n int) uint32 {
		var v uint32
		for i := 0; i < n; i++ {
			v <<= 1
			if raw[pos] {
				v |= 1
			}
			pos++
		}
		return v
	}
	if read(1) != 0 {
		return Frame{}, fmt.Errorf("can: missing SOF")
	}
	id := read(11)
	if read(1) != 0 {
		return Frame{}, fmt.Errorf("can: RTR frames not supported")
	}
	if read(1) != 0 {
		return Frame{}, fmt.Errorf("can: extended frames not supported")
	}
	read(1) // r0
	dlc := int(read(4))
	if dlc > 8 {
		return Frame{}, fmt.Errorf("can: DLC %d exceeds 8", dlc)
	}
	if len(raw) != 1+11+3+4+dlc*8+15 {
		return Frame{}, fmt.Errorf("can: frame length %d does not match DLC %d", len(raw), dlc)
	}
	data := make([]byte, dlc)
	for i := range data {
		data[i] = byte(read(8))
	}
	wantCRC := CRC15(raw[:pos])
	gotCRC := uint16(read(15))
	if gotCRC != wantCRC {
		return Frame{}, fmt.Errorf("can: CRC mismatch %#x != %#x", gotCRC, wantCRC)
	}
	return Frame{ID: uint16(id), Data: data}, nil
}

// WireLength returns the frame's on-wire length in bit times,
// including EOF and intermission.
func (f Frame) WireLength(stuffing bool) (int, error) {
	bits, err := f.Bits(stuffing)
	if err != nil {
		return 0, err
	}
	return len(bits), nil
}
