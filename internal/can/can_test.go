package can

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameValidate(t *testing.T) {
	if err := (Frame{ID: 0x7FF, Data: make([]byte, 8)}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Frame{ID: 0x800}).Validate(); err == nil {
		t.Error("11-bit overflow accepted")
	}
	if err := (Frame{ID: 1, Data: make([]byte, 9)}).Validate(); err == nil {
		t.Error("9 data bytes accepted")
	}
}

func TestFrameBitsStructure(t *testing.T) {
	// GearBoxInfo(1020), 1 byte 0x01 — the paper's m1. Unstuffed
	// layout: SOF + ID + RTR + IDE + r0 + DLC + data + CRC15 +
	// delimiters + EOF + intermission.
	f := Frame{ID: 1020, Data: []byte{0x01}}
	bits, err := f.Bits(false)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := 1 + 11 + 1 + 1 + 1 + 4 + 8 + 15 + 3 + 7 + 3
	if len(bits) != wantLen {
		t.Fatalf("unstuffed length %d, want %d", len(bits), wantLen)
	}
	str := func(bs []bool) string {
		var sb strings.Builder
		for _, b := range bs {
			if b {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		return sb.String()
	}
	got := str(bits)
	// SOF dominant, then ID 1020 = 01111111100 MSB-first.
	if !strings.HasPrefix(got, "0"+"01111111100") {
		t.Errorf("SOF+ID prefix wrong: %s", got[:12])
	}
	// RTR, IDE, r0 dominant; DLC = 0001; data = 00000001.
	if got[12:15] != "000" || got[15:19] != "0001" || got[19:27] != "00000001" {
		t.Errorf("control/data fields wrong: %s", got[12:27])
	}
	// Tail: CRC delimiter 1, ACK 0, ACK delimiter 1, EOF 7x1, IFS 3x1.
	if !strings.HasSuffix(got, "101"+"1111111"+"111") {
		t.Errorf("tail wrong: %s", got[len(got)-13:])
	}
}

func TestWireLengthMatchesPaperColumn(t *testing.T) {
	// The paper's log shows on-wire lengths with stuffing: GearBoxInfo
	// (1 byte) -> 58, EngineData (8 bytes) -> 125, ABSdata (6 bytes) ->
	// 105, Ignition_Info (2 bytes) -> 67. Stuffing depends on payload
	// bits, so allow a small tolerance around the paper's numbers.
	for _, tc := range []struct {
		f     Frame
		paper int
	}{
		{Frame{ID: 1020, Data: []byte{0x01}}, 58},
		{Frame{ID: 100, Data: []byte{0, 0, 0x19, 0, 0, 0, 0, 0}}, 125},
		{Frame{ID: 201, Data: []byte{0, 0, 0, 0, 0, 0}}, 105},
		{Frame{ID: 103, Data: []byte{0x01, 0x00}}, 67},
	} {
		n, err := tc.f.WireLength(true)
		if err != nil {
			t.Fatal(err)
		}
		diff := n - tc.paper
		if diff < -6 || diff > 6 {
			t.Errorf("ID %d: wire length %d, paper %d", tc.f.ID, n, tc.paper)
		}
		t.Logf("ID %d: %d bits (paper %d)", tc.f.ID, n, tc.paper)
	}
}

func TestCRCKnownProperties(t *testing.T) {
	// CRC of the empty sequence is 0; a single recessive bit gives the
	// polynomial's low bits feedback.
	if CRC15(nil) != 0 {
		t.Error("CRC(nil) != 0")
	}
	if CRC15([]bool{false}) != 0 {
		t.Error("CRC(0) != 0")
	}
	if CRC15([]bool{true}) != crcPoly&0x7FFF {
		t.Errorf("CRC(1) = %#x", CRC15([]bool{true}))
	}
}

func TestStuffDestuffRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		st := stuff(raw)
		// No six consecutive equal bits in the stuffed stream.
		run := 0
		var last bool
		for i, b := range st {
			if i > 0 && b == last {
				run++
			} else {
				run = 1
			}
			if run >= 6 {
				return false
			}
			last = b
		}
		back, err := Destuff(st)
		if err != nil || len(back) != len(raw) {
			return false
		}
		for i := range raw {
			if raw[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDestuffViolation(t *testing.T) {
	six := []bool{true, true, true, true, true, true}
	if _, err := Destuff(six); err == nil {
		t.Error("six equal bits accepted")
	}
}

func TestParseFrameRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		f := Frame{ID: uint16(r.Intn(0x800)), Data: make([]byte, r.Intn(9))}
		for i := range f.Data {
			f.Data[i] = byte(r.Intn(256))
		}
		bits, err := f.Bits(false)
		if err != nil {
			t.Fatal(err)
		}
		rawLen := 1 + 11 + 3 + 4 + len(f.Data)*8 + 15
		got, err := ParseFrame(bits[:rawLen])
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if got.ID != f.ID || len(got.Data) != len(f.Data) {
			t.Fatalf("round trip: %+v != %+v", got, f)
		}
		for i := range f.Data {
			if got.Data[i] != f.Data[i] {
				t.Fatalf("data mismatch at %d", i)
			}
		}
	}
}

func TestParseFrameRejectsCorruption(t *testing.T) {
	f := Frame{ID: 100, Data: []byte{0xAB}}
	bits, _ := f.Bits(false)
	raw := bits[:1+11+3+4+8+15]
	flip := append([]bool(nil), raw...)
	flip[20] = !flip[20] // corrupt a data bit
	if _, err := ParseFrame(flip); err == nil {
		t.Error("corrupted frame accepted (CRC missed it)")
	}
	if _, err := ParseFrame(raw[:10]); err == nil {
		t.Error("short frame accepted")
	}
}

func TestScheduleBasic(t *testing.T) {
	bus := Bus{BitRate: 5e6, Stuffing: true}
	msgs := DemoScenario(bus.BitRate)
	horizon := bus.BitTime(0.1) // 100 ms
	txs, err := bus.Schedule(msgs, horizon, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) == 0 {
		t.Fatal("no transmissions")
	}
	// Non-overlapping, ordered.
	for i := 1; i < len(txs); i++ {
		if txs[i].StartBit < txs[i-1].EndBit() {
			t.Fatalf("overlap between tx %d and %d", i-1, i)
		}
	}
	// Expected instance counts: EngineData every 10 ms over 100 ms = 10.
	count := map[string]int{}
	for _, tx := range txs {
		count[tx.Msg.Name]++
	}
	if count["EngineData"] != 10 {
		t.Errorf("EngineData count %d", count["EngineData"])
	}
	if count["GearBoxInfo"] != 4 { // offset 8ms, period 25ms: 8,33,58,83
		t.Errorf("GearBoxInfo count %d", count["GearBoxInfo"])
	}
}

func TestArbitrationLowerIDWins(t *testing.T) {
	bus := Bus{BitRate: 5e6}
	msgs := []Message{
		{Name: "lo", Frame: Frame{ID: 10, Data: []byte{1}}, PeriodBits: 100000},
		{Name: "hi", Frame: Frame{ID: 900, Data: []byte{2}}, PeriodBits: 100000},
	}
	// Both release at bit 0; the lower ID must transmit first.
	txs, err := bus.Schedule(msgs, 100000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 2 || txs[0].Msg.Name != "lo" || txs[1].Msg.Name != "hi" {
		t.Fatalf("arbitration order: %v", []string{txs[0].Msg.Name, txs[1].Msg.Name})
	}
	if txs[1].StartBit != txs[0].EndBit() {
		t.Error("loser should start back-to-back after winner")
	}
}

func TestDelayInjection(t *testing.T) {
	bus := Bus{BitRate: 5e6, Stuffing: true}
	msgs := DemoScenario(bus.BitRate)
	horizon := bus.BitTime(0.05)
	base, _ := bus.Schedule(msgs, horizon, nil)
	delayed, _ := bus.Schedule(msgs, horizon, map[DelayKey]int64{
		{Name: "EngineData", Instance: 1}: 777,
	})
	// Find the second EngineData in both.
	find := func(txs []Transmission, name string, inst int) Transmission {
		n := 0
		for _, tx := range txs {
			if tx.Msg.Name == name {
				if n == inst {
					return tx
				}
				n++
			}
		}
		t.Fatalf("%s #%d not found", name, inst)
		return Transmission{}
	}
	b1 := find(base, "EngineData", 1)
	d1 := find(delayed, "EngineData", 1)
	if d1.StartBit-b1.StartBit != 777 {
		t.Errorf("delay shift %d, want 777", d1.StartBit-b1.StartBit)
	}
	// Instance 0 unaffected.
	if find(base, "EngineData", 0).StartBit != find(delayed, "EngineData", 0).StartBit {
		t.Error("undelayed instance moved")
	}
}

func TestWireAndChanges(t *testing.T) {
	bus := Bus{BitRate: 5e6, Stuffing: true}
	msgs := DemoScenario(bus.BitRate)
	horizon := bus.BitTime(0.02)
	txs, _ := bus.Schedule(msgs, horizon, nil)
	line := Wire(txs, horizon)
	if int64(len(line)) != horizon {
		t.Fatalf("line length %d", len(line))
	}
	// Idle before first SOF is recessive.
	for i := int64(0); i < txs[0].StartBit; i++ {
		if !line[i] {
			t.Fatal("bus not idle before first frame")
		}
	}
	// First change is the first SOF (recessive -> dominant).
	ch := Changes(line)
	if len(ch) == 0 || ch[0] != txs[0].StartBit {
		t.Fatalf("first change %v, want %d", ch[0], txs[0].StartBit)
	}
	// Changes alternate levels by construction: reconstructing the
	// line from changes must reproduce it.
	level := true
	j := 0
	for i := range line {
		if j < len(ch) && ch[j] == int64(i) {
			level = !level
			j++
		}
		if line[i] != level {
			t.Fatalf("change list inconsistent at bit %d", i)
		}
	}
}

func TestSoftwareLogFormat(t *testing.T) {
	bus := Bus{BitRate: 5e6, Stuffing: true}
	msgs := DemoScenario(bus.BitRate)
	txs, _ := bus.Schedule(msgs, bus.BitTime(0.02), nil)
	log := bus.SoftwareLog(txs)
	if len(log) != len(txs) {
		t.Fatal("log length")
	}
	for _, r := range log {
		s := r.String()
		if !strings.Contains(s, r.Name) || !strings.Contains(s, "->") {
			t.Errorf("log row %q", s)
		}
	}
}

func TestScheduleRejectsBadMessages(t *testing.T) {
	bus := Bus{BitRate: 5e6}
	if _, err := bus.Schedule([]Message{{Name: "x", Frame: Frame{ID: 1}, PeriodBits: 0}}, 100, nil); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := bus.Schedule([]Message{{Name: "x", Frame: Frame{ID: 0x900}, PeriodBits: 10}}, 100, nil); err == nil {
		t.Error("bad ID accepted")
	}
}

func TestSecondsBitTimeInverse(t *testing.T) {
	bus := Bus{BitRate: 5e6}
	if bus.BitTime(bus.Seconds(12345)) != 12345 {
		t.Error("Seconds/BitTime not inverse")
	}
}
