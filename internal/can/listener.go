package can

import "fmt"

// Listener-side decoding: recover frames from a raw bus-line level
// sequence, the way a protocol analyzer does. This closes the
// postmortem loop of Section 5.2.1: the timeprint reconstruction
// yields the bus line's change instants; rendering them back to levels
// and decoding produces the actual frame — identifier, payload and all
// — so the analyst sees *which* message was on the wire and when, not
// just that something toggled.

// DecodedFrame is one frame recovered from a line trace.
type DecodedFrame struct {
	Frame Frame
	// StartBit is the SOF position within the trace.
	StartBit int
	// Bits is the frame's stuffed on-wire length (SOF..CRC inclusive,
	// before the delimiter/EOF tail).
	Bits int
}

// DecodeLine scans a level sequence (true = recessive) for frames,
// assuming ISO 11898 stuffing. Decoding is resynchronizing: after a
// malformed candidate the scan resumes one bit past its SOF.
func DecodeLine(line []bool) []DecodedFrame {
	var out []DecodedFrame
	i := 0
	for i < len(line) {
		// Hunt for SOF: recessive-to-dominant edge (or dominant at the
		// very start of the trace).
		if line[i] {
			i++
			continue
		}
		if i > 0 && !line[i-1] {
			i++
			continue
		}
		f, used, err := decodeAt(line, i)
		if err != nil {
			i++
			continue
		}
		out = append(out, DecodedFrame{Frame: f, StartBit: i, Bits: used})
		i += used
	}
	return out
}

// decodeAt attempts to decode one stuffed base frame starting at SOF
// position `start`. It returns the frame and the number of stuffed
// bits consumed (SOF..CRC).
func decodeAt(line []bool, start int) (Frame, int, error) {
	// Destuff on the fly while collecting the raw frame; the raw
	// length depends on DLC, known after 19 raw bits.
	var raw []bool
	run := 0
	var last bool
	need := 1 + 11 + 3 + 4 + 15 // raw bits before data, minimum frame
	pos := start
	for len(raw) < need {
		if pos >= len(line) {
			return Frame{}, 0, fmt.Errorf("can: truncated frame")
		}
		b := line[pos]
		if len(raw) > 0 && b == last && run == 5 {
			return Frame{}, 0, fmt.Errorf("can: stuffing violation")
		}
		if len(raw) > 0 && run == 5 {
			// Stuff bit: must be complement; consume without storing.
			if b == last {
				return Frame{}, 0, fmt.Errorf("can: stuffing violation")
			}
			last = b
			run = 1
			pos++
			continue
		}
		if len(raw) > 0 && b == last {
			run++
		} else {
			run = 1
		}
		raw = append(raw, b)
		last = b
		pos++

		// Once the DLC is visible, extend the required length.
		if len(raw) == 1+11+3+4 {
			dlc := 0
			for _, bit := range raw[1+11+3 : 1+11+3+4] {
				dlc <<= 1
				if bit {
					dlc |= 1
				}
			}
			if dlc > 8 {
				return Frame{}, 0, fmt.Errorf("can: DLC %d", dlc)
			}
			need = 1 + 11 + 3 + 4 + dlc*8 + 15
		}
	}
	f, err := ParseFrame(raw)
	if err != nil {
		return Frame{}, 0, err
	}
	return f, pos - start, nil
}

// LineFromChanges renders change instants back into a level sequence
// of the given length, starting from the idle recessive level — the
// inverse of Changes, used to feed reconstructed signals into
// DecodeLine.
func LineFromChanges(changes []int64, length int64) []bool {
	line := make([]bool, length)
	level := true
	j := 0
	for i := int64(0); i < length; i++ {
		for j < len(changes) && changes[j] == i {
			level = !level
			j++
		}
		line[i] = level
	}
	return line
}
