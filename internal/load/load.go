// Package load is the tprload harness library: it drives a live
// timeprintd at configurable request mixes (cache-hot repeats, cold
// sessions, batch vs. unary, streaming ingest, malformed traffic, an
// overload probe), measures client-side latency per mix, scrapes the
// server's /metrics snapshot via obs.ParseSnapshot, and asserts the
// service's operational contract:
//
//   - Latency SLOs (p50/p99 per mix) hold.
//   - The shed rate outside the deliberate overload probe stays within
//     budget (default: zero).
//   - Batch amortization: a batch fan-out of N jobs against one fresh
//     session spec moves service.encoding.builds by exactly 1.
//   - Stream amortization: a whole stream of frames likewise builds
//     exactly one encoding.
//   - Overload is atomic: a batch that cannot fit the admission queue
//     is shed whole — 429, no jobs admitted, no solves run.
//   - Malformed traffic is rejected with 4xx and does not wedge the
//     server (healthz stays ok).
//   - With Config.ExpectStore, the durable-store tee contract: exactly
//     the wire-log-bearing traffic persists into the -store-dir log
//     store, and the store's append/record/compaction counters balance.
//
// The workload is fully seeded: every TP, change set and spec derives
// from Config.Seed, so a run is reproducible and distinct seeds keep
// cold phases genuinely cold across repeated runs.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/service"
)

// SLO is the latency/shed budget Run asserts. Zero durations skip the
// corresponding assertion.
type SLO struct {
	HotP50   time.Duration
	HotP99   time.Duration
	BatchP99 time.Duration
	// MaxShedRate bounds shed/(solves+shed) measured outside the
	// overload probe; the default 0 means nothing may shed.
	MaxShedRate float64
}

// Config tunes one Run.
type Config struct {
	// BaseURL is the server's HTTP root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// StreamAddr is the streaming-ingest listener ("" skips the stream
	// phase).
	StreamAddr string
	// Seed drives every generated spec, TP and k.
	Seed int64
	// Phase sizes (zero values get defaults via withDefaults).
	Cold         int // distinct cold session specs, one query each
	Hot          int // repeats of one identical query (cache-hot)
	HotWorkers   int // concurrency of the hot phase
	Batches      int // /v1/batch requests in the batch phase
	BatchJobs    int // jobs per batch
	StreamFrames int
	FrameEntries int
	// QueueDepth is the server's admission queue depth; the overload
	// probe sends a batch of QueueDepth+1 entries to provoke an atomic
	// 429. Zero skips the probe.
	QueueDepth int
	// ExpectStore asserts the durable-store tee contract: the server
	// runs with -store-dir, so every hot request (each carries a wire
	// log) and every stream frame tees into the store, TP/K jobs and
	// rejected malformed traffic do not, and the store's counters
	// balance (appends == live records + compacted records).
	ExpectStore bool
	// Timeout is the client-side HTTP timeout (default 60s).
	Timeout time.Duration
	SLO     SLO
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Cold == 0 {
		c.Cold = 4
	}
	if c.Hot == 0 {
		c.Hot = 200
	}
	if c.HotWorkers == 0 {
		c.HotWorkers = 8
	}
	if c.Batches == 0 {
		c.Batches = 4
	}
	if c.BatchJobs == 0 {
		c.BatchJobs = 8
	}
	if c.StreamFrames == 0 {
		c.StreamFrames = 4
	}
	if c.FrameEntries == 0 {
		c.FrameEntries = 4
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	return c
}

// ClassStats summarizes one request mix from the client side. P50/P99
// come from log2-bucket histograms, so they are upper bounds at 2x
// resolution; Mean is continuous (sum/count) and is what the bench
// guard tracks.
type ClassStats struct {
	Count  int64
	Errors int64
	P50    time.Duration
	P99    time.Duration
	Mean   time.Duration
}

// Check is one asserted invariant.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is a Run's outcome.
type Result struct {
	Classes map[string]ClassStats
	Checks  []Check
}

// Failed lists the checks that did not hold.
func (r Result) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// runner carries one Run's state.
type runner struct {
	cfg    Config
	client *http.Client
	reg    *obs.Registry // client-side latency histograms per class
	errs   map[string]*obs.Counter
	mu     sync.Mutex
	checks []Check
}

// Run executes the whole mix against the server at cfg.BaseURL and
// returns per-class stats plus the asserted invariants. It returns an
// error only for harness-level failures (server unreachable); contract
// violations land in Result.Checks.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	r := &runner{
		cfg:    cfg,
		client: &http.Client{Timeout: cfg.Timeout},
		reg:    obs.NewRegistry(),
		errs:   map[string]*obs.Counter{},
	}
	for _, class := range []string{"cold", "hot", "batch", "stream", "malformed"} {
		r.errs[class] = r.reg.Counter("errors." + class)
	}

	s0, err := r.scrape()
	if err != nil {
		return Result{}, fmt.Errorf("load: initial metrics scrape: %w", err)
	}

	r.coldPhase()
	r.hotPhase()
	r.batchPhase()
	if cfg.StreamAddr != "" {
		r.streamPhase()
	}
	r.malformedPhase()

	// The shed budget is judged before the overload probe deliberately
	// triggers shedding.
	sPre, err := r.scrape()
	if err != nil {
		return Result{}, fmt.Errorf("load: metrics scrape: %w", err)
	}
	shed := sPre.Counters[service.MetricShed] - s0.Counters[service.MetricShed]
	solves := sPre.Counters[service.MetricSolves] - s0.Counters[service.MetricSolves]
	rate := 0.0
	if shed+solves > 0 {
		rate = float64(shed) / float64(shed+solves)
	}
	r.check("shed-rate", rate <= cfg.SLO.MaxShedRate,
		fmt.Sprintf("shed %d of %d admissions (rate %.3f, budget %.3f)", shed, shed+solves, rate, cfg.SLO.MaxShedRate))
	if cfg.ExpectStore {
		r.storeChecks(s0, sPre)
	}

	if cfg.QueueDepth > 0 {
		r.overloadProbe()
	}

	res := Result{Classes: map[string]ClassStats{}, Checks: r.checks}
	snap := r.reg.Snapshot()
	for _, class := range []string{"cold", "hot", "batch", "stream", "malformed"} {
		hs, ok := snap.Histograms["latency."+class]
		if !ok || hs.Count == 0 {
			continue
		}
		res.Classes[class] = ClassStats{
			Count:  hs.Count,
			Errors: snap.Counters["errors."+class],
			P50:    time.Duration(hs.Quantile(0.50)),
			P99:    time.Duration(hs.Quantile(0.99)),
			Mean:   time.Duration(hs.Sum / hs.Count),
		}
	}
	r.sloChecks(res, &res.Checks)
	return res, nil
}

func (r *runner) sloChecks(res Result, checks *[]Check) {
	add := func(c Check) { *checks = append(*checks, c) }
	hot := res.Classes["hot"]
	if r.cfg.SLO.HotP50 > 0 {
		add(Check{"slo-hot-p50", hot.P50 <= r.cfg.SLO.HotP50,
			fmt.Sprintf("hot p50 %v (budget %v)", hot.P50, r.cfg.SLO.HotP50)})
	}
	if r.cfg.SLO.HotP99 > 0 {
		add(Check{"slo-hot-p99", hot.P99 <= r.cfg.SLO.HotP99,
			fmt.Sprintf("hot p99 %v (budget %v)", hot.P99, r.cfg.SLO.HotP99)})
	}
	if r.cfg.SLO.BatchP99 > 0 {
		b := res.Classes["batch"]
		add(Check{"slo-batch-p99", b.P99 <= r.cfg.SLO.BatchP99,
			fmt.Sprintf("batch p99 %v (budget %v)", b.P99, r.cfg.SLO.BatchP99)})
	}
	for _, class := range []string{"cold", "hot", "batch", "stream", "malformed"} {
		c := res.Classes[class]
		if c.Count == 0 && c.Errors == 0 {
			continue
		}
		add(Check{"errors-" + class, c.Errors == 0,
			fmt.Sprintf("%d errors in %d %s requests", c.Errors, c.Count, class)})
	}
}

func (r *runner) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

func (r *runner) check(name string, ok bool, detail string) {
	r.mu.Lock()
	r.checks = append(r.checks, Check{Name: name, OK: ok, Detail: detail})
	r.mu.Unlock()
	status := "ok"
	if !ok {
		status = "FAIL"
	}
	r.logf("check %-24s %-4s %s", name, status, detail)
}

// storeChecks asserts the -store-dir tee contract across the run:
// exactly the wire-log-bearing traffic teed (hot requests plus stream
// frames — cold/batch TP-K jobs and rejected malformed bodies carry no
// log to persist), no tee failed, and the store's global accounting
// balances: every append is either a live record or was dropped by
// segment-granular compaction.
func (r *runner) storeChecks(s0, s1 obs.Snapshot) {
	tees := s1.Counters[service.MetricStoreTees] - s0.Counters[service.MetricStoreTees]
	teeErrs := s1.Counters[service.MetricStoreTeeErrors] - s0.Counters[service.MetricStoreTeeErrors]
	want := int64(r.cfg.Hot)
	if r.cfg.StreamAddr != "" {
		want += int64(r.cfg.StreamFrames)
	}
	r.check("store-tees", tees == want && teeErrs == 0,
		fmt.Sprintf("%d tees with %d errors (want %d: %d hot wire logs + stream frames)",
			tees, teeErrs, want, r.cfg.Hot))
	appends := s1.Counters[logstore.MetricAppends]
	compacted := s1.Counters[logstore.MetricCompactedRecords]
	records := s1.Gauges[logstore.MetricRecords].Value
	r.check("store-balance", appends == records+compacted && appends > 0,
		fmt.Sprintf("appends %d == live records %d + compacted %d", appends, records, compacted))
}

// scrape fetches and parses the server's /metrics snapshot.
func (r *runner) scrape() (obs.Snapshot, error) {
	resp, err := r.client.Get(r.cfg.BaseURL + "/metrics")
	if err != nil {
		return obs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.Snapshot{}, fmt.Errorf("/metrics: %s", resp.Status)
	}
	return obs.ParseSnapshot(resp.Body)
}

// post sends a JSON body and records its latency under class.
func (r *runner) post(class, path string, body any) (int, []byte) {
	data, err := json.Marshal(body)
	if err != nil {
		r.errs[class].Inc()
		return 0, nil
	}
	return r.postRaw(class, path, "application/json", data)
}

func (r *runner) postRaw(class, path, contentType string, data []byte) (int, []byte) {
	start := time.Now()
	resp, err := r.client.Post(r.cfg.BaseURL+path, contentType, bytes.NewReader(data))
	if err != nil {
		r.errs[class].Inc()
		return 0, nil
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	r.reg.Histogram("latency." + class).ObserveDuration(time.Since(start))
	return resp.StatusCode, out
}

// randTP renders b pseudo-random bits.
func randTP(rng *rand.Rand, b int) string {
	var sb strings.Builder
	for i := 0; i < b; i++ {
		if rng.Intn(2) == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// randLog builds a wire-format log of n pseudo-random (TP, k) entries.
func randLog(rng *rand.Rand, m, b, n int) []byte {
	entries := make([]core.LogEntry, n)
	for i := range entries {
		tp, err := bitvec.Parse(randTP(rng, b))
		if err != nil {
			panic(err) // randTP output is always parseable
		}
		entries[i] = core.LogEntry{TP: tp, K: 1 + rng.Intn(3)}
	}
	var buf bytes.Buffer
	if err := core.WriteLog(&buf, m, b, entries); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// spec derives a fresh "random"-scheme session spec from the run seed;
// distinct salts (and distinct run seeds) give distinct cold specs.
func (r *runner) spec(salt int64, m, b int) service.EncodingSpec {
	return service.EncodingSpec{Scheme: "random", M: m, B: b, Depth: 4, Seed: r.cfg.Seed*1000 + salt}
}

type unaryReq struct {
	Encoding service.EncodingSpec `json:"encoding"`
	TP       string               `json:"tp,omitempty"`
	K        int                  `json:"k,omitempty"`
	Log      []byte               `json:"log,omitempty"`
	Limit    int                  `json:"limit,omitempty"`
}

type batchJobReq struct {
	TP    string `json:"tp,omitempty"`
	K     int    `json:"k,omitempty"`
	Log   []byte `json:"log,omitempty"`
	Limit int    `json:"limit,omitempty"`
}

type batchReq struct {
	Encoding service.EncodingSpec `json:"encoding"`
	Jobs     []batchJobReq        `json:"jobs"`
}

type batchRespJob struct {
	Index   int               `json:"index"`
	Status  int               `json:"status"`
	Error   string            `json:"error,omitempty"`
	Results []json.RawMessage `json:"results,omitempty"`
}

type batchResp struct {
	M    int            `json:"m"`
	B    int            `json:"b"`
	Jobs []batchRespJob `json:"jobs"`
}

// coldPhase queries a run of distinct fresh specs: every request pays
// a session build (the worst-case path).
func (r *runner) coldPhase() {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 1))
	r.logf("phase cold: %d distinct specs", r.cfg.Cold)
	for i := 0; i < r.cfg.Cold; i++ {
		req := unaryReq{Encoding: r.spec(100+int64(i), 24, 12), TP: randTP(rng, 12), K: 1 + rng.Intn(3)}
		if code, _ := r.post("cold", "/v1/reconstruct", req); code != http.StatusOK {
			r.errs["cold"].Inc()
		}
	}
}

// hotPhase repeats one identical query from many workers: after the
// first solve everything is a cache hit or a coalesced wait.
func (r *runner) hotPhase() {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 2))
	spec := r.spec(200, 28, 12)
	req := unaryReq{Encoding: spec, Log: randLog(rng, 28, 12, 3)}
	r.logf("phase hot: %d requests x %d workers", r.cfg.Hot, r.cfg.HotWorkers)
	// One priming request pays the build + solves.
	if code, _ := r.post("hot", "/v1/reconstruct", req); code != http.StatusOK {
		r.errs["hot"].Inc()
	}
	var wg sync.WaitGroup
	work := make(chan struct{})
	for w := 0; w < r.cfg.HotWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				if code, _ := r.post("hot", "/v1/reconstruct", req); code != http.StatusOK {
					r.errs["hot"].Inc()
				}
			}
		}()
	}
	for i := 1; i < r.cfg.Hot; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
}

// batchPhase fans Batches x BatchJobs distinct jobs onto ONE fresh
// spec and asserts the amortization contract: exactly one encoding
// build for the whole phase, every job accounted and successful.
func (r *runner) batchPhase() {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 3))
	spec := r.spec(300, 32, 12)
	r.logf("phase batch: %d batches x %d jobs on one spec", r.cfg.Batches, r.cfg.BatchJobs)
	s0, err := r.scrape()
	if err != nil {
		r.check("batch-scrape", false, err.Error())
		return
	}
	jobsOK := true
	for i := 0; i < r.cfg.Batches; i++ {
		req := batchReq{Encoding: spec, Jobs: make([]batchJobReq, r.cfg.BatchJobs)}
		for j := range req.Jobs {
			req.Jobs[j] = batchJobReq{TP: randTP(rng, 12), K: 1 + rng.Intn(3)}
		}
		code, body := r.post("batch", "/v1/batch", req)
		if code != http.StatusOK {
			r.errs["batch"].Inc()
			jobsOK = false
			continue
		}
		var resp batchResp
		if err := json.Unmarshal(body, &resp); err != nil {
			r.errs["batch"].Inc()
			jobsOK = false
			continue
		}
		for _, job := range resp.Jobs {
			if job.Status != http.StatusOK {
				r.logf("batch %d job %d: %d %s", i, job.Index, job.Status, job.Error)
				jobsOK = false
			}
		}
	}
	s1, err := r.scrape()
	if err != nil {
		r.check("batch-scrape", false, err.Error())
		return
	}
	builds := s1.Counters[service.MetricEncodingBuilds] - s0.Counters[service.MetricEncodingBuilds]
	jobs := s1.Counters[service.MetricBatchJobs] - s0.Counters[service.MetricBatchJobs]
	want := int64(r.cfg.Batches * r.cfg.BatchJobs)
	r.check("batch-amortization", builds == 1,
		fmt.Sprintf("%d jobs on one spec built %d encodings (want exactly 1)", want, builds))
	r.check("batch-jobs-accounted", jobs == want,
		fmt.Sprintf("server counted %d batch jobs, sent %d", jobs, want))
	r.check("batch-jobs-ok", jobsOK, "every batch job returned status 200")
}

// streamPhase holds one persistent connection, pushes StreamFrames
// frames for one fresh spec and asserts the whole stream built exactly
// one encoding and advanced the trace-cycle position frame by frame.
func (r *runner) streamPhase() {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 4))
	spec := r.spec(400, 24, 12)
	r.logf("phase stream: %d frames x %d entries", r.cfg.StreamFrames, r.cfg.FrameEntries)
	s0, err := r.scrape()
	if err != nil {
		r.check("stream-scrape", false, err.Error())
		return
	}
	sc, err := service.DialStream(r.cfg.StreamAddr, r.cfg.Timeout)
	if err != nil {
		r.check("stream-dial", false, err.Error())
		return
	}
	defer sc.Close()
	ack, err := sc.Hello(service.StreamHello{Device: "tprload", Signal: fmt.Sprintf("sig-%d", r.cfg.Seed), Encoding: spec})
	if err != nil {
		r.check("stream-hello", false, err.Error())
		return
	}
	base := ack.NextTraceCycle
	framesOK := true
	for i := 0; i < r.cfg.StreamFrames; i++ {
		start := time.Now()
		msg, err := sc.SendFrame(randLog(rng, 24, 12, r.cfg.FrameEntries))
		r.reg.Histogram("latency.stream").ObserveDuration(time.Since(start))
		if err != nil || msg.Status != 0 {
			r.errs["stream"].Inc()
			r.logf("stream frame %d: err=%v status=%d %s", i, err, msg.Status, msg.Error)
			framesOK = false
			continue
		}
		if msg.TraceCycleBase != base+i*r.cfg.FrameEntries {
			framesOK = false
			r.logf("stream frame %d: trace_cycle_base %d, want %d", i, msg.TraceCycleBase, base+i*r.cfg.FrameEntries)
		}
	}
	done, err := sc.End()
	r.check("stream-clean-end", err == nil && done.Frames == r.cfg.StreamFrames,
		fmt.Sprintf("done summary %+v err=%v", done, err))
	r.check("stream-frames-ok", framesOK, "every frame answered with advancing trace-cycle base")
	s1, err := r.scrape()
	if err != nil {
		r.check("stream-scrape", false, err.Error())
		return
	}
	builds := s1.Counters[service.MetricEncodingBuilds] - s0.Counters[service.MetricEncodingBuilds]
	frames := s1.Counters[service.MetricStreamFrames] - s0.Counters[service.MetricStreamFrames]
	entries := s1.Counters[service.MetricStreamEntries] - s0.Counters[service.MetricStreamEntries]
	r.check("stream-amortization", builds == 1,
		fmt.Sprintf("%d frames on one stream built %d encodings (want exactly 1)", frames, builds))
	r.check("stream-entries-accounted",
		frames == int64(r.cfg.StreamFrames) && entries == int64(r.cfg.StreamFrames*r.cfg.FrameEntries),
		fmt.Sprintf("server counted %d frames / %d entries, sent %d / %d",
			frames, entries, r.cfg.StreamFrames, r.cfg.StreamFrames*r.cfg.FrameEntries))
}

// malformedPhase throws structurally invalid traffic at every parser
// and asserts it is rejected with 4xx while the server stays healthy.
func (r *runner) malformedPhase() {
	r.logf("phase malformed: parser rejection sweep")
	cases := []struct {
		name, path, ct string
		body           []byte
	}{
		{"truncated-json", "/v1/reconstruct", "application/json", []byte(`{"encoding":{"m":`)},
		{"unknown-field", "/v1/reconstruct", "application/json", []byte(`{"bogus":1}`)},
		{"corrupt-wire", "/v1/reconstruct", "application/octet-stream", []byte("TPR1garbage-not-a-log")},
		{"empty-batch", "/v1/batch", "application/json", []byte(`{"encoding":{"m":8,"b":4},"jobs":[]}`)},
		{"batch-bad-log", "/v1/batch", "application/json", []byte(`{"jobs":[{"log":"AAAA"}]}`)},
	}
	allRejected := true
	for _, c := range cases {
		code, _ := r.postRaw("malformed", c.path, c.ct, c.body)
		if code < 400 || code >= 500 {
			allRejected = false
			r.logf("malformed %s: got %d, want 4xx", c.name, code)
		}
	}
	r.check("malformed-rejected", allRejected, "every malformed request answered 4xx")
	resp, err := r.client.Get(r.cfg.BaseURL + "/healthz")
	healthy := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		resp.Body.Close()
	}
	r.check("healthy-after-malformed", healthy, "healthz still ok after the rejection sweep")
}

// overloadProbe sends one batch whose entry count exceeds the
// admission queue and asserts atomic rejection: 429, zero jobs
// admitted, zero solves run, exactly one batch shed.
func (r *runner) overloadProbe() {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 5))
	n := r.cfg.QueueDepth + 1
	r.logf("phase overload: batch of %d entries vs queue depth %d", n, r.cfg.QueueDepth)
	s0, err := r.scrape()
	if err != nil {
		r.check("overload-scrape", false, err.Error())
		return
	}
	req := batchReq{Encoding: r.spec(500, 24, 12), Jobs: make([]batchJobReq, n)}
	for j := range req.Jobs {
		req.Jobs[j] = batchJobReq{TP: randTP(rng, 12), K: 1 + rng.Intn(3)}
	}
	code, _ := r.post("batch", "/v1/batch", req)
	s1, err := r.scrape()
	if err != nil {
		r.check("overload-scrape", false, err.Error())
		return
	}
	jobs := s1.Counters[service.MetricBatchJobs] - s0.Counters[service.MetricBatchJobs]
	solves := s1.Counters[service.MetricSolves] - s0.Counters[service.MetricSolves]
	shed := s1.Counters[service.MetricBatchShed] - s0.Counters[service.MetricBatchShed]
	r.check("overload-atomic-429",
		code == http.StatusTooManyRequests && jobs == 0 && solves == 0 && shed == 1,
		fmt.Sprintf("status %d, %d jobs admitted, %d solves, %d batches shed (want 429/0/0/1)", code, jobs, solves, shed))
}
