package properties

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/core"
)

// This file models the constraint forms of Lisper & Nordlander's
// timing constraint logic (TCL, "A Simple and Flexible Timing
// Constraint Logic"), which the paper cites as the property language
// its reconstruction can encode (Section 5.1.3: "We can model
// properties defined in [15]"). Events are the change instants of the
// traced signal within one trace-cycle; each constraint is both a
// concrete predicate and a CNF compilation over the change variables.
//
// Window truncation: a trace-cycle is a finite observation window, so
// constraints that would refer to cycles beyond its end are vacuously
// satisfied there (the evidence for or against them lies in the next
// trace-cycle). Holds and Apply implement identical truncation.

// Response is the TCL delay/response constraint a →[L,U] a: every
// change whose full response window lies inside the trace-cycle is
// followed by another change within [L, U] cycles.
type Response struct {
	L, U int
}

// Holds evaluates the response constraint.
func (p Response) Holds(s core.Signal) bool {
	m := s.M()
	for _, i := range s.Changes() {
		if i+p.U >= m {
			continue // window truncated: vacuous
		}
		ok := false
		for j := i + p.L; j <= i+p.U; j++ {
			if s.Changed(j) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Apply compiles x_i → (x_{i+L} ∨ … ∨ x_{i+U}) for in-window i.
func (p Response) Apply(b *cnf.Builder, vars []int) error {
	if p.L < 1 || p.U < p.L {
		return fmt.Errorf("response window [%d,%d] invalid", p.L, p.U)
	}
	m := len(vars)
	for i := 0; i+p.U < m; i++ {
		clause := make([]int, 0, p.U-p.L+2)
		clause = append(clause, -vars[i])
		for j := i + p.L; j <= i+p.U; j++ {
			clause = append(clause, vars[j])
		}
		b.AddClause(clause...)
	}
	return nil
}

func (p Response) String() string { return fmt.Sprintf("Response[%d,%d]", p.L, p.U) }

// Periodic constrains changes to occur only within Jitter cycles of a
// multiple of Period (TCL's periodic event with jitter). Phase 0 is
// the start of the trace-cycle.
type Periodic struct {
	Period int
	Jitter int
}

func (p Periodic) allowed(i int) bool {
	q := (i + p.Period/2) / p.Period // nearest multiple
	d := i - q*p.Period
	if d < 0 {
		d = -d
	}
	return d <= p.Jitter
}

// Holds checks every change against the allowed phases.
func (p Periodic) Holds(s core.Signal) bool {
	for _, i := range s.Changes() {
		if !p.allowed(i) {
			return false
		}
	}
	return true
}

// Apply forbids changes at disallowed cycles.
func (p Periodic) Apply(b *cnf.Builder, vars []int) error {
	if p.Period < 1 || p.Jitter < 0 {
		return fmt.Errorf("periodic(%d,%d) invalid", p.Period, p.Jitter)
	}
	for i, v := range vars {
		if !p.allowed(i) {
			b.AddClause(-v)
		}
	}
	return nil
}

func (p Periodic) String() string { return fmt.Sprintf("Periodic(%d±%d)", p.Period, p.Jitter) }

// MaxGap bounds the distance between consecutive changes: after any
// change, either another change occurs within Gap cycles or the signal
// stays quiet for the rest of the trace-cycle (truncation).
type MaxGap struct {
	Gap int
}

// Holds checks consecutive change distances, ignoring the final
// truncated gap.
func (p MaxGap) Holds(s core.Signal) bool {
	cs := s.Changes()
	for idx := 0; idx+1 < len(cs); idx++ {
		if cs[idx+1]-cs[idx] > p.Gap {
			return false
		}
	}
	return true
}

// Apply uses a suffix-quiet chain: sq_c ⟺ no change strictly after c;
// then x_i → (∨_{j ∈ (i, i+Gap]} x_j) ∨ sq_{i+Gap}.
func (p MaxGap) Apply(b *cnf.Builder, vars []int) error {
	if p.Gap < 1 {
		return fmt.Errorf("max gap %d invalid", p.Gap)
	}
	m := len(vars)
	// sq[c] for c in [0, m-1]; sq[m-1] is trivially true.
	sq := make([]int, m)
	for c := m - 1; c >= 0; c-- {
		sq[c] = b.NewVar()
		if c == m-1 {
			b.AddClause(sq[c])
			continue
		}
		// sq_c <-> ¬x_{c+1} ∧ sq_{c+1}
		b.AddClause(-sq[c], -vars[c+1])
		b.AddClause(-sq[c], sq[c+1])
		b.AddClause(sq[c], vars[c+1], -sq[c+1])
	}
	for i := 0; i < m; i++ {
		hi := i + p.Gap
		if hi >= m {
			continue // remaining window shorter than the gap: vacuous
		}
		clause := []int{-vars[i]}
		for j := i + 1; j <= hi; j++ {
			clause = append(clause, vars[j])
		}
		clause = append(clause, sq[hi])
		b.AddClause(clause...)
	}
	return nil
}

func (p MaxGap) String() string { return fmt.Sprintf("MaxGap(%d)", p.Gap) }

// CountBetween bounds the number of changes in [Lo, Hi): the TCL
// occurrence-count constraint generalizing the paper's Dk.
type CountBetween struct {
	Lo, Hi   int
	Min, Max int // Max < 0 means unbounded above
}

// Holds counts changes in the window.
func (p CountBetween) Holds(s core.Signal) bool {
	n := 0
	for _, c := range s.Changes() {
		if c >= p.Lo && c < p.Hi {
			n++
		}
	}
	if n < p.Min {
		return false
	}
	return p.Max < 0 || n <= p.Max
}

// Apply emits windowed cardinality constraints.
func (p CountBetween) Apply(b *cnf.Builder, vars []int) error {
	if p.Lo < 0 || p.Hi > len(vars) || p.Lo > p.Hi {
		return fmt.Errorf("count window [%d,%d) invalid", p.Lo, p.Hi)
	}
	window := vars[p.Lo:p.Hi]
	b.AtLeastK(window, p.Min)
	if p.Max >= 0 {
		b.AtMostK(window, p.Max)
	}
	return nil
}

func (p CountBetween) String() string {
	return fmt.Sprintf("Count[%d,%d) in [%d,%d]", p.Lo, p.Hi, p.Min, p.Max)
}

// FirstChangeIn requires the earliest change to fall within [Lo, Hi) —
// TCL's offset constraint for the first occurrence. A signal with no
// change violates it (the event must occur).
type FirstChangeIn struct {
	Lo, Hi int
}

// Holds locates the first change.
func (p FirstChangeIn) Holds(s core.Signal) bool {
	cs := s.Changes()
	if len(cs) == 0 {
		return false
	}
	return cs[0] >= p.Lo && cs[0] < p.Hi
}

// Apply forbids changes before Lo, requires one in [Lo, Hi).
func (p FirstChangeIn) Apply(b *cnf.Builder, vars []int) error {
	if p.Lo < 0 || p.Hi > len(vars) || p.Lo >= p.Hi {
		return fmt.Errorf("first-change window [%d,%d) invalid", p.Lo, p.Hi)
	}
	for _, v := range vars[:p.Lo] {
		b.AddClause(-v)
	}
	b.AddClause(vars[p.Lo:p.Hi]...)
	return nil
}

func (p FirstChangeIn) String() string { return fmt.Sprintf("FirstChangeIn[%d,%d)", p.Lo, p.Hi) }
