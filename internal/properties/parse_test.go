package properties

import (
	"testing"

	"repro/internal/core"
)

func TestParseSingleProperties(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"p2", "P2(adjacent-pair-exists)"},
		{"P2", "P2(adjacent-pair-exists)"},
		{"dk(32,3)", "Dk(>=3 before 32)"},
		{"paired", "PairedChanges"},
		{"window(5, 10)", "Window[5,10)"},
		{"changebefore(8)", "ChangeBefore(8)"},
		{"quietbefore(8)", "QuietBefore(8)"},
		{"mingap(4)", "MinGap(4)"},
		{"maxgap(6)", "MaxGap(6)"},
		{"response(1,3)", "Response[1,3]"},
		{"periodic(100,5)", "Periodic(100±5)"},
		{"count(0,100,2,2)", "Count[0,100) in [2,2]"},
		{"first(2,9)", "FirstChangeIn[2,9)"},
		{"exact(1,2,3)", "ExactChanges(3)"},
	}
	for _, tc := range cases {
		p, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if p.String() != tc.want {
			t.Errorf("Parse(%q) = %s, want %s", tc.in, p, tc.want)
		}
	}
}

func TestParseConjunction(t *testing.T) {
	p, err := Parse("mingap(3); dk(16,2)")
	if err != nil {
		t.Fatal(err)
	}
	all, ok := p.(All)
	if !ok || len(all) != 2 {
		t.Fatalf("parsed %T %v", p, p)
	}
	// Semantics: both conjuncts enforced.
	good := core.SignalFromChanges(32, 2, 8, 20)
	bad := core.SignalFromChanges(32, 2, 3, 20) // gap 1 < 3
	if !p.Holds(good) || p.Holds(bad) {
		t.Error("conjunction semantics wrong")
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", ";", "bogus", "dk(1)", "dk(1,2,3)", "window(1", "dk(a,b)",
		"p2(1)", "response(1)",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestParsedPropertiesCompile(t *testing.T) {
	// Parsed properties must compile like their direct counterparts.
	p, err := Parse("dk(6,2); window(0,10)")
	if err != nil {
		t.Fatal(err)
	}
	checkCompilation(t, p, 10)
}
