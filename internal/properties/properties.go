// Package properties implements the temporal-property layer of Section
// 5.1.3: properties of the traced signal that are already known to hold
// (verified specifications, RV monitor verdicts, failure analysis) are
// compiled into extra SAT constraints that prune the signal
// reconstruction search space. Each property doubles as a concrete
// predicate over signals, so reconstructed candidates can be checked
// directly and the CNF compilation is testable against the semantics.
//
// The paper's named properties are provided — P2 ("two consecutive
// change cycles appear at least once") and Dk ("at least k changes
// before deadline D") — together with the didactic paired-changes
// shape of Section 3.3, reconstruction windows, and the
// delayed-variant property used to localize the one-cycle refresh
// delays in Section 5.2.2.
package properties

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/core"
)

// Property is a temporal property of a trace-cycle signal: it can be
// evaluated on a concrete signal and compiled to clauses over the
// change variables (vars[i] ⇔ "change in clock-cycle i").
type Property interface {
	// Holds evaluates the property on a concrete signal.
	Holds(s core.Signal) bool
	// Apply compiles the property into the builder; reconstruct.New
	// calls this through its Constraint interface.
	Apply(b *cnf.Builder, vars []int) error
	// String names the property.
	String() string
}

// P2 is the paper's P2: at least one adjacent pair of change cycles
// exists (∃i: S(i) ∧ S(i+1)). A weak property — the paper shows it
// prunes worse than Dk and can even slow solving.
type P2 struct{}

// Holds reports whether the signal has two consecutive changes.
func (P2) Holds(s core.Signal) bool {
	for i := 0; i+1 < s.M(); i++ {
		if s.Changed(i) && s.Changed(i+1) {
			return true
		}
	}
	return false
}

// Apply introduces one auxiliary variable per adjacent pair (p_i →
// x_i ∧ x_{i+1}) and requires some p_i to hold.
func (P2) Apply(b *cnf.Builder, vars []int) error {
	if len(vars) < 2 {
		b.AddClause() // no pair can exist
		return nil
	}
	pairLits := make([]int, 0, len(vars)-1)
	for i := 0; i+1 < len(vars); i++ {
		p := b.NewVar()
		b.AddClause(-p, vars[i])
		b.AddClause(-p, vars[i+1])
		pairLits = append(pairLits, p)
	}
	b.AddClause(pairLits...)
	return nil
}

func (P2) String() string { return "P2(adjacent-pair-exists)" }

// Dk is the paper's Dk: at least K changes occur strictly before the
// deadline cycle D (0-based: among cycles 0..D−1). The paper's Table 1
// uses K = 3, D = 32.
type Dk struct {
	D int // deadline cycle (exclusive)
	K int // minimum changes before the deadline
}

// Holds counts changes before the deadline.
func (p Dk) Holds(s core.Signal) bool {
	n := 0
	for _, c := range s.Changes() {
		if c < p.D {
			n++
		}
	}
	return n >= p.K
}

// Apply emits an at-least-K cardinality constraint over the pre-
// deadline change variables.
func (p Dk) Apply(b *cnf.Builder, vars []int) error {
	if p.D < 0 || p.D > len(vars) {
		return fmt.Errorf("deadline %d outside [0,%d]", p.D, len(vars))
	}
	b.AtLeastK(vars[:p.D], p.K)
	return nil
}

func (p Dk) String() string { return fmt.Sprintf("Dk(>=%d before %d)", p.K, p.D) }

// PairedChanges is the didactic Section 3.3 shape: every change
// belongs to a block of exactly two consecutive change cycles (a value
// write lasts one cycle, so the wire rises and falls back). Blocks are
// disjoint and non-adjacent.
type PairedChanges struct{}

// Holds verifies the change-map is a union of isolated adjacent pairs.
func (PairedChanges) Holds(s core.Signal) bool {
	m := s.M()
	for i := 0; i < m; {
		if !s.Changed(i) {
			i++
			continue
		}
		// A block starts at i: needs exactly 2 ones then a zero (or end).
		if i+1 >= m || !s.Changed(i+1) {
			return false
		}
		if i+2 < m && s.Changed(i+2) {
			return false
		}
		i += 3
	}
	return true
}

// Apply encodes the shape with two clause families: no three
// consecutive changes, and every change has an adjacent change.
func (PairedChanges) Apply(b *cnf.Builder, vars []int) error {
	m := len(vars)
	if m == 1 {
		b.AddClause(-vars[0]) // a single cycle can never host a pair
		return nil
	}
	for i := 0; i+2 < m; i++ {
		b.AddClause(-vars[i], -vars[i+1], -vars[i+2])
	}
	b.AddClause(-vars[0], vars[1])
	for i := 1; i+1 < m; i++ {
		b.AddClause(-vars[i], vars[i-1], vars[i+1])
	}
	b.AddClause(-vars[m-1], vars[m-2])
	return nil
}

func (PairedChanges) String() string { return "PairedChanges" }

// Window restricts all changes to clock-cycles [Lo, Hi). The CAN
// experiment's "actual failure time window" reconstruction uses this.
type Window struct {
	Lo, Hi int
}

// Holds reports whether every change lies inside the window.
func (w Window) Holds(s core.Signal) bool {
	for _, c := range s.Changes() {
		if c < w.Lo || c >= w.Hi {
			return false
		}
	}
	return true
}

// Apply forces change variables outside the window to 0.
func (w Window) Apply(b *cnf.Builder, vars []int) error {
	if w.Lo < 0 || w.Hi > len(vars) || w.Lo > w.Hi {
		return fmt.Errorf("window [%d,%d) outside [0,%d]", w.Lo, w.Hi, len(vars))
	}
	for i, v := range vars {
		if i < w.Lo || i >= w.Hi {
			b.AddClause(-v)
		}
	}
	return nil
}

func (w Window) String() string { return fmt.Sprintf("Window[%d,%d)", w.Lo, w.Hi) }

// ChangeBefore asserts at least one change strictly before cycle D —
// e.g. "the transmission started before the deadline". Its UNSAT
// verdict is the paper's CAN liability proof.
type ChangeBefore struct {
	D int
}

// Holds reports whether some change precedes D.
func (p ChangeBefore) Holds(s core.Signal) bool {
	cs := s.Changes()
	return len(cs) > 0 && cs[0] < p.D
}

// Apply emits the disjunction of the pre-deadline change variables.
func (p ChangeBefore) Apply(b *cnf.Builder, vars []int) error {
	if p.D <= 0 || p.D > len(vars) {
		return fmt.Errorf("deadline %d outside (0,%d]", p.D, len(vars))
	}
	b.AddClause(vars[:p.D]...)
	return nil
}

func (p ChangeBefore) String() string { return fmt.Sprintf("ChangeBefore(%d)", p.D) }

// QuietBefore asserts no change strictly before cycle D (dual of
// ChangeBefore).
type QuietBefore struct {
	D int
}

// Holds reports whether all changes are at or after D.
func (p QuietBefore) Holds(s core.Signal) bool {
	cs := s.Changes()
	return len(cs) == 0 || cs[0] >= p.D
}

// Apply forces the pre-D change variables to 0.
func (p QuietBefore) Apply(b *cnf.Builder, vars []int) error {
	if p.D < 0 || p.D > len(vars) {
		return fmt.Errorf("deadline %d outside [0,%d]", p.D, len(vars))
	}
	for _, v := range vars[:p.D] {
		b.AddClause(-v)
	}
	return nil
}

func (p QuietBefore) String() string { return fmt.Sprintf("QuietBefore(%d)", p.D) }

// MinGap requires consecutive changes to be at least Gap cycles apart
// (Gap = 1 is vacuous). Models minimum pulse spacing / debounce specs.
type MinGap struct {
	Gap int
}

// Holds checks pairwise distances of adjacent changes.
func (p MinGap) Holds(s core.Signal) bool {
	cs := s.Changes()
	for i := 1; i < len(cs); i++ {
		if cs[i]-cs[i-1] < p.Gap {
			return false
		}
	}
	return true
}

// Apply forbids any two changes closer than Gap.
func (p MinGap) Apply(b *cnf.Builder, vars []int) error {
	if p.Gap < 1 {
		return fmt.Errorf("gap %d must be >= 1", p.Gap)
	}
	for i := range vars {
		for d := 1; d < p.Gap && i+d < len(vars); d++ {
			b.AddClause(-vars[i], -vars[i+d])
		}
	}
	return nil
}

func (p MinGap) String() string { return fmt.Sprintf("MinGap(%d)", p.Gap) }

// ExactChanges pins the signal to exactly the given change cycles —
// the strongest possible property, used when a reference trace fixes
// everything (e.g. checking whether the logged timeprint equals a
// simulation's).
type ExactChanges struct {
	Changes []int
}

// Holds compares change sets.
func (p ExactChanges) Holds(s core.Signal) bool {
	want := core.SignalFromChanges(s.M(), p.Changes...)
	return s.Equal(want)
}

// Apply emits one unit clause per cycle.
func (p ExactChanges) Apply(b *cnf.Builder, vars []int) error {
	set := map[int]bool{}
	for _, c := range p.Changes {
		if c < 0 || c >= len(vars) {
			return fmt.Errorf("change %d outside [0,%d)", c, len(vars))
		}
		set[c] = true
	}
	for i, v := range vars {
		if set[i] {
			b.AddClause(v)
		} else {
			b.AddClause(-v)
		}
	}
	return nil
}

func (p ExactChanges) String() string { return fmt.Sprintf("ExactChanges(%d)", len(p.Changes)) }

// OneOfSignals asserts the signal equals one of the listed candidate
// signals — a disjunction of complete assignments, encoded with a
// one-hot selector. The Section 5.2.2 delay localization compiles to
// this via DelayedVariants.
type OneOfSignals struct {
	Name       string
	Candidates []core.Signal
}

// Holds reports membership in the candidate set.
func (p OneOfSignals) Holds(s core.Signal) bool {
	for _, c := range p.Candidates {
		if s.Equal(c) {
			return true
		}
	}
	return false
}

// Apply introduces a selector variable per candidate; the chosen
// selector forces every change variable to that candidate's value.
func (p OneOfSignals) Apply(b *cnf.Builder, vars []int) error {
	if len(p.Candidates) == 0 {
		b.AddClause()
		return nil
	}
	sels := make([]int, len(p.Candidates))
	for j, cand := range p.Candidates {
		if cand.M() != len(vars) {
			return fmt.Errorf("candidate %d has length %d, want %d", j, cand.M(), len(vars))
		}
		sel := b.NewVar()
		sels[j] = sel
		for i, v := range vars {
			if cand.Changed(i) {
				b.AddClause(-sel, v)
			} else {
				b.AddClause(-sel, -v)
			}
		}
	}
	b.AddClause(sels...)
	return nil
}

func (p OneOfSignals) String() string {
	if p.Name != "" {
		return p.Name
	}
	return fmt.Sprintf("OneOfSignals(%d)", len(p.Candidates))
}

// DelayedVariants builds the Section 5.2.2 localization property: the
// signal equals the reference trace except that exactly one change
// instance is delayed by delta cycles (landing on a previously quiet
// cycle). The reconstructor then reveals which instance was delayed.
func DelayedVariants(ref core.Signal, delta int) OneOfSignals {
	var cands []core.Signal
	m := ref.M()
	for _, c := range ref.Changes() {
		nc := c + delta
		if nc < 0 || nc >= m || ref.Changed(nc) {
			continue
		}
		v := ref.Vector()
		v.Flip(c)
		v.Flip(nc)
		cands = append(cands, core.SignalFromVector(v))
	}
	return OneOfSignals{
		Name:       fmt.Sprintf("DelayedVariants(delta=%d, refK=%d)", delta, ref.K()),
		Candidates: cands,
	}
}

// All conjoins several properties.
type All []Property

// Holds requires every conjunct to hold.
func (a All) Holds(s core.Signal) bool {
	for _, p := range a {
		if !p.Holds(s) {
			return false
		}
	}
	return true
}

// Apply compiles every conjunct.
func (a All) Apply(b *cnf.Builder, vars []int) error {
	for _, p := range a {
		if err := p.Apply(b, vars); err != nil {
			return err
		}
	}
	return nil
}

func (a All) String() string {
	s := "All("
	for i, p := range a {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + ")"
}
