package properties

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a property from its textual form, so command-line tools
// can accept arbitrary verified properties. The grammar (whitespace
// insensitive, case insensitive):
//
//	p2                          P2
//	dk(D,K)                     at least K changes before cycle D
//	paired                      PairedChanges
//	window(LO,HI)               all changes in [LO, HI)
//	changebefore(D)             some change before D
//	quietbefore(D)              no change before D
//	mingap(G)                   consecutive changes >= G apart
//	maxgap(G)                   consecutive changes <= G apart
//	response(L,U)               every change answered within [L, U]
//	periodic(P,J)               changes within J of the P grid
//	count(LO,HI,MIN,MAX)        MIN..MAX changes in [LO, HI); MAX=-1 unbounded
//	first(LO,HI)                first change in [LO, HI)
//	exact(C1,C2,…)              exactly these change cycles
//
// Several properties joined with ';' conjoin (All).
func Parse(s string) (Property, error) {
	parts := strings.Split(s, ";")
	var props []Property
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := parseOne(part)
		if err != nil {
			return nil, err
		}
		props = append(props, p)
	}
	switch len(props) {
	case 0:
		return nil, fmt.Errorf("properties: empty specification %q", s)
	case 1:
		return props[0], nil
	default:
		return All(props), nil
	}
}

func parseOne(s string) (Property, error) {
	name := strings.ToLower(s)
	var args []int
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("properties: missing ')' in %q", s)
		}
		name = strings.ToLower(strings.TrimSpace(s[:i]))
		body := s[i+1 : len(s)-1]
		for _, f := range strings.Split(body, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("properties: bad argument %q in %q", f, s)
			}
			args = append(args, v)
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("properties: %s needs %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "p2":
		if err := need(0); err != nil {
			return nil, err
		}
		return P2{}, nil
	case "dk":
		if err := need(2); err != nil {
			return nil, err
		}
		return Dk{D: args[0], K: args[1]}, nil
	case "paired":
		if err := need(0); err != nil {
			return nil, err
		}
		return PairedChanges{}, nil
	case "window":
		if err := need(2); err != nil {
			return nil, err
		}
		return Window{Lo: args[0], Hi: args[1]}, nil
	case "changebefore":
		if err := need(1); err != nil {
			return nil, err
		}
		return ChangeBefore{D: args[0]}, nil
	case "quietbefore":
		if err := need(1); err != nil {
			return nil, err
		}
		return QuietBefore{D: args[0]}, nil
	case "mingap":
		if err := need(1); err != nil {
			return nil, err
		}
		return MinGap{Gap: args[0]}, nil
	case "maxgap":
		if err := need(1); err != nil {
			return nil, err
		}
		return MaxGap{Gap: args[0]}, nil
	case "response":
		if err := need(2); err != nil {
			return nil, err
		}
		return Response{L: args[0], U: args[1]}, nil
	case "periodic":
		if err := need(2); err != nil {
			return nil, err
		}
		return Periodic{Period: args[0], Jitter: args[1]}, nil
	case "count":
		if err := need(4); err != nil {
			return nil, err
		}
		return CountBetween{Lo: args[0], Hi: args[1], Min: args[2], Max: args[3]}, nil
	case "first":
		if err := need(2); err != nil {
			return nil, err
		}
		return FirstChangeIn{Lo: args[0], Hi: args[1]}, nil
	case "exact":
		return ExactChanges{Changes: args}, nil
	default:
		return nil, fmt.Errorf("properties: unknown property %q", name)
	}
}
