package properties

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/reconstruct"
)

// enumerateUnder returns all m-bit signals satisfying ONLY the property
// (no timeprint constraints), via the SAT compilation.
func enumerateUnder(t *testing.T, p Property, m int) map[string]bool {
	t.Helper()
	b := cnf.NewBuilder(m)
	vars := make([]int, m)
	for i := range vars {
		vars[i] = i + 1
	}
	if err := p.Apply(b, vars); err != nil {
		t.Fatalf("%s: %v", p, err)
	}
	out := map[string]bool{}
	_, st, _ := b.S.EnumerateModels(vars, 0, func(model map[int]bool) bool {
		v := bitvec.New(m)
		for i, x := range vars {
			if model[x] {
				v.Set(i, true)
			}
		}
		out[v.Key()] = true
		return true
	})
	if st.String() != "UNSAT" {
		t.Fatalf("%s: enumeration not exhausted", p)
	}
	return out
}

// semanticSet returns all m-bit signals for which Holds is true.
func semanticSet(p Property, m int) map[string]bool {
	out := map[string]bool{}
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		s := core.SignalFromVector(bitvec.FromUint(mask, m))
		if p.Holds(s) {
			out[s.Vector().Key()] = true
		}
	}
	return out
}

// checkCompilation verifies that the CNF compilation of p matches its
// concrete semantics exactly, for all 2^m signals.
func checkCompilation(t *testing.T, p Property, m int) {
	t.Helper()
	got := enumerateUnder(t, p, m)
	want := semanticSet(p, m)
	if len(got) != len(want) {
		t.Fatalf("%s over m=%d: compiled %d signals, semantics %d", p, m, len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("%s over m=%d: semantic signal missing from compilation", p, m)
		}
	}
}

func TestP2Compilation(t *testing.T) {
	for _, m := range []int{2, 3, 6, 10} {
		checkCompilation(t, P2{}, m)
	}
}

func TestP2SingleCycle(t *testing.T) {
	// m=1: no pair can exist; compilation must be unsatisfiable.
	got := enumerateUnder(t, P2{}, 1)
	if len(got) != 0 {
		t.Fatalf("%d models", len(got))
	}
}

func TestDkCompilation(t *testing.T) {
	for _, tc := range []Dk{{D: 4, K: 2}, {D: 8, K: 3}, {D: 8, K: 0}, {D: 0, K: 0}, {D: 10, K: 10}} {
		checkCompilation(t, tc, 10)
	}
}

func TestDkValidation(t *testing.T) {
	b := cnf.NewBuilder(4)
	if err := (Dk{D: 5, K: 1}).Apply(b, []int{1, 2, 3, 4}); err == nil {
		t.Error("D > m accepted")
	}
}

func TestPairedChangesCompilation(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 8, 12} {
		checkCompilation(t, PairedChanges{}, m)
	}
}

func TestPairedChangesSemantics(t *testing.T) {
	cases := []struct {
		changes []int
		m       int
		want    bool
	}{
		{nil, 8, true},
		{[]int{3, 4}, 8, true},
		{[]int{0, 1, 4, 5}, 8, true},
		{[]int{3}, 8, false},
		{[]int{3, 4, 5}, 8, false},
		{[]int{3, 5}, 8, false},
		{[]int{6, 7}, 8, true},
		{[]int{7}, 8, false},
		{[]int{0, 1, 2, 3}, 8, false}, // two adjacent pairs merged: 4 consecutive
	}
	for _, tc := range cases {
		s := core.SignalFromChanges(tc.m, tc.changes...)
		if got := (PairedChanges{}).Holds(s); got != tc.want {
			t.Errorf("PairedChanges(%v) = %v, want %v", tc.changes, got, tc.want)
		}
	}
}

func TestWindowCompilation(t *testing.T) {
	for _, w := range []Window{{0, 10}, {3, 7}, {5, 5}, {0, 0}} {
		checkCompilation(t, w, 10)
	}
}

func TestWindowValidation(t *testing.T) {
	b := cnf.NewBuilder(4)
	if err := (Window{Lo: 3, Hi: 2}).Apply(b, []int{1, 2, 3, 4}); err == nil {
		t.Error("inverted window accepted")
	}
	if err := (Window{Lo: 0, Hi: 5}).Apply(b, []int{1, 2, 3, 4}); err == nil {
		t.Error("overlong window accepted")
	}
}

func TestChangeBeforeAndQuietBefore(t *testing.T) {
	for _, d := range []int{1, 4, 10} {
		checkCompilation(t, ChangeBefore{D: d}, 10)
	}
	for _, d := range []int{0, 4, 10} {
		checkCompilation(t, QuietBefore{D: d}, 10)
	}
	// They partition the space: for any signal exactly one holds...
	// except the no-change signal, where ChangeBefore fails and
	// QuietBefore holds.
	for mask := uint64(0); mask < 1<<10; mask++ {
		s := core.SignalFromVector(bitvec.FromUint(mask, 10))
		cb := (ChangeBefore{D: 5}).Holds(s)
		qb := (QuietBefore{D: 5}).Holds(s)
		if cb == qb {
			t.Fatalf("ChangeBefore and QuietBefore agree on %s", s)
		}
	}
}

func TestMinGapCompilation(t *testing.T) {
	for _, g := range []int{1, 2, 3, 5} {
		checkCompilation(t, MinGap{Gap: g}, 9)
	}
}

func TestExactChangesCompilation(t *testing.T) {
	checkCompilation(t, ExactChanges{Changes: []int{2, 5}}, 8)
	checkCompilation(t, ExactChanges{Changes: nil}, 8)
}

func TestOneOfSignalsCompilation(t *testing.T) {
	cands := []core.Signal{
		core.SignalFromChanges(6, 0, 1),
		core.SignalFromChanges(6, 2, 3),
		core.SignalFromChanges(6, 4, 5),
	}
	checkCompilation(t, OneOfSignals{Candidates: cands}, 6)
	checkCompilation(t, OneOfSignals{Candidates: nil}, 4)
}

func TestAllCompilation(t *testing.T) {
	p := All{Dk{D: 6, K: 1}, Window{Lo: 2, Hi: 8}, MinGap{Gap: 2}}
	checkCompilation(t, p, 9)
	if p.String() == "" {
		t.Error("empty String")
	}
}

func TestDelayedVariants(t *testing.T) {
	ref := core.SignalFromChanges(10, 2, 5, 8)
	p := DelayedVariants(ref, 1)
	// Moves: 2->3 (ok), 5->6 (ok), 8->9 (ok): 3 variants.
	if len(p.Candidates) != 3 {
		t.Fatalf("%d variants", len(p.Candidates))
	}
	for _, c := range p.Candidates {
		if c.K() != ref.K() {
			t.Error("variant changed k")
		}
		if c.Equal(ref) {
			t.Error("variant equals reference")
		}
	}
	// Adjacent changes suppress moves onto occupied cycles.
	ref2 := core.SignalFromChanges(10, 2, 3)
	p2 := DelayedVariants(ref2, 1)
	if len(p2.Candidates) != 1 { // only 3->4 is free; 2->3 occupied
		t.Fatalf("%d variants, want 1", len(p2.Candidates))
	}
	// Moves past the end are dropped.
	ref3 := core.SignalFromChanges(10, 9)
	if len(DelayedVariants(ref3, 1).Candidates) != 0 {
		t.Error("move past end not dropped")
	}
}

func TestFigure4DidacticResolution(t *testing.T) {
	// Section 3.3: with the paired-changes property, the 8 candidates
	// of Figure 4 collapse to the single actual signal.
	raw := []string{
		"00010100", "00111010", "00001111", "01000100",
		"00000010", "10101110", "01100000", "11110101",
		"00010111", "11100111", "10100000", "10101000",
		"10011110", "10001111", "01110000", "01101100",
	}
	ts := make([]bitvec.Vector, len(raw))
	for i, s := range raw {
		ts[i] = bitvec.MustParse(s)
	}
	enc, err := encoding.FromTimestamps(ts, "figure4")
	if err != nil {
		t.Fatal(err)
	}
	actual := core.SignalFromChanges(16, 3, 4, 9, 10)
	entry := core.Log(enc, actual)

	// Unconstrained: 8 candidates.
	rec, err := reconstruct.New(enc, entry, nil, reconstruct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigs, exhausted := rec.Enumerate(0)
	if !exhausted || len(sigs) != 8 {
		t.Fatalf("unconstrained: %d candidates, want 8", len(sigs))
	}

	// With PairedChanges: exactly the actual signal.
	rec2, err := reconstruct.New(enc, entry, []reconstruct.Constraint{PairedChanges{}}, reconstruct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigs2, exhausted2 := rec2.Enumerate(0)
	if !exhausted2 || len(sigs2) != 1 {
		t.Fatalf("paired: %d candidates, want 1", len(sigs2))
	}
	if !sigs2[0].Equal(actual) {
		t.Fatalf("paired candidate %s != actual %s", sigs2[0], actual)
	}

	// Section 3.3's deadline claim: all 8 candidates change before
	// cycle 8, so the deadline check holds no matter which occurred.
	for _, s := range sigs {
		if !(ChangeBefore{D: 8}).Holds(s) {
			t.Errorf("candidate %s misses the deadline claim", s)
		}
	}
	// Equivalent UNSAT proof: no candidate is quiet before cycle 8.
	rec3, err := reconstruct.New(enc, entry, []reconstruct.Constraint{QuietBefore{D: 8}}, reconstruct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := rec3.Check(); st.String() != "UNSAT" {
		t.Fatalf("QuietBefore(8) should be UNSAT, got %v", st)
	}
}

func TestPropertiesPruneReconstruction(t *testing.T) {
	// Constrained enumeration equals unconstrained enumeration filtered
	// by Holds — for random instances and every property.
	r := rand.New(rand.NewSource(55))
	enc, err := encoding.Incremental(12, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	props := []Property{
		P2{},
		Dk{D: 6, K: 1},
		PairedChanges{},
		Window{Lo: 2, Hi: 10},
		ChangeBefore{D: 5},
		QuietBefore{D: 3},
		MinGap{Gap: 3},
	}
	for trial := 0; trial < 8; trial++ {
		v := bitvec.New(12)
		for i := 0; i < 12; i++ {
			if r.Intn(3) == 0 {
				v.Set(i, true)
			}
		}
		entry := core.Log(enc, core.SignalFromVector(v))
		recAll, err := reconstruct.New(enc, entry, nil, reconstruct.Options{})
		if err != nil {
			t.Fatal(err)
		}
		all, _ := recAll.Enumerate(0)
		for _, p := range props {
			want := map[string]bool{}
			for _, s := range all {
				if p.Holds(s) {
					want[s.Vector().Key()] = true
				}
			}
			rec, err := reconstruct.New(enc, entry, []reconstruct.Constraint{p}, reconstruct.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, exhausted := rec.Enumerate(0)
			if !exhausted {
				t.Fatalf("%s: not exhausted", p)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d constrained candidates, filter says %d", p, len(got), len(want))
			}
			for _, s := range got {
				if !want[s.Vector().Key()] {
					t.Fatalf("%s: constrained enumeration returned filtered-out signal", p)
				}
			}
		}
	}
}

// vecFromMask builds a width-m vector from mask bits (test helper
// shared with the TCL tests).
func vecFromMask(mask uint64, m int) bitvec.Vector {
	return bitvec.FromUint(mask, m)
}
