package properties

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/core"
)

// Negate returns the logical complement of a property when it is
// expressible in this property algebra, and ok=false otherwise.
// Negations power certainty verdicts over a timeprint log: "every
// signal consistent with the log satisfies P" is exactly "candidates ∧
// ¬P is UNSAT" (see reconstruct.Classify). Only properties whose
// complements stay clausal are supported:
//
//	Dk(D, K)            ↔ at most K−1 changes before D
//	ChangeBefore(D)     ↔ QuietBefore(D)
//	Window(lo, hi)      ↔ at least one change outside [lo, hi)
//	CountBetween, when one side of the bound is trivial
func Negate(p Property) (Property, bool) {
	switch q := p.(type) {
	case Dk:
		if q.K <= 0 {
			return Never{}, true // Dk with K<=0 is trivially true
		}
		return CountBetween{Lo: 0, Hi: q.D, Min: 0, Max: q.K - 1}, true
	case ChangeBefore:
		return QuietBefore{D: q.D}, true
	case QuietBefore:
		if q.D <= 0 {
			return Never{}, true // QuietBefore(0) is trivially true
		}
		return ChangeBefore{D: q.D}, true
	case Window:
		return ChangeOutside{Lo: q.Lo, Hi: q.Hi}, true
	case CountBetween:
		switch {
		case q.Min <= 0 && q.Max >= 0:
			// n <= Max; complement: n >= Max+1.
			return CountBetween{Lo: q.Lo, Hi: q.Hi, Min: q.Max + 1, Max: -1}, true
		case q.Max < 0 && q.Min > 0:
			// n >= Min; complement: n <= Min-1.
			return CountBetween{Lo: q.Lo, Hi: q.Hi, Min: 0, Max: q.Min - 1}, true
		}
		return nil, false
	}
	return nil, false
}

// Never is the unsatisfiable property (complement of a trivially-true
// one).
type Never struct{}

// Holds is false on every signal.
func (Never) Holds(core.Signal) bool { return false }

// Apply emits the empty clause.
func (Never) Apply(b *cnf.Builder, vars []int) error {
	b.AddClause()
	return nil
}

func (Never) String() string { return "Never" }

// ChangeOutside holds when at least one change falls outside [Lo, Hi)
// — the complement of Window.
type ChangeOutside struct {
	Lo, Hi int
}

// Holds scans for an out-of-window change.
func (p ChangeOutside) Holds(s core.Signal) bool {
	for _, c := range s.Changes() {
		if c < p.Lo || c >= p.Hi {
			return true
		}
	}
	return false
}

// Apply emits the disjunction of all out-of-window change variables.
func (p ChangeOutside) Apply(b *cnf.Builder, vars []int) error {
	if p.Lo < 0 || p.Hi > len(vars) || p.Lo > p.Hi {
		return fmt.Errorf("window [%d,%d) outside [0,%d]", p.Lo, p.Hi, len(vars))
	}
	var clause []int
	for i, v := range vars {
		if i < p.Lo || i >= p.Hi {
			clause = append(clause, v)
		}
	}
	b.AddClause(clause...) // empty when the window covers everything
	return nil
}

func (p ChangeOutside) String() string { return fmt.Sprintf("ChangeOutside[%d,%d)", p.Lo, p.Hi) }
