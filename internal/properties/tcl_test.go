package properties

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
)

func TestResponseCompilation(t *testing.T) {
	for _, p := range []Response{{L: 1, U: 2}, {L: 2, U: 4}, {L: 1, U: 1}} {
		checkCompilation(t, p, 9)
	}
}

func TestResponseSemantics(t *testing.T) {
	p := Response{L: 1, U: 3}
	cases := []struct {
		changes []int
		want    bool
	}{
		{nil, true},
		{[]int{5, 7}, true},    // 5 -> 7 within [1,3]; 7 truncated
		{[]int{2, 4}, false},   // 4 needs a successor in [5,7]
		{[]int{2, 6}, false},   // gap 4 > U
		{[]int{7}, true},       // window truncated (7+3 >= 10)
		{[]int{2, 4, 7}, true}, // 2->4, 4->7, 7 truncated
		{[]int{0, 5}, false},   // 0 -> 5 too far
	}
	for _, tc := range cases {
		s := core.SignalFromChanges(10, tc.changes...)
		if got := p.Holds(s); got != tc.want {
			t.Errorf("Response%v on %v = %v, want %v", p, tc.changes, got, tc.want)
		}
	}
}

func TestResponseValidation(t *testing.T) {
	b := cnf.NewBuilder(4)
	if err := (Response{L: 0, U: 2}).Apply(b, []int{1, 2, 3, 4}); err == nil {
		t.Error("L=0 accepted")
	}
	if err := (Response{L: 3, U: 2}).Apply(b, []int{1, 2, 3, 4}); err == nil {
		t.Error("U<L accepted")
	}
}

func TestPeriodicCompilation(t *testing.T) {
	for _, p := range []Periodic{{Period: 3, Jitter: 0}, {Period: 4, Jitter: 1}, {Period: 2, Jitter: 0}} {
		checkCompilation(t, p, 10)
	}
}

func TestPeriodicSemantics(t *testing.T) {
	p := Periodic{Period: 5, Jitter: 1}
	// Allowed cycles: within 1 of {0, 5, 10, ...}: 0,1,4,5,6,9,10,11...
	good := core.SignalFromChanges(12, 0, 4, 6, 9)
	if !p.Holds(good) {
		t.Error("good periodic rejected")
	}
	bad := core.SignalFromChanges(12, 3)
	if p.Holds(bad) {
		t.Error("off-phase change accepted")
	}
}

func TestMaxGapCompilation(t *testing.T) {
	for _, p := range []MaxGap{{Gap: 1}, {Gap: 2}, {Gap: 4}} {
		checkCompilation(t, p, 8)
	}
}

func TestMaxGapSemantics(t *testing.T) {
	p := MaxGap{Gap: 3}
	if !p.Holds(core.SignalFromChanges(12, 1, 3, 6)) {
		t.Error("gaps within bound rejected")
	}
	if p.Holds(core.SignalFromChanges(12, 1, 6)) {
		t.Error("gap 5 accepted")
	}
	if !p.Holds(core.SignalFromChanges(12, 1)) {
		t.Error("single change rejected (final gap is truncated)")
	}
	if !p.Holds(core.SignalFromChanges(12)) {
		t.Error("quiet signal rejected")
	}
}

func TestCountBetweenCompilation(t *testing.T) {
	for _, p := range []CountBetween{
		{Lo: 0, Hi: 8, Min: 2, Max: 4},
		{Lo: 2, Hi: 6, Min: 0, Max: 1},
		{Lo: 3, Hi: 8, Min: 3, Max: -1},
		{Lo: 0, Hi: 0, Min: 0, Max: 0},
	} {
		checkCompilation(t, p, 8)
	}
}

func TestCountBetweenGeneralizesDk(t *testing.T) {
	// CountBetween[0,D) with Min=k, unbounded Max == Dk.
	dk := Dk{D: 6, K: 2}
	cb := CountBetween{Lo: 0, Hi: 6, Min: 2, Max: -1}
	for mask := uint64(0); mask < 1<<10; mask++ {
		s := core.SignalFromVector(vecFromMask(mask, 10))
		if dk.Holds(s) != cb.Holds(s) {
			t.Fatalf("Dk and CountBetween disagree on %s", s)
		}
	}
}

func TestFirstChangeInCompilation(t *testing.T) {
	for _, p := range []FirstChangeIn{{Lo: 0, Hi: 4}, {Lo: 2, Hi: 7}, {Lo: 5, Hi: 8}} {
		checkCompilation(t, p, 8)
	}
}

func TestFirstChangeInSemantics(t *testing.T) {
	p := FirstChangeIn{Lo: 2, Hi: 5}
	if !p.Holds(core.SignalFromChanges(8, 3, 7)) {
		t.Error("first change in window rejected")
	}
	if p.Holds(core.SignalFromChanges(8, 1, 3)) {
		t.Error("early first change accepted")
	}
	if p.Holds(core.SignalFromChanges(8, 6)) {
		t.Error("late first change accepted")
	}
	if p.Holds(core.SignalFromChanges(8)) {
		t.Error("quiet signal accepted")
	}
}

func TestTCLConjunction(t *testing.T) {
	// A realistic composite: periodic sensor with bounded burst count.
	p := All{
		Periodic{Period: 4, Jitter: 1},
		CountBetween{Lo: 0, Hi: 12, Min: 1, Max: 3},
	}
	checkCompilation(t, p, 12)
}
