package benchdiff

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// benchOutput is a realistic -count=3 `go test -bench` transcript,
// including custom ReportMetric units, sub-benchmark names and the
// non-result lines a real run interleaves.
const benchOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Some CPU @ 2.40GHz
BenchmarkPresolveOnOff/m=128/k=4/presolve-8         	       1	  11000000 ns/op	         2.000 fixed	         5.000 freed
BenchmarkPresolveOnOff/m=128/k=4/presolve-8         	       1	  10000000 ns/op	         2.000 fixed	         5.000 freed
BenchmarkPresolveOnOff/m=128/k=4/presolve-8         	       1	  12000000 ns/op	         2.000 fixed	         5.000 freed
BenchmarkPresolveOnOff/m=128/k=4/raw-8              	       1	  20000000 ns/op	         0 fixed	         0 freed
BenchmarkPresolveOnOff/m=128/k=4/raw-8              	       1	  22000000 ns/op	         0 fixed	         0 freed
BenchmarkParallelWorkers/workers=2-8                	       2	   5000000 ns/op	      1514 candidates
BenchmarkParallelWorkers/workers=2-8                	       2	   5500000 ns/op	      1514 candidates
PASS
ok  	repro	12.345s
`

func TestParseLine(t *testing.T) {
	s, ok := ParseLine("BenchmarkPresolveOnOff/m=128/k=4/presolve-8 \t 1\t  11000000 ns/op\t 2.000 fixed")
	if !ok {
		t.Fatal("result line not recognized")
	}
	if s.Name != "PresolveOnOff/m=128/k=4/presolve" {
		t.Errorf("name %q: Benchmark prefix or cpu suffix not stripped", s.Name)
	}
	if s.N != 1 || s.NsPerOp != 11000000 {
		t.Errorf("parsed %+v", s)
	}
	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.345s",
		"BenchmarkBroken-8 not-a-number 5 ns/op",
		"BenchmarkNoNs-8 	 3 	 7.5 MB/s",
		"",
	} {
		if _, ok := ParseLine(bad); ok {
			t.Errorf("line %q accepted as a result", bad)
		}
	}
}

func TestParseGroupsByName(t *testing.T) {
	got, err := Parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	if n := len(got["PresolveOnOff/m=128/k=4/presolve"]); n != 3 {
		t.Errorf("presolve samples %d, want 3", n)
	}
	if n := len(got["ParallelWorkers/workers=2"]); n != 2 {
		t.Errorf("parallel samples %d, want 2", n)
	}
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("benchmark-free input accepted")
	}
}

func TestParseUnitCustomMetric(t *testing.T) {
	got, err := ParseUnit(strings.NewReader(benchOutput), "candidates")
	if err != nil {
		t.Fatal(err)
	}
	// Only the benchmark reporting the unit appears; the presolve lines
	// (no "candidates" column) must not leak in as zeroes.
	if len(got) != 1 {
		t.Fatalf("parsed %d benchmarks for candidates, want 1: %v", len(got), got)
	}
	xs := got["ParallelWorkers/workers=2"]
	if len(xs) != 2 || xs[0] != 1514 || xs[1] != 1514 {
		t.Errorf("candidates samples %v, want [1514 1514]", xs)
	}
	if _, err := ParseUnit(strings.NewReader(benchOutput), "conflicts"); err == nil {
		t.Error("input without the requested unit accepted")
	}
}

func TestMedian(t *testing.T) {
	for _, tc := range []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	} {
		if got := Median(tc.xs); got != tc.want {
			t.Errorf("Median(%v) = %v, want %v", tc.xs, got, tc.want)
		}
	}
	// Input must survive unmodified.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 {
		t.Error("Median sorted its input in place")
	}
}

func TestSummarizeMedians(t *testing.T) {
	sum := Summarize(map[string][]float64{
		"a": {11e6, 10e6, 12e6},
		"b": {20e6, 22e6},
	})
	if sum["a"] != 11e6 || sum["b"] != 21e6 {
		t.Errorf("summary %v", sum)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := Baseline{
		Note:       "count=5 benchtime=1x",
		Samples:    5,
		Benchmarks: map[string]float64{"a": 1.5e6, "b": 2e6},
	}
	var buf bytes.Buffer
	if err := b.WriteBaseline(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != b.Note || got.Samples != b.Samples || len(got.Benchmarks) != 2 ||
		got.Benchmarks["a"] != 1.5e6 {
		t.Errorf("round trip %+v", got)
	}
	if _, err := ReadBaseline(strings.NewReader(`{"benchmarks":{}}`)); err == nil {
		t.Error("empty baseline accepted")
	}
	if _, err := ReadBaseline(strings.NewReader(`{"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestCompareThreshold(t *testing.T) {
	base := map[string]float64{
		"steady":   100,
		"slower":   100,
		"faster":   100,
		"boundary": 100,
		"gone":     100,
	}
	cur := map[string]float64{
		"steady":   110,
		"slower":   140, // +40% > 30%
		"faster":   60,  // -40%
		"boundary": 130, // exactly +30%: not a regression
		"brandnew": 50,
	}
	deltas, failures := Compare(base, cur, 0.30)
	if len(deltas) != 6 {
		t.Fatalf("%d deltas, want 6", len(deltas))
	}
	status := map[string]string{}
	for _, d := range deltas {
		status[d.Name] = d.Status
	}
	want := map[string]string{
		"steady": "ok", "slower": "regressed", "faster": "improved",
		"boundary": "ok", "gone": "missing", "brandnew": "new",
	}
	for n, w := range want {
		if status[n] != w {
			t.Errorf("%s: status %q, want %q", n, status[n], w)
		}
	}
	if len(failures) != 2 {
		t.Fatalf("failures %v, want [gone slower]", failures)
	}
	if failures[0] != "gone" || failures[1] != "slower" {
		t.Errorf("failures %v not sorted by name", failures)
	}
	for _, d := range deltas {
		if d.Name == "slower" && math.Abs(d.Ratio-0.40) > 1e-9 {
			t.Errorf("slower ratio %f, want 0.40", d.Ratio)
		}
		if d.String() == "" {
			t.Errorf("%s: empty rendering", d.Name)
		}
	}
}

// TestEndToEndGuard is the whole guard in miniature: record a baseline
// from one transcript, then fail a doctored rerun where the raw
// (no-presolve) path got 2x slower.
func TestEndToEndGuard(t *testing.T) {
	rec, err := Parse(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	base := Baseline{Benchmarks: Summarize(rec), Samples: 3}

	slowed := strings.ReplaceAll(benchOutput, "  20000000 ns/op", "  40000000 ns/op")
	slowed = strings.ReplaceAll(slowed, "  22000000 ns/op", "  44000000 ns/op")
	cur, err := Parse(strings.NewReader(slowed))
	if err != nil {
		t.Fatal(err)
	}
	_, failures := Compare(base.Benchmarks, Summarize(cur), 0.30)
	if len(failures) != 1 || failures[0] != "PresolveOnOff/m=128/k=4/raw" {
		t.Fatalf("failures %v, want the doctored raw benchmark only", failures)
	}

	// An identical rerun passes.
	if _, failures := Compare(base.Benchmarks, Summarize(rec), 0.30); len(failures) != 0 {
		t.Fatalf("identical run failed the guard: %v", failures)
	}
}
