// Package benchdiff is a dependency-free benchmark-regression guard:
// it parses `go test -bench` output, reduces repeated -count runs to a
// per-benchmark median ns/op (the benchstat reduction, without the
// external module), and compares a current run against a recorded
// baseline JSON with a relative threshold.
//
// The guard exists for the performance-critical paths the paper's
// evaluation rests on — the GF(2) presolve and the cube-split parallel
// portfolio. `make benchrecord` captures a baseline (BENCH_PR3.json),
// `make benchdiff` re-runs the benchmarks and fails if any median
// regressed past the threshold, so a solver or pipeline change cannot
// silently lose the speedups the experiments depend on.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed benchmark result line.
type Sample struct {
	// Name is the benchmark name with the trailing GOMAXPROCS suffix
	// ("-8") stripped, so baselines compare across machines.
	Name string
	// N is the reported iteration count.
	N int64
	// NsPerOp is the reported ns/op.
	NsPerOp float64
}

// cpuSuffix matches the "-8" GOMAXPROCS suffix go test appends to
// benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// ParseLine parses one line of `go test -bench` output, keeping the
// ns/op column. ok is false for every non-result line (headers,
// PASS/ok trailers, log output).
func ParseLine(line string) (Sample, bool) {
	return ParseLineUnit(line, "ns/op")
}

// ParseLineUnit parses one result line, keeping the column carrying
// the given unit — "ns/op" for wall clock, or any custom
// b.ReportMetric unit (e.g. "conflicts" for the Gauss guard, where the
// deterministic solver-effort count is the quantity worth pinning and
// wall clock merely rides along).
func ParseLineUnit(line, unit string) (Sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Sample{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || n <= 0 {
		return Sample{}, false
	}
	// Value/unit pairs follow the iteration count.
	for i := 2; i+1 < len(fields); i += 2 {
		if fields[i+1] != unit {
			continue
		}
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Sample{}, false
		}
		name := strings.TrimPrefix(cpuSuffix.ReplaceAllString(fields[0], ""), "Benchmark")
		return Sample{Name: name, N: n, NsPerOp: v}, true
	}
	return Sample{}, false
}

// Parse reads a whole `go test -bench` stream and groups the ns/op
// samples of repeated -count runs by benchmark name.
func Parse(r io.Reader) (map[string][]float64, error) {
	return ParseUnit(r, "ns/op")
}

// ParseUnit is Parse for an arbitrary metric unit. Benchmarks that do
// not report the unit are simply absent from the result, so a guard
// over a custom metric only covers the benchmarks that emit it.
func ParseUnit(r io.Reader, unit string) (map[string][]float64, error) {
	out := map[string][]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if s, ok := ParseLineUnit(sc.Text(), unit); ok {
			out[s.Name] = append(out[s.Name], s.NsPerOp)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchdiff: reading bench output: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchdiff: no %q results in input", unit)
	}
	return out, nil
}

// Median returns the median of xs (0 for an empty slice). The input is
// not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// Summarize reduces grouped samples to per-benchmark median ns/op.
func Summarize(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, xs := range samples {
		out[name] = Median(xs)
	}
	return out
}

// Baseline is the recorded comparison target, serialized as indented
// JSON (conventionally BENCH_PR3.json at the repository root).
type Baseline struct {
	// Note records how the baseline was produced (flags, host class).
	Note string `json:"note,omitempty"`
	// Samples is the -count the medians were reduced from.
	Samples int `json:"samples,omitempty"`
	// Benchmarks maps benchmark name to median ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// ReadBaseline decodes a baseline written by WriteBaseline.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("benchdiff: invalid baseline: %w", err)
	}
	if len(b.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("benchdiff: baseline lists no benchmarks")
	}
	return b, nil
}

// WriteBaseline writes the baseline as indented JSON (keys sorted by
// encoding/json, so the file is diff-stable).
func (b Baseline) WriteBaseline(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Delta is one benchmark's baseline-vs-current comparison.
type Delta struct {
	Name string
	// Unit labels the compared metric in String output; empty renders
	// as ns/op, the default guard metric.
	Unit string
	// Base and Cur are median metric values (ns/op unless the guard
	// selected a custom unit); 0 marks the side the benchmark is
	// missing from.
	Base, Cur float64
	// Ratio is Cur/Base - 1 (+0.25 = 25% slower); 0 when either side
	// is missing.
	Ratio float64
	// Status is "ok", "regressed", "improved", "missing" (in current)
	// or "new" (not in baseline).
	Status string
}

func (d Delta) String() string {
	unit := d.Unit
	if unit == "" {
		unit = "ns/op"
	}
	switch d.Status {
	case "missing":
		return fmt.Sprintf("%-55s %12.0f %s -> MISSING from current run", d.Name, d.Base, unit)
	case "new":
		return fmt.Sprintf("%-55s %12s -> %12.0f %s (new, no baseline)", d.Name, "-", d.Cur, unit)
	default:
		return fmt.Sprintf("%-55s %12.0f -> %12.0f %s  %+6.1f%%  %s",
			d.Name, d.Base, d.Cur, unit, 100*d.Ratio, d.Status)
	}
}

// Compare evaluates current medians against a baseline. A benchmark
// regresses when its median slowed by more than threshold (0.30 = 30%)
// or disappeared from the current run; new benchmarks are reported but
// never fail. Deltas come back sorted by name; failures lists the
// names that should fail the build.
func Compare(base, cur map[string]float64, threshold float64) (deltas []Delta, failures []string) {
	names := make([]string, 0, len(base)+len(cur))
	for n := range base {
		names = append(names, n)
	}
	for n := range cur {
		if _, ok := base[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		b, inBase := base[n]
		c, inCur := cur[n]
		d := Delta{Name: n, Base: b, Cur: c}
		switch {
		case !inCur:
			d.Status = "missing"
			failures = append(failures, n)
		case !inBase:
			d.Status = "new"
		default:
			d.Ratio = c/b - 1
			// The epsilon keeps an exactly-at-threshold ratio (130 vs
			// 100 at 0.30) from flapping on float rounding.
			const eps = 1e-9
			switch {
			case d.Ratio > threshold+eps:
				d.Status = "regressed"
				failures = append(failures, n)
			case d.Ratio < -threshold-eps:
				d.Status = "improved"
			default:
				d.Status = "ok"
			}
		}
		deltas = append(deltas, d)
	}
	return deltas, failures
}
