package uart

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/rtl"
)

func loop(t *testing.T, divisor int, data []byte, fifoCap int) (*TX, *RX, *rtl.Simulator) {
	t.Helper()
	sim := rtl.NewSimulator()
	line := sim.Wire("tx", 1)
	tx, err := NewTX(line, divisor, fifoCap)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewRX(line, divisor)
	if err != nil {
		t.Fatal(err)
	}
	sim.Add(tx)
	sim.AddProbe(rx)
	for _, b := range data {
		tx.Push(b)
	}
	return tx, rx, sim
}

func TestRoundTrip(t *testing.T) {
	for _, div := range []int{1, 3, 8, 16} {
		data := []byte{0x00, 0xFF, 0xA5, 0x5A, 0x01, 0x80}
		tx, rx, sim := loop(t, div, data, 64)
		for i := 0; i < (len(data)+2)*10*div+100; i++ {
			sim.Step()
		}
		if tx.Sent() != int64(len(data)) {
			t.Fatalf("div %d: sent %d", div, tx.Sent())
		}
		if !bytes.Equal(rx.Bytes(), data) {
			t.Fatalf("div %d: got %x want %x", div, rx.Bytes(), data)
		}
		if rx.FrameErrors() != 0 {
			t.Fatalf("div %d: frame errors", div)
		}
	}
}

func TestRandomPayload(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := make([]byte, 50)
	r.Read(data)
	_, rx, sim := loop(t, 4, data, 64)
	for i := 0; i < 60*10*4+100; i++ {
		sim.Step()
	}
	if !bytes.Equal(rx.Bytes(), data) {
		t.Fatal("random payload corrupted")
	}
}

func TestIdleLineHigh(t *testing.T) {
	sim := rtl.NewSimulator()
	line := sim.Wire("tx", 1)
	tx, _ := NewTX(line, 4, 8)
	sim.Add(tx)
	sim.Run(50)
	if !line.GetBool() {
		t.Fatal("idle line not high")
	}
	if tx.Busy() {
		t.Fatal("idle tx busy")
	}
}

func TestFIFOOverflow(t *testing.T) {
	sim := rtl.NewSimulator()
	line := sim.Wire("tx", 1)
	tx, _ := NewTX(line, 4, 2)
	sim.Add(tx)
	if !tx.Push(1) || !tx.Push(2) {
		t.Fatal("fifo rejected within capacity")
	}
	if tx.Push(3) {
		t.Fatal("fifo accepted over capacity")
	}
	if tx.Dropped() != 1 {
		t.Fatal("drop not counted")
	}
}

func TestValidation(t *testing.T) {
	sim := rtl.NewSimulator()
	line := sim.Wire("tx", 1)
	if _, err := NewTX(line, 0, 8); err == nil {
		t.Error("divisor 0 accepted")
	}
	if _, err := NewTX(line, 4, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewRX(line, 0); err == nil {
		t.Error("rx divisor 0 accepted")
	}
}

func TestRates(t *testing.T) {
	if BitsPerSecond(50e6, 434) < 115000 || BitsPerSecond(50e6, 434) > 116000 {
		t.Error("115200-ish rate wrong")
	}
	// The experiment's payload: 34 bits per 1024-cycle trace-cycle at
	// 50 MHz is a 1.66 Mbit/s payload; with 10/8 framing overhead the
	// line must run at ~2.08 Mbit/s, i.e. divisor 24.
	if d := MinDivisorFor(50e6, 34.0/1024*50e6); d != 24 {
		t.Errorf("divisor %d, want 24", d)
	}
	if MinDivisorFor(1, 1e12) != 1 {
		t.Error("fast payload should clamp to 1")
	}
}

func TestBackToBackBytes(t *testing.T) {
	// Push bytes while transmitting: all must arrive in order.
	sim := rtl.NewSimulator()
	line := sim.Wire("tx", 1)
	tx, _ := NewTX(line, 2, 64)
	rx, _ := NewRX(line, 2)
	sim.Add(tx)
	sim.AddProbe(rx)
	var want []byte
	for i := 0; i < 30; i++ {
		b := byte(i * 7)
		want = append(want, b)
		tx.Push(b)
		sim.Run(25) // slightly more than one frame at div 2
	}
	sim.Run(500)
	if !bytes.Equal(rx.Bytes(), want) {
		t.Fatalf("got %x want %x", rx.Bytes(), want)
	}
}
