// Package uart models the simplified USB-UART link of experiment
// 5.2.2 through which timeprints leave the chip: an 8N1 transmitter
// with a byte FIFO, driven at a configurable clock divisor, and a
// matching receiver used by the test bench to reassemble the log. The
// point the experiment makes — timeprint logging is light enough that
// a plain UART suffices and no trace buffers are needed — shows up
// here as FIFO-depth and bandwidth accounting.
package uart

import (
	"fmt"

	"repro/internal/rtl"
)

// TX is an 8N1 UART transmitter. It implements rtl.Component and
// drives a one-bit line wire (idle high).
type TX struct {
	line    *rtl.Wire
	divisor int // clock cycles per bit
	fifo    []byte
	fifoCap int

	shifting bool
	shift    uint16 // start bit + 8 data + stop bit, LSB first
	bitsLeft int
	divCnt   int

	sent    int64
	dropped int64
}

// NewTX creates a transmitter on the line with the given clock divisor
// (cycles per bit) and FIFO capacity.
func NewTX(line *rtl.Wire, divisor, fifoCap int) (*TX, error) {
	if divisor < 1 {
		return nil, fmt.Errorf("uart: divisor %d", divisor)
	}
	if fifoCap < 1 {
		return nil, fmt.Errorf("uart: fifo capacity %d", fifoCap)
	}
	line.Reset(1) // idle high
	return &TX{line: line, divisor: divisor, fifoCap: fifoCap}, nil
}

// Push enqueues a byte; it reports false (and counts a drop) when the
// FIFO is full.
func (t *TX) Push(b byte) bool {
	if len(t.fifo) >= t.fifoCap {
		t.dropped++
		return false
	}
	t.fifo = append(t.fifo, b)
	return true
}

// Busy reports whether bytes remain queued or shifting.
func (t *TX) Busy() bool { return t.shifting || len(t.fifo) > 0 }

// Sent returns the count of fully transmitted bytes.
func (t *TX) Sent() int64 { return t.sent }

// Dropped returns the count of bytes rejected on a full FIFO.
func (t *TX) Dropped() int64 { return t.dropped }

// Eval implements rtl.Component.
func (t *TX) Eval(cycle int64) {
	if !t.shifting {
		if len(t.fifo) == 0 {
			t.line.Set(1)
			return
		}
		b := t.fifo[0]
		t.fifo = t.fifo[1:]
		// Frame: start(0), 8 data bits LSB-first, stop(1).
		t.shift = uint16(b)<<1 | 1<<9
		t.bitsLeft = 10
		t.divCnt = 0
		t.shifting = true
	}
	t.line.Set(uint64(t.shift & 1))
	t.divCnt++
	if t.divCnt == t.divisor {
		t.divCnt = 0
		t.shift >>= 1
		t.bitsLeft--
		if t.bitsLeft == 0 {
			t.shifting = false
			t.sent++
		}
	}
}

// RX is the matching receiver: it samples the line every cycle and
// recovers bytes by mid-bit sampling. It implements rtl.Probe.
type RX struct {
	line    *rtl.Wire
	divisor int

	state  int // 0 idle, 1 receiving
	cnt    int
	target int
	bitIdx int
	cur    uint16
	prev   bool

	bytes       []byte
	frameErrors int64
}

// NewRX creates a receiver for the line with the transmitter's
// divisor.
func NewRX(line *rtl.Wire, divisor int) (*RX, error) {
	if divisor < 1 {
		return nil, fmt.Errorf("uart: divisor %d", divisor)
	}
	return &RX{line: line, divisor: divisor, prev: true}, nil
}

// Bytes returns the received bytes.
func (r *RX) Bytes() []byte {
	out := make([]byte, len(r.bytes))
	copy(out, r.bytes)
	return out
}

// FrameErrors counts stop-bit violations.
func (r *RX) FrameErrors() int64 { return r.frameErrors }

// Observe implements rtl.Probe.
func (r *RX) Observe(cycle int64) {
	v := r.line.GetBool()
	switch r.state {
	case 0:
		if r.prev && !v {
			// Falling edge: start bit. The first data bit spans
			// [edge+div, edge+2·div); sample it mid-bit at
			// edge + div + div/2, then every div cycles.
			r.state = 1
			r.cnt = 0
			r.target = r.divisor + r.divisor/2
			r.bitIdx = 0
			r.cur = 0
		}
	case 1:
		r.cnt++
		if r.cnt >= r.target {
			r.cnt = 0
			r.target = r.divisor
			r.bitIdx++
			switch {
			case r.bitIdx <= 8:
				if v {
					r.cur |= 1 << uint(r.bitIdx-1)
				}
			case r.bitIdx == 9:
				if v {
					r.bytes = append(r.bytes, byte(r.cur))
				} else {
					r.frameErrors++
				}
				r.state = 0
			}
		}
	}
	r.prev = v
}

// BitsPerSecond returns the line rate for a given core clock.
func BitsPerSecond(clockHz float64, divisor int) float64 {
	return clockHz / float64(divisor)
}

// MinDivisorFor returns the largest divisor that still sustains the
// given payload bit-rate (payload bits/s; each byte costs 10 line
// bits), or 1 if even back-to-back bytes cannot keep up.
func MinDivisorFor(clockHz, payloadBitsPerSec float64) int {
	if payloadBitsPerSec <= 0 {
		return 1 << 20
	}
	lineBits := payloadBitsPerSec * 10 / 8 // framing overhead
	d := int(clockHz / lineBits)
	if d < 1 {
		return 1
	}
	return d
}
