package hw

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/rtl"
)

func TestAggLogMatchesSoftwareLogger(t *testing.T) {
	// The RTL agg-log and the software model must produce identical
	// entries for the same wire activity — the hardware/simulation
	// equivalence the experiment depends on.
	enc, err := encoding.Incremental(16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim := rtl.NewSimulator()
	w := sim.Wire("traced", 32)
	agg := NewAggLog(enc, w)
	sim.AddProbe(agg)

	sw := core.NewLogger(enc)
	r := rand.New(rand.NewSource(8))
	val := uint64(0)
	prev := uint64(0)
	first := true
	for i := 0; i < 16*20; i++ {
		if r.Intn(4) == 0 {
			val = uint64(r.Intn(1000))
		}
		w.Set(val)
		sim.Step()
		// Mirror what the hardware sees: the committed value.
		cur := w.Get()
		changed := false
		if first {
			first = false
		} else {
			changed = cur != prev
		}
		prev = cur
		sw.TickChange(changed)
	}
	hwEntries := agg.Entries()
	swEntries := sw.Entries()
	if len(hwEntries) != 20 || len(swEntries) != 20 {
		t.Fatalf("entries hw=%d sw=%d", len(hwEntries), len(swEntries))
	}
	for i := range hwEntries {
		if !hwEntries[i].Equal(swEntries[i]) {
			t.Fatalf("entry %d: hw %v != sw %v", i, hwEntries[i], swEntries[i])
		}
	}
}

func TestAggLogConstantWireLogsQuiet(t *testing.T) {
	enc, _ := encoding.Incremental(8, 6, 4)
	sim := rtl.NewSimulator()
	w := sim.Wire("traced", 8)
	w.Reset(42)
	agg := NewAggLog(enc, w)
	sim.AddProbe(agg)
	sim.Run(24)
	for i, e := range agg.Entries() {
		if e.K != 0 || !e.TP.IsZero() {
			t.Fatalf("entry %d not quiet: %v", i, e)
		}
	}
	if agg.Phase() != 0 {
		t.Error("phase not at boundary")
	}
}

func TestAggLogSink(t *testing.T) {
	enc, _ := encoding.Incremental(8, 6, 4)
	sim := rtl.NewSimulator()
	w := sim.Wire("traced", 8)
	agg := NewAggLog(enc, w)
	var got []core.LogEntry
	agg.SetSink(func(e core.LogEntry) { got = append(got, e) })
	sim.AddProbe(agg)
	sim.Run(16)
	if len(got) != 2 {
		t.Fatalf("sink received %d entries", len(got))
	}
}

func TestEntryPackerMatchesWireFormat(t *testing.T) {
	// Packing entries through the hardware packer must produce exactly
	// the payload bytes of core.WriteLog.
	enc, _ := encoding.Incremental(16, 8, 4)
	r := rand.New(rand.NewSource(5))
	var entries []core.LogEntry
	for i := 0; i < 10; i++ {
		var cs []int
		for j := 0; j < 16; j++ {
			if r.Intn(4) == 0 {
				cs = append(cs, j)
			}
		}
		entries = append(entries, core.Log(enc, core.SignalFromChanges(16, cs...)))
	}

	var hwBytes []byte
	p := NewEntryPacker(16, 8, func(b byte) bool { hwBytes = append(hwBytes, b); return true })
	for _, e := range entries {
		if err := p.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()

	var buf bytes.Buffer
	if err := core.WriteLog(&buf, 16, 8, entries); err != nil {
		t.Fatal(err)
	}
	want := buf.Bytes()[16:] // skip header
	if !bytes.Equal(hwBytes, want) {
		t.Fatalf("packer bytes differ:\nhw   %x\nwant %x", hwBytes, want)
	}
}

func TestEntryPackerRejectsWrongWidth(t *testing.T) {
	p := NewEntryPacker(16, 8, func(byte) bool { return true })
	enc, _ := encoding.Incremental(16, 9, 4)
	if err := p.Push(core.Log(enc, core.NewSignal(16))); err == nil {
		t.Error("wrong width accepted")
	}
}

func TestEntryPackerCountsDrops(t *testing.T) {
	p := NewEntryPacker(16, 8, func(byte) bool { return false })
	enc, _ := encoding.Incremental(16, 8, 4)
	_ = p.Push(core.Log(enc, core.SignalFromChanges(16, 1)))
	p.Flush()
	if p.Dropped() == 0 {
		t.Error("drops not counted")
	}
}
