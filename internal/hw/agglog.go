// Package hw is the RTL model of the timeprints
// aggregation-and-logging hardware of Section 5.2.2: a change detector
// on a traced bus, a b-bit XOR hold register fed from a timestamp ROM,
// a change counter, and a trace-cycle control counter that emits one
// (TP, k) record every m cycles and hands its bits to a UART
// transmitter. The pure-software twin of this block is
// core.Logger; the two are cross-checked in tests, which is exactly
// the hardware-vs-simulation comparison the experiment performs.
package hw

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/rtl"
)

// AggLog is the aggregation/logging hardware attached to a traced
// wire. It implements rtl.Probe (it samples committed wire values
// after each clock edge, like a register bank clocked by the same
// edge).
type AggLog struct {
	enc    *encoding.Encoding
	traced *rtl.Wire

	// Registers.
	hold  bitvec.Vector // XOR hold register (b bits)
	k     int           // change counter
	phase int           // cycle counter within the trace-cycle
	prev  uint64        // previous traced value (change detector)
	first bool

	entries []core.LogEntry
	sink    func(core.LogEntry) // optional: push to the UART packer
}

// NewAggLog attaches the logger to a traced wire. The traced "signal"
// in the paper's sense changes whenever the wire's committed value
// changes between consecutive cycles (for a multi-bit wire such as
// HADDR, any bit difference is a change).
func NewAggLog(enc *encoding.Encoding, traced *rtl.Wire) *AggLog {
	return &AggLog{
		enc:    enc,
		traced: traced,
		hold:   bitvec.New(enc.B()),
		first:  true,
	}
}

// SetSink registers a callback receiving each completed entry (the
// UART path).
func (a *AggLog) SetSink(fn func(core.LogEntry)) { a.sink = fn }

// Observe implements rtl.Probe: one call per clock edge.
func (a *AggLog) Observe(cycle int64) {
	v := a.traced.Get()
	changed := false
	if a.first {
		a.first = false
	} else {
		changed = v != a.prev
	}
	a.prev = v

	if changed {
		a.hold.XorInPlace(a.enc.Timestamp(a.phase))
		a.k++
	}
	a.phase++
	if a.phase == a.enc.M() {
		e := core.LogEntry{TP: a.hold.Clone(), K: a.k}
		a.entries = append(a.entries, e)
		if a.sink != nil {
			a.sink(e)
		}
		a.hold = bitvec.New(a.enc.B())
		a.k = 0
		a.phase = 0
	}
}

// Entries returns the completed trace-cycle records.
func (a *AggLog) Entries() []core.LogEntry {
	out := make([]core.LogEntry, len(a.entries))
	copy(out, a.entries)
	return out
}

// Phase returns the position within the current trace-cycle.
func (a *AggLog) Phase() int { return a.phase }

// EntryPacker packs log entries into bytes in the core wire-payload
// layout (b TP bits then KBits(m) counter bits, LSB first, no
// padding) and feeds them to a byte sink such as a UART transmitter.
type EntryPacker struct {
	m, b    int
	sink    func(byte) bool
	cur     byte
	nbits   uint
	packed  int64
	dropped int64
}

// NewEntryPacker creates a packer delivering bytes to sink; sink
// returns false when it cannot accept a byte (FIFO overflow), which is
// counted.
func NewEntryPacker(m, b int, sink func(byte) bool) *EntryPacker {
	return &EntryPacker{m: m, b: b, sink: sink}
}

// Push packs one entry.
func (p *EntryPacker) Push(e core.LogEntry) error {
	if e.TP.Width() != p.b {
		return fmt.Errorf("hw: entry width %d, want %d", e.TP.Width(), p.b)
	}
	for j := 0; j < p.b; j++ {
		p.bit(e.TP.Get(j))
	}
	kb := core.KBits(p.m)
	for j := 0; j < kb; j++ {
		p.bit(e.K&(1<<uint(j)) != 0)
	}
	p.packed++
	return nil
}

func (p *EntryPacker) bit(v bool) {
	if v {
		p.cur |= 1 << p.nbits
	}
	p.nbits++
	if p.nbits == 8 {
		if !p.sink(p.cur) {
			p.dropped++
		}
		p.cur, p.nbits = 0, 0
	}
}

// Flush pads the current byte with zeros and emits it.
func (p *EntryPacker) Flush() {
	if p.nbits > 0 {
		if !p.sink(p.cur) {
			p.dropped++
		}
		p.cur, p.nbits = 0, 0
	}
}

// Dropped reports bytes lost to back-pressure.
func (p *EntryPacker) Dropped() int64 { return p.dropped }
