package experiments

import "sync"

// runPool runs n independent jobs through a bounded pool of at most
// workers goroutines. With workers <= 1 the jobs run serially on the
// calling goroutine, so a serial configuration pays no synchronization
// cost and behaves exactly as before. Jobs are identified by index;
// callers write results into index-addressed slices so the outcome is
// independent of scheduling.
func runPool(n, workers int, job func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
