package experiments

import (
	"sync"

	"repro/internal/obs"
)

// runPool runs n independent jobs through a bounded pool of at most
// workers goroutines. With workers <= 1 the jobs run serially on the
// calling goroutine, so a serial configuration pays no synchronization
// cost and behaves exactly as before. Jobs are identified by index;
// callers write results into index-addressed slices so the outcome is
// independent of scheduling.
func runPool(n, workers int, job func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	// A panicking job must not kill its worker: with the unbuffered jobs
	// channel, every dead worker is a submitter slot lost, and once all
	// workers are gone the send below blocks forever. Each job runs under
	// a recover; the first captured panic is re-raised on the calling
	// goroutine after the pool has fully drained, preserving the
	// fail-loud contract of the serial path without the deadlock.
	var (
		panicOnce  sync.Once
		firstPanic any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				func() {
					defer func() {
						if p := recover(); p != nil {
							panicOnce.Do(func() { firstPanic = p })
						}
					}()
					job(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	// wg.Wait orders every worker's panicOnce.Do before this read.
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// Pool metric names: <name>.queue is the undispatched-job depth,
// <name>.busy the currently-running job count (its Max is the peak
// worker utilization), <name>.jobs the total jobs completed.
const (
	PoolQueueSuffix = ".queue"
	PoolBusySuffix  = ".busy"
	PoolJobsSuffix  = ".jobs"
)

// runPoolMetered is runPool with queue-depth and utilization metrics
// published under the given name. A nil registry degrades to the plain
// pool with no per-job overhead.
func runPoolMetered(n, workers int, r *obs.Registry, name string, job func(i int)) {
	if r == nil {
		runPool(n, workers, job)
		return
	}
	queue := r.Gauge(name + PoolQueueSuffix)
	busy := r.Gauge(name + PoolBusySuffix)
	jobs := r.Counter(name + PoolJobsSuffix)
	queue.Set(int64(n))
	// On the serial path a job panic unwinds through this frame with
	// jobs still undispatched; zero the transient gauges so a recovering
	// caller is not left staring at a permanently nonzero queue depth.
	// On a normal return both are already zero and the Sets are no-ops
	// (Set only bumps the high-water mark upward).
	defer func() {
		queue.Set(0)
		busy.Set(0)
	}()
	runPool(n, workers, func(i int) {
		queue.Add(-1)
		busy.Add(1)
		defer func() {
			busy.Add(-1)
			jobs.Inc()
		}()
		job(i)
	})
}
