package experiments

import (
	"sync/atomic"
	"testing"
)

// runPool edge cases: n=0 must not deadlock or run any job, workers > n
// must clamp (no goroutine ever blocks on an empty job channel), and
// workers <= 1 must run serially on the calling goroutine.
func TestRunPoolEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		n, workers int
	}{
		{"zero jobs serial", 0, 1},
		{"zero jobs parallel", 0, 8},
		{"workers exceed jobs", 3, 16},
		{"serial", 5, 1},
		{"zero workers", 5, 0},
		{"negative workers", 5, -3},
		{"parallel", 20, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var ran int64
			seen := make([]int32, c.n)
			runPool(c.n, c.workers, func(i int) {
				atomic.AddInt64(&ran, 1)
				atomic.AddInt32(&seen[i], 1)
			})
			if ran != int64(c.n) {
				t.Fatalf("%d jobs ran, want %d", ran, c.n)
			}
			for i, v := range seen {
				if v != 1 {
					t.Fatalf("job %d ran %d times", i, v)
				}
			}
		})
	}
}

// With workers <= 1 the jobs must run on the calling goroutine in
// index order — the documented no-synchronization serial path.
func TestRunPoolSerialOrder(t *testing.T) {
	var order []int
	runPool(6, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}
