package experiments

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// runPool edge cases: n=0 must not deadlock or run any job, workers > n
// must clamp (no goroutine ever blocks on an empty job channel), and
// workers <= 1 must run serially on the calling goroutine.
func TestRunPoolEdgeCases(t *testing.T) {
	cases := []struct {
		name       string
		n, workers int
	}{
		{"zero jobs serial", 0, 1},
		{"zero jobs parallel", 0, 8},
		{"workers exceed jobs", 3, 16},
		{"serial", 5, 1},
		{"zero workers", 5, 0},
		{"negative workers", 5, -3},
		{"parallel", 20, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var ran int64
			seen := make([]int32, c.n)
			runPool(c.n, c.workers, func(i int) {
				atomic.AddInt64(&ran, 1)
				atomic.AddInt32(&seen[i], 1)
			})
			if ran != int64(c.n) {
				t.Fatalf("%d jobs ran, want %d", ran, c.n)
			}
			for i, v := range seen {
				if v != 1 {
					t.Fatalf("job %d ran %d times", i, v)
				}
			}
		})
	}
}

// With workers <= 1 the jobs must run on the calling goroutine in
// index order — the documented no-synchronization serial path.
func TestRunPoolSerialOrder(t *testing.T) {
	var order []int
	runPool(6, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

// A panicking job used to kill its worker goroutine; with enough
// panics every worker died and the submitter blocked forever on the
// unbuffered jobs channel. The pool must instead run every job, and
// re-raise the first panic on the calling goroutine once drained.
func TestRunPoolPanicDoesNotDeadlock(t *testing.T) {
	const n, workers = 64, 4
	var ran int64
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("pool swallowed the job panic")
		}
		if s, ok := p.(string); !ok || s != "job 0 exploded" {
			t.Fatalf("re-raised panic = %v, want the first job panic", p)
		}
		if got := atomic.LoadInt64(&ran); got != n {
			t.Fatalf("%d jobs ran, want all %d despite panics", got, n)
		}
	}()
	runPool(n, workers, func(i int) {
		atomic.AddInt64(&ran, 1)
		// Every 8th job panics — more panicking jobs than workers, the
		// exact shape that used to starve the submitter.
		if i%8 == 0 {
			panic(fmt.Sprintf("job %d exploded", i))
		}
	})
}

// Serial-path panics unwind through runPoolMetered with jobs still
// undispatched; the transient queue/busy gauges must be zeroed rather
// than left stuck at the abandoned depth.
func TestRunPoolMeteredPanicResetsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		runPoolMetered(10, 1, reg, "test.panicpool", func(i int) {
			if i == 2 {
				panic("boom")
			}
		})
	}()
	snap := reg.Snapshot()
	if got := snap.Gauges["test.panicpool"+PoolQueueSuffix].Value; got != 0 {
		t.Fatalf("queue gauge leaked at %d after panic", got)
	}
	if got := snap.Gauges["test.panicpool"+PoolBusySuffix].Value; got != 0 {
		t.Fatalf("busy gauge leaked at %d after panic", got)
	}
	// The parallel path drains every job even when some panic, so the
	// jobs counter must account for all of them.
	reg2 := obs.NewRegistry()
	func() {
		defer func() { _ = recover() }()
		runPoolMetered(20, 3, reg2, "test.panicpool", func(i int) {
			if i%5 == 0 {
				panic("boom")
			}
		})
	}()
	snap = reg2.Snapshot()
	if got := snap.Counters["test.panicpool"+PoolJobsSuffix]; got != 20 {
		t.Fatalf("jobs counter %d after parallel panic, want 20", got)
	}
	if got := snap.Gauges["test.panicpool"+PoolQueueSuffix].Value; got != 0 {
		t.Fatalf("parallel queue gauge leaked at %d", got)
	}
}
