package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/logstore"
	"repro/internal/obs"
)

// mineFleetStore synthesizes a small fleet into a logstore: the
// reference device logs the clean signal trace; each drifted device
// replays it with one change delayed by a cycle from its onset
// trace-cycle on (same k, different TP — the refresh signature).
func mineFleetStore(t *testing.T, dir string) *logstore.Store {
	t.Helper()
	const m, b, cycles = 16, 8, 12
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	clean := core.SignalFromChanges(m, 3, 9)
	delayed := core.SignalFromChanges(m, 4, 9) // change 3 slipped to 4

	st, _, err := logstore.Open(dir, logstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	appendTrace := func(device string, onset int) {
		for tc := 0; tc < cycles; tc++ {
			sig := clean
			if onset >= 0 && tc >= onset {
				sig = delayed
			}
			var buf bytes.Buffer
			if err := core.WriteLog(&buf, m, b, []core.LogEntry{core.Log(enc, sig)}); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Append(logstore.Record{
				Device: device, Signal: "addr",
				Epoch: int64(1000 + tc), TraceCycleBase: int64(tc),
				Body: buf.Bytes(),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendTrace("ref-unit", -1) // the golden reference: never drifts
	appendTrace("ecu-clean", -1)
	appendTrace("ecu-early", 2)
	appendTrace("ecu-late", 8)

	// A device stored under a different geometry: must be reported as
	// failed, not compared and not fatal.
	var buf bytes.Buffer
	enc8, err := encoding.Incremental(8, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WriteLog(&buf, 8, 6, []core.LogEntry{core.Log(enc8, core.SignalFromChanges(8, 2))}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(logstore.Record{
		Device: "ecu-weird", Signal: "addr", Epoch: 1000, Body: buf.Bytes(),
	}); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestMineStore(t *testing.T) {
	st := mineFleetStore(t, t.TempDir())
	reg := obs.NewRegistry()
	rep, err := MineStore(st, MineConfig{RefDevice: "ref-unit", Parallel: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Devices) != 4 {
		t.Fatalf("compared %d devices, want 4", len(rep.Devices))
	}
	byDevice := map[string]DeviceReport{}
	for _, d := range rep.Devices {
		byDevice[d.Device] = d
	}
	if d := byDevice["ecu-clean"]; d.Affected() || d.FirstMismatch != -1 || d.Cycles != 12 {
		t.Fatalf("ecu-clean = %+v, want clean over 12 cycles", d)
	}
	if d := byDevice["ecu-early"]; d.FirstMismatch != 2 || d.KMismatches != 0 || len(d.TPMismatches) != 10 {
		t.Fatalf("ecu-early = %+v, want TP-only onset at 2", d)
	}
	if d := byDevice["ecu-late"]; d.FirstMismatch != 8 || len(d.TPMismatches) != 4 {
		t.Fatalf("ecu-late = %+v, want TP-only onset at 8", d)
	}
	if d := byDevice["ecu-weird"]; d.Err == "" || !strings.Contains(d.Err, "geometry") {
		t.Fatalf("ecu-weird = %+v, want a geometry error", d)
	}

	if len(rep.Populations) != 1 {
		t.Fatalf("populations = %+v, want one signal", rep.Populations)
	}
	p := rep.Populations[0]
	if p.Signal != "addr" || p.Compared != 3 || p.Affected != 2 || p.Failed != 1 {
		t.Fatalf("population = %+v, want compared=3 affected=2 failed=1", p)
	}
	if p.OnsetMin != 2 || p.OnsetMax != 8 {
		t.Fatalf("onsets [%d, %d], want [2, 8]", p.OnsetMin, p.OnsetMax)
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricMineDevices] != 4 || snap.Counters[MetricMineAffected] != 2 {
		t.Fatalf("mine counters devices=%d affected=%d, want 4/2",
			snap.Counters[MetricMineDevices], snap.Counters[MetricMineAffected])
	}
}

func TestMineStoreErrors(t *testing.T) {
	st := mineFleetStore(t, t.TempDir())
	if _, err := MineStore(st, MineConfig{}); err == nil {
		t.Fatal("missing reference device accepted")
	}
	if _, err := MineStore(st, MineConfig{RefDevice: "nope"}); err == nil {
		t.Fatal("unknown reference device accepted")
	}
	if _, err := MineStore(st, MineConfig{RefDevice: "ref-unit", Signal: "nope"}); err == nil {
		t.Fatal("unknown signal accepted")
	}
	// Epoch-range selection: mining a window where only some of the
	// drifted trace survives moves the onset.
	rep, err := MineStore(st, MineConfig{RefDevice: "ref-unit", From: 1000, To: 1005})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Devices {
		if d.Device == "ecu-late" && d.Affected() {
			t.Fatalf("ecu-late affected inside [1000, 1005] = %+v; its onset is at epoch 1008", d)
		}
		if d.Device == "ecu-early" && d.FirstMismatch != 2 {
			t.Fatalf("ecu-early in-window = %+v, want onset 2", d)
		}
	}
}
