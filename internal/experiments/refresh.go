// Package experiments implements the paper's two evaluation scenarios
// end-to-end so that tests, benchmarks, the tprbench tool and the
// examples all exercise one code path:
//
//   - Section 5.2.1: CAN bus communication — who is responsible for a
//     missed deadline, settled from logged timeprints.
//   - Section 5.2.2: temperature-compensated refresh effects detection
//     on a LEON3-style SoC, found by comparing hardware timeprints
//     against an RTL-simulation twin.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/properties"
	"repro/internal/reconstruct"
	"repro/internal/soc"
	"repro/internal/sram"
	"repro/internal/trace"
)

// RefreshConfig parameterizes the Section 5.2.2 run.
type RefreshConfig struct {
	// M and B are the trace-cycle length and timeprint width (the paper
	// uses m = 1024; small test runs may shrink this).
	M, B int
	// TraceCycles is how many trace-cycles to run.
	TraceCycles int
	// AmbientC is the environment temperature of the "hardware" run.
	AmbientC float64
	// SimWaitStates configures the simulation twin (the hardware uses
	// 1); 2 reproduces the misconfigured Gaisler SRAM model.
	SimWaitStates int
	// Period and BurstWords shape the software image.
	Period     uint16
	BurstWords int
	// Parallel bounds the worker pool used to run the SoC simulations
	// and to localize mismatching trace-cycles concurrently (each
	// trace-cycle's diagnosis is an independent SAT query). <= 1 runs
	// everything serially, exactly as the paper's single-threaded tool.
	Parallel int
	// Obs, when non-nil, receives the experiment's metrics (pool
	// utilization, per-trace-cycle localization spans) and is threaded
	// through the stores and every reconstruction query.
	Obs *obs.Registry
}

// DefaultRefreshConfig returns the configuration used throughout the
// reproduction: m = 1024 as in the paper.
func DefaultRefreshConfig(ambientC float64) RefreshConfig {
	return RefreshConfig{
		M: 1024, B: 24, TraceCycles: 40, AmbientC: ambientC,
		SimWaitStates: 1, Period: 100, BurstWords: 100,
	}
}

// hardwareMem returns the physical device model at the given ambient.
func hardwareMem(ambientC float64) sram.Config {
	cfg := sram.DefaultConfig(ambientC)
	cfg.BaseIntervalCycles = 1200
	cfg.MinIntervalCycles = 250
	cfg.IntervalSlopeCyclesPerC = 16
	cfg.RefreshCycles = 13
	cfg.HeatPerAccessC = 0.25
	return cfg
}

// simulationMem returns the idealized RTL-simulation device: no
// refresh, no thermal drift.
func simulationMem(waitStates int) sram.Config {
	return sram.Config{WaitStates: waitStates, CoolingPerCycle: 1}
}

// Localization is one diagnosed refresh delay.
type Localization struct {
	// TraceCycle is the mismatching trace-cycle.
	TraceCycle int
	// DelayedChangeCycles are the clock-cycles (within the trace-cycle)
	// whose change instances the reference trace expected but that
	// happened one cycle later on the hardware. One entry for a single
	// collision; two when the single-delay property was UNSAT and the
	// two-delay fallback resolved the trace-cycle.
	DelayedChangeCycles []int
	// Candidates is how many delay variants were consistent with the
	// logged timeprint (1 means unique diagnosis).
	Candidates int
	// Verified reports whether the diagnosed signal matches the
	// hardware's actual change trace (ground truth available only in
	// simulation).
	Verified bool
}

// DelayedChangeCycle returns the single diagnosed cycle, or -1 when
// the diagnosis is absent or involves several delays.
func (l Localization) DelayedChangeCycle() int {
	if len(l.DelayedChangeCycles) == 1 {
		return l.DelayedChangeCycles[0]
	}
	return -1
}

// RefreshResult is the outcome of one Section 5.2.2 run.
type RefreshResult struct {
	Config RefreshConfig

	// KMismatchesBuggy counts trace-cycles whose change counts differ
	// between hardware and the misconfigured simulation (the
	// wait-state-bug signature). Zero after the fix.
	KMismatchesBuggy int
	// KMismatchesFixed counts k mismatches against the fixed
	// simulation (expected 0: "k became exactly the same").
	KMismatchesFixed int
	// TPMismatches lists trace-cycles where timeprints differ with
	// equal k against the fixed simulation (the refresh signature).
	TPMismatches []int
	// FirstMismatch is the earliest such trace-cycle, -1 if none.
	FirstMismatch int
	// SteadyFrom is the first trace-cycle after the boot burst;
	// FirstSteadyMismatch is the earliest TP mismatch from there on
	// (-1 if none). The burst saturates the memory, so a refresh there
	// collides at any temperature; the temperature-dependent onset the
	// paper reports is a steady-state effect.
	SteadyFrom          int
	FirstSteadyMismatch int
	// Localizations diagnoses each TP mismatch via the delayed-variant
	// property.
	Localizations []Localization
	// Collisions is the hardware's ground-truth refresh-collision
	// count; FinalTempC its final die temperature.
	Collisions int64
	FinalTempC float64
}

// RunRefresh executes the experiment: the hardware run, the buggy
// simulation, the fixed simulation, log comparison and delay
// localization.
func RunRefresh(cfg RefreshConfig) (*RefreshResult, error) {
	defer cfg.Obs.StartSpan(SpanRefresh).End()
	enc, err := encoding.Incremental(cfg.M, cfg.B, 4)
	if err != nil {
		return nil, err
	}
	prog := soc.SensorProgram(cfg.BurstWords, cfg.Period)
	cycles := int64(cfg.TraceCycles) * int64(cfg.M)

	run := func(mem sram.Config) (*soc.System, *trace.Store, error) {
		sys, err := soc.Build(soc.Config{
			Program: prog, Mem: mem, Enc: enc, ClockHz: 50e6,
		})
		if err != nil {
			return nil, nil, err
		}
		sys.Run(cycles)
		st, err := sys.StoreObserved("addr", cfg.Obs)
		if err != nil {
			return nil, nil, err
		}
		return sys, st, nil
	}

	// The three SoC runs (hardware, buggy sim, fixed sim) are
	// independent simulations; with a parallel budget they execute
	// concurrently.
	mems := []sram.Config{hardwareMem(cfg.AmbientC), simulationMem(2), simulationMem(cfg.SimWaitStates)}
	syss := make([]*soc.System, len(mems))
	stores := make([]*trace.Store, len(mems))
	errs := make([]error, len(mems))
	runPoolMetered(len(mems), cfg.Parallel, cfg.Obs, PoolName, func(i int) {
		syss[i], stores[i], errs[i] = run(mems[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	hwSys, hwSt := syss[0], stores[0]
	buggySt := stores[1]
	simSys, fixedSt := syss[2], stores[2]

	res := &RefreshResult{Config: cfg, FirstMismatch: -1, FirstSteadyMismatch: -1}
	// A burst word costs ~13-15 cycles; 20 is a safe upper bound.
	res.SteadyFrom = cfg.BurstWords*20/cfg.M + 1
	res.Collisions = hwSys.Mem.Stats().Collisions
	res.FinalTempC = hwSys.Mem.TemperatureC()

	mmBuggy, err := trace.Compare(hwSt, buggySt)
	if err != nil {
		return nil, err
	}
	for _, m := range mmBuggy {
		if m.KDiffers {
			res.KMismatchesBuggy++
		}
	}
	mmFixed, err := trace.Compare(hwSt, fixedSt)
	if err != nil {
		return nil, err
	}
	refs := simSys.ReferenceSignals()
	hwRefs := hwSys.ReferenceSignals()
	for _, m := range mmFixed {
		if m.KDiffers {
			res.KMismatchesFixed++
			continue
		}
		res.TPMismatches = append(res.TPMismatches, m.TraceCycle)
		if res.FirstMismatch == -1 || m.TraceCycle < res.FirstMismatch {
			res.FirstMismatch = m.TraceCycle
		}
		if m.TraceCycle >= res.SteadyFrom &&
			(res.FirstSteadyMismatch == -1 || m.TraceCycle < res.FirstSteadyMismatch) {
			res.FirstSteadyMismatch = m.TraceCycle
		}
	}
	// Each TP mismatch is localized by an independent SAT query over
	// its own trace-cycle; the pool fans them out and the results land
	// in trace-cycle order regardless of scheduling.
	locs := make([]Localization, len(res.TPMismatches))
	locErrs := make([]error, len(res.TPMismatches))
	runPoolMetered(len(res.TPMismatches), cfg.Parallel, cfg.Obs, PoolName, func(i int) {
		locs[i], locErrs[i] = localizeDelay(enc, hwSt, refs, hwRefs, res.TPMismatches[i], cfg.Obs)
	})
	for _, err := range locErrs {
		if err != nil {
			return nil, err
		}
	}
	if len(locs) > 0 {
		res.Localizations = locs
	}
	return res, nil
}

// localizeDelay reconstructs the hardware's trace-cycle signal under
// the property "the reference trace with exactly one change instance
// delayed by one clock-cycle" (Section 5.2.2) and reports which change
// it was. When no single delay explains the timeprint (two collisions
// landed in one trace-cycle), it falls back to the two-delay variant
// set.
func localizeDelay(enc *encoding.Encoding, hwSt *trace.Store, refs, hwRefs []core.Signal, tc int, reg *obs.Registry) (Localization, error) {
	defer reg.StartSpan(SpanLocalize).End()
	entry, err := hwSt.Entry(tc)
	if err != nil {
		return Localization{}, err
	}
	ref := refs[tc]
	loc := Localization{TraceCycle: tc}

	for _, prop := range []properties.OneOfSignals{
		properties.DelayedVariants(ref, 1),
		twoDelayVariants(ref, 1),
	} {
		if len(prop.Candidates) == 0 {
			continue
		}
		rec, err := reconstruct.New(enc, entry, []reconstruct.Constraint{prop}, reconstruct.Options{Obs: reg})
		if err != nil {
			return loc, err
		}
		cands, exhausted, err := rec.EnumerateStrict(0)
		if err != nil {
			return loc, err
		}
		if !exhausted {
			return loc, fmt.Errorf("experiments: localization enumeration not exhausted")
		}
		if len(cands) == 0 {
			continue
		}
		loc.Candidates = len(cands)
		cand := cands[0]
		for _, c := range ref.Changes() {
			if !cand.Changed(c) {
				loc.DelayedChangeCycles = append(loc.DelayedChangeCycles, c)
			}
		}
		loc.Verified = cand.Equal(hwRefs[tc])
		return loc, nil
	}
	return loc, nil // more than two collisions; left undiagnosed
}

// maxTwoDelayChanges bounds the two-delay fallback: its candidate set
// is C(k, 2) complete assignments, each costing O(m) clauses, which is
// prohibitive for the dense boot-burst trace-cycles (and those are
// whole-suffix shifts, not two isolated delays, anyway).
const maxTwoDelayChanges = 40

// twoDelayVariants builds every variant of ref in which two distinct
// change instances are each delayed by delta cycles onto quiet cycles.
// It returns an empty candidate set for trace-cycles denser than
// maxTwoDelayChanges.
func twoDelayVariants(ref core.Signal, delta int) properties.OneOfSignals {
	m := ref.M()
	changes := ref.Changes()
	if len(changes) > maxTwoDelayChanges {
		return properties.OneOfSignals{Name: "TwoDelayVariants(skipped: too dense)"}
	}
	var cands []core.Signal
	for i := 0; i < len(changes); i++ {
		for j := i + 1; j < len(changes); j++ {
			a, b := changes[i], changes[j]
			na, nb := a+delta, b+delta
			if na >= m || nb >= m || na == b {
				continue
			}
			v := ref.Vector()
			v.Flip(a)
			if v.Get(na) {
				continue // target occupied (after the first move)
			}
			v.Flip(na)
			if !v.Get(b) || v.Get(nb) {
				continue
			}
			v.Flip(b)
			v.Flip(nb)
			cands = append(cands, core.SignalFromVector(v))
		}
	}
	return properties.OneOfSignals{
		Name:       fmt.Sprintf("TwoDelayVariants(delta=%d, refK=%d)", delta, ref.K()),
		Candidates: cands,
	}
}

// RefreshSweep runs the experiment across ambient temperatures and
// returns the first-mismatch onset per temperature — the paper's
// "mismatch started from as early as the 3rd to as late as the 28th
// trace-cycle" observation.
func RefreshSweep(base RefreshConfig, ambients []float64) ([]*RefreshResult, error) {
	out := make([]*RefreshResult, len(ambients))
	errs := make([]error, len(ambients))
	// Fan the ambients out across the pool; each inner run then stays
	// serial (inner.Parallel = 1) so the total goroutine count is
	// bounded by base.Parallel rather than its square.
	runPoolMetered(len(ambients), base.Parallel, base.Obs, PoolName, func(i int) {
		cfg := base
		cfg.AmbientC = ambients[i]
		if base.Parallel > 1 {
			cfg.Parallel = 1
		}
		r, err := RunRefresh(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: ambient %.0f: %w", ambients[i], err)
			return
		}
		out[i] = r
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
