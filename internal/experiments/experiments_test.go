package experiments

import (
	"testing"

	"repro/internal/sat"
)

// smallRefreshConfig shrinks 5.2.2 for unit testing (m=256 instead of
// 1024; the full geometry runs in the benchmark harness).
func smallRefreshConfig(ambient float64) RefreshConfig {
	return RefreshConfig{
		M: 256, B: 20, TraceCycles: 60, AmbientC: ambient,
		SimWaitStates: 1, Period: 100, BurstWords: 24,
	}
}

func TestRefreshExperimentDetectsWaitStateBug(t *testing.T) {
	res, err := RunRefresh(smallRefreshConfig(65))
	if err != nil {
		t.Fatal(err)
	}
	// The misconfigured simulation must be caught via k mismatches...
	if res.KMismatchesBuggy == 0 {
		t.Error("wait-state bug not detected: no k mismatches vs buggy sim")
	}
	// ...and after the fix "the number of changes k in all trace-cycles
	// became exactly the same".
	if res.KMismatchesFixed != 0 {
		t.Errorf("fixed simulation still has %d k mismatches", res.KMismatchesFixed)
	}
}

func TestRefreshExperimentDetectsAndLocalizesDelays(t *testing.T) {
	res, err := RunRefresh(smallRefreshConfig(65))
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions == 0 {
		t.Fatal("no refresh collisions occurred; experiment vacuous")
	}
	if len(res.TPMismatches) == 0 {
		t.Fatal("refresh collisions left no timeprint mismatches")
	}
	if res.FirstMismatch < 0 {
		t.Fatal("no first mismatch")
	}
	// Localization: every single-delay trace-cycle must be diagnosed
	// uniquely and correctly against ground truth.
	diagnosed := 0
	for _, loc := range res.Localizations {
		if loc.Candidates == 1 {
			diagnosed++
			if !loc.Verified {
				t.Errorf("tc %d: diagnosis does not match hardware ground truth", loc.TraceCycle)
			}
			if len(loc.DelayedChangeCycles) == 0 {
				t.Errorf("tc %d: no delayed change identified", loc.TraceCycle)
			}
		}
	}
	if diagnosed == 0 {
		t.Error("no mismatch could be localized to a unique one-cycle delay")
	}
	t.Logf("collisions=%d tpMismatches=%v diagnosed=%d firstMismatch=%d temp=%.1f",
		res.Collisions, res.TPMismatches, diagnosed, res.FirstMismatch, res.FinalTempC)
}

func TestRefreshSweepOnsetMovesEarlierWithTemperature(t *testing.T) {
	// The paper: "the mismatch in timeprints started from as early as
	// the third trace-cycle, to as late as the 28th" and "this one
	// clock-cycle delay happens earlier if temperature is higher".
	ambients := []float64{25, 45, 65, 85}
	results, err := RefreshSweep(smallRefreshConfig(0), ambients)
	if err != nil {
		t.Fatal(err)
	}
	var onsets []int
	for i, r := range results {
		t.Logf("ambient %.0fC: first steady mismatch at trace-cycle %d (collisions %d, final temp %.1fC)",
			ambients[i], r.FirstSteadyMismatch, r.Collisions, r.FinalTempC)
		onsets = append(onsets, r.FirstSteadyMismatch)
	}
	// Collision counts must rise with temperature (the density view of
	// the same effect).
	for i := 1; i < len(results); i++ {
		if results[i].Collisions < results[i-1].Collisions {
			t.Errorf("collisions fell with temperature: %d -> %d",
				results[i-1].Collisions, results[i].Collisions)
		}
	}
	// Every temperature must eventually mismatch. The onset is a
	// deterministic beat between the loop period and the refresh
	// interval, so it is not strictly monotone step by step (the paper
	// likewise reports a 3rd..28th range over reruns); require the
	// trend: the hottest run must mismatch well before the coldest.
	for i, o := range onsets {
		if o < 0 {
			t.Fatalf("ambient %.0fC: no mismatch within %d trace-cycles", ambients[i], results[i].Config.TraceCycles)
		}
	}
	if onsets[len(onsets)-1] >= onsets[0] {
		t.Errorf("hottest run (%d) did not mismatch before coldest (%d): %v",
			onsets[len(onsets)-1], onsets[0], onsets)
	}
}

func TestCANExperiment(t *testing.T) {
	res, err := RunCAN(DefaultCANConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Paper-anchored checks: 34 bits per trace-cycle, start at cycle
	// 823, 125-bit EngineData frame, deadline proof UNSAT. (The paper
	// states "170 bps" from "5 timeprints per second", but a 1000-bit
	// trace-cycle at 5 Mbps completes every 200 µs, i.e. 5000 per
	// second — 170 kbit/s; see EXPERIMENTS.md.)
	if res.LogRateBps != 170000 {
		t.Errorf("log rate %.1f bps, want 170000", res.LogRateBps)
	}
	if res.TrueStart != 823 {
		t.Errorf("true start %d, want 823", res.TrueStart)
	}
	if res.FrameBits != 125 {
		t.Errorf("frame bits %d, want 125", res.FrameBits)
	}
	if len(res.WholeOffsets) != 1 || res.WholeOffsets[0] != 823 {
		t.Errorf("whole reconstruction offsets %v, want [823]", res.WholeOffsets)
	}
	if len(res.WindowOffsets) != 1 || res.WindowOffsets[0] != 823 {
		t.Errorf("window reconstruction offsets %v, want [823]", res.WindowOffsets)
	}
	if res.DeadlineStatus != sat.Unsat {
		t.Errorf("deadline proof %v, want UNSAT", res.DeadlineStatus)
	}
	// The reconstruction carries the full message: the decoder recovers
	// EngineData(100) with its 8-byte payload from the change instants.
	if res.DecodedID != 100 {
		t.Errorf("decoded id %d, want 100", res.DecodedID)
	}
	if len(res.DecodedData) != 8 || res.DecodedData[2] != 0x19 {
		t.Errorf("decoded payload %x", res.DecodedData)
	}
	// The message ends after the deadline: 823 + 125 = 948 > 900.
	if res.TrueStart+res.FrameBits <= res.Config.DeadlineCycle {
		t.Error("scenario broken: message ends before deadline")
	}
	// Windowed reconstruction must not be slower than whole-cycle by
	// more than noise; the paper reports it an order of magnitude
	// faster. Only sanity-check the direction on this small instance.
	t.Logf("whole=%v window=%v deadline=%v k=%d", res.WholeDuration, res.WindowDuration, res.DeadlineDuration, res.Entry.K)
	// The software log resembles the paper's listing.
	if len(res.SoftwareLog) == 0 {
		t.Fatal("empty software log")
	}
	found := false
	for _, r := range res.SoftwareLog {
		if r.Name == "EngineData" && r.Bits == 125 {
			found = true
		}
	}
	if !found {
		t.Error("EngineData(125 bits) not in software log")
	}
}

// TestRefreshParallelMatchesSerial runs the same refresh experiment
// serially and through the concurrent pipeline and requires identical
// results: the pool changes scheduling, never outcomes.
func TestRefreshParallelMatchesSerial(t *testing.T) {
	serialCfg := smallRefreshConfig(65)
	parCfg := serialCfg
	parCfg.Parallel = 4

	serial, err := RunRefresh(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunRefresh(parCfg)
	if err != nil {
		t.Fatal(err)
	}

	if serial.KMismatchesBuggy != par.KMismatchesBuggy ||
		serial.KMismatchesFixed != par.KMismatchesFixed ||
		serial.FirstMismatch != par.FirstMismatch ||
		serial.FirstSteadyMismatch != par.FirstSteadyMismatch ||
		serial.Collisions != par.Collisions {
		t.Fatalf("parallel run diverged:\nserial %+v\nparallel %+v", serial, par)
	}
	if len(serial.TPMismatches) != len(par.TPMismatches) {
		t.Fatalf("TP mismatches: serial %v, parallel %v", serial.TPMismatches, par.TPMismatches)
	}
	for i := range serial.TPMismatches {
		if serial.TPMismatches[i] != par.TPMismatches[i] {
			t.Fatalf("TP mismatch order differs at %d: %v vs %v", i, serial.TPMismatches, par.TPMismatches)
		}
	}
	if len(serial.Localizations) != len(par.Localizations) {
		t.Fatalf("localizations: serial %d, parallel %d", len(serial.Localizations), len(par.Localizations))
	}
	for i := range serial.Localizations {
		s, p := serial.Localizations[i], par.Localizations[i]
		if s.TraceCycle != p.TraceCycle || s.Candidates != p.Candidates || s.Verified != p.Verified ||
			len(s.DelayedChangeCycles) != len(p.DelayedChangeCycles) {
			t.Fatalf("localization %d differs: serial %+v, parallel %+v", i, s, p)
		}
	}
}
