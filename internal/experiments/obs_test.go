package experiments

import (
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/reconstruct"
	"repro/internal/sat"
	"repro/internal/trace"
)

func TestRunPoolMetered(t *testing.T) {
	reg := obs.NewRegistry()
	var ran atomic.Int64
	runPoolMetered(10, 4, reg, "test.pool", func(i int) { ran.Add(1) })
	if ran.Load() != 10 {
		t.Fatalf("%d jobs ran, want 10", ran.Load())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["test.pool"+PoolJobsSuffix]; got != 10 {
		t.Errorf("jobs counter %d, want 10", got)
	}
	if got := snap.Gauges["test.pool"+PoolQueueSuffix].Value; got != 0 {
		t.Errorf("queue depth %d after drain, want 0", got)
	}
	busy := snap.Gauges["test.pool"+PoolBusySuffix]
	if busy.Value != 0 {
		t.Errorf("busy gauge %d after drain, want 0", busy.Value)
	}
	if busy.Max < 1 {
		t.Errorf("peak busy %d, want >= 1", busy.Max)
	}
	// Nil registry must not panic and must still run every job.
	ran.Store(0)
	runPoolMetered(5, 2, nil, "test.pool", func(i int) { ran.Add(1) })
	if ran.Load() != 5 {
		t.Fatalf("nil-registry pool ran %d jobs, want 5", ran.Load())
	}
}

// TestRefreshExperimentPublishesMetrics runs the small 5.2.2 geometry
// with a registry attached and checks the whole pipeline reported
// through it: experiment span, pool jobs, store comparisons, presolve
// outcomes, solver counters and localization spans.
func TestRefreshExperimentPublishesMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := smallRefreshConfig(65)
	cfg.Obs = reg
	res, err := RunRefresh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TPMismatches) == 0 {
		t.Fatal("experiment vacuous: no TP mismatches")
	}
	snap := reg.Snapshot()

	if snap.Histograms[SpanRefresh+".ns"].Count != 1 {
		t.Error("refresh span not recorded exactly once")
	}
	if got := snap.Histograms[SpanLocalize+".ns"].Count; got != int64(len(res.TPMismatches)) {
		t.Errorf("localize spans %d, want one per TP mismatch (%d)", got, len(res.TPMismatches))
	}
	if snap.Counters[PoolName+PoolJobsSuffix] == 0 {
		t.Error("worker pool recorded no jobs")
	}
	if got := snap.Counters[trace.MetricCompareTPMismatch]; got < int64(len(res.TPMismatches)) {
		t.Errorf("compare counter %d TP mismatches, result has %d", got, len(res.TPMismatches))
	}
	if snap.Counters[reconstruct.MetricInstances] == 0 {
		t.Error("no reconstruction instances counted")
	}
	if snap.Counters[sat.MetricSolveCalls] == 0 {
		t.Error("no solver calls reached the registry")
	}
	if snap.Counters[trace.MetricEntriesAppended] == 0 {
		t.Error("no store entries counted")
	}
}
