package experiments

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Fleet mining over the durable log store (the ROADMAP's
// "fleet-scale anomaly mining" half of the forensic engine): one
// device in the fleet — typically a golden/reference unit or an RTL
// simulation twin whose logs were ingested like any other device's —
// serves as the reference, and every other device's stored timeprints
// for the same signal are compared against it with the Section 5.2.2
// refresh-delay/k-mismatch detection. The output is population-level:
// which devices diverge, and how the mismatch onsets distribute (the
// paper's "as early as the 3rd to as late as the 28th trace-cycle"
// observation, measured across a fleet instead of an ambient sweep).

// Mining metric names.
const (
	SpanMine           = "experiments.mine"
	MetricMineDevices  = "experiments.mine.devices"
	MetricMineAffected = "experiments.mine.affected"
)

// MineConfig parameterizes MineStore.
type MineConfig struct {
	// RefDevice is the reference device's name (required); every other
	// device's streams are compared against its stream of the same
	// signal.
	RefDevice string
	// Signal restricts mining to one signal name; empty mines every
	// signal the reference device has stored.
	Signal string
	// From and To bound the stored epochs considered (inclusive,
	// Unix microseconds); To == 0 means unbounded.
	From, To int64
	// Parallel bounds the worker pool comparing device streams; <= 1 is
	// serial.
	Parallel int
	// Obs receives the mining metrics; nil disables instrumentation.
	Obs *obs.Registry
}

// DeviceReport is one compared device stream.
type DeviceReport struct {
	Device  string `json:"device"`
	Signal  string `json:"signal"`
	Records int    `json:"records"`
	// Cycles is how many trace-cycles were compared (bounded by the
	// shorter of the device's and the reference's histories).
	Cycles int `json:"cycles_compared"`
	// KMismatches counts trace-cycles with differing change counts (the
	// wait-state-bug signature); TPMismatches lists trace-cycles whose
	// timeprints differ at equal k (the refresh signature).
	KMismatches  int   `json:"k_mismatches"`
	TPMismatches []int `json:"tp_mismatches,omitempty"`
	// FirstMismatch is the earliest mismatching trace-cycle of either
	// kind, -1 when the device agrees with the reference.
	FirstMismatch int `json:"first_mismatch"`
	// Err reports a stream that could not be compared (geometry
	// mismatch with the reference, undecodable stored frame) without
	// aborting the rest of the fleet.
	Err string `json:"error,omitempty"`
}

// Affected reports whether the device diverged from the reference.
func (d DeviceReport) Affected() bool {
	return d.Err == "" && (d.KMismatches > 0 || len(d.TPMismatches) > 0)
}

// PopulationSummary aggregates a signal's fleet into onset statistics.
type PopulationSummary struct {
	Signal string `json:"signal"`
	// Compared counts device streams diffed against the reference;
	// Affected those with at least one mismatch; Failed those whose
	// streams could not be compared.
	Compared int `json:"compared"`
	Affected int `json:"affected"`
	Failed   int `json:"failed,omitempty"`
	// Onset statistics over the affected devices' FirstMismatch values.
	// Meaningful only when Affected > 0.
	OnsetMin    int `json:"onset_min"`
	OnsetMedian int `json:"onset_median"`
	OnsetMax    int `json:"onset_max"`
}

// MineReport is the outcome of one MineStore run.
type MineReport struct {
	RefDevice string `json:"ref_device"`
	// Devices holds every compared stream, sorted by (signal, device).
	Devices []DeviceReport `json:"devices"`
	// Populations summarizes each mined signal, sorted by signal.
	Populations []PopulationSummary `json:"populations"`
}

// MineStore walks the store and compares every device's streams
// against the reference device's stream of the same signal. Devices
// that cannot be compared are reported per-device, not fatally; only a
// missing reference or a store-level failure aborts the run.
func MineStore(st *logstore.Store, cfg MineConfig) (*MineReport, error) {
	defer cfg.Obs.StartSpan(SpanMine).End()
	if cfg.RefDevice == "" {
		return nil, fmt.Errorf("experiments: mine needs a reference device")
	}
	from, to := cfg.From, cfg.To
	if to == 0 {
		to = 1<<63 - 1
	}

	keys := st.Keys()
	// The reference device's signals define what is minable.
	refSignals := map[string]bool{}
	for _, k := range keys {
		if k.Device == cfg.RefDevice && (cfg.Signal == "" || k.Signal == cfg.Signal) {
			refSignals[k.Signal] = true
		}
	}
	if len(refSignals) == 0 {
		if cfg.Signal != "" {
			return nil, fmt.Errorf("experiments: reference device %q has no stored stream for signal %q", cfg.RefDevice, cfg.Signal)
		}
		return nil, fmt.Errorf("experiments: reference device %q has no stored streams", cfg.RefDevice)
	}

	// Build each reference signal's trace store once.
	refStores := map[string]*trace.Store{}
	for sig := range refSignals {
		ref, _, err := loadTraceStore(st, cfg.RefDevice, sig, from, to)
		if err != nil {
			return nil, fmt.Errorf("experiments: reference %s/%s: %w", cfg.RefDevice, sig, err)
		}
		refStores[sig] = ref
	}

	// Fan the fleet's streams out across the pool.
	var targets []logstore.KeyInfo
	for _, k := range keys {
		if k.Device != cfg.RefDevice && refSignals[k.Signal] {
			targets = append(targets, k)
		}
	}
	reports := make([]DeviceReport, len(targets))
	runPoolMetered(len(targets), cfg.Parallel, cfg.Obs, PoolName, func(i int) {
		k := targets[i]
		reports[i] = mineDevice(st, refStores[k.Signal], k, from, to)
	})

	sort.Slice(reports, func(i, j int) bool {
		if reports[i].Signal != reports[j].Signal {
			return reports[i].Signal < reports[j].Signal
		}
		return reports[i].Device < reports[j].Device
	})
	rep := &MineReport{RefDevice: cfg.RefDevice, Devices: reports}
	rep.Populations = summarize(reports)
	cfg.Obs.Counter(MetricMineDevices).Add(int64(len(reports)))
	for _, p := range rep.Populations {
		cfg.Obs.Counter(MetricMineAffected).Add(int64(p.Affected))
	}
	return rep, nil
}

// mineDevice compares one device stream against the reference.
func mineDevice(st *logstore.Store, ref *trace.Store, k logstore.KeyInfo, from, to int64) DeviceReport {
	rep := DeviceReport{Device: k.Device, Signal: k.Signal, FirstMismatch: -1}
	dev, records, err := loadTraceStore(st, k.Device, k.Signal, from, to)
	rep.Records = records
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	if dev.M != ref.M || dev.B != ref.B {
		rep.Err = fmt.Sprintf("geometry (m=%d, b=%d) differs from reference (m=%d, b=%d)", dev.M, dev.B, ref.M, ref.B)
		return rep
	}
	mms, err := trace.Compare(ref, dev)
	if err != nil {
		rep.Err = err.Error()
		return rep
	}
	rep.Cycles = min(ref.Len(), dev.Len())
	for _, mm := range mms {
		if mm.KDiffers {
			rep.KMismatches++
		}
		if mm.TPDiffers {
			rep.TPMismatches = append(rep.TPMismatches, mm.TraceCycle)
		}
	}
	rep.FirstMismatch = trace.FirstMismatch(mms)
	return rep
}

// loadTraceStore decodes one stream's stored frames (epoch order) into
// a trace.Store, returning how many records were loaded. Geometry must
// be uniform across the stream's frames; a frame that fails decode
// fails the load (the store's fail-closed rule extended to mining).
func loadTraceStore(st *logstore.Store, device, signal string, from, to int64) (*trace.Store, int, error) {
	recs, err := st.Query(logstore.Query{Device: device, Signal: signal, From: from, To: to})
	if err != nil {
		return nil, 0, err
	}
	if len(recs) == 0 {
		return nil, 0, fmt.Errorf("no stored records in range")
	}
	var ts *trace.Store
	for i, rec := range recs {
		m, b, entries, err := core.ReadLog(bytes.NewReader(rec.Body))
		if err != nil {
			return nil, i, fmt.Errorf("stored frame at epoch %d: %w", rec.Epoch, err)
		}
		if ts == nil {
			ts = trace.NewStore(device+"/"+signal, 0, m, b)
		} else if m != ts.M || b != ts.B {
			return nil, i, fmt.Errorf("stored frame at epoch %d switches geometry to (m=%d, b=%d) from (m=%d, b=%d)",
				rec.Epoch, m, b, ts.M, ts.B)
		}
		if err := ts.Append(entries...); err != nil {
			return nil, i, err
		}
	}
	return ts, len(recs), nil
}

// summarize folds per-device reports into per-signal population
// statistics.
func summarize(reports []DeviceReport) []PopulationSummary {
	bySignal := map[string]*PopulationSummary{}
	onsets := map[string][]int{}
	for _, d := range reports {
		p := bySignal[d.Signal]
		if p == nil {
			p = &PopulationSummary{Signal: d.Signal}
			bySignal[d.Signal] = p
		}
		if d.Err != "" {
			p.Failed++
			continue
		}
		p.Compared++
		if d.Affected() {
			p.Affected++
			onsets[d.Signal] = append(onsets[d.Signal], d.FirstMismatch)
		}
	}
	out := make([]PopulationSummary, 0, len(bySignal))
	for sig, p := range bySignal {
		if on := onsets[sig]; len(on) > 0 {
			sort.Ints(on)
			p.OnsetMin = on[0]
			p.OnsetMedian = on[len(on)/2]
			p.OnsetMax = on[len(on)-1]
		}
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signal < out[j].Signal })
	return out
}
