package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/can"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/properties"
	"repro/internal/reconstruct"
	"repro/internal/sat"
	"repro/internal/trace"
)

// Span and metric names published by the experiments layer.
const (
	SpanCAN      = "experiments.can"
	SpanRefresh  = "experiments.refresh"
	SpanLocalize = "experiments.localize"
	// PoolName prefixes the worker-pool gauges and counters (see
	// runPoolMetered).
	PoolName = "experiments.pool"
)

// CANConfig parameterizes the Section 5.2.1 experiment: timeprints are
// logged for the CAN bus line while an EngineData transmission is
// manually delayed past its deadline; the logged timeprint of the
// affected trace-cycle is then used to settle, offline, when the
// message actually appeared on the wire.
type CANConfig struct {
	// BitRate of the bus; the paper uses 5 Mbps.
	BitRate float64
	// M and B are the trace-cycle length and timestamp width (paper:
	// 1000 and 24).
	M, B int
	// HorizonSeconds is how long the scenario runs.
	HorizonSeconds float64
	// DelayedInstance is which EngineData occurrence is delayed.
	DelayedInstance int
	// StartCycle is the clock-cycle (within its trace-cycle) at which
	// the delayed transmission is made to start (paper: 823).
	StartCycle int
	// DeadlineCycle is the deadline within the trace-cycle (paper: 900,
	// i.e. absolute 2.253580 s against a trace-cycle starting at
	// 2.253400 s).
	DeadlineCycle int
	// WindowLo is the start of the known failure window (paper: the
	// window 2.253533 s – 2.253600 s, cycles 665..1000).
	WindowLo int
	// Parallel is the reconstruction worker count: each SAT query is
	// solved with a cube-split portfolio of that many cloned solvers.
	// <= 1 runs the paper's serial path.
	Parallel int
	// Obs, when non-nil, receives the experiment's metrics and is
	// threaded through the store and every reconstruction query.
	Obs *obs.Registry
}

// DefaultCANConfig returns the paper's parameters.
func DefaultCANConfig() CANConfig {
	return CANConfig{
		BitRate: 5e6, M: 1000, B: 24, HorizonSeconds: 0.05,
		DelayedInstance: 3, StartCycle: 823, DeadlineCycle: 900, WindowLo: 665,
	}
}

// CANResult carries everything the experiment reports.
type CANResult struct {
	Config CANConfig

	// SoftwareLog is the transmitter-side message listing.
	SoftwareLog []can.LogRecord
	// LogRateBps is the timeprint logging rate ((b+log2 m)/m · bitrate;
	// paper: 170 bps).
	LogRateBps float64
	// TraceCycle is the index of the trace-cycle covering the deadline;
	// Entry its logged timeprint.
	TraceCycle int
	Entry      core.LogEntry

	// FrameBits is the delayed frame's wire length; TrueStart the
	// ground-truth start cycle within the trace-cycle.
	FrameBits int
	TrueStart int

	// WholeOffsets are the start offsets consistent with the timeprint
	// when the whole trace-cycle is searched; WindowOffsets restricts
	// the search to the failure window. Each expects exactly one
	// element: the true start.
	WholeOffsets  []int
	WindowOffsets []int
	// DecodedID and DecodedData are the frame recovered by replaying
	// the reconstructed change instants into a protocol decoder —
	// proving the reconstruction carries the full message, not just
	// its timing.
	DecodedID   uint16
	DecodedData []byte
	// DeadlineStatus is the verdict of "the transmission completed
	// before the deadline": Unsat proves it did not.
	DeadlineStatus sat.Status

	WholeDuration    time.Duration
	WindowDuration   time.Duration
	DeadlineDuration time.Duration
}

// frameChangePositions returns the change cycles of a frame whose
// first bit appears at the given offset on an otherwise idle
// (recessive) line.
func frameChangePositions(bits []bool, offset int) []int {
	var out []int
	prev := true
	for i, b := range bits {
		if b != prev {
			out = append(out, offset+i)
		}
		prev = b
	}
	return out
}

// RunCAN executes the experiment.
func RunCAN(cfg CANConfig) (*CANResult, error) {
	defer cfg.Obs.StartSpan(SpanCAN).End()
	enc, err := encoding.Incremental(cfg.M, cfg.B, 4)
	if err != nil {
		return nil, err
	}
	bus := can.Bus{BitRate: cfg.BitRate, Stuffing: true}
	msgs := can.DemoScenario(cfg.BitRate)
	horizon := bus.BitTime(cfg.HorizonSeconds)

	// Baseline schedule to find the undelayed start of the chosen
	// EngineData instance, then delay it so it starts at StartCycle of
	// its trace-cycle.
	base, err := bus.Schedule(msgs, horizon, nil)
	if err != nil {
		return nil, err
	}
	var naturalStart int64 = -1
	inst := 0
	for _, tx := range base {
		if tx.Msg.Name == "EngineData" {
			if inst == cfg.DelayedInstance {
				naturalStart = tx.StartBit
				break
			}
			inst++
		}
	}
	if naturalStart < 0 {
		return nil, fmt.Errorf("experiments: EngineData instance %d not scheduled", cfg.DelayedInstance)
	}
	tcStart := naturalStart / int64(cfg.M) * int64(cfg.M)
	delay := tcStart + int64(cfg.StartCycle) - naturalStart
	if delay < 0 {
		return nil, fmt.Errorf("experiments: natural start %d already past cycle %d", naturalStart, cfg.StartCycle)
	}
	txs, err := bus.Schedule(msgs, horizon, map[can.DelayKey]int64{
		{Name: "EngineData", Instance: cfg.DelayedInstance}: delay,
	})
	if err != nil {
		return nil, err
	}

	// Locate the delayed transmission and sanity-check isolation: no
	// other frame may overlap its trace-cycle, so the logged k belongs
	// to this message alone.
	var target can.Transmission
	inst = 0
	for _, tx := range txs {
		if tx.Msg.Name == "EngineData" {
			if inst == cfg.DelayedInstance {
				target = tx
				break
			}
			inst++
		}
	}
	tcIdx := int(target.StartBit / int64(cfg.M))
	tcLo, tcHi := int64(tcIdx)*int64(cfg.M), int64(tcIdx+1)*int64(cfg.M)
	if target.EndBit() > tcHi {
		return nil, fmt.Errorf("experiments: frame crosses the trace-cycle boundary (%d..%d)", target.StartBit, target.EndBit())
	}
	for _, tx := range txs {
		if tx.Msg == target.Msg && tx.StartBit == target.StartBit {
			continue
		}
		if tx.StartBit < tcHi && tx.EndBit() > tcLo {
			return nil, fmt.Errorf("experiments: %s overlaps the analysed trace-cycle", tx.Msg.Name)
		}
	}

	// Log timeprints for the whole bus line.
	line := can.Wire(txs, horizon)
	whole := horizon / int64(cfg.M) * int64(cfg.M)
	changes := can.Changes(line[:whole])
	entries, err := core.LogSignalTrace(enc, changes, whole)
	if err != nil {
		return nil, err
	}
	store := trace.NewStore("canbus", cfg.BitRate, cfg.M, cfg.B)
	store.Obs = cfg.Obs
	if err := store.Append(entries...); err != nil {
		return nil, err
	}
	entry, err := store.Entry(tcIdx)
	if err != nil {
		return nil, err
	}

	res := &CANResult{
		Config:      cfg,
		SoftwareLog: bus.SoftwareLog(txs),
		LogRateBps:  core.LogRate(cfg.B, cfg.M, cfg.BitRate),
		TraceCycle:  tcIdx,
		Entry:       entry,
		FrameBits:   len(target.Bits),
		TrueStart:   int(target.StartBit - tcLo),
	}

	// Candidate signals: the known frame bitstring placed at every
	// offset that keeps it inside the trace-cycle — the "CAN messages
	// as SAT input" encoding of the paper's tool.
	candidateSet := func(lo, hi int) properties.OneOfSignals {
		var cands []core.Signal
		var offsets []int
		for off := lo; off+len(target.Bits) <= hi; off++ {
			cands = append(cands, core.SignalFromChanges(cfg.M, frameChangePositions(target.Bits, off)...))
			offsets = append(offsets, off)
		}
		return properties.OneOfSignals{Name: fmt.Sprintf("frame@[%d,%d)", lo, hi), Candidates: cands}
	}
	offsetsOf := func(sigs []core.Signal) []int {
		var out []int
		for _, s := range sigs {
			cs := s.Changes()
			if len(cs) > 0 {
				out = append(out, cs[0]) // first change = SOF = start offset
			}
		}
		// Serial and cube-split enumeration deliver candidates in
		// different orders; report offsets canonically.
		sort.Ints(out)
		return out
	}

	solve := func(prop properties.OneOfSignals) ([]core.Signal, time.Duration, error) {
		start := time.Now()
		rec, err := reconstruct.New(enc, entry, []reconstruct.Constraint{prop}, reconstruct.Options{Obs: cfg.Obs})
		if err != nil {
			return nil, 0, err
		}
		var sigs []core.Signal
		var exhausted bool
		if cfg.Parallel > 1 {
			sigs, exhausted, err = rec.EnumerateParallelStrict(0, cfg.Parallel)
		} else {
			sigs, exhausted, err = rec.EnumerateStrict(0)
		}
		if err != nil {
			return nil, 0, err
		}
		if !exhausted {
			return nil, 0, fmt.Errorf("experiments: CAN enumeration not exhausted")
		}
		return sigs, time.Since(start), nil
	}

	// (a) Whole trace-cycle reconstruction.
	sigs, d, err := solve(candidateSet(0, cfg.M))
	if err != nil {
		return nil, err
	}
	res.WholeOffsets, res.WholeDuration = offsetsOf(sigs), d

	// Replay the reconstructed change instants into the protocol
	// decoder: the analyst recovers the actual frame, not just timing.
	if len(sigs) == 1 {
		var ch []int64
		for _, c := range sigs[0].Changes() {
			ch = append(ch, int64(c))
		}
		decoded := can.DecodeLine(can.LineFromChanges(ch, int64(cfg.M)))
		if len(decoded) == 1 {
			res.DecodedID = decoded[0].Frame.ID
			res.DecodedData = decoded[0].Frame.Data
		}
	}

	// (b) Failure-window reconstruction.
	sigs, d, err = solve(candidateSet(cfg.WindowLo, cfg.M))
	if err != nil {
		return nil, err
	}
	res.WindowOffsets, res.WindowDuration = offsetsOf(sigs), d

	// (c) Deadline proof: "the transmission completed before the
	// deadline within the window" — offsets whose frame ends by the
	// deadline. Unsat settles liability.
	start := time.Now()
	prop := candidateSet(cfg.WindowLo, cfg.DeadlineCycle)
	rec, err := reconstruct.New(enc, entry, []reconstruct.Constraint{prop}, reconstruct.Options{Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	if cfg.Parallel > 1 {
		_, st, err := rec.FirstParallel(cfg.Parallel)
		if err != nil {
			return nil, err
		}
		res.DeadlineStatus = st
	} else {
		res.DeadlineStatus = rec.Check()
	}
	res.DeadlineDuration = time.Since(start)
	return res, nil
}
