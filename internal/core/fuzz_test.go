package core

import (
	"bytes"
	"testing"

	"repro/internal/encoding"
)

// FuzzReadLog ensures arbitrary bytes never panic the wire-format
// reader and that valid documents round-trip.
func FuzzReadLog(f *testing.F) {
	enc, err := encoding.Incremental(16, 8, 4)
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	entries := []LogEntry{
		Log(enc, SignalFromChanges(16, 1, 2)),
		Log(enc, SignalFromChanges(16, 5)),
	}
	if err := WriteLog(&seed, 16, 8, entries); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x52, 0x50, 0x54}) // magic only

	// Seeds from the corruption-test corpus (wire_strict_test.go): the
	// k = m boundary that needs the extra counter bit, a nonzero pad
	// bit in the final payload byte, and trailing framing garbage.
	var boundary bytes.Buffer
	if err := WriteLog(&boundary, 16, 8, []LogEntry{
		{TP: entries[0].TP.Clone(), K: 16}, // k = m
		{TP: entries[1].TP.Clone(), K: 0},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(boundary.Bytes())
	padFlip := append([]byte(nil), seed.Bytes()...)
	padFlip[len(padFlip)-1] ^= 0x80
	f.Add(padFlip)
	f.Add(append(append([]byte(nil), seed.Bytes()...), 0xde, 0xad, 0xbe))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, b, got, err := ReadLog(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must re-serialize and re-parse identically.
		var buf bytes.Buffer
		if err := WriteLog(&buf, m, b, got); err != nil {
			t.Fatalf("accepted log does not re-serialize: %v", err)
		}
		m2, b2, got2, err := ReadLog(&buf)
		if err != nil || m2 != m || b2 != b || len(got2) != len(got) {
			t.Fatalf("round trip failed: %v", err)
		}
		for i := range got {
			if !got[i].Equal(got2[i]) {
				t.Fatal("round trip entry mismatch")
			}
		}
	})
}
