package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/bitvec"
)

// The wire format of a timeprint log is what the on-chip logger streams
// off-chip (in the paper: over a simplified USB-UART link): a small
// header identifying (m, b), then exactly b + KBits(m) bits per
// trace-cycle — TP first (LSB to MSB), then k — packed back-to-back
// with no per-entry padding. This constant-rate format is the point of
// the method: its size never depends on signal activity.
//
// Framing is strict in both directions: the final payload byte is
// zero-padded to a byte boundary by WriteLog, and ReadLog rejects a
// log whose pad bits are nonzero or that carries any bytes after the
// last entry (both ErrCorrupt). A log is therefore a self-delimiting
// unit — corruption anywhere in the stream, including the pad region
// that carries no payload, is detected rather than silently ignored,
// which is what the diffcheck corruption-localization guarantees rely
// on.

const wireMagic = 0x54505231 // "TPR1"

// WriteLog serializes entries produced under trace-cycle length m and
// timeprint width b.
func WriteLog(w io.Writer, m, b int, entries []LogEntry) error {
	cw := &countingWriter{w: w}
	serialized := 0
	// The observer sees only what actually happened: cw.n is bytes that
	// reached the underlying writer (a failed or early-returning write
	// flushes nothing extra), and serialized counts entries that passed
	// validation and were packed — not the caller's slice length, which
	// over-reports when an entry is rejected with ErrWidth/ErrKRange.
	defer func() {
		r := Observer()
		r.Counter(MetricWireBytesOut).Add(cw.n)
		r.Counter(MetricWireEntriesOut).Add(int64(serialized))
	}()
	bw := bufio.NewWriter(cw)
	head := []any{uint32(wireMagic), uint32(m), uint32(b), uint32(len(entries))}
	for _, h := range head {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	bs := newBitWriter(bw)
	kb := KBits(m)
	for i, e := range entries {
		if e.TP.Width() != b {
			return fmt.Errorf("core: entry %d timeprint width %d, want %d: %w", i, e.TP.Width(), b, ErrWidth)
		}
		if e.K < 0 || e.K > m {
			return fmt.Errorf("core: entry %d change count %d outside [0,%d]: %w", i, e.K, m, ErrKRange)
		}
		for j := 0; j < b; j++ {
			bs.writeBit(e.TP.Get(j))
		}
		for j := 0; j < kb; j++ {
			bs.writeBit(e.K&(1<<uint(j)) != 0)
		}
		serialized++
	}
	if err := bs.flush(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadLog deserializes a timeprint log, returning (m, b, entries).
func ReadLog(r io.Reader) (m, b int, entries []LogEntry, err error) {
	cr := &countingReader{r: r}
	defer func() { Observer().Counter(MetricWireBytesIn).Add(cr.n) }()
	br := bufio.NewReader(cr)
	var magic, um, ub, n uint32
	for _, p := range []*uint32{&magic, &um, &ub, &n} {
		if err = binary.Read(br, binary.LittleEndian, p); err != nil {
			return 0, 0, nil, fmt.Errorf("core: truncated log header: %w (%w)", err, ErrCorrupt)
		}
	}
	if magic != wireMagic {
		return 0, 0, nil, fmt.Errorf("core: bad log magic %#x: %w", magic, ErrCorrupt)
	}
	m, b = int(um), int(ub)
	if m <= 0 || b <= 0 || m > 1<<24 || b > 1<<20 {
		return 0, 0, nil, fmt.Errorf("core: implausible log header m=%d b=%d: %w", m, b, ErrCorrupt)
	}
	if n > 1<<28 {
		return 0, 0, nil, fmt.Errorf("core: implausible entry count %d: %w", n, ErrCorrupt)
	}
	bs := newBitReader(br)
	kb := KBits(m)
	// Entries are appended one by one — never preallocated from the
	// untrusted header count — so truncated or hostile input fails
	// after at most one entry's worth of allocation.
	entries = make([]LogEntry, 0, min(int(n), 4096))
	for i := 0; i < int(n); i++ {
		tp := bitvec.New(b)
		for j := 0; j < b; j++ {
			bit, err := bs.readBit()
			if err != nil {
				return 0, 0, nil, fmt.Errorf("core: truncated log at entry %d: %w (%w)", i, err, ErrCorrupt)
			}
			if bit {
				tp.Set(j, true)
			}
		}
		k := 0
		for j := 0; j < kb; j++ {
			bit, err := bs.readBit()
			if err != nil {
				return 0, 0, nil, fmt.Errorf("core: truncated log at entry %d: %w (%w)", i, err, ErrCorrupt)
			}
			if bit {
				k |= 1 << uint(j)
			}
		}
		if k > m {
			return 0, 0, nil, fmt.Errorf("core: entry %d decodes k=%d > m=%d: %w (%w)", i, k, m, ErrKRange, ErrCorrupt)
		}
		entries = append(entries, LogEntry{TP: tp, K: k})
	}
	// Strict framing (see the package comment): the writer zero-pads the
	// final payload byte, so any set bit in the pad region is corruption
	// — without this check a flipped pad bit would be the one undetectable
	// corruption in the whole stream.
	if pad := bs.padBits(); pad != 0 {
		return 0, 0, nil, fmt.Errorf("core: nonzero pad bits %#x in final payload byte: %w", pad, ErrCorrupt)
	}
	// A log is self-delimiting: exactly the header plus PayloadBits of
	// payload. Anything after the last entry is garbage (a truncated
	// second header, duplicated tail, line noise) and is rejected rather
	// than silently ignored, with the byte count for localization.
	if trailing, _ := io.Copy(io.Discard, br); trailing > 0 {
		return 0, 0, nil, fmt.Errorf("core: %d trailing byte(s) after the final entry: %w", trailing, ErrCorrupt)
	}
	return m, b, entries, nil
}

// PayloadBits returns the exact number of payload bits n entries
// occupy on the wire (header excluded).
func PayloadBits(m, b, n int) int { return n * BitsPerTraceCycle(b, m) }

// PeekLogHeader validates the 16-byte wire-log header at the front of
// p and returns its (m, b, n) fields without decoding any entries —
// the cheap classification the log store and listing endpoints use.
// The same plausibility bounds as ReadLog apply; failures wrap
// ErrCorrupt.
func PeekLogHeader(p []byte) (m, b, n int, err error) {
	if len(p) < 16 {
		return 0, 0, 0, fmt.Errorf("core: %d byte(s) is too short for a log header: %w", len(p), ErrCorrupt)
	}
	if magic := binary.LittleEndian.Uint32(p[0:]); magic != wireMagic {
		return 0, 0, 0, fmt.Errorf("core: bad log magic %#x: %w", magic, ErrCorrupt)
	}
	m = int(binary.LittleEndian.Uint32(p[4:]))
	b = int(binary.LittleEndian.Uint32(p[8:]))
	un := binary.LittleEndian.Uint32(p[12:])
	if m <= 0 || b <= 0 || m > 1<<24 || b > 1<<20 {
		return 0, 0, 0, fmt.Errorf("core: implausible log header m=%d b=%d: %w", m, b, ErrCorrupt)
	}
	if un > 1<<28 {
		return 0, 0, 0, fmt.Errorf("core: implausible entry count %d: %w", un, ErrCorrupt)
	}
	return m, b, int(un), nil
}

// IsWireLog reports whether p starts with a plausible wire-log header.
// It does NOT validate the payload — use ReadLog for that; this is the
// shallow shape check storage layers apply before accepting a body.
func IsWireLog(p []byte) bool {
	_, _, _, err := PeekLogHeader(p)
	return err == nil
}

type bitWriter struct {
	w   io.ByteWriter
	cur byte
	n   uint
}

func newBitWriter(w io.ByteWriter) *bitWriter { return &bitWriter{w: w} }

func (b *bitWriter) writeBit(v bool) {
	if v {
		b.cur |= 1 << b.n
	}
	b.n++
	if b.n == 8 {
		// Errors surface at flush; bufio.Writer retains the first error.
		_ = b.w.WriteByte(b.cur)
		b.cur, b.n = 0, 0
	}
}

func (b *bitWriter) flush() error {
	if b.n > 0 {
		if err := b.w.WriteByte(b.cur); err != nil {
			return err
		}
		b.cur, b.n = 0, 0
	}
	return nil
}

type bitReader struct {
	r   io.ByteReader
	cur byte
	n   uint
}

func newBitReader(r io.ByteReader) *bitReader { return &bitReader{r: r} }

func (b *bitReader) readBit() (bool, error) {
	if b.n == 0 {
		c, err := b.r.ReadByte()
		if err != nil {
			return false, err
		}
		b.cur, b.n = c, 8
	}
	v := b.cur&1 != 0
	b.cur >>= 1
	b.n--
	return v, nil
}

// padBits returns the still-unread bits of the current byte — after the
// last entry these are exactly the writer's pad bits, already shifted
// down to the low b.n positions. Zero means a clean pad (or none).
func (b *bitReader) padBits() byte { return b.cur }
