package core

import (
	"bytes"
	"testing"

	"repro/internal/encoding"
	"repro/internal/obs"
)

func TestCoreObserverCounters(t *testing.T) {
	reg := obs.NewRegistry()
	SetObserver(reg)
	defer SetObserver(nil)

	enc, err := encoding.Incremental(8, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	lg := NewLogger(enc)
	lvl := false
	for i := 0; i < 3*8; i++ {
		if i%3 == 0 {
			lvl = !lvl
		}
		lg.TickValue(lvl)
	}
	if got := reg.Snapshot().Counters[MetricEntriesLogged]; got != 3 {
		t.Fatalf("%s = %d, want 3", MetricEntriesLogged, got)
	}

	var buf bytes.Buffer
	if err := WriteLog(&buf, enc.M(), enc.B(), lg.Entries()); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricWireBytesOut]; got != int64(buf.Len()) {
		t.Errorf("%s = %d, want %d", MetricWireBytesOut, got, buf.Len())
	}
	if got := snap.Counters[MetricWireEntriesOut]; got != 3 {
		t.Errorf("%s = %d, want 3", MetricWireEntriesOut, got)
	}

	if _, _, _, err := ReadLog(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters[MetricWireBytesIn]; got != int64(buf.Len()) {
		t.Errorf("%s = %d, want %d", MetricWireBytesIn, got, buf.Len())
	}
}

// TestCoreObserverDetached checks the default (nil observer) path stays
// silent and does not panic anywhere.
func TestCoreObserverDetached(t *testing.T) {
	SetObserver(nil)
	enc, err := encoding.Incremental(8, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	lg := NewLogger(enc)
	for i := 0; i < 8; i++ {
		lg.TickChange(i == 2)
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, enc.M(), enc.B(), lg.Entries()); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadLog(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
}
