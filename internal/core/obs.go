package core

import (
	"io"
	"sync/atomic"

	"repro/internal/obs"
)

// Metric names published by the core layer.
const (
	// MetricEntriesLogged counts trace-cycle entries closed by streaming
	// Loggers (one per completed trace-cycle).
	MetricEntriesLogged = "core.log.entries"
	// MetricWireBytesOut / MetricWireBytesIn count wire-format bytes
	// serialized by WriteLog and consumed by ReadLog.
	MetricWireBytesOut = "core.wire.bytes_out"
	MetricWireBytesIn  = "core.wire.bytes_in"
	// MetricWireEntriesOut counts entries serialized by WriteLog.
	MetricWireEntriesOut = "core.wire.entries_out"
	// MetricWireFramesStored / MetricWireBytesStored count wire-log
	// frames (and their body bytes) handed to a durable store — credited
	// by internal/logstore so the core observer carries the full
	// serialize → transmit → persist pipeline.
	MetricWireFramesStored = "core.wire.frames_stored"
	MetricWireBytesStored  = "core.wire.bytes_stored"
)

// observer is the package-level registry for the core layer's free
// functions (WriteLog/ReadLog have no receiver to hang a registry on).
// It defaults to nil — all instruments no-op — and is swapped
// atomically so observed and unobserved code paths can coexist.
var observer atomic.Pointer[obs.Registry]

// SetObserver routes the core layer's metrics into r (nil detaches).
func SetObserver(r *obs.Registry) { observer.Store(r) }

// Observer returns the currently attached registry (possibly nil; all
// obs instruments tolerate that).
func Observer() *obs.Registry { return observer.Load() }

// countingWriter counts bytes passed through to the underlying writer.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader counts bytes consumed from the underlying reader.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
