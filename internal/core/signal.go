// Package core implements the timeprint logging procedure — the paper's
// primary contribution.
//
// Tracing is split into back-to-back trace-cycles of m clock-cycles. A
// signal (in the paper's formal sense) is the change-map of one
// trace-cycle: S(i) = 1 iff the traced wire changed value in
// clock-cycle i. The logging procedure α̃ abstracts a signal to a log
// entry (TP, k), where TP is the XOR-aggregate of the encoded
// timestamps of the change cycles and k the change count. The package
// also provides the exhaustive concretization γ̃ used to validate the
// Galois-insertion soundness lemma, a streaming Logger that models the
// on-chip aggregation hardware cycle by cycle, and the bit-exact wire
// format of a timeprint log (b + ⌈log2(m+1)⌉ bits per trace-cycle).
package core

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/encoding"
)

// Signal is a trace-cycle change-map: bit i is set iff the traced wire
// changed value in clock-cycle i of the trace-cycle. It corresponds to
// the paper's S : [1..m] → {0,1} (0-based here).
type Signal struct {
	bits bitvec.Vector
}

// NewSignal returns the all-quiet signal of a length-m trace-cycle.
func NewSignal(m int) Signal { return Signal{bits: bitvec.New(m)} }

// SignalFromChanges returns the signal with changes at the given
// clock-cycles.
func SignalFromChanges(m int, changes ...int) Signal {
	return Signal{bits: bitvec.FromOnes(m, changes...)}
}

// SignalFromVector wraps an existing change-map vector.
func SignalFromVector(v bitvec.Vector) Signal { return Signal{bits: v.Clone()} }

// M returns the trace-cycle length.
func (s Signal) M() int { return s.bits.Width() }

// Changed reports whether the signal changed in clock-cycle i.
func (s Signal) Changed(i int) bool { return s.bits.Get(i) }

// Changes returns the change clock-cycles in increasing order.
func (s Signal) Changes() []int { return s.bits.Ones() }

// K returns the number of changes.
func (s Signal) K() int { return s.bits.PopCount() }

// Vector returns a copy of the underlying change-map.
func (s Signal) Vector() bitvec.Vector { return s.bits.Clone() }

// Equal reports whether two signals have identical change-maps.
func (s Signal) Equal(o Signal) bool { return s.bits.Equal(o.bits) }

// String renders the change-map LSB-first (clock-cycle 0 leftmost), the
// reading order of the paper's Figure 4.
func (s Signal) String() string { return s.bits.LSBString() }

// LogEntry is the paper's (TP, k) pair: the logged abstraction of one
// trace-cycle.
type LogEntry struct {
	// TP is the timeprint: the XOR-sum of the timestamps of all change
	// cycles (width b).
	TP bitvec.Vector
	// K is the exact number of changes in the trace-cycle.
	K int
}

// Equal reports whether two log entries match.
func (e LogEntry) Equal(o LogEntry) bool { return e.K == o.K && e.TP.Equal(o.TP) }

func (e LogEntry) String() string {
	return fmt.Sprintf("(TP=%s, k=%d)", e.TP.String(), e.K)
}

// Log implements the logging procedure α̃: it abstracts a signal to its
// log entry under the given encoding. The signal length must equal the
// encoding's m.
func Log(enc *encoding.Encoding, s Signal) LogEntry {
	if s.M() != enc.M() {
		panic(fmt.Sprintf("core: signal length %d != encoding m %d", s.M(), enc.M()))
	}
	tp := bitvec.New(enc.B())
	for _, i := range s.Changes() {
		tp.XorInPlace(enc.Timestamp(i))
	}
	return LogEntry{TP: tp, K: s.K()}
}

// KBits returns the number of bits needed to log the change counter of
// an m-cycle trace-cycle: ⌈log2(m+1)⌉, since k ranges over 0..m. (The
// paper rounds this to log2(m); for its m = 1000 both give 10 bits.)
func KBits(m int) int { return bits.Len(uint(m)) }

// BitsPerTraceCycle returns the constant number of bits logged per
// trace-cycle: b for the timeprint plus KBits(m) for the counter.
func BitsPerTraceCycle(b, m int) int { return b + KBits(m) }

// LogRate returns the logging bit-rate in bits/second for a signal
// clocked at clockHz: (b + ⌈log2(m+1)⌉) / m · clockHz. This is the
// paper's Section 5.1.1 rate R.
func LogRate(b, m int, clockHz float64) float64 {
	return float64(BitsPerTraceCycle(b, m)) / float64(m) * clockHz
}

// Abstract is the lifted abstraction α: it maps a set of signals to the
// set of their log entries (duplicates collapse).
func Abstract(enc *encoding.Encoding, signals []Signal) []LogEntry {
	seen := map[string]bool{}
	var out []LogEntry
	for _, s := range signals {
		e := Log(enc, s)
		key := fmt.Sprintf("%s|%d", e.TP.Key(), e.K)
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	return out
}

// Concretize is the exhaustive concretization γ̃: all signals whose
// abstraction equals the entry. It enumerates all 2^m signals and is
// intended for validating the Galois insertion on small m (it panics
// for m > 24). Production reconstruction goes through the reconstruct
// package instead.
func Concretize(enc *encoding.Encoding, e LogEntry) []Signal {
	m := enc.M()
	if m > 24 {
		panic(fmt.Sprintf("core: exhaustive concretization over 2^%d signals refused", m))
	}
	ts := enc.Timestamps()
	var out []Signal
	for mask := uint64(0); mask < 1<<uint(m); mask++ {
		if bits.OnesCount64(mask) != e.K {
			continue
		}
		tp := bitvec.New(enc.B())
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				tp.XorInPlace(ts[i])
			}
		}
		if tp.Equal(e.TP) {
			out = append(out, SignalFromVector(bitvec.FromUint(mask, m)))
		}
	}
	return out
}
