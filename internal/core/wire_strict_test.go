package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/obs"
)

// The k = m boundary at a power-of-two m needs the extra counter bit:
// KBits(8) = bits.Len(8) = 4, not ceil(log2(8)) = 3. A 3-bit counter
// would alias k=8 to k=0 on the wire — the exact regression this pins.
func TestWireRoundTripKEqualsMBoundary(t *testing.T) {
	for _, m := range []int{2, 4, 8, 16, 64} {
		b := 5
		tp := bitvec.FromUint(0b10110&((1<<5)-1), b)
		entries := []LogEntry{
			{TP: tp.Clone(), K: m},     // every cycle changed
			{TP: bitvec.New(b), K: 0},  // all quiet
			{TP: tp.Clone(), K: m / 2}, // interior value
		}
		var buf bytes.Buffer
		if err := WriteLog(&buf, m, b, entries); err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		gm, gb, got, err := ReadLog(&buf)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if gm != m || gb != b || len(got) != len(entries) {
			t.Fatalf("m=%d: header (%d, %d, %d)", m, gm, gb, len(got))
		}
		for i, e := range got {
			if !e.Equal(entries[i]) {
				t.Fatalf("m=%d entry %d: %v != %v (k=m aliased?)", m, i, e, entries[i])
			}
		}
	}
}

// A bit flipped in the zero pad of the final payload byte must be
// detected: before the strict pad rule this was the one corruption the
// wire format silently accepted, weakening diffcheck's
// corruption-localization guarantee.
func TestWireRejectsNonzeroPadBits(t *testing.T) {
	// m=8 (KBits 4), b=5: one entry is 9 payload bits, so the second
	// payload byte holds 1 valid bit and 7 pad bits.
	const m, b = 8, 5
	entries := []LogEntry{{TP: bitvec.FromUint(0b10101, b), K: 3}}
	var buf bytes.Buffer
	if err := WriteLog(&buf, m, b, entries); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, _, _, err := ReadLog(bytes.NewReader(raw)); err != nil {
		t.Fatalf("clean log rejected: %v", err)
	}
	for bit := 1; bit < 8; bit++ { // every pad position of the last byte
		rot := append([]byte(nil), raw...)
		rot[len(rot)-1] ^= 1 << bit
		_, _, _, err := ReadLog(bytes.NewReader(rot))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("pad bit %d flip: err = %v, want ErrCorrupt", bit, err)
		}
		if !strings.Contains(err.Error(), "pad") {
			t.Fatalf("pad bit %d flip: error %q does not name the pad", bit, err)
		}
	}
}

// Bytes after the final entry are framing garbage; ReadLog must reject
// them and report how many there were.
func TestWireRejectsTrailingGarbage(t *testing.T) {
	const m, b = 16, 8
	entries := []LogEntry{{TP: bitvec.FromUint(0xA5, b), K: 2}}
	var buf bytes.Buffer
	if err := WriteLog(&buf, m, b, entries); err != nil {
		t.Fatal(err)
	}
	buf.Write([]byte{0xde, 0xad, 0xbe})
	_, _, _, err := ReadLog(&buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "3 trailing") {
		t.Fatalf("error %q does not report the trailing-byte count", err)
	}
}

// The entries-out counter must reflect entries actually serialized:
// a write rejected at entry i counts i, not len(entries).
func TestWriteLogCountsOnlySerializedEntries(t *testing.T) {
	reg := obs.NewRegistry()
	SetObserver(reg)
	defer SetObserver(nil)
	entries := []LogEntry{
		{TP: bitvec.New(8), K: 1},
		{TP: bitvec.New(8), K: 2},
		{TP: bitvec.New(9), K: 0}, // wrong width: rejected here
		{TP: bitvec.New(8), K: 3},
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, 16, 8, entries); !errors.Is(err, ErrWidth) {
		t.Fatalf("err = %v, want ErrWidth", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricWireEntriesOut]; got != 2 {
		t.Fatalf("%s = %d after failed write, want 2 (serialized prefix only)", MetricWireEntriesOut, got)
	}
	// The buffered writer never flushed, so no payload bytes reached
	// the sink either; the byte counter must agree with reality.
	if got := snap.Counters[MetricWireBytesOut]; got != int64(buf.Len()) {
		t.Fatalf("%s = %d, want %d actually flushed", MetricWireBytesOut, got, buf.Len())
	}
}
