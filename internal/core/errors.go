package core

import "errors"

// Typed sentinel errors for log-entry validation, shared by every layer
// that checks entries on the way in or out: the wire codec here, the
// trace store, and both reconstruction oracles (decode and
// reconstruct). Layers wrap these with %w plus their own context, so a
// caller can classify a rejection with errors.Is regardless of which
// layer refused the entry — the contract the fault-injection harness
// (internal/diffcheck) asserts: corrupted input is rejected with a
// typed error, never a panic, never a silently wrong signal.
var (
	// ErrWidth reports a timeprint whose bit width does not match the
	// encoding or store geometry it is used with.
	ErrWidth = errors.New("timeprint width mismatch")
	// ErrKRange reports a change count outside its valid range.
	ErrKRange = errors.New("change count out of range")
	// ErrCorrupt reports a structurally invalid serialized log
	// (bad magic, implausible header, truncation, undecodable entry).
	ErrCorrupt = errors.New("corrupt timeprint log")
)
