package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/encoding"
)

// Logger is the streaming model of the timeprints aggregation-and-
// logging hardware: it consumes one clock-cycle at a time, XORs the
// current cycle's timestamp into the hold register whenever the traced
// signal changes, and emits a LogEntry at each trace-cycle boundary.
// The hardware-level (RTL) twin of this model lives in internal/hw;
// the two are cross-checked in tests.
type Logger struct {
	enc   *encoding.Encoding
	tp    bitvec.Vector
	k     int
	cycle int  // position within the current trace-cycle
	prev  bool // last observed wire value, for edge detection
	first bool // true until the first sample establishes prev
	total int64

	entries []LogEntry
}

// NewLogger returns a streaming logger over the encoding.
func NewLogger(enc *encoding.Encoding) *Logger {
	return &Logger{enc: enc, tp: bitvec.New(enc.B()), first: true}
}

// TickChange advances one clock-cycle with an explicit change flag:
// changed=true means the traced signal's value changed in this cycle.
// It returns the completed entry and true when this tick closed a
// trace-cycle.
func (l *Logger) TickChange(changed bool) (LogEntry, bool) {
	if changed {
		l.tp.XorInPlace(l.enc.Timestamp(l.cycle))
		l.k++
	}
	l.cycle++
	l.total++
	if l.cycle == l.enc.M() {
		e := LogEntry{TP: l.tp.Clone(), K: l.k}
		l.entries = append(l.entries, e)
		Observer().Counter(MetricEntriesLogged).Inc()
		l.tp = bitvec.New(l.enc.B())
		l.k = 0
		l.cycle = 0
		return e, true
	}
	return LogEntry{}, false
}

// TickValue advances one clock-cycle with the sampled wire value; the
// logger performs the edge detection itself. The very first sample
// establishes the reference level and never counts as a change.
func (l *Logger) TickValue(v bool) (LogEntry, bool) {
	changed := false
	if l.first {
		l.first = false
	} else {
		changed = v != l.prev
	}
	l.prev = v
	return l.TickChange(changed)
}

// Entries returns all completed trace-cycle entries so far.
func (l *Logger) Entries() []LogEntry {
	out := make([]LogEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Cycles returns the total number of clock-cycles consumed.
func (l *Logger) Cycles() int64 { return l.total }

// Pending reports how many cycles of the current (incomplete)
// trace-cycle have elapsed.
func (l *Logger) Pending() int { return l.cycle }

// Flush closes the current trace-cycle early by padding it with quiet
// cycles, if any cycles are pending. It returns the flushed entry and
// whether one was produced. Real hardware never flushes — trace-cycles
// are back-to-back — but simulations that end mid-cycle use it.
func (l *Logger) Flush() (LogEntry, bool) {
	if l.cycle == 0 {
		return LogEntry{}, false
	}
	for {
		if e, done := l.TickChange(false); done {
			return e, true
		}
	}
}

// LogSignalTrace abstracts a full multi-trace-cycle change trace:
// changes lists absolute change cycles (0-based, strictly increasing);
// the trace spans totalCycles clock-cycles, which must be a multiple of
// the encoding's m. One entry per trace-cycle is returned.
func LogSignalTrace(enc *encoding.Encoding, changes []int64, totalCycles int64) ([]LogEntry, error) {
	m := int64(enc.M())
	if totalCycles%m != 0 {
		return nil, fmt.Errorf("core: trace length %d not a multiple of m=%d", totalCycles, m)
	}
	for i := 1; i < len(changes); i++ {
		if changes[i] <= changes[i-1] {
			return nil, fmt.Errorf("core: change cycles not strictly increasing at %d", i)
		}
	}
	n := totalCycles / m
	entries := make([]LogEntry, n)
	for i := range entries {
		entries[i] = LogEntry{TP: bitvec.New(enc.B())}
	}
	for _, c := range changes {
		if c < 0 || c >= totalCycles {
			return nil, fmt.Errorf("core: change cycle %d outside trace [0,%d)", c, totalCycles)
		}
		tc := c / m
		entries[tc].TP.XorInPlace(enc.Timestamp(int(c % m)))
		entries[tc].K++
	}
	return entries, nil
}
