package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/encoding"
)

// figure4Encoding returns the 16 8-bit timestamps from the paper's
// Figure 4, indexed TS(1)..TS(16) there, 0..15 here.
func figure4Encoding(t testing.TB) *encoding.Encoding {
	t.Helper()
	raw := []string{
		"00010100", "00111010", "00001111", "01000100",
		"00000010", "10101110", "01100000", "11110101",
		"00010111", "11100111", "10100000", "10101000",
		"10011110", "10001111", "01110000", "01101100",
	}
	ts := make([]bitvec.Vector, len(raw))
	for i, s := range raw {
		ts[i] = bitvec.MustParse(s)
	}
	e, err := encoding.FromTimestamps(ts, "figure4")
	if err != nil {
		t.Fatalf("figure 4 encoding invalid: %v", err)
	}
	return e
}

func TestFigure4Timeprint(t *testing.T) {
	// The paper aggregates TS(4), TS(5), TS(10), TS(11) — 0-based
	// change cycles 3, 4, 9, 10 — and obtains TP = 00000001.
	enc := figure4Encoding(t)
	s := SignalFromChanges(16, 3, 4, 9, 10)
	e := Log(enc, s)
	if e.K != 4 {
		t.Fatalf("k = %d", e.K)
	}
	if got := e.TP.String(); got != "00000001" {
		t.Fatalf("TP = %s, want 00000001", got)
	}
}

func TestFigure4CandidateCounts(t *testing.T) {
	// Paper: 256 signals aggregate to TP (any k); exactly 8 with k=4.
	enc := figure4Encoding(t)
	target := bitvec.MustParse("00000001")

	total := 0
	withK4 := 0
	for mask := uint64(0); mask < 1<<16; mask++ {
		s := SignalFromVector(bitvec.FromUint(mask, 16))
		e := Log(enc, s)
		if e.TP.Equal(target) {
			total++
			if e.K == 4 {
				withK4++
			}
		}
	}
	if total != 256 {
		t.Errorf("signals reaching TP: %d, paper says 256", total)
	}
	if withK4 != 8 {
		t.Errorf("signals with k=4 reaching TP: %d, paper says 8", withK4)
	}

	// Concretize must return exactly those 8.
	got := Concretize(enc, LogEntry{TP: target, K: 4})
	if len(got) != 8 {
		t.Errorf("Concretize: %d signals", len(got))
	}
	// The paper's actual signal and its TS(1)+TS(5)+TS(9) alternative
	// (0-based 0, 4, 8 — with k=3) are both reported; the k=3 one must
	// NOT appear under k=4.
	actual := SignalFromChanges(16, 3, 4, 9, 10)
	found := false
	for _, s := range got {
		if s.Equal(actual) {
			found = true
		}
		if s.K() != 4 {
			t.Errorf("concretized signal has k=%d", s.K())
		}
	}
	if !found {
		t.Error("actual signal not among the 8 candidates")
	}
	// TS(1) ^ TS(5) ^ TS(9) = TP too (the paper's k=3 example).
	alt := Log(enc, SignalFromChanges(16, 0, 4, 8))
	if !alt.TP.Equal(target) || alt.K != 3 {
		t.Errorf("paper's k=3 example: %v", alt)
	}
}

func TestGaloisInsertion(t *testing.T) {
	// Lemma 1: F ⊆ γ(α(F)) and V = α(γ(V)) for every V in the image.
	enc, err := encoding.Incremental(10, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	var f []Signal
	for i := 0; i < 20; i++ {
		f = append(f, SignalFromVector(bitvec.FromUint(r.Uint64()&1023, 10)))
	}
	// α(F)
	abs := Abstract(enc, f)
	// γ(α(F)) via exhaustive concretization.
	conc := map[string]bool{}
	for _, e := range abs {
		for _, s := range Concretize(enc, e) {
			conc[s.Vector().Key()] = true
		}
	}
	for _, s := range f {
		if !conc[s.Vector().Key()] {
			t.Fatal("F not contained in γ(α(F))")
		}
	}
	// α(γ(V)) = V: abstracting every concretized signal of an entry
	// yields exactly that entry.
	for _, e := range abs {
		for _, s := range Concretize(enc, e) {
			if got := Log(enc, s); !got.Equal(e) {
				t.Fatalf("α(γ(V)) produced %v from %v", got, e)
			}
		}
	}
}

func TestLoggerMatchesBatchLog(t *testing.T) {
	enc, err := encoding.Incremental(16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	lg := NewLogger(enc)
	var want []LogEntry
	for tc := 0; tc < 25; tc++ {
		s := SignalFromVector(func() bitvec.Vector {
			v := bitvec.New(16)
			for i := 0; i < 16; i++ {
				if r.Intn(4) == 0 {
					v.Set(i, true)
				}
			}
			return v
		}())
		want = append(want, Log(enc, s))
		for i := 0; i < 16; i++ {
			e, done := lg.TickChange(s.Changed(i))
			if done != (i == 15) {
				t.Fatalf("trace-cycle boundary at wrong tick %d", i)
			}
			if done && !e.Equal(want[tc]) {
				t.Fatalf("streamed entry %v != batch %v", e, want[tc])
			}
		}
	}
	got := lg.Entries()
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if lg.Cycles() != 25*16 {
		t.Errorf("cycles %d", lg.Cycles())
	}
}

func TestLoggerEdgeDetection(t *testing.T) {
	enc, _ := encoding.Incremental(8, 6, 4)
	lg := NewLogger(enc)
	// Wire: 0 0 1 1 0 0 0 1  -> changes at cycles 2, 4, 7.
	vals := []bool{false, false, true, true, false, false, false, true}
	var entry LogEntry
	for _, v := range vals {
		if e, done := lg.TickValue(v); done {
			entry = e
		}
	}
	want := Log(enc, SignalFromChanges(8, 2, 4, 7))
	if !entry.Equal(want) {
		t.Fatalf("edge detection: %v want %v", entry, want)
	}
}

func TestLoggerFirstSampleNotAChange(t *testing.T) {
	enc, _ := encoding.Incremental(8, 6, 4)
	lg := NewLogger(enc)
	// Wire starts high; first sample must not count as a change.
	var entry LogEntry
	for i := 0; i < 8; i++ {
		if e, done := lg.TickValue(true); done {
			entry = e
		}
	}
	if entry.K != 0 {
		t.Fatalf("first sample counted as change: k=%d", entry.K)
	}
}

func TestLoggerFlush(t *testing.T) {
	enc, _ := encoding.Incremental(8, 6, 4)
	lg := NewLogger(enc)
	lg.TickChange(true) // one change at cycle 0, trace-cycle incomplete
	e, ok := lg.Flush()
	if !ok || e.K != 1 {
		t.Fatalf("flush: %v %v", e, ok)
	}
	want := Log(enc, SignalFromChanges(8, 0))
	if !e.Equal(want) {
		t.Fatalf("flushed %v want %v", e, want)
	}
	if _, ok := lg.Flush(); ok {
		t.Error("flush on trace-cycle boundary should produce nothing")
	}
}

func TestLogSignalTrace(t *testing.T) {
	enc, _ := encoding.Incremental(16, 8, 4)
	entries, err := LogSignalTrace(enc, []int64{3, 4, 19, 47}, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("%d entries", len(entries))
	}
	if !entries[0].Equal(Log(enc, SignalFromChanges(16, 3, 4))) {
		t.Error("entry 0")
	}
	if !entries[1].Equal(Log(enc, SignalFromChanges(16, 3))) {
		t.Error("entry 1")
	}
	if !entries[2].Equal(Log(enc, SignalFromChanges(16, 15))) {
		t.Error("entry 2")
	}
}

func TestLogSignalTraceErrors(t *testing.T) {
	enc, _ := encoding.Incremental(16, 8, 4)
	if _, err := LogSignalTrace(enc, nil, 17); err == nil {
		t.Error("non-multiple length accepted")
	}
	if _, err := LogSignalTrace(enc, []int64{5, 5}, 32); err == nil {
		t.Error("non-increasing changes accepted")
	}
	if _, err := LogSignalTrace(enc, []int64{40}, 32); err == nil {
		t.Error("out-of-range change accepted")
	}
}

func TestLogRateMatchesPaperCAN(t *testing.T) {
	// Section 5.2.1: m=1000, b=24 at 5 Mbps -> 5 entries/s of 34 bits =
	// 170 bps.
	if KBits(1000) != 10 {
		t.Fatalf("KBits(1000) = %d", KBits(1000))
	}
	if BitsPerTraceCycle(24, 1000) != 34 {
		t.Fatalf("bits per trace-cycle %d", BitsPerTraceCycle(24, 1000))
	}
	if got := LogRate(24, 1000, 5e6); got != 170000 {
		t.Fatalf("log rate %f", got)
	}
}

func TestWireRoundTrip(t *testing.T) {
	enc, _ := encoding.Incremental(16, 8, 4)
	r := rand.New(rand.NewSource(21))
	var entries []LogEntry
	for i := 0; i < 40; i++ {
		s := SignalFromVector(bitvec.FromUint(r.Uint64()&0xFFFF, 16))
		entries = append(entries, Log(enc, s))
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, 16, 8, entries); err != nil {
		t.Fatal(err)
	}
	// Size check: header 16 bytes + ceil(40*(8+5)/8) payload bytes.
	wantPayload := (PayloadBits(16, 8, 40) + 7) / 8
	if buf.Len() != 16+wantPayload {
		t.Errorf("wire size %d, want %d", buf.Len(), 16+wantPayload)
	}
	m, b, got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != 16 || b != 8 || len(got) != len(entries) {
		t.Fatalf("header m=%d b=%d n=%d", m, b, len(got))
	}
	for i := range got {
		if !got[i].Equal(entries[i]) {
			t.Fatalf("entry %d: %v != %v", i, got[i], entries[i])
		}
	}
}

func TestWireRejectsBadInput(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLog(&buf, 16, 8, []LogEntry{{TP: bitvec.New(9), K: 0}}); err == nil {
		t.Error("wrong TP width accepted")
	}
	buf.Reset()
	if err := WriteLog(&buf, 16, 8, []LogEntry{{TP: bitvec.New(8), K: 17}}); err == nil {
		t.Error("k > m accepted")
	}
	if _, _, _, err := ReadLog(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated header accepted")
	}
	bad := bytes.NewBuffer(nil)
	_ = WriteLog(bad, 16, 8, nil)
	raw := bad.Bytes()
	raw[0] ^= 0xFF // corrupt magic
	if _, _, _, err := ReadLog(bytes.NewReader(raw)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestWireTruncatedPayload(t *testing.T) {
	enc, _ := encoding.Incremental(16, 8, 4)
	entries := []LogEntry{Log(enc, SignalFromChanges(16, 1)), Log(enc, SignalFromChanges(16, 2))}
	var buf bytes.Buffer
	if err := WriteLog(&buf, 16, 8, entries); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, _, _, err := ReadLog(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestQuickLogLinear(t *testing.T) {
	// Property: TP(s1 ^ s2) = TP(s1) ^ TP(s2) — logging is linear over
	// F2 (k is not, which is exactly why k is logged separately).
	enc, err := encoding.Incremental(12, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint16) bool {
		va := bitvec.FromUint(uint64(a)&0xFFF, 12)
		vb := bitvec.FromUint(uint64(b)&0xFFF, 12)
		ea := Log(enc, SignalFromVector(va))
		eb := Log(enc, SignalFromVector(vb))
		exor := Log(enc, SignalFromVector(va.Xor(vb)))
		return exor.TP.Equal(ea.TP.Xor(eb.TP))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickAbstractionDeterministic(t *testing.T) {
	enc, _ := encoding.Incremental(12, 9, 4)
	f := func(mask uint16) bool {
		s := SignalFromVector(bitvec.FromUint(uint64(mask)&0xFFF, 12))
		e1 := Log(enc, s)
		e2 := Log(enc, s)
		return e1.Equal(e2) && e1.K == s.K()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSignalAccessors(t *testing.T) {
	s := SignalFromChanges(10, 2, 7)
	if s.M() != 10 || s.K() != 2 {
		t.Fatalf("m=%d k=%d", s.M(), s.K())
	}
	if !s.Changed(2) || s.Changed(3) {
		t.Error("Changed wrong")
	}
	if got := s.String(); got != "0010000100" {
		t.Errorf("String %q", got)
	}
	if cs := s.Changes(); len(cs) != 2 || cs[0] != 2 || cs[1] != 7 {
		t.Errorf("Changes %v", cs)
	}
	if NewSignal(5).K() != 0 {
		t.Error("NewSignal not quiet")
	}
}

func TestLogPanicsOnLengthMismatch(t *testing.T) {
	enc, _ := encoding.Incremental(8, 6, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Log(enc, NewSignal(9))
}
