// Package bench regenerates the paper's tables and figures. Both the
// tprbench command and the repository's testing.B benchmarks drive
// these runners, so printed tables and benchmark numbers come from one
// code path.
//
// Table 1: reconstruction time against trace-cycle length m and change
// count k, with and without the temporal properties P2 and Dk, plus
// the logging rate R. Table 2: incremental vs random-constrained
// timestamp encodings. Figure 4: the didactic candidate-count
// reduction.
package bench

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/properties"
	"repro/internal/reconstruct"
	"repro/internal/sat"
)

// Paper parameters: Table 1's timestamp widths per m (incremental
// LI-4 encoding; the paper's Tables 1/2 report the same widths).
var PaperB = map[int]int{64: 13, 128: 16, 512: 22, 1024: 24}

// encCache memoizes generated encodings: generation is deterministic
// and, at m = 1024, takes long enough to distort benchmark loops.
var (
	encCacheMu sync.Mutex
	encCache   = map[string]*encoding.Encoding{}
)

// CachedEncoding returns a memoized deterministic encoding.
func CachedEncoding(scheme string, m, b, d int, seed int64) (*encoding.Encoding, error) {
	key := fmt.Sprintf("%s/%d/%d/%d/%d", scheme, m, b, d, seed)
	encCacheMu.Lock()
	defer encCacheMu.Unlock()
	if e, ok := encCache[key]; ok {
		return e, nil
	}
	var e *encoding.Encoding
	var err error
	switch scheme {
	case "incremental":
		e, err = encoding.Incremental(m, b, d)
	case "random":
		e, err = encoding.RandomConstrained(m, b, d, seed, 0)
	default:
		return nil, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	if err != nil {
		return nil, err
	}
	encCache[key] = e
	return e, nil
}

// Dk property parameters used throughout Section 5.1.3.
const (
	DkDeadline = 32
	DkCount    = 3
)

// PlantedSignal returns a deterministic signal with exactly k changes
// that satisfies both P2 (an adjacent change pair exists) and Dk (at
// least DkCount changes before DkDeadline), so that all property-
// constrained queries remain satisfiable, as in the paper's setup.
func PlantedSignal(m, k int) core.Signal {
	if k < 0 || k > m {
		panic(fmt.Sprintf("bench: k=%d out of range for m=%d", k, m))
	}
	changes := make([]int, 0, k)
	// Adjacent pair early (P2), third change before the deadline (Dk).
	seed := []int{5, 6, 20}
	for _, c := range seed {
		if len(changes) < k && c < m {
			changes = append(changes, c)
		}
	}
	// Spread the rest deterministically over the remaining cycles.
	next := 40
	step := (m - 40) / (k + 1)
	if step < 1 {
		step = 1
	}
	used := map[int]bool{5: true, 6: true, 20: true}
	for len(changes) < k {
		for used[next%m] {
			next++
		}
		changes = append(changes, next%m)
		used[next%m] = true
		next += step
	}
	sort.Ints(changes)
	return core.SignalFromChanges(m, changes...)
}

// Query names the Table 1 columns.
type Query struct {
	Name  string
	Props []reconstruct.Constraint
	// Limit is the number of solutions to find (1 or 10).
	Limit int
}

// Queries returns the paper's eight timed columns.
func Queries() []Query {
	p2 := properties.P2{}
	dk := properties.Dk{D: DkDeadline, K: DkCount}
	return []Query{
		{Name: "c-SAT.1", Limit: 1},
		{Name: "c-SAT.10", Limit: 10},
		{Name: "c+P2.1", Props: []reconstruct.Constraint{p2}, Limit: 1},
		{Name: "c+P2.10", Props: []reconstruct.Constraint{p2}, Limit: 10},
		{Name: "c+Dk.1", Props: []reconstruct.Constraint{dk}, Limit: 1},
		{Name: "c+Dk.10", Props: []reconstruct.Constraint{dk}, Limit: 10},
		{Name: "c+Dk+P2.1", Props: []reconstruct.Constraint{dk, p2}, Limit: 1},
		{Name: "c+Dk+P2.10", Props: []reconstruct.Constraint{dk, p2}, Limit: 10},
	}
}

// Cell is one timed query result.
type Cell struct {
	Duration  time.Duration
	Status    sat.Status // Sat when candidates were found, Unsat if none
	Solutions int
	// Conflicts is the SAT conflict count the query cost — unlike
	// Duration it is deterministic for a fixed (encoding, entry,
	// query), so it is the machine-independent effort column reported
	// next to the wall-clock times in EXPERIMENTS.md.
	Conflicts int64
	TimedOut  bool
}

func (c Cell) String() string {
	if c.TimedOut {
		return "timeout"
	}
	return fmtDuration(c.Duration)
}

// fmtDuration renders like the paper's "0m0.085s".
func fmtDuration(d time.Duration) string {
	mins := int(d.Minutes())
	secs := d.Seconds() - float64(mins)*60
	return fmt.Sprintf("%dm%.3fs", mins, secs)
}

// Row is one (m, k) line of Table 1.
type Row struct {
	M, K, B int
	Cells   map[string]Cell
	// RateHz is the R column: logging bit-rate for a 100 MHz signal.
	RateHz float64
}

// RunQuery times one reconstruction query against a log entry.
func RunQuery(enc *encoding.Encoding, entry core.LogEntry, q Query, maxConflicts int64) Cell {
	start := time.Now()
	rec, err := reconstruct.New(enc, entry, q.Props, reconstruct.Options{MaxConflicts: maxConflicts})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	sigs, exhausted, enumErr := rec.EnumerateStrict(q.Limit)
	if enumErr != nil && !errors.Is(enumErr, sat.ErrBudget) {
		// A budget expiry is an expected Table-1 outcome (the TimedOut
		// cell below); anything else is a harness bug.
		panic(fmt.Sprintf("bench: %v", enumErr))
	}
	cell := Cell{
		Duration:  time.Since(start),
		Solutions: len(sigs),
		Conflicts: rec.Stats().Solver.Conflicts,
	}
	switch {
	case len(sigs) > 0:
		cell.Status = sat.Sat
	case exhausted:
		cell.Status = sat.Unsat
	default:
		cell.TimedOut = true
		cell.Status = sat.Unknown
	}
	return cell
}

// Table1Row runs all eight queries for one (m, k) with the paper's b.
func Table1Row(m, k int, maxConflicts int64) Row {
	b, ok := PaperB[m]
	if !ok {
		panic(fmt.Sprintf("bench: no paper b for m=%d", m))
	}
	enc, err := CachedEncoding("incremental", m, b, 4, 0)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	entry := core.Log(enc, PlantedSignal(m, k))
	row := Row{M: m, K: k, B: b, Cells: map[string]Cell{}, RateHz: core.LogRate(b, m, 100e6)}
	for _, q := range Queries() {
		row.Cells[q.Name] = RunQuery(enc, entry, q, maxConflicts)
	}
	return row
}

// Table1Cases lists the paper's (m, k) grid.
func Table1Cases(quick bool) [][2]int {
	cases := [][2]int{
		{64, 3}, {64, 4}, {64, 8}, {64, 32},
		{128, 3}, {128, 4}, {128, 8}, {128, 16},
	}
	if !quick {
		cases = append(cases,
			[2]int{512, 3}, [2]int{512, 4}, [2]int{512, 8},
			[2]int{1024, 3}, [2]int{1024, 4}, [2]int{1024, 8},
		)
	}
	return cases
}

// Table1 runs the grid.
func Table1(quick bool, maxConflicts int64, progress func(string)) []Row {
	var rows []Row
	for _, c := range Table1Cases(quick) {
		if progress != nil {
			progress(fmt.Sprintf("table 1: m=%d k=%d", c[0], c[1]))
		}
		rows = append(rows, Table1Row(c[0], c[1], maxConflicts))
	}
	return rows
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Row) string {
	var sb strings.Builder
	cols := []string{"c-SAT.1", "c-SAT.10", "c+P2.1", "c+P2.10", "c+Dk.1", "c+Dk.10", "c+Dk+P2.1", "c+Dk+P2.10"}
	fmt.Fprintf(&sb, "%-8s %-3s", "m/k", "b")
	for _, c := range cols {
		fmt.Fprintf(&sb, " %12s", c)
	}
	fmt.Fprintf(&sb, " %12s\n", "R")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-3d", fmt.Sprintf("%d/%d", r.M, r.K), r.B)
		for _, c := range cols {
			fmt.Fprintf(&sb, " %12s", r.Cells[c])
		}
		fmt.Fprintf(&sb, " %9.2fMHz\n", r.RateHz/1e6)
	}
	return sb.String()
}

// FormatTable1Conflicts renders the Table 1 grid with each cell's
// deterministic SAT-conflict count instead of wall-clock time — the
// machine-independent companion table cited in EXPERIMENTS.md.
func FormatTable1Conflicts(rows []Row) string {
	var sb strings.Builder
	cols := []string{"c-SAT.1", "c-SAT.10", "c+P2.1", "c+P2.10", "c+Dk.1", "c+Dk.10", "c+Dk+P2.1", "c+Dk+P2.10"}
	fmt.Fprintf(&sb, "%-8s %-3s", "m/k", "b")
	for _, c := range cols {
		fmt.Fprintf(&sb, " %12s", c)
	}
	sb.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-3d", fmt.Sprintf("%d/%d", r.M, r.K), r.B)
		for _, c := range cols {
			cell := r.Cells[c]
			if cell.TimedOut {
				fmt.Fprintf(&sb, " %12s", "timeout")
			} else {
				fmt.Fprintf(&sb, " %12d", cell.Conflicts)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table2Scheme is one encoding scheme column group of Table 2.
type Table2Scheme struct {
	Scheme string
	B      int
	Cells  map[string]Cell // c-SAT, c+P2, c+Dk, c+Dk+P2 (first solution)
}

// Table2Row compares the two generation schemes for one (m, k).
type Table2Row struct {
	M, K        int
	Incremental Table2Scheme
	Random      Table2Scheme
}

// RandomB holds the widths the random-constrained scheme needs (the
// paper reports b = 31 for its random-constrained encodings).
var RandomB = map[int]int{64: 20, 128: 24, 512: 31, 1024: 33}

// Table2Cases lists the paper's grid for Table 2.
func Table2Cases(quick bool) [][2]int {
	if quick {
		return [][2]int{{64, 3}, {64, 4}, {128, 3}}
	}
	return [][2]int{{512, 3}, {512, 4}, {1024, 3}}
}

// Table2 runs the scheme comparison.
func Table2(quick bool, maxConflicts int64, progress func(string)) []Table2Row {
	queries := []Query{}
	for _, q := range Queries() {
		if q.Limit == 1 {
			queries = append(queries, q)
		}
	}
	var rows []Table2Row
	for _, c := range Table2Cases(quick) {
		m, k := c[0], c[1]
		if progress != nil {
			progress(fmt.Sprintf("table 2: m=%d k=%d", m, k))
		}
		row := Table2Row{M: m, K: k}
		sig := PlantedSignal(m, k)

		encInc, err := CachedEncoding("incremental", m, PaperB[m], 4, 0)
		if err != nil {
			panic(err)
		}
		row.Incremental = Table2Scheme{Scheme: "incremental", B: encInc.B(), Cells: map[string]Cell{}}
		entry := core.Log(encInc, sig)
		for _, q := range queries {
			row.Incremental.Cells[q.Name] = RunQuery(encInc, entry, q, maxConflicts)
		}

		encRnd, err := CachedEncoding("random", m, RandomB[m], 4, 1)
		if err != nil {
			panic(err)
		}
		row.Random = Table2Scheme{Scheme: "random-constrained", B: encRnd.B(), Cells: map[string]Cell{}}
		entry = core.Log(encRnd, sig)
		for _, q := range queries {
			row.Random.Cells[q.Name] = RunQuery(encRnd, entry, q, maxConflicts)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable2 renders the scheme comparison.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	cols := []string{"c-SAT.1", "c+P2.1", "c+Dk.1", "c+Dk+P2.1"}
	for _, scheme := range []string{"random-constrained", "incremental"} {
		fmt.Fprintf(&sb, "TS encoding: %s\n", scheme)
		fmt.Fprintf(&sb, "%-8s %-3s", "m/k", "b")
		for _, c := range cols {
			fmt.Fprintf(&sb, " %12s", strings.TrimSuffix(c, ".1"))
		}
		sb.WriteString("\n")
		for _, r := range rows {
			sc := r.Random
			if scheme == "incremental" {
				sc = r.Incremental
			}
			fmt.Fprintf(&sb, "%-8s %-3d", fmt.Sprintf("%d/%d", r.M, r.K), sc.B)
			for _, c := range cols {
				fmt.Fprintf(&sb, " %12s", sc.Cells[c])
			}
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Figure4Result is the didactic candidate-count staircase.
type Figure4Result struct {
	AnyK, WithK, WithProperty int
}

// Figure4 reruns the didactic example with the paper's timestamps.
func Figure4() (Figure4Result, error) {
	raw := []string{
		"00010100", "00111010", "00001111", "01000100",
		"00000010", "10101110", "01100000", "11110101",
		"00010111", "11100111", "10100000", "10101000",
		"10011110", "10001111", "01110000", "01101100",
	}
	vecs, err := parseAll(raw)
	if err != nil {
		return Figure4Result{}, err
	}
	enc, err := encoding.FromTimestamps(vecs, "figure4")
	if err != nil {
		return Figure4Result{}, err
	}
	actual := core.SignalFromChanges(16, 3, 4, 9, 10)
	entry := core.Log(enc, actual)

	var res Figure4Result
	for k := 0; k <= 16; k++ {
		n, _, err := reconstruct.CountCandidates(enc, core.LogEntry{TP: entry.TP, K: k}, 0)
		if err != nil {
			return res, err
		}
		res.AnyK += n
		if k == entry.K {
			res.WithK = n
		}
	}
	rec, err := reconstruct.New(enc, entry, []reconstruct.Constraint{properties.PairedChanges{}}, reconstruct.Options{})
	if err != nil {
		return res, err
	}
	sigs, _, err := rec.EnumerateStrict(0)
	if err != nil {
		return res, err
	}
	res.WithProperty = len(sigs)
	return res, nil
}
