package bench

import "repro/internal/bitvec"

// parseAll parses MSB-first binary strings into vectors.
func parseAll(raw []string) ([]bitvec.Vector, error) {
	out := make([]bitvec.Vector, len(raw))
	for i, s := range raw {
		v, err := bitvec.Parse(s)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
