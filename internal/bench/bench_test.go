package bench

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/properties"
)

func TestPlantedSignalInvariants(t *testing.T) {
	for _, m := range []int{64, 128, 512, 1024} {
		for _, k := range []int{3, 4, 8, 16, 32} {
			if k > m {
				continue
			}
			s := PlantedSignal(m, k)
			if s.K() != k {
				t.Fatalf("m=%d k=%d: planted %d changes", m, k, s.K())
			}
			if !(properties.P2{}).Holds(s) {
				t.Errorf("m=%d k=%d: P2 violated", m, k)
			}
			if !(properties.Dk{D: DkDeadline, K: DkCount}).Holds(s) {
				t.Errorf("m=%d k=%d: Dk violated", m, k)
			}
			// Deterministic.
			if !s.Equal(PlantedSignal(m, k)) {
				t.Errorf("m=%d k=%d: not deterministic", m, k)
			}
		}
	}
}

func TestPlantedSignalRejectsBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PlantedSignal(8, 9)
}

func TestCachedEncodingMemoizes(t *testing.T) {
	a, err := CachedEncoding("incremental", 32, 11, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedEncoding("incremental", 32, 11, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss for identical key")
	}
	if _, err := CachedEncoding("nonsense", 32, 11, 4, 0); err == nil {
		t.Error("unknown scheme accepted")
	}
	c, err := CachedEncoding("random", 32, 16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different keys share an entry")
	}
}

func TestQueriesCoverPaperColumns(t *testing.T) {
	qs := Queries()
	if len(qs) != 8 {
		t.Fatalf("%d queries", len(qs))
	}
	names := map[string]bool{}
	for _, q := range qs {
		names[q.Name] = true
		if q.Limit != 1 && q.Limit != 10 {
			t.Errorf("query %s limit %d", q.Name, q.Limit)
		}
	}
	for _, want := range []string{"c-SAT.1", "c-SAT.10", "c+P2.1", "c+Dk.10", "c+Dk+P2.1"} {
		if !names[want] {
			t.Errorf("missing column %s", want)
		}
	}
}

func TestTable1RowSmall(t *testing.T) {
	row := Table1Row(64, 3, 0)
	if row.B != 13 {
		t.Errorf("b=%d", row.B)
	}
	for name, cell := range row.Cells {
		if cell.TimedOut {
			t.Errorf("%s timed out without budget", name)
		}
		if cell.Solutions == 0 {
			t.Errorf("%s found no solutions for a satisfiable instance", name)
		}
	}
	// The R column: (13 + 7) / 64 * 100 MHz.
	want := float64(13+7) / 64 * 100e6
	if row.RateHz != want {
		t.Errorf("rate %f want %f", row.RateHz, want)
	}
}

// TestCellConflictsDeterministic pins the conflicts-per-cell column:
// the SAT effort of a fixed (m, k, query) is machine-independent, so
// two runs must agree exactly, and the grid must render it.
func TestCellConflictsDeterministic(t *testing.T) {
	a := Table1Row(64, 3, 0)
	b := Table1Row(64, 3, 0)
	var nonzero bool
	for name, cell := range a.Cells {
		if cell.Conflicts != b.Cells[name].Conflicts {
			t.Errorf("%s: conflicts %d vs %d across identical runs",
				name, cell.Conflicts, b.Cells[name].Conflicts)
		}
		if cell.Conflicts > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Error("every cell reported zero conflicts")
	}
	out := FormatTable1Conflicts([]Row{a})
	if !strings.Contains(out, "64/3") || !strings.Contains(out, "c+Dk+P2.10") {
		t.Errorf("conflicts table format:\n%s", out)
	}
}

func TestFormatTables(t *testing.T) {
	rows := []Row{Table1Row(64, 3, 0)}
	out := FormatTable1(rows)
	if !strings.Contains(out, "64/3") || !strings.Contains(out, "c-SAT.1") {
		t.Errorf("table 1 format:\n%s", out)
	}
	t2 := Table2(true, 0, nil)
	out2 := FormatTable2(t2)
	if !strings.Contains(out2, "incremental") || !strings.Contains(out2, "random-constrained") {
		t.Errorf("table 2 format:\n%s", out2)
	}
}

func TestFigure4Staircase(t *testing.T) {
	res, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if res.AnyK != 256 || res.WithK != 8 || res.WithProperty != 1 {
		t.Fatalf("staircase %d/%d/%d, want 256/8/1", res.AnyK, res.WithK, res.WithProperty)
	}
}

func TestCellTimeoutRendering(t *testing.T) {
	// A hopeless budget must surface as "timeout", not a bogus time.
	enc, err := CachedEncoding("incremental", 128, 16, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	entry := core.Log(enc, PlantedSignal(128, 4))
	cell := RunQuery(enc, entry, Query{Name: "c-SAT.1", Limit: 1}, 1)
	if !cell.TimedOut || cell.String() != "timeout" {
		t.Errorf("cell %+v rendered %q", cell, cell.String())
	}
}
