// Package obs is the observability core of the repository: a
// dependency-free, allocation-conscious metrics layer — atomic
// counters, gauges, bounded log2-bucket latency histograms and named
// span timers — collected in a Registry that snapshots to a stable
// JSON/text form.
//
// The paper's whole evaluation is about where reconstruction time
// goes; obs makes the engine's internals (solver counters, presolve
// outcomes, per-trace-cycle solve latencies, pool utilization)
// first-class measurements instead of wall-clock inferences.
//
// Every method is nil-safe: a nil *Registry hands out nil instruments,
// and every instrument method on a nil receiver is a no-op. The hot
// layers therefore carry an optional *Registry and pay nothing — not
// even a map lookup — on the default (nil) path. Instruments are
// cheap enough to record into from concurrent goroutines: all state is
// atomic, and Registry lookups take a read lock only.
//
// Two conventions keep snapshots stable and comparable:
//
//   - Counters hold deterministic quantities wherever possible
//     (decisions, conflicts, propagations, models, entries, bytes), so
//     repeated runs of a seeded workload produce identical counter
//     maps — an invariant the test suite asserts on.
//   - Histograms hold the nondeterministic quantities (latencies,
//     sizes with scheduling-dependent order); their bucket counts are
//     still deterministic when the observed values are.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores the gauge value, tracking the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add shifts the gauge by d (d may be negative), tracking the
// high-water mark.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(d))
}

func (g *Gauge) bumpMax(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max reads the high-water mark (0 on a nil receiver).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i
// collects values v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i,
// with bucket 0 collecting v <= 0. 64 buckets cover the whole int64
// range, so a histogram is bounded by construction.
const histBuckets = 65

// Histogram is a bounded log2-bucket histogram of int64 observations
// (typically nanoseconds or sizes). Construct via Registry.Histogram;
// a nil *Histogram is a no-op. Observations cost a handful of atomic
// adds and min/max updates — no allocation, ever.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // seeded to MaxInt64 so the CAS loop is race-free
	max     atomic.Int64 // seeded to MinInt64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(int64(^uint64(0) >> 1))    // MaxInt64
	h.max.Store(-int64(^uint64(0)>>1) - 1) // MinInt64
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketIdx(v)].Add(1)
}

func bucketIdx(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketHi returns the inclusive upper bound of bucket i.
func bucketHi(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(1)<<62 - 1 + int64(1)<<62 // MaxInt64
	}
	return int64(1)<<i - 1
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count reads the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Span is a started named timer. End records the elapsed time into the
// histogram "<name>.ns" and increments the counter "<name>.calls". The
// zero Span (from a nil Registry) is a no-op.
type Span struct {
	h     *Histogram
	c     *Counter
	start time.Time
}

// End stops the span and records it. Safe to call on the zero Span.
func (s Span) End() {
	if s.h == nil && s.c == nil {
		return
	}
	s.c.Inc()
	s.h.ObserveDuration(time.Since(s.start))
}

// Registry is a named collection of instruments. The zero value is not
// usable; construct with NewRegistry. A nil *Registry hands out nil
// instruments and snapshots empty, so instrumented code never needs a
// nil check of its own. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram()
	r.hists[name] = h
	return h
}

// StartSpan starts a named span timer. On a nil registry the returned
// zero Span is a no-op.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{
		h:     r.Histogram(name + ".ns"),
		c:     r.Counter(name + ".calls"),
		start: time.Now(),
	}
}

// Bucket is one populated histogram bucket in a snapshot: Count
// observations with value <= Le (and greater than the previous
// bucket's Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the stable serialized form of a histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile approximates the q-quantile (0 <= q <= 1) from the bucket
// upper bounds. The answer is exact up to the 2x bucket resolution.
func (hs HistogramSnapshot) Quantile(q float64) int64 {
	if hs.Count == 0 {
		return 0
	}
	rank := int64(q*float64(hs.Count-1)) + 1
	var seen int64
	for _, b := range hs.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Le
		}
	}
	return hs.Max
}

// Snapshot is a stable point-in-time copy of a registry, the JSON
// contract of `timeprint stats`, -metrics dumps and the expvar
// endpoint. Map iteration order does not leak: JSON object keys are
// marshaled sorted by encoding/json, and Text sorts explicitly.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// GaugeSnapshot carries a gauge's current value and high-water mark.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot captures the registry. A nil registry snapshots empty (but
// non-nil maps, so the JSON shape is invariant).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for n, h := range r.hists {
		hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		if hs.Count > 0 {
			hs.Min, hs.Max = h.min.Load(), h.max.Load()
		}
		for i := range h.buckets {
			if c := h.buckets[i].Load(); c > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{Le: bucketHi(i), Count: c})
			}
		}
		s.Histograms[n] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Text renders the snapshot in a stable, human-readable text form —
// one instrument per line, sorted by name.
func (s Snapshot) Text() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter   %-40s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := s.Gauges[n]
		fmt.Fprintf(&b, "gauge     %-40s %d (max %d)\n", n, g.Value, g.Max)
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if h.Count == 0 {
			fmt.Fprintf(&b, "histogram %-40s empty\n", n)
			continue
		}
		fmt.Fprintf(&b, "histogram %-40s count=%d sum=%d min=%d p50<=%d p90<=%d p99<=%d max=%d\n",
			n, h.Count, h.Sum, h.Min, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max)
	}
	return b.String()
}

// ParseSnapshot decodes a snapshot previously produced by WriteJSON —
// the read side of `timeprint stats -in` and cmd/metricscheck.
func ParseSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: invalid metrics snapshot: %w", err)
	}
	return s, nil
}

// DumpJSON snapshots the registry and writes it as indented JSON —
// the implementation behind every CLI -metrics flag.
func (r *Registry) DumpJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}
