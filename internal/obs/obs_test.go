package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	if c := r.Counter("x"); c != nil {
		t.Fatal("nil registry handed out a counter")
	}
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(-1)
	r.Histogram("h").Observe(7)
	r.Histogram("h").ObserveDuration(time.Millisecond)
	sp := r.StartSpan("s")
	sp.End()
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	// JSON shape must be invariant: maps present even when empty.
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"counters"`, `"gauges"`, `"histograms"`} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("snapshot JSON missing %s: %s", key, buf.String())
		}
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	if r.Counter("a.b") != c {
		t.Fatal("counter identity not stable")
	}
	g := r.Gauge("q")
	g.Set(10)
	g.Add(-4)
	g.Add(2)
	if g.Value() != 8 || g.Max() != 10 {
		t.Fatalf("gauge = %d max %d, want 8 max 10", g.Value(), g.Max())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []int64{0, 1, 2, 3, 100, 1000, 1_000_000} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 1_001_106 {
		t.Fatalf("sum = %d", h.Sum())
	}
	hs := r.Snapshot().Histograms["lat"]
	if hs.Min != 0 || hs.Max != 1_000_000 {
		t.Fatalf("min/max = %d/%d", hs.Min, hs.Max)
	}
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != hs.Count {
		t.Fatalf("bucket counts sum to %d, count is %d", total, hs.Count)
	}
	// Buckets must be sorted ascending by upper bound.
	for i := 1; i < len(hs.Buckets); i++ {
		if hs.Buckets[i].Le <= hs.Buckets[i-1].Le {
			t.Fatalf("buckets not ascending: %+v", hs.Buckets)
		}
	}
	// The median of {0,1,2,3,100,1000,1e6} is 3; bucket resolution may
	// round up to the bucket bound 3.
	if q := hs.Quantile(0.5); q < 3 || q > 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := hs.Quantile(1.0); q < 1_000_000 {
		t.Fatalf("p100 = %d", q)
	}
	if q := hs.Quantile(0); q > 1 {
		t.Fatalf("p0 = %d", q)
	}
}

func TestSpanRecords(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("solve")
	time.Sleep(time.Millisecond)
	sp.End()
	s := r.Snapshot()
	if s.Counters["solve.calls"] != 1 {
		t.Fatalf("calls = %d", s.Counters["solve.calls"])
	}
	h := s.Histograms["solve.ns"]
	if h.Count != 1 || h.Sum < int64(time.Millisecond) {
		t.Fatalf("span histogram %+v", h)
	}
}

func TestSnapshotRoundTripAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("sat.decisions").Add(42)
	r.Gauge("pool.depth").Set(3)
	r.Histogram("solve.ns").Observe(1500)
	var buf bytes.Buffer
	if err := r.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters["sat.decisions"] != 42 {
		t.Fatalf("round-trip counters: %+v", got.Counters)
	}
	if got.Gauges["pool.depth"].Value != 3 {
		t.Fatalf("round-trip gauges: %+v", got.Gauges)
	}
	if got.Histograms["solve.ns"].Count != 1 {
		t.Fatalf("round-trip histograms: %+v", got.Histograms)
	}
	txt := got.Text()
	for _, want := range []string{"counter", "sat.decisions", "gauge", "pool.depth", "histogram", "solve.ns"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text form missing %q:\n%s", want, txt)
		}
	}
	// Unknown fields must be rejected: the -metrics JSON is a contract.
	if _, err := ParseSnapshot(strings.NewReader(`{"counters":{},"bogus":1}`)); err == nil {
		t.Error("unknown top-level field accepted")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// the -race lock-in for concurrent Registry use (parallel solver
// workers all flush into the same instruments).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Mix of shared and per-goroutine names exercises both
				// the read-lock fast path and map growth.
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("per.%d", g%4)).Add(2)
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
				r.Histogram("h").Observe(int64(i))
				sp := r.StartSpan("span")
				sp.End()
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent snapshotting must be safe
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared"] != goroutines*iters {
		t.Fatalf("shared = %d, want %d", s.Counters["shared"], goroutines*iters)
	}
	if s.Histograms["h"].Count != goroutines*iters {
		t.Fatalf("histogram count = %d", s.Histograms["h"].Count)
	}
	if s.Counters["span.calls"] != goroutines*iters {
		t.Fatalf("span calls = %d", s.Counters["span.calls"])
	}
	if s.Gauges["depth"].Value != 0 {
		t.Fatalf("depth settled at %d", s.Gauges["depth"].Value)
	}
}

// TestDeterministicSnapshotJSON asserts two identical workloads produce
// byte-identical counter JSON — the property the cross-oracle counter
// invariant builds on.
func TestDeterministicSnapshotJSON(t *testing.T) {
	run := func() []byte {
		r := NewRegistry()
		for i := 0; i < 100; i++ {
			r.Counter("a").Inc()
			r.Counter("b").Add(3)
			r.Histogram("h").Observe(int64(i * i))
		}
		b, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("sat.decisions").Add(7)
	addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr.String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return buf.String()
	}
	if body := get("/metrics"); !strings.Contains(body, "sat.decisions") {
		t.Errorf("/metrics missing counter: %s", body)
	}
	if body := get("/metrics.txt"); !strings.Contains(body, "sat.decisions") {
		t.Errorf("/metrics.txt missing counter: %s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "timeprints") {
		t.Errorf("/debug/vars missing published registry")
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("pprof endpoint empty")
	}
}
