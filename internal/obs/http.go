package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"sync"
)

// expvar.Publish panics on duplicate names; publish each registry name
// at most once per process.
var (
	publishMu   sync.Mutex
	publishDone = map[string]bool{}
	metricsOnce sync.Once
)

// Publish exposes the registry's live snapshot as an expvar variable
// under the given name (conventionally "timeprints"), so it appears in
// /debug/vars next to the Go runtime's memstats. Publishing the same
// name twice is a no-op — the first registry stays, matching expvar's
// own immutability.
func Publish(name string, r *Registry) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if publishDone[name] {
		return
	}
	publishDone[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Handler returns a mux-mountable http.Handler exposing the registry's
// live snapshot at <prefix>/metrics (indented JSON) and
// <prefix>/metrics.txt (stable text). Long-running services mount it on
// their own mux; Serve uses it for the process-global endpoint.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.DumpJSON(w)
	})
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, r.Snapshot().Text())
	})
	return mux
}

// Serve starts an HTTP server on addr exposing live observability for
// long sweeps:
//
//	/debug/vars         expvar, including the registry under "timeprints"
//	/debug/pprof/...    net/http/pprof live profiling
//	/metrics            the registry snapshot as indented JSON
//	/metrics.txt        the registry snapshot in stable text form
//
// It returns once the listener is bound (so callers can print the
// resolved address) and serves in a background goroutine for the rest
// of the process lifetime; errors after bind are reported on errc if
// non-nil. This is the opt-in -httpobs endpoint of the CLIs.
func Serve(addr string, r *Registry) (net.Addr, error) {
	Publish("timeprints", r)
	mux := http.DefaultServeMux // pprof + expvar already registered here
	metricsOnce.Do(func() {
		h := Handler(r)
		http.Handle("/metrics", h)
		http.Handle("/metrics.txt", h)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: httpobs listen %s: %w", addr, err)
	}
	go func() {
		// Serve for process lifetime; the CLI exits, the listener dies.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr(), nil
}
