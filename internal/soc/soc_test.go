package soc

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/leon3"
	"repro/internal/sram"
	"repro/internal/trace"
)

const (
	testM      = 256
	testB      = 20
	testPeriod = 100
	testBurst  = 24
)

func testEnc(t testing.TB) *encoding.Encoding {
	t.Helper()
	e, err := encoding.Incremental(testM, testB, 4)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// hwConfig is the "real hardware": true wait states, refresh, thermal.
func hwConfig(ambient float64) sram.Config {
	cfg := sram.DefaultConfig(ambient)
	cfg.BaseIntervalCycles = 1200
	cfg.MinIntervalCycles = 250
	cfg.IntervalSlopeCyclesPerC = 16
	cfg.RefreshCycles = 17
	cfg.HeatPerAccessC = 0.25
	return cfg
}

// simConfig is the RTL-simulation twin: no refresh, no thermal, and a
// configurable (possibly wrong) wait-state count.
func simConfig(waitStates int) sram.Config {
	return sram.Config{WaitStates: waitStates, CoolingPerCycle: 1}
}

func build(t testing.TB, mem sram.Config, uartDiv int) *System {
	t.Helper()
	sys, err := Build(Config{
		Program:     SensorProgram(testBurst, testPeriod),
		Mem:         mem,
		Enc:         testEnc(t),
		ClockHz:     50e6,
		UARTDivisor: uartDiv,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBuildValidation(t *testing.T) {
	enc := testEnc(t)
	if _, err := Build(Config{Program: nil, Enc: enc, Mem: simConfig(1)}); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := Build(Config{Program: []uint32{0}, Enc: nil, Mem: simConfig(1)}); err == nil {
		t.Error("nil encoding accepted")
	}
}

func TestAggLogMatchesReferenceTrace(t *testing.T) {
	// The hardware agg-log must agree with abstracting the recorded
	// reference signals — hardware and software logging paths coincide.
	sys := build(t, simConfig(1), 0)
	sys.Run(20 * testM)
	enc := testEnc(t)
	refs := sys.ReferenceSignals()
	entries := sys.AggLog.Entries()
	if len(refs) != 20 || len(entries) != 20 {
		t.Fatalf("refs=%d entries=%d", len(refs), len(entries))
	}
	for i := range refs {
		if want := core.Log(enc, refs[i]); !want.Equal(entries[i]) {
			t.Fatalf("trace-cycle %d: agg %v != ref %v", i, entries[i], want)
		}
	}
	// The program is actually doing work: some activity in every
	// steady-state trace-cycle.
	for i := 2; i < 20; i++ {
		if entries[i].K == 0 {
			t.Fatalf("trace-cycle %d has no changes", i)
		}
	}
}

func TestExperimentDiagnostics(t *testing.T) {
	// Exploratory diagnostics for the 5.2.2 pipeline; logs the k
	// sequences and mismatch structure for the three configurations.
	runStore := func(mem sram.Config) (*trace.Store, *System) {
		sys := build(t, mem, 0)
		sys.Run(30 * testM)
		st, err := sys.Store("x")
		if err != nil {
			t.Fatal(err)
		}
		return st, sys
	}
	hwSt, hwSys := runStore(hwConfig(45))
	buggySt, _ := runStore(simConfig(2))
	fixedSt, _ := runStore(simConfig(1))

	ks := func(st *trace.Store) []int {
		var out []int
		for _, e := range st.Entries() {
			out = append(out, e.K)
		}
		return out
	}
	t.Logf("hw    k: %v", ks(hwSt))
	t.Logf("buggy k: %v", ks(buggySt))
	t.Logf("fixed k: %v", ks(fixedSt))
	t.Logf("hw stats: %+v temp=%.2f", hwSys.Mem.Stats(), hwSys.Mem.TemperatureC())
	t.Logf("hw collisions at: %v", hwSys.Mem.CollisionLog())

	mm, err := trace.Compare(hwSt, buggySt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hw vs buggy: %d mismatches, first %d", len(mm), trace.FirstMismatch(mm))
	kDiff := 0
	for _, m := range mm {
		if m.KDiffers {
			kDiff++
		}
	}
	t.Logf("hw vs buggy: %d k-mismatches", kDiff)

	mm2, _ := trace.Compare(hwSt, fixedSt)
	t.Logf("hw vs fixed: %d mismatches, first %d", len(mm2), trace.FirstMismatch(mm2))
	for _, m := range mm2 {
		t.Logf("  tc=%d kdiff=%v tpdiff=%v", m.TraceCycle, m.KDiffers, m.TPDiffers)
	}
}

func TestUARTLogPathDeliversEntries(t *testing.T) {
	// Close the Section 5.2.2 loop: the agg-log packs entries into the
	// UART transmitter; the receiver's bytes must decode back to the
	// same log. The divisor is chosen so the line keeps up with the
	// constant log rate (29 bits per 256-cycle trace-cycle).
	payloadBits := float64(core.BitsPerTraceCycle(testB, testM)) / float64(testM)
	div := int(1.0 / payloadBits * 8 / 10 * 0.8) // 20% margin
	if div < 1 {
		div = 1
	}
	sys := build(t, simConfig(1), div)
	n := 12
	sys.Run(int64(n * testM))
	// Drain the UART: run extra cycles with the core halted influence
	// being irrelevant — the TX keeps shifting.
	for i := 0; i < 20000 && sys.TX.Busy(); i++ {
		sys.Sim.Step()
	}
	if sys.TX.Dropped() != 0 {
		t.Fatalf("UART dropped %d bytes", sys.TX.Dropped())
	}

	// Reassemble: the packer emits the core wire payload layout
	// back-to-back; rebuild entries bit by bit.
	raw := sys.RX.Bytes()
	entries := sys.AggLog.Entries()
	kb := core.KBits(testM)
	bitAt := func(pos int) bool { return raw[pos/8]&(1<<uint(pos%8)) != 0 }
	// The packer keeps a partial final byte unflushed (the bit stream
	// continues with the next trace-cycle), so compare only entries
	// whose bits were fully delivered.
	full := len(raw) * 8 / (testB + kb)
	if full < len(entries)-1 {
		t.Fatalf("only %d of %d entries delivered", full, len(entries))
	}
	if full > len(entries) {
		full = len(entries)
	}
	pos := 0
	for i, want := range entries[:full] {
		tp := bitvec.New(testB)
		for j := 0; j < testB; j++ {
			if bitAt(pos) {
				tp.Set(j, true)
			}
			pos++
		}
		k := 0
		for j := 0; j < kb; j++ {
			if bitAt(pos) {
				k |= 1 << uint(j)
			}
			pos++
		}
		if k != want.K || !tp.Equal(want.TP) {
			t.Fatalf("entry %d: uart (TP=%s k=%d) != agg (TP=%s k=%d)",
				i, tp, k, want.TP, want.K)
		}
	}
}

func TestMemImagePreload(t *testing.T) {
	// A preloaded memory image must be visible to the program: copy
	// one word from a preloaded address and check it lands.
	enc := testEnc(t)
	prog := []uint32{
		leon3.LI(1, 0x500),
		leon3.LD(2, 1, 0), // r2 = mem[0x500]
		leon3.ST(2, 1, 8), // mem[0x508] = r2
		leon3.HALT(),
	}
	sys, err := Build(Config{
		Program:  prog,
		Mem:      simConfig(1),
		Enc:      enc,
		ClockHz:  50e6,
		MemImage: map[uint32]uint32{0x500: 0xFEEDFACE},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && !sys.Core.Halted(); i++ {
		sys.Sim.Step()
	}
	if !sys.Core.Halted() {
		t.Fatal("program did not halt")
	}
	if got := sys.Mem.Peek(0x508); got != 0xFEEDFACE {
		t.Fatalf("copied word %#x", got)
	}
}
