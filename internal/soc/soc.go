// Package soc assembles the experiment-5.2.2 system: a LEON3-style
// core and an SRAM on an AHB-lite bus, the timeprints agg-log hardware
// attached to the bus's address signals, and a UART streaming the log
// off-chip. Building the same system twice — once as "hardware" (true
// wait states, refresh enabled, thermal model live) and once as the
// "Questa simulation" (idealized memory, possibly misconfigured wait
// states) — and comparing the two timeprint logs is the experiment.
package soc

import (
	"fmt"

	"repro/internal/ahb"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/hw"
	"repro/internal/leon3"
	"repro/internal/obs"
	"repro/internal/rtl"
	"repro/internal/sram"
	"repro/internal/trace"
	"repro/internal/uart"
)

// Config describes one system instance.
type Config struct {
	// Program is the instruction image the core executes.
	Program []uint32
	// Mem configures the SRAM (wait states, refresh, thermal).
	Mem sram.Config
	// Enc is the timestamp encoding of the agg-log hardware.
	Enc *encoding.Encoding
	// ClockHz is the system clock (for store metadata).
	ClockHz float64
	// UARTDivisor enables the UART log path when > 0.
	UARTDivisor int
	// MemImage preloads memory words (byte address -> value).
	MemImage map[uint32]uint32
}

// System is a built instance.
type System struct {
	Sim    *rtl.Simulator
	Core   *leon3.Core
	Mem    *sram.Model
	Bus    *ahb.Channel
	AggLog *hw.AggLog
	TX     *uart.TX
	RX     *uart.RX

	// AddrRec records the address-change reference trace (what an RTL
	// simulator would dump).
	AddrRec *trace.Recorder

	cfg Config
}

// addrProbe feeds HADDR changes into a trace recorder.
type addrProbe struct {
	wire  *rtl.Wire
	rec   *trace.Recorder
	prev  uint64
	first bool
}

func (p *addrProbe) Observe(cycle int64) {
	v := p.wire.Get()
	changed := false
	if p.first {
		p.first = false
	} else {
		changed = v != p.prev
	}
	p.prev = v
	p.rec.SampleChange(changed)
}

// Build wires the system together.
func Build(cfg Config) (*System, error) {
	if len(cfg.Program) == 0 {
		return nil, fmt.Errorf("soc: empty program")
	}
	if cfg.Enc == nil {
		return nil, fmt.Errorf("soc: no encoding")
	}
	sim := rtl.NewSimulator()
	ch := ahb.NewChannel(sim, "ahb")
	mem, err := sram.New(cfg.Mem)
	if err != nil {
		return nil, err
	}
	for a, v := range cfg.MemImage {
		mem.Poke(a, v)
	}
	dec, err := ahb.NewDecoder(ch, []ahb.Region{
		{Base: 0x0000_0000, Size: 0x0010_0000, Slave: mem, Name: "sram"},
	})
	if err != nil {
		return nil, err
	}
	cpu := leon3.New(ch, cfg.Program)

	sys := &System{Sim: sim, Core: cpu, Mem: mem, Bus: ch, cfg: cfg}

	sim.Add(cpu)
	sim.Add(dec)
	sim.Add(mem)

	agg := hw.NewAggLog(cfg.Enc, ch.HADDR)
	sim.AddProbe(agg)
	sys.AggLog = agg

	sys.AddrRec = trace.NewRecorder()
	sim.AddProbe(&addrProbe{wire: ch.HADDR, rec: sys.AddrRec, first: true})

	if cfg.UARTDivisor > 0 {
		line := sim.Wire("uart.tx", 1)
		tx, err := uart.NewTX(line, cfg.UARTDivisor, 64)
		if err != nil {
			return nil, err
		}
		rx, err := uart.NewRX(line, cfg.UARTDivisor)
		if err != nil {
			return nil, err
		}
		sim.Add(tx)
		sim.AddProbe(rx)
		sys.TX, sys.RX = tx, rx
		packer := hw.NewEntryPacker(cfg.Enc.M(), cfg.Enc.B(), tx.Push)
		agg.SetSink(func(e core.LogEntry) { _ = packer.Push(e) })
	}
	return sys, nil
}

// Run advances the system n cycles.
func (s *System) Run(n int64) { s.Sim.Run(n) }

// Store packages the agg-log output as a timeprint store.
func (s *System) Store(name string) (*trace.Store, error) {
	return s.StoreObserved(name, nil)
}

// StoreObserved is Store with a metrics registry attached before the
// entries are appended, so the append counters are attributed to the
// run that produced them (nil behaves exactly like Store).
func (s *System) StoreObserved(name string, r *obs.Registry) (*trace.Store, error) {
	st := trace.NewStore(name, s.cfg.ClockHz, s.cfg.Enc.M(), s.cfg.Enc.B())
	st.Obs = r
	if err := st.Append(s.AggLog.Entries()...); err != nil {
		return nil, err
	}
	return st, nil
}

// ReferenceSignals segments the recorded address-change trace into
// per-trace-cycle signals (the simulation-side golden trace).
func (s *System) ReferenceSignals() []core.Signal {
	return s.AddrRec.Segment(s.cfg.Enc.M())
}

// SensorProgram returns the experiment's software image: a start-up
// memcpy burst (free-running, so wrong wait states visibly shift
// activity across trace-cycle boundaries) followed by a timer-driven
// sensor loop of one load and one dependent store per period (so a
// one-cycle refresh stall moves exactly one address change and is
// absorbed by the next timer sync).
func SensorProgram(burstWords int, period uint16) []uint32 {
	if burstWords < 1 || burstWords > 0x100 {
		panic(fmt.Sprintf("soc: burstWords %d out of range", burstWords))
	}
	return []uint32{
		// Burst phase: copy burstWords words 0x100 -> 0x900.
		leon3.LI(1, 0x100),              // 0: src
		leon3.LI(2, 0x900),              // 1: dst
		leon3.LI(3, uint16(burstWords)), // 2: count
		leon3.LI(6, 0),                  // 3: i
		leon3.LD(7, 1, 0),               // 4: copy loop
		leon3.ST(7, 2, 0),               // 5
		leon3.ADDI(1, 1, 4),             // 6
		leon3.ADDI(2, 2, 4),             // 7
		leon3.ADDI(6, 6, 1),             // 8
		leon3.BNE(6, 3, -5),             // 9: -> 4
		// Periodic phase: timer-anchored load + dependent store.
		leon3.LI(1, 0x100),  // 10
		leon3.LUI(3, 0),     // 11 (r3 = 0)
		leon3.LI(3, 0x300),  // 12: limit
		leon3.WFT(period),   // 13: loop head
		leon3.LD(7, 1, 0),   // 14: a1 (timer-anchored address change)
		leon3.ST(7, 1, 4),   // 15: a2 (completion-anchored address change)
		leon3.ADDI(1, 1, 8), // 16
		leon3.BNE(1, 3, -4), // 17: -> 13
		leon3.LI(1, 0x100),  // 18
		leon3.JMP(-6),       // 19: -> 13
	}
}
