package trace

import (
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
)

func TestMultiLoggerAlignment(t *testing.T) {
	enc, err := encoding.Incremental(8, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := NewMultiLogger(enc, 1e6, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	// a toggles at cycles 2 and 5; b toggles at 3 (within tc 0) and 9
	// (tc 1).
	var aLvl, bLvl bool
	for i := 0; i < 16; i++ {
		if i == 2 || i == 5 {
			aLvl = !aLvl
		}
		if i == 3 || i == 9 {
			bLvl = !bLvl
		}
		closed, err := ml.Tick([]bool{aLvl, bLvl})
		if err != nil {
			t.Fatal(err)
		}
		if closed != (i == 7 || i == 15) {
			t.Fatalf("boundary flag wrong at %d", i)
		}
	}
	sa, ok := ml.Store("a")
	if !ok || sa.Len() != 2 {
		t.Fatal("store a")
	}
	sb, _ := ml.Store("b")
	ea0, _ := sa.Entry(0)
	if !ea0.Equal(core.Log(enc, core.SignalFromChanges(8, 2, 5))) {
		t.Error("a entry 0")
	}
	eb1, _ := sb.Entry(1)
	if !eb1.Equal(core.Log(enc, core.SignalFromChanges(8, 1))) {
		t.Error("b entry 1")
	}
	if _, ok := ml.Store("c"); ok {
		t.Error("phantom store")
	}
	if len(ml.Stores()) != 2 || len(ml.Names()) != 2 {
		t.Error("accessors")
	}
}

func TestMultiLoggerValidation(t *testing.T) {
	enc, _ := encoding.Incremental(8, 6, 4)
	if _, err := NewMultiLogger(enc, 1e6, nil); err == nil {
		t.Error("empty signal list accepted")
	}
	if _, err := NewMultiLogger(enc, 1e6, []string{"a", "a"}); err == nil {
		t.Error("duplicate names accepted")
	}
	ml, _ := NewMultiLogger(enc, 1e6, []string{"a", "b"})
	if _, err := ml.Tick([]bool{true}); err == nil {
		t.Error("wrong level count accepted")
	}
}

func TestMultiLoggerRate(t *testing.T) {
	enc, _ := encoding.Incremental(8, 6, 4)
	ml, _ := NewMultiLogger(enc, 1e6, []string{"a", "b", "c"})
	single := core.LogRate(6, 8, 1e6)
	if got := ml.TotalLogRate(1e6); got != 3*single {
		t.Errorf("rate %f want %f", got, 3*single)
	}
}
