// Package trace provides the off-chip side of the timeprints life
// cycle (Figure 3): a recorder that captures a wire's change instants
// during simulation, trace-cycle segmentation, and the central store
// that keeps logged timeprints until they are consulted in the
// postmortem phase — indexed so the entry covering an absolute time
// window can be retrieved.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
)

// Typed sentinel errors of the trace layer. Entry-shape violations wrap
// the shared core sentinels (core.ErrWidth, core.ErrKRange) so callers
// can classify a rejection uniformly across layers.
var (
	// ErrOutOfRange reports a trace-cycle index or absolute time outside
	// the stored range.
	ErrOutOfRange = errors.New("trace: outside stored range")
	// ErrIncompatible reports two stores whose trace parameters (m, b,
	// clock, epoch) do not admit a trace-cycle-aligned comparison.
	ErrIncompatible = errors.New("trace: incompatible stores")
)

// Metric names published by the trace layer (through Store.Obs).
const (
	// MetricEntriesAppended counts log entries accepted into stores.
	MetricEntriesAppended = "trace.entries.appended"
	// MetricCompareCycles counts trace-cycles diffed by Compare;
	// MetricCompareKMismatch and MetricCompareTPMismatch split the
	// mismatches by signature (change-count vs timeprint).
	MetricCompareCycles     = "trace.compare.cycles"
	MetricCompareKMismatch  = "trace.compare.k_mismatch"
	MetricCompareTPMismatch = "trace.compare.tp_mismatch"
)

// Recorder captures the change instants of a single wire, cycle by
// cycle, as a reference (simulation-side) trace.
type Recorder struct {
	prev    bool
	first   bool
	cycle   int64
	changes []int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{first: true} }

// Sample consumes the wire level of the next clock-cycle.
func (r *Recorder) Sample(v bool) {
	if r.first {
		r.first = false
	} else if v != r.prev {
		r.changes = append(r.changes, r.cycle)
	}
	r.prev = v
	r.cycle++
}

// SampleChange consumes an explicit per-cycle change flag.
func (r *Recorder) SampleChange(changed bool) {
	if changed {
		r.changes = append(r.changes, r.cycle)
	}
	r.cycle++
}

// Cycles returns how many cycles were consumed.
func (r *Recorder) Cycles() int64 { return r.cycle }

// Changes returns the recorded change instants.
func (r *Recorder) Changes() []int64 {
	out := make([]int64, len(r.changes))
	copy(out, r.changes)
	return out
}

// Segment splits the recorded changes into per-trace-cycle signals of
// length m; the recording is truncated to whole trace-cycles.
func (r *Recorder) Segment(m int) []core.Signal {
	n := r.cycle / int64(m)
	out := make([]core.Signal, n)
	for i := range out {
		out[i] = core.NewSignal(m)
	}
	for _, c := range r.changes {
		tc := c / int64(m)
		if tc < n {
			v := out[tc].Vector()
			v.Set(int(c%int64(m)), true)
			out[tc] = core.SignalFromVector(v)
		}
	}
	return out
}

// Store is the central timeprint database: a sequence of log entries
// for one traced signal, tagged with the trace parameters needed to
// map absolute time to trace-cycle indices.
type Store struct {
	// SignalName identifies the traced wire.
	SignalName string
	// ClockHz is the traced signal's clock rate.
	ClockHz float64
	// M is the trace-cycle length; B the timeprint width.
	M, B int
	// Epoch is the absolute time (seconds) of clock-cycle 0.
	Epoch float64

	// Obs, when non-nil, receives the store's counters (entries
	// appended, comparison mismatches). Nil is fully supported.
	Obs *obs.Registry

	entries []core.LogEntry
}

// NewStore returns an empty store with the given parameters.
func NewStore(name string, clockHz float64, m, b int) *Store {
	return &Store{SignalName: name, ClockHz: clockHz, M: m, B: b}
}

// Append adds entries in trace-cycle order.
func (s *Store) Append(entries ...core.LogEntry) error {
	for _, e := range entries {
		if e.TP.Width() != s.B {
			return fmt.Errorf("trace: entry width %d, want %d: %w", e.TP.Width(), s.B, core.ErrWidth)
		}
		if e.K < 0 || e.K > s.M {
			return fmt.Errorf("trace: entry k=%d outside [0,%d]: %w", e.K, s.M, core.ErrKRange)
		}
		s.entries = append(s.entries, e)
	}
	s.Obs.Counter(MetricEntriesAppended).Add(int64(len(entries)))
	return nil
}

// Len returns the number of stored trace-cycles.
func (s *Store) Len() int { return len(s.entries) }

// Entry returns the entry of trace-cycle tc.
func (s *Store) Entry(tc int) (core.LogEntry, error) {
	if tc < 0 || tc >= len(s.entries) {
		return core.LogEntry{}, fmt.Errorf("trace: trace-cycle %d outside [0,%d): %w", tc, len(s.entries), ErrOutOfRange)
	}
	return s.entries[tc], nil
}

// Entries returns all stored entries.
func (s *Store) Entries() []core.LogEntry {
	out := make([]core.LogEntry, len(s.entries))
	copy(out, s.entries)
	return out
}

// TraceCycleAt returns the index of the trace-cycle covering the
// absolute time t (seconds), and the clock-cycle within it.
//
// The cycle count (t−Epoch)·ClockHz often lands a hair off an integer
// boundary (e.g. (2.253580−2.2534)·5e6), so it is snapped to the
// nearest integer when within a tolerance. The tolerance is ULP-scaled,
// not absolute: the dominant float64 error is the quantization of t
// itself, worth ulp(t)·ClockHz cycles, which at high clock rates and
// large t−Epoch exceeds any fixed constant (at 5 GHz and t ≈ 1000 s it
// is ~1e-3 cycles), while a fixed floor large enough for that regime
// would swallow genuinely distinct instants at coarser clocks.
func (s *Store) TraceCycleAt(t float64) (tc int, cycle int, err error) {
	if t < s.Epoch {
		return 0, 0, fmt.Errorf("trace: time %.9fs before epoch %.9fs: %w", t, s.Epoch, ErrOutOfRange)
	}
	x := (t - s.Epoch) * s.ClockHz
	// Snap to an integer boundary when x is within a few ULPs of one,
	// accounting for both the rounding of t (and Epoch) at this clock
	// rate and the rounding of the product itself.
	tol := 4 * (ulp(math.Max(math.Abs(t), math.Abs(s.Epoch)))*s.ClockHz + ulp(x))
	if r := math.Round(x); math.Abs(x-r) <= tol {
		x = r
	}
	abs := int64(math.Floor(x))
	tc = int(abs / int64(s.M))
	cycle = int(abs % int64(s.M))
	if tc >= len(s.entries) {
		return 0, 0, fmt.Errorf("trace: time %.9fs beyond stored trace-cycles: %w", t, ErrOutOfRange)
	}
	return tc, cycle, nil
}

// ulp returns the distance from |x| to the next larger float64: the
// spacing of representable values at x's magnitude.
func ulp(x float64) float64 {
	x = math.Abs(x)
	return math.Nextafter(x, math.Inf(1)) - x
}

// TraceCycleStart returns the absolute start time (seconds) of
// trace-cycle tc.
func (s *Store) TraceCycleStart(tc int) float64 {
	return s.Epoch + float64(int64(tc)*int64(s.M))/s.ClockHz
}

// CycleTime returns the absolute time of clock-cycle `cycle` within
// trace-cycle tc.
func (s *Store) CycleTime(tc, cycle int) float64 {
	return s.Epoch + float64(int64(tc)*int64(s.M)+int64(cycle))/s.ClockHz
}

// Mismatch is a trace-cycle where two logs disagree.
type Mismatch struct {
	TraceCycle int
	KDiffers   bool // change counts differ (the wait-state-bug signature)
	TPDiffers  bool // timeprints differ with equal k (the refresh signature)
}

// Compare diffs two stores trace-cycle by trace-cycle (up to the
// shorter length) — the Section 5.2.2 hardware-vs-simulation check.
// Both stores must share their full trace parameters: not just (m, b)
// but also ClockHz and Epoch, because entry i of each store is compared
// positionally, which is only meaningful when trace-cycle i covers the
// same absolute time window in both. Stores recorded against different
// epochs or clocks must be rebased explicitly by the caller first.
func Compare(a, b *Store) ([]Mismatch, error) {
	if a.M != b.M || a.B != b.B {
		return nil, fmt.Errorf("trace: m %d/%d, b %d/%d: %w", a.M, b.M, a.B, b.B, ErrIncompatible)
	}
	if a.ClockHz != b.ClockHz {
		return nil, fmt.Errorf("trace: clock %g/%g Hz: %w", a.ClockHz, b.ClockHz, ErrIncompatible)
	}
	if a.Epoch != b.Epoch {
		return nil, fmt.Errorf("trace: epoch %.9f/%.9f s: %w", a.Epoch, b.Epoch, ErrIncompatible)
	}
	n := len(a.entries)
	if len(b.entries) < n {
		n = len(b.entries)
	}
	var out []Mismatch
	var kDiff, tpDiff int64
	for i := 0; i < n; i++ {
		ea, eb := a.entries[i], b.entries[i]
		mm := Mismatch{TraceCycle: i, KDiffers: ea.K != eb.K, TPDiffers: ea.K == eb.K && !ea.TP.Equal(eb.TP)}
		if mm.KDiffers {
			kDiff++
		}
		if mm.TPDiffers {
			tpDiff++
		}
		if mm.KDiffers || mm.TPDiffers {
			out = append(out, mm)
		}
	}
	// Attribute comparison outcomes to the left-hand store's registry
	// (the hardware side in the Section 5.2.2 usage).
	a.Obs.Counter(MetricCompareCycles).Add(int64(n))
	a.Obs.Counter(MetricCompareKMismatch).Add(kDiff)
	a.Obs.Counter(MetricCompareTPMismatch).Add(tpDiff)
	return out, nil
}

// FirstMismatch returns the earliest mismatch index, or -1.
func FirstMismatch(ms []Mismatch) int {
	if len(ms) == 0 {
		return -1
	}
	idx := ms[0].TraceCycle
	for _, m := range ms {
		if m.TraceCycle < idx {
			idx = m.TraceCycle
		}
	}
	return idx
}

// LogFromEncoding fills a store by abstracting recorded changes under
// an encoding; the recorder is truncated to whole trace-cycles.
func LogFromEncoding(name string, clockHz float64, enc *encoding.Encoding, rec *Recorder) (*Store, error) {
	st := NewStore(name, clockHz, enc.M(), enc.B())
	whole := rec.Cycles() / int64(enc.M()) * int64(enc.M())
	var inRange []int64
	for _, c := range rec.Changes() {
		if c < whole {
			inRange = append(inRange, c)
		}
	}
	entries, err := core.LogSignalTrace(enc, inRange, whole)
	if err != nil {
		return nil, err
	}
	if err := st.Append(entries...); err != nil {
		return nil, err
	}
	return st, nil
}

// ChangesInWindow filters change instants to [lo, hi) and rebases them
// to lo.
func ChangesInWindow(changes []int64, lo, hi int64) []int64 {
	i := sort.Search(len(changes), func(i int) bool { return changes[i] >= lo })
	var out []int64
	for ; i < len(changes) && changes[i] < hi; i++ {
		out = append(out, changes[i]-lo)
	}
	return out
}
