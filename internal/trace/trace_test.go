package trace

import (
	"errors"
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
)

func TestRecorderEdgeDetection(t *testing.T) {
	r := NewRecorder()
	for _, v := range []bool{true, true, false, false, true, true, true, false} {
		r.Sample(v)
	}
	got := r.Changes()
	want := []int64{2, 4, 7}
	if len(got) != len(want) {
		t.Fatalf("changes %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("changes %v", got)
		}
	}
	if r.Cycles() != 8 {
		t.Errorf("cycles %d", r.Cycles())
	}
}

func TestRecorderSampleChange(t *testing.T) {
	r := NewRecorder()
	r.SampleChange(false)
	r.SampleChange(true)
	r.SampleChange(false)
	if ch := r.Changes(); len(ch) != 1 || ch[0] != 1 {
		t.Fatalf("changes %v", ch)
	}
}

func TestSegment(t *testing.T) {
	r := NewRecorder()
	for i := int64(0); i < 20; i++ {
		r.SampleChange(i == 3 || i == 8 || i == 17 || i == 19)
	}
	segs := r.Segment(8) // 20 cycles -> 2 whole trace-cycles
	if len(segs) != 2 {
		t.Fatalf("%d segments", len(segs))
	}
	if !segs[0].Equal(core.SignalFromChanges(8, 3)) {
		t.Errorf("segment 0: %s", segs[0])
	}
	if !segs[1].Equal(core.SignalFromChanges(8, 0)) {
		t.Errorf("segment 1: %s", segs[1])
	}
}

func TestStoreAppendAndRetrieve(t *testing.T) {
	enc, err := encoding.Incremental(16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore("sig", 100e6, 16, 8)
	e0 := core.Log(enc, core.SignalFromChanges(16, 1))
	e1 := core.Log(enc, core.SignalFromChanges(16, 2, 3))
	if err := st.Append(e0, e1); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatal("len")
	}
	got, err := st.Entry(1)
	if err != nil || !got.Equal(e1) {
		t.Fatal("entry 1")
	}
	if _, err := st.Entry(2); err == nil {
		t.Error("out of range accepted")
	}
	if _, err := st.Entry(-1); err == nil {
		t.Error("negative accepted")
	}
}

func TestStoreValidatesEntries(t *testing.T) {
	st := NewStore("sig", 1e6, 16, 8)
	enc, _ := encoding.Incremental(16, 9, 4)
	bad := core.Log(enc, core.SignalFromChanges(16, 0)) // width 9 != 8
	if err := st.Append(bad); err == nil {
		t.Error("wrong width accepted")
	}
	if err := st.Append(core.LogEntry{TP: core.Log(encMust(t), core.NewSignal(16)).TP, K: 17}); err == nil {
		t.Error("k > m accepted")
	}
}

func encMust(t *testing.T) *encoding.Encoding {
	t.Helper()
	e, err := encoding.Incremental(16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTimeIndexing(t *testing.T) {
	st := NewStore("sig", 5e6, 1000, 24) // the CAN experiment geometry
	st.Epoch = 2.2534
	enc, err := encoding.Incremental(1000, 24, 2) // cheap depth for the test
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Append(core.Log(enc, core.NewSignal(1000))); err != nil {
			t.Fatal(err)
		}
	}
	// The paper's deadline 2.253580 s lies in trace-cycle 0 at clock
	// (2.253580-2.2534)*5e6 = 900.
	tc, cyc, err := st.TraceCycleAt(2.253580)
	if err != nil {
		t.Fatal(err)
	}
	if tc != 0 || cyc != 900 {
		t.Fatalf("tc=%d cyc=%d", tc, cyc)
	}
	if got := st.TraceCycleStart(1); math.Abs(got-2.2536) > 1e-12 {
		t.Errorf("start of tc1: %.9f", got)
	}
	if got := st.CycleTime(0, 823); math.Abs(got-2.2535646) > 1e-9 {
		t.Errorf("cycle 823 time: %.9f", got)
	}
	if _, _, err := st.TraceCycleAt(2.0); err == nil {
		t.Error("pre-epoch time accepted")
	}
	if _, _, err := st.TraceCycleAt(3.0); err == nil {
		t.Error("beyond-store time accepted")
	}
}

// fillStore appends n all-zero entries so time indexing has range.
func fillStore(t *testing.T, st *Store, n int) {
	t.Helper()
	enc, err := encoding.Incremental(st.M, st.B, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := st.Append(core.Log(enc, core.NewSignal(st.M))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTraceCycleAtBoundaries5MHz round-trips every exact clock-cycle
// boundary of the CAN experiment geometry (5 MHz, epoch 2.2534 s)
// through CycleTime and back. The boundary times are not exactly
// representable in float64, so TraceCycleAt must snap — the regression
// guarded here is misclassifying a boundary into the neighboring cycle.
func TestTraceCycleAtBoundaries5MHz(t *testing.T) {
	st := NewStore("can", 5e6, 1000, 24)
	st.Epoch = 2.2534
	fillStore(t, st, 5)
	for abs := 0; abs < 5*1000; abs += 7 {
		wantTC, wantCyc := abs/1000, abs%1000
		tc, cyc, err := st.TraceCycleAt(st.CycleTime(wantTC, wantCyc))
		if err != nil {
			t.Fatalf("cycle %d: %v", abs, err)
		}
		if tc != wantTC || cyc != wantCyc {
			t.Fatalf("cycle %d: got tc=%d cyc=%d, want tc=%d cyc=%d", abs, tc, cyc, wantTC, wantCyc)
		}
		// Mid-cycle times are unambiguous and must not snap forward.
		tc, cyc, err = st.TraceCycleAt(st.CycleTime(wantTC, wantCyc) + 0.5/st.ClockHz)
		if err != nil || tc != wantTC || cyc != wantCyc {
			t.Fatalf("mid-cycle %d: tc=%d cyc=%d err=%v", abs, tc, cyc, err)
		}
	}
}

// TestTraceCycleAtBoundaries5GHz is the high-rate regression: at 5 GHz
// with a large epoch, one ULP of the timestamp is worth ~5.7e-4 clock
// cycles — far beyond the old fixed 1e-6 tolerance — so boundary times
// used to land one cycle early. The ULP-scaled tolerance must absorb
// that quantization while mid-cycle times still resolve exactly.
func TestTraceCycleAtBoundaries5GHz(t *testing.T) {
	st := NewStore("ddr", 5e9, 8, 8)
	st.Epoch = 1000.0 // ulp(1000) * 5e9 ≈ 5.7e-4 cycles of timestamp noise
	fillStore(t, st, 64)
	for abs := 0; abs < 64*8; abs++ {
		wantTC, wantCyc := abs/8, abs%8
		tc, cyc, err := st.TraceCycleAt(st.CycleTime(wantTC, wantCyc))
		if err != nil {
			t.Fatalf("cycle %d: %v", abs, err)
		}
		if tc != wantTC || cyc != wantCyc {
			t.Fatalf("cycle %d: got tc=%d cyc=%d, want tc=%d cyc=%d", abs, tc, cyc, wantTC, wantCyc)
		}
		tc, cyc, err = st.TraceCycleAt(st.CycleTime(wantTC, wantCyc) + 0.5/st.ClockHz)
		if err != nil || tc != wantTC || cyc != wantCyc {
			t.Fatalf("mid-cycle %d: tc=%d cyc=%d err=%v", abs, tc, cyc, err)
		}
	}
}

func TestTraceTypedErrors(t *testing.T) {
	st := NewStore("sig", 5e6, 1000, 24)
	st.Epoch = 2.2534
	fillStore(t, st, 2)
	if _, _, err := st.TraceCycleAt(2.0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("pre-epoch: %v", err)
	}
	if _, _, err := st.TraceCycleAt(3.0); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("beyond store: %v", err)
	}
	if _, err := st.Entry(2); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("entry: %v", err)
	}
	if err := st.Append(core.LogEntry{TP: bitvec.New(23), K: 1}); !errors.Is(err, core.ErrWidth) {
		t.Errorf("width: %v", err)
	}
	if err := st.Append(core.LogEntry{TP: bitvec.New(24), K: 1001}); !errors.Is(err, core.ErrKRange) {
		t.Errorf("k range: %v", err)
	}
}

// TestCompareValidatesTraceParameters: positional comparison is only
// meaningful when both stores cover the same absolute time windows, so
// Compare must reject differing ClockHz or Epoch — not just (m, b).
func TestCompareValidatesTraceParameters(t *testing.T) {
	mk := func() *Store { return NewStore("s", 1e6, 16, 8) }
	cases := []struct {
		name   string
		mutate func(*Store)
	}{
		{"m", func(s *Store) { s.M = 32 }},
		{"b", func(s *Store) { s.B = 9 }},
		{"clock", func(s *Store) { s.ClockHz = 2e6 }},
		{"epoch", func(s *Store) { s.Epoch = 1.5 }},
	}
	for _, c := range cases {
		a, b := mk(), mk()
		c.mutate(b)
		if _, err := Compare(a, b); !errors.Is(err, ErrIncompatible) {
			t.Errorf("%s mismatch: got %v, want ErrIncompatible", c.name, err)
		}
	}
	if _, err := Compare(mk(), mk()); err != nil {
		t.Errorf("identical params rejected: %v", err)
	}
}

func TestCompareStores(t *testing.T) {
	enc, _ := encoding.Incremental(16, 8, 4)
	a := NewStore("hw", 1e6, 16, 8)
	b := NewStore("sim", 1e6, 16, 8)
	s0 := core.SignalFromChanges(16, 1, 2)
	s1 := core.SignalFromChanges(16, 5, 6)
	s1shift := core.SignalFromChanges(16, 5, 7) // same k, different cycles
	s2 := core.SignalFromChanges(16, 9)
	s2extra := core.SignalFromChanges(16, 9, 10) // different k

	_ = a.Append(core.Log(enc, s0), core.Log(enc, s1), core.Log(enc, s2))
	_ = b.Append(core.Log(enc, s0), core.Log(enc, s1shift), core.Log(enc, s2extra))

	ms, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("mismatches: %+v", ms)
	}
	if ms[0].TraceCycle != 1 || !ms[0].TPDiffers || ms[0].KDiffers {
		t.Errorf("mismatch 0: %+v", ms[0])
	}
	if ms[1].TraceCycle != 2 || !ms[1].KDiffers {
		t.Errorf("mismatch 1: %+v", ms[1])
	}
	if FirstMismatch(ms) != 1 {
		t.Error("first mismatch")
	}
	if FirstMismatch(nil) != -1 {
		t.Error("empty first mismatch")
	}
}

func TestCompareIncompatible(t *testing.T) {
	a := NewStore("a", 1e6, 16, 8)
	b := NewStore("b", 1e6, 32, 8)
	if _, err := Compare(a, b); err == nil {
		t.Error("incompatible stores accepted")
	}
}

func TestLogFromEncoding(t *testing.T) {
	enc, _ := encoding.Incremental(16, 8, 4)
	rec := NewRecorder()
	for i := int64(0); i < 35; i++ { // 2 whole trace-cycles + 3 cycles
		rec.SampleChange(i == 2 || i == 18 || i == 33)
	}
	st, err := LogFromEncoding("sig", 1e6, enc, rec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("%d entries", st.Len())
	}
	e0, _ := st.Entry(0)
	if !e0.Equal(core.Log(enc, core.SignalFromChanges(16, 2))) {
		t.Error("entry 0")
	}
	e1, _ := st.Entry(1)
	if !e1.Equal(core.Log(enc, core.SignalFromChanges(16, 2))) {
		t.Error("entry 1")
	}
}

func TestChangesInWindow(t *testing.T) {
	ch := []int64{5, 10, 15, 20, 25}
	got := ChangesInWindow(ch, 10, 21)
	want := []int64{0, 5, 10}
	if len(got) != len(want) {
		t.Fatalf("%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%v", got)
		}
	}
	if ChangesInWindow(ch, 26, 30) != nil {
		t.Error("empty window not nil")
	}
}
