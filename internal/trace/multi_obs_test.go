package trace

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
)

// tickMulti drives a MultiLogger with deterministic per-signal toggle
// patterns for the given number of cycles and returns the logger.
func tickMulti(t *testing.T, enc *encoding.Encoding, names []string, cycles int) *MultiLogger {
	t.Helper()
	ml, err := NewMultiLogger(enc, 1e6, names)
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]bool, len(names))
	for i := 0; i < cycles; i++ {
		for s := range levels {
			// Signal s toggles every s+2 cycles: distinct change counts
			// per signal, so per-signal attribution is distinguishable.
			if i%(s+2) == 0 {
				levels[s] = !levels[s]
			}
		}
		if _, err := ml.Tick(levels); err != nil {
			t.Fatal(err)
		}
	}
	return ml
}

// TestMultiStoreWireRoundTrip pushes every per-signal store of a
// MultiLogger through the wire format and back, checking the entries
// survive byte-exactly for each signal independently.
func TestMultiStoreWireRoundTrip(t *testing.T) {
	enc, err := encoding.Incremental(16, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"addr", "data", "irq"}
	ml := tickMulti(t, enc, names, 8*16)

	for _, name := range names {
		st, ok := ml.Store(name)
		if !ok {
			t.Fatalf("store %q missing", name)
		}
		if st.Len() != 8 {
			t.Fatalf("store %q has %d trace-cycles, want 8", name, st.Len())
		}
		var buf bytes.Buffer
		if err := core.WriteLog(&buf, st.M, st.B, st.Entries()); err != nil {
			t.Fatalf("store %q: %v", name, err)
		}
		m, b, entries, err := core.ReadLog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("store %q: %v", name, err)
		}
		if m != st.M || b != st.B || len(entries) != st.Len() {
			t.Fatalf("store %q: round-trip header (%d,%d,%d), want (%d,%d,%d)",
				name, m, b, len(entries), st.M, st.B, st.Len())
		}
		for i, e := range st.Entries() {
			if !e.Equal(entries[i]) {
				t.Errorf("store %q entry %d differs after round-trip", name, i)
			}
		}
	}
}

// TestMultiStorePerSignalMetricAttribution gives every per-signal
// store its own registry and checks appended-entry counts land on the
// right signal's registry — the per-signal attribution contract.
func TestMultiStorePerSignalMetricAttribution(t *testing.T) {
	enc, err := encoding.Incremental(8, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c"}
	ml, err := NewMultiLogger(enc, 1e6, names)
	if err != nil {
		t.Fatal(err)
	}
	regs := make([]*obs.Registry, len(names))
	for i, st := range ml.Stores() {
		regs[i] = obs.NewRegistry()
		st.Obs = regs[i]
	}
	levels := make([]bool, len(names))
	for i := 0; i < 5*8; i++ {
		levels[0] = i%2 == 0
		levels[1] = i%3 == 0
		if _, err := ml.Tick(levels); err != nil {
			t.Fatal(err)
		}
	}
	for i, st := range ml.Stores() {
		got := regs[i].Snapshot().Counters[MetricEntriesAppended]
		if got != int64(st.Len()) {
			t.Errorf("signal %q: registry counted %d entries, store holds %d", names[i], got, st.Len())
		}
		if st.Len() != 5 {
			t.Errorf("signal %q: %d trace-cycles, want 5", names[i], st.Len())
		}
	}
}

// TestMultiStoreCorruptionParity checks that a per-signal stream from a
// MultiLogger serializes byte-identically to a single-signal Logger fed
// the same wire levels — so corruption (truncation) of a multi-signal
// deployment's stream is detected and localized exactly as in the
// single-signal path.
func TestMultiStoreCorruptionParity(t *testing.T) {
	enc, err := encoding.Incremental(8, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"x", "y"}
	ml := tickMulti(t, enc, names, 6*8)

	single := core.NewLogger(enc)
	lvl := false
	for i := 0; i < 6*8; i++ {
		if i%2 == 0 { // signal 0's pattern in tickMulti
			lvl = !lvl
		}
		single.TickValue(lvl)
	}

	st, _ := ml.Store("x")
	var multiBuf, singleBuf bytes.Buffer
	if err := core.WriteLog(&multiBuf, enc.M(), enc.B(), st.Entries()); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteLog(&singleBuf, enc.M(), enc.B(), single.Entries()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(multiBuf.Bytes(), singleBuf.Bytes()) {
		t.Fatal("multi-logger stream differs from the single-signal stream for identical levels")
	}

	// Truncate both streams at every byte boundary: the two paths must
	// fail identically — same sentinel, same localized entry.
	raw := multiBuf.Bytes()
	for cut := 0; cut < len(raw); cut++ {
		_, _, _, errM := core.ReadLog(bytes.NewReader(raw[:cut]))
		_, _, _, errS := core.ReadLog(bytes.NewReader(singleBuf.Bytes()[:cut]))
		if (errM == nil) != (errS == nil) {
			t.Fatalf("cut %d: multi err %v, single err %v", cut, errM, errS)
		}
		if errM == nil {
			continue
		}
		if !errors.Is(errM, core.ErrCorrupt) {
			t.Fatalf("cut %d: multi error %v does not wrap ErrCorrupt", cut, errM)
		}
		if errM.Error() != errS.Error() {
			t.Fatalf("cut %d: localization differs:\n  multi:  %v\n  single: %v", cut, errM, errS)
		}
	}
}
