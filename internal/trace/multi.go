package trace

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/encoding"
)

// MultiLogger traces several wires in lockstep, one logging pipeline
// per signal — the deployment shape of Figure 3, where each traced
// on-chip signal gets its own agg-log instance but all share the clock
// and the trace-cycle grid, so their entries stay aligned and a
// postmortem query can correlate signals at the same trace-cycle.
type MultiLogger struct {
	enc     *encoding.Encoding
	names   []string
	loggers []*core.Logger
	stores  []*Store
}

// NewMultiLogger creates aligned loggers for the named wires.
func NewMultiLogger(enc *encoding.Encoding, clockHz float64, names []string) (*MultiLogger, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("trace: no signals")
	}
	seen := map[string]bool{}
	ml := &MultiLogger{enc: enc, names: append([]string(nil), names...)}
	for _, n := range names {
		if n == "" || seen[n] {
			return nil, fmt.Errorf("trace: duplicate or empty signal name %q", n)
		}
		seen[n] = true
		ml.loggers = append(ml.loggers, core.NewLogger(enc))
		ml.stores = append(ml.stores, NewStore(n, clockHz, enc.M(), enc.B()))
	}
	return ml, nil
}

// Tick consumes one clock-cycle of wire levels (len must match the
// signal count). It reports whether this tick closed a trace-cycle.
func (ml *MultiLogger) Tick(levels []bool) (bool, error) {
	if len(levels) != len(ml.loggers) {
		return false, fmt.Errorf("trace: %d levels for %d signals", len(levels), len(ml.loggers))
	}
	closed := false
	for i, lg := range ml.loggers {
		e, done := lg.TickValue(levels[i])
		if done {
			closed = true
			if err := ml.stores[i].Append(e); err != nil {
				return false, err
			}
		}
	}
	return closed, nil
}

// Store returns the per-signal store by name.
func (ml *MultiLogger) Store(name string) (*Store, bool) {
	for i, n := range ml.names {
		if n == name {
			return ml.stores[i], true
		}
	}
	return nil, false
}

// Stores returns all stores in declaration order.
func (ml *MultiLogger) Stores() []*Store {
	out := make([]*Store, len(ml.stores))
	copy(out, ml.stores)
	return out
}

// Names returns the traced signal names.
func (ml *MultiLogger) Names() []string {
	out := make([]string, len(ml.names))
	copy(out, ml.names)
	return out
}

// TotalLogRate returns the aggregate logging bit-rate of all signals.
func (ml *MultiLogger) TotalLogRate(clockHz float64) float64 {
	return float64(len(ml.loggers)) * core.LogRate(ml.enc.B(), ml.enc.M(), clockHz)
}
