package reconstruct

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/properties"
	"repro/internal/sat"
)

func randomEntry(r *rand.Rand, m int, enc interface {
	M() int
}) core.Signal {
	v := bitvec.New(m)
	for i := 0; i < m; i++ {
		if r.Intn(3) == 0 {
			v.Set(i, true)
		}
	}
	return core.SignalFromVector(v)
}

// TestSessionMatchesOneShot runs many (TP, k) queries against ONE
// session and checks every answer bit-exactly against a fresh one-shot
// Reconstructor.
func TestSessionMatchesOneShot(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		m := 10 + r.Intn(7)
		enc := mustEnc(t, m, 9+r.Intn(3), 4)
		sess, err := NewSession(enc, SessionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 12; q++ {
			entry := core.Log(enc, randomEntry(r, m, enc))
			got, exhausted, err := sess.Query(entry, nil, 0)
			if err != nil {
				t.Fatalf("trial %d query %d: %v", trial, q, err)
			}
			if !exhausted {
				t.Fatalf("trial %d query %d: not exhausted", trial, q)
			}
			rec, err := New(enc, entry, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, wantEx := rec.Enumerate(0)
			if !wantEx {
				t.Fatal("one-shot not exhausted")
			}
			gk, wk := sigKeySet(got), sigKeySet(want)
			if len(gk) != len(wk) {
				t.Fatalf("trial %d query %d: session %d signals, one-shot %d", trial, q, len(gk), len(wk))
			}
			for k := range wk {
				if !gk[k] {
					t.Fatalf("trial %d query %d: session missing %s", trial, q, k)
				}
			}
		}
	}
}

// TestSessionProperties checks property constraints arm and disarm per
// query: a constrained query must match the constrained one-shot path,
// and the following unconstrained query must be unaffected.
func TestSessionProperties(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	m := 14
	enc := mustEnc(t, m, 10, 4)
	sess, err := NewSession(enc, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cons := []Constraint{properties.Window{Lo: 2, Hi: 11}, properties.QuietBefore{D: 2}}
	for q := 0; q < 10; q++ {
		entry := core.Log(enc, randomEntry(r, m, enc))
		var use []Constraint
		if q%3 != 2 {
			use = cons[:1+q%2]
		}
		got, exhausted, err := sess.Query(entry, use, 0)
		if err != nil || !exhausted {
			t.Fatalf("query %d: exhausted=%v err=%v", q, exhausted, err)
		}
		rec, err := New(enc, entry, use, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, wantEx := rec.Enumerate(0)
		if !wantEx {
			t.Fatal("one-shot not exhausted")
		}
		gk, wk := sigKeySet(got), sigKeySet(want)
		if len(gk) != len(wk) {
			t.Fatalf("query %d (%d constraints): session %d signals, one-shot %d", q, len(use), len(gk), len(wk))
		}
		for k := range wk {
			if !gk[k] {
				t.Fatalf("query %d: session missing %s", q, k)
			}
		}
	}
}

// TestSessionKBounds: k beyond the ladder is rejected with ErrKRange
// (the service falls back to one-shot mode on that signal), k within
// works.
func TestSessionKBounds(t *testing.T) {
	m := 12
	enc := mustEnc(t, m, 9, 4)
	sess, err := NewSession(enc, SessionOptions{MaxK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sess.MaxK() != 3 || !sess.Supports(3) || sess.Supports(4) {
		t.Fatalf("MaxK=%d Supports(3)=%v Supports(4)=%v", sess.MaxK(), sess.Supports(3), sess.Supports(4))
	}
	truth := core.SignalFromChanges(m, 1, 4, 6, 9)
	entry := core.Log(enc, truth) // k = 4 > MaxK
	if _, _, err := sess.Query(entry, nil, 0); err == nil {
		t.Fatal("k beyond ladder accepted")
	}
	truth = core.SignalFromChanges(m, 1, 4, 6)
	entry = core.Log(enc, truth)
	sigs, exhausted, err := sess.Query(entry, nil, 0)
	if err != nil || !exhausted || len(sigs) == 0 {
		t.Fatalf("k=3 query failed: %d signals, exhausted=%v, err=%v", len(sigs), exhausted, err)
	}
	// k = 0 (empty signal) must also be queryable.
	entry = core.Log(enc, core.SignalFromChanges(m))
	sigs, exhausted, err = sess.Query(entry, nil, 0)
	if err != nil || !exhausted {
		t.Fatalf("k=0 query failed: exhausted=%v err=%v", exhausted, err)
	}
	found := false
	for _, s := range sigs {
		if s.K() == 0 {
			found = true
		}
	}
	if !found || len(sigs) != 1 {
		t.Fatalf("k=0 expected exactly the empty signal, got %d signals", len(sigs))
	}
}

// TestSessionCloneIndependence: a clone answers queries identically
// and independently, including after the original has accumulated
// state.
func TestSessionCloneIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	m := 13
	enc := mustEnc(t, m, 10, 4)
	sess, err := NewSession(enc, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the original.
	for q := 0; q < 4; q++ {
		entry := core.Log(enc, randomEntry(r, m, enc))
		if _, _, err := sess.Query(entry, nil, 0); err != nil {
			t.Fatal(err)
		}
	}
	clone := sess.Clone()
	entry := core.Log(enc, randomEntry(r, m, enc))
	a, aEx, err1 := sess.Query(entry, nil, 0)
	b, bEx, err2 := clone.Query(entry, nil, 0)
	if err1 != nil || err2 != nil || !aEx || !bEx {
		t.Fatalf("errs %v/%v exhausted %v/%v", err1, err2, aEx, bEx)
	}
	ak, bk := sigKeySet(a), sigKeySet(b)
	if len(ak) != len(bk) {
		t.Fatalf("original %d signals, clone %d", len(ak), len(bk))
	}
	for k := range ak {
		if !bk[k] {
			t.Fatalf("clone missing %s", k)
		}
	}
}

// TestSessionCheck exercises the incremental safety-property query.
func TestSessionCheck(t *testing.T) {
	m := 12
	enc := mustEnc(t, m, 9, 4)
	sess, err := NewSession(enc, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	truth := core.SignalFromChanges(m, 3, 7)
	entry := core.Log(enc, truth)
	st, err := sess.Check(entry, nil)
	if err != nil || st != sat.Sat {
		t.Fatalf("Check: %v, %v", st, err)
	}
	// QuietBefore(m) forbids all changes, contradicting k=2.
	st, err = sess.Check(entry, []Constraint{properties.QuietBefore{D: m}})
	if err != nil || st != sat.Unsat {
		t.Fatalf("Check with contradiction: %v, %v", st, err)
	}
	// And the contradiction must not stick.
	st, err = sess.Check(entry, nil)
	if err != nil || st != sat.Sat {
		t.Fatalf("Check after contradiction: %v, %v", st, err)
	}
}

// TestSessionInterruptRecovers: a fired deadline interrupts the query
// but must not poison the session for the next one. The binary
// encoding at m=64 is ambiguous enough that the exhaustive enumeration
// cannot finish before the pre-closed done channel interrupts it.
func TestSessionInterruptRecovers(t *testing.T) {
	enc := encoding.Binary(64)
	sess, err := NewSession(enc, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	truth := core.SignalFromChanges(64, 3, 9, 17, 30, 41, 50)
	entry := core.Log(enc, truth)
	done := make(chan struct{})
	close(done) // already expired
	_, exhausted, err := sess.EnumerateWithin(done, entry, nil, 0)
	if !errors.Is(err, sat.ErrInterrupted) {
		t.Fatalf("err = %v, want sat.ErrInterrupted", err)
	}
	if exhausted {
		t.Fatal("interrupted enumeration reported exhaustion")
	}
	// The next query on the SAME session must run to completion: the
	// interrupt flag was cleared and the blocking clauses dropped.
	small := core.SignalFromChanges(64, 5)
	sigs, exhausted, err := sess.Query(core.Log(enc, small), nil, 4)
	if err != nil || len(sigs) == 0 {
		t.Fatalf("session poisoned after interrupt: %d signals, exhausted=%v, err=%v", len(sigs), exhausted, err)
	}
}
