package reconstruct

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/sat"
)

// A pre-closed done channel interrupts the enumeration almost
// immediately; the binary encoding at m=64 is ambiguous enough that an
// exhaustive enumeration cannot finish first, so the typed interrupt
// error must surface.
func TestEnumerateWithinInterrupted(t *testing.T) {
	enc := encoding.Binary(64)
	truth := core.SignalFromChanges(64, 3, 9, 17, 30, 41, 50)
	rec, err := New(enc, core.Log(enc, truth), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	close(done)
	_, exhausted, err := rec.EnumerateWithin(done, 0)
	if !errors.Is(err, sat.ErrInterrupted) {
		t.Fatalf("err = %v, want sat.ErrInterrupted", err)
	}
	if exhausted {
		t.Fatal("interrupted enumeration reported exhaustion")
	}
}

// With no cancellation signal, EnumerateWithin matches Enumerate
// exactly and leaves the solver usable for the next query.
func TestEnumerateWithinCompletes(t *testing.T) {
	enc := mustEnc(t, 14, 10, 4)
	truth := core.SignalFromChanges(14, 2, 5, 11)
	entry := core.Log(enc, truth)

	rec, err := New(enc, entry, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigs, exhausted, err := rec.EnumerateWithin(make(chan struct{}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exhausted {
		t.Fatal("not exhausted")
	}
	ref, refExhausted := mustNew(t, enc, entry).Enumerate(0)
	if !refExhausted || len(ref) != len(sigs) {
		t.Fatalf("EnumerateWithin found %d, Enumerate found %d", len(sigs), len(ref))
	}
	sk, rk := sigKeySet(sigs), sigKeySet(ref)
	for k := range sk {
		if !rk[k] {
			t.Fatal("solution sets differ")
		}
	}
	if !sk[truth.Vector().Key()] {
		t.Fatal("true signal missing")
	}
}

func mustNew(t testing.TB, enc *encoding.Encoding, entry core.LogEntry) *Reconstructor {
	t.Helper()
	rec, err := New(enc, entry, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}
