package reconstruct

import (
	"context"
	"errors"
	"sort"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/properties"
	"repro/internal/sat"
)

// TestRouteTable pins the cost-model routing function: every edit to
// the table must update a case here deliberately.
func TestRouteTable(t *testing.T) {
	base := Features{
		M: 64, B: 13, K: 8,
		Rank: 13, Nullity: 51,
		Consistent: true, KFeasible: true,
		Evaluable: true,
	}
	cases := []struct {
		name string
		mut  func(f *Features)
		opts DispatchOptions
		want string
	}{
		{"inconsistent TP refutes", func(f *Features) { f.Consistent = false }, DispatchOptions{}, RouteRefuted},
		{"infeasible k refutes", func(f *Features) { f.KFeasible = false }, DispatchOptions{}, RouteRefuted},
		{"refuted beats pinned", func(f *Features) { f.Consistent = false; f.Nullity = 0 }, DispatchOptions{}, RouteRefuted},
		{"nullity 0 is pinned", func(f *Features) { f.Nullity = 0; f.Rank = 64 }, DispatchOptions{}, RoutePinned},
		{"small k no props decodes", func(f *Features) { f.K = 4 }, DispatchOptions{}, RouteDecode},
		{"small k with props skips decode", func(f *Features) { f.K = 4; f.Props = 1; f.SessionOK = true }, DispatchOptions{}, RouteSession},
		{"small nullity goes brute", func(f *Features) { f.Nullity = 12 }, DispatchOptions{}, RouteBrute},
		{"brute needs evaluable props", func(f *Features) { f.Nullity = 12; f.Props = 1; f.Evaluable = false; f.SessionOK = true }, DispatchOptions{}, RouteSession},
		{"nullity budget is tunable", func(f *Features) { f.Nullity = 12 }, DispatchOptions{MaxNullity: 8}, RouteSAT},
		{"session-eligible reuses the warm solver", func(f *Features) { f.SessionOK = true }, DispatchOptions{}, RouteSession},
		{"workers split cubes", func(f *Features) { f.Workers = 4 }, DispatchOptions{}, RouteParallel},
		{"residual is serial SAT", func(*Features) {}, DispatchOptions{}, RouteSAT},
	}
	for _, tc := range cases {
		f := base
		tc.mut(&f)
		if got := Route(f, tc.opts); got != tc.want {
			t.Errorf("%s: Route = %s, want %s (features %+v)", tc.name, got, tc.want, f)
		}
	}
}

func TestKnownOracle(t *testing.T) {
	for _, name := range []string{"", "auto", "sat", "sat-par", "sat-inc", "decode", "brute", "exhaustive"} {
		if !KnownOracle(name) {
			t.Errorf("KnownOracle(%q) = false", name)
		}
	}
	for _, name := range []string{"pinned", "refuted", "dispatch", "cvc5"} {
		if KnownOracle(name) {
			t.Errorf("KnownOracle(%q) = true", name)
		}
	}
	if _, err := NewDispatcher(encoding.OneHot(8), DispatchOptions{Force: "cvc5"}); err == nil {
		t.Error("unknown Force accepted")
	}
}

func sigKeys(sigs []core.Signal) []string {
	keys := make([]string, len(sigs))
	for i, s := range sigs {
		keys[i] = s.String()
	}
	sort.Strings(keys)
	return keys
}

// TestDispatchMatchesSerialSAT is the dispatcher soundness property:
// whatever backend the cost model picks, the answer is bit-exact with
// the serial SAT oracle — across geometries that exercise every route
// (pinned, decode, brute, session, sat) and property-bearing requests.
func TestDispatchMatchesSerialSAT(t *testing.T) {
	type geometry struct {
		name string
		enc  func(t *testing.T) *encoding.Encoding
	}
	geoms := []geometry{
		{"inc-16x9", func(t *testing.T) *encoding.Encoding {
			enc, err := encoding.Incremental(16, 9, 4)
			if err != nil {
				t.Fatal(err)
			}
			return enc
		}},
		{"onehot-20", func(*testing.T) *encoding.Encoding { return encoding.OneHot(20) }},
		{"inc-64x13", func(t *testing.T) *encoding.Encoding {
			enc, err := encoding.Incremental(64, 13, 4)
			if err != nil {
				t.Fatal(err)
			}
			return enc
		}},
	}
	conSets := [][]Constraint{
		nil,
		{properties.MinGap{Gap: 2}},
		{properties.Dk{D: 10, K: 1}},
	}
	for _, g := range geoms {
		enc := g.enc(t)
		m := enc.M()
		disp, err := NewDispatcher(enc, DispatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ref := NewSATOracle(enc, Options{})
		truths := []core.Signal{
			core.SignalFromChanges(m, 2, 5),
			core.SignalFromChanges(m, 1, 4, 9, 12),
		}
		if m <= 24 {
			// Larger change counts stay affordable only while the
			// candidate space is small (solution counts grow like
			// C(m,k)/2^b and every model is one solve).
			truths = append(truths, core.SignalFromChanges(m, 0, 3, 7, 8, 11, 14))
		}
		for _, truth := range truths {
			entry := core.Log(enc, truth)
			for _, cons := range conSets {
				got, gotEx, err := disp.Enumerate(context.Background(), entry, cons, 0)
				if err != nil {
					t.Fatalf("%s truth=%s cons=%v: dispatch: %v", g.name, truth, cons, err)
				}
				want, wantEx, err := ref.Enumerate(context.Background(), entry, cons, 0)
				if err != nil {
					t.Fatalf("%s truth=%s cons=%v: sat: %v", g.name, truth, cons, err)
				}
				if gotEx != wantEx {
					t.Fatalf("%s truth=%s cons=%v: exhausted %v vs %v", g.name, truth, cons, gotEx, wantEx)
				}
				gk, wk := sigKeys(got), sigKeys(want)
				if len(gk) != len(wk) {
					t.Fatalf("%s truth=%s cons=%v: %d candidates vs %d", g.name, truth, cons, len(gk), len(wk))
				}
				for i := range gk {
					if gk[i] != wk[i] {
						t.Fatalf("%s truth=%s cons=%v: candidate sets diverge at %d: %s vs %s", g.name, truth, cons, i, gk[i], wk[i])
					}
				}
			}
		}
	}
}

// A rank-pinned system (one-hot encoding: nullity 0) must be answered
// by linear algebra alone — the SAT solver is never constructed, let
// alone called.
func TestDispatchRankPinnedNeverSAT(t *testing.T) {
	enc := encoding.OneHot(24)
	reg := obs.NewRegistry()
	disp, err := NewDispatcher(enc, DispatchOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	truth := core.SignalFromChanges(24, 3, 8, 19)
	sigs, exhausted, dec, err := disp.EnumerateRouted(context.Background(), core.Log(enc, truth), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exhausted || len(sigs) != 1 || !sigs[0].Equal(truth) {
		t.Fatalf("pinned system: got %v (exhausted=%v), want exactly the truth", sigs, exhausted)
	}
	if dec.Chosen != RoutePinned || dec.FellBack {
		t.Fatalf("decision %+v, want pinned without fallback", dec)
	}
	snap := reg.Snapshot()
	if n := snap.Counters[sat.MetricSolveCalls]; n != 0 {
		t.Fatalf("%s = %d on a rank-pinned system, want 0", sat.MetricSolveCalls, n)
	}
	if n := snap.Counters[MetricDispatchChosenPrefix+RoutePinned]; n != 1 {
		t.Fatalf("chosen.pinned = %d, want 1", n)
	}
}

// A timeprint outside the column space of A is refuted during feature
// extraction: the answer is an exhausted empty set with no backend run.
func TestDispatchRefutedInline(t *testing.T) {
	// Four timestamps of width 8 span a 4-dimensional subspace: most
	// timeprints are inconsistent.
	enc, err := encoding.FromTimestamps([]bitvec.Vector{
		bitvec.FromOnes(8, 0),
		bitvec.FromOnes(8, 1),
		bitvec.FromOnes(8, 2),
		bitvec.FromOnes(8, 3),
	}, "explicit")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	disp, err := NewDispatcher(enc, DispatchOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	entry := core.LogEntry{TP: bitvec.FromOnes(8, 7), K: 1} // bit 7 unreachable
	sigs, exhausted, dec, err := disp.EnumerateRouted(context.Background(), entry, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 0 || !exhausted {
		t.Fatalf("got %v (exhausted=%v), want an exhausted empty set", sigs, exhausted)
	}
	if dec.Chosen != RouteRefuted || dec.Features.Consistent {
		t.Fatalf("decision %+v, want an inline refutation", dec)
	}
	if n := reg.Snapshot().Counters[sat.MetricSolveCalls]; n != 0 {
		t.Fatalf("%s = %d on a refuted request, want 0", sat.MetricSolveCalls, n)
	}
}

// A forced backend that cannot express the request falls back to
// serial SAT, counts the mispredict, and still answers exactly.
func TestDispatchForcedFallback(t *testing.T) {
	enc, err := encoding.Incremental(16, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	disp, err := NewDispatcher(enc, DispatchOptions{Force: "decode", Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	truth := core.SignalFromChanges(16, 1, 3, 6, 9, 12, 14) // k=6 > decode.MaxK
	sigs, exhausted, dec, err := disp.EnumerateRouted(context.Background(), core.Log(enc, truth), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exhausted {
		t.Fatal("fallback enumeration not exhausted")
	}
	found := false
	for _, s := range sigs {
		if s.Equal(truth) {
			found = true
		}
	}
	if !found {
		t.Fatalf("truth missing from fallback candidates %v", sigs)
	}
	if dec.Chosen != RouteDecode || !dec.FellBack || dec.Route != RouteSAT {
		t.Fatalf("decision %+v, want decode falling back to sat", dec)
	}
	if n := reg.Snapshot().Counters[MetricDispatchFallback]; n != 1 {
		t.Fatalf("fallback counter = %d, want 1", n)
	}
}

// Malformed requests keep their typed errors through the dispatcher —
// no fallback masks them.
func TestDispatchShapeErrors(t *testing.T) {
	enc, err := encoding.Incremental(16, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := NewDispatcher(enc, DispatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, _, err := disp.EnumerateRouted(ctx, core.LogEntry{TP: bitvec.FromOnes(5, 0), K: 1}, nil, 0); !errors.Is(err, core.ErrWidth) {
		t.Fatalf("wrong-width entry: %v, want core.ErrWidth", err)
	}
	if _, _, _, err := disp.EnumerateRouted(ctx, core.LogEntry{TP: bitvec.FromOnes(9, 0), K: 99}, nil, 0); !errors.Is(err, core.ErrKRange) {
		t.Fatalf("out-of-range k: %v, want core.ErrKRange", err)
	}
}
