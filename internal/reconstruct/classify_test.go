package reconstruct

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/properties"
)

func negatable(t *testing.T, p properties.Property) NegatableProperty {
	t.Helper()
	n, ok := properties.Negate(p)
	if !ok {
		t.Fatalf("property %s not negatable", p)
	}
	return NegatableProperty{Prop: p, Negation: n}
}

// classifyRef computes the verdict by full enumeration — the oracle.
func classifyRef(t *testing.T, enc *encoding.Encoding, entry core.LogEntry, p properties.Property) Verdict {
	t.Helper()
	rec, err := New(enc, entry, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigs, exhausted, err := rec.EnumerateStrict(0)
	if err != nil {
		t.Fatal(err)
	}
	if !exhausted {
		t.Fatal("oracle enumeration incomplete")
	}
	if len(sigs) == 0 {
		return NoCandidates
	}
	sat, viol := 0, 0
	for _, s := range sigs {
		if p.Holds(s) {
			sat++
		} else {
			viol++
		}
	}
	switch {
	case viol == 0:
		return CertainlySatisfies
	case sat == 0:
		return CertainlyViolates
	default:
		return Inconclusive
	}
}

func TestClassifyMatchesEnumeration(t *testing.T) {
	enc, err := encoding.Incremental(16, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	props := []properties.Property{
		properties.Dk{D: 8, K: 1},
		properties.Dk{D: 8, K: 3},
		properties.ChangeBefore{D: 4},
		properties.QuietBefore{D: 4},
		properties.Window{Lo: 0, Hi: 8},
		properties.CountBetween{Lo: 4, Hi: 12, Min: 2, Max: -1},
		properties.CountBetween{Lo: 4, Hi: 12, Min: 0, Max: 1},
	}
	signals := []core.Signal{
		core.SignalFromChanges(16, 2, 3),
		core.SignalFromChanges(16, 9, 10, 11),
		core.SignalFromChanges(16, 1, 6, 12),
		core.NewSignal(16),
	}
	for _, truth := range signals {
		entry := core.Log(enc, truth)
		for _, p := range props {
			want := classifyRef(t, enc, entry, p)
			got, err := Classify(enc, entry, negatable(t, p), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("signal %s, property %s: classify %v, oracle %v", truth, p, got, want)
			}
		}
	}
}

func TestClassifyNoCandidates(t *testing.T) {
	enc, err := encoding.Incremental(16, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	// k = 0 with a nonzero TP: impossible entry.
	entry := core.LogEntry{TP: bitvec.FromOnes(9, 0), K: 0}
	got, err := Classify(enc, entry, negatable(t, properties.Dk{D: 8, K: 1}), Options{})
	if err != nil || got != NoCandidates {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestClassifyNeedsNegation(t *testing.T) {
	enc, _ := encoding.Incremental(16, 9, 4)
	entry := core.Log(enc, core.SignalFromChanges(16, 1))
	if _, err := Classify(enc, entry, NegatableProperty{Prop: properties.Dk{D: 8, K: 1}}, Options{}); err == nil {
		t.Error("missing negation accepted")
	}
}

// Both polarities of a verdict must be decided against ONE SAT
// instance: the O(m³) A-structure encoding is built once and the
// polarities toggle as guarded clause groups. Regression for the
// Classify-calls-New-twice bug.
func TestClassifyBuildsOneInstance(t *testing.T) {
	enc, err := encoding.Incremental(16, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	entry := core.Log(enc, core.SignalFromChanges(16, 2, 3, 9))
	reg := obs.NewRegistry()
	got, err := Classify(enc, entry, negatable(t, properties.Dk{D: 8, K: 1}), Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if want := classifyRef(t, enc, entry, properties.Dk{D: 8, K: 1}); got != want {
		t.Fatalf("verdict %v, oracle %v", got, want)
	}
	if n := reg.Snapshot().Counters[MetricInstances]; n != 1 {
		t.Fatalf("%s = %d, want 1 (both polarities must share one Reconstructor)", MetricInstances, n)
	}
}

// A solver budget expiring mid-check is not an error — the verdict is
// merely Undecided. Regression for the everything-maps-to-Inconclusive
// bug.
func TestClassifyBudgetUndecided(t *testing.T) {
	enc, err := encoding.Incremental(64, 13, 4)
	if err != nil {
		t.Fatal(err)
	}
	entry := core.Log(enc, core.SignalFromChanges(64, 3, 11, 20, 31, 40, 44, 51, 60))
	got, err := Classify(enc, entry, negatable(t, properties.Dk{D: 32, K: 4}), Options{MaxConflicts: 1})
	if err != nil {
		t.Fatalf("budget expiry surfaced as an error: %v", err)
	}
	if got != Undecided {
		t.Fatalf("verdict %v, want Undecided under a 1-conflict budget", got)
	}
}

// Structural failures still propagate: a malformed entry is an error,
// never a quiet Inconclusive.
func TestClassifyStructuralErrorPropagates(t *testing.T) {
	enc, _ := encoding.Incremental(16, 9, 4)
	entry := core.LogEntry{TP: bitvec.FromOnes(5, 0), K: 1} // wrong width
	if _, err := Classify(enc, entry, negatable(t, properties.Dk{D: 8, K: 1}), Options{}); err == nil {
		t.Error("malformed entry classified without error")
	}
}

func TestNegateCoverage(t *testing.T) {
	// Negatable properties: complement semantics verified exhaustively.
	pairs := []properties.Property{
		properties.Dk{D: 6, K: 2},
		properties.Dk{D: 6, K: 0},
		properties.ChangeBefore{D: 5},
		properties.QuietBefore{D: 5},
		properties.QuietBefore{D: 0},
		properties.Window{Lo: 2, Hi: 7},
		properties.CountBetween{Lo: 1, Hi: 8, Min: 0, Max: 2},
		properties.CountBetween{Lo: 1, Hi: 8, Min: 3, Max: -1},
	}
	for _, p := range pairs {
		n, ok := properties.Negate(p)
		if !ok {
			t.Errorf("%s not negatable", p)
			continue
		}
		for mask := uint64(0); mask < 1<<10; mask++ {
			s := core.SignalFromVector(bitvec.FromUint(mask, 10))
			if p.Holds(s) == n.Holds(s) {
				t.Fatalf("%s and %s agree on %s", p, n, s)
			}
		}
	}
	// Non-negatable: general CountBetween and structural properties.
	for _, p := range []properties.Property{
		properties.CountBetween{Lo: 0, Hi: 8, Min: 2, Max: 4},
		properties.P2{},
		properties.PairedChanges{},
	} {
		if _, ok := properties.Negate(p); ok {
			t.Errorf("%s unexpectedly negatable", p)
		}
	}
}
