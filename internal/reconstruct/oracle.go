package reconstruct

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/sat"
)

// ErrUnsupported reports that an oracle cannot express a request it
// was handed — k beyond the algebraic decoder's range, a nullity past
// the brute-force budget, a constraint that cannot be selector-guarded
// on a session solver. It is errors.Is-matchable; the dispatcher
// treats it as "pick another backend", never as a request failure.
var ErrUnsupported = errors.New("reconstruct: oracle does not support this request")

// Oracle is one sound Signal Reconstruction backend. All six engines
// in the repository — algebraic decode, serial SAT, cube-split
// parallel SAT, the incremental session solver, GF(2) brute force and
// exhaustive concretization — implement it, as does the cost-model
// Dispatcher that routes between them.
//
// The error contract is typed and uniform across implementations:
//
//   - core.ErrWidth / core.ErrKRange: the request is malformed for the
//     encoding (wrong timeprint width, k outside [0, m]). No backend
//     can answer it.
//   - ErrUnsupported: the request is well-formed but outside this
//     oracle's scope. Another backend (serial SAT always qualifies)
//     must be used; results accompanying it are meaningless.
//   - sat.ErrBudget / sat.ErrInterrupted: the search stopped early
//     (conflict budget, ctx cancellation). Signals returned so far are
//     valid but no completeness claim holds.
//
// Enumerate's exhausted result is true only when the full candidate
// space was covered; implementations fail closed — a truncated search
// always carries an explaining error. ctx must be non-nil.
type Oracle interface {
	// Name identifies the backend in reports and metrics.
	Name() string
	// First finds one candidate signal. Status Unsat proves none
	// exists; Unknown carries a budget/interrupt error.
	First(ctx context.Context, entry core.LogEntry, constraints []Constraint) (core.Signal, sat.Status, error)
	// Enumerate finds up to limit candidates (limit <= 0: all).
	Enumerate(ctx context.Context, entry core.LogEntry, constraints []Constraint, limit int) ([]core.Signal, bool, error)
	// Count counts candidates up to max (max <= 0: all); exhausted
	// reports whether the count is the complete total.
	Count(ctx context.Context, entry core.LogEntry, constraints []Constraint, max int) (int, bool, error)
	// Check decides whether any candidate exists (the safety-property
	// query): Sat, Unsat, or Unknown with a budget/interrupt error.
	Check(ctx context.Context, entry core.LogEntry, constraints []Constraint) (sat.Status, error)
}

// Oracle/dispatch metric names.
const (
	// MetricOracleSessionReuse counts queries answered on a
	// SessionOracle's warm retained solver; MetricOracleSessionClone
	// counts queries that found it busy and ran on a prototype clone.
	MetricOracleSessionReuse = "reconstruct.oracle.session.reuse"
	MetricOracleSessionClone = "reconstruct.oracle.session.clone"
	// MetricDispatchChosenPrefix + route counts requests the dispatcher
	// sent to that route; MetricDispatchFallback counts mispredicts —
	// requests whose chosen backend returned ErrUnsupported and were
	// re-run on serial SAT.
	MetricDispatchChosenPrefix = "reconstruct.dispatch.chosen."
	MetricDispatchFallback     = "reconstruct.dispatch.fallback"
	// SpanDispatch times routed requests end to end (feature
	// extraction, the chosen backend, any fallback).
	SpanDispatch = "reconstruct.dispatch"
)

// validateShape applies the width/k-range checks every backend shares.
func validateShape(enc *encoding.Encoding, entry core.LogEntry) error {
	if entry.TP.Width() != enc.B() {
		return fmt.Errorf("reconstruct: timeprint width %d, want %d: %w", entry.TP.Width(), enc.B(), core.ErrWidth)
	}
	if entry.K < 0 || entry.K > enc.M() {
		return fmt.Errorf("reconstruct: k=%d outside [0,%d]: %w", entry.K, enc.M(), core.ErrKRange)
	}
	return nil
}

// holdsEvaluable is the concrete-evaluation side of a constraint:
// every temporal property (internal/properties) can decide itself
// against a materialized signal, which lets the non-SAT backends
// filter candidates without a CNF encoding.
type holdsEvaluable interface {
	Holds(core.Signal) bool
}

// evaluableAll reports whether every constraint supports concrete
// evaluation.
func evaluableAll(cons []Constraint) bool {
	for _, c := range cons {
		if _, ok := c.(holdsEvaluable); !ok {
			return false
		}
	}
	return true
}

// holdsAll evaluates all constraints against a signal. Callers must
// have established evaluableAll first.
func holdsAll(cons []Constraint, s core.Signal) bool {
	for _, c := range cons {
		if !c.(holdsEvaluable).Holds(s) {
			return false
		}
	}
	return true
}

// errUnsupportedConstraints is the shared refusal for backends that
// can only filter concretely-evaluable constraints.
func errUnsupportedConstraints(name string) error {
	return fmt.Errorf("%s cannot evaluate a constraint without Holds: %w", name, ErrUnsupported)
}

// firstVia derives First from Enumerate(limit=1): every strict
// enumeration either finds a model, proves exhaustion, or errors.
func firstVia(o Oracle, ctx context.Context, entry core.LogEntry, cons []Constraint) (core.Signal, sat.Status, error) {
	sigs, exhausted, err := o.Enumerate(ctx, entry, cons, 1)
	switch {
	case len(sigs) > 0:
		return sigs[0], sat.Sat, nil
	case err != nil:
		return core.Signal{}, sat.Unknown, err
	case exhausted:
		return core.Signal{}, sat.Unsat, nil
	}
	return core.Signal{}, sat.Unknown, fmt.Errorf("reconstruct: %s enumeration incomplete without error", o.Name())
}

// countVia derives Count from Enumerate.
func countVia(o Oracle, ctx context.Context, entry core.LogEntry, cons []Constraint, max int) (int, bool, error) {
	sigs, exhausted, err := o.Enumerate(ctx, entry, cons, max)
	return len(sigs), exhausted, err
}

// checkVia derives Check from First.
func checkVia(o Oracle, ctx context.Context, entry core.LogEntry, cons []Constraint) (sat.Status, error) {
	_, st, err := o.First(ctx, entry, cons)
	return st, err
}

// --- serial / parallel SAT ---

// satOracle is the one-shot CNF backend: each request builds a fresh
// Reconstructor (GF(2) presolve + XOR rows + cardinality ladder) and
// enumerates under the request context. workers > 1 switches the
// enumeration to the cube-split parallel portfolio.
type satOracle struct {
	enc     *encoding.Encoding
	opts    Options
	workers int
}

// NewSATOracle returns the serial one-shot SAT backend — the always-
// sound reference every other oracle is checked against.
func NewSATOracle(enc *encoding.Encoding, opts Options) Oracle {
	return &satOracle{enc: enc, opts: opts, workers: 1}
}

// NewParallelSATOracle returns the cube-split parallel SAT backend
// (workers <= 0: GOMAXPROCS).
func NewParallelSATOracle(enc *encoding.Encoding, workers int, opts Options) Oracle {
	if workers <= 0 {
		workers = 0 // ParallelEnumerate resolves GOMAXPROCS itself
	}
	return &satOracle{enc: enc, opts: opts, workers: workers}
}

func (o *satOracle) Name() string {
	if o.workers != 1 {
		return "sat-par"
	}
	return "sat"
}

func (o *satOracle) Enumerate(ctx context.Context, entry core.LogEntry, cons []Constraint, limit int) ([]core.Signal, bool, error) {
	r, err := New(o.enc, entry, cons, o.opts)
	if err != nil {
		return nil, false, err
	}
	if o.workers != 1 {
		stop := r.builder.S.InterruptOnDone(ctx.Done())
		defer stop()
		return r.EnumerateParallelStrict(limit, o.workers)
	}
	return r.EnumerateWithin(ctx.Done(), limit)
}

func (o *satOracle) First(ctx context.Context, entry core.LogEntry, cons []Constraint) (core.Signal, sat.Status, error) {
	return firstVia(o, ctx, entry, cons)
}

func (o *satOracle) Count(ctx context.Context, entry core.LogEntry, cons []Constraint, max int) (int, bool, error) {
	return countVia(o, ctx, entry, cons, max)
}

func (o *satOracle) Check(ctx context.Context, entry core.LogEntry, cons []Constraint) (sat.Status, error) {
	return checkVia(o, ctx, entry, cons)
}

// --- algebraic decode ---

// decodeOracle wraps internal/decode: meet-in-the-middle syndrome
// decoding for k <= decode.MaxK. Constraints are applied by concrete
// filtering (Holds), never encoded, so a constraint without Holds is
// ErrUnsupported. The decoder's lazily built pair index is shared
// across requests under a mutex.
type decodeOracle struct {
	enc *encoding.Encoding
	mu  sync.Mutex
	dec *decode.Decoder
}

// NewDecodeOracle returns the algebraic decoding backend (k <= 4).
func NewDecodeOracle(enc *encoding.Encoding) Oracle {
	return &decodeOracle{enc: enc, dec: decode.New(enc)}
}

func (o *decodeOracle) Name() string { return "decode" }

func (o *decodeOracle) Enumerate(ctx context.Context, entry core.LogEntry, cons []Constraint, limit int) ([]core.Signal, bool, error) {
	if err := validateShape(o.enc, entry); err != nil {
		return nil, false, err
	}
	if entry.K > decode.MaxK {
		return nil, false, fmt.Errorf("decode handles k <= %d, got %d: %w", decode.MaxK, entry.K, ErrUnsupported)
	}
	if !evaluableAll(cons) {
		return nil, false, errUnsupportedConstraints("decode")
	}
	o.mu.Lock()
	sigs, err := o.dec.Decode(entry)
	o.mu.Unlock()
	if err != nil {
		return nil, false, err
	}
	out := make([]core.Signal, 0, len(sigs))
	for _, s := range sigs {
		if !holdsAll(cons, s) {
			continue
		}
		out = append(out, s)
		if limit > 0 && len(out) >= limit && len(out) < len(sigs) {
			return out, false, nil
		}
	}
	return out, true, nil
}

func (o *decodeOracle) First(ctx context.Context, entry core.LogEntry, cons []Constraint) (core.Signal, sat.Status, error) {
	return firstVia(o, ctx, entry, cons)
}

func (o *decodeOracle) Count(ctx context.Context, entry core.LogEntry, cons []Constraint, max int) (int, bool, error) {
	// The unconstrained count has a dedicated non-materializing path.
	if len(cons) == 0 && max <= 0 {
		if err := validateShape(o.enc, entry); err != nil {
			return 0, false, err
		}
		if entry.K > decode.MaxK {
			return 0, false, fmt.Errorf("decode handles k <= %d, got %d: %w", decode.MaxK, entry.K, ErrUnsupported)
		}
		o.mu.Lock()
		n, err := o.dec.Count(entry)
		o.mu.Unlock()
		return n, err == nil, err
	}
	return countVia(o, ctx, entry, cons, max)
}

func (o *decodeOracle) Check(ctx context.Context, entry core.LogEntry, cons []Constraint) (sat.Status, error) {
	return checkVia(o, ctx, entry, cons)
}

// --- GF(2) brute force ---

// bruteOracle solves by linear algebra alone: Gaussian elimination
// yields the solution coset, whose 2^nullity points are walked and
// filtered by |x| = k and the constraints. It also serves the two
// degenerate cases the dispatcher answers without search — an
// inconsistent system (no solutions) and a rank-pinned one (nullity 0,
// a single candidate read off the echelon form).
type bruteOracle struct {
	enc        *encoding.Encoding
	maxNullity int
}

// NewBruteOracle returns the GF(2) coset-enumeration backend;
// maxNullity bounds the 2^nullity walk (default 28 when <= 0).
func NewBruteOracle(enc *encoding.Encoding, maxNullity int) Oracle {
	if maxNullity <= 0 {
		maxNullity = 28
	}
	return &bruteOracle{enc: enc, maxNullity: maxNullity}
}

func (o *bruteOracle) Name() string { return "brute" }

func (o *bruteOracle) Enumerate(ctx context.Context, entry core.LogEntry, cons []Constraint, limit int) ([]core.Signal, bool, error) {
	if err := validateShape(o.enc, entry); err != nil {
		return nil, false, err
	}
	if !evaluableAll(cons) {
		return nil, false, errUnsupportedConstraints("brute force")
	}
	sys, ok := o.enc.Matrix().Solve(entry.TP)
	if !ok {
		return nil, true, nil // TP outside the column space: no signals
	}
	if sys.Nullity() > o.maxNullity {
		return nil, false, fmt.Errorf("brute force refuses nullity %d > %d: %w", sys.Nullity(), o.maxNullity, ErrUnsupported)
	}
	done := ctx.Done()
	var out []core.Signal
	interrupted, truncated := false, false
	visited := 0
	sys.EnumerateSolutions(o.maxNullity, func(x bitvec.Vector) bool {
		if visited++; visited&1023 == 0 {
			select {
			case <-done:
				interrupted = true
				return false
			default:
			}
		}
		if x.PopCount() != entry.K {
			return true
		}
		s := core.SignalFromVector(x)
		if !holdsAll(cons, s) {
			return true
		}
		out = append(out, s)
		if limit > 0 && len(out) >= limit {
			truncated = true
			return false
		}
		return true
	})
	if interrupted {
		return out, false, fmt.Errorf("reconstruct: brute enumeration interrupted: %w", sat.ErrInterrupted)
	}
	return out, !truncated, nil
}

func (o *bruteOracle) First(ctx context.Context, entry core.LogEntry, cons []Constraint) (core.Signal, sat.Status, error) {
	return firstVia(o, ctx, entry, cons)
}

func (o *bruteOracle) Count(ctx context.Context, entry core.LogEntry, cons []Constraint, max int) (int, bool, error) {
	return countVia(o, ctx, entry, cons, max)
}

func (o *bruteOracle) Check(ctx context.Context, entry core.LogEntry, cons []Constraint) (sat.Status, error) {
	return checkVia(o, ctx, entry, cons)
}

// --- exhaustive concretization ---

// exhaustiveOracle scans all 2^m signals (core.Concretize). It exists
// as an independent ground truth for small m, not as a route the cost
// model ever prefers — the brute oracle dominates it whenever both
// apply (2^nullity <= 2^m).
type exhaustiveOracle struct {
	enc  *encoding.Encoding
	maxM int
}

// NewExhaustiveOracle returns the 2^m concretization backend; maxM
// bounds the scan (default 16 when <= 0).
func NewExhaustiveOracle(enc *encoding.Encoding, maxM int) Oracle {
	if maxM <= 0 {
		maxM = 16
	}
	return &exhaustiveOracle{enc: enc, maxM: maxM}
}

func (o *exhaustiveOracle) Name() string { return "exhaustive" }

func (o *exhaustiveOracle) Enumerate(ctx context.Context, entry core.LogEntry, cons []Constraint, limit int) ([]core.Signal, bool, error) {
	if err := validateShape(o.enc, entry); err != nil {
		return nil, false, err
	}
	if o.enc.M() > o.maxM {
		return nil, false, fmt.Errorf("exhaustive concretization refuses m=%d > %d: %w", o.enc.M(), o.maxM, ErrUnsupported)
	}
	if !evaluableAll(cons) {
		return nil, false, errUnsupportedConstraints("exhaustive concretization")
	}
	sigs := core.Concretize(o.enc, entry)
	out := make([]core.Signal, 0, len(sigs))
	for _, s := range sigs {
		if !holdsAll(cons, s) {
			continue
		}
		out = append(out, s)
		if limit > 0 && len(out) >= limit && len(out) < len(sigs) {
			return out, false, nil
		}
	}
	return out, true, nil
}

func (o *exhaustiveOracle) First(ctx context.Context, entry core.LogEntry, cons []Constraint) (core.Signal, sat.Status, error) {
	return firstVia(o, ctx, entry, cons)
}

func (o *exhaustiveOracle) Count(ctx context.Context, entry core.LogEntry, cons []Constraint, max int) (int, bool, error) {
	return countVia(o, ctx, entry, cons, max)
}

func (o *exhaustiveOracle) Check(ctx context.Context, entry core.LogEntry, cons []Constraint) (sat.Status, error) {
	return checkVia(o, ctx, entry, cons)
}

// --- incremental session ---

// SessionOracle adapts reconstruct.Session to the Oracle interface
// with the warm-solver discipline the service pioneered: a prototype
// Session that is NEVER queried (so cloning it is a pure read), a live
// clone that accumulates learned clauses across queries, and a
// TryLock: a request that finds the live solver busy runs on a fresh
// prototype clone instead of queueing behind it.
type SessionOracle struct {
	mu    sync.Mutex // guards live
	proto *Session
	live  *Session
	obs   *obs.Registry
}

// NewSessionOracle builds the incremental assumption-based backend for
// enc. Construction pays the one-off A-structure encoding (uncut XOR
// rows, cardinality ladder); every query after that is an assumption
// solve.
func NewSessionOracle(enc *encoding.Encoding, opts SessionOptions) (*SessionOracle, error) {
	proto, err := NewSession(enc, opts)
	if err != nil {
		return nil, err
	}
	return &SessionOracle{proto: proto, live: proto.Clone(), obs: opts.Obs}, nil
}

func (o *SessionOracle) Name() string { return "sat-inc" }

// Supports reports whether a change count fits the session ladder.
func (o *SessionOracle) Supports(k int) bool { return o.proto.Supports(k) }

// TPWidth reports the encoded timeprint width.
func (o *SessionOracle) TPWidth() int { return o.proto.TPWidth() }

func (o *SessionOracle) Enumerate(ctx context.Context, entry core.LogEntry, cons []Constraint, limit int) ([]core.Signal, bool, error) {
	sess, release, err := o.acquire(entry)
	if err != nil {
		return nil, false, err
	}
	defer release()
	sigs, exhausted, err := sess.EnumerateWithin(ctx.Done(), entry, cons, limit)
	return sigs, exhausted, o.mapErr(err)
}

func (o *SessionOracle) First(ctx context.Context, entry core.LogEntry, cons []Constraint) (core.Signal, sat.Status, error) {
	return firstVia(o, ctx, entry, cons)
}

func (o *SessionOracle) Count(ctx context.Context, entry core.LogEntry, cons []Constraint, max int) (int, bool, error) {
	return countVia(o, ctx, entry, cons, max)
}

func (o *SessionOracle) Check(ctx context.Context, entry core.LogEntry, cons []Constraint) (sat.Status, error) {
	sess, release, err := o.acquire(entry)
	if err != nil {
		return sat.Unknown, err
	}
	defer release()
	st, err := sess.Check(entry, cons)
	return st, o.mapErr(err)
}

// acquire validates the entry against the session's fixed shape and
// picks a solver: the warm live one when free, a prototype clone when
// busy.
func (o *SessionOracle) acquire(entry core.LogEntry) (*Session, func(), error) {
	if err := validateShape(o.proto.enc, entry); err != nil {
		return nil, nil, err
	}
	if !o.proto.Supports(entry.K) {
		return nil, nil, fmt.Errorf("session ladder caps k at %d, got %d: %w", o.proto.MaxK(), entry.K, ErrUnsupported)
	}
	if o.mu.TryLock() {
		o.obs.Counter(MetricOracleSessionReuse).Inc()
		return o.live, o.mu.Unlock, nil
	}
	o.obs.Counter(MetricOracleSessionClone).Inc()
	return o.proto.Clone(), func() {}, nil
}

// mapErr translates session errors to the Oracle contract: budget and
// interrupt pass through; anything else (a constraint the session
// cannot selector-guard, e.g. XOR-emitting) becomes ErrUnsupported so
// the dispatcher falls back to a one-shot instance.
func (o *SessionOracle) mapErr(err error) error {
	if err == nil ||
		errors.Is(err, sat.ErrBudget) || errors.Is(err, sat.ErrInterrupted) ||
		errors.Is(err, core.ErrWidth) || errors.Is(err, core.ErrKRange) {
		return err
	}
	return fmt.Errorf("%v: %w", err, ErrUnsupported)
}
