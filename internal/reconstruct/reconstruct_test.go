package reconstruct

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/sat"
)

func mustEnc(t testing.TB, m, b, d int) *encoding.Encoding {
	t.Helper()
	e, err := encoding.Incremental(m, b, d)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func sigKeySet(sigs []core.Signal) map[string]bool {
	out := map[string]bool{}
	for _, s := range sigs {
		out[s.Vector().Key()] = true
	}
	return out
}

func TestSATMatchesBruteForceAndExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		m := 10 + r.Intn(7) // m in [10,16]: exhaustive 2^m is fine
		enc := mustEnc(t, m, 9+r.Intn(3), 4)
		// Random true signal.
		v := bitvec.New(m)
		for i := 0; i < m; i++ {
			if r.Intn(3) == 0 {
				v.Set(i, true)
			}
		}
		truth := core.SignalFromVector(v)
		entry := core.Log(enc, truth)

		rec, err := New(enc, entry, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		satSigs, exhausted := rec.Enumerate(0)
		if !exhausted {
			t.Fatal("SAT enumeration not exhausted")
		}
		bfSigs, err := BruteForce(enc, entry, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		exSigs := core.Concretize(enc, entry)

		sk, bk, ek := sigKeySet(satSigs), sigKeySet(bfSigs), sigKeySet(exSigs)
		if len(sk) != len(satSigs) {
			t.Fatal("SAT enumeration returned duplicates")
		}
		if len(sk) != len(bk) || len(sk) != len(ek) {
			t.Fatalf("trial %d: |SAT|=%d |BF|=%d |EX|=%d", trial, len(sk), len(bk), len(ek))
		}
		for k := range sk {
			if !bk[k] || !ek[k] {
				t.Fatalf("trial %d: solution sets differ", trial)
			}
		}
		if !sk[truth.Vector().Key()] {
			t.Fatalf("trial %d: true signal not reconstructed", trial)
		}
	}
}

func TestAblationModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	enc := mustEnc(t, 14, 10, 4)
	for trial := 0; trial < 10; trial++ {
		v := bitvec.New(14)
		for i := 0; i < 14; i++ {
			if r.Intn(4) == 0 {
				v.Set(i, true)
			}
		}
		entry := core.Log(enc, core.SignalFromVector(v))

		counts := map[string]int{}
		for name, opt := range map[string]Options{
			"native-sinz":  {},
			"cnfxor-sinz":  {XorAsCNF: true},
			"native-binom": {BinomialCardinality: true},
			"cnfxor-binom": {XorAsCNF: true, BinomialCardinality: true},
		} {
			rec, err := New(enc, entry, nil, opt)
			if err != nil {
				t.Fatal(err)
			}
			sigs, exhausted := rec.Enumerate(0)
			if !exhausted {
				t.Fatalf("%s not exhausted", name)
			}
			counts[name] = len(sigs)
		}
		want := counts["native-sinz"]
		for name, c := range counts {
			if c != want {
				t.Fatalf("trial %d: %s found %d, native-sinz %d", trial, name, c, want)
			}
		}
	}
}

func TestFirstAndCheck(t *testing.T) {
	enc := mustEnc(t, 16, 8, 4)
	truth := core.SignalFromChanges(16, 2, 3, 9, 10)
	entry := core.Log(enc, truth)

	rec, err := New(enc, entry, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, st, err := rec.First()
	if err != nil || st != sat.Sat {
		t.Fatalf("First: %v %v", st, err)
	}
	if got := core.Log(enc, s); !got.Equal(entry) {
		t.Fatal("First returned a non-candidate")
	}

	// An impossible entry: TP of odd weight 1 with k=0.
	bad := core.LogEntry{TP: bitvec.FromOnes(8, 0), K: 0}
	rec2, err := New(enc, bad, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := rec2.Check(); st != sat.Unsat {
		t.Fatalf("impossible entry: %v", st)
	}
}

func TestInputValidation(t *testing.T) {
	enc := mustEnc(t, 16, 8, 4)
	if _, err := New(enc, core.LogEntry{TP: bitvec.New(9), K: 1}, nil, Options{}); err == nil {
		t.Error("wrong TP width accepted")
	}
	if _, err := New(enc, core.LogEntry{TP: bitvec.New(8), K: 17}, nil, Options{}); err == nil {
		t.Error("k > m accepted")
	}
	if _, err := New(enc, core.LogEntry{TP: bitvec.New(8), K: -1}, nil, Options{}); err == nil {
		t.Error("negative k accepted")
	}
}

func TestBruteForceNullityGuard(t *testing.T) {
	enc := mustEnc(t, 40, 12, 4) // nullity 28 over limit 20
	entry := core.Log(enc, core.SignalFromChanges(40, 1, 2))
	if _, err := BruteForce(enc, entry, 0, 20); err == nil {
		t.Error("expected nullity refusal")
	}
}

func TestBruteForceInconsistentTP(t *testing.T) {
	// One-hot encoding spans only weight-compatible TPs; craft a TP
	// outside the column space: impossible for one-hot (full rank b=m),
	// so use a rank-deficient custom encoding instead.
	ts := []bitvec.Vector{bitvec.FromOnes(4, 0), bitvec.FromOnes(4, 0, 1)}
	enc, err := encoding.FromTimestamps(ts, "custom")
	if err != nil {
		t.Fatal(err)
	}
	// Column space = span{e0, e0^e1}; e2 is outside.
	out, err := BruteForce(enc, core.LogEntry{TP: bitvec.FromOnes(4, 2), K: 1}, 0, 0)
	if err != nil || out != nil {
		t.Fatalf("expected empty result, got %v %v", out, err)
	}
}

func TestEnumerateLimit(t *testing.T) {
	enc := mustEnc(t, 12, 9, 4)
	truth := core.SignalFromChanges(12, 0, 5, 6)
	entry := core.Log(enc, truth)
	all, _ := BruteForce(enc, entry, 0, 0)
	if len(all) < 2 {
		t.Skip("instance not ambiguous; nothing to limit")
	}
	rec, _ := New(enc, entry, nil, Options{})
	sigs, exhausted := rec.Enumerate(1)
	if len(sigs) != 1 || exhausted {
		t.Fatalf("limit: %d exhausted=%v", len(sigs), exhausted)
	}
}

func TestCountCandidates(t *testing.T) {
	enc := mustEnc(t, 12, 9, 4)
	entry := core.Log(enc, core.SignalFromChanges(12, 3, 4))
	n, exhausted, err := CountCandidates(enc, entry, 0)
	if err != nil || !exhausted {
		t.Fatal(err)
	}
	bf, _ := BruteForce(enc, entry, 0, 0)
	if n != len(bf) {
		t.Fatalf("count %d, brute force %d", n, len(bf))
	}
}

func TestOneHotIsUnambiguous(t *testing.T) {
	// Section 4.3: linearly independent timestamps (one-hot) always
	// yield a unique reconstruction.
	enc := encoding.OneHot(12)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		v := bitvec.New(12)
		for i := 0; i < 12; i++ {
			if r.Intn(3) == 0 {
				v.Set(i, true)
			}
		}
		truth := core.SignalFromVector(v)
		entry := core.Log(enc, truth)
		rec, _ := New(enc, entry, nil, Options{})
		sigs, exhausted := rec.Enumerate(0)
		if !exhausted || len(sigs) != 1 || !sigs[0].Equal(truth) {
			t.Fatalf("one-hot ambiguity: %d signals", len(sigs))
		}
	}
}

func TestBinaryMoreAmbiguousThanLI4(t *testing.T) {
	// Section 4.3's trade-off: compressed timestamps raise ambiguity.
	// Compare candidate counts under binary vs LI-4 encodings for the
	// same signal.
	m := 14
	bin := encoding.Binary(m)
	li4 := mustEnc(t, m, 10, 4)
	truth := core.SignalFromChanges(m, 2, 3, 8, 9)

	nBin, _, err := CountCandidates(bin, core.Log(bin, truth), 0)
	if err != nil {
		t.Fatal(err)
	}
	nLI4, _, err := CountCandidates(li4, core.Log(li4, truth), 0)
	if err != nil {
		t.Fatal(err)
	}
	if nBin < nLI4 {
		t.Errorf("binary (%d) should be at least as ambiguous as LI-4 (%d)", nBin, nLI4)
	}
	if nLI4 < 1 {
		t.Error("LI-4 lost the true signal")
	}
}
