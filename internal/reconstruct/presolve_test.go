package reconstruct

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/sat"
)

// rankDeficientEnc builds an encoding whose matrix has deliberately
// redundant rows: row b-1 duplicates row 0 (every timestamp carries
// bit 0 and bit b-1 equal). Rank < b, so timeprints with those bits
// unequal are outside the column space of A.
func rankDeficientEnc(t *testing.T, m, b int) *encoding.Encoding {
	t.Helper()
	base := mustEnc(t, m, b-1, 4)
	ts := make([]bitvec.Vector, m)
	for i := 0; i < m; i++ {
		v := bitvec.New(b)
		src := base.Timestamp(i)
		for j := 0; j < b-1; j++ {
			v.Set(j, src.Get(j))
		}
		v.Set(b-1, src.Get(0)) // duplicate row 0 as row b-1
		ts[i] = v
	}
	enc, err := encoding.FromTimestamps(ts, "test-rank-deficient")
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestPresolveInconsistentTP(t *testing.T) {
	m, b := 16, 10
	enc := rankDeficientEnc(t, m, b)

	// A consistent timeprint, then break the duplicated bit so TP
	// leaves the column space of A.
	truth := core.SignalFromChanges(m, 2, 5, 11)
	entry := core.Log(enc, truth)
	entry.TP.Flip(b - 1)

	rec, err := New(enc, entry, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := rec.Stats().Presolve
	if !ps.Enabled || !ps.Inconsistent {
		t.Fatalf("presolve stats %+v: want Enabled and Inconsistent", ps)
	}
	if st := rec.Check(); st != sat.Unsat {
		t.Fatalf("status %v, want Unsat", st)
	}
	if dec := rec.Stats().Solver.Decisions; dec != 0 {
		t.Errorf("presolve-refuted instance took %d decisions, want 0", dec)
	}
	if sigs, exhausted := rec.Enumerate(0); len(sigs) != 0 || !exhausted {
		t.Errorf("Enumerate: %d signals, exhausted=%v", len(sigs), exhausted)
	}

	// Sanity: the unmodified entry is consistent and finds the truth.
	rec2, err := New(enc, core.Log(enc, truth), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ps := rec2.Stats().Presolve; ps.Inconsistent || ps.Freed != b-ps.Rank {
		t.Fatalf("consistent entry presolve stats %+v", ps)
	}
	sigs, exhausted := rec2.Enumerate(0)
	if !exhausted || !sigKeySet(sigs)[truth.Vector().Key()] {
		t.Fatalf("consistent entry lost the true signal (%d sigs, exhausted=%v)", len(sigs), exhausted)
	}
}

func TestPresolveInfeasibleK(t *testing.T) {
	// One-hot encoding: the system is full rank m, every position is a
	// unit row, so forcedTrue = k exactly; any other k is refuted by
	// the presolve feasibility window without SAT search.
	m := 12
	enc := encoding.OneHot(m)
	truth := core.SignalFromChanges(m, 3, 7)
	entry := core.Log(enc, truth)
	entry.K = 3 // logged k contradicts the forced positions

	rec, err := New(enc, entry, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := rec.Stats().Presolve
	if !ps.Inconsistent {
		t.Fatalf("presolve stats %+v: want Inconsistent (k window)", ps)
	}
	if st := rec.Check(); st != sat.Unsat {
		t.Fatalf("status %v, want Unsat", st)
	}
	if dec := rec.Stats().Solver.Decisions; dec != 0 {
		t.Errorf("refuted instance took %d decisions, want 0", dec)
	}
}

func TestPresolveAllPositionsForced(t *testing.T) {
	// One-hot with the correct k: rank == m, Fixed == m, and the unique
	// solution falls out of the unit clauses alone.
	m := 12
	enc := encoding.OneHot(m)
	truth := core.SignalFromChanges(m, 1, 4, 9)
	entry := core.Log(enc, truth)

	rec, err := New(enc, entry, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ps := rec.Stats().Presolve
	if ps.Rank != m || ps.Fixed != m || ps.Freed != 0 || ps.Inconsistent {
		t.Fatalf("presolve stats %+v: want rank=fixed=%d", ps, m)
	}
	sigs, exhausted := rec.Enumerate(0)
	if !exhausted || len(sigs) != 1 || !sigs[0].Equal(truth) {
		t.Fatalf("want unique solution %v, got %d signals (exhausted=%v)", truth, len(sigs), exhausted)
	}
}

// TestPresolveEquivalence checks, on randomized small instances, that
// the presolved SAT path, the raw (NoPresolve) SAT path and the
// linear-algebra brute force all agree on the candidate set.
func TestPresolveEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		m := 10 + r.Intn(7)
		enc := mustEnc(t, m, 9+r.Intn(3), 4)
		v := bitvec.New(m)
		for i := 0; i < m; i++ {
			if r.Intn(3) == 0 {
				v.Set(i, true)
			}
		}
		entry := core.Log(enc, core.SignalFromVector(v))

		var got [2][]core.Signal
		for i, opts := range []Options{{}, {NoPresolve: true}} {
			rec, err := New(enc, entry, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			sigs, exhausted := rec.Enumerate(0)
			if !exhausted {
				t.Fatalf("trial %d opts %d: not exhausted", trial, i)
			}
			got[i] = sigs
			if ps := rec.Stats().Presolve; ps.Enabled == opts.NoPresolve {
				t.Fatalf("trial %d: presolve Enabled=%v under NoPresolve=%v", trial, ps.Enabled, opts.NoPresolve)
			}
		}
		bf, err := BruteForce(enc, entry, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		pk, nk, bk := sigKeySet(got[0]), sigKeySet(got[1]), sigKeySet(bf)
		if len(pk) != len(nk) || len(pk) != len(bk) {
			t.Fatalf("trial %d: presolve %d, raw %d, brute force %d candidates",
				trial, len(pk), len(nk), len(bk))
		}
		for k := range pk {
			if !nk[k] || !bk[k] {
				t.Fatalf("trial %d: candidate sets differ", trial)
			}
		}
	}
}

// TestEnumerateParallelMatchesSerial checks the reconstruction-level
// parallel driver against the serial path across worker counts.
func TestEnumerateParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(113))
	for trial := 0; trial < 8; trial++ {
		m := 10 + r.Intn(7)
		enc := mustEnc(t, m, 9+r.Intn(3), 4)
		v := bitvec.New(m)
		for i := 0; i < m; i++ {
			if r.Intn(3) == 0 {
				v.Set(i, true)
			}
		}
		entry := core.Log(enc, core.SignalFromVector(v))

		rec, err := New(enc, entry, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		serial, exhausted := rec.Enumerate(0) // consumes rec
		if !exhausted {
			t.Fatal("serial enumeration not exhausted")
		}
		want := sigKeySet(serial)

		for _, workers := range []int{2, 4} {
			rec, err := New(enc, entry, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			par, exhausted := rec.EnumerateParallel(0, workers)
			if !exhausted {
				t.Fatalf("workers %d: parallel enumeration not exhausted", workers)
			}
			got := sigKeySet(par)
			if len(got) != len(want) {
				t.Fatalf("workers %d: %d signals, want %d", workers, len(got), len(want))
			}
			for k := range want {
				if !got[k] {
					t.Fatalf("workers %d: signal sets differ", workers)
				}
			}
			// Non-consuming: a second call returns the same set.
			again, _ := rec.EnumerateParallel(0, workers)
			if len(again) != len(par) {
				t.Fatalf("workers %d: EnumerateParallel consumed the instance", workers)
			}

			// FirstParallel agrees with Check on satisfiability.
			sig, st, err := rec.FirstParallel(workers)
			if err != nil {
				t.Fatal(err)
			}
			if (st == sat.Sat) != (len(serial) > 0) {
				t.Fatalf("workers %d: FirstParallel status %v with %d candidates", workers, st, len(serial))
			}
			if st == sat.Sat && !sigKeySet(serial)[sig.Vector().Key()] {
				t.Fatalf("workers %d: FirstParallel returned a non-candidate", workers)
			}
		}
	}
}
