// Package reconstruct solves the paper's Signal Reconstruction (SR)
// problem:
//
//	Input:  encoding TS : [0..m) → F2^b, timeprint TP ∈ F2^b, k ∈ N.
//	Task:   find all signals S with α̃(S) = (TP, k).
//
// Equivalently: all x ∈ F2^m with A·x = TP and exactly k ones, where
// A = [TS(0) | … | TS(m−1)]. SR is NP-hard (syndrome decoding,
// Berlekamp–McEliece–van Tilborg 1978). Following Section 4.2, the
// system's b parity rows become native XOR clauses and the cardinality
// constraint |x| = k uses the Sinz sequential-counter encoding; known
// temporal properties are added as extra CNF constraints to prune the
// search (Section 5.1.3). A Gaussian-elimination brute-force baseline
// cross-checks the SAT path and quantifies what the solver buys.
package reconstruct

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/sat"
)

// Constraint adds clauses restricting the candidate signals. vars[i]
// is the solver variable asserting "the signal changed in clock-cycle
// i". Temporal properties (internal/properties) implement this
// interface.
type Constraint interface {
	// Apply emits the constraint's clauses into the builder.
	Apply(b *cnf.Builder, vars []int) error
	// String names the constraint for reports.
	String() string
}

// Options tune how the SAT instance is built and solved. The zero
// value is the paper's configuration: native XOR clauses and the Sinz
// sequential-counter cardinality encoding.
type Options struct {
	// XorAsCNF expands parity rows to plain CNF instead of native XOR
	// clauses (ablation).
	XorAsCNF bool
	// BinomialCardinality uses the naive C(m,k+1)-clause encoding
	// instead of the sequential counter (ablation; fails on large
	// instances by design).
	BinomialCardinality bool
	// MaxConflicts bounds the solver effort per Solve call; 0 means
	// unlimited.
	MaxConflicts int64
	// XorCutLen caps the length of native XOR clauses; longer parity
	// rows are chained through auxiliary variables (see cnf.AddXorCut).
	// 0 means the default of 8; negative disables cutting (ablation).
	XorCutLen int
}

func (o Options) cutLen() int {
	switch {
	case o.XorCutLen == 0:
		return 8
	case o.XorCutLen < 0:
		return 1 << 30 // effectively uncut
	default:
		return o.XorCutLen
	}
}

// Reconstructor is a live SR instance. Enumeration consumes it:
// each found signal is blocked before the search continues.
type Reconstructor struct {
	enc     *encoding.Encoding
	entry   core.LogEntry
	builder *cnf.Builder
	vars    []int
}

// New builds the SAT instance for entry under enc, with the given
// property constraints (may be nil).
func New(enc *encoding.Encoding, entry core.LogEntry, constraints []Constraint, opts Options) (*Reconstructor, error) {
	m, b := enc.M(), enc.B()
	if entry.TP.Width() != b {
		return nil, fmt.Errorf("reconstruct: timeprint width %d, want %d", entry.TP.Width(), b)
	}
	if entry.K < 0 || entry.K > m {
		return nil, fmt.Errorf("reconstruct: k=%d outside [0,%d]", entry.K, m)
	}

	bld := cnf.NewBuilder(m)
	vars := make([]int, m)
	for i := range vars {
		vars[i] = i + 1
	}

	// One parity row per timeprint bit j: XOR of {x_i : TS(i)_j = 1}
	// equals TP_j.
	ts := enc.Timestamps()
	for j := 0; j < b; j++ {
		var row []int
		for i := 0; i < m; i++ {
			if ts[i].Get(j) {
				row = append(row, vars[i])
			}
		}
		rhs := entry.TP.Get(j)
		if opts.XorAsCNF {
			bld.AddXorCNF(row, rhs)
		} else {
			cut := opts.cutLen()
			if cut >= len(row) {
				bld.AddXor(row, rhs)
			} else {
				bld.AddXorCut(row, rhs, cut)
			}
		}
	}

	// Cardinality: exactly k changes.
	if opts.BinomialCardinality {
		if err := bld.ExactlyKBinomial(vars, entry.K); err != nil {
			return nil, err
		}
	} else {
		bld.ExactlyK(vars, entry.K)
	}

	for _, c := range constraints {
		if err := c.Apply(bld, vars); err != nil {
			return nil, fmt.Errorf("reconstruct: constraint %s: %w", c, err)
		}
	}

	bld.S.MaxConflicts = opts.MaxConflicts
	return &Reconstructor{enc: enc, entry: entry, builder: bld, vars: vars}, nil
}

// First searches for one candidate signal. ok=false with status Unsat
// means no signal matches (under the constraints); status Unknown
// means the conflict budget ran out.
func (r *Reconstructor) First() (core.Signal, sat.Status, error) {
	st := r.builder.S.Solve()
	if st != sat.Sat {
		return core.Signal{}, st, nil
	}
	return r.model(), sat.Sat, nil
}

// model extracts the current solver model as a signal.
func (r *Reconstructor) model() core.Signal {
	v := bitvec.New(r.enc.M())
	for i, x := range r.vars {
		if r.builder.S.Value(x) {
			v.Set(i, true)
		}
	}
	return core.SignalFromVector(v)
}

// Enumerate finds up to limit candidate signals (limit <= 0: all). It
// returns the signals and whether the candidate space was exhausted.
// Each signal is verified against the log entry before being returned;
// a mismatch indicates a solver bug and panics.
func (r *Reconstructor) Enumerate(limit int) ([]core.Signal, bool) {
	var out []core.Signal
	n, st := r.builder.S.EnumerateModels(r.vars, limit, func(m map[int]bool) bool {
		v := bitvec.New(r.enc.M())
		for i, x := range r.vars {
			if m[x] {
				v.Set(i, true)
			}
		}
		s := core.SignalFromVector(v)
		if got := core.Log(r.enc, s); !got.Equal(r.entry) {
			panic(fmt.Sprintf("reconstruct: candidate %s logs to %v, want %v", s, got, r.entry))
		}
		out = append(out, s)
		return true
	})
	_ = n
	return out, st == sat.Unsat
}

// Check reports whether any candidate signal exists under the current
// constraints: the paper's safety-property query. Unsat proves that no
// signal consistent with (TP, k) and the encoded properties exists —
// e.g. "no transmission before the deadline" (Section 5.2.1).
func (r *Reconstructor) Check() sat.Status {
	return r.builder.S.Solve()
}

// Stats exposes the underlying solver counters.
func (r *Reconstructor) Stats() sat.Stats { return r.builder.S.Stats }

// BruteForce solves SR by linear algebra: Gaussian elimination yields
// the solution coset (particular solution + nullspace span), which is
// enumerated exhaustively and filtered by |x| = k. Cost is 2^nullity,
// so it refuses instances whose nullity exceeds maxNullity (default 28
// when <= 0). It is the validation baseline for the SAT path.
func BruteForce(enc *encoding.Encoding, entry core.LogEntry, limit, maxNullity int) ([]core.Signal, error) {
	if maxNullity <= 0 {
		maxNullity = 28
	}
	sys, ok := enc.Matrix().Solve(entry.TP)
	if !ok {
		return nil, nil // TP outside the column space: no signals
	}
	if sys.Nullity() > maxNullity {
		return nil, fmt.Errorf("reconstruct: brute force refuses nullity %d > %d", sys.Nullity(), maxNullity)
	}
	var out []core.Signal
	sys.EnumerateSolutions(maxNullity, func(x bitvec.Vector) bool {
		if x.PopCount() == entry.K {
			out = append(out, core.SignalFromVector(x))
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	return out, nil
}

// CountCandidates counts all signals matching the entry (no
// constraints), up to max, via the SAT path.
func CountCandidates(enc *encoding.Encoding, entry core.LogEntry, max int) (int, bool, error) {
	r, err := New(enc, entry, nil, Options{})
	if err != nil {
		return 0, false, err
	}
	sigs, exhausted := r.Enumerate(max)
	return len(sigs), exhausted, nil
}
