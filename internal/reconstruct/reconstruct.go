// Package reconstruct solves the paper's Signal Reconstruction (SR)
// problem:
//
//	Input:  encoding TS : [0..m) → F2^b, timeprint TP ∈ F2^b, k ∈ N.
//	Task:   find all signals S with α̃(S) = (TP, k).
//
// Equivalently: all x ∈ F2^m with A·x = TP and exactly k ones, where
// A = [TS(0) | … | TS(m−1)]. SR is NP-hard (syndrome decoding,
// Berlekamp–McEliece–van Tilborg 1978). Following Section 4.2, the
// system's b parity rows become native XOR clauses and the cardinality
// constraint |x| = k uses the Sinz sequential-counter encoding; known
// temporal properties are added as extra CNF constraints to prune the
// search (Section 5.1.3). A Gaussian-elimination brute-force baseline
// cross-checks the SAT path and quantifies what the solver buys.
package reconstruct

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/sat"
)

// Constraint adds clauses restricting the candidate signals. vars[i]
// is the solver variable asserting "the signal changed in clock-cycle
// i". Temporal properties (internal/properties) implement this
// interface.
type Constraint interface {
	// Apply emits the constraint's clauses into the builder.
	Apply(b *cnf.Builder, vars []int) error
	// String names the constraint for reports.
	String() string
}

// Options tune how the SAT instance is built and solved. The zero
// value is the paper's configuration: native XOR clauses and the Sinz
// sequential-counter cardinality encoding.
type Options struct {
	// XorAsCNF expands parity rows to plain CNF instead of native XOR
	// clauses (ablation).
	XorAsCNF bool
	// BinomialCardinality uses the naive C(m,k+1)-clause encoding
	// instead of the sequential counter (ablation; fails on large
	// instances by design).
	BinomialCardinality bool
	// MaxConflicts bounds the solver effort per Solve call; 0 means
	// unlimited.
	MaxConflicts int64
	// XorCutLen caps the length of native XOR clauses; longer parity
	// rows are chained through auxiliary variables (see cnf.AddXorCut).
	// 0 means the default of 8; negative disables cutting (ablation).
	XorCutLen int
	// NoPresolve skips the GF(2) Gaussian presolve and feeds the raw
	// parity rows of A·x = TP to the solver (ablation). By default the
	// system is row-reduced first: inconsistency yields UNSAT without
	// any SAT search, unit rows become fixed positions, and redundant
	// rows are dropped before the CNF is built.
	NoPresolve bool
	// Obs, when non-nil, receives the layer's metrics (presolve
	// outcomes, candidate counts, build/enumerate spans) and is handed
	// down to the underlying SAT solver. Nil is fully supported and is
	// the fast path.
	Obs *obs.Registry
}

// Metric names published by the reconstruction layer.
const (
	// MetricInstances counts SAT instances built by New.
	MetricInstances = "reconstruct.instances"
	// Presolve outcome counters: instances refuted outright by the
	// GF(2) elimination, positions fixed by unit rows, redundant parity
	// rows eliminated, and instances built with presolve disabled.
	MetricPresolveInconsistent = "reconstruct.presolve.inconsistent"
	MetricPresolveFixed        = "reconstruct.presolve.fixed"
	MetricPresolveFreed        = "reconstruct.presolve.freed"
	MetricPresolveDisabled     = "reconstruct.presolve.disabled"
	// MetricCandidates counts candidate signals delivered by the
	// enumeration APIs.
	MetricCandidates = "reconstruct.candidates"
	// SpanBuild and SpanEnumerate time instance construction and
	// (serial or parallel) enumeration.
	SpanBuild     = "reconstruct.build"
	SpanEnumerate = "reconstruct.enumerate"
)

func (o Options) cutLen() int {
	switch {
	case o.XorCutLen == 0:
		return 8
	case o.XorCutLen < 0:
		return 1 << 30 // effectively uncut
	default:
		return o.XorCutLen
	}
}

// PresolveStats reports what the GF(2) Gaussian presolve decided
// before the SAT solver was involved.
type PresolveStats struct {
	// Enabled is false when Options.NoPresolve skipped the presolve.
	Enabled bool
	// Rank is the rank of the parity system A.
	Rank int
	// Fixed counts signal positions whose value is forced by a unit
	// row of the reduced system (every solution agrees on them).
	Fixed int
	// Freed counts redundant parity rows eliminated before encoding
	// (b − rank): the solver never sees them.
	Freed int
	// Inconsistent is true when presolve refuted the instance outright
	// — TP outside the column space of A, or the forced positions
	// already incompatible with k — so UNSAT needed no SAT search.
	Inconsistent bool
}

// Stats combines the presolve outcome with the solver counters.
type Stats struct {
	Solver   sat.Stats
	Presolve PresolveStats
}

// Reconstructor is a live SR instance. Enumeration consumes it:
// each found signal is blocked before the search continues.
type Reconstructor struct {
	enc      *encoding.Encoding
	entry    core.LogEntry
	builder  *cnf.Builder
	vars     []int
	presolve PresolveStats
	obs      *obs.Registry
}

// New builds the SAT instance for entry under enc, with the given
// property constraints (may be nil).
func New(enc *encoding.Encoding, entry core.LogEntry, constraints []Constraint, opts Options) (*Reconstructor, error) {
	defer opts.Obs.StartSpan(SpanBuild).End()
	m, b := enc.M(), enc.B()
	if entry.TP.Width() != b {
		return nil, fmt.Errorf("reconstruct: timeprint width %d, want %d: %w", entry.TP.Width(), b, core.ErrWidth)
	}
	if entry.K < 0 || entry.K > m {
		return nil, fmt.Errorf("reconstruct: k=%d outside [0,%d]: %w", entry.K, m, core.ErrKRange)
	}

	bld := cnf.NewBuilder(m)
	bld.S.Obs = opts.Obs
	vars := make([]int, m)
	for i := range vars {
		vars[i] = i + 1
	}
	r := &Reconstructor{enc: enc, entry: entry, builder: bld, vars: vars, obs: opts.Obs}
	opts.Obs.Counter(MetricInstances).Inc()
	if opts.NoPresolve {
		opts.Obs.Counter(MetricPresolveDisabled).Inc()
	}
	defer func() {
		if r.presolve.Inconsistent {
			opts.Obs.Counter(MetricPresolveInconsistent).Inc()
		}
		opts.Obs.Counter(MetricPresolveFixed).Add(int64(r.presolve.Fixed))
		opts.Obs.Counter(MetricPresolveFreed).Add(int64(r.presolve.Freed))
	}()

	emitRow := func(row []int, rhs bool) {
		if opts.XorAsCNF {
			bld.AddXorCNF(row, rhs)
			return
		}
		cut := opts.cutLen()
		if cut >= len(row) {
			bld.AddXor(row, rhs)
		} else {
			bld.AddXorCut(row, rhs, cut)
		}
	}

	if opts.NoPresolve {
		// One parity row per timeprint bit j: XOR of {x_i : TS(i)_j = 1}
		// equals TP_j.
		ts := enc.Timestamps()
		for j := 0; j < b; j++ {
			var row []int
			for i := 0; i < m; i++ {
				if ts[i].Get(j) {
					row = append(row, vars[i])
				}
			}
			emitRow(row, entry.TP.Get(j))
		}
	} else {
		// GF(2) presolve: row-reduce [A | TP] first. The reduced system
		// has the same solution set, but inconsistency is decided here
		// (UNSAT with zero solver work), unit rows become level-0 unit
		// clauses, and the b − rank redundant rows disappear.
		ech := enc.Matrix().Eliminate(entry.TP)
		r.presolve = PresolveStats{Enabled: true, Rank: ech.Rank, Freed: b - ech.Rank}
		if !ech.Consistent {
			r.presolve.Inconsistent = true
			bld.AddClause() // empty clause: solver reports Unsat instantly
		} else {
			forcedTrue := 0
			for i, rowVec := range ech.Rows {
				ones := rowVec.Ones()
				if len(ones) == 1 {
					// Unit row: position is identical in every solution.
					r.presolve.Fixed++
					if ech.RHS[i] {
						forcedTrue++
						bld.AddClause(vars[ones[0]])
					} else {
						bld.AddClause(-vars[ones[0]])
					}
					continue
				}
				row := make([]int, len(ones))
				for j, c := range ones {
					row[j] = vars[c]
				}
				emitRow(row, ech.RHS[i])
			}
			// Cardinality feasibility against the fixed positions: every
			// solution has at least forcedTrue ones and at most
			// forcedTrue + (m − fixed) ones.
			if entry.K < forcedTrue || entry.K > forcedTrue+(m-r.presolve.Fixed) {
				r.presolve.Inconsistent = true
				bld.AddClause()
			}
		}
	}

	// The instance is already refuted: skip the cardinality and
	// property encodings — the solver answers Unsat from the empty
	// clause with zero search.
	if r.presolve.Inconsistent {
		bld.S.MaxConflicts = opts.MaxConflicts
		return r, nil
	}

	// Cardinality: exactly k changes.
	if opts.BinomialCardinality {
		if err := bld.ExactlyKBinomial(vars, entry.K); err != nil {
			return nil, err
		}
	} else {
		bld.ExactlyK(vars, entry.K)
	}

	for _, c := range constraints {
		if err := c.Apply(bld, vars); err != nil {
			return nil, fmt.Errorf("reconstruct: constraint %s: %w", c, err)
		}
	}

	bld.S.MaxConflicts = opts.MaxConflicts
	return r, nil
}

// First searches for one candidate signal. ok=false with status Unsat
// means no signal matches (under the constraints); status Unknown
// means the conflict budget ran out.
func (r *Reconstructor) First() (core.Signal, sat.Status, error) {
	st := r.builder.S.Solve()
	if st != sat.Sat {
		return core.Signal{}, st, nil
	}
	return r.model(), sat.Sat, nil
}

// model extracts the current solver model as a signal.
func (r *Reconstructor) model() core.Signal {
	v := bitvec.New(r.enc.M())
	for i, x := range r.vars {
		if r.builder.S.Value(x) {
			v.Set(i, true)
		}
	}
	return core.SignalFromVector(v)
}

// Enumerate finds up to limit candidate signals (limit <= 0: all). It
// returns the signals and whether the candidate space was exhausted.
// Each signal is verified against the log entry before being returned;
// a mismatch indicates a solver bug and panics.
//
// Deprecated: Enumerate drops the enumeration error, so a search
// stopped by Options.MaxConflicts or an interrupt looks like an
// ordinary truncated result (exhausted=false) with no way to tell it
// from a limit stop. Use EnumerateStrict, which fails closed.
func (r *Reconstructor) Enumerate(limit int) ([]core.Signal, bool) {
	out, exhausted, _ := r.enumerate(limit)
	return out, exhausted
}

// EnumerateStrict is Enumerate with the error contract: the error
// wraps sat.ErrBudget when Options.MaxConflicts ran out and
// sat.ErrInterrupted when the solver was interrupted. The signals
// found before the stop are valid either way, but only a nil error
// permits any completeness claim.
func (r *Reconstructor) EnumerateStrict(limit int) ([]core.Signal, bool, error) {
	return r.enumerate(limit)
}

// EnumerateWithin is Enumerate with cooperative cancellation: closing
// done (typically a context.Done() channel) interrupts the underlying
// solver at its next conflict or decision. The error distinguishes the
// incomplete outcomes a server must tell apart — it wraps
// sat.ErrInterrupted when done fired and sat.ErrBudget when
// Options.MaxConflicts ran out; in both cases the signals found so far
// are valid but exhausted is false and no completeness claim holds.
func (r *Reconstructor) EnumerateWithin(done <-chan struct{}, limit int) ([]core.Signal, bool, error) {
	stop := r.builder.S.InterruptOnDone(done)
	defer stop()
	return r.enumerate(limit)
}

func (r *Reconstructor) enumerate(limit int) ([]core.Signal, bool, error) {
	defer r.obs.StartSpan(SpanEnumerate).End()
	var out []core.Signal
	n, st, err := r.builder.S.EnumerateModels(r.vars, limit, func(m map[int]bool) bool {
		v := bitvec.New(r.enc.M())
		for i, x := range r.vars {
			if m[x] {
				v.Set(i, true)
			}
		}
		s := core.SignalFromVector(v)
		if got := core.Log(r.enc, s); !got.Equal(r.entry) {
			panic(fmt.Sprintf("reconstruct: candidate %s logs to %v, want %v", s, got, r.entry))
		}
		out = append(out, s)
		return true
	})
	r.obs.Counter(MetricCandidates).Add(int64(n))
	return out, st == sat.Unsat, err
}

// Check reports whether any candidate signal exists under the current
// constraints: the paper's safety-property query. Unsat proves that no
// signal consistent with (TP, k) and the encoded properties exists —
// e.g. "no transmission before the deadline" (Section 5.2.1).
func (r *Reconstructor) Check() sat.Status {
	return r.builder.S.Solve()
}

// CheckUnder decides Check with one extra constraint activated only
// for this query: c is encoded once under a fresh guard selector and
// asserted by assumption, then retired, so a single Reconstructor —
// one O(m³)-encoding A-structure build — answers many property checks
// (Classify asks P and ¬P against the same instance). Unknown carries
// an error wrapping sat.ErrBudget or sat.ErrInterrupted. A constraint
// that cannot be selector-guarded (XOR-emitting) returns an error
// wrapping ErrUnsupported; callers fall back to a dedicated instance.
func (r *Reconstructor) CheckUnder(c Constraint) (st sat.Status, err error) {
	sel := r.builder.NewVar()
	defer func() {
		if p := recover(); p != nil {
			r.builder.Guard = 0
			st = sat.Unknown
			err = fmt.Errorf("reconstruct: constraint %s cannot be guard-encoded: %v: %w", c, p, ErrUnsupported)
		}
	}()
	r.builder.Guard = sel
	aerr := c.Apply(r.builder, r.vars)
	r.builder.Guard = 0
	if aerr != nil {
		return sat.Unknown, fmt.Errorf("reconstruct: constraint %s: %w", c, aerr)
	}
	st = r.builder.S.SolveAssuming([]int{sel})
	// Retire the group: a permanent unit ¬sel deactivates c's clauses
	// (and any learnts carrying ¬sel) for every later query on this
	// instance.
	if aerr := r.builder.S.AddClause(-sel); aerr != nil {
		return sat.Unknown, fmt.Errorf("reconstruct: retiring constraint %s: %w", c, aerr)
	}
	if st == sat.Unknown {
		if r.builder.S.Interrupted() {
			return st, fmt.Errorf("reconstruct: check interrupted: %w", sat.ErrInterrupted)
		}
		return st, fmt.Errorf("reconstruct: check exceeded the conflict budget: %w", sat.ErrBudget)
	}
	return st, nil
}

// Stats exposes the presolve outcome and the underlying solver
// counters.
func (r *Reconstructor) Stats() Stats {
	return Stats{Solver: r.builder.S.Stats, Presolve: r.presolve}
}

// signalFromModel converts a projected model (indexed like r.vars)
// into a signal, verifying it against the log entry. A mismatch
// indicates a solver bug and panics.
func (r *Reconstructor) signalFromModel(model sat.Model) core.Signal {
	v := bitvec.New(r.enc.M())
	for i, set := range model {
		if set {
			v.Set(i, true)
		}
	}
	s := core.SignalFromVector(v)
	if got := core.Log(r.enc, s); !got.Equal(r.entry) {
		panic(fmt.Sprintf("reconstruct: candidate %s logs to %v, want %v", s, got, r.entry))
	}
	return s
}

// EnumerateParallel finds up to limit candidate signals (limit <= 0:
// all) with a cube-split portfolio of workers cloned solvers (workers
// <= 0: GOMAXPROCS). Unlike Enumerate it does not consume the
// instance. Results are canonically ordered: a full enumeration
// returns the same signal set for every worker count, and matches
// Enumerate up to ordering. With limit > 0 the result is a sorted
// subset of the candidates, deterministic for a given worker count
// but possibly a different subset than serial enumeration finds
// first (each cube stops early at its own first limit models).
//
// Deprecated: EnumerateParallel folds budget and interrupt stops into
// exhausted=false, indistinguishable from a limit stop. Use
// EnumerateParallelStrict, which fails closed.
func (r *Reconstructor) EnumerateParallel(limit, workers int) ([]core.Signal, bool) {
	out, exhausted, _ := r.EnumerateParallelStrict(limit, workers)
	return out, exhausted
}

// EnumerateParallelStrict is EnumerateParallel with the error
// contract: an Unknown portfolio outcome — some cube ran out of
// conflict budget or was interrupted — returns an error wrapping
// sat.ErrBudget (or sat.ErrInterrupted when this instance's solver was
// interrupted) instead of masquerading as a truncated result.
func (r *Reconstructor) EnumerateParallelStrict(limit, workers int) ([]core.Signal, bool, error) {
	defer r.obs.StartSpan(SpanEnumerate).End()
	models, st := sat.ParallelEnumerate(r.builder.S, r.vars, limit, sat.ParallelOptions{Workers: workers})
	out := make([]core.Signal, 0, len(models))
	for _, m := range models {
		out = append(out, r.signalFromModel(m))
	}
	r.obs.Counter(MetricCandidates).Add(int64(len(out)))
	if st == sat.Unknown {
		if r.builder.S.Interrupted() {
			return out, false, fmt.Errorf("reconstruct: parallel enumeration interrupted: %w", sat.ErrInterrupted)
		}
		return out, false, fmt.Errorf("reconstruct: parallel enumeration exceeded the conflict budget: %w", sat.ErrBudget)
	}
	return out, st == sat.Unsat, nil
}

// FirstParallel races workers cube solvers for one candidate signal
// (workers <= 0: GOMAXPROCS), cancelling the losers. It does not
// consume the instance; the result is deterministic (the lowest
// satisfiable cube wins regardless of scheduling).
func (r *Reconstructor) FirstParallel(workers int) (core.Signal, sat.Status, error) {
	model, st := sat.ParallelFirst(r.builder.S, r.vars, sat.ParallelOptions{Workers: workers})
	if st != sat.Sat {
		return core.Signal{}, st, nil
	}
	return r.signalFromModel(model), sat.Sat, nil
}

// BruteForce solves SR by linear algebra: Gaussian elimination yields
// the solution coset (particular solution + nullspace span), which is
// enumerated exhaustively and filtered by |x| = k. Cost is 2^nullity,
// so it refuses instances whose nullity exceeds maxNullity (default 28
// when <= 0). It is the validation baseline for the SAT path.
func BruteForce(enc *encoding.Encoding, entry core.LogEntry, limit, maxNullity int) ([]core.Signal, error) {
	if entry.TP.Width() != enc.B() {
		return nil, fmt.Errorf("reconstruct: timeprint width %d, want %d: %w", entry.TP.Width(), enc.B(), core.ErrWidth)
	}
	if entry.K < 0 || entry.K > enc.M() {
		return nil, fmt.Errorf("reconstruct: k=%d outside [0,%d]: %w", entry.K, enc.M(), core.ErrKRange)
	}
	if maxNullity <= 0 {
		maxNullity = 28
	}
	sys, ok := enc.Matrix().Solve(entry.TP)
	if !ok {
		return nil, nil // TP outside the column space: no signals
	}
	if sys.Nullity() > maxNullity {
		return nil, fmt.Errorf("reconstruct: brute force refuses nullity %d > %d", sys.Nullity(), maxNullity)
	}
	var out []core.Signal
	sys.EnumerateSolutions(maxNullity, func(x bitvec.Vector) bool {
		if x.PopCount() == entry.K {
			out = append(out, core.SignalFromVector(x))
			if limit > 0 && len(out) >= limit {
				return false
			}
		}
		return true
	})
	return out, nil
}

// CountCandidates counts all signals matching the entry (no
// constraints), up to max, via the SAT path.
func CountCandidates(enc *encoding.Encoding, entry core.LogEntry, max int) (int, bool, error) {
	r, err := New(enc, entry, nil, Options{})
	if err != nil {
		return 0, false, err
	}
	sigs, exhausted, err := r.EnumerateStrict(max)
	return len(sigs), exhausted, err
}
