package reconstruct

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/sat"
)

// Verdict is a certainty judgment of a temporal property against a
// timeprint log entry — the Section 3.3 usage where isolating the
// exact signal is unnecessary: "often, we only want to know whether
// there is a trace that satisfies or breaks a certain temporal
// property".
type Verdict int

const (
	// Inconclusive: some consistent signals satisfy the property and
	// some violate it; the log alone cannot decide.
	Inconclusive Verdict = iota
	// CertainlySatisfies: every signal consistent with (TP, k)
	// satisfies the property.
	CertainlySatisfies
	// CertainlyViolates: no signal consistent with (TP, k) satisfies
	// the property.
	CertainlyViolates
	// NoCandidates: nothing is consistent with the log entry at all
	// (corrupted log or wrong encoding).
	NoCandidates
	// Undecided: a solver budget expired before certainty was reached.
	Undecided
)

func (v Verdict) String() string {
	switch v {
	case CertainlySatisfies:
		return "CERTAINLY-SATISFIES"
	case CertainlyViolates:
		return "CERTAINLY-VIOLATES"
	case NoCandidates:
		return "NO-CANDIDATES"
	case Undecided:
		return "UNDECIDED"
	default:
		return "INCONCLUSIVE"
	}
}

// NegatableProperty pairs a property constraint with its logical
// complement, both as constraints (see properties.Negate for the
// automatically negatable subset).
type NegatableProperty struct {
	Prop, Negation Constraint
}

// Classify decides a property against a log entry with two SAT
// queries: candidates∧P (does anything satisfy it?) and candidates∧¬P
// (does anything violate it?). Both polarities are checked against ONE
// Reconstructor — the O(m³) A-structure encoding is built once and
// each polarity is activated as a guarded clause group (CheckUnder) —
// instead of paying for two full instances. A solver budget or
// interrupt expiring mid-check yields Undecided with a nil error;
// structural failures (malformed entry, a constraint that fails to
// encode) propagate as errors.
func Classify(enc *encoding.Encoding, entry core.LogEntry, p NegatableProperty, opts Options) (Verdict, error) {
	if p.Prop == nil || p.Negation == nil {
		return Inconclusive, fmt.Errorf("reconstruct: Classify needs both the property and its negation")
	}
	rec, err := New(enc, entry, nil, opts)
	if err != nil {
		return Inconclusive, err
	}
	check := func(c Constraint) (sat.Status, error) {
		st, err := rec.CheckUnder(c)
		if err != nil && errors.Is(err, ErrUnsupported) {
			// The constraint emits clauses that cannot be selector-guarded
			// (XOR): pay for a dedicated instance, the pre-sharing path.
			one, nerr := New(enc, entry, []Constraint{c}, opts)
			if nerr != nil {
				return sat.Unknown, nerr
			}
			return one.Check(), nil
		}
		return st, err
	}
	satisfiers, err := check(p.Prop)
	if err != nil {
		return classifyError(err)
	}
	violators, err := check(p.Negation)
	if err != nil {
		return classifyError(err)
	}
	switch {
	case satisfiers == sat.Unknown || violators == sat.Unknown:
		return Undecided, nil
	case satisfiers == sat.Sat && violators == sat.Unsat:
		return CertainlySatisfies, nil
	case satisfiers == sat.Unsat && violators == sat.Sat:
		return CertainlyViolates, nil
	case satisfiers == sat.Unsat && violators == sat.Unsat:
		return NoCandidates, nil
	default:
		return Inconclusive, nil
	}
}

// classifyError distinguishes resource exhaustion from structural
// failure: a budget or interrupt mid-check means the verdict is merely
// Undecided (not an error — callers can retry with a larger budget),
// while anything else (bad entry shape, unencodable constraint)
// propagates.
func classifyError(err error) (Verdict, error) {
	if errors.Is(err, sat.ErrBudget) || errors.Is(err, sat.ErrInterrupted) {
		return Undecided, nil
	}
	return Inconclusive, err
}
