package reconstruct

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/sat"
)

// Routes the dispatcher can pick. Every route except the two
// linear-algebra answers (refuted, pinned) names a backend oracle;
// refuted and pinned are decided inside the brute oracle's GF(2) walk
// with zero search.
const (
	// RouteRefuted: feature extraction already proved the candidate set
	// empty (TP outside the column space, or k infeasible against the
	// presolve-fixed positions). Answered inline, no backend runs.
	RouteRefuted = "refuted"
	// RoutePinned: the parity system has full rank (nullity 0), so the
	// coset is a single point — read it off the echelon form.
	RoutePinned = "pinned"
	// RouteDecode: algebraic syndrome decoding, k <= decode.MaxK and no
	// constraints.
	RouteDecode = "decode"
	// RouteBrute: GF(2) coset enumeration, nullity within the budget.
	RouteBrute = "brute"
	// RouteSession: the incremental assumption-based session solver.
	RouteSession = "sat-inc"
	// RouteParallel: cube-split parallel one-shot SAT.
	RouteParallel = "sat-par"
	// RouteSAT: serial one-shot SAT — the always-sound residual.
	RouteSAT = "sat"
	// RouteExhaustive: 2^m concretization. Never chosen by the cost
	// model (brute dominates it); selectable only via Force.
	RouteExhaustive = "exhaustive"
)

// KnownOracle reports whether name is a valid DispatchOptions.Force
// value ("auto" and "" mean cost-model routing).
func KnownOracle(name string) bool {
	switch name {
	case "", "auto", RouteSAT, RouteParallel, RouteSession, RouteDecode, RouteBrute, RouteExhaustive:
		return true
	}
	return false
}

// DispatchOptions tune the cost-model router.
type DispatchOptions struct {
	// Force pins every request to one backend: "sat", "sat-par",
	// "sat-inc", "decode", "brute" or "exhaustive". "" or "auto" means
	// cost-model routing. A forced backend that cannot express a
	// request still falls back to serial SAT (and counts a fallback).
	Force string
	// Workers > 1 enables the cube-split parallel route for requests
	// that fall through to one-shot SAT.
	Workers int
	// SessionMaxK bounds the incremental session's cardinality ladder
	// (default 16); DisableSession removes the session route entirely.
	SessionMaxK    int
	DisableSession bool
	// GaussInSearch keeps the session solver's reduced parity matrix
	// live across decision levels (in-search Gaussian elimination) so
	// wide-row systems propagate mid-search instead of only when a row
	// collapses to one literal. The routing table is unchanged — the
	// sat-inc route simply runs with the stronger propagator — because
	// in-search elimination is bit-exact on answers and never worse
	// than level-0 on the wide, property-free parity systems the
	// session route already owns.
	GaussInSearch bool
	// MaxNullity caps the brute route's 2^nullity coset walk
	// (default 16 — beyond that SAT search is the better bet).
	MaxNullity int
	// MaxConflicts bounds SAT effort per solve; 0 means unlimited.
	MaxConflicts int64
	// Obs receives the dispatch counters/spans and flows into every
	// backend; nil is fully supported.
	Obs *obs.Registry
}

func (o DispatchOptions) sessionMaxK() int {
	if o.SessionMaxK <= 0 {
		return 16
	}
	return o.SessionMaxK
}

func (o DispatchOptions) maxNullity() int {
	if o.MaxNullity <= 0 {
		return 16
	}
	return o.MaxNullity
}

// Features are the per-request instance measurements the routing
// function consumes. They come from one GF(2) elimination of [A | TP]
// — the same O(b²·m/64) pass the presolve does — plus constraint
// introspection; no SAT work.
type Features struct {
	// M, B, K: instance geometry and requested change count.
	M, B, K int
	// Rank of the parity system A; Nullity = M - Rank is the log2 of
	// the solution-coset size.
	Rank, Nullity int
	// Fixed counts positions pinned by unit rows of the reduced
	// system; ForcedTrue of those are pinned to 1.
	Fixed, ForcedTrue int
	// Consistent is false when TP is outside the column space of A;
	// KFeasible is false when k contradicts the fixed positions. Either
	// refutes the request with zero search.
	Consistent, KFeasible bool
	// Props counts constraints; Evaluable reports whether all of them
	// can be checked concretely (Holds), which the non-SAT backends
	// need.
	Props     int
	Evaluable bool
	// SessionOK reports whether the incremental session route could
	// express the request (enabled, k within the ladder).
	SessionOK bool
	// Workers mirrors DispatchOptions.Workers for the routing table.
	Workers int
}

// Decision records how a request was routed.
type Decision struct {
	// Chosen is the cost model's pick; Route is the backend that
	// actually answered (differs after a fallback).
	Chosen, Route string
	// FellBack is true when the chosen backend returned ErrUnsupported
	// and the request was re-run on serial SAT.
	FellBack bool
	// Features are the measurements the choice was made from.
	Features Features
}

// Route is the pure cost-model routing table, pinned by unit tests so
// edits are deliberate. The order encodes the cost ranking:
//
//	refuted/pinned  O(b²·m/64) elimination, zero search
//	decode          O(m²) pair index walk, k <= 4, no constraints
//	brute           O(2^nullity · m/64) coset walk, constraints by Holds
//	sat-inc         assumption solve on a warm learned-clause DB
//	sat-par / sat   one-shot CNF build + CDCL search
//
// Soundness of the cheap routes is cross-checked continuously: the
// dispatcher runs as its own oracle in the diffcheck corpus.
func Route(f Features, opts DispatchOptions) string {
	switch {
	case !f.Consistent || !f.KFeasible:
		return RouteRefuted
	case f.Nullity == 0:
		return RoutePinned
	case f.K <= decode.MaxK && f.Props == 0:
		return RouteDecode
	case f.Nullity <= opts.maxNullity() && f.Evaluable:
		return RouteBrute
	case f.SessionOK:
		return RouteSession
	case f.Workers > 1:
		return RouteParallel
	default:
		return RouteSAT
	}
}

// Dispatcher routes each request to the cheapest sound backend and is
// itself an Oracle (Name "dispatch"), so it can be cross-checked
// against the engines it routes between and stacked behind the same
// service plumbing. Backends are built lazily and shared across
// requests — the decoder's pair index and the session's warm solver
// amortize the way they do in the service. A Dispatcher is safe for
// concurrent use.
type Dispatcher struct {
	enc  *encoding.Encoding
	opts DispatchOptions

	satOnce  sync.Once
	satO     Oracle
	parOnce  sync.Once
	parO     Oracle
	decOnce  sync.Once
	decO     Oracle
	bruOnce  sync.Once
	bruO     Oracle
	exhOnce  sync.Once
	exhO     Oracle
	sessOnce sync.Once
	sessO    *SessionOracle
	sessErr  error
}

// NewDispatcher builds a cost-model router for enc. It fails only on
// an unknown Force name; backends are constructed on first use.
func NewDispatcher(enc *encoding.Encoding, opts DispatchOptions) (*Dispatcher, error) {
	if !KnownOracle(opts.Force) {
		return nil, fmt.Errorf("reconstruct: unknown oracle %q (want auto|%s|%s|%s|%s|%s|%s)",
			opts.Force, RouteSAT, RouteParallel, RouteSession, RouteDecode, RouteBrute, RouteExhaustive)
	}
	if opts.Force == "auto" {
		opts.Force = ""
	}
	return &Dispatcher{enc: enc, opts: opts}, nil
}

func (d *Dispatcher) Name() string { return "dispatch" }

// solveOptions are the one-shot SAT options every CNF backend shares.
func (d *Dispatcher) solveOptions() Options {
	return Options{MaxConflicts: d.opts.MaxConflicts, Obs: d.opts.Obs}
}

func (d *Dispatcher) sat() Oracle {
	d.satOnce.Do(func() { d.satO = NewSATOracle(d.enc, d.solveOptions()) })
	return d.satO
}

func (d *Dispatcher) par() Oracle {
	d.parOnce.Do(func() { d.parO = NewParallelSATOracle(d.enc, d.opts.Workers, d.solveOptions()) })
	return d.parO
}

func (d *Dispatcher) decode() Oracle {
	d.decOnce.Do(func() { d.decO = NewDecodeOracle(d.enc) })
	return d.decO
}

func (d *Dispatcher) brute() Oracle {
	d.bruOnce.Do(func() { d.bruO = NewBruteOracle(d.enc, d.opts.maxNullity()) })
	return d.bruO
}

func (d *Dispatcher) exhaustive() Oracle {
	d.exhOnce.Do(func() { d.exhO = NewExhaustiveOracle(d.enc, 0) })
	return d.exhO
}

func (d *Dispatcher) session() (*SessionOracle, error) {
	d.sessOnce.Do(func() {
		d.sessO, d.sessErr = NewSessionOracle(d.enc, SessionOptions{
			MaxK:          d.opts.sessionMaxK(),
			MaxConflicts:  d.opts.MaxConflicts,
			InSearchGauss: d.opts.GaussInSearch,
			Obs:           d.opts.Obs,
		})
	})
	return d.sessO, d.sessErr
}

// Features measures one request. It returns the typed shape errors
// (core.ErrWidth, core.ErrKRange) for malformed requests.
func (d *Dispatcher) Features(entry core.LogEntry, cons []Constraint) (Features, error) {
	if err := validateShape(d.enc, entry); err != nil {
		return Features{}, err
	}
	m, b := d.enc.M(), d.enc.B()
	f := Features{
		M: m, B: b, K: entry.K,
		Props:     len(cons),
		Evaluable: evaluableAll(cons),
		Workers:   d.opts.Workers,
	}
	ech := d.enc.Matrix().Eliminate(entry.TP)
	f.Rank, f.Nullity, f.Consistent = ech.Rank, m-ech.Rank, ech.Consistent
	if f.Consistent {
		for i, row := range ech.Rows {
			if ones := row.Ones(); len(ones) == 1 {
				f.Fixed++
				if ech.RHS[i] {
					f.ForcedTrue++
				}
			}
		}
		// Every solution has at least ForcedTrue ones and at most
		// ForcedTrue + (m - Fixed) — the presolve's feasibility bound.
		f.KFeasible = entry.K >= f.ForcedTrue && entry.K <= f.ForcedTrue+(m-f.Fixed)
	}
	f.SessionOK = !d.opts.DisableSession && entry.K <= min(d.opts.sessionMaxK(), m)
	return f, nil
}

// oracleFor maps a route to its backend.
func (d *Dispatcher) oracleFor(route string) (Oracle, error) {
	switch route {
	case RoutePinned, RouteBrute:
		return d.brute(), nil
	case RouteDecode:
		return d.decode(), nil
	case RouteSession:
		return d.session()
	case RouteParallel:
		return d.par(), nil
	case RouteExhaustive:
		return d.exhaustive(), nil
	default:
		return d.sat(), nil
	}
}

// EnumerateRouted is Enumerate plus the routing Decision — the service
// layer consumes it to keep its per-route counters.
func (d *Dispatcher) EnumerateRouted(ctx context.Context, entry core.LogEntry, cons []Constraint, limit int) ([]core.Signal, bool, Decision, error) {
	defer d.opts.Obs.StartSpan(SpanDispatch).End()
	f, err := d.Features(entry, cons)
	if err != nil {
		return nil, false, Decision{}, err
	}
	route := d.opts.Force
	if route == "" {
		route = Route(f, d.opts)
	}
	dec := Decision{Chosen: route, Route: route, Features: f}
	d.opts.Obs.Counter(MetricDispatchChosenPrefix + route).Inc()
	if route == RouteRefuted {
		// The elimination already proved the candidate set empty.
		return nil, true, dec, nil
	}

	var sigs []core.Signal
	var exhausted bool
	o, err := d.oracleFor(route)
	if err == nil {
		sigs, exhausted, err = o.Enumerate(ctx, entry, cons, limit)
	}
	if err != nil && (errors.Is(err, ErrUnsupported) || !isRequestError(err)) && route != RouteSAT {
		// Mispredict (or a backend that failed to build): serial SAT is
		// always sound — re-run there and count the fallback.
		d.opts.Obs.Counter(MetricDispatchFallback).Inc()
		dec.Route, dec.FellBack = RouteSAT, true
		sigs, exhausted, err = d.sat().Enumerate(ctx, entry, cons, limit)
	}
	return sigs, exhausted, dec, err
}

// isRequestError reports whether err is the request's own fault —
// malformed shape or an incomplete-search outcome — rather than a
// backend limitation worth a fallback.
func isRequestError(err error) bool {
	return errors.Is(err, core.ErrWidth) || errors.Is(err, core.ErrKRange) ||
		errors.Is(err, sat.ErrBudget) || errors.Is(err, sat.ErrInterrupted)
}

// Enumerate implements Oracle by cost-model routing.
func (d *Dispatcher) Enumerate(ctx context.Context, entry core.LogEntry, cons []Constraint, limit int) ([]core.Signal, bool, error) {
	sigs, exhausted, _, err := d.EnumerateRouted(ctx, entry, cons, limit)
	return sigs, exhausted, err
}

func (d *Dispatcher) First(ctx context.Context, entry core.LogEntry, cons []Constraint) (core.Signal, sat.Status, error) {
	return firstVia(d, ctx, entry, cons)
}

func (d *Dispatcher) Count(ctx context.Context, entry core.LogEntry, cons []Constraint, max int) (int, bool, error) {
	return countVia(d, ctx, entry, cons, max)
}

func (d *Dispatcher) Check(ctx context.Context, entry core.LogEntry, cons []Constraint) (sat.Status, error) {
	return checkVia(d, ctx, entry, cons)
}
