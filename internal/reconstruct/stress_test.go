package reconstruct

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/encoding"
	"repro/internal/properties"
)

// TestSATMatchesAlgebraicDecoderAtScale cross-checks the SAT path
// against the meet-in-the-middle decoder on instances far beyond
// exhaustive reach (m = 128): both must return the identical complete
// candidate set for k <= 4. (Exhaustion proofs — the final UNSAT after
// the last blocking clause — dominate the cost, which is why m = 256
// is out of reach for a unit test but fine for the algebraic decoder.)
func TestSATMatchesAlgebraicDecoderAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("tens of seconds of SAT enumeration")
	}
	enc, err := encoding.Incremental(128, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	dec := decode.New(enc)
	r := rand.New(rand.NewSource(77))
	for k := 1; k <= 4; k++ {
		for trial := 0; trial < 2; trial++ {
			truth := core.SignalFromChanges(128, r.Perm(128)[:k]...)
			entry := core.Log(enc, truth)

			alg, err := dec.Decode(entry)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := New(enc, entry, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			satSigs, exhausted := rec.Enumerate(0)
			if !exhausted {
				t.Fatalf("k=%d: SAT not exhausted", k)
			}
			if len(satSigs) != len(alg) {
				t.Fatalf("k=%d trial %d: SAT %d vs algebraic %d candidates",
					k, trial, len(satSigs), len(alg))
			}
			algSet := map[string]bool{}
			for _, s := range alg {
				algSet[s.Vector().Key()] = true
			}
			for _, s := range satSigs {
				if !algSet[s.Vector().Key()] {
					t.Fatalf("k=%d: SAT candidate missing from algebraic set", k)
				}
			}
		}
	}
}

// TestUNSATBudgetReporting verifies the tri-state outcome plumbing:
// a deliberately over-constrained instance must come back Unsat, and a
// tiny budget must come back Unknown rather than a wrong answer.
func TestUNSATBudgetReporting(t *testing.T) {
	enc, err := encoding.Incremental(128, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := core.SignalFromChanges(128, 50, 51, 90)
	entry := core.Log(enc, truth)

	// Contradictory window: all changes inside [0, 10) — the truth has
	// none there, and no weight-3 candidate inside 10 cycles matching
	// TP is plausible... verify rather than assume:
	rec, err := New(enc, entry, []Constraint{properties.Window{Lo: 0, Hi: 10}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigs, exhausted := rec.Enumerate(0)
	if !exhausted {
		t.Fatal("enumeration not exhausted")
	}
	for _, s := range sigs {
		for _, c := range s.Changes() {
			if c >= 10 {
				t.Fatal("window constraint violated")
			}
		}
	}
}
