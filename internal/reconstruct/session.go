package reconstruct

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/sat"
)

// Session metric names.
const (
	// MetricSessionBuilds counts session encodings built;
	// MetricSessionQueries counts assumption queries answered against a
	// session solver.
	MetricSessionBuilds  = "reconstruct.session.builds"
	MetricSessionQueries = "reconstruct.session.queries"
	// SpanSessionBuild and SpanSessionQuery time the one-off encoding
	// and the per-query assumption solve respectively.
	SpanSessionBuild = "reconstruct.session.build"
	SpanSessionQuery = "reconstruct.session.query"
)

// SessionOptions tune a reconstruction session.
type SessionOptions struct {
	// MaxK bounds the change counts the session can query: the
	// cardinality ladder is built min(m, MaxK+1) wide once, and every
	// k ≤ min(MaxK, m) becomes two assumption literals. 0 means the
	// default of 16; queries beyond the bound are rejected (callers
	// fall back to a one-shot Reconstructor).
	MaxK int
	// MaxConflicts bounds solver effort per query; 0 means unlimited.
	MaxConflicts int64
	// NoGauss disables the in-solver XOR Gaussian elimination
	// (ablation; the session then relies on watch propagation alone).
	NoGauss bool
	// InSearchGauss additionally keeps the reduced GF(2) matrix live
	// ACROSS decision levels (CryptoMiniSat-style in-search
	// elimination): parity implications and conflicts are extracted
	// mid-search instead of only at level 0. Ignored when NoGauss is
	// set.
	InSearchGauss bool
	// Obs receives the session metrics and the solver counters; nil is
	// fully supported.
	Obs *obs.Registry
}

func (o SessionOptions) maxK(m int) int {
	k := o.MaxK
	if k <= 0 {
		k = 16
	}
	if k > m {
		k = m
	}
	return k
}

// Session is a reusable SR instance for a fixed encoding: the paper's
// repeated-query workload (one fixed measurement matrix A, many
// (TP, k) log entries) solved incrementally. The session encodes the
// A-structure ONCE — parity rows with a selector variable per
// timeprint bit, an unasserted cardinality ladder — and answers each
// query with sat.Solver.SolveAssuming: TP bits, the k-bounds and any
// property constraints are assumption literals, so learned clauses and
// branching heuristics accumulate across queries instead of being
// rebuilt and discarded per entry.
//
// A Session is not safe for concurrent use; Clone gives an independent
// copy (sharing nothing mutable) for concurrent querying.
type Session struct {
	enc  *encoding.Encoding
	bld  *cnf.Builder
	vars []int // signal variables 1..m

	// tpSel[j] is the selector variable folded into parity row j:
	// row_j ^ tpSel[j] = 0, so tpSel[j] ≡ XOR(row_j) and assuming
	// ±tpSel[j] pins timeprint bit j without touching the formula.
	tpSel []int

	// ladder[j-1] ≡ "at least j signal variables are true", 1..width.
	ladder []int
	maxK   int

	// props maps a constraint's String() to the selector guarding its
	// clauses; properties are encoded once on first use and re-armed by
	// assumption on later queries.
	props map[string]int

	obs *obs.Registry
}

// NewSession builds the session-invariant encoding for enc.
func NewSession(enc *encoding.Encoding, opts SessionOptions) (*Session, error) {
	defer opts.Obs.StartSpan(SpanSessionBuild).End()
	m, b := enc.M(), enc.B()
	bld := cnf.NewBuilder(m)
	bld.S.Obs = opts.Obs
	bld.S.EnableGauss = !opts.NoGauss
	bld.S.EnableGaussInSearch = opts.InSearchGauss && !opts.NoGauss
	vars := make([]int, m)
	for i := range vars {
		vars[i] = i + 1
	}
	s := &Session{
		enc:   enc,
		bld:   bld,
		vars:  vars,
		maxK:  opts.maxK(m),
		props: make(map[string]int),
		obs:   opts.Obs,
	}

	// Parity rows with timeprint selectors. Rows are fed UNCUT: the
	// in-solver Gaussian elimination wants the raw system (cut chains
	// would hide structure behind carry variables).
	ts := enc.Timestamps()
	s.tpSel = make([]int, b)
	for j := 0; j < b; j++ {
		sel := bld.NewVar()
		s.tpSel[j] = sel
		row := []int{sel}
		for i := 0; i < m; i++ {
			if ts[i].Get(j) {
				row = append(row, vars[i])
			}
		}
		// XOR(row_j) ^ sel = 0. An empty row pins sel false, which
		// correctly refutes any query asking for that bit.
		bld.AddXor(row, false)
	}

	s.ladder = bld.Ladder(vars, min(m, s.maxK+1))

	bld.S.MaxConflicts = opts.MaxConflicts
	opts.Obs.Counter(MetricSessionBuilds).Inc()
	return s, nil
}

// MaxK reports the largest change count the session can query.
func (s *Session) MaxK() int { return s.maxK }

// TPWidth reports the encoded timeprint width b.
func (s *Session) TPWidth() int { return s.enc.B() }

// Supports reports whether a change count is queryable on this
// session.
func (s *Session) Supports(k int) bool { return k >= 0 && k <= s.maxK }

// assumptions renders a log entry plus property constraints as the
// query's assumption literals, registering unseen properties as
// guarded clause groups.
func (s *Session) assumptions(entry core.LogEntry, constraints []Constraint) (_ []int, err error) {
	m, b := s.enc.M(), s.enc.B()
	if entry.TP.Width() != b {
		return nil, fmt.Errorf("reconstruct: timeprint width %d, want %d: %w", entry.TP.Width(), b, core.ErrWidth)
	}
	if entry.K < 0 || entry.K > m {
		return nil, fmt.Errorf("reconstruct: k=%d outside [0,%d]: %w", entry.K, m, core.ErrKRange)
	}
	if !s.Supports(entry.K) {
		return nil, fmt.Errorf("reconstruct: session ladder caps k at %d, got %d: %w", s.maxK, entry.K, core.ErrKRange)
	}

	assumps := make([]int, 0, b+2+len(constraints))
	for j, sel := range s.tpSel {
		if entry.TP.Get(j) {
			assumps = append(assumps, sel)
		} else {
			assumps = append(assumps, -sel)
		}
	}
	if entry.K >= 1 {
		assumps = append(assumps, s.ladder[entry.K-1])
	}
	if entry.K < len(s.ladder) {
		assumps = append(assumps, -s.ladder[entry.K])
	}

	// Properties: encode each unseen constraint once under a fresh
	// guard, then (re)activate by assumption. A constraint that emits
	// XOR clauses cannot be guarded — cnf.Builder panics — so surface
	// that as an error and let the caller fall back to one-shot mode.
	defer func() {
		if r := recover(); r != nil {
			s.bld.Guard = 0
			err = fmt.Errorf("reconstruct: session cannot encode constraint: %v", r)
		}
	}()
	for _, c := range constraints {
		key := c.String()
		sel, ok := s.props[key]
		if !ok {
			sel = s.bld.NewVar()
			s.bld.Guard = sel
			applyErr := c.Apply(s.bld, s.vars)
			s.bld.Guard = 0
			if applyErr != nil {
				return nil, fmt.Errorf("reconstruct: constraint %s: %w", c, applyErr)
			}
			s.props[key] = sel
		}
		assumps = append(assumps, sel)
	}
	return assumps, nil
}

// Query enumerates up to limit candidate signals for one log entry
// under the given property constraints (limit <= 0: all). It returns
// the signals and whether the candidate space was exhausted; the
// session solver is left reusable — blocking clauses are retracted
// with the query. The error wraps sat.ErrBudget or sat.ErrInterrupted
// on incomplete outcomes, and core.ErrKRange when k is outside the
// session's ladder (callers fall back to a one-shot Reconstructor).
func (s *Session) Query(entry core.LogEntry, constraints []Constraint, limit int) ([]core.Signal, bool, error) {
	return s.query(entry, constraints, limit)
}

// EnumerateWithin is Query with cooperative cancellation: closing done
// interrupts the solver at its next conflict or decision. The
// interrupt is cleared on return, so a fired deadline does not poison
// the retained session solver for later queries.
func (s *Session) EnumerateWithin(done <-chan struct{}, entry core.LogEntry, constraints []Constraint, limit int) ([]core.Signal, bool, error) {
	stop := s.bld.S.InterruptOnDone(done)
	defer func() {
		stop()
		s.bld.S.ClearInterrupt()
	}()
	return s.query(entry, constraints, limit)
}

func (s *Session) query(entry core.LogEntry, constraints []Constraint, limit int) ([]core.Signal, bool, error) {
	defer s.obs.StartSpan(SpanSessionQuery).End()
	assumps, err := s.assumptions(entry, constraints)
	if err != nil {
		return nil, false, err
	}
	s.obs.Counter(MetricSessionQueries).Inc()
	var out []core.Signal
	n, st, err := s.bld.S.EnumerateAssuming(assumps, s.vars, limit, func(model map[int]bool) bool {
		v := bitvec.New(s.enc.M())
		for i, x := range s.vars {
			if model[x] {
				v.Set(i, true)
			}
		}
		sig := core.SignalFromVector(v)
		if got := core.Log(s.enc, sig); !got.Equal(entry) {
			panic(fmt.Sprintf("reconstruct: session candidate %s logs to %v, want %v", sig, got, entry))
		}
		out = append(out, sig)
		return true
	})
	s.obs.Counter(MetricCandidates).Add(int64(n))
	return out, st == sat.Unsat, err
}

// Check reports whether any candidate exists for the entry under the
// constraints — the safety-property query, incrementally.
func (s *Session) Check(entry core.LogEntry, constraints []Constraint) (sat.Status, error) {
	assumps, err := s.assumptions(entry, constraints)
	if err != nil {
		return sat.Unknown, err
	}
	s.obs.Counter(MetricSessionQueries).Inc()
	return s.bld.S.SolveAssuming(assumps), nil
}

// Stats exposes the underlying solver counters.
func (s *Session) Stats() sat.Stats { return s.bld.S.Stats }

// Clone returns an independent session over the same encoding: the
// solver state (learned clauses, activities, property encodings) is
// deep-copied, so the clone serves concurrent queries without sharing
// anything mutable with the original.
func (s *Session) Clone() *Session {
	props := make(map[string]int, len(s.props))
	for k, v := range s.props {
		props[k] = v
	}
	return &Session{
		enc:    s.enc,
		bld:    &cnf.Builder{S: s.bld.S.Clone()},
		vars:   s.vars,
		tpSel:  s.tpSel,
		ladder: s.ladder,
		maxK:   s.maxK,
		props:  props,
		obs:    s.obs,
	}
}
