package diffcheck

import (
	"strings"
	"testing"
)

func TestRunSmallCorpusAgrees(t *testing.T) {
	cfg := Config{Seed: 1, Cases: 36, Workers: []int{2}}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		for _, d := range rep.Divergences {
			t.Error(d.Error())
		}
		t.Fatalf("report not ok:\n%s", rep.Summary())
	}
	if rep.Cases != 36 {
		t.Errorf("cases %d", rep.Cases)
	}
	if rep.Comparisons == 0 {
		t.Error("no oracle-pair comparisons ran")
	}
	// Every oracle family must have participated: the sweep includes
	// small m (exhaustive), k <= 4 (decode), and everything runs sat.
	for _, name := range []string{"decode", "sat", "sat-inc", "sat-par-2", "brute", "exhaustive", "dispatch"} {
		if rep.PerOracle[name] == 0 {
			t.Errorf("oracle %s never ran:\n%s", name, rep.Summary())
		}
	}
	if !strings.Contains(rep.Summary(), "0 divergences") {
		t.Errorf("summary: %s", rep.Summary())
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Cases: 12, Workers: []int{2}}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() != b.Summary() {
		t.Errorf("same seed, different summaries:\n%s\n%s", a.Summary(), b.Summary())
	}
}

func TestReplayRoundTrip(t *testing.T) {
	// A CaseSpec regenerated from its own fields must replay cleanly —
	// the repro contract for divergences reported from CI.
	cs := CaseSpec{
		Geometry:     Geometry{M: 16, B: 10, D: 4, Scheme: "random"},
		EncSeed:      42,
		K:            3,
		TruthChanges: []int{2, 7, 11},
	}
	entry, err := cs.Entry()
	if err != nil {
		t.Fatal(err)
	}
	cs.TP = entry.TP.String()
	rep, err := Replay(cs, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("replay diverged:\n%s", rep.Summary())
	}
	// A tampered TP is detected as a stale repro instead of silently
	// replaying a different case.
	bad := cs
	bad.TP = strings.Repeat("0", len(cs.TP))
	if entry.TP.String() != bad.TP {
		if _, err := Replay(bad, nil); err == nil {
			t.Error("stale repro (wrong TP) accepted")
		}
	}
}

func TestUnknownScheme(t *testing.T) {
	if _, err := Run(Config{Seed: 1, Cases: 1, Sweep: []Geometry{{M: 8, B: 8, Scheme: "nope"}}}); err == nil {
		t.Error("unknown scheme accepted")
	}
}
