package diffcheck

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/reconstruct"
	"repro/internal/sat"
)

// TestPresolveReducesConflicts runs the diffcheck corpus through the
// reconstruction path twice — GF(2) presolve on vs off — publishing
// solver counters into separate registries, and asserts the presolve
// strictly reduces the aggregate SAT conflict count while leaving the
// candidate sets identical. This pins the ablation claim with the
// metrics layer itself rather than ad-hoc instrumentation.
func TestPresolveReducesConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	sweep := DefaultSweep()
	regOn, regOff := obs.NewRegistry(), obs.NewRegistry()
	const cases = 72

	for n := 0; n < cases; n++ {
		g := sweep[n%len(sweep)]
		kCap := min(6, g.M)
		if g.KMax > 0 {
			kCap = min(kCap, g.KMax)
		}
		cs := CaseSpec{Geometry: g, EncSeed: rng.Int63(), K: rng.Intn(kCap + 1)}
		enc, err := buildEncoding(g, cs.EncSeed)
		if err != nil {
			t.Fatalf("case %d [%s]: %v", n, g, err)
		}
		cs.TruthChanges = rng.Perm(g.M)[:cs.K]
		sort.Ints(cs.TruthChanges)
		entry := core.Log(enc, core.SignalFromChanges(g.M, cs.TruthChanges...))

		sets := make([]map[string]bool, 2)
		for i, opts := range []reconstruct.Options{
			{Obs: regOn},
			{Obs: regOff, NoPresolve: true},
		} {
			rec, err := reconstruct.New(enc, entry, nil, opts)
			if err != nil {
				t.Fatalf("case %d [%s]: %v", n, g, err)
			}
			sigs, exhausted := rec.Enumerate(0)
			if !exhausted {
				t.Fatalf("case %d [%s]: enumeration not exhausted", n, g)
			}
			set := make(map[string]bool, len(sigs))
			for _, s := range sigs {
				set[s.Vector().Key()] = true
			}
			sets[i] = set
		}
		if len(sets[0]) != len(sets[1]) {
			t.Fatalf("case %d [%s]: presolve changed the candidate set: %d vs %d",
				n, g, len(sets[0]), len(sets[1]))
		}
		for k := range sets[0] {
			if !sets[1][k] {
				t.Fatalf("case %d [%s]: candidate %s only found with presolve", n, g, k)
			}
		}
	}

	on, off := regOn.Snapshot(), regOff.Snapshot()
	conflOn, conflOff := on.Counters[sat.MetricConflicts], off.Counters[sat.MetricConflicts]
	t.Logf("conflicts: presolve on %d, off %d (props %d vs %d)",
		conflOn, conflOff, on.Counters[sat.MetricPropagations], off.Counters[sat.MetricPropagations])
	if conflOn >= conflOff {
		t.Errorf("presolve did not reduce aggregate conflicts: on %d >= off %d", conflOn, conflOff)
	}
	if got := on.Counters[reconstruct.MetricInstances]; got != cases {
		t.Errorf("presolve-on registry saw %d instances, want %d", got, cases)
	}
	if got := off.Counters[reconstruct.MetricPresolveDisabled]; got != cases {
		t.Errorf("presolve-off registry recorded %d disabled builds, want %d", got, cases)
	}
	if on.Counters[reconstruct.MetricPresolveFreed] == 0 {
		t.Error("presolve freed no parity rows across the whole corpus")
	}
}
