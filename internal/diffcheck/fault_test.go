package diffcheck

import "testing"

func TestInjectFaultsAllFailClosed(t *testing.T) {
	for _, seed := range []int64{1, 2, 99} {
		rep, err := InjectFaults(seed)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d:\n%s", seed, rep.Summary())
		}
		if rep.Injected < 30 {
			t.Errorf("seed %d: only %d faults injected", seed, rep.Injected)
		}
		if rep.RejectedTyped == 0 || rep.Localized == 0 {
			t.Errorf("seed %d: degenerate report %+v", seed, rep)
		}
		if rep.Injected != rep.RejectedTyped+rep.Localized {
			t.Errorf("seed %d: %d injected but %d rejected + %d localized",
				seed, rep.Injected, rep.RejectedTyped, rep.Localized)
		}
	}
}
