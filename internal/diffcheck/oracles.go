package diffcheck

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/reconstruct"
	"repro/internal/sat"
)

// exhaustiveMaxM bounds the 2^m exhaustive concretization oracle.
const exhaustiveMaxM = 16

// bruteMaxNullity bounds the 2^(m-rank) GF(2) coset enumeration.
const bruteMaxNullity = 22

// sessionMaxK is the cardinality-ladder width built for the
// incremental-session oracle; corpus change counts stay well under it.
const sessionMaxK = 16

// oracle is one independent Signal Reconstruction implementation. run
// must return the complete candidate set for the entry (no limit); the
// harness canonicalizes and compares the sets.
type oracle struct {
	name    string
	applies func(cs CaseSpec) bool
	run     func(enc *encoding.Encoding, entry core.LogEntry) ([]core.Signal, error)
}

// buildOracles assembles every oracle available in the repository:
//
//   - decode:     algebraic syndrome decoding (internal/decode), k <= 4
//   - sat:        serial CDCL enumeration (internal/reconstruct)
//   - sat-inc:    incremental assumption-based session solver, queried
//     twice against one retained solver (reuse + blocking cleanup)
//   - sat-inc-gauss: the session solver with in-search Gaussian
//     elimination — the live-matrix propagator must be bit-exact with
//     the rest of the field
//   - sat-par-N:  cube-split parallel portfolio with N workers
//   - brute:      GF(2) coset enumeration, nullity-bounded
//   - exhaustive: 2^m concretization (internal/core), m <= 16
//   - dispatch:   the cost-model router itself — whatever backend it
//     picks must agree with all of the above, so routing mistakes are
//     caught by the corpus
//
// sat-first-par additionally races the parallel first-solution driver
// and checks membership of its answer in the serial set (it cannot be
// compared as a set, so it is folded into the sat oracle's runner).
//
// reg, when non-nil, receives the SAT-path solver metrics; the other
// oracles have no solver underneath and publish nothing.
func buildOracles(workers []int, reg *obs.Registry) []oracle {
	oracles := []oracle{
		{
			name:    "decode",
			applies: func(cs CaseSpec) bool { return cs.K <= decode.MaxK },
			run: func(enc *encoding.Encoding, entry core.LogEntry) ([]core.Signal, error) {
				dec := decode.New(enc)
				sigs, err := dec.Decode(entry)
				if err != nil {
					return nil, err
				}
				// Count must agree with the materialized set — the
				// fast-path counting satellite rides the same oracle.
				n, err := dec.Count(entry)
				if err != nil {
					return nil, err
				}
				if n != len(sigs) {
					return nil, fmt.Errorf("decode.Count=%d but Decode returned %d signals", n, len(sigs))
				}
				return sigs, nil
			},
		},
		{
			name:    "sat",
			applies: func(CaseSpec) bool { return true },
			run: func(enc *encoding.Encoding, entry core.LogEntry) ([]core.Signal, error) {
				r, err := reconstruct.New(enc, entry, nil, reconstruct.Options{Obs: reg})
				if err != nil {
					return nil, err
				}
				sigs, exhausted, err := r.EnumerateStrict(0)
				if err != nil {
					return nil, err
				}
				if !exhausted {
					return nil, fmt.Errorf("serial enumeration not exhausted")
				}
				return sigs, nil
			},
		},
		{
			// The incremental session path: the same CDCL engine, but
			// driven through selector assumptions against a retained
			// solver (uncut parity rows + in-solver Gauss) instead of a
			// per-entry formula. Querying twice exercises solver reuse —
			// the second run sees the first run's learned clauses and
			// must not see its retracted blocking clauses.
			name:    "sat-inc",
			applies: func(cs CaseSpec) bool { return cs.K <= sessionMaxK },
			run: func(enc *encoding.Encoding, entry core.LogEntry) ([]core.Signal, error) {
				sess, err := reconstruct.NewSession(enc, reconstruct.SessionOptions{MaxK: sessionMaxK, Obs: reg})
				if err != nil {
					return nil, err
				}
				first, exhausted, err := sess.Query(entry, nil, 0)
				if err != nil {
					return nil, err
				}
				if !exhausted {
					return nil, fmt.Errorf("session enumeration not exhausted")
				}
				again, exhausted, err := sess.Query(entry, nil, 0)
				if err != nil {
					return nil, fmt.Errorf("session re-query: %w", err)
				}
				if !exhausted {
					return nil, fmt.Errorf("session re-query not exhausted")
				}
				if len(again) != len(first) {
					return nil, fmt.Errorf("session re-query returned %d signals, first run %d", len(again), len(first))
				}
				return first, nil
			},
		},
		{
			// The same session drive with the in-search Gauss propagator:
			// the live matrix must stay bit-exact with CDCL-only search
			// across the whole corpus, including the re-query (matrix
			// state carried across SolveAssuming retraction and blocking
			// cleanup).
			name:    "sat-inc-gauss",
			applies: func(cs CaseSpec) bool { return cs.K <= sessionMaxK },
			run: func(enc *encoding.Encoding, entry core.LogEntry) ([]core.Signal, error) {
				sess, err := reconstruct.NewSession(enc, reconstruct.SessionOptions{
					MaxK: sessionMaxK, InSearchGauss: true, Obs: reg,
				})
				if err != nil {
					return nil, err
				}
				first, exhausted, err := sess.Query(entry, nil, 0)
				if err != nil {
					return nil, err
				}
				if !exhausted {
					return nil, fmt.Errorf("in-search session enumeration not exhausted")
				}
				again, exhausted, err := sess.Query(entry, nil, 0)
				if err != nil {
					return nil, fmt.Errorf("in-search session re-query: %w", err)
				}
				if !exhausted {
					return nil, fmt.Errorf("in-search session re-query not exhausted")
				}
				if len(again) != len(first) {
					return nil, fmt.Errorf("in-search session re-query returned %d signals, first run %d", len(again), len(first))
				}
				return first, nil
			},
		},
		{
			name: "brute",
			applies: func(cs CaseSpec) bool {
				// Nullity is at most m - 1 and at least m - b; refuse
				// only what BruteForce itself would refuse.
				return cs.M-min(cs.B, cs.M) <= bruteMaxNullity && cs.M <= bruteMaxNullity+6
			},
			run: func(enc *encoding.Encoding, entry core.LogEntry) ([]core.Signal, error) {
				return reconstruct.BruteForce(enc, entry, 0, bruteMaxNullity)
			},
		},
		{
			name:    "exhaustive",
			applies: func(cs CaseSpec) bool { return cs.M <= exhaustiveMaxM },
			run: func(enc *encoding.Encoding, entry core.LogEntry) ([]core.Signal, error) {
				return core.Concretize(enc, entry), nil
			},
		},
		{
			name:    "dispatch",
			applies: func(CaseSpec) bool { return true },
			run: func(enc *encoding.Encoding, entry core.LogEntry) ([]core.Signal, error) {
				disp, err := reconstruct.NewDispatcher(enc, reconstruct.DispatchOptions{Workers: 2, Obs: reg})
				if err != nil {
					return nil, err
				}
				sigs, exhausted, err := disp.Enumerate(context.Background(), entry, nil, 0)
				if err != nil {
					return nil, err
				}
				if !exhausted {
					return nil, fmt.Errorf("dispatch enumeration not exhausted")
				}
				return sigs, nil
			},
		},
	}
	for _, w := range workers {
		w := w
		oracles = append(oracles, oracle{
			name:    fmt.Sprintf("sat-par-%d", w),
			applies: func(CaseSpec) bool { return true },
			run: func(enc *encoding.Encoding, entry core.LogEntry) ([]core.Signal, error) {
				r, err := reconstruct.New(enc, entry, nil, reconstruct.Options{Obs: reg})
				if err != nil {
					return nil, err
				}
				sigs, exhausted, err := r.EnumerateParallelStrict(0, w)
				if err != nil {
					return nil, err
				}
				if !exhausted {
					return nil, fmt.Errorf("parallel enumeration (workers=%d) not exhausted", w)
				}
				// The racing first-solution driver must produce a member
				// of the full set (or agree the set is empty).
				first, st, err := r.FirstParallel(w)
				if err != nil {
					return nil, err
				}
				if (st == sat.Sat) != (len(sigs) > 0) {
					return nil, fmt.Errorf("FirstParallel status %v but %d candidates", st, len(sigs))
				}
				if len(sigs) > 0 {
					found := false
					for _, s := range sigs {
						if s.Equal(first) {
							found = true
							break
						}
					}
					if !found {
						return nil, fmt.Errorf("FirstParallel returned a non-member candidate %s", first)
					}
				}
				return sigs, nil
			},
		})
	}
	return oracles
}
