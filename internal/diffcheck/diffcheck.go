// Package diffcheck is the trust layer of the reconstruction pipeline:
// a differential-testing and fault-injection harness that checks every
// Signal Reconstruction oracle in the repository against the others and
// asserts that corrupted timeprint logs fail closed everywhere.
//
// The paper's postmortem story (Sections 4–5) rests on the
// reconstructor being exact. This repository has five independent ways
// to answer a Signal Reconstruction query — the algebraic syndrome
// decoder (internal/decode, k <= 4), the serial CDCL path, the
// incremental assumption-based session solver, the cube-split parallel
// portfolio, and GF(2) brute force — plus exhaustive concretization
// for tiny m. They share almost no code below
// the encoding, so agreement across all pairs on a randomized corpus is
// strong evidence of correctness, and any disagreement is distilled
// into a self-contained repro (CaseSpec) that Replay re-runs without
// the rest of the corpus.
//
// The companion fault injector (fault.go) corrupts stored logs — TP bit
// flips, k off-by-one, dropped / duplicated / reordered entries, width
// mismatches, truncated serializations — and asserts every layer
// rejects the damage with a typed, wrapped error (never a panic, never
// a silently wrong signal), and that trace.Compare still pinpoints the
// corrupted trace-cycle.
//
// The harness is deterministic: a (seed, cases, sweep) triple always
// generates the same corpus, so a divergence reported from CI is
// reproducible locally with `timeprint selfcheck -seed ... -cases ...`.
package diffcheck

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
)

// Geometry is one point of the (m, b, scheme) sweep.
type Geometry struct {
	// M is the trace-cycle length, B the timestamp width.
	M, B int
	// D is the linear-independence depth requested from the generator.
	D int
	// Scheme selects the timestamp generator: "incremental", "random",
	// "binary" (weak, LI-2 only), or "one-hot".
	Scheme string
	// KMax caps the change count drawn for this geometry; 0 means no
	// per-geometry cap (the Config cap still applies). The cap keeps the
	// expected solution count C(m,k)/2^b small enough that exhaustive
	// enumeration by every oracle stays fast — ambiguity explodes
	// combinatorially on weak (small-b) encodings.
	KMax int
}

func (g Geometry) String() string {
	return fmt.Sprintf("%s m=%d b=%d d=%d", g.Scheme, g.M, g.B, g.D)
}

// DefaultSweep covers the regimes where the oracles behave differently:
// small m (exhaustive concretization applies), weak encodings (massive
// ambiguity, multi-pair collisions in the decoder's pairwise index),
// and LI-4 geometries near the paper's operating point. Per-geometry
// KMax keeps every case's full solution set in the low hundreds.
func DefaultSweep() []Geometry {
	return []Geometry{
		{M: 12, B: 4, D: 2, Scheme: "binary", KMax: 3},
		{M: 14, B: 6, D: 2, Scheme: "incremental", KMax: 4},
		{M: 16, B: 9, D: 4, Scheme: "incremental"},
		{M: 16, B: 10, D: 4, Scheme: "random"},
		{M: 24, B: 5, D: 2, Scheme: "binary", KMax: 3},
		{M: 32, B: 11, D: 4, Scheme: "incremental", KMax: 5},
		{M: 48, B: 12, D: 4, Scheme: "incremental", KMax: 4},
		{M: 48, B: 14, D: 4, Scheme: "random", KMax: 4},
		{M: 64, B: 13, D: 4, Scheme: "incremental", KMax: 4},
	}
}

// Config parameterizes a differential run.
type Config struct {
	// Seed makes the whole corpus deterministic.
	Seed int64
	// Cases is the number of (encoding, entry) cases, spread round-robin
	// over the sweep; <= 0 means 200.
	Cases int
	// Sweep lists the geometries to draw cases from; nil means
	// DefaultSweep.
	Sweep []Geometry
	// Workers lists the worker counts the parallel oracle runs with;
	// nil means {2, 4}.
	Workers []int
	// MaxK caps the change count of generated signals; <= 0 means 6.
	// Values <= decode.MaxK exercise the algebraic decoder, larger ones
	// the SAT-only regime.
	MaxK int
	// Obs, when non-nil, receives the SAT oracles' solver and presolve
	// metrics (the CLI's `selfcheck -metrics` path); nil costs nothing.
	Obs *obs.Registry
}

func (c Config) cases() int {
	if c.Cases <= 0 {
		return 200
	}
	return c.Cases
}

func (c Config) sweep() []Geometry {
	if len(c.Sweep) == 0 {
		return DefaultSweep()
	}
	return c.Sweep
}

func (c Config) workerCounts() []int {
	if len(c.Workers) == 0 {
		return []int{2, 4}
	}
	return c.Workers
}

func (c Config) maxK() int {
	if c.MaxK <= 0 {
		return 6
	}
	return c.MaxK
}

// CaseSpec identifies one (encoding, entry) case completely: the
// geometry, the seed that regenerates the encoding (random scheme), and
// the logged entry with the planted ground-truth signal. It is the
// minimized repro attached to a Divergence — Replay re-runs it in
// isolation.
type CaseSpec struct {
	Geometry
	// EncSeed reproduces the encoding for the "random" scheme (the
	// other schemes are deterministic functions of the geometry).
	EncSeed int64
	// K is the change count of the planted signal.
	K int
	// TruthChanges are the planted change cycles; the case's log entry
	// is their abstraction under the encoding.
	TruthChanges []int
	// TP is the logged timeprint, MSB-first binary (as printed by
	// bitvec.Vector.String), kept so a repro is self-describing even
	// without regenerating the truth signal.
	TP string
}

func (cs CaseSpec) String() string {
	return fmt.Sprintf("%s seed=%d k=%d changes=%v tp=%s", cs.Geometry, cs.EncSeed, cs.K, cs.TruthChanges, cs.TP)
}

// Encoding regenerates the case's encoding.
func (cs CaseSpec) Encoding() (*encoding.Encoding, error) {
	return buildEncoding(cs.Geometry, cs.EncSeed)
}

// Entry regenerates the case's log entry from the planted signal.
func (cs CaseSpec) Entry() (core.LogEntry, error) {
	enc, err := cs.Encoding()
	if err != nil {
		return core.LogEntry{}, err
	}
	return core.Log(enc, core.SignalFromChanges(cs.M, cs.TruthChanges...)), nil
}

func buildEncoding(g Geometry, seed int64) (*encoding.Encoding, error) {
	switch g.Scheme {
	case "incremental":
		return encoding.Incremental(g.M, g.B, g.D)
	case "random":
		return encoding.RandomConstrained(g.M, g.B, g.D, seed, 0)
	case "binary":
		return encoding.Binary(g.M), nil
	case "one-hot":
		return encoding.OneHot(g.M), nil
	default:
		return nil, fmt.Errorf("diffcheck: unknown scheme %q", g.Scheme)
	}
}

// Divergence reports two oracles disagreeing on one case. It implements
// error so a run can surface the first divergence directly.
type Divergence struct {
	Case CaseSpec
	// A and B name the disagreeing oracles.
	A, B string
	// OnlyA and OnlyB list change-sets found by exactly one of the two
	// (each rendered as the candidate's change cycles).
	OnlyA, OnlyB []string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("diffcheck: oracles %s and %s disagree on [%s]: only-%s=%v only-%s=%v",
		d.A, d.B, d.Case, d.A, d.OnlyA, d.B, d.OnlyB)
}

// Report summarizes a differential run.
type Report struct {
	// Cases is the number of (encoding, entry) cases exercised.
	Cases int
	// Comparisons counts oracle-pair set comparisons performed.
	Comparisons int
	// PerOracle counts how many cases each oracle ran on.
	PerOracle map[string]int
	// TruthMisses counts cases where an oracle's solution set did not
	// contain the planted signal (always a bug; also reported as a
	// divergence against the synthetic "truth" oracle).
	TruthMisses int
	// Divergences lists every disagreement found.
	Divergences []*Divergence
}

// Summary renders a one-paragraph human-readable report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diffcheck: %d cases, %d oracle-pair comparisons, %d divergences, %d truth misses\n",
		r.Cases, r.Comparisons, len(r.Divergences), r.TruthMisses)
	names := make([]string, 0, len(r.PerOracle))
	for n := range r.PerOracle {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-16s %d cases\n", n, r.PerOracle[n])
	}
	return b.String()
}

// Ok reports whether the run found full agreement.
func (r *Report) Ok() bool { return len(r.Divergences) == 0 && r.TruthMisses == 0 }

// Run executes the differential corpus described by cfg. An error is
// returned only for harness-level failures (an unsatisfiable geometry,
// an oracle returning an unexpected typed error); disagreements between
// oracles are collected in the report, not returned as errors.
func Run(cfg Config) (*Report, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sweep := cfg.sweep()
	oracles := buildOracles(cfg.workerCounts(), cfg.Obs)
	rep := &Report{PerOracle: map[string]int{}}

	for n := 0; n < cfg.cases(); n++ {
		g := sweep[n%len(sweep)]
		kCap := min(cfg.maxK(), g.M)
		if g.KMax > 0 {
			kCap = min(kCap, g.KMax)
		}
		cs := CaseSpec{
			Geometry: g,
			EncSeed:  rng.Int63(),
			K:        rng.Intn(kCap + 1),
		}
		enc, err := buildEncoding(g, cs.EncSeed)
		if err != nil {
			return nil, fmt.Errorf("diffcheck: case %d [%s]: %w", n, g, err)
		}
		cs.TruthChanges = rng.Perm(g.M)[:cs.K]
		sort.Ints(cs.TruthChanges)
		truth := core.SignalFromChanges(g.M, cs.TruthChanges...)
		entry := core.Log(enc, truth)
		cs.TP = entry.TP.String()

		if err := runCase(rep, oracles, cs, enc, entry, truth); err != nil {
			return nil, fmt.Errorf("diffcheck: case %d: %w", n, err)
		}
		rep.Cases++
	}
	return rep, nil
}

// Replay re-runs a single reported case through every oracle — the
// repro path for a divergence found in CI.
func Replay(cs CaseSpec, workers []int) (*Report, error) {
	enc, err := cs.Encoding()
	if err != nil {
		return nil, err
	}
	truth := core.SignalFromChanges(cs.M, cs.TruthChanges...)
	entry := core.Log(enc, truth)
	if got := entry.TP.String(); cs.TP != "" && got != cs.TP {
		return nil, fmt.Errorf("diffcheck: replay of [%s] regenerated tp=%s", cs, got)
	}
	rep := &Report{PerOracle: map[string]int{}}
	if len(workers) == 0 {
		workers = Config{}.workerCounts()
	}
	if err := runCase(rep, buildOracles(workers, nil), cs, enc, entry, truth); err != nil {
		return nil, err
	}
	rep.Cases = 1
	return rep, nil
}

// runCase pushes one case through every applicable oracle and compares
// all pairs of canonical solution sets.
func runCase(rep *Report, oracles []oracle, cs CaseSpec, enc *encoding.Encoding, entry core.LogEntry, truth core.Signal) error {
	type result struct {
		name string
		set  map[string]core.Signal // canonical key -> candidate
	}
	var results []result
	for _, o := range oracles {
		if !o.applies(cs) {
			continue
		}
		sigs, err := o.run(enc, entry)
		if err != nil {
			return fmt.Errorf("oracle %s on [%s]: %w", o.name, cs, err)
		}
		set := make(map[string]core.Signal, len(sigs))
		for _, s := range sigs {
			set[s.Vector().Key()] = s
		}
		if len(set) != len(sigs) {
			rep.Divergences = append(rep.Divergences, &Divergence{
				Case: cs, A: o.name, B: o.name,
				OnlyA: []string{"duplicate signals in result"},
			})
		}
		if _, ok := set[truth.Vector().Key()]; !ok {
			rep.TruthMisses++
			rep.Divergences = append(rep.Divergences, &Divergence{
				Case: cs, A: o.name, B: "truth",
				OnlyB: []string{fmt.Sprint(truth.Changes())},
			})
		}
		rep.PerOracle[o.name]++
		results = append(results, result{name: o.name, set: set})
	}
	// All pairs: with <= 6 oracles and key-set compares this is cheap
	// and catches a faulty pair even if both disagree with the rest in
	// the same direction.
	for i := 0; i < len(results); i++ {
		for j := i + 1; j < len(results); j++ {
			rep.Comparisons++
			onlyA := diffSets(results[i].set, results[j].set)
			onlyB := diffSets(results[j].set, results[i].set)
			if len(onlyA) > 0 || len(onlyB) > 0 {
				rep.Divergences = append(rep.Divergences, &Divergence{
					Case: cs, A: results[i].name, B: results[j].name,
					OnlyA: onlyA, OnlyB: onlyB,
				})
			}
		}
	}
	return nil
}

// diffSets lists the candidates present in a but not b, rendered as
// change-cycle lists for the divergence report.
func diffSets(a, b map[string]core.Signal) []string {
	var out []string
	for k, s := range a {
		if _, ok := b[k]; !ok {
			out = append(out, fmt.Sprint(s.Changes()))
		}
	}
	sort.Strings(out)
	return out
}
