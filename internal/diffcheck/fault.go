package diffcheck

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/decode"
	"repro/internal/encoding"
	"repro/internal/reconstruct"
	"repro/internal/trace"
)

// FaultReport summarizes a fault-injection run. A fault fails closed
// when it is either rejected with a typed error at ingestion
// (RejectedTyped) or — for structurally valid corruption that no single
// entry can reveal — localized by the store comparison to the exact
// corrupted trace-cycle (Localized). Anything else (a panic, an
// untyped rejection, a silently wrong signal, a mislocalization) is a
// Failure.
type FaultReport struct {
	Injected      int
	RejectedTyped int
	Localized     int
	Failures      []string
}

// Ok reports whether every injected fault failed closed.
func (r *FaultReport) Ok() bool { return len(r.Failures) == 0 }

// Summary renders the fault-injection outcome.
func (r *FaultReport) Summary() string {
	s := fmt.Sprintf("faultcheck: %d faults injected, %d rejected with typed errors, %d localized by compare, %d failures\n",
		r.Injected, r.RejectedTyped, r.Localized, len(r.Failures))
	for _, f := range r.Failures {
		s += "  FAIL: " + f + "\n"
	}
	return s
}

func (r *FaultReport) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// geometry of the reference trace the faults are injected into.
const (
	faultM      = 32
	faultB      = 11
	faultCycles = 24 // trace-cycles in the reference log
)

// InjectFaults builds a reference timeprint log from a randomized wire
// trace and injects every fault class a field-deployed logger could
// produce — TP bit flips, k off-by-one, dropped / duplicated /
// reordered entries, width mismatches, truncated and bit-rotted
// serializations — asserting each fails closed. The run is
// deterministic in the seed.
func InjectFaults(seed int64) (*FaultReport, error) {
	rep := &FaultReport{}
	rng := rand.New(rand.NewSource(seed))

	enc, err := encoding.Incremental(faultM, faultB, 4)
	if err != nil {
		return nil, err
	}
	ref, truths, err := referenceStore(enc, rng)
	if err != nil {
		return nil, err
	}

	injectShapeFaults(rep, enc, ref)
	injectEntryCorruption(rep, enc, ref, truths, rng)
	injectSequenceFaults(rep, ref)
	injectWireFaults(rep, ref, rng)
	injectCompareMisuse(rep, ref)
	return rep, nil
}

// referenceStore logs a randomized busy wire (dense, distinct entries)
// and returns the store plus the per-trace-cycle ground truth.
func referenceStore(enc *encoding.Encoding, rng *rand.Rand) (*trace.Store, []core.Signal, error) {
	st := trace.NewStore("ref", 50e6, enc.M(), enc.B())
	logger := core.NewLogger(enc)
	var truths []core.Signal
	for tc := 0; tc < faultCycles; tc++ {
		k := 2 + rng.Intn(5)
		sig := core.SignalFromChanges(enc.M(), rng.Perm(enc.M())[:k]...)
		truths = append(truths, sig)
		for i := 0; i < enc.M(); i++ {
			logger.TickChange(sig.Changed(i))
		}
	}
	if err := st.Append(logger.Entries()...); err != nil {
		return nil, nil, err
	}
	return st, truths, nil
}

// cloneStore copies a store with the given entries substituted.
func cloneStore(ref *trace.Store, entries []core.LogEntry) (*trace.Store, error) {
	st := trace.NewStore(ref.SignalName, ref.ClockHz, ref.M, ref.B)
	st.Epoch = ref.Epoch
	if err := st.Append(entries...); err != nil {
		return nil, err
	}
	return st, nil
}

// guard runs fn, converting a panic into a harness failure: every layer
// must fail closed, never crash.
func guard(rep *FaultReport, what string, fn func()) {
	defer func() {
		if p := recover(); p != nil {
			rep.failf("%s panicked: %v", what, p)
		}
	}()
	fn()
}

// expectTyped asserts err wraps the sentinel; on success the fault
// counts as rejected-typed.
func expectTyped(rep *FaultReport, what string, err, sentinel error) {
	switch {
	case err == nil:
		rep.failf("%s: corrupted input accepted", what)
	case !errors.Is(err, sentinel):
		rep.failf("%s: rejection not typed (%v, want %v)", what, err, sentinel)
	default:
		rep.RejectedTyped++
	}
}

// injectShapeFaults feeds structurally invalid entries — wrong
// timeprint width, out-of-range change counts — to every ingestion
// layer: the store, both reconstruction oracles, brute force, and the
// wire serializer.
func injectShapeFaults(rep *FaultReport, enc *encoding.Encoding, ref *trace.Store) {
	wide := core.LogEntry{TP: bitvec.New(ref.B + 1), K: 1}
	narrow := core.LogEntry{TP: bitvec.New(ref.B - 1), K: 1}
	kBig := core.LogEntry{TP: bitvec.New(ref.B), K: ref.M + 1}
	kNeg := core.LogEntry{TP: bitvec.New(ref.B), K: -1}

	for _, tc := range []struct {
		name     string
		entry    core.LogEntry
		sentinel error
	}{
		{"width+1", wide, core.ErrWidth},
		{"width-1", narrow, core.ErrWidth},
		{"k>m", kBig, core.ErrKRange},
		{"k<0", kNeg, core.ErrKRange},
	} {
		tc := tc
		rep.Injected++
		guard(rep, "store.Append "+tc.name, func() {
			expectTyped(rep, "store.Append "+tc.name, ref.Append(tc.entry), tc.sentinel)
		})
		rep.Injected++
		guard(rep, "reconstruct.New "+tc.name, func() {
			_, err := reconstruct.New(enc, tc.entry, nil, reconstruct.Options{})
			expectTyped(rep, "reconstruct.New "+tc.name, err, tc.sentinel)
		})
		rep.Injected++
		guard(rep, "reconstruct.BruteForce "+tc.name, func() {
			_, err := reconstruct.BruteForce(enc, tc.entry, 0, 0)
			expectTyped(rep, "reconstruct.BruteForce "+tc.name, err, tc.sentinel)
		})
		rep.Injected++
		guard(rep, "core.WriteLog "+tc.name, func() {
			err := core.WriteLog(&bytes.Buffer{}, ref.M, ref.B, []core.LogEntry{tc.entry})
			expectTyped(rep, "core.WriteLog "+tc.name, err, tc.sentinel)
		})
	}
	// The algebraic decoder additionally rejects k beyond its algorithm
	// family, still typed as a range error.
	for _, tc := range []struct {
		name     string
		entry    core.LogEntry
		sentinel error
	}{
		{"width+1", wide, core.ErrWidth},
		{"k>MaxK", core.LogEntry{TP: bitvec.New(ref.B), K: decode.MaxK + 1}, core.ErrKRange},
		{"k<0", kNeg, core.ErrKRange},
	} {
		tc := tc
		rep.Injected++
		guard(rep, "decode "+tc.name, func() {
			dec := decode.New(enc)
			_, err := dec.Decode(tc.entry)
			expectTyped(rep, "decode.Decode "+tc.name, err, tc.sentinel)
			if _, err := dec.Count(tc.entry); !errors.Is(err, tc.sentinel) {
				rep.failf("decode.Count %s: rejection not typed (%v)", tc.name, err)
			}
		})
	}
}

// injectEntryCorruption flips timeprint bits and nudges change counts —
// corruption that yields a structurally valid entry, which no single
// layer can reject. Failing closed here means: reconstruction never
// panics and never returns a signal inconsistent with the (corrupted)
// entry it was given, and the store comparison pinpoints the corrupted
// trace-cycle exactly.
func injectEntryCorruption(rep *FaultReport, enc *encoding.Encoding, ref *trace.Store, truths []core.Signal, rng *rand.Rand) {
	for trial := 0; trial < 16; trial++ {
		tc := rng.Intn(ref.Len())
		entries := ref.Entries()
		orig := entries[tc]
		corrupted := core.LogEntry{TP: orig.TP.Clone(), K: orig.K}
		var what string
		if trial%2 == 0 {
			bit := rng.Intn(ref.B)
			corrupted.TP.Flip(bit)
			what = fmt.Sprintf("TP bit-flip tc=%d bit=%d", tc, bit)
		} else {
			delta := 1 - 2*rng.Intn(2) // ±1
			if corrupted.K+delta < 0 || corrupted.K+delta > ref.M {
				delta = -delta
			}
			corrupted.K += delta
			what = fmt.Sprintf("k off-by-one tc=%d (%+d)", tc, delta)
		}
		entries[tc] = corrupted

		rep.Injected++
		guard(rep, what, func() {
			bad, err := cloneStore(ref, entries)
			if err != nil {
				rep.failf("%s: corrupted store rebuild: %v", what, err)
				return
			}
			// Localization: the diff must flag exactly the corrupted
			// trace-cycle, classified by what changed.
			ms, err := trace.Compare(ref, bad)
			if err != nil {
				rep.failf("%s: compare errored: %v", what, err)
				return
			}
			if len(ms) != 1 || ms[0].TraceCycle != tc {
				rep.failf("%s: compare flagged %+v, want exactly tc %d", what, ms, tc)
				return
			}
			wantK := corrupted.K != orig.K
			if ms[0].KDiffers != wantK || ms[0].TPDiffers == wantK {
				rep.failf("%s: misclassified mismatch %+v", what, ms[0])
				return
			}
			rep.Localized++

			// Reconstruction of the corrupted entry must stay internally
			// consistent: every candidate re-logs to the corrupted entry,
			// and the true signal is never among them (its abstraction is
			// the original entry, which differs).
			r, err := reconstruct.New(enc, corrupted, nil, reconstruct.Options{})
			if err != nil {
				rep.failf("%s: reconstruct.New rejected a well-formed entry: %v", what, err)
				return
			}
			sigs, exhausted, err := r.EnumerateStrict(0)
			if err != nil {
				rep.failf("%s: enumeration failed: %v", what, err)
				return
			}
			if !exhausted {
				rep.failf("%s: enumeration not exhausted", what)
				return
			}
			for _, s := range sigs {
				if !core.Log(enc, s).Equal(corrupted) {
					rep.failf("%s: candidate %v inconsistent with corrupted entry", what, s.Changes())
				}
				if s.Equal(truths[tc]) {
					rep.failf("%s: corrupted entry silently reconstructed the original signal", what)
				}
			}
			if corrupted.K <= decode.MaxK {
				alg, err := decode.New(enc).Decode(corrupted)
				if err != nil {
					rep.failf("%s: decode rejected a well-formed entry: %v", what, err)
					return
				}
				if len(alg) != len(sigs) {
					rep.failf("%s: decode found %d candidates, sat %d", what, len(alg), len(sigs))
				}
			}
		})
	}
}

// injectSequenceFaults drops, duplicates, and reorders whole entries —
// the dropped-trace-cycle and replay artifacts of a flaky logging link.
// The store accepts such logs (each entry is valid); the comparison
// against the reference must localize the damage at the exact
// trace-cycle where the sequences first disagree.
func injectSequenceFaults(rep *FaultReport, ref *trace.Store) {
	entries := ref.Entries()
	// Pick positions whose neighbors differ so the expected first
	// mismatch is exact (random dense entries collide with negligible
	// probability, but pin it down deterministically).
	pos := -1
	for i := 0; i+1 < len(entries); i++ {
		if !entries[i].Equal(entries[i+1]) {
			pos = i
			break
		}
	}
	if pos < 0 {
		rep.failf("sequence faults: reference trace degenerate (all entries equal)")
		return
	}

	// Dropped entry: suffix shifts left; first disagreement at pos.
	rep.Injected++
	guard(rep, "dropped entry", func() {
		dropped := append(append([]core.LogEntry{}, entries[:pos]...), entries[pos+1:]...)
		bad, err := cloneStore(ref, dropped)
		if err != nil {
			rep.failf("dropped entry: rebuild: %v", err)
			return
		}
		ms, err := trace.Compare(ref, bad)
		if err != nil {
			rep.failf("dropped entry: compare: %v", err)
			return
		}
		if first := trace.FirstMismatch(ms); first != pos {
			rep.failf("dropped entry at %d: first mismatch %d", pos, first)
			return
		}
		rep.Localized++
	})

	// Duplicated entry: suffix shifts right; sequences agree through
	// pos (the duplicate equals the original) and disagree at pos+1.
	rep.Injected++
	guard(rep, "duplicated entry", func() {
		dup := append([]core.LogEntry{}, entries[:pos+1]...)
		dup = append(dup, entries[pos])
		dup = append(dup, entries[pos+1:]...)
		bad, err := cloneStore(ref, dup)
		if err != nil {
			rep.failf("duplicated entry: rebuild: %v", err)
			return
		}
		ms, err := trace.Compare(ref, bad)
		if err != nil {
			rep.failf("duplicated entry: compare: %v", err)
			return
		}
		if first := trace.FirstMismatch(ms); first != pos+1 {
			rep.failf("duplicated entry at %d: first mismatch %d", pos, first)
			return
		}
		rep.Localized++
	})

	// Reordered entries: swap two distinct entries; both positions must
	// be flagged and nothing else.
	rep.Injected++
	guard(rep, "reordered entries", func() {
		i, j := pos, pos+1
		// Stretch the swap distance when possible for a harder case.
		for jj := len(entries) - 1; jj > i+1; jj-- {
			if !entries[jj].Equal(entries[i]) {
				j = jj
				break
			}
		}
		swapped := append([]core.LogEntry{}, entries...)
		swapped[i], swapped[j] = swapped[j], swapped[i]
		bad, err := cloneStore(ref, swapped)
		if err != nil {
			rep.failf("reordered entries: rebuild: %v", err)
			return
		}
		ms, err := trace.Compare(ref, bad)
		if err != nil {
			rep.failf("reordered entries: compare: %v", err)
			return
		}
		if len(ms) != 2 || ms[0].TraceCycle != i || ms[1].TraceCycle != j {
			rep.failf("reordered entries %d<->%d: flagged %+v", i, j, ms)
			return
		}
		rep.Localized++
	})
}

// injectWireFaults corrupts the serialized byte stream: truncation at
// every prefix length, header rot, and random payload bit flips that
// produce an undecodable change count. ReadLog must reject each with a
// typed corruption error and never panic or over-allocate.
func injectWireFaults(rep *FaultReport, ref *trace.Store, rng *rand.Rand) {
	var buf bytes.Buffer
	if err := core.WriteLog(&buf, ref.M, ref.B, ref.Entries()); err != nil {
		rep.failf("wire faults: serialize reference: %v", err)
		return
	}
	raw := buf.Bytes()

	// Truncations: a sample of prefix lengths including every header
	// boundary.
	cuts := []int{0, 1, 3, 4, 7, 8, 11, 12, 15, 16}
	for i := 0; i < 6; i++ {
		cuts = append(cuts, 16+rng.Intn(len(raw)-17))
	}
	for _, cut := range cuts {
		rep.Injected++
		cut := cut
		guard(rep, fmt.Sprintf("truncated log at %d bytes", cut), func() {
			_, _, _, err := core.ReadLog(bytes.NewReader(raw[:cut]))
			expectTyped(rep, fmt.Sprintf("truncated log at %d bytes", cut), err, core.ErrCorrupt)
		})
	}

	// Header rot: break the magic.
	rep.Injected++
	guard(rep, "bad magic", func() {
		rot := append([]byte{}, raw...)
		rot[0] ^= 0xFF
		_, _, _, err := core.ReadLog(bytes.NewReader(rot))
		expectTyped(rep, "bad magic", err, core.ErrCorrupt)
	})

	// Implausible geometry: huge m in the header.
	rep.Injected++
	guard(rep, "implausible header", func() {
		rot := append([]byte{}, raw...)
		rot[7] = 0xFF // high byte of m
		_, _, _, err := core.ReadLog(bytes.NewReader(rot))
		expectTyped(rep, "implausible header", err, core.ErrCorrupt)
	})

	// Payload rot: force an entry to decode k > m by setting all bits
	// of one entry's k field. KBits(32)=6 encodes up to 63 > 32, so an
	// all-ones counter is undecodable.
	rep.Injected++
	guard(rep, "k field rot", func() {
		rot := append([]byte{}, raw...)
		kb := core.KBits(ref.M)
		// First entry's k field starts after the 16-byte header and b
		// payload bits.
		for bit := ref.B; bit < ref.B+kb; bit++ {
			rot[16+bit/8] |= 1 << (bit % 8)
		}
		_, _, _, err := core.ReadLog(bytes.NewReader(rot))
		expectTyped(rep, "k field rot", err, core.ErrCorrupt)
	})
}

// injectCompareMisuse diffs stores with mismatched trace parameters;
// every combination must be rejected with the typed incompatibility
// error rather than silently producing a misaligned comparison.
func injectCompareMisuse(rep *FaultReport, ref *trace.Store) {
	mutations := []struct {
		name string
		mut  func(s *trace.Store)
	}{
		{"different m", func(s *trace.Store) { s.M = ref.M * 2 }},
		{"different b", func(s *trace.Store) { s.B = ref.B + 1 }},
		{"different clock", func(s *trace.Store) { s.ClockHz = ref.ClockHz * 2 }},
		{"different epoch", func(s *trace.Store) { s.Epoch = ref.Epoch + 1.5 }},
	}
	for _, mu := range mutations {
		mu := mu
		rep.Injected++
		guard(rep, "compare "+mu.name, func() {
			other := trace.NewStore(ref.SignalName, ref.ClockHz, ref.M, ref.B)
			other.Epoch = ref.Epoch
			mu.mut(other)
			_, err := trace.Compare(ref, other)
			expectTyped(rep, "compare "+mu.name, err, trace.ErrIncompatible)
		})
	}
}
