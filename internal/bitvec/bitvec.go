// Package bitvec implements fixed-width bit vectors over F2, the field
// with two elements. Vectors are the fundamental carrier type of the
// timeprints method: encoded timestamps, timeprints and signal
// change-maps are all F2 vectors, and timeprint aggregation is vector
// addition over F2 (bitwise XOR).
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-width vector over F2. Bit 0 is the least-significant
// bit of the first word. The zero value is an empty (width-0) vector.
//
// Vectors of different widths never compare equal and may not be XORed
// together; such misuse panics, since it always indicates a programming
// error in an encoding or logging pipeline rather than a runtime
// condition to recover from.
type Vector struct {
	width int
	words []uint64
}

// New returns a zero vector of the given width in bits.
func New(width int) Vector {
	if width < 0 {
		panic(fmt.Sprintf("bitvec: negative width %d", width))
	}
	return Vector{width: width, words: make([]uint64, wordsFor(width))}
}

func wordsFor(width int) int { return (width + wordBits - 1) / wordBits }

// FromUint returns a width-bit vector whose low 64 bits are taken from v.
// Bits of v beyond width are discarded.
func FromUint(v uint64, width int) Vector {
	out := New(width)
	if width == 0 {
		return out
	}
	if width < wordBits {
		v &= (1 << uint(width)) - 1
	}
	out.words[0] = v
	return out
}

// FromBits returns a vector with width len(bits); bits[i] != 0 sets bit i.
func FromBits(bitvals []int) Vector {
	out := New(len(bitvals))
	for i, b := range bitvals {
		if b != 0 {
			out.Set(i, true)
		}
	}
	return out
}

// FromOnes returns a zero vector of the given width with the listed bit
// positions set to 1. Positions out of range panic.
func FromOnes(width int, ones ...int) Vector {
	out := New(width)
	for _, i := range ones {
		out.Set(i, true)
	}
	return out
}

// Width reports the vector's width in bits.
func (v Vector) Width() int { return v.width }

// Get reports whether bit i is set. It panics if i is out of range.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Set sets bit i to the given value. It panics if i is out of range.
func (v Vector) Set(i int, val bool) {
	v.check(i)
	if val {
		v.words[i/wordBits] |= 1 << uint(i%wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << uint(i%wordBits)
	}
}

// Flip toggles bit i. It panics if i is out of range.
func (v Vector) Flip(i int) {
	v.check(i)
	v.words[i/wordBits] ^= 1 << uint(i%wordBits)
}

func (v Vector) check(i int) {
	if i < 0 || i >= v.width {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.width))
	}
}

// XorInPlace adds u to v over F2, mutating v. Widths must match.
func (v Vector) XorInPlace(u Vector) {
	if v.width != u.width {
		panic(fmt.Sprintf("bitvec: width mismatch %d vs %d", v.width, u.width))
	}
	for i := range v.words {
		v.words[i] ^= u.words[i]
	}
}

// Xor returns v + u over F2 without mutating either operand.
func (v Vector) Xor(u Vector) Vector {
	out := v.Clone()
	out.XorInPlace(u)
	return out
}

// And returns the bitwise AND of v and u. Widths must match.
func (v Vector) And(u Vector) Vector {
	if v.width != u.width {
		panic(fmt.Sprintf("bitvec: width mismatch %d vs %d", v.width, u.width))
	}
	out := v.Clone()
	for i := range out.words {
		out.words[i] &= u.words[i]
	}
	return out
}

// PopCount returns the number of 1-bits in v.
func (v Vector) PopCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsZero reports whether every bit of v is 0.
func (v Vector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and u have the same width and bits.
func (v Vector) Equal(u Vector) bool {
	if v.width != u.width {
		return false
	}
	for i := range v.words {
		if v.words[i] != u.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	out := Vector{width: v.width, words: make([]uint64, len(v.words))}
	copy(out.words, v.words)
	return out
}

// Ones returns the positions of the 1-bits of v in increasing order.
func (v Vector) Ones() []int {
	out := make([]int, 0, v.PopCount())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// FirstOne returns the position of the lowest set bit, or -1 if v is zero.
func (v Vector) FirstOne() int {
	for wi, w := range v.words {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// LastOne returns the position of the highest set bit, or -1 if v is zero.
func (v Vector) LastOne() int {
	for wi := len(v.words) - 1; wi >= 0; wi-- {
		if w := v.words[wi]; w != 0 {
			return wi*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// Uint64 returns the low 64 bits of v as an integer. It panics if v is
// wider than 64 bits and has any bit set at position >= 64.
func (v Vector) Uint64() uint64 {
	if len(v.words) == 0 {
		return 0
	}
	for _, w := range v.words[1:] {
		if w != 0 {
			panic("bitvec: Uint64 on vector with bits above 63")
		}
	}
	return v.words[0]
}

// String renders v MSB-first as a binary string, matching the bitvector
// notation used in the paper's Figure 4 (e.g. "00000001" for a vector
// whose only set bit is bit 0).
func (v Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.width)
	for i := v.width - 1; i >= 0; i-- {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// LSBString renders v LSB-first (bit 0 leftmost), the natural reading
// order when bit i corresponds to clock-cycle i of a trace-cycle.
func (v Vector) LSBString() string {
	var sb strings.Builder
	sb.Grow(v.width)
	for i := 0; i < v.width; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Parse parses an MSB-first binary string (as produced by String) into a
// vector of width len(s).
func Parse(s string) (Vector, error) {
	out := New(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			out.Set(len(s)-1-i, true)
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid character %q at %d", c, i)
		}
	}
	return out, nil
}

// MustParse is Parse that panics on malformed input; for tests and
// literals.
func MustParse(s string) Vector {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// ParseLSB parses an LSB-first binary string (as produced by LSBString).
func ParseLSB(s string) (Vector, error) {
	out := New(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			out.Set(i, true)
		default:
			return Vector{}, fmt.Errorf("bitvec: invalid character %q at %d", c, i)
		}
	}
	return out, nil
}

// Slice returns the sub-vector of bits [lo, hi) as a new vector of width
// hi-lo.
func (v Vector) Slice(lo, hi int) Vector {
	if lo < 0 || hi > v.width || lo > hi {
		panic(fmt.Sprintf("bitvec: bad slice [%d,%d) of width %d", lo, hi, v.width))
	}
	out := New(hi - lo)
	for i := lo; i < hi; i++ {
		if v.Get(i) {
			out.Set(i-lo, true)
		}
	}
	return out
}

// Concat returns the concatenation of v (low bits) and u (high bits).
func (v Vector) Concat(u Vector) Vector {
	out := New(v.width + u.width)
	for _, i := range v.Ones() {
		out.Set(i, true)
	}
	for _, i := range u.Ones() {
		out.Set(v.width+i, true)
	}
	return out
}

// Key returns a comparable representation of v suitable for use as a map
// key. Two vectors have the same key iff Equal reports true.
func (v Vector) Key() string {
	var sb strings.Builder
	sb.Grow(len(v.words)*8 + 4)
	fmt.Fprintf(&sb, "%d:", v.width)
	for _, w := range v.words {
		sb.WriteByte(byte(w))
		sb.WriteByte(byte(w >> 8))
		sb.WriteByte(byte(w >> 16))
		sb.WriteByte(byte(w >> 24))
		sb.WriteByte(byte(w >> 32))
		sb.WriteByte(byte(w >> 40))
		sb.WriteByte(byte(w >> 48))
		sb.WriteByte(byte(w >> 56))
	}
	return sb.String()
}
