package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZero(t *testing.T) {
	for _, w := range []int{0, 1, 63, 64, 65, 128, 1000} {
		v := New(w)
		if v.Width() != w {
			t.Errorf("width %d: got %d", w, v.Width())
		}
		if !v.IsZero() {
			t.Errorf("width %d: new vector not zero", w)
		}
		if v.PopCount() != 0 {
			t.Errorf("width %d: popcount %d", w, v.PopCount())
		}
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set on fresh vector", i)
		}
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Flip(i)
		if v.Get(i) {
			t.Fatalf("bit %d set after Flip", i)
		}
		v.Flip(i)
		if !v.Get(i) {
			t.Fatalf("bit %d clear after second Flip", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Fatalf("bit %d set after Set false", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(8)
	for _, f := range []func(){
		func() { v.Get(8) },
		func() { v.Get(-1) },
		func() { v.Set(8, true) },
		func() { v.Flip(100) },
		func() { v.XorInPlace(New(9)) },
		func() { v.And(New(7)) },
		func() { New(-1) },
		func() { v.Slice(3, 2) },
		func() { v.Slice(0, 9) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestXor(t *testing.T) {
	a := FromOnes(100, 0, 50, 99)
	b := FromOnes(100, 50, 64, 99)
	c := a.Xor(b)
	want := FromOnes(100, 0, 64)
	if !c.Equal(want) {
		t.Errorf("xor: got %v want %v", c.Ones(), want.Ones())
	}
	// Operands unchanged.
	if !a.Equal(FromOnes(100, 0, 50, 99)) || !b.Equal(FromOnes(100, 50, 64, 99)) {
		t.Error("Xor mutated an operand")
	}
	// XOR with self is zero.
	if !a.Xor(a).IsZero() {
		t.Error("a xor a != 0")
	}
}

func TestFromUintMasksHighBits(t *testing.T) {
	v := FromUint(0xFF, 4)
	if got := v.Uint64(); got != 0xF {
		t.Errorf("got %#x want 0xF", got)
	}
	w := FromUint(0xDEADBEEF, 64)
	if got := w.Uint64(); got != 0xDEADBEEF {
		t.Errorf("got %#x", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	cases := []string{"0", "1", "00000001", "10100000", "01101100",
		"1111111111111111", "000000000000000000000000000000000000000000000000000000000000000001"}
	for _, s := range cases {
		v := MustParse(s)
		if v.String() != s {
			t.Errorf("round trip %q -> %q", s, v.String())
		}
	}
	// Figure 4's TS(1) = 00010100: bits 2 and 4 set.
	v := MustParse("00010100")
	if got := v.Ones(); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("ones of 00010100: %v", got)
	}
}

func TestLSBString(t *testing.T) {
	v := FromOnes(8, 0, 3)
	if got := v.LSBString(); got != "10010000" {
		t.Errorf("LSBString: %q", got)
	}
	u, err := ParseLSB("10010000")
	if err != nil || !u.Equal(v) {
		t.Errorf("ParseLSB mismatch: %v %v", u, err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("01x"); err == nil {
		t.Error("Parse accepted bad char")
	}
	if _, err := ParseLSB("2"); err == nil {
		t.Error("ParseLSB accepted bad char")
	}
}

func TestOnesFirstLast(t *testing.T) {
	v := FromOnes(200, 5, 63, 64, 150, 199)
	want := []int{5, 63, 64, 150, 199}
	got := v.Ones()
	if len(got) != len(want) {
		t.Fatalf("ones: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ones: %v", got)
		}
	}
	if v.FirstOne() != 5 || v.LastOne() != 199 {
		t.Errorf("first/last: %d/%d", v.FirstOne(), v.LastOne())
	}
	z := New(66)
	if z.FirstOne() != -1 || z.LastOne() != -1 {
		t.Error("first/last of zero vector")
	}
}

func TestSliceConcat(t *testing.T) {
	v := FromOnes(16, 1, 7, 8, 15)
	lo := v.Slice(0, 8)
	hi := v.Slice(8, 16)
	if !lo.Equal(FromOnes(8, 1, 7)) {
		t.Errorf("lo: %v", lo.Ones())
	}
	if !hi.Equal(FromOnes(8, 0, 7)) {
		t.Errorf("hi: %v", hi.Ones())
	}
	if !lo.Concat(hi).Equal(v) {
		t.Error("concat(slice lo, slice hi) != v")
	}
}

func TestAnd(t *testing.T) {
	a := FromOnes(70, 0, 1, 65)
	b := FromOnes(70, 1, 2, 65)
	if got := a.And(b); !got.Equal(FromOnes(70, 1, 65)) {
		t.Errorf("and: %v", got.Ones())
	}
}

func TestKeyEquality(t *testing.T) {
	a := FromOnes(100, 3, 99)
	b := FromOnes(100, 3, 99)
	c := FromOnes(100, 3, 98)
	d := FromOnes(101, 3, 99)
	if a.Key() != b.Key() {
		t.Error("equal vectors, different keys")
	}
	if a.Key() == c.Key() {
		t.Error("different vectors, same key")
	}
	if a.Key() == d.Key() {
		t.Error("different widths, same key")
	}
}

func TestUint64PanicsOnWide(t *testing.T) {
	v := FromOnes(100, 80)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	_ = v.Uint64()
}

func TestCloneIndependence(t *testing.T) {
	a := FromOnes(64, 10)
	b := a.Clone()
	b.Set(20, true)
	if a.Get(20) {
		t.Error("clone shares storage")
	}
}

// randomVec builds a width-w vector with each bit set with probability 1/2.
func randomVec(r *rand.Rand, w int) Vector {
	v := New(w)
	for i := 0; i < w; i++ {
		if r.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

func TestXorProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		w := 1 + r.Intn(200)
		a, b, c := randomVec(r, w), randomVec(r, w), randomVec(r, w)
		// Commutativity.
		if !a.Xor(b).Equal(b.Xor(a)) {
			t.Fatal("xor not commutative")
		}
		// Associativity.
		if !a.Xor(b).Xor(c).Equal(a.Xor(b.Xor(c))) {
			t.Fatal("xor not associative")
		}
		// Identity.
		if !a.Xor(New(w)).Equal(a) {
			t.Fatal("zero not identity")
		}
		// Self-inverse.
		if !a.Xor(a).IsZero() {
			t.Fatal("a xor a != 0")
		}
		// Popcount parity: |a^b| = |a|+|b| - 2|a&b|.
		if a.Xor(b).PopCount() != a.PopCount()+b.PopCount()-2*a.And(b).PopCount() {
			t.Fatal("popcount identity violated")
		}
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		v := New(len(raw))
		for i, b := range raw {
			v.Set(i, b)
		}
		u, err := Parse(v.String())
		return err == nil && u.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickOnesRoundTrip(t *testing.T) {
	f := func(raw []bool) bool {
		v := New(len(raw))
		n := 0
		for i, b := range raw {
			v.Set(i, b)
			if b {
				n++
			}
		}
		ones := v.Ones()
		if len(ones) != n || v.PopCount() != n {
			return false
		}
		u := FromOnes(len(raw), ones...)
		return u.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
