// Package leon3 implements a small in-order 32-bit load/store core in
// the role the LEON3 plays in experiment 5.2.2: it executes a program
// image and generates data traffic on the AHB bus, whose address
// signals are the traced wire. The core is deliberately not a SPARC —
// the experiment needs realistic, deterministic bus activity, not
// binary compatibility — but it keeps the structural properties that
// matter: one instruction per cycle from an internal instruction
// memory (an always-hitting I-cache), blocking data accesses over AHB,
// and a timer-wait instruction modelling the timer-driven control
// loops of embedded software (which is what lets a one-cycle memory
// stall be absorbed before the next loop iteration instead of shifting
// the whole execution).
package leon3

import (
	"fmt"

	"repro/internal/ahb"
)

// Opcodes of the mini ISA.
const (
	OpNOP  = iota // no operation
	OpLI          // rd = imm16 (zero-extended)
	OpLUI         // rd = imm16 << 16
	OpADD         // rd = rs1 + rs2
	OpSUB         // rd = rs1 - rs2
	OpXOR         // rd = rs1 ^ rs2
	OpAND         // rd = rs1 & rs2
	OpOR          // rd = rs1 | rs2
	OpADDI        // rd = rs1 + sext(imm16)
	OpLD          // rd = mem32[rs1 + sext(imm16)]
	OpST          // mem32[rs1 + sext(imm16)] = rd
	OpBEQ         // if rd == rs1: pc += sext(imm16)
	OpBNE         // if rd != rs1: pc += sext(imm16)
	OpJMP         // pc += sext(imm16)
	OpWFT         // wait until the next cycle-count multiple of imm16
	OpHALT        // stop
	opMax
)

// Instruction word layout: op[31:24] rd[23:20] rs1[19:16] imm[15:0]
// (rs2 for register ops lives in imm[15:12]).

// Enc packs an instruction word.
func Enc(op, rd, rs1 int, imm uint16) uint32 {
	if op < 0 || op >= opMax || rd < 0 || rd > 15 || rs1 < 0 || rs1 > 15 {
		panic(fmt.Sprintf("leon3: bad instruction fields op=%d rd=%d rs1=%d", op, rd, rs1))
	}
	return uint32(op)<<24 | uint32(rd)<<20 | uint32(rs1)<<16 | uint32(imm)
}

// Convenience assemblers.
func NOP() uint32                        { return Enc(OpNOP, 0, 0, 0) }
func LI(rd int, imm uint16) uint32       { return Enc(OpLI, rd, 0, imm) }
func LUI(rd int, imm uint16) uint32      { return Enc(OpLUI, rd, 0, imm) }
func ADD(rd, rs1, rs2 int) uint32        { return Enc(OpADD, rd, rs1, uint16(rs2)<<12) }
func SUB(rd, rs1, rs2 int) uint32        { return Enc(OpSUB, rd, rs1, uint16(rs2)<<12) }
func XOR(rd, rs1, rs2 int) uint32        { return Enc(OpXOR, rd, rs1, uint16(rs2)<<12) }
func AND(rd, rs1, rs2 int) uint32        { return Enc(OpAND, rd, rs1, uint16(rs2)<<12) }
func OR(rd, rs1, rs2 int) uint32         { return Enc(OpOR, rd, rs1, uint16(rs2)<<12) }
func ADDI(rd, rs1 int, imm int16) uint32 { return Enc(OpADDI, rd, rs1, uint16(imm)) }
func LD(rd, rs1 int, imm int16) uint32   { return Enc(OpLD, rd, rs1, uint16(imm)) }
func ST(rs, rs1 int, imm int16) uint32   { return Enc(OpST, rs, rs1, uint16(imm)) }
func BEQ(ra, rb int, off int16) uint32   { return Enc(OpBEQ, ra, rb, uint16(off)) }
func BNE(ra, rb int, off int16) uint32   { return Enc(OpBNE, ra, rb, uint16(off)) }
func JMP(off int16) uint32               { return Enc(OpJMP, 0, 0, uint16(off)) }
func WFT(period uint16) uint32           { return Enc(OpWFT, 0, 0, period) }
func HALT() uint32                       { return Enc(OpHALT, 0, 0, 0) }

// Core states.
const (
	stExec     = iota
	stMemIssue // memory request driven, waiting for HREADY to drop
	stMemWait  // waiting for HREADY to rise
	stMemDone  // drive IDLE, resume next cycle
	stWait     // WFT
	stHalted
)

// Core is the processor. It implements rtl.Component.
type Core struct {
	ch   *ahb.Channel
	prog []uint32

	pc     int
	regs   [16]uint32
	state  int
	guard  int
	memRd  int // LD destination register, -1 for stores
	waitTo int64

	retired int64
	loads   int64
	stores  int64
}

// New creates a core executing prog over the channel. Register 0 is
// hardwired to zero.
func New(ch *ahb.Channel, prog []uint32) *Core {
	return &Core{ch: ch, prog: prog}
}

// Halted reports whether the core has executed HALT or run off the
// program.
func (c *Core) Halted() bool { return c.state == stHalted }

// Retired returns the number of retired instructions.
func (c *Core) Retired() int64 { return c.retired }

// Loads and Stores return completed data-access counts.
func (c *Core) Loads() int64  { return c.loads }
func (c *Core) Stores() int64 { return c.stores }

// Reg returns register r's value (test introspection).
func (c *Core) Reg(r int) uint32 { return c.regs[r] }

// PC returns the current program counter.
func (c *Core) PC() int { return c.pc }

func sext(imm uint16) uint32 { return uint32(int32(int16(imm))) }

// Eval implements rtl.Component.
func (c *Core) Eval(cycle int64) {
	switch c.state {
	case stHalted:
		return
	case stWait:
		if cycle >= c.waitTo {
			c.state = stExec
			c.exec(cycle)
		}
	case stMemIssue:
		// The request commits one edge after it was driven and the
		// decoder's HREADY drop one edge after that; ignore the stale
		// high HREADY until then.
		c.guard--
		if c.guard <= 0 {
			c.state = stMemWait
		}
	case stMemWait:
		if c.ch.HREADY.GetBool() {
			if c.memRd >= 0 {
				c.setReg(c.memRd, uint32(c.ch.HRDATA.Get()))
				c.loads++
			} else {
				c.stores++
			}
			c.ch.HTRANS.Set(ahb.TransIdle)
			c.state = stMemDone
		}
	case stMemDone:
		c.state = stExec
		c.exec(cycle)
	case stExec:
		c.exec(cycle)
	}
}

func (c *Core) setReg(r int, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}

// exec executes the instruction at pc.
func (c *Core) exec(cycle int64) {
	if c.pc < 0 || c.pc >= len(c.prog) {
		c.state = stHalted
		return
	}
	ins := c.prog[c.pc]
	op := int(ins >> 24)
	rd := int(ins >> 20 & 0xF)
	rs1 := int(ins >> 16 & 0xF)
	imm := uint16(ins)
	rs2 := int(imm >> 12)
	c.pc++
	c.retired++

	switch op {
	case OpNOP:
	case OpLI:
		c.setReg(rd, uint32(imm))
	case OpLUI:
		c.setReg(rd, uint32(imm)<<16)
	case OpADD:
		c.setReg(rd, c.regs[rs1]+c.regs[rs2])
	case OpSUB:
		c.setReg(rd, c.regs[rs1]-c.regs[rs2])
	case OpXOR:
		c.setReg(rd, c.regs[rs1]^c.regs[rs2])
	case OpAND:
		c.setReg(rd, c.regs[rs1]&c.regs[rs2])
	case OpOR:
		c.setReg(rd, c.regs[rs1]|c.regs[rs2])
	case OpADDI:
		c.setReg(rd, c.regs[rs1]+sext(imm))
	case OpLD, OpST:
		addr := c.regs[rs1] + sext(imm)
		c.ch.HADDR.Set(uint64(addr))
		c.ch.HTRANS.Set(ahb.TransNonSeq)
		if op == OpST {
			c.ch.HWRITE.Set(1)
			c.ch.HWDATA.Set(uint64(c.regs[rd]))
			c.memRd = -1
		} else {
			c.ch.HWRITE.Set(0)
			c.memRd = rd
		}
		c.state = stMemIssue
		c.guard = 2
	case OpBEQ:
		if c.regs[rd] == c.regs[rs1] {
			c.pc += int(int16(imm)) - 1
		}
	case OpBNE:
		if c.regs[rd] != c.regs[rs1] {
			c.pc += int(int16(imm)) - 1
		}
	case OpJMP:
		c.pc += int(int16(imm)) - 1
	case OpWFT:
		p := int64(imm)
		if p <= 0 {
			c.state = stHalted
			return
		}
		c.waitTo = (cycle/p + 1) * p
		c.state = stWait
	case OpHALT:
		c.state = stHalted
	default:
		c.state = stHalted
	}
}
