package leon3

import (
	"math/rand"
	"testing"

	"repro/internal/sram"
)

// golden is an untimed reference interpreter of the ISA: it executes
// instructions functionally against a flat memory, ignoring all bus
// timing. Differential testing against the cycle-accurate core
// catches semantic drift between the two.
type golden struct {
	regs [16]uint32
	mem  map[uint32]uint32
	pc   int
}

func (g *golden) run(prog []uint32, maxSteps int) bool {
	for steps := 0; steps < maxSteps; steps++ {
		if g.pc < 0 || g.pc >= len(prog) {
			return true
		}
		ins := prog[g.pc]
		op := int(ins >> 24)
		rd := int(ins >> 20 & 0xF)
		rs1 := int(ins >> 16 & 0xF)
		imm := uint16(ins)
		rs2 := int(imm >> 12)
		g.pc++
		set := func(r int, v uint32) {
			if r != 0 {
				g.regs[r] = v
			}
		}
		switch op {
		case OpNOP:
		case OpLI:
			set(rd, uint32(imm))
		case OpLUI:
			set(rd, uint32(imm)<<16)
		case OpADD:
			set(rd, g.regs[rs1]+g.regs[rs2])
		case OpSUB:
			set(rd, g.regs[rs1]-g.regs[rs2])
		case OpXOR:
			set(rd, g.regs[rs1]^g.regs[rs2])
		case OpAND:
			set(rd, g.regs[rs1]&g.regs[rs2])
		case OpOR:
			set(rd, g.regs[rs1]|g.regs[rs2])
		case OpADDI:
			set(rd, g.regs[rs1]+sext(imm))
		case OpLD:
			set(rd, g.mem[(g.regs[rs1]+sext(imm))>>2])
		case OpST:
			g.mem[(g.regs[rs1]+sext(imm))>>2] = g.regs[rd]
		case OpBEQ:
			if g.regs[rd] == g.regs[rs1] {
				g.pc += int(int16(imm)) - 1
			}
		case OpBNE:
			if g.regs[rd] != g.regs[rs1] {
				g.pc += int(int16(imm)) - 1
			}
		case OpJMP:
			g.pc += int(int16(imm)) - 1
		case OpWFT:
			if imm == 0 {
				return true
			}
			// Untimed: WFT is a timing no-op functionally.
		case OpHALT:
			return true
		default:
			return true
		}
	}
	return false
}

// randomStraightLine builds a random program of arithmetic and memory
// operations with no control flow, ending in HALT.
func randomStraightLine(r *rand.Rand, n int) []uint32 {
	prog := []uint32{
		LI(1, 0x100), // a valid base pointer
		LI(2, uint16(r.Intn(1<<16))),
		LI(3, uint16(r.Intn(1<<16))),
	}
	for i := 0; i < n; i++ {
		rd := 2 + r.Intn(12) // keep r0 (zero) and r1 (pointer) stable
		rs1 := r.Intn(14)
		rs2 := r.Intn(14)
		switch r.Intn(9) {
		case 0:
			prog = append(prog, ADD(rd, rs1, rs2))
		case 1:
			prog = append(prog, SUB(rd, rs1, rs2))
		case 2:
			prog = append(prog, XOR(rd, rs1, rs2))
		case 3:
			prog = append(prog, AND(rd, rs1, rs2))
		case 4:
			prog = append(prog, OR(rd, rs1, rs2))
		case 5:
			prog = append(prog, ADDI(rd, rs1, int16(r.Intn(64)-32)))
		case 6:
			prog = append(prog, LUI(rd, uint16(r.Intn(1<<16))))
		case 7:
			// Word-aligned offset within a small window.
			prog = append(prog, LD(rd, 1, int16(4*r.Intn(16))))
		default:
			prog = append(prog, ST(rd, 1, int16(4*r.Intn(16))))
		}
	}
	return append(prog, HALT())
}

func TestCoreAgainstGoldenModel(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		prog := randomStraightLine(r, 10+r.Intn(40))

		g := &golden{mem: map[uint32]uint32{}}
		if !g.run(prog, 10000) {
			t.Fatal("golden model did not halt")
		}

		sim, cpu, mem, _ := buildSystem(t, prog, sram.Config{WaitStates: 1 + r.Intn(3), CoolingPerCycle: 1})
		runUntilHalt(t, sim, cpu, 100000)

		for reg := 0; reg < 16; reg++ {
			if cpu.Reg(reg) != g.regs[reg] {
				t.Fatalf("trial %d: r%d = %#x, golden %#x", trial, reg, cpu.Reg(reg), g.regs[reg])
			}
		}
		for word, v := range g.mem {
			if got := mem.Peek(word << 2); got != v {
				t.Fatalf("trial %d: mem[%#x] = %#x, golden %#x", trial, word<<2, got, v)
			}
		}
	}
}

func TestCoreBranchesAgainstGolden(t *testing.T) {
	// Directed program with loops and both branch polarities.
	prog := []uint32{
		LI(1, 0),      // acc
		LI(2, 0),      // i
		LI(3, 9),      // limit
		LI(4, 0x200),  // pointer
		ADD(1, 1, 2),  // 4: loop body
		ST(1, 4, 0),   // 5
		ADDI(4, 4, 4), // 6
		ADDI(2, 2, 1), // 7
		BNE(2, 3, -4), // 8 -> 4
		BEQ(2, 3, 2),  // 9: taken -> 11
		LI(5, 0xDEAD), // 10: skipped
		LD(6, 4, -4),  // 11: reload last store
		HALT(),
	}
	g := &golden{mem: map[uint32]uint32{}}
	if !g.run(prog, 10000) {
		t.Fatal("golden did not halt")
	}
	sim, cpu, _, _ := buildSystem(t, prog, idealMem())
	runUntilHalt(t, sim, cpu, 100000)
	for reg := 0; reg < 16; reg++ {
		if cpu.Reg(reg) != g.regs[reg] {
			t.Fatalf("r%d = %#x, golden %#x", reg, cpu.Reg(reg), g.regs[reg])
		}
	}
	if cpu.Reg(5) == 0xDEAD {
		t.Fatal("skipped instruction executed")
	}
	if cpu.Reg(6) != 36 { // 0+1+...+8 = 36
		t.Fatalf("r6 = %d", cpu.Reg(6))
	}
}
