package leon3

import (
	"testing"

	"repro/internal/ahb"
	"repro/internal/rtl"
	"repro/internal/sram"
)

// buildSystem wires a core to an SRAM over AHB for ISA tests.
func buildSystem(t *testing.T, prog []uint32, memCfg sram.Config) (*rtl.Simulator, *Core, *sram.Model, *ahb.Recorder) {
	t.Helper()
	sim := rtl.NewSimulator()
	ch := ahb.NewChannel(sim, "ahb")
	mem, err := sram.New(memCfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := ahb.NewDecoder(ch, []ahb.Region{{Base: 0, Size: 1 << 20, Slave: mem, Name: "sram"}})
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(ch, prog)
	rec := ahb.NewRecorder(ch)
	sim.Add(cpu)
	sim.Add(dec)
	sim.Add(mem)
	sim.AddProbe(rec)
	return sim, cpu, mem, rec
}

func idealMem() sram.Config {
	return sram.Config{WaitStates: 1, CoolingPerCycle: 1}
}

func runUntilHalt(t *testing.T, sim *rtl.Simulator, cpu *Core, max int64) {
	t.Helper()
	for i := int64(0); i < max; i++ {
		if cpu.Halted() {
			return
		}
		sim.Step()
	}
	t.Fatalf("core did not halt within %d cycles (pc=%d)", max, cpu.PC())
}

func TestArithmetic(t *testing.T) {
	prog := []uint32{
		LI(1, 10),
		LI(2, 3),
		ADD(3, 1, 2),   // 13
		SUB(4, 1, 2),   // 7
		XOR(5, 1, 2),   // 9
		AND(6, 1, 2),   // 2
		OR(7, 1, 2),    // 11
		ADDI(8, 1, -4), // 6
		LUI(9, 2),      // 0x20000
		HALT(),
	}
	sim, cpu, _, _ := buildSystem(t, prog, idealMem())
	runUntilHalt(t, sim, cpu, 100)
	for r, want := range map[int]uint32{3: 13, 4: 7, 5: 9, 6: 2, 7: 11, 8: 6, 9: 0x20000} {
		if got := cpu.Reg(r); got != want {
			t.Errorf("r%d = %d, want %d", r, got, want)
		}
	}
}

func TestRegisterZeroHardwired(t *testing.T) {
	prog := []uint32{LI(0, 42), ADDI(1, 0, 7), HALT()}
	sim, cpu, _, _ := buildSystem(t, prog, idealMem())
	runUntilHalt(t, sim, cpu, 50)
	if cpu.Reg(0) != 0 {
		t.Error("r0 written")
	}
	if cpu.Reg(1) != 7 {
		t.Error("r0 not read as zero")
	}
}

func TestLoadStore(t *testing.T) {
	prog := []uint32{
		LI(1, 0x100),
		LI(2, 0xBEEF),
		ST(2, 1, 0),
		LD(3, 1, 0),
		ST(3, 1, 4),
		HALT(),
	}
	sim, cpu, mem, rec := buildSystem(t, prog, idealMem())
	runUntilHalt(t, sim, cpu, 200)
	if cpu.Reg(3) != 0xBEEF {
		t.Fatalf("loaded %#x", cpu.Reg(3))
	}
	if mem.Peek(0x104) != 0xBEEF {
		t.Fatal("store-through failed")
	}
	txs := rec.Transfers()
	if len(txs) != 3 {
		t.Fatalf("%d transfers", len(txs))
	}
	if !txs[0].Write || txs[1].Write || !txs[2].Write {
		t.Error("transfer directions wrong")
	}
	if txs[1].Data != 0xBEEF {
		t.Error("read data not recorded")
	}
	if cpu.Loads() != 1 || cpu.Stores() != 2 {
		t.Errorf("loads=%d stores=%d", cpu.Loads(), cpu.Stores())
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..5 with a BNE loop.
	prog := []uint32{
		LI(1, 0),      // sum
		LI(2, 1),      // i
		LI(3, 6),      // limit
		ADD(1, 1, 2),  // 3: loop
		ADDI(2, 2, 1), // 4
		BNE(2, 3, -2), // 5: -> 3
		HALT(),
	}
	sim, cpu, _, _ := buildSystem(t, prog, idealMem())
	runUntilHalt(t, sim, cpu, 100)
	if cpu.Reg(1) != 15 {
		t.Fatalf("sum = %d", cpu.Reg(1))
	}
}

func TestBEQTaken(t *testing.T) {
	prog := []uint32{
		LI(1, 5),
		LI(2, 5),
		BEQ(1, 2, 3), // skip the next two
		LI(3, 111),
		HALT(),
		LI(3, 222), // 5: branch target
		HALT(),
	}
	sim, cpu, _, _ := buildSystem(t, prog, idealMem())
	runUntilHalt(t, sim, cpu, 50)
	if cpu.Reg(3) != 222 {
		t.Fatalf("r3 = %d", cpu.Reg(3))
	}
}

func TestJMP(t *testing.T) {
	prog := []uint32{
		JMP(2),   // -> 2
		HALT(),   // skipped
		LI(1, 9), // 2
		HALT(),
	}
	sim, cpu, _, _ := buildSystem(t, prog, idealMem())
	runUntilHalt(t, sim, cpu, 50)
	if cpu.Reg(1) != 9 {
		t.Fatal("JMP not taken")
	}
}

func TestWFTAnchorsExecution(t *testing.T) {
	// Two runs with different pre-WFT delays must issue the post-WFT
	// load at the same absolute cycle.
	issueCycle := func(preNops int) int64 {
		prog := []uint32{}
		for i := 0; i < preNops; i++ {
			prog = append(prog, NOP())
		}
		prog = append(prog, WFT(32), LD(1, 0, 0x100), HALT())
		sim, cpu, _, rec := buildSystem(t, prog, idealMem())
		runUntilHalt(t, sim, cpu, 500)
		txs := rec.Transfers()
		if len(txs) != 1 {
			t.Fatalf("%d transfers", len(txs))
		}
		return txs[0].Cycle
	}
	a := issueCycle(1)
	b := issueCycle(7)
	if a != b {
		t.Fatalf("WFT did not anchor: %d vs %d", a, b)
	}
}

func TestWFTZeroHalts(t *testing.T) {
	prog := []uint32{WFT(0), LI(1, 1), HALT()}
	sim, cpu, _, _ := buildSystem(t, prog, idealMem())
	runUntilHalt(t, sim, cpu, 50)
	if cpu.Reg(1) != 0 {
		t.Fatal("WFT(0) should halt")
	}
}

func TestRunOffEndHalts(t *testing.T) {
	prog := []uint32{NOP()}
	sim, cpu, _, _ := buildSystem(t, prog, idealMem())
	runUntilHalt(t, sim, cpu, 10)
}

func TestWaitStatesDelayCompletion(t *testing.T) {
	delta := func(ws int) int64 {
		cfg := idealMem()
		cfg.WaitStates = ws
		prog := []uint32{LD(1, 0, 0x40), HALT()}
		sim, cpu, _, rec := buildSystem(t, prog, cfg)
		runUntilHalt(t, sim, cpu, 200)
		txs := rec.Transfers()
		if len(txs) != 1 {
			t.Fatalf("%d transfers", len(txs))
		}
		return txs[0].Done - txs[0].Cycle
	}
	d1, d3 := delta(1), delta(3)
	if d3-d1 != 2 {
		t.Fatalf("wait states not additive: ws=1 -> %d, ws=3 -> %d", d1, d3)
	}
}

func TestEncPanicsOnBadFields(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Enc(OpNOP, 16, 0, 0)
}

func TestDeterminism(t *testing.T) {
	run := func() [16]uint32 {
		prog := SensorProgramForTest()
		sim, cpu, _, _ := buildSystem(t, prog, idealMem())
		for i := 0; i < 3000; i++ {
			sim.Step()
		}
		var regs [16]uint32
		for r := range regs {
			regs[r] = cpu.Reg(r)
		}
		return regs
	}
	if run() != run() {
		t.Fatal("execution not deterministic")
	}
}

// SensorProgramForTest is a small self-contained busy program.
func SensorProgramForTest() []uint32 {
	return []uint32{
		LI(1, 0x100),
		LI(3, 0x140),
		WFT(64),       // 2
		LD(7, 1, 0),   // 3
		ST(7, 1, 4),   // 4
		ADDI(1, 1, 8), // 5
		BNE(1, 3, -4), // 6 -> 2
		LI(1, 0x100),  // 7
		JMP(-6),       // 8 -> 2
	}
}
