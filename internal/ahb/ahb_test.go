package ahb

import (
	"testing"

	"repro/internal/rtl"
)

// stubSlave completes accesses after a fixed number of polls and
// records requests.
type stubSlave struct {
	latency  int
	left     int
	rdata    uint32
	requests []uint32
	writes   []uint32
}

func (s *stubSlave) Request(cycle int64, addr uint32, write bool, wdata uint32) {
	s.left = s.latency
	s.requests = append(s.requests, addr)
	if write {
		s.writes = append(s.writes, wdata)
	}
}

func (s *stubSlave) Poll(cycle int64) (uint32, bool) {
	if s.left > 0 {
		s.left--
		return 0, false
	}
	return s.rdata, true
}

// scriptMaster drives a scripted sequence of transfers.
type scriptMaster struct {
	ch    *Channel
	addrs []uint32
	idx   int
	state int // 0 issue, 1 guard, 2 wait, 3 idle
	guard int
	reads []uint32
	done  bool
}

func (m *scriptMaster) Eval(cycle int64) {
	switch m.state {
	case 0:
		if m.idx >= len(m.addrs) {
			m.done = true
			return
		}
		m.ch.HADDR.Set(uint64(m.addrs[m.idx]))
		m.ch.HTRANS.Set(TransNonSeq)
		m.ch.HWRITE.Set(0)
		m.guard = 2
		m.state = 1
	case 1:
		m.guard--
		if m.guard <= 0 {
			m.state = 2
		}
	case 2:
		if m.ch.HREADY.GetBool() {
			m.reads = append(m.reads, uint32(m.ch.HRDATA.Get()))
			m.ch.HTRANS.Set(TransIdle)
			m.idx++
			m.state = 3
		}
	case 3:
		m.state = 0
	}
}

func TestDecoderRoutesByAddress(t *testing.T) {
	sim := rtl.NewSimulator()
	ch := NewChannel(sim, "ahb")
	s1 := &stubSlave{latency: 1, rdata: 0x11}
	s2 := &stubSlave{latency: 1, rdata: 0x22}
	dec, err := NewDecoder(ch, []Region{
		{Base: 0x0000, Size: 0x1000, Slave: s1, Name: "lo"},
		{Base: 0x1000, Size: 0x1000, Slave: s2, Name: "hi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := &scriptMaster{ch: ch, addrs: []uint32{0x0040, 0x1040, 0x0080}}
	sim.Add(m)
	sim.Add(dec)
	for i := 0; i < 200 && !m.done; i++ {
		sim.Step()
	}
	if !m.done {
		t.Fatal("master did not finish")
	}
	if len(s1.requests) != 2 || len(s2.requests) != 1 {
		t.Fatalf("routing: s1=%v s2=%v", s1.requests, s2.requests)
	}
	if m.reads[0] != 0x11 || m.reads[1] != 0x22 || m.reads[2] != 0x11 {
		t.Fatalf("read data %v", m.reads)
	}
}

func TestDecoderUnmappedReadsZero(t *testing.T) {
	sim := rtl.NewSimulator()
	ch := NewChannel(sim, "ahb")
	s1 := &stubSlave{latency: 1, rdata: 0x11}
	dec, _ := NewDecoder(ch, []Region{{Base: 0, Size: 0x100, Slave: s1, Name: "lo"}})
	m := &scriptMaster{ch: ch, addrs: []uint32{0x9999, 0x40}}
	sim.Add(m)
	sim.Add(dec)
	for i := 0; i < 200 && !m.done; i++ {
		sim.Step()
	}
	if !m.done {
		t.Fatal("master hung on unmapped access")
	}
	if m.reads[0] != 0 {
		t.Errorf("unmapped read %#x", m.reads[0])
	}
	if m.reads[1] != 0x11 {
		t.Errorf("mapped read after unmapped: %#x", m.reads[1])
	}
}

func TestDecoderRejectsOverlapsAndNilSlaves(t *testing.T) {
	sim := rtl.NewSimulator()
	ch := NewChannel(sim, "ahb")
	s := &stubSlave{}
	if _, err := NewDecoder(ch, []Region{
		{Base: 0, Size: 0x100, Slave: s, Name: "a"},
		{Base: 0x80, Size: 0x100, Slave: s, Name: "b"},
	}); err == nil {
		t.Error("overlapping regions accepted")
	}
	if _, err := NewDecoder(ch, []Region{{Base: 0, Size: 1, Name: "n"}}); err == nil {
		t.Error("nil slave accepted")
	}
}

func TestRecorderCapturesTransfers(t *testing.T) {
	sim := rtl.NewSimulator()
	ch := NewChannel(sim, "ahb")
	s := &stubSlave{latency: 2, rdata: 0xAB}
	dec, _ := NewDecoder(ch, []Region{{Base: 0, Size: 0x1000, Slave: s, Name: "m"}})
	m := &scriptMaster{ch: ch, addrs: []uint32{0x10, 0x20}}
	rec := NewRecorder(ch)
	sim.Add(m)
	sim.Add(dec)
	sim.AddProbe(rec)
	for i := 0; i < 200 && !m.done; i++ {
		sim.Step()
	}
	txs := rec.Transfers()
	if len(txs) != 2 {
		t.Fatalf("%d transfers", len(txs))
	}
	if txs[0].Addr != 0x10 || txs[1].Addr != 0x20 {
		t.Errorf("addresses %v %v", txs[0].Addr, txs[1].Addr)
	}
	for _, tx := range txs {
		if tx.Write {
			t.Error("read recorded as write")
		}
		if tx.Data != 0xAB {
			t.Errorf("data %#x", tx.Data)
		}
		if tx.Done <= tx.Cycle {
			t.Error("completion not after acceptance")
		}
	}
}

func TestHREADYIdlesHigh(t *testing.T) {
	sim := rtl.NewSimulator()
	ch := NewChannel(sim, "ahb")
	s := &stubSlave{latency: 1}
	dec, _ := NewDecoder(ch, []Region{{Base: 0, Size: 0x1000, Slave: s, Name: "m"}})
	sim.Add(dec)
	sim.Run(20)
	if !ch.HREADY.GetBool() {
		t.Error("HREADY low on idle bus")
	}
}
