// Package ahb models an AMBA AHB-lite bus: a single master, a wire
// bundle carrying the address/control/data phases, an address decoder
// for multiple slaves, and a transfer recorder. Experiment 5.2.2
// attaches the timeprints agg-log hardware to this bus's address
// signals, so the bus is the boundary the traced signal lives on.
//
// The protocol is the registered-signal subset of AHB-lite sufficient
// for the experiment: the master drives HADDR/HTRANS/HWRITE/HWDATA in
// the address phase and holds them until the selected slave raises
// HREADY; read data appears on HRDATA together with HREADY.
package ahb

import (
	"fmt"

	"repro/internal/rtl"
)

// HTRANS codes (subset).
const (
	TransIdle   = 0
	TransNonSeq = 2
)

// Channel is the AHB-lite wire bundle between one master and the
// interconnect.
type Channel struct {
	HADDR  *rtl.Wire // 32-bit address
	HTRANS *rtl.Wire // 2-bit transfer type
	HWRITE *rtl.Wire // 1-bit direction
	HWDATA *rtl.Wire // 32-bit write data
	HRDATA *rtl.Wire // 32-bit read data
	HREADY *rtl.Wire // 1-bit slave ready
}

// NewChannel allocates the bundle on the simulator. HREADY resets high
// (bus idle/ready), as the AHB specification requires.
func NewChannel(sim *rtl.Simulator, prefix string) *Channel {
	c := &Channel{
		HADDR:  sim.Wire(prefix+".HADDR", 32),
		HTRANS: sim.Wire(prefix+".HTRANS", 2),
		HWRITE: sim.Wire(prefix+".HWRITE", 1),
		HWDATA: sim.Wire(prefix+".HWDATA", 32),
		HRDATA: sim.Wire(prefix+".HRDATA", 32),
		HREADY: sim.Wire(prefix+".HREADY", 1),
	}
	c.HREADY.Reset(1)
	return c
}

// Slave is the interface a bus slave implements toward the decoder.
// The decoder calls Request once per accepted address phase and then
// polls Poll each cycle until done=true, upon which data carries read
// results.
type Slave interface {
	// Request starts an access. write data is the value to store.
	Request(cycle int64, addr uint32, write bool, wdata uint32)
	// Poll advances the access; done=true completes it this cycle.
	Poll(cycle int64) (rdata uint32, done bool)
}

// Region maps an address range [Base, Base+Size) to a slave.
type Region struct {
	Base, Size uint32
	Slave      Slave
	Name       string
}

// Decoder is the interconnect: it watches the master channel, selects
// the slave by address, and drives HREADY/HRDATA. Accesses to unmapped
// addresses complete immediately with zero data (AHB default slave
// semantics, minus the error response).
type Decoder struct {
	ch      *Channel
	regions []Region

	busy      bool
	cur       Slave
	read      bool
	awaitIdle bool
}

// NewDecoder attaches a decoder to the channel.
func NewDecoder(ch *Channel, regions []Region) (*Decoder, error) {
	for i, r := range regions {
		if r.Slave == nil {
			return nil, fmt.Errorf("ahb: region %d (%s) has no slave", i, r.Name)
		}
		for j := 0; j < i; j++ {
			o := regions[j]
			if r.Base < o.Base+o.Size && o.Base < r.Base+r.Size {
				return nil, fmt.Errorf("ahb: regions %s and %s overlap", o.Name, r.Name)
			}
		}
	}
	return &Decoder{ch: ch, regions: regions}, nil
}

// lookup finds the slave for an address.
func (d *Decoder) lookup(addr uint32) Slave {
	for _, r := range d.regions {
		if addr >= r.Base && addr-r.Base < r.Size {
			return r.Slave
		}
	}
	return nil
}

// Eval implements rtl.Component.
func (d *Decoder) Eval(cycle int64) {
	if d.busy {
		rdata, done := d.cur.Poll(cycle)
		if done {
			if d.read {
				d.ch.HRDATA.Set(uint64(rdata))
			}
			d.ch.HREADY.Set(1)
			d.busy = false
			// Every wire hop is registered, so the master still holds
			// HTRANS=NONSEQ when HREADY rises; require an IDLE cycle
			// before accepting the next transfer so the held request is
			// not double-latched.
			d.awaitIdle = true
		} else {
			d.ch.HREADY.Set(0)
		}
		return
	}
	if d.awaitIdle {
		if d.ch.HTRANS.Get() == TransIdle {
			d.awaitIdle = false
		}
		d.ch.HREADY.Set(1)
		return
	}
	if d.ch.HTRANS.Get() == TransNonSeq && d.ch.HREADY.GetBool() {
		addr := uint32(d.ch.HADDR.Get())
		write := d.ch.HWRITE.GetBool()
		s := d.lookup(addr)
		if s == nil {
			// Unmapped: complete next cycle with zeros.
			d.ch.HRDATA.Set(0)
			d.ch.HREADY.Set(1)
			d.awaitIdle = true
			return
		}
		s.Request(cycle, addr, write, uint32(d.ch.HWDATA.Get()))
		d.cur = s
		d.read = !write
		d.busy = true
		d.ch.HREADY.Set(0)
	} else {
		d.ch.HREADY.Set(1)
	}
}

// Transfer is one completed bus access, for test introspection.
type Transfer struct {
	Cycle int64 // cycle the address phase was accepted
	Done  int64 // cycle HREADY returned high
	Addr  uint32
	Write bool
	Data  uint32
}

// Recorder observes a channel and records completed transfers.
type Recorder struct {
	ch        *Channel
	inFlight  bool
	t         Transfer
	transfers []Transfer
	prevReady bool
}

// NewRecorder watches the channel.
func NewRecorder(ch *Channel) *Recorder { return &Recorder{ch: ch, prevReady: true} }

// Observe implements rtl.Probe.
func (r *Recorder) Observe(cycle int64) {
	ready := r.ch.HREADY.GetBool()
	if r.inFlight && ready {
		r.t.Done = cycle
		if !r.t.Write {
			r.t.Data = uint32(r.ch.HRDATA.Get())
		}
		r.transfers = append(r.transfers, r.t)
		r.inFlight = false
	}
	if !r.inFlight && r.ch.HTRANS.Get() == TransNonSeq && r.prevReady {
		r.t = Transfer{
			Cycle: cycle,
			Addr:  uint32(r.ch.HADDR.Get()),
			Write: r.ch.HWRITE.GetBool(),
			Data:  uint32(r.ch.HWDATA.Get()),
		}
		r.inFlight = true
	}
	r.prevReady = ready
}

// Transfers returns the completed transfers.
func (r *Recorder) Transfers() []Transfer {
	out := make([]Transfer, len(r.transfers))
	copy(out, r.transfers)
	return out
}
