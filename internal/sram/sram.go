// Package sram models the external memory of experiment 5.2.2: an
// asynchronous SRAM / CellularRAM-style device behind the AHB bus with
//
//   - programmable wait states (the Gaisler simulation library's SRAM
//     model had these configured wrong — the bug the k-mismatch
//     exposes),
//   - temperature-compensated distributed refresh: the device
//     periodically steals one cycle for an internal refresh, and the
//     refresh interval shrinks as the die heats up (the data-sheet
//     behaviour whose exact temperature dependence is unspecified),
//   - an activity-driven thermal model: the die heats with every
//     access and cools exponentially toward ambient, so the refresh
//     cadence depends on the executed instruction sequence, exactly as
//     the paper observes.
//
// A refresh due during an in-progress access is postponed; an access
// arriving while a refresh is in progress pays a fixed, bounded
// collision penalty (one cycle in the default configuration, matching
// the bounded extra latency CellularRAM data-sheets quote) — producing
// the sporadic one-cycle delays the timeprints reveal.
package sram

import "fmt"

// Config parameterizes the device.
type Config struct {
	// WaitStates is the number of cycles between accepting an access
	// and data being ready (>= 1 total access cycles enforced).
	WaitStates int
	// RefreshEnabled turns the distributed refresh on (the real device)
	// or off (an idealized simulation model).
	RefreshEnabled bool
	// RefreshCycles is how many cycles one refresh occupies internally
	// (the collision window).
	RefreshCycles int
	// CollisionPenaltyCycles is the fixed extra latency an access pays
	// when it arrives while a refresh is in progress. CellularRAM-class
	// devices bound this penalty regardless of refresh progress; the
	// default configuration uses 1 cycle — the paper's observed
	// one-cycle delay.
	CollisionPenaltyCycles int
	// BaseIntervalCycles is the refresh interval at AmbientC (cycles).
	BaseIntervalCycles int
	// MinIntervalCycles floors the compensated interval.
	MinIntervalCycles int
	// IntervalSlopeCyclesPerC is how many cycles of interval are lost
	// per degree of die temperature above RefTempC (temperature
	// compensation: hotter die, more frequent refresh).
	IntervalSlopeCyclesPerC float64
	// RefTempC is the die temperature at which the base interval
	// applies.
	RefTempC float64

	// AmbientC is the environment temperature in degrees Celsius.
	AmbientC float64
	// HeatPerAccessC is the die temperature rise contributed by one
	// access.
	HeatPerAccessC float64
	// CoolingPerCycle is the fraction of the excess-over-ambient
	// temperature retained each cycle (e.g. 0.9995).
	CoolingPerCycle float64
}

// DefaultConfig returns the reference device configuration used by the
// refresh experiment at the given ambient temperature.
func DefaultConfig(ambientC float64) Config {
	return Config{
		WaitStates:              1,
		RefreshEnabled:          true,
		RefreshCycles:           6,
		CollisionPenaltyCycles:  1,
		BaseIntervalCycles:      1600,
		MinIntervalCycles:       200,
		IntervalSlopeCyclesPerC: 40,
		RefTempC:                25,
		AmbientC:                ambientC,
		HeatPerAccessC:          0.02,
		CoolingPerCycle:         0.9995,
	}
}

// Model is the device. It implements ahb.Slave and rtl.Component (the
// component tick advances the thermal and refresh state machines every
// cycle, whether or not the bus is active).
type Model struct {
	cfg Config

	mem map[uint32]uint32

	// Access state.
	busy      bool
	remaining int
	addr      uint32
	write     bool
	wdata     uint32

	// Refresh state.
	refreshBusy      int   // cycles left of an in-progress refresh
	sinceRefresh     int   // cycles since the last refresh completed
	refreshes        int64 // total refreshes performed
	refreshCollision int64 // accesses delayed by a refresh

	// Thermal state.
	excessC float64 // die temperature above ambient

	// Diagnostics.
	accesses     int64
	refreshLog   []int64 // cycles at which refreshes started
	collisionLog []int64 // cycles at which delayed accesses were accepted
}

// New returns a memory with the given configuration.
func New(cfg Config) (*Model, error) {
	if cfg.WaitStates < 0 {
		return nil, fmt.Errorf("sram: negative wait states")
	}
	if cfg.RefreshEnabled {
		if cfg.RefreshCycles < 1 || cfg.BaseIntervalCycles < 1 || cfg.MinIntervalCycles < 1 ||
			cfg.CollisionPenaltyCycles < 1 {
			return nil, fmt.Errorf("sram: invalid refresh configuration %+v", cfg)
		}
	}
	if cfg.CoolingPerCycle < 0 || cfg.CoolingPerCycle > 1 {
		return nil, fmt.Errorf("sram: cooling factor %f outside [0,1]", cfg.CoolingPerCycle)
	}
	return &Model{cfg: cfg, mem: map[uint32]uint32{}}, nil
}

// TemperatureC returns the current die temperature.
func (m *Model) TemperatureC() float64 { return m.cfg.AmbientC + m.excessC }

// interval returns the temperature-compensated refresh interval.
func (m *Model) interval() int {
	iv := float64(m.cfg.BaseIntervalCycles) -
		m.cfg.IntervalSlopeCyclesPerC*(m.TemperatureC()-m.cfg.RefTempC)
	if iv < float64(m.cfg.MinIntervalCycles) {
		return m.cfg.MinIntervalCycles
	}
	return int(iv)
}

// Eval implements rtl.Component: per-cycle refresh scheduling and
// cooling. The device refreshes only when no access is in flight; a
// due refresh is postponed until the bus side goes quiet.
func (m *Model) Eval(cycle int64) {
	m.excessC *= m.cfg.CoolingPerCycle

	if !m.cfg.RefreshEnabled {
		return
	}
	if m.refreshBusy > 0 {
		m.refreshBusy--
		if m.refreshBusy == 0 {
			m.sinceRefresh = 0
		}
		return
	}
	m.sinceRefresh++
	if m.sinceRefresh >= m.interval() && !m.busy {
		m.refreshBusy = m.cfg.RefreshCycles
		m.refreshes++
		m.refreshLog = append(m.refreshLog, cycle)
	}
}

// Request implements ahb.Slave.
func (m *Model) Request(cycle int64, addr uint32, write bool, wdata uint32) {
	m.busy = true
	m.remaining = m.cfg.WaitStates
	if m.refreshBusy > 0 {
		// Collision: the access pays the bounded refresh penalty.
		m.remaining += m.cfg.CollisionPenaltyCycles
		m.refreshCollision++
		m.collisionLog = append(m.collisionLog, cycle)
	}
	m.addr = addr
	m.write = write
	m.wdata = wdata
	m.accesses++
	m.excessC += m.cfg.HeatPerAccessC
}

// Poll implements ahb.Slave.
func (m *Model) Poll(cycle int64) (uint32, bool) {
	if m.remaining > 0 {
		m.remaining--
		return 0, false
	}
	m.busy = false
	word := m.addr >> 2
	if m.write {
		m.mem[word] = m.wdata
		return 0, true
	}
	return m.mem[word], true
}

// Peek reads memory directly (test backdoor).
func (m *Model) Peek(addr uint32) uint32 { return m.mem[addr>>2] }

// Poke writes memory directly (test backdoor / image loading).
func (m *Model) Poke(addr uint32, v uint32) { m.mem[addr>>2] = v }

// Stats summarizes device activity.
type Stats struct {
	Accesses   int64
	Refreshes  int64
	Collisions int64
}

// Stats returns activity counters.
func (m *Model) Stats() Stats {
	return Stats{Accesses: m.accesses, Refreshes: m.refreshes, Collisions: m.refreshCollision}
}

// RefreshLog returns the cycles at which refreshes started.
func (m *Model) RefreshLog() []int64 {
	out := make([]int64, len(m.refreshLog))
	copy(out, m.refreshLog)
	return out
}

// CollisionLog returns the cycles at which refresh-delayed accesses
// were accepted.
func (m *Model) CollisionLog() []int64 {
	out := make([]int64, len(m.collisionLog))
	copy(out, m.collisionLog)
	return out
}
