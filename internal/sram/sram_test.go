package sram

import (
	"testing"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{WaitStates: -1}); err == nil {
		t.Error("negative wait states accepted")
	}
	if _, err := New(Config{RefreshEnabled: true}); err == nil {
		t.Error("zero refresh params accepted")
	}
	if _, err := New(Config{CoolingPerCycle: 1.5}); err == nil {
		t.Error("cooling > 1 accepted")
	}
	if _, err := New(DefaultConfig(25)); err != nil {
		t.Error(err)
	}
}

func TestReadWrite(t *testing.T) {
	m, _ := New(Config{WaitStates: 1, CoolingPerCycle: 1})
	m.Request(0, 0x40, true, 0xCAFE)
	// One wait state: first poll not done, second done.
	if _, done := m.Poll(1); done {
		t.Fatal("done too early")
	}
	if _, done := m.Poll(2); !done {
		t.Fatal("not done after wait state")
	}
	m.Request(3, 0x40, false, 0)
	m.Poll(4)
	v, done := m.Poll(5)
	if !done || v != 0xCAFE {
		t.Fatalf("read %#x done=%v", v, done)
	}
	if m.Peek(0x40) != 0xCAFE {
		t.Error("peek")
	}
}

func TestPokePeek(t *testing.T) {
	m, _ := New(Config{WaitStates: 0, CoolingPerCycle: 1})
	m.Poke(0x100, 7)
	if m.Peek(0x100) != 7 {
		t.Error("poke/peek")
	}
	// Word addressing: 0x100 and 0x102 share a word.
	if m.Peek(0x102) != 7 {
		t.Error("sub-word addressing")
	}
}

func TestRefreshFiresAtInterval(t *testing.T) {
	cfg := DefaultConfig(25)
	cfg.BaseIntervalCycles = 100
	cfg.MinIntervalCycles = 10
	cfg.IntervalSlopeCyclesPerC = 0
	m, _ := New(cfg)
	for c := int64(0); c < 1000; c++ {
		m.Eval(c)
	}
	st := m.Stats()
	// Every ~101 cycles (interval + refresh cycle) over 1000 cycles.
	if st.Refreshes < 8 || st.Refreshes > 10 {
		t.Fatalf("refreshes %d", st.Refreshes)
	}
	if len(m.RefreshLog()) != int(st.Refreshes) {
		t.Error("refresh log length")
	}
}

func TestRefreshDisabled(t *testing.T) {
	m, _ := New(Config{WaitStates: 1, CoolingPerCycle: 1})
	for c := int64(0); c < 10000; c++ {
		m.Eval(c)
	}
	if m.Stats().Refreshes != 0 {
		t.Fatal("refresh fired while disabled")
	}
}

func TestRefreshCollisionDelaysAccess(t *testing.T) {
	cfg := DefaultConfig(25)
	cfg.BaseIntervalCycles = 50
	cfg.MinIntervalCycles = 10
	cfg.IntervalSlopeCyclesPerC = 0
	cfg.HeatPerAccessC = 0
	m, _ := New(cfg)
	// Advance until a refresh is in progress, then request.
	var cycle int64
	for m.refreshBusy == 0 {
		m.Eval(cycle)
		cycle++
		if cycle > 1000 {
			t.Fatal("no refresh started")
		}
	}
	m.Request(cycle, 0x40, false, 0)
	// WaitStates=1 plus 1 refresh cycle pending = 2 not-done polls.
	n := 0
	for {
		_, done := m.Poll(cycle)
		cycle++
		if done {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("refresh collision added %d wait cycles, want 2", n)
	}
	if m.Stats().Collisions != 1 {
		t.Fatal("collision not counted")
	}
	if len(m.CollisionLog()) != 1 {
		t.Fatal("collision log")
	}
}

func TestRefreshPostponedWhileBusy(t *testing.T) {
	cfg := DefaultConfig(25)
	cfg.BaseIntervalCycles = 10
	cfg.MinIntervalCycles = 5
	cfg.IntervalSlopeCyclesPerC = 0
	cfg.HeatPerAccessC = 0
	m, _ := New(cfg)
	// Keep the device busy across the refresh due point.
	for c := int64(0); c < 9; c++ {
		m.Eval(c)
	}
	m.Request(9, 0x40, false, 0)
	m.Eval(10) // refresh due now, but busy
	m.Eval(11)
	if m.Stats().Refreshes != 0 {
		t.Fatal("refresh fired while access in flight")
	}
	for c := int64(12); ; c++ {
		if _, done := m.Poll(c); done {
			break
		}
	}
	m.Eval(20) // now idle: postponed refresh fires
	if m.Stats().Refreshes != 1 {
		t.Fatal("postponed refresh did not fire")
	}
}

func TestThermalModel(t *testing.T) {
	cfg := DefaultConfig(25)
	m, _ := New(cfg)
	if m.TemperatureC() != 25 {
		t.Fatal("initial temperature")
	}
	for i := 0; i < 100; i++ {
		m.Request(int64(i), 0x40, false, 0)
		for {
			if _, done := m.Poll(int64(i)); done {
				break
			}
		}
	}
	warm := m.TemperatureC()
	if warm <= 25 {
		t.Fatal("accesses did not heat the die")
	}
	// Idle cooling brings it back toward ambient.
	for c := int64(0); c < 200000; c++ {
		m.Eval(c)
	}
	if m.TemperatureC() >= warm {
		t.Fatal("die did not cool")
	}
}

func TestCompensationShortensInterval(t *testing.T) {
	cold, _ := New(DefaultConfig(25))
	hot, _ := New(DefaultConfig(85))
	if hot.interval() >= cold.interval() {
		t.Fatalf("interval cold=%d hot=%d", cold.interval(), hot.interval())
	}
	// Floor respected.
	boiling, _ := New(DefaultConfig(500))
	if boiling.interval() != DefaultConfig(500).MinIntervalCycles {
		t.Fatal("interval floor not applied")
	}
}

func TestHotterRefreshesMoreOften(t *testing.T) {
	run := func(ambient float64) int64 {
		m, _ := New(DefaultConfig(ambient))
		for c := int64(0); c < 50000; c++ {
			m.Eval(c)
		}
		return m.Stats().Refreshes
	}
	if run(85) <= run(25) {
		t.Fatal("hotter device should refresh more often")
	}
}
