package logstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/obs"
)

// wireBody renders a valid core.WriteLog frame with n deterministic
// entries derived from seed, so stored bodies are both structurally
// valid and distinguishable byte-for-byte.
func wireBody(t testing.TB, m, b, n int, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	entries := make([]core.LogEntry, n)
	for i := range entries {
		tp := bitvec.New(b)
		for j := 0; j < b; j++ {
			if rng.Intn(2) == 1 {
				tp.Set(j, true)
			}
		}
		entries[i] = core.LogEntry{TP: tp, K: rng.Intn(m + 1)}
	}
	var buf bytes.Buffer
	if err := core.WriteLog(&buf, m, b, entries); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	return buf.Bytes()
}

func mustOpen(t testing.TB, dir string, opts Options) (*Store, *Recovery) {
	t.Helper()
	opts.NoSync = true
	st, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st, rec
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, rec := mustOpen(t, dir, Options{})
	if rec.Corrupt() {
		t.Fatalf("fresh store reports corruption: %v", rec.Errs)
	}
	want := make([]Record, 0, 20)
	for i := 0; i < 20; i++ {
		r := Record{
			Device:         fmt.Sprintf("ecu-%d", i%3),
			Signal:         "clk_en",
			Epoch:          int64(1000 + i),
			TraceCycleBase: int64(i * 64),
			Body:           wireBody(t, 64, 8, 4, int64(i)),
		}
		if _, err := st.Append(r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want = append(want, r)
	}
	for dev := 0; dev < 3; dev++ {
		device := fmt.Sprintf("ecu-%d", dev)
		got, err := st.Query(AllTime(device, "clk_en"))
		if err != nil {
			t.Fatalf("Query %s: %v", device, err)
		}
		i := 0
		for _, w := range want {
			if w.Device != device {
				continue
			}
			if i >= len(got) {
				t.Fatalf("%s: missing record %d", device, i)
			}
			g := got[i]
			if g.Epoch != w.Epoch || g.TraceCycleBase != w.TraceCycleBase || !bytes.Equal(g.Body, w.Body) {
				t.Fatalf("%s record %d mismatch: got epoch=%d tcb=%d, want epoch=%d tcb=%d (bodies equal: %v)",
					device, i, g.Epoch, g.TraceCycleBase, w.Epoch, w.TraceCycleBase, bytes.Equal(g.Body, w.Body))
			}
			i++
		}
		if i != len(got) {
			t.Fatalf("%s: %d extra record(s)", device, len(got)-i)
		}
	}
	// Range filtering is inclusive on both ends.
	got, err := st.Query(Query{Device: "ecu-0", Signal: "clk_en", From: 1003, To: 1009})
	if err != nil {
		t.Fatalf("range query: %v", err)
	}
	for _, g := range got {
		if g.Epoch < 1003 || g.Epoch > 1009 {
			t.Fatalf("range query returned epoch %d outside [1003, 1009]", g.Epoch)
		}
	}
	if len(got) != 3 { // epochs 1003, 1006, 1009 belong to ecu-0
		t.Fatalf("range query returned %d records, want 3", len(got))
	}
}

func TestStoreValidation(t *testing.T) {
	st, _ := mustOpen(t, t.TempDir(), Options{})
	body := wireBody(t, 64, 8, 2, 1)
	cases := []struct {
		name string
		rec  Record
	}{
		{"empty device", Record{Device: "", Signal: "s", Body: body}},
		{"empty signal", Record{Device: "d", Signal: "", Body: body}},
		{"empty body", Record{Device: "d", Signal: "s", Body: nil}},
		{"non-wire body", Record{Device: "d", Signal: "s", Body: []byte("not a log at all")}},
		{"truncated header", Record{Device: "d", Signal: "s", Body: body[:8]}},
	}
	for _, tc := range cases {
		if _, err := st.Append(tc.rec); err == nil {
			t.Errorf("%s: Append accepted an invalid record", tc.name)
		}
	}
	if _, err := st.Query(Query{Device: "d", Signal: "s", From: 10, To: 5}); err == nil {
		t.Error("Query accepted an inverted range")
	}
}

func TestStoreMonotoneEpochClamp(t *testing.T) {
	st, _ := mustOpen(t, t.TempDir(), Options{})
	body := wireBody(t, 64, 8, 2, 1)
	if _, err := st.Append(Record{Device: "d", Signal: "s", Epoch: 100, Body: body}); err != nil {
		t.Fatal(err)
	}
	eff, err := st.Append(Record{Device: "d", Signal: "s", Epoch: 50, Body: body})
	if err != nil {
		t.Fatal(err)
	}
	if eff != 100 {
		t.Fatalf("lagging epoch clamped to %d, want 100", eff)
	}
	// Other keys are unaffected by the clamp.
	eff, err = st.Append(Record{Device: "d2", Signal: "s", Epoch: 50, Body: body})
	if err != nil {
		t.Fatal(err)
	}
	if eff != 50 {
		t.Fatalf("fresh key clamped to %d, want 50", eff)
	}
}

func TestStoreReopenPersists(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{SegmentBytes: 512})
	var want [][]byte
	for i := 0; i < 40; i++ {
		body := wireBody(t, 64, 8, 3, int64(i))
		want = append(want, body)
		if _, err := st.Append(Record{Device: "d", Signal: "s", Epoch: int64(i), Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec := mustOpen(t, dir, Options{SegmentBytes: 512})
	if rec.Corrupt() {
		t.Fatalf("clean reopen reports corruption: %v", rec.Errs)
	}
	if rec.Records != 40 {
		t.Fatalf("reopen indexed %d records, want 40", rec.Records)
	}
	got, err := st2.Query(AllTime("d", "s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("reopen query returned %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Body, want[i]) {
			t.Fatalf("record %d body differs after reopen", i)
		}
	}
	// Appends continue where the store left off.
	if _, err := st2.Append(Record{Device: "d", Signal: "s", Epoch: 99, Body: want[0]}); err != nil {
		t.Fatalf("post-reopen append: %v", err)
	}
}

// fillSegments appends records until the store has at least nSegs
// segments, returning every appended record in order.
func fillSegments(t *testing.T, st *Store, nSegs int) []Record {
	t.Helper()
	var out []Record
	for i := 0; st.Stats().Segments < nSegs; i++ {
		r := Record{
			Device: "ecu-a", Signal: "sig",
			Epoch:          int64(1000 + i),
			TraceCycleBase: int64(i * 16),
			Body:           wireBody(t, 64, 8, 2, int64(i)),
		}
		if _, err := st.Append(r); err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
		if i > 10000 {
			t.Fatal("fillSegments never rotated; SegmentBytes too large?")
		}
	}
	return out
}

// countSegmentRecords walks one segment file and returns its record
// count (the file must be intact).
func countSegmentRecords(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := readSegmentHeader(f); err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := walkRecords(f, 16<<20, func(Record, int64) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestCrashRecoveryMatrix is the injected-failure matrix from the
// issue: for each kind of damage, open-time recovery must salvage
// every intact record, report the damage as an error wrapping
// ErrCorrupt, and accept a post-recovery append (and rotation) that
// round-trips.
func TestCrashRecoveryMatrix(t *testing.T) {
	type outcome struct {
		names   []string // segment files, sorted
		lastOff int64    // size of the last segment file
	}
	prepare := func(t *testing.T) (string, []Record, outcome) {
		dir := t.TempDir()
		st, _ := mustOpen(t, dir, Options{SegmentBytes: 400})
		recs := fillSegments(t, st, 3)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		names, _, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(names[len(names)-1])
		if err != nil {
			t.Fatal(err)
		}
		return dir, recs, outcome{names: names, lastOff: fi.Size()}
	}

	cases := []struct {
		name string
		// damage mutates the store files and returns how many trailing
		// records of the full history become unreachable.
		damage     func(t *testing.T, dir string, o outcome) int
		wantErrs   bool
		duplicated bool // duplicate-epoch case: extra surviving record
	}{
		{
			name: "torn final record",
			damage: func(t *testing.T, dir string, o outcome) int {
				last := o.names[len(o.names)-1]
				// Chop into the middle of the final record's payload.
				if err := os.Truncate(last, o.lastOff-11); err != nil {
					t.Fatal(err)
				}
				return 1
			},
			wantErrs: true,
		},
		{
			name: "truncated CRC",
			damage: func(t *testing.T, dir string, o outcome) int {
				last := o.names[len(o.names)-1]
				fi, err := os.Stat(last)
				if err != nil {
					t.Fatal(err)
				}
				// Find the final record's frame start by re-walking.
				f, err := os.Open(last)
				if err != nil {
					t.Fatal(err)
				}
				var lastFrame int64
				if _, err := readSegmentHeader(f); err != nil {
					t.Fatal(err)
				}
				if _, err := walkRecords(f, 16<<20, func(_ Record, off int64) error {
					lastFrame = off
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				f.Close()
				// Keep the length field, cut inside the CRC field.
				if lastFrame+6 >= fi.Size() {
					t.Fatal("segment too small for CRC cut")
				}
				if err := os.Truncate(last, lastFrame+6); err != nil {
					t.Fatal(err)
				}
				return 1
			},
			wantErrs: true,
		},
		{
			name: "zero-filled tail",
			damage: func(t *testing.T, dir string, o outcome) int {
				last := o.names[len(o.names)-1]
				f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write(make([]byte, 64)); err != nil {
					t.Fatal(err)
				}
				f.Close()
				return 0 // all real records survive; only the zeros drop
			},
			wantErrs: true,
		},
		{
			name: "missing segment in sequence",
			damage: func(t *testing.T, dir string, o outcome) int {
				// Remove the middle segment; count its records first.
				mid := o.names[len(o.names)/2]
				lost := countSegmentRecords(t, mid)
				if err := os.Remove(mid); err != nil {
					t.Fatal(err)
				}
				return lost
			},
			wantErrs: true,
		},
		{
			// A torn header on the highest-sequence segment must not
			// leave the file squatting on its sequence number: segment
			// creation is O_CREATE|O_EXCL, so recovery quarantines the
			// file or every post-recovery rotation would die on "file
			// exists" once the active segment fills.
			name: "torn header on last segment",
			damage: func(t *testing.T, dir string, o outcome) int {
				last := o.names[len(o.names)-1]
				lost := countSegmentRecords(t, last)
				f, err := os.OpenFile(last, os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, 0); err != nil {
					t.Fatal(err)
				}
				f.Close()
				return lost
			},
			wantErrs: true,
		},
		{
			name: "duplicate epoch",
			damage: func(t *testing.T, dir string, o outcome) int {
				// Append a byte-exact copy of the final record: structurally
				// valid, semantically a replay. The store must keep serving
				// (duplicates are data, not damage).
				last := o.names[len(o.names)-1]
				f, err := os.Open(last)
				if err != nil {
					t.Fatal(err)
				}
				var lastOff int64
				if _, err := readSegmentHeader(f); err != nil {
					t.Fatal(err)
				}
				end, err := walkRecords(f, 16<<20, func(_ Record, off int64) error {
					lastOff = off
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Seek(lastOff, 0); err != nil {
					t.Fatal(err)
				}
				dup := make([]byte, end-lastOff)
				if _, err := f.Read(dup); err != nil {
					t.Fatal(err)
				}
				f.Close()
				w, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := w.Write(dup); err != nil {
					t.Fatal(err)
				}
				w.Close()
				return -1 // one EXTRA record survives
			},
			wantErrs:   false,
			duplicated: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, recs, o := prepare(t)
			lost := tc.damage(t, dir, o)
			st, rec := mustOpen(t, dir, Options{SegmentBytes: 400})
			if tc.wantErrs {
				if !rec.Corrupt() {
					t.Fatal("recovery found no damage")
				}
				for _, e := range rec.Errs {
					if !errors.Is(e, ErrCorrupt) {
						t.Fatalf("recovery error does not wrap ErrCorrupt: %v", e)
					}
				}
			} else if rec.Corrupt() {
				t.Fatalf("unexpected recovery errors: %v", rec.Errs)
			}
			got, err := st.Query(AllTime("ecu-a", "sig"))
			if err != nil {
				t.Fatalf("post-recovery query: %v", err)
			}
			if want := len(recs) - lost; len(got) != want {
				t.Fatalf("salvaged %d records, want %d (lost %d of %d)", len(got), want, lost, len(recs))
			}
			// Every salvaged record is byte-identical to what was written.
			if tc.name == "missing segment in sequence" {
				// Survivors are a prefix + suffix; verify by epoch lookup.
				byEpoch := map[int64][]byte{}
				for _, r := range recs {
					byEpoch[r.Epoch] = r.Body
				}
				for i, g := range got {
					if want, ok := byEpoch[g.Epoch]; !ok || !bytes.Equal(g.Body, want) {
						t.Fatalf("salvaged record %d (epoch %d) body mismatch", i, g.Epoch)
					}
				}
			} else {
				for i, g := range got {
					j := i
					if tc.duplicated && i == len(got)-1 {
						j = len(recs) - 1 // the replayed copy
					}
					if !bytes.Equal(g.Body, recs[j].Body) {
						t.Fatalf("salvaged record %d body mismatch", i)
					}
				}
			}
			// Post-recovery appends round-trip.
			nb := wireBody(t, 64, 8, 2, 999)
			eff, err := st.Append(Record{Device: "ecu-a", Signal: "sig", Epoch: 1 << 40, Body: nb})
			if err != nil {
				t.Fatalf("post-recovery append: %v", err)
			}
			after, err := st.Query(Query{Device: "ecu-a", Signal: "sig", From: eff, To: eff})
			if err != nil {
				t.Fatal(err)
			}
			if len(after) != 1 || !bytes.Equal(after[0].Body, nb) {
				t.Fatalf("post-recovery append did not round-trip (%d records)", len(after))
			}
			// Rotation after recovery must not collide with anything
			// damage left on disk (the next sequence number has to be
			// genuinely free).
			if err := st.Rotate(); err != nil {
				t.Fatalf("post-recovery rotate: %v", err)
			}
			if _, err := st.Append(Record{Device: "ecu-a", Signal: "sig", Epoch: 1<<40 + 1, Body: nb}); err != nil {
				t.Fatalf("post-rotation append: %v", err)
			}
		})
	}
}

// TestStoreCorruptHeader: a segment whose header is damaged is dropped
// from the index (fail closed), quarantined aside, reported, and the
// rest still serves.
func TestStoreCorruptHeader(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{SegmentBytes: 400})
	recs := fillSegments(t, st, 3)
	st.Close()
	names, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(names[0], os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad}, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st2, rec := mustOpen(t, dir, Options{SegmentBytes: 400})
	if !rec.Corrupt() {
		t.Fatal("damaged header not reported")
	}
	got, err := st2.Query(AllTime("ecu-a", "sig"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(recs) || len(got) == 0 {
		t.Fatalf("salvaged %d records; want fewer than %d but nonzero", len(got), len(recs))
	}
	// The damaged file was moved aside for forensics, not deleted, and
	// the quarantine name is invisible to the segment scanner.
	if _, err := os.Stat(names[0] + ".corrupt"); err != nil {
		t.Fatalf("damaged segment not quarantined: %v", err)
	}
	if _, err := os.Stat(names[0]); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("damaged segment still present at its sequence: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3 := mustOpen(t, dir, Options{SegmentBytes: 400})
	if rec3.Corrupt() {
		t.Fatalf("reopen after quarantine still reports damage: %v", rec3.Errs)
	}
}

// TestStoreTornHeaderOnlySegment reproduces the newActiveSegment crash
// window: the segment header write is not fsynced before first use, so
// a crash can leave the store's only segment with a torn header. Open
// must still succeed — the damaged file is quarantined, freeing
// sequence 1 for the O_EXCL create — and appends must work at once.
func TestStoreTornHeaderOnlySegment(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	body := wireBody(t, 64, 8, 2, 1)
	if _, err := st.Append(Record{Device: "d", Signal: "s", Epoch: 1, Body: body}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	names, _, err := listSegments(dir)
	if err != nil || len(names) != 1 {
		t.Fatalf("want exactly one segment, got %v (err %v)", names, err)
	}
	if err := os.Truncate(names[0], 7); err != nil { // tear mid-header
		t.Fatal(err)
	}
	st2, rec := mustOpen(t, dir, Options{})
	if !rec.Corrupt() {
		t.Fatal("torn header not reported")
	}
	if rec.Records != 0 {
		t.Fatalf("salvaged %d record(s) from a headerless store", rec.Records)
	}
	if _, err := os.Stat(names[0] + ".corrupt"); err != nil {
		t.Fatalf("damaged segment not quarantined: %v", err)
	}
	if _, err := st2.Append(Record{Device: "d", Signal: "s", Epoch: 2, Body: body}); err != nil {
		t.Fatalf("append after quarantine: %v", err)
	}
	got, err := st2.Query(AllTime("d", "s"))
	if err != nil || len(got) != 1 {
		t.Fatalf("post-recovery query: %v (%d records, want 1)", err, len(got))
	}
	// A second crash in the same window quarantines again (uniquified
	// name) rather than colliding with the first quarantine file.
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(names[0], 7); err != nil {
		t.Fatal(err)
	}
	st3, rec3 := mustOpen(t, dir, Options{})
	if !rec3.Corrupt() {
		t.Fatal("second torn header not reported")
	}
	if _, err := os.Stat(names[0] + ".corrupt.2"); err != nil {
		t.Fatalf("second quarantine not uniquified: %v", err)
	}
	if _, err := st3.Append(Record{Device: "d", Signal: "s", Epoch: 3, Body: body}); err != nil {
		t.Fatalf("append after second quarantine: %v", err)
	}
}

// TestStoreQueryLimit: Query.Limit stops the scan early and returns
// the first matches in append order — the service endpoints rely on
// this to bound what an unbounded epoch range can materialize.
func TestStoreQueryLimit(t *testing.T) {
	st, _ := mustOpen(t, t.TempDir(), Options{SegmentBytes: 300})
	for i := 0; i < 30; i++ {
		if _, err := st.Append(Record{
			Device: "d", Signal: "s", Epoch: int64(i), Body: wireBody(t, 32, 6, 1, int64(i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().Segments < 2 {
		t.Fatal("want a multi-segment store to exercise the cross-segment stop")
	}
	q := AllTime("d", "s")
	q.Limit = 7
	got, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("Limit=7 returned %d records", len(got))
	}
	for i, g := range got {
		if g.Epoch != int64(i) {
			t.Fatalf("record %d has epoch %d; limited queries must keep append order", i, g.Epoch)
		}
	}
	// A limit above the match count returns everything.
	q.Limit = 1000
	if got, err = st.Query(q); err != nil || len(got) != 30 {
		t.Fatalf("Limit=1000: %v (%d records, want 30)", err, len(got))
	}
	// Limit composes with a range: the first matches inside it.
	got, err = st.Query(Query{Device: "d", Signal: "s", From: 10, To: 29, Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("ranged Limit=5 returned %d records", len(got))
	}
	if got[0].Epoch != 10 || got[4].Epoch != 14 {
		t.Fatalf("ranged Limit=5 spans epochs %d..%d, want 10..14", got[0].Epoch, got[4].Epoch)
	}
}

// TestCompactionProperty: random append+rotate+compact interleavings.
// The invariant: a time-range query returns byte-identical frames
// before and after compaction for ranges inside the retention window,
// and nothing outside it. "Inside the retention window" is precise —
// records of segments that survived compaction.
func TestCompactionProperty(t *testing.T) {
	const rounds = 30
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("seed=%d", round), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(round) * 7919))
			dir := t.TempDir()
			maxSegs := 2 + rng.Intn(3)
			st, _ := mustOpen(t, dir, Options{SegmentBytes: 300, MaxSegments: maxSegs})
			devices := []string{"ecu-a", "ecu-b"}
			// model holds every record ever appended, in order, per key.
			model := map[Key][]Record{}
			epoch := int64(0)
			steps := 60 + rng.Intn(60)
			for i := 0; i < steps; i++ {
				switch rng.Intn(10) {
				case 8:
					if err := st.Rotate(); err != nil {
						t.Fatal(err)
					}
				case 9:
					if _, err := st.Compact(); err != nil {
						t.Fatal(err)
					}
				default:
					epoch += int64(1 + rng.Intn(3))
					key := Key{devices[rng.Intn(len(devices))], "sig"}
					r := Record{
						Device: key.Device, Signal: key.Signal, Epoch: epoch,
						TraceCycleBase: int64(i), Body: wireBody(t, 32, 6, 1+rng.Intn(3), int64(i)),
					}
					if _, err := st.Append(r); err != nil {
						t.Fatal(err)
					}
					model[key] = append(model[key], r)
				}
			}
			check := func(when string) {
				for key, all := range model {
					got, err := st.Query(AllTime(key.Device, key.Signal))
					if err != nil {
						t.Fatalf("%s: query: %v", when, err)
					}
					// Retention drops oldest-first, so what survives must be
					// a contiguous SUFFIX of the appended history.
					if len(got) > len(all) {
						t.Fatalf("%s: %d records for %v, appended only %d", when, len(got), key, len(all))
					}
					tail := all[len(all)-len(got):]
					for i := range got {
						if got[i].Epoch != tail[i].Epoch || !bytes.Equal(got[i].Body, tail[i].Body) {
							t.Fatalf("%s: %v record %d not byte-identical to appended suffix", when, key, i)
						}
					}
					// Sub-range inside the surviving window is exact.
					if len(got) > 2 {
						from, to := got[1].Epoch, got[len(got)-1].Epoch
						sub, err := st.Query(Query{Device: key.Device, Signal: key.Signal, From: from, To: to})
						if err != nil {
							t.Fatal(err)
						}
						wantSub := 0
						for _, g := range got {
							if g.Epoch >= from && g.Epoch <= to {
								wantSub++
							}
						}
						if len(sub) != wantSub {
							t.Fatalf("%s: sub-range [%d,%d] returned %d records, want %d", when, from, to, len(sub), wantSub)
						}
						// Nothing outside the retention window: a range below
						// the surviving minimum returns empty.
						if first := got[0].Epoch; first > 0 {
							below, err := st.Query(Query{Device: key.Device, Signal: key.Signal, From: 0, To: first - 1})
							if err != nil {
								t.Fatal(err)
							}
							if len(below) != 0 {
								t.Fatalf("%s: %d record(s) below the retention window", when, len(below))
							}
						}
					}
				}
			}
			check("before final compaction")
			if err := st.Rotate(); err != nil { // seal so everything is compactable
				t.Fatal(err)
			}
			if _, err := st.Compact(); err != nil {
				t.Fatal(err)
			}
			if got := st.Stats().Segments; got > maxSegs {
				t.Fatalf("compaction left %d segments, cap %d", got, maxSegs)
			}
			check("after final compaction")
			// Counter balance: every append is on disk or compacted.
			s := st.Stats()
			if s.Appends != int64(s.Records)+s.CompactedRecords {
				t.Fatalf("counter imbalance: appends=%d records=%d compacted=%d",
					s.Appends, s.Records, s.CompactedRecords)
			}
		})
	}
}

// TestStoreHammer is the concurrency hammer: concurrent per-device
// writers, query readers, and a compaction loop, under -race. After
// the dust settles: no lost records (every key's surviving history is
// a contiguous suffix of what its writer appended) and the counters
// balance exactly (appends == records on disk + compacted).
func TestStoreHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer skipped in -short")
	}
	dir := t.TempDir()
	reg := obs.NewRegistry()
	st, _ := mustOpen(t, dir, Options{SegmentBytes: 2048, MaxSegments: 6, Obs: reg})
	const writers = 4
	const perWriter = 120
	body := wireBody(t, 32, 6, 2, 42)
	errs := make(chan error, writers+2)
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			dev := fmt.Sprintf("ecu-%d", w)
			for i := 0; i < perWriter; i++ {
				// Epoch == sequence number so the suffix check below can
				// detect loss or reordering.
				if _, err := st.Append(Record{Device: dev, Signal: "sig", Epoch: int64(i), Body: body}); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
			errs <- nil
		}()
	}
	go func() { // reader loop
		for {
			select {
			case <-done:
				errs <- nil
				return
			default:
			}
			dev := fmt.Sprintf("ecu-%d", rand.Intn(writers))
			recs, err := st.Query(AllTime(dev, "sig"))
			if err != nil {
				errs <- fmt.Errorf("reader: %w", err)
				return
			}
			for i := 1; i < len(recs); i++ {
				if recs[i].Epoch != recs[i-1].Epoch+1 {
					errs <- fmt.Errorf("reader: %s gap %d -> %d", dev, recs[i-1].Epoch, recs[i].Epoch)
					return
				}
			}
		}
	}()
	go func() { // compaction loop
		for {
			select {
			case <-done:
				errs <- nil
				return
			default:
			}
			if _, err := st.Compact(); err != nil {
				errs <- fmt.Errorf("compactor: %w", err)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Pin every key into the active segment (which retention never
	// drops): with the compactor stopped, each key's final record is
	// now guaranteed to survive, so the suffix invariant below is
	// decidable — a fast-finishing writer's whole history may
	// legitimately have been compacted away before this.
	for w := 0; w < writers; w++ {
		dev := fmt.Sprintf("ecu-%d", w)
		if _, err := st.Append(Record{Device: dev, Signal: "sig", Epoch: perWriter, Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	// No lost records: each key's survivors are a contiguous suffix of
	// its appended epochs ending at the pin (compaction drops whole
	// segments oldest-first, so gaps or a missing newest record mean a
	// record was lost rather than retired).
	for w := 0; w < writers; w++ {
		dev := fmt.Sprintf("ecu-%d", w)
		recs, err := st.Query(AllTime(dev, "sig"))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatalf("%s: pinned record missing", dev)
		}
		if last := recs[len(recs)-1].Epoch; last != perWriter {
			t.Fatalf("%s: newest surviving epoch %d, want %d", dev, last, perWriter)
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].Epoch != recs[i-1].Epoch+1 {
				t.Fatalf("%s: lost record between epochs %d and %d", dev, recs[i-1].Epoch, recs[i].Epoch)
			}
		}
	}
	// Exact counter balance, from Stats and from the metrics registry.
	s := st.Stats()
	if s.Appends != int64(writers*(perWriter+1)) {
		t.Fatalf("appends=%d, want %d", s.Appends, writers*(perWriter+1))
	}
	if s.Appends != int64(s.Records)+s.CompactedRecords {
		t.Fatalf("counter imbalance: appends=%d records=%d compacted=%d", s.Appends, s.Records, s.CompactedRecords)
	}
	snap := reg.Snapshot()
	mAppends := snap.Counters[MetricAppends]
	mCompacted := snap.Counters[MetricCompactedRecords]
	if mAppends != s.Appends || mCompacted != s.CompactedRecords {
		t.Fatalf("metrics disagree with stats: appends %d/%d compacted %d/%d",
			mAppends, s.Appends, mCompacted, s.CompactedRecords)
	}
}

// TestStoreKeysAndStats covers the listing surface.
func TestStoreKeysAndStats(t *testing.T) {
	st, _ := mustOpen(t, t.TempDir(), Options{})
	body := wireBody(t, 64, 8, 2, 7)
	for i := 0; i < 5; i++ {
		if _, err := st.Append(Record{Device: "b-dev", Signal: "s1", Epoch: int64(10 + i), Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Append(Record{Device: "a-dev", Signal: "s2", Epoch: 3, Body: body}); err != nil {
		t.Fatal(err)
	}
	keys := st.Keys()
	if len(keys) != 2 {
		t.Fatalf("Keys returned %d entries, want 2", len(keys))
	}
	if keys[0].Device != "a-dev" || keys[1].Device != "b-dev" {
		t.Fatalf("Keys not sorted by device: %+v", keys)
	}
	if keys[1].Records != 5 || keys[1].MinEpoch != 10 || keys[1].MaxEpoch != 14 {
		t.Fatalf("b-dev summary wrong: %+v", keys[1])
	}
	if s := st.Stats(); s.Records != 6 || s.Segments != 1 || s.Appends != 6 {
		t.Fatalf("stats wrong: %+v", s)
	}
}

// TestStoreClosed: every mutating and reading operation fails with
// ErrClosed after Close, and Close is idempotent.
func TestStoreClosed(t *testing.T) {
	st, _ := mustOpen(t, t.TempDir(), Options{})
	body := wireBody(t, 64, 8, 2, 7)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := st.Append(Record{Device: "d", Signal: "s", Body: body}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v", err)
	}
	if _, err := st.Query(AllTime("d", "s")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close: %v", err)
	}
	if err := st.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rotate after Close: %v", err)
	}
}

// TestStoreForeignFilesIgnored: non-segment files in the directory are
// left alone and do not confuse the scanner.
func TestStoreForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, rec := mustOpen(t, dir, Options{})
	if rec.Corrupt() {
		t.Fatalf("foreign file reported as corruption: %v", rec.Errs)
	}
	body := wireBody(t, 64, 8, 2, 7)
	if _, err := st.Append(Record{Device: "d", Signal: "s", Epoch: 1, Body: body}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README.txt")); err != nil {
		t.Fatalf("foreign file disturbed: %v", err)
	}
}
