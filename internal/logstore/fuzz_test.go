package logstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzSegment drives the segment record framer/reader with arbitrary
// bytes: walkRecords must never panic, must decode only what
// frameRecord(encodeRecord(...)) produced, and a re-encode of every
// decoded record must be byte-identical to the frame it came from
// (the store's byte-identical-replay guarantee rests on this).
//
// The corpus is seeded from the crash-recovery matrix: a clean
// segment, a torn final record, a cut CRC, a zero-filled tail, and a
// duplicated record, plus adversarial length fields.
func FuzzSegment(f *testing.F) {
	// A small real segment body (header excluded — the fuzz input is
	// the record region), built from two valid records.
	mkBody := func(recs ...Record) []byte {
		var buf bytes.Buffer
		for _, r := range recs {
			buf.Write(frameRecord(encodeRecord(r)))
		}
		return buf.Bytes()
	}
	wire := func(seed byte) []byte {
		// A hand-rolled minimal wire log: a 16-byte header (m, b, n=0)
		// is a valid, self-delimiting core frame; m varies per seed so
		// bodies are distinguishable.
		b := make([]byte, 16)
		binary.LittleEndian.PutUint32(b[0:], 0x54505231)
		binary.LittleEndian.PutUint32(b[4:], uint32(seed%24+1))
		binary.LittleEndian.PutUint32(b[8:], 4)
		binary.LittleEndian.PutUint32(b[12:], 0)
		return b
	}
	r1 := Record{Device: "ecu-a", Signal: "sig", Epoch: 100, TraceCycleBase: 0, Body: wire(1)}
	r2 := Record{Device: "ecu-b", Signal: "sig2", Epoch: 200, TraceCycleBase: 64, Body: wire(2)}
	clean := mkBody(r1, r2)
	f.Add(clean)
	f.Add(clean[:len(clean)-5])                                    // torn final record
	f.Add(clean[:len(clean)-len(wire(2))-9])                       // cut inside the CRC/frame
	f.Add(append(append([]byte{}, clean...), make([]byte, 64)...)) // zero-filled tail
	f.Add(mkBody(r1, r1))                                          // duplicated record
	f.Add([]byte{})                                                // empty segment
	adversarial := make([]byte, 8)
	binary.LittleEndian.PutUint32(adversarial[0:], 0xFFFFFFFF) // huge length
	f.Add(adversarial)

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxRecord = 1 << 20
		var decoded []Record
		var offs []int64
		off, err := walkRecords(bufio.NewReader(bytes.NewReader(data)), maxRecord,
			func(rec Record, o int64) error {
				decoded = append(decoded, rec)
				offs = append(offs, o)
				return nil
			})
		if off < segHeaderSize || off > segHeaderSize+int64(len(data)) {
			t.Fatalf("reported offset %d outside segment bounds", off)
		}
		// Everything decoded must round-trip byte-identically: the
		// reader only accepts frames the writer could have produced.
		for i, rec := range decoded {
			if rec.Device == "" || rec.Signal == "" || len(rec.Body) == 0 {
				t.Fatalf("record %d decoded with empty required field", i)
			}
			reframed := frameRecord(encodeRecord(rec))
			start := offs[i] - segHeaderSize
			end := start + int64(len(reframed))
			if end > int64(len(data)) || !bytes.Equal(reframed, data[start:end]) {
				t.Fatalf("record %d does not re-encode to its source bytes", i)
			}
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("walk error is not typed corruption: %v", err)
		}
		// A clean walk consumed frames exactly to the reported offset;
		// a corrupt one stopped at the damage. Either way the offset
		// must be a frame boundary consistent with what was decoded.
		consumed := int64(0)
		for _, rec := range decoded {
			consumed += int64(recFrameSize + len(encodeRecord(rec)))
		}
		if off != segHeaderSize+consumed {
			t.Fatalf("offset %d disagrees with %d decoded records (%d bytes)", off, len(decoded), consumed)
		}
	})
}
