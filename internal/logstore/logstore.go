// Package logstore is the durable, segmented, append-only on-disk
// store for timeprint wire logs — the fleet-scale persistence layer
// under timeprintd's forensic query endpoints. Each record carries one
// complete core.WriteLog frame keyed by (device, signal, epoch): the
// constant-rate logs the paper's on-chip hardware streams off-chip
// survive the request that delivered them, so historical and
// time-range reconstruction queries (the Section 5.2.2 refresh-delay
// mining workload across a fleet of ECUs) run against what the fleet
// actually sent.
//
// Design rules, in order of importance:
//
//   - Fail closed. Every record is CRC-framed; bytes that fail the
//     frame are never served as data. Open-time recovery salvages the
//     intact prefix of a damaged segment, truncates the damage away,
//     and reports it as a typed error wrapping ErrCorrupt.
//   - Append-only. Segments are written once, sealed at a fixed size
//     boundary (fsync-on-rotate), and never rewritten. Retention drops
//     whole sealed segments oldest-first — compaction is an unlink,
//     not a rewrite, so it can never corrupt surviving data.
//   - Cheap open. The in-memory index (per-segment, per-key epoch
//     bounds plus a sparse offset list) is rebuilt by scanning segments
//     on open; there is no separate index file to keep consistent.
//   - Monotone epochs. Within one (device, signal) key, epochs never
//     decrease: Append clamps a lagging epoch up to the key's last
//     value (wall clocks step; forensic order must not), which keeps
//     time-range queries sound under the sparse index.
package logstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
)

// Typed errors. ErrCorrupt wraps every structural failure (torn or
// zero-filled tails, CRC mismatches, bad headers, missing segments in
// the sequence) so callers can classify with errors.Is; it deliberately
// mirrors core.ErrCorrupt's fail-closed contract.
var (
	ErrCorrupt = errors.New("logstore: corrupt store")
	ErrClosed  = errors.New("logstore: store closed")
)

// Metric names published by the store (on Options.Obs).
const (
	// MetricAppends counts records appended; MetricAppendBytes their
	// framed on-disk bytes.
	MetricAppends     = "logstore.appends"
	MetricAppendBytes = "logstore.append.bytes"
	// Gauges tracking the live store shape.
	MetricRecords  = "logstore.records"
	MetricSegments = "logstore.segments"
	MetricBytes    = "logstore.bytes"
	// MetricRotations counts segment seals (each one fsynced).
	MetricRotations = "logstore.rotations"
	// Compaction drops whole sealed segments; both sides are counted so
	// the balance invariant appends == records + compacted is checkable
	// from a metrics snapshot alone.
	MetricCompactedRecords  = "logstore.compacted.records"
	MetricCompactedSegments = "logstore.compacted.segments"
	// Open-time recovery: MetricRecoveries counts opens that found
	// damage, MetricRecoveredRecords the records salvaged ahead of it,
	// MetricTruncatedBytes the damaged bytes dropped.
	MetricRecoveries       = "logstore.recoveries"
	MetricRecoveredRecords = "logstore.recovered.records"
	MetricTruncatedBytes   = "logstore.truncated.bytes"
	// Query-side counters.
	MetricQueries      = "logstore.queries"
	MetricQueryRecords = "logstore.query.records"
)

// Options tunes a Store. The zero value is production-usable.
type Options struct {
	// SegmentBytes is the rotation threshold (default 1 MiB): an append
	// that would grow the active segment past it seals the segment
	// first. A single record larger than the threshold still fits — a
	// segment holds at least one record.
	SegmentBytes int64
	// MaxSegments bounds the store (active segment included); beyond
	// it, Compact (called automatically after every rotation) drops the
	// oldest sealed segments whole. 0 = unlimited.
	MaxSegments int
	// MaxRecordBytes bounds one record's payload (default 16 MiB);
	// larger appends are rejected and larger on-disk lengths read as
	// corruption.
	MaxRecordBytes int64
	// NoSync skips fsync on rotate/close (tests on tmpfs; never in
	// production).
	NoSync bool
	// Obs receives the store metrics; nil disables instrumentation.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 16 << 20
	}
	return o
}

// Key identifies one logged stream.
type Key struct {
	Device string
	Signal string
}

// Record is one stored wire log: a complete core.WriteLog frame plus
// the stream identity and position it was ingested under. Epoch is an
// opaque int64 timestamp (timeprintd uses Unix microseconds) that is
// monotone non-decreasing within a key; TraceCycleBase is the absolute
// trace-cycle index of the frame's first entry.
type Record struct {
	Device         string
	Signal         string
	Epoch          int64
	TraceCycleBase int64
	Body           []byte
}

// Query selects records of one key with Epoch in [From, To], both
// inclusive. Use AllTime for an unbounded range.
type Query struct {
	Device string
	Signal string
	From   int64
	To     int64
	// Limit, when positive, bounds how many records the query returns:
	// the scan stops as soon as Limit matches are collected (records
	// come back in append order), so a bounded query over an unbounded
	// epoch range never materializes the whole stored stream. 0 means
	// unlimited.
	Limit int
}

// AllTime returns the query covering a key's whole history.
func AllTime(device, signal string) Query {
	return Query{Device: device, Signal: signal, From: math.MinInt64, To: math.MaxInt64}
}

// KeyInfo summarizes one stream currently on disk.
type KeyInfo struct {
	Device   string
	Signal   string
	Records  int
	MinEpoch int64
	MaxEpoch int64
}

// Stats is a consistent snapshot of the store counters. The balance
// invariant for a store opened on an empty directory is
// Appends == Records + CompactedRecords, exactly.
type Stats struct {
	Segments          int
	Records           int
	Bytes             int64
	Appends           int64
	Rotations         int64
	CompactedRecords  int64
	CompactedSegments int64
}

// Recovery reports what Open found. Errs carries one typed error
// (wrapping ErrCorrupt) per damaged or missing segment; the store is
// still usable — every intact record ahead of the damage was salvaged
// and the damaged tail was truncated away so appends restart cleanly.
type Recovery struct {
	Segments       int
	Records        int
	TruncatedBytes int64
	Errs           []error
}

// Corrupt reports whether recovery found any damage.
func (r *Recovery) Corrupt() bool { return len(r.Errs) > 0 }

// idxPoint is one sparse-index sample: the epoch of the record at off.
type idxPoint struct {
	epoch int64
	off   int64
}

// keyIndex is one key's footprint within one segment.
type keyIndex struct {
	minEpoch int64
	maxEpoch int64
	count    int
	// sorted is true while the key's epochs within the segment are
	// non-decreasing in file order — Append guarantees it, but a
	// hand-damaged or foreign file may not; unsorted keys fall back to
	// full-segment scans so the sparse seek stays sound.
	sorted bool
	sparse []idxPoint
}

// segment is one on-disk file plus its in-memory index.
type segment struct {
	seq     uint64
	path    string
	size    int64
	records int
	sealed  bool
	f       *os.File // open for append on the active segment only
	keys    map[Key]*keyIndex
}

// Store is a live log store. All methods are safe for concurrent use:
// appends and compaction serialize on a write lock, queries share a
// read lock (so a query never observes a half-written record or a
// segment file unlinked underneath it).
type Store struct {
	dir  string
	opts Options
	obs  *obs.Registry

	mu        sync.RWMutex
	segs      []*segment
	lastEpoch map[Key]int64
	stats     Stats
	closed    bool
}

// Open opens (creating if needed) the store in dir and rebuilds the
// in-memory index by scanning the segment files. Damage never fails
// the open: intact records are salvaged, damaged tails truncated, and
// every finding lands in the Recovery report as an error wrapping
// ErrCorrupt. Open fails only for real I/O errors (permissions, a dir
// that cannot be created).
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("logstore: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		obs:       opts.Obs,
		lastEpoch: make(map[Key]int64),
	}
	rec := &Recovery{}
	names, seqs, err := listSegments(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("logstore: %w", err)
	}
	for i, name := range names {
		if i > 0 && seqs[i] != seqs[i-1]+1 {
			rec.Errs = append(rec.Errs, fmt.Errorf(
				"logstore: segment sequence gap: %d follows %d (segments %d..%d missing): %w",
				seqs[i], seqs[i-1], seqs[i-1]+1, seqs[i]-1, ErrCorrupt))
		}
		seg, segErr := s.scanSegment(name, seqs[i], rec)
		if seg != nil {
			s.segs = append(s.segs, seg)
			s.absorbSegment(seg)
		} else {
			// Unsalvageable: the file must not keep squatting on its
			// sequence number — newActiveSegment creates with O_EXCL, so
			// a file dropped in place would fail the open (when it holds
			// the lowest sequence) or wedge every rotation after recovery
			// (when it holds the highest). Quarantine it instead: the
			// bytes stay on disk for offline forensics, the sequence
			// number is free again.
			qpath, qerr := quarantineSegment(name)
			if qerr != nil {
				return nil, nil, fmt.Errorf("logstore: quarantine segment %s: %w", filepath.Base(name), qerr)
			}
			if err := s.syncDir(); err != nil {
				return nil, nil, err
			}
			segErr = fmt.Errorf("logstore: segment %s quarantined as %s: %w",
				filepath.Base(name), filepath.Base(qpath), segErr)
		}
		if segErr != nil {
			rec.Errs = append(rec.Errs, segErr)
		}
	}
	// Seal everything but the last segment, which resumes as the
	// append target.
	for i, seg := range s.segs {
		seg.sealed = i < len(s.segs)-1
	}
	if len(s.segs) == 0 {
		if err := s.newActiveSegment(1); err != nil {
			return nil, nil, err
		}
	} else {
		active := s.segs[len(s.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, nil, fmt.Errorf("logstore: reopen active segment: %w", err)
		}
		if _, err := f.Seek(active.size, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("logstore: seek active segment: %w", err)
		}
		active.f = f
	}
	rec.Segments = len(s.segs)
	rec.Records = s.stats.Records
	if rec.Corrupt() {
		s.obs.Counter(MetricRecoveries).Inc()
		s.obs.Counter(MetricTruncatedBytes).Add(rec.TruncatedBytes)
		s.obs.Counter(MetricRecoveredRecords).Add(int64(rec.Records))
	}
	s.publishGauges()
	return s, rec, nil
}

// scanSegment rebuilds one segment's index, truncating any damaged
// tail. It returns the usable segment (nil when the segment is
// unsalvageable — an unreadable header, or a tail that could not be
// truncated — in which case Open quarantines the file) and the damage
// found, wrapping ErrCorrupt. It touches only segment-local state;
// Open absorbs the index into the store on success.
func (s *Store) scanSegment(path string, seq uint64, rec *Recovery) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logstore: segment %s: %v: %w", filepath.Base(path), err, ErrCorrupt)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("logstore: segment %s: %v: %w", filepath.Base(path), err, ErrCorrupt)
	}
	br := bufio.NewReader(f)
	hdrSeq, err := readSegmentHeader(br)
	if err != nil {
		// Nothing salvageable without a trustworthy header; drop the
		// whole file from the index (fail closed) but leave it on disk
		// for offline forensics.
		return nil, fmt.Errorf("logstore: segment %s: %w", filepath.Base(path), err)
	}
	if hdrSeq != seq {
		return nil, fmt.Errorf("logstore: segment %s header claims sequence %d: %w",
			filepath.Base(path), hdrSeq, ErrCorrupt)
	}
	seg := &segment{seq: seq, path: path, keys: make(map[Key]*keyIndex)}
	goodOff, walkErr := walkRecords(br, s.opts.MaxRecordBytes, func(r Record, off int64) error {
		indexSegmentRecord(seg, r, off)
		return nil
	})
	seg.size = goodOff
	if walkErr != nil {
		// Damaged tail: truncate the file back to the last intact
		// record so post-recovery appends land on a clean boundary.
		dropped := st.Size() - goodOff
		rec.TruncatedBytes += dropped
		if err := os.Truncate(path, goodOff); err != nil {
			return nil, fmt.Errorf("logstore: segment %s: truncate damaged tail: %v: %w",
				filepath.Base(path), err, ErrCorrupt)
		}
		return seg, fmt.Errorf("logstore: segment %s: salvaged %d record(s), dropped %d damaged byte(s): %w",
			filepath.Base(path), seg.records, dropped, walkErr)
	}
	if st.Size() != goodOff {
		// walkRecords stopped clean but short (cannot happen today;
		// defensive against a future early-exit) — treat like damage.
		rec.TruncatedBytes += st.Size() - goodOff
		if err := os.Truncate(path, goodOff); err != nil {
			return nil, fmt.Errorf("logstore: segment %s: truncate: %v: %w", filepath.Base(path), err, ErrCorrupt)
		}
	}
	return seg, nil
}

// indexRecord folds one appended record into the segment index and the
// store-wide bookkeeping. The open-time scan instead indexes into the
// candidate segment only (indexSegmentRecord) and absorbs it on
// success, so a segment dropped during recovery never pollutes the
// store counters or the per-key epoch clamp.
func (s *Store) indexRecord(seg *segment, r Record, off int64) {
	indexSegmentRecord(seg, r, off)
	s.stats.Records++
	key := Key{r.Device, r.Signal}
	if last, ok := s.lastEpoch[key]; !ok || r.Epoch > last {
		s.lastEpoch[key] = r.Epoch
	}
}

// indexSegmentRecord folds one record into a segment's local index.
func indexSegmentRecord(seg *segment, r Record, off int64) {
	key := Key{r.Device, r.Signal}
	ki := seg.keys[key]
	if ki == nil {
		ki = &keyIndex{minEpoch: r.Epoch, maxEpoch: r.Epoch, sorted: true}
		seg.keys[key] = ki
	}
	if r.Epoch < ki.maxEpoch {
		ki.sorted = false
	}
	if r.Epoch < ki.minEpoch {
		ki.minEpoch = r.Epoch
	}
	if r.Epoch > ki.maxEpoch {
		ki.maxEpoch = r.Epoch
	}
	if ki.count%sparseEvery == 0 {
		ki.sparse = append(ki.sparse, idxPoint{epoch: r.Epoch, off: off})
	}
	ki.count++
	seg.records++
}

// absorbSegment folds one scanned segment's index into the store-wide
// bookkeeping. Caller is Open, once per salvaged segment.
func (s *Store) absorbSegment(seg *segment) {
	s.stats.Records += seg.records
	for key, ki := range seg.keys {
		if last, ok := s.lastEpoch[key]; !ok || ki.maxEpoch > last {
			s.lastEpoch[key] = ki.maxEpoch
		}
	}
}

// newActiveSegment creates the next segment file with its header and
// makes it the append target. Caller holds mu (or is Open).
func (s *Store) newActiveSegment(seq uint64) error {
	path := filepath.Join(s.dir, segmentName(seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("logstore: create segment: %w", err)
	}
	if _, err := f.Write(encodeSegmentHeader(seq)); err != nil {
		f.Close()
		return fmt.Errorf("logstore: write segment header: %w", err)
	}
	if err := s.syncDir(); err != nil {
		f.Close()
		return err
	}
	s.segs = append(s.segs, &segment{
		seq: seq, path: path, size: segHeaderSize, f: f,
		keys: make(map[Key]*keyIndex),
	})
	return nil
}

// syncDir fsyncs the store directory so segment creates/unlinks are
// durable (no-op under NoSync).
func (s *Store) syncDir() error {
	if s.opts.NoSync {
		return nil
	}
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("logstore: sync dir: %w", err)
	}
	return nil
}

// validateRecord checks an append candidate's shape.
func (s *Store) validateRecord(rec Record) error {
	if rec.Device == "" || len(rec.Device) > 1024 {
		return fmt.Errorf("logstore: device name must be 1..1024 bytes, got %d", len(rec.Device))
	}
	if rec.Signal == "" || len(rec.Signal) > 1024 {
		return fmt.Errorf("logstore: signal name must be 1..1024 bytes, got %d", len(rec.Signal))
	}
	if !core.IsWireLog(rec.Body) {
		return fmt.Errorf("logstore: record body is not a timeprint wire log: %w", core.ErrCorrupt)
	}
	if n := int64(2 + len(rec.Device) + 2 + len(rec.Signal) + 16 + len(rec.Body)); n > s.opts.MaxRecordBytes {
		return fmt.Errorf("logstore: record payload %d bytes exceeds cap %d", n, s.opts.MaxRecordBytes)
	}
	return nil
}

// Append durably queues one record. The record's epoch is clamped up
// to the key's last stored epoch (epochs are monotone within a key);
// the effective epoch is returned. The write is buffered by the OS —
// durability is guaranteed at the next rotation, Sync or Close.
func (s *Store) Append(rec Record) (int64, error) {
	if err := s.validateRecord(rec); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	key := Key{rec.Device, rec.Signal}
	if last, ok := s.lastEpoch[key]; ok && rec.Epoch < last {
		rec.Epoch = last
	}
	frame := frameRecord(encodeRecord(rec))
	active := s.segs[len(s.segs)-1]
	if active.records > 0 && active.size+int64(len(frame)) > s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return 0, err
		}
		active = s.segs[len(s.segs)-1]
	}
	if _, err := active.f.Write(frame); err != nil {
		return 0, fmt.Errorf("logstore: append: %w", err)
	}
	s.indexRecord(active, rec, active.size)
	active.size += int64(len(frame))
	s.stats.Appends++
	s.obs.Counter(MetricAppends).Inc()
	s.obs.Counter(MetricAppendBytes).Add(int64(len(frame)))
	if r := core.Observer(); r != nil {
		r.Counter(core.MetricWireFramesStored).Inc()
		r.Counter(core.MetricWireBytesStored).Add(int64(len(rec.Body)))
	}
	s.publishGauges()
	return rec.Epoch, nil
}

// Rotate seals the active segment now (fsync) and opens a fresh one.
func (s *Store) Rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.segs[len(s.segs)-1].records == 0 {
		return nil // already fresh
	}
	return s.rotateLocked()
}

// rotateLocked seals the active segment — this is the durability
// point: the sealed file is fsynced before the new one is created —
// then enforces retention. Caller holds mu.
func (s *Store) rotateLocked() error {
	active := s.segs[len(s.segs)-1]
	if !s.opts.NoSync {
		if err := active.f.Sync(); err != nil {
			return fmt.Errorf("logstore: sync on rotate: %w", err)
		}
	}
	if err := active.f.Close(); err != nil {
		return fmt.Errorf("logstore: close sealed segment: %w", err)
	}
	active.f = nil
	active.sealed = true
	s.stats.Rotations++
	s.obs.Counter(MetricRotations).Inc()
	if err := s.newActiveSegment(active.seq + 1); err != nil {
		return err
	}
	_, err := s.compactLocked()
	s.publishGauges()
	return err
}

// Compact enforces retention now: whole sealed segments are dropped
// oldest-first until at most Options.MaxSegments remain. It returns
// how many records were dropped. With MaxSegments == 0 it is a no-op.
func (s *Store) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	n, err := s.compactLocked()
	s.publishGauges()
	return n, err
}

func (s *Store) compactLocked() (int, error) {
	if s.opts.MaxSegments <= 0 {
		return 0, nil
	}
	dropped := 0
	for len(s.segs) > s.opts.MaxSegments && s.segs[0].sealed {
		oldest := s.segs[0]
		if err := os.Remove(oldest.path); err != nil {
			return dropped, fmt.Errorf("logstore: compact: %w", err)
		}
		s.segs = s.segs[1:]
		dropped += oldest.records
		s.stats.Records -= oldest.records
		s.stats.CompactedRecords += int64(oldest.records)
		s.stats.CompactedSegments++
		s.obs.Counter(MetricCompactedRecords).Add(int64(oldest.records))
		s.obs.Counter(MetricCompactedSegments).Inc()
	}
	if dropped > 0 {
		if err := s.syncDir(); err != nil {
			return dropped, err
		}
	}
	return dropped, nil
}

// Query returns the key's records with epoch in [q.From, q.To], in
// append order, with bodies copied out byte-identically. A structural
// failure while reading (a segment damaged since open) fails closed
// with an error wrapping ErrCorrupt.
func (s *Store) Query(q Query) ([]Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if q.From > q.To {
		return nil, fmt.Errorf("logstore: query range [%d, %d] is empty", q.From, q.To)
	}
	key := Key{q.Device, q.Signal}
	var out []Record
	for _, seg := range s.segs {
		if q.Limit > 0 && len(out) >= q.Limit {
			break
		}
		ki := seg.keys[key]
		if ki == nil || ki.count == 0 || ki.minEpoch > q.To || ki.maxEpoch < q.From {
			continue
		}
		if err := s.scanForQuery(seg, ki, key, q, &out); err != nil {
			return nil, err
		}
	}
	s.obs.Counter(MetricQueries).Inc()
	s.obs.Counter(MetricQueryRecords).Add(int64(len(out)))
	return out, nil
}

// scanForQuery reads one segment's matching records. Sorted keys seek
// via the sparse index (largest sample strictly below From) and stop
// once past To; unsorted keys scan the whole segment.
func (s *Store) scanForQuery(seg *segment, ki *keyIndex, key Key, q Query, out *[]Record) error {
	start := int64(segHeaderSize)
	if ki.sorted {
		for _, p := range ki.sparse {
			if p.epoch < q.From && p.off > start {
				start = p.off
			}
		}
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("logstore: segment %s: %v: %w", filepath.Base(seg.path), err, ErrCorrupt)
	}
	defer f.Close()
	r := bufio.NewReader(io.NewSectionReader(f, start, seg.size-start))
	walk := func(rec Record, off int64) error {
		if rec.Device != key.Device || rec.Signal != key.Signal {
			return nil
		}
		if ki.sorted && rec.Epoch > q.To {
			return errStopWalk
		}
		if rec.Epoch >= q.From && rec.Epoch <= q.To {
			*out = append(*out, rec)
			if q.Limit > 0 && len(*out) >= q.Limit {
				return errStopWalk
			}
		}
		return nil
	}
	// The section reader hides the true offsets; recompute for errors.
	if _, err := walkRecords(r, s.opts.MaxRecordBytes, walk); err != nil {
		return fmt.Errorf("logstore: segment %s: %w", filepath.Base(seg.path), err)
	}
	return nil
}

// Keys lists the streams currently on disk, sorted by device then
// signal, with per-key record counts and epoch bounds.
func (s *Store) Keys() []KeyInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	agg := make(map[Key]*KeyInfo)
	for _, seg := range s.segs {
		for key, ki := range seg.keys {
			if ki.count == 0 {
				continue
			}
			info := agg[key]
			if info == nil {
				agg[key] = &KeyInfo{
					Device: key.Device, Signal: key.Signal,
					Records: ki.count, MinEpoch: ki.minEpoch, MaxEpoch: ki.maxEpoch,
				}
				continue
			}
			info.Records += ki.count
			if ki.minEpoch < info.MinEpoch {
				info.MinEpoch = ki.minEpoch
			}
			if ki.maxEpoch > info.MaxEpoch {
				info.MaxEpoch = ki.maxEpoch
			}
		}
	}
	out := make([]KeyInfo, 0, len(agg))
	for _, info := range agg {
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Signal < out[j].Signal
	})
	return out
}

// Stats returns a consistent snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.stats
	st.Segments = len(s.segs)
	st.Bytes = 0
	for _, seg := range s.segs {
		st.Bytes += seg.size
	}
	return st
}

// Sync flushes the active segment to disk (no-op under NoSync).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.opts.NoSync {
		return nil
	}
	return s.segs[len(s.segs)-1].f.Sync()
}

// Close syncs and closes the active segment. The store rejects all
// further operations with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	active := s.segs[len(s.segs)-1]
	if !s.opts.NoSync {
		if err := active.f.Sync(); err != nil {
			active.f.Close()
			return fmt.Errorf("logstore: sync on close: %w", err)
		}
	}
	if err := active.f.Close(); err != nil {
		return fmt.Errorf("logstore: close: %w", err)
	}
	active.f = nil
	return nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// publishGauges refreshes the shape gauges. Caller holds mu.
func (s *Store) publishGauges() {
	if s.obs == nil {
		return
	}
	bytes := int64(0)
	for _, seg := range s.segs {
		bytes += seg.size
	}
	s.obs.Gauge(MetricSegments).Set(int64(len(s.segs)))
	s.obs.Gauge(MetricRecords).Set(int64(s.stats.Records))
	s.obs.Gauge(MetricBytes).Set(bytes)
}
