package logstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// On-disk layout. A segment file is a 16-byte header followed by
// back-to-back CRC-framed records:
//
//	header:  u32 magic "TPSG" | u32 version | u64 sequence number
//	record:  u32 payload length | u32 CRC-32C(payload) | payload
//	payload: u16 len(device) | device | u16 len(signal) | signal |
//	         i64 epoch | i64 traceCycleBase | body (a core.WriteLog
//	         wire frame, self-delimiting, stored verbatim)
//
// All integers are little-endian. The CRC covers the payload only; the
// length field is validated by range (a record must at least hold its
// fixed fields plus a wire-log header) so a zero-filled or truncated
// tail can never alias a valid record. Segments are append-only and
// immutable once sealed: compaction drops whole files, never rewrites.
const (
	segMagic      = 0x47535054 // "TPSG"
	segVersion    = 1
	segHeaderSize = 16
	recFrameSize  = 8 // u32 length + u32 crc

	// minPayload is the smallest well-formed payload: two empty-length
	// prefixes are illegal (device and signal are required non-empty),
	// so 2+1 + 2+1 + 8 + 8 plus at least a 16-byte wire-log header.
	minPayload = 38

	// sparseEvery is the sparse-index sampling interval: every Nth
	// record of a (device, signal) key within a segment lands an index
	// point, bounding both rebuild memory and seek distance.
	sparseEvery = 32
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segmentName renders the canonical file name for a sequence number.
func segmentName(seq uint64) string { return fmt.Sprintf("seg-%08d.tpl", seq) }

// parseSegmentName inverts segmentName; ok is false for foreign files.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".tpl") {
		return 0, false
	}
	seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".tpl"), 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// quarantineSegment renames an unsalvageable segment file aside (to
// <name>.corrupt, uniquified against earlier quarantines) so its
// sequence number is free for reuse while the bytes stay on disk for
// offline forensics. The suffix keeps the file invisible to
// parseSegmentName, so later opens neither rescan nor re-report it.
func quarantineSegment(path string) (string, error) {
	dst := path + ".corrupt"
	for n := 2; ; n++ {
		if _, err := os.Lstat(dst); errors.Is(err, os.ErrNotExist) {
			break
		} else if err != nil {
			return "", err
		}
		dst = fmt.Sprintf("%s.corrupt.%d", path, n)
	}
	if err := os.Rename(path, dst); err != nil {
		return "", err
	}
	return dst, nil
}

// listSegments returns the store's segment files sorted by sequence.
func listSegments(dir string) ([]string, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type nseq struct {
		name string
		seq  uint64
	}
	var found []nseq
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSegmentName(e.Name()); ok {
			found = append(found, nseq{e.Name(), seq})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].seq < found[j].seq })
	names := make([]string, len(found))
	seqs := make([]uint64, len(found))
	for i, f := range found {
		names[i] = filepath.Join(dir, f.name)
		seqs[i] = f.seq
	}
	return names, seqs, nil
}

// encodeSegmentHeader renders the 16-byte segment header.
func encodeSegmentHeader(seq uint64) []byte {
	buf := make([]byte, segHeaderSize)
	binary.LittleEndian.PutUint32(buf[0:], segMagic)
	binary.LittleEndian.PutUint32(buf[4:], segVersion)
	binary.LittleEndian.PutUint64(buf[8:], seq)
	return buf
}

// readSegmentHeader validates a segment header and returns its
// sequence number.
func readSegmentHeader(r io.Reader) (uint64, error) {
	buf := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, fmt.Errorf("segment header: %v: %w", err, ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint32(buf[0:]); got != segMagic {
		return 0, fmt.Errorf("segment magic %#x: %w", got, ErrCorrupt)
	}
	if got := binary.LittleEndian.Uint32(buf[4:]); got != segVersion {
		return 0, fmt.Errorf("segment version %d (want %d): %w", got, segVersion, ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(buf[8:]), nil
}

// encodeRecord renders a record's payload (the bytes under the CRC).
// The caller has already validated the record via validateRecord.
func encodeRecord(rec Record) []byte {
	n := 2 + len(rec.Device) + 2 + len(rec.Signal) + 8 + 8 + len(rec.Body)
	buf := make([]byte, 0, n)
	var u16 [2]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(rec.Device)))
	buf = append(buf, u16[:]...)
	buf = append(buf, rec.Device...)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(rec.Signal)))
	buf = append(buf, u16[:]...)
	buf = append(buf, rec.Signal...)
	binary.LittleEndian.PutUint64(u64[:], uint64(rec.Epoch))
	buf = append(buf, u64[:]...)
	binary.LittleEndian.PutUint64(u64[:], uint64(rec.TraceCycleBase))
	buf = append(buf, u64[:]...)
	buf = append(buf, rec.Body...)
	return buf
}

// frameRecord wraps a payload in its length+CRC frame.
func frameRecord(payload []byte) []byte {
	buf := make([]byte, 0, recFrameSize+len(payload))
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(payload)))
	buf = append(buf, u32[:]...)
	binary.LittleEndian.PutUint32(u32[:], crc32.Checksum(payload, crcTable))
	buf = append(buf, u32[:]...)
	buf = append(buf, payload...)
	return buf
}

// decodeRecord inverts encodeRecord. It decodes only what encodeRecord
// produced: any trailing ambiguity (short names, no body) is corruption.
func decodeRecord(payload []byte) (Record, error) {
	var rec Record
	take := func(n int) ([]byte, bool) {
		if len(payload) < n {
			return nil, false
		}
		out := payload[:n]
		payload = payload[n:]
		return out, true
	}
	dl, ok := take(2)
	if !ok {
		return rec, fmt.Errorf("record payload truncated in device length: %w", ErrCorrupt)
	}
	dev, ok := take(int(binary.LittleEndian.Uint16(dl)))
	if !ok {
		return rec, fmt.Errorf("record payload truncated in device name: %w", ErrCorrupt)
	}
	sl, ok := take(2)
	if !ok {
		return rec, fmt.Errorf("record payload truncated in signal length: %w", ErrCorrupt)
	}
	sig, ok := take(int(binary.LittleEndian.Uint16(sl)))
	if !ok {
		return rec, fmt.Errorf("record payload truncated in signal name: %w", ErrCorrupt)
	}
	fixed, ok := take(16)
	if !ok {
		return rec, fmt.Errorf("record payload truncated in epoch fields: %w", ErrCorrupt)
	}
	rec.Device = string(dev)
	rec.Signal = string(sig)
	rec.Epoch = int64(binary.LittleEndian.Uint64(fixed[0:]))
	rec.TraceCycleBase = int64(binary.LittleEndian.Uint64(fixed[8:]))
	rec.Body = append([]byte(nil), payload...)
	if rec.Device == "" || rec.Signal == "" || len(rec.Body) == 0 {
		return rec, fmt.Errorf("record with empty device, signal or body: %w", ErrCorrupt)
	}
	return rec, nil
}

// walkRecords scans records from r, which must be positioned just past
// the segment header. fn is called with each intact record and its file
// offset; returning a non-nil error stops the walk and is returned
// verbatim (errStopWalk is swallowed — the early-exit the query path
// uses). The returned offset is just past the last intact record; err
// is nil on a clean end-of-segment and wraps ErrCorrupt when the walk
// stopped at damage (torn frame, bad CRC, zero fill, undecodable
// payload). Records past the damage are unreachable — the fail-closed
// rule: bytes that fail the CRC frame are never served as data.
func walkRecords(r io.Reader, maxRecord int64, fn func(rec Record, off int64) error) (int64, error) {
	off := int64(segHeaderSize)
	frame := make([]byte, recFrameSize)
	for {
		_, err := io.ReadFull(r, frame)
		if err == io.EOF {
			return off, nil // clean end exactly at a record boundary
		}
		if err != nil {
			return off, fmt.Errorf("record frame at offset %d: %v: %w", off, err, ErrCorrupt)
		}
		length := int64(binary.LittleEndian.Uint32(frame[0:]))
		wantCRC := binary.LittleEndian.Uint32(frame[4:])
		if length < minPayload || length > maxRecord {
			return off, fmt.Errorf("record length %d at offset %d outside [%d, %d]: %w",
				length, off, minPayload, maxRecord, ErrCorrupt)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, fmt.Errorf("record payload at offset %d: %v: %w", off, err, ErrCorrupt)
		}
		if got := crc32.Checksum(payload, crcTable); got != wantCRC {
			return off, fmt.Errorf("record CRC %#x (want %#x) at offset %d: %w", got, wantCRC, off, ErrCorrupt)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return off, fmt.Errorf("record at offset %d: %w", off, err)
		}
		if err := fn(rec, off); err != nil {
			if errors.Is(err, errStopWalk) {
				return off, nil
			}
			return off, err
		}
		off += recFrameSize + length
	}
}

// errStopWalk is walkRecords' early-exit sentinel (sorted-epoch queries
// stop once past their range).
var errStopWalk = errors.New("logstore: stop walk")
