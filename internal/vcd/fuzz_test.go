package vcd

import (
	"strings"
	"testing"
)

// FuzzParse ensures arbitrary text never panics the VCD parser.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("$enddefinitions $end\n#5\n1!\n")
	f.Add("")
	f.Add("$timescale 1 ns $end")
	f.Fuzz(func(t *testing.T, doc string) {
		file, err := Parse(strings.NewReader(doc))
		if err != nil {
			return
		}
		// Accepted documents support change queries on every variable.
		for _, v := range file.Vars {
			if _, err := file.ChangeInstants(v.Name); err != nil {
				t.Fatalf("declared variable unreadable: %v", err)
			}
		}
	})
}
