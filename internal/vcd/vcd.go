// Package vcd reads and writes IEEE 1364 Value Change Dump files, the
// interchange format RTL simulators (like the Questa-Sim run of
// experiment 5.2.2) produce. It supports the subset needed for
// timeprint workflows: scalar and vector variables, $timescale,
// $dumpvars initialization, and #-timestamped value changes — enough
// to pull a reference trace of a traced wire out of a simulator dump,
// or to render a reconstructed signal for a waveform viewer.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Change is one recorded value change of one variable.
type Change struct {
	// Time in timescale units.
	Time int64
	// Value is the new value ('0'/'1'/'x'/'z' for scalars; for vectors
	// the bit string without the leading 'b').
	Value string
}

// Variable is a declared signal.
type Variable struct {
	ID    string // the short identifier code
	Name  string // hierarchical name (scope.name)
	Width int
	Type  string // wire, reg, …
}

// File is a parsed VCD document.
type File struct {
	TimescaleValue int
	TimescaleUnit  string // s, ms, us, ns, ps, fs
	Vars           []Variable
	// Changes maps variable ID to its time-ordered change list.
	Changes map[string][]Change
	// End is the largest timestamp seen.
	End int64
}

// FindVar locates a variable by exact name or by unqualified suffix.
func (f *File) FindVar(name string) (Variable, bool) {
	for _, v := range f.Vars {
		if v.Name == name {
			return v, true
		}
	}
	for _, v := range f.Vars {
		if strings.HasSuffix(v.Name, "."+name) || v.Name == name {
			return v, true
		}
	}
	return Variable{}, false
}

// Parse reads a VCD document.
func Parse(r io.Reader) (*File, error) {
	f := &File{Changes: map[string][]Change{}, TimescaleValue: 1, TimescaleUnit: "ns"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var scope []string
	now := int64(0)
	inDefs := true

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$timescale"):
			body, err := collectDirective(sc, line)
			if err != nil {
				return nil, err
			}
			if err := f.parseTimescale(body); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "$scope"):
			fields := strings.Fields(line)
			if len(fields) >= 3 {
				scope = append(scope, fields[2])
			}
		case strings.HasPrefix(line, "$upscope"):
			if len(scope) > 0 {
				scope = scope[:len(scope)-1]
			}
		case strings.HasPrefix(line, "$var"):
			fields := strings.Fields(line)
			if len(fields) < 6 {
				return nil, fmt.Errorf("vcd: malformed $var: %q", line)
			}
			width, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("vcd: bad width in %q", line)
			}
			name := fields[4]
			if len(scope) > 0 {
				name = strings.Join(scope, ".") + "." + name
			}
			f.Vars = append(f.Vars, Variable{ID: fields[3], Name: name, Width: width, Type: fields[1]})
		case strings.HasPrefix(line, "$enddefinitions"):
			inDefs = false
		case strings.HasPrefix(line, "$dumpvars"), strings.HasPrefix(line, "$end"),
			strings.HasPrefix(line, "$comment"), strings.HasPrefix(line, "$date"),
			strings.HasPrefix(line, "$version"), strings.HasPrefix(line, "$dumpall"),
			strings.HasPrefix(line, "$dumpon"), strings.HasPrefix(line, "$dumpoff"):
			// Skip through to $end for multi-line directives.
			if !strings.Contains(line, "$end") && strings.HasPrefix(line, "$") &&
				(strings.HasPrefix(line, "$comment") || strings.HasPrefix(line, "$date") || strings.HasPrefix(line, "$version")) {
				if _, err := collectDirective(sc, line); err != nil {
					return nil, err
				}
			}
		case strings.HasPrefix(line, "#"):
			t, err := strconv.ParseInt(line[1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("vcd: bad timestamp %q", line)
			}
			if t < now {
				return nil, fmt.Errorf("vcd: timestamp %d goes backwards from %d", t, now)
			}
			now = t
			if t > f.End {
				f.End = t
			}
		default:
			if inDefs {
				continue
			}
			if err := f.parseValueChange(line, now); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// collectDirective gathers tokens of a directive until $end.
func collectDirective(sc *bufio.Scanner, first string) (string, error) {
	body := strings.TrimPrefix(first, "$")
	if i := strings.Index(body, " "); i >= 0 {
		body = body[i+1:]
	} else {
		body = ""
	}
	if strings.Contains(first, "$end") {
		return strings.TrimSpace(strings.Replace(body, "$end", "", 1)), nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.Contains(line, "$end") {
			body += " " + strings.TrimSpace(strings.Replace(line, "$end", "", 1))
			return strings.TrimSpace(body), nil
		}
		body += " " + line
	}
	return "", fmt.Errorf("vcd: unterminated directive")
}

func (f *File) parseTimescale(body string) error {
	body = strings.TrimSpace(body)
	// Forms: "1ns", "1 ns", "10 us".
	i := 0
	for i < len(body) && body[i] >= '0' && body[i] <= '9' {
		i++
	}
	if i == 0 {
		return fmt.Errorf("vcd: bad timescale %q", body)
	}
	v, err := strconv.Atoi(body[:i])
	if err != nil {
		return err
	}
	unit := strings.TrimSpace(body[i:])
	switch unit {
	case "s", "ms", "us", "ns", "ps", "fs":
	default:
		return fmt.Errorf("vcd: bad timescale unit %q", unit)
	}
	f.TimescaleValue, f.TimescaleUnit = v, unit
	return nil
}

func (f *File) parseValueChange(line string, now int64) error {
	switch line[0] {
	case '0', '1', 'x', 'X', 'z', 'Z':
		id := line[1:]
		if id == "" {
			return fmt.Errorf("vcd: scalar change without id: %q", line)
		}
		f.Changes[id] = append(f.Changes[id], Change{Time: now, Value: strings.ToLower(line[:1])})
	case 'b', 'B':
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("vcd: malformed vector change %q", line)
		}
		f.Changes[fields[1]] = append(f.Changes[fields[1]], Change{Time: now, Value: strings.ToLower(fields[0][1:])})
	case 'r', 'R':
		// Real values: tolerated, stored verbatim.
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("vcd: malformed real change %q", line)
		}
		f.Changes[fields[1]] = append(f.Changes[fields[1]], Change{Time: now, Value: fields[0][1:]})
	default:
		return fmt.Errorf("vcd: unrecognized value change %q", line)
	}
	return nil
}

// ChangeInstants returns the clock-cycles at which the named variable
// changed value, treating one timescale unit as one clock-cycle and
// ignoring the initial $dumpvars assignment at time 0 (establishing a
// level is not a change). Unknown values ('x', 'z') participate in
// change detection like any other value.
func (f *File) ChangeInstants(name string) ([]int64, error) {
	v, ok := f.FindVar(name)
	if !ok {
		return nil, fmt.Errorf("vcd: variable %q not found", name)
	}
	chs := f.Changes[v.ID]
	var out []int64
	var prev string
	for i, c := range chs {
		if i == 0 {
			prev = c.Value
			if c.Time > 0 {
				// First recorded value after t=0 — treat as a change
				// only if something was dumped at 0 for this var;
				// without a baseline it establishes the level.
			}
			continue
		}
		if c.Value != prev {
			out = append(out, c.Time)
		}
		prev = c.Value
	}
	return out, nil
}

// Writer emits a minimal well-formed VCD document for a set of
// scalar/vector variables.
type Writer struct {
	w      *bufio.Writer
	vars   []Variable
	opened bool
	now    int64
	hasNow bool
}

// NewWriter starts a document with the given timescale.
func NewWriter(w io.Writer, timescale string, vars []Variable) (*Writer, error) {
	out := &Writer{w: bufio.NewWriter(w), vars: vars}
	fmt.Fprintf(out.w, "$timescale %s $end\n", timescale)
	fmt.Fprintf(out.w, "$scope module timeprints $end\n")
	ids := map[string]bool{}
	for _, v := range vars {
		if v.ID == "" || ids[v.ID] {
			return nil, fmt.Errorf("vcd: duplicate or empty id %q", v.ID)
		}
		ids[v.ID] = true
		typ := v.Type
		if typ == "" {
			typ = "wire"
		}
		fmt.Fprintf(out.w, "$var %s %d %s %s $end\n", typ, v.Width, v.ID, v.Name)
	}
	fmt.Fprintf(out.w, "$upscope $end\n$enddefinitions $end\n")
	return out, nil
}

// Emit records a value change at the given time (monotone
// non-decreasing).
func (w *Writer) Emit(t int64, id, value string) error {
	if w.hasNow && t < w.now {
		return fmt.Errorf("vcd: time %d before %d", t, w.now)
	}
	if !w.hasNow || t != w.now {
		fmt.Fprintf(w.w, "#%d\n", t)
		w.now, w.hasNow = t, true
	}
	if len(value) == 1 {
		fmt.Fprintf(w.w, "%s%s\n", value, id)
	} else {
		fmt.Fprintf(w.w, "b%s %s\n", value, id)
	}
	return nil
}

// Close flushes the document.
func (w *Writer) Close() error { return w.w.Flush() }

// WriteSignal renders a change-instant list as a single-bit VCD wire
// toggling at each instant, starting low at time 0.
func WriteSignal(w io.Writer, name string, changes []int64, end int64) error {
	vw, err := NewWriter(w, "1ns", []Variable{{ID: "!", Name: name, Width: 1}})
	if err != nil {
		return err
	}
	sorted := append([]int64(nil), changes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if err := vw.Emit(0, "!", "0"); err != nil {
		return err
	}
	level := false
	for _, c := range sorted {
		level = !level
		val := "0"
		if level {
			val = "1"
		}
		if err := vw.Emit(c, "!", val); err != nil {
			return err
		}
	}
	if end > 0 {
		fmt.Fprintf(vw.w, "#%d\n", end)
	}
	return vw.Close()
}
