package vcd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/trace"
)

const sample = `$date today $end
$version hand-written $end
$timescale 1 ns $end
$scope module top $end
$var wire 1 ! clk $end
$var wire 1 " sig $end
$scope module sub $end
$var wire 8 # addr $end
$upscope $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
0"
b00000000 #
$end
#5
1!
1"
#10
0!
b00000001 #
#15
1!
0"
#20
0!
`

func TestParseStructure(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.TimescaleValue != 1 || f.TimescaleUnit != "ns" {
		t.Errorf("timescale %d%s", f.TimescaleValue, f.TimescaleUnit)
	}
	if len(f.Vars) != 3 {
		t.Fatalf("vars: %+v", f.Vars)
	}
	if v, ok := f.FindVar("top.sub.addr"); !ok || v.Width != 8 {
		t.Error("qualified lookup failed")
	}
	if v, ok := f.FindVar("sig"); !ok || v.Name != "top.sig" {
		t.Error("suffix lookup failed")
	}
	if _, ok := f.FindVar("nope"); ok {
		t.Error("phantom variable found")
	}
	if f.End != 20 {
		t.Errorf("end %d", f.End)
	}
}

func TestChangeInstants(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// sig: 0@0 (baseline), 1@5, 0@15 -> changes at 5, 15.
	ch, err := f.ChangeInstants("sig")
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 2 || ch[0] != 5 || ch[1] != 15 {
		t.Fatalf("sig changes %v", ch)
	}
	// addr: vector change at 10 only.
	ch, err = f.ChangeInstants("addr")
	if err != nil {
		t.Fatal(err)
	}
	if len(ch) != 1 || ch[0] != 10 {
		t.Fatalf("addr changes %v", ch)
	}
	// clk toggles at 5, 10, 15, 20.
	ch, _ = f.ChangeInstants("clk")
	if len(ch) != 4 {
		t.Fatalf("clk changes %v", ch)
	}
	if _, err := f.ChangeInstants("ghost"); err == nil {
		t.Error("missing variable accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"$timescale 1 lightyears $end\n$enddefinitions $end\n",
		"$enddefinitions $end\n#5\n#3\n", // time going backwards
		"$enddefinitions $end\n#5\nqqq\n",
		"$var wire x ! sig $end\n",
	}
	for _, s := range bad {
		if _, err := Parse(strings.NewReader(s)); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "1ns", []Variable{
		{ID: "!", Name: "a", Width: 1},
		{ID: "\"", Name: "bus", Width: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	mustEmit := func(tm int64, id, v string) {
		t.Helper()
		if err := w.Emit(tm, id, v); err != nil {
			t.Fatal(err)
		}
	}
	mustEmit(0, "!", "0")
	mustEmit(0, "\"", "0000")
	mustEmit(3, "!", "1")
	mustEmit(7, "\"", "1010")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	ch, err := f.ChangeInstants("a")
	if err != nil || len(ch) != 1 || ch[0] != 3 {
		t.Fatalf("a changes %v %v", ch, err)
	}
	ch, _ = f.ChangeInstants("bus")
	if len(ch) != 1 || ch[0] != 7 {
		t.Fatalf("bus changes %v", ch)
	}
}

func TestWriterRejectsBackwardsTime(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, "1ns", []Variable{{ID: "!", Name: "a", Width: 1}})
	_ = w.Emit(5, "!", "1")
	if err := w.Emit(3, "!", "0"); err == nil {
		t.Error("backwards time accepted")
	}
}

func TestWriterRejectsDuplicateIDs(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, "1ns", []Variable{
		{ID: "!", Name: "a", Width: 1}, {ID: "!", Name: "b", Width: 1},
	}); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestWriteSignalRoundTrip(t *testing.T) {
	changes := []int64{3, 7, 20, 21}
	var buf bytes.Buffer
	if err := WriteSignal(&buf, "traced", changes, 32); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ChangeInstants("traced")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(changes) {
		t.Fatalf("round trip %v != %v", got, changes)
	}
	for i := range changes {
		if got[i] != changes[i] {
			t.Fatalf("round trip %v != %v", got, changes)
		}
	}
}

func TestVCDToTimeprintPipeline(t *testing.T) {
	// The full workflow: simulator dump -> change instants -> timeprint
	// log; then verify against direct logging.
	enc, err := encoding.Incremental(16, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	changes := []int64{2, 3, 9, 10, 18, 30, 31, 40}
	var buf bytes.Buffer
	if err := WriteSignal(&buf, "sig", changes, 48); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ChangeInstants("sig")
	if err != nil {
		t.Fatal(err)
	}
	entries, err := core.LogSignalTrace(enc, got, 48)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.LogSignalTrace(enc, changes, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want) {
		t.Fatal("length mismatch")
	}
	for i := range want {
		if !entries[i].Equal(want[i]) {
			t.Fatalf("entry %d differs", i)
		}
	}
	_ = trace.Store{} // documents the downstream destination type
}
