package sat

import (
	"math/rand"
	"testing"
)

func TestSolveAssumingBasic(t *testing.T) {
	s := New(3)
	mustAdd(t, s, 1, 2)

	if st := s.SolveAssuming([]int{-1}); st != Sat {
		t.Fatalf("assume -1: status %v", st)
	}
	if !s.Value(2) {
		t.Fatalf("assume -1: expected x2 true")
	}
	if st := s.SolveAssuming([]int{-2}); st != Sat {
		t.Fatalf("assume -2: status %v", st)
	}
	if !s.Value(1) {
		t.Fatalf("assume -2: expected x1 true")
	}
	if st := s.SolveAssuming([]int{-1, -2}); st != Unsat {
		t.Fatalf("assume -1,-2: status %v, want Unsat", st)
	}
	// Unsat under assumptions must not poison the solver.
	if st := s.Solve(); st != Sat {
		t.Fatalf("solver unusable after Unsat-under-assumptions: %v", st)
	}
	if got := s.Stats.AssumptionSolves; got != 3 {
		t.Fatalf("AssumptionSolves = %d, want 3", got)
	}
}

func TestSolveAssumingRetracted(t *testing.T) {
	s := New(4)
	mustAdd(t, s, 1, 2, 3, 4)
	if st := s.SolveAssuming([]int{2, 3}); st != Sat {
		t.Fatalf("status %v", st)
	}
	// The model keeps reporting the assumed values...
	if !s.Value(2) || !s.Value(3) {
		t.Fatalf("model lost assumption values")
	}
	// ...but the trail is fully unwound: nothing is assigned.
	if s.decisionLevel() != 0 {
		t.Fatalf("decision level %d after SolveAssuming", s.decisionLevel())
	}
	for v := 0; v < s.numVars; v++ {
		if s.assigns[v] != valUnassigned {
			t.Fatalf("variable %d still assigned after retraction", v+1)
		}
	}
	// Opposite assumptions next call: no leftover forced values.
	if st := s.SolveAssuming([]int{-2, -3}); st != Sat {
		t.Fatalf("opposite assumptions: %v", st)
	}
	if s.Value(2) || s.Value(3) {
		t.Fatalf("assumptions leaked into next call")
	}
}

func TestSolveAssumingContradictorySet(t *testing.T) {
	s := New(2)
	mustAdd(t, s, 1, 2)
	if st := s.SolveAssuming([]int{1, -1}); st != Unsat {
		t.Fatalf("contradictory assumptions: %v, want Unsat", st)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("solver unusable after contradictory assumptions: %v", st)
	}
}

// TestSolveAssumingMatchesRebuild cross-checks assumption solving
// against building a fresh solver with the assumptions added as unit
// clauses, over random 3-CNF instances.
func TestSolveAssumingMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 40; round++ {
		n := 8 + rng.Intn(6)
		numClauses := 2 + rng.Intn(4*n)
		clauses := make([][]int, numClauses)
		for i := range clauses {
			cls := make([]int, 3)
			for j := range cls {
				v := 1 + rng.Intn(n)
				if rng.Intn(2) == 0 {
					v = -v
				}
				cls[j] = v
			}
			clauses[i] = cls
		}
		inc := New(n)
		for _, c := range clauses {
			mustAdd(t, inc, c...)
		}
		for q := 0; q < 8; q++ {
			var assumps []int
			for v := 1; v <= n; v++ {
				if rng.Intn(4) == 0 {
					if rng.Intn(2) == 0 {
						assumps = append(assumps, v)
					} else {
						assumps = append(assumps, -v)
					}
				}
			}
			fresh := New(n)
			for _, c := range clauses {
				mustAdd(t, fresh, c...)
			}
			for _, a := range assumps {
				mustAdd(t, fresh, a)
			}
			want := fresh.Solve()
			got := inc.SolveAssuming(assumps)
			if got != want {
				t.Fatalf("round %d query %d: assumptions %v: incremental %v, rebuild %v",
					round, q, assumps, got, want)
			}
		}
	}
}

func TestEnumerateAssumingNoPollution(t *testing.T) {
	s := New(3)
	// No constraints: 8 models on {1,2,3}.
	all := func(map[int]bool) bool { return true }
	for round := 0; round < 3; round++ {
		n, st, err := s.EnumerateAssuming(nil, []int{1, 2, 3}, 0, all)
		if err != nil || st != Unsat || n != 8 {
			t.Fatalf("round %d: n=%d st=%v err=%v, want 8/Unsat/nil", round, n, st, err)
		}
	}
	// Under an assumption the space halves; afterwards the full space
	// is still intact.
	n, st, err := s.EnumerateAssuming([]int{1}, []int{1, 2, 3}, 0, all)
	if err != nil || st != Unsat || n != 4 {
		t.Fatalf("assuming 1: n=%d st=%v err=%v, want 4/Unsat/nil", n, st, err)
	}
	n, st, err = s.EnumerateAssuming(nil, []int{1, 2, 3}, 0, all)
	if err != nil || st != Unsat || n != 8 {
		t.Fatalf("after assumed run: n=%d st=%v err=%v, want 8/Unsat/nil", n, st, err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("solver unusable after enumerations: %v", st)
	}
}

func TestEnumerateAssumingLimitAndStop(t *testing.T) {
	s := New(4)
	all := func(map[int]bool) bool { return true }
	n, st, err := s.EnumerateAssuming(nil, []int{1, 2, 3, 4}, 5, all)
	if err != nil || st != Sat || n != 5 {
		t.Fatalf("limit run: n=%d st=%v err=%v", n, st, err)
	}
	stops := 0
	n, st, err = s.EnumerateAssuming(nil, []int{1, 2, 3, 4}, 0, func(map[int]bool) bool {
		stops++
		return stops < 3
	})
	if err != nil || st != Sat || n != 3 {
		t.Fatalf("fn-stop run: n=%d st=%v err=%v", n, st, err)
	}
	// Neither truncated run may leave blocking clauses behind.
	n, st, err = s.EnumerateAssuming(nil, []int{1, 2, 3, 4}, 0, all)
	if err != nil || st != Unsat || n != 16 {
		t.Fatalf("full run after truncated runs: n=%d st=%v err=%v, want 16", n, st, err)
	}
}

func TestGuardedClauseLifecycle(t *testing.T) {
	s := New(2)
	sel := s.acquireSelector()
	if err := s.AddGuardedClause(sel, -1); err != nil {
		t.Fatal(err)
	}
	if st := s.SolveAssuming([]int{sel, 1}); st != Unsat {
		t.Fatalf("guarded clause inactive: %v", st)
	}
	// Guard not assumed: the clause has no force.
	if st := s.SolveAssuming([]int{1}); st != Sat {
		t.Fatalf("guarded clause leaked without its selector: %v", st)
	}
	s.DropGuard(sel)
	s.retireSelector(sel)
	// The retired selector pins false, so the old guard stays inert and
	// a fresh selector starts clean.
	if st := s.SolveAssuming([]int{1}); st != Sat {
		t.Fatalf("dropped guard still active: %v", st)
	}
	sel2 := s.acquireSelector()
	if sel2 == sel {
		t.Fatalf("retired selector %d was reissued", sel)
	}
	if st := s.SolveAssuming([]int{sel2, 1}); st != Sat {
		t.Fatalf("fresh selector inherited old guard: %v", st)
	}
}

func TestCloneCarriesGuardedClauses(t *testing.T) {
	s := New(2)
	sel := s.acquireSelector()
	if err := s.AddGuardedClause(sel, -1); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if st := c.SolveAssuming([]int{sel, 1}); st != Unsat {
		t.Fatalf("clone lost guarded clause: %v", st)
	}
	c.DropGuard(sel)
	if st := c.SolveAssuming([]int{sel, 1}); st != Sat {
		t.Fatalf("clone DropGuard ineffective: %v", st)
	}
	// The original is untouched by the clone's DropGuard.
	if st := s.SolveAssuming([]int{sel, 1}); st != Unsat {
		t.Fatalf("clone DropGuard affected original: %v", st)
	}
}
