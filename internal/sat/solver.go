// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver with native XOR-clause support, in the spirit of CryptoMiniSat
// (Soos et al., SAT 2009), which the paper uses to solve the signal
// reconstruction problem. The solver provides:
//
//   - ordinary CNF clauses with two-literal watching,
//   - XOR clauses (parity constraints) with watch-based propagation and
//     lazily materialized reasons, so the b linear equations A·x = TP
//     are handled natively instead of being expanded into CNF,
//   - first-UIP clause learning, VSIDS branching, phase saving, Luby
//     restarts and activity/LBD-based learned-clause reduction,
//   - model enumeration (AllSAT) over a projection of the variables via
//     blocking clauses, which is how all candidate signals of a
//     timeprint are recovered.
//
// Variables are addressed externally as positive integers 1..n and
// literals DIMACS-style: +v is the variable, -v its negation.
package sat

import (
	"fmt"
	"sync/atomic"

	"repro/internal/obs"
)

// Status is the outcome of a Solve call.
type Status int

const (
	// Unknown means solving was aborted (budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

const (
	valUnassigned int8 = -1
	valFalse      int8 = 0
	valTrue       int8 = 1
)

// lit is an internal literal: variable index shifted left once, low bit
// set for negation.
type lit int32

func mkLit(varIdx int32, neg bool) lit {
	l := lit(varIdx << 1)
	if neg {
		l |= 1
	}
	return l
}

func (l lit) varIdx() int32 { return int32(l >> 1) }
func (l lit) negated() bool { return l&1 == 1 }
func (l lit) not() lit      { return l ^ 1 }

// extToLit converts a DIMACS-style literal to internal form.
func extToLit(x int) lit {
	if x == 0 {
		panic("sat: zero literal")
	}
	if x > 0 {
		return mkLit(int32(x-1), false)
	}
	return mkLit(int32(-x-1), true)
}

// litToExt converts an internal literal to DIMACS form.
func litToExt(l lit) int {
	v := int(l.varIdx()) + 1
	if l.negated() {
		return -v
	}
	return v
}

// reasonKind discriminates the source of a propagated assignment.
type reasonKind uint8

const (
	reasonNone reasonKind = iota
	reasonClause
	reasonXor
	// reasonGauss is an implication extracted mid-search from the
	// in-search XOR Gauss matrix. Unlike reasonXor, the clausal reason
	// is materialized EAGERLY at propagation time (into lits): matrix
	// rows are XOR-combined during search, so a lazy reason could read
	// a row that no longer implies the literal it justified.
	reasonGauss
)

type reason struct {
	kind reasonKind
	cls  *clause
	xor  *xorClause
	lits []lit // reasonGauss only: asserting literal first
}

// watcher is one entry of a literal's watch list. blocker is a literal
// of the clause that, when already true, lets propagation skip the
// clause without touching its memory.
type watcher struct {
	cls     *clause
	blocker lit
}

// Stats aggregates solver counters across Solve calls. Every field is
// deterministic for a deterministic search — no timing, no scheduling
// — which is what lets the test suite assert counter equality across
// repeated runs and across the serial vs cloned-worker drivers.
type Stats struct {
	Decisions     int64
	Propagations  int64
	Conflicts     int64
	Restarts      int64
	Learned       int64
	LearnedPruned int64
	// LearnedLits sums the lengths of learned clauses, so the mean
	// learned-clause length is LearnedLits / Learned.
	LearnedLits int64
	XorProps    int64
	// AssumptionSolves counts SolveAssuming calls; GaussRuns counts
	// in-solver XOR Gaussian eliminations and GaussUnits the level-0
	// unit assignments those eliminations derived.
	AssumptionSolves int64
	GaussRuns        int64
	GaussUnits       int64
	// GaussInSearchProps and GaussInSearchConflicts count implications
	// and conflicts extracted mid-search by the in-search XOR Gauss
	// propagator (EnableGaussInSearch); GaussMatrixBuilds counts the
	// level-0 matrix (re)builds that feed it.
	GaussInSearchProps     int64
	GaussInSearchConflicts int64
	GaussMatrixBuilds      int64
}

// Solver is a CDCL SAT solver with XOR clauses. The zero value is not
// usable; construct with New.
type Solver struct {
	numVars int

	clauses []*clause // problem clauses
	learnts []*clause // learned clauses
	xors    []*xorClause

	watches    [][]watcher    // per literal
	xorWatches [][]*xorClause // per variable

	assigns  []int8
	level    []int32
	reasons  []reason
	trail    []lit
	trailLim []int
	qhead    int

	// VSIDS
	activity []float64
	varInc   float64
	order    *varHeap
	polarity []bool // saved phases: true = assign false first (MiniSat style "sign")

	claInc float64

	seen       []bool
	analyzeBuf []lit

	// model is the assignment captured at the most recent Sat result.
	// Model and Value read it, so SolveAssuming can retract its
	// assumptions before returning without losing the model.
	model []int8

	// assumps is the active assumption prefix of a SolveAssuming call:
	// assumps[i] is planted as the decision of level i+1, so a backjump
	// (or restart) below an assumption replants it before any free
	// decision is made. Empty outside SolveAssuming.
	assumps []lit

	// guarded tracks removable clauses by their guard variable (see
	// AddGuardedClause/DropGuard).
	guarded map[int32][]*clause

	// EnableGauss turns on the in-solver XOR Gaussian elimination: at
	// the start of a solve the XOR rows are row-reduced over GF(2)
	// (folding in level-0 assignments), and the reduced rows replace
	// the originals in the watch scheme.
	//
	// EnableGaussInSearch additionally keeps the reduced matrix LIVE
	// across decision levels (see gauss_insearch.go): dense bitset rows
	// with two watched columns each, updated on every assignment, with
	// implications and conflicts extracted mid-search. It implies the
	// level-0 pass (the RREF basis seeds the matrix pivots).
	EnableGauss         bool
	EnableGaussInSearch bool
	// xorGen is bumped every time the XOR row set changes (AddXorClause
	// appending a row, or an elimination harvest swapping the set);
	// gaussGen/gaussTrail remember what the last elimination saw so it
	// only reruns when the rows or the level-0 trail changed materially.
	// Comparing generations instead of row COUNTS closes the staleness
	// hole where a harvest plus a later AddXorClause left len(xors)
	// unchanged while the row set differed.
	xorGen     uint64
	gaussGen   uint64
	gaussTrail int
	// gmat is the in-search Gauss matrix, nil until the first solve
	// with EnableGaussInSearch set (and after that rebuilt whenever
	// xorGen moves past the generation it was built from).
	gmat *gaussMatrix

	ok bool // false once a top-level conflict is found

	// stop is the cooperative cancellation flag: set asynchronously by
	// Interrupt, polled by the search loop at every conflict and
	// decision. It is the only solver field another goroutine may
	// touch while Solve runs.
	stop atomic.Bool

	// MaxConflicts bounds a single Solve call; <=0 means unlimited.
	MaxConflicts int64

	Stats Stats

	// Obs, when non-nil, receives the solver's counters and latencies:
	// each Solve call publishes its Stats delta and duration into the
	// registry on exit, so the hot search loop itself never touches an
	// instrument and the nil (default) path costs one pointer check per
	// Solve. Clones share the registry, which aggregates the cube-split
	// workers' counters atomically.
	Obs *obs.Registry

	// obsCache holds resolved instruments for Obs (see instruments).
	obsCache *obsInstruments
}

// Interrupt asks a running Solve (or model enumeration) to stop at the
// next conflict or decision, returning Unknown. It is safe to call
// from another goroutine and is the cancellation hook of the parallel
// cube-split drivers. The flag stays set — and makes subsequent Solve
// calls return Unknown immediately — until ClearInterrupt.
func (s *Solver) Interrupt() { s.stop.Store(true) }

// ClearInterrupt re-arms a solver whose Interrupt was triggered.
func (s *Solver) ClearInterrupt() { s.stop.Store(false) }

// InterruptOnDone arms an asynchronous watcher that calls Interrupt
// when done is closed (or receives), so a deadline or cancellation
// signal — typically a context.Done() channel — propagates into the
// search loop cooperatively. The returned stop function disarms the
// watcher and waits for it to exit; it must be called exactly once,
// normally via defer around the Solve/EnumerateModels call. A nil done
// channel arms nothing and returns a no-op stop.
//
// If done fires, the interrupt flag stays set (Solve keeps returning
// Unknown) until ClearInterrupt, matching Interrupt's own contract.
func (s *Solver) InterruptOnDone(done <-chan struct{}) (stop func()) {
	if done == nil {
		return func() {}
	}
	quit := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-done:
			s.Interrupt()
		case <-quit:
		}
	}()
	return func() {
		close(quit)
		<-exited
	}
}

// Interrupted reports whether an interrupt is pending, distinguishing
// an Unknown caused by Interrupt from one caused by an exhausted
// conflict budget.
func (s *Solver) Interrupted() bool { return s.stop.Load() }

// New returns a solver with n variables, numbered 1..n.
func New(n int) *Solver {
	s := &Solver{ok: true, varInc: 1, claInc: 1}
	s.grow(n)
	return s
}

// NumVars reports the current number of variables.
func (s *Solver) NumVars() int { return s.numVars }

// NewVar adds one fresh variable and returns its (positive) index.
func (s *Solver) NewVar() int {
	s.grow(s.numVars + 1)
	return s.numVars
}

func (s *Solver) grow(n int) {
	if n < s.numVars {
		return
	}
	for len(s.assigns) < n {
		s.assigns = append(s.assigns, valUnassigned)
		s.level = append(s.level, 0)
		s.reasons = append(s.reasons, reason{})
		s.activity = append(s.activity, 0)
		s.polarity = append(s.polarity, true)
		s.seen = append(s.seen, false)
		s.watches = append(s.watches, nil, nil)
		s.xorWatches = append(s.xorWatches, nil)
	}
	if s.order == nil {
		s.order = newVarHeap(&s.activity)
	}
	for v := s.numVars; v < n; v++ {
		s.order.insert(int32(v))
	}
	s.numVars = n
}

func (s *Solver) valueLit(l lit) int8 {
	a := s.assigns[l.varIdx()]
	if a == valUnassigned {
		return valUnassigned
	}
	if l.negated() {
		return 1 - a
	}
	return a
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a CNF clause given as DIMACS literals. Adding the
// empty clause marks the formula unsatisfiable. The error return is
// reserved for future input validation; it is currently always nil.
func (s *Solver) AddClause(extLits ...int) error {
	if len(extLits) == 0 {
		s.ok = false
		return nil
	}
	// Ensure capacity for the variables mentioned.
	maxVar := 0
	for _, x := range extLits {
		v := x
		if v < 0 {
			v = -v
		}
		if v > maxVar {
			maxVar = v
		}
	}
	s.grow(maxVar)
	if s.decisionLevel() != 0 {
		s.cancelUntil(0)
	}
	if !s.ok {
		return nil // formula already unsatisfiable; adding is a no-op
	}

	// Simplify: drop false literals, detect satisfied/tautological
	// clauses, dedupe.
	lits := make([]lit, 0, len(extLits))
	seenLit := map[lit]bool{}
	for _, x := range extLits {
		l := extToLit(x)
		switch s.valueLit(l) {
		case valTrue:
			return nil // already satisfied at level 0
		case valFalse:
			continue
		}
		if seenLit[l.not()] {
			return nil // tautology
		}
		if !seenLit[l] {
			seenLit[l] = true
			lits = append(lits, l)
		}
	}
	switch len(lits) {
	case 0:
		s.ok = false
		return nil
	case 1:
		s.uncheckedEnqueue(lits[0], reason{})
		if s.propagate() != nil {
			s.ok = false
		}
		return nil
	}
	c := &clause{lits: lits}
	s.clauses = append(s.clauses, c)
	s.attachClause(c)
	return nil
}

func (s *Solver) attachClause(c *clause) {
	s.watches[c.lits[0].not()] = append(s.watches[c.lits[0].not()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], watcher{c, c.lits[0]})
}

// AddXorClause adds the parity constraint v1 ^ v2 ^ … ^ vn = rhs over
// the given variables (positive indices). Repeated variables cancel in
// pairs. An empty constraint with rhs=true makes the formula
// unsatisfiable.
func (s *Solver) AddXorClause(vars []int, rhs bool) error {
	maxVar := 0
	for _, v := range vars {
		if v <= 0 {
			return fmt.Errorf("sat: xor clause variable %d must be positive", v)
		}
		if v > maxVar {
			maxVar = v
		}
	}
	s.grow(maxVar)
	if s.decisionLevel() != 0 {
		s.cancelUntil(0)
	}
	if !s.ok {
		return nil // formula already unsatisfiable; adding is a no-op
	}

	// Cancel duplicates (x ^ x = 0) and fold in level-0 assignments.
	count := map[int32]int{}
	for _, v := range vars {
		count[int32(v-1)]++
	}
	var vs []int32
	for v, c := range count {
		if c%2 == 0 {
			continue
		}
		switch s.assigns[v] {
		case valTrue:
			rhs = !rhs
		case valFalse:
			// contributes 0
		default:
			vs = append(vs, v)
		}
	}
	// Deterministic order for reproducibility (map iteration is random).
	sortInt32s(vs)

	switch len(vs) {
	case 0:
		if rhs {
			s.ok = false
		}
		return nil
	case 1:
		s.uncheckedEnqueue(mkLit(vs[0], !rhs), reason{})
		if s.propagate() != nil {
			s.ok = false
		}
		return nil
	}
	x := &xorClause{vars: vs, rhs: rhs}
	x.w[0], x.w[1] = 0, 1
	s.xors = append(s.xors, x)
	s.xorGen++
	s.xorWatches[vs[0]] = append(s.xorWatches[vs[0]], x)
	s.xorWatches[vs[1]] = append(s.xorWatches[vs[1]], x)
	return nil
}

func sortInt32s(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func (s *Solver) uncheckedEnqueue(l lit, from reason) {
	v := l.varIdx()
	if l.negated() {
		s.assigns[v] = valFalse
	} else {
		s.assigns[v] = valTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reasons[v] = from
	s.trail = append(s.trail, l)
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		v := s.trail[i].varIdx()
		s.polarity[v] = s.trail[i].negated()
		s.assigns[v] = valUnassigned
		s.reasons[v] = reason{}
		if !s.order.inHeap(v) {
			s.order.insert(v)
		}
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// captureModel snapshots the current (total) assignment as the model
// of the last Sat result, so Model and Value stay readable after
// SolveAssuming retracts its assumptions.
func (s *Solver) captureModel() {
	s.model = append(s.model[:0], s.assigns...)
}

// Model returns the satisfying assignment found by the last successful
// Solve, indexed 1..n: Model()[v] reports variable v's value. Index 0
// is unused.
func (s *Solver) Model() []bool {
	m := make([]bool, s.numVars+1)
	for v := 0; v < s.numVars; v++ {
		if v < len(s.model) {
			m[v+1] = s.model[v] == valTrue
		} else {
			m[v+1] = s.assigns[v] == valTrue
		}
	}
	return m
}

// Value reports the last model's value of variable v (1-based). A
// variable outside [1, NumVars] reads false rather than panicking:
// projection lists reach this accessor from the enumeration and
// cube-split drivers, and a stale or foreign variable id must fail
// closed, not crash the postmortem pipeline.
func (s *Solver) Value(v int) bool {
	if v < 1 || v > s.numVars {
		return false
	}
	if v <= len(s.model) {
		return s.model[v-1] == valTrue
	}
	return s.assigns[v-1] == valTrue
}

// AddGuardedClause adds the clause (¬sel ∨ lits...) and records it
// under the guard variable sel so DropGuard(sel) can remove it later.
// Guarded clauses are only active while sel is assumed true (via
// SolveAssuming), which is how enumeration blocking clauses avoid
// permanently over-constraining a reused solver: a finished
// enumeration drops its guard and the clause database is exactly what
// it was before.
//
// If every non-guard literal is already false at level 0, the clause
// degenerates to the unit ¬sel: the guard itself is refuted, which
// ends that enumeration without touching the rest of the formula.
func (s *Solver) AddGuardedClause(sel int, extLits ...int) error {
	if sel <= 0 {
		return fmt.Errorf("sat: guard variable %d must be positive", sel)
	}
	maxVar := sel
	for _, x := range extLits {
		v := x
		if v < 0 {
			v = -v
		}
		if v == 0 {
			panic("sat: zero literal")
		}
		if v > maxVar {
			maxVar = v
		}
	}
	s.grow(maxVar)
	if s.decisionLevel() != 0 {
		s.cancelUntil(0)
	}
	if !s.ok {
		return nil
	}
	guard := extToLit(-sel)
	if s.valueLit(guard) == valTrue {
		return nil // selector already retired at level 0
	}
	lits := make([]lit, 0, len(extLits)+1)
	lits = append(lits, guard)
	seenLit := map[lit]bool{guard: true}
	for _, x := range extLits {
		l := extToLit(x)
		switch s.valueLit(l) {
		case valTrue:
			return nil // satisfied at level 0
		case valFalse:
			continue
		}
		if seenLit[l.not()] {
			return nil // tautology
		}
		if !seenLit[l] {
			seenLit[l] = true
			lits = append(lits, l)
		}
	}
	if len(lits) == 1 {
		// Only the guard survives: retire the selector at level 0.
		s.uncheckedEnqueue(guard, reason{})
		if s.propagate() != nil {
			s.ok = false
		}
		return nil
	}
	c := &clause{lits: lits}
	if s.guarded == nil {
		s.guarded = map[int32][]*clause{}
	}
	s.guarded[int32(sel-1)] = append(s.guarded[int32(sel-1)], c)
	s.attachClause(c)
	return nil
}

// DropGuard detaches and discards every clause added under the guard
// variable sel. It backtracks to level 0 first, so no dropped clause
// can be the reason of a live assignment above level 0; level-0
// reasons that pointed at a dropped clause are cleared defensively
// (conflict analysis never dereferences level-0 reasons, but a stale
// pointer should not outlive its clause).
func (s *Solver) DropGuard(sel int) {
	if sel <= 0 || sel > s.numVars || s.guarded == nil {
		return
	}
	cs := s.guarded[int32(sel-1)]
	if len(cs) == 0 {
		return
	}
	s.cancelUntil(0)
	delete(s.guarded, int32(sel-1))
	dropped := make(map[*clause]bool, len(cs))
	for _, c := range cs {
		s.detachClause(c)
		dropped[c] = true
	}
	for v := range s.reasons {
		if s.reasons[v].kind == reasonClause && dropped[s.reasons[v].cls] {
			s.reasons[v] = reason{}
		}
	}
}

// acquireSelector hands out a fresh guard selector variable. Selectors
// are single-use: conflict analysis that touches a guarded clause
// (¬sel ∨ …) carries ¬sel into the learned clause, so the learnt DB
// holds clauses that are only formula-implied while sel is false —
// reusing the variable for a later enumeration would re-arm them as
// phantom blocking clauses. retireSelector pins sel false instead.
func (s *Solver) acquireSelector() int {
	return s.NewVar()
}

// retireSelector permanently retires an enumeration selector after
// DropGuard. The unit ¬sel satisfies every learned clause derived from
// the selector's guarded clauses, which is exactly what makes
// physically dropping those clauses sound.
func (s *Solver) retireSelector(sel int) {
	_ = s.AddClause(-sel)
}

// Clone returns an independent deep copy of the solver that shares no
// mutable state with the original — the foundation of cube-split
// parallel solving, where each worker receives a clone and explores a
// disjoint part of the search space. The clone carries the problem
// clauses, the learned clauses, all level-0 assignments, and the
// branching-heuristic state (activities, saved phases, activity
// increments), so it resumes the search as informed as the original.
// Search-transient state (trail above level 0, pending interrupt,
// statistics) is reset. Clone backtracks the original to level 0.
func (s *Solver) Clone() *Solver {
	s.cancelUntil(0)
	n := &Solver{
		numVars:      s.numVars,
		varInc:       s.varInc,
		claInc:       s.claInc,
		ok:           s.ok,
		MaxConflicts: s.MaxConflicts,
		// The clone records into the same registry (atomically shared);
		// its instrument cache is rebuilt lazily on first flush.
		Obs: s.Obs,
	}
	n.assigns = append([]int8(nil), s.assigns...)
	n.level = append([]int32(nil), s.level...)
	n.activity = append([]float64(nil), s.activity...)
	n.polarity = append([]bool(nil), s.polarity...)
	n.seen = make([]bool, s.numVars)
	// Level-0 assignments carry no useful reasons: conflict analysis
	// skips level-0 literals, so the clone's reasons start empty.
	n.reasons = make([]reason, s.numVars)
	n.trail = append([]lit(nil), s.trail...)
	n.qhead = len(n.trail)

	n.watches = make([][]watcher, 2*s.numVars)
	n.clauses = make([]*clause, 0, len(s.clauses))
	for _, c := range s.clauses {
		nc := &clause{lits: append([]lit(nil), c.lits...)}
		n.clauses = append(n.clauses, nc)
		n.attachClause(nc)
	}
	n.learnts = make([]*clause, 0, len(s.learnts))
	for _, c := range s.learnts {
		nc := &clause{
			lits:    append([]lit(nil), c.lits...),
			act:     c.act,
			lbd:     c.lbd,
			learned: true,
		}
		n.learnts = append(n.learnts, nc)
		n.attachClause(nc)
	}
	if len(s.guarded) > 0 {
		n.guarded = make(map[int32][]*clause, len(s.guarded))
		for sel, cs := range s.guarded {
			ncs := make([]*clause, 0, len(cs))
			for _, c := range cs {
				nc := &clause{lits: append([]lit(nil), c.lits...)}
				ncs = append(ncs, nc)
				n.attachClause(nc)
			}
			n.guarded[sel] = ncs
		}
	}
	n.model = append([]int8(nil), s.model...)
	n.EnableGauss = s.EnableGauss
	n.EnableGaussInSearch = s.EnableGaussInSearch
	n.xorGen = s.xorGen
	n.gaussGen = s.gaussGen
	n.gaussTrail = s.gaussTrail

	// Rows absorbed into the in-search matrix are not clause-watched in
	// the original, and must not be in the clone either — the cloned
	// matrix carries them. Rows appended after the matrix was built (a
	// suffix of xors, re-absorbed at the clone's next solve) keep their
	// watch-list entries.
	absorbed := 0
	if s.gmat != nil {
		n.gmat = s.gmat.clone()
		absorbed = s.gmat.nAbsorbed
	}
	n.xorWatches = make([][]*xorClause, s.numVars)
	n.xors = make([]*xorClause, 0, len(s.xors))
	for i, x := range s.xors {
		nx := &xorClause{vars: append([]int32(nil), x.vars...), rhs: x.rhs, w: x.w}
		n.xors = append(n.xors, nx)
		if i < absorbed {
			continue
		}
		n.xorWatches[nx.vars[nx.w[0]]] = append(n.xorWatches[nx.vars[nx.w[0]]], nx)
		n.xorWatches[nx.vars[nx.w[1]]] = append(n.xorWatches[nx.vars[nx.w[1]]], nx)
	}

	n.order = newVarHeap(&n.activity)
	for v := 0; v < s.numVars; v++ {
		n.order.insert(int32(v))
	}
	return n
}
