package sat

// clause is a disjunction of literals. For learned clauses, act and lbd
// drive the reduction policy.
type clause struct {
	lits    []lit
	act     float64
	lbd     int32
	learned bool
}

// xorClause is a parity constraint over variables: the XOR of the
// variables' values must equal rhs. Two positions of vars are watched;
// the rest are only inspected when a watch triggers.
type xorClause struct {
	vars []int32
	rhs  bool
	w    [2]int // indices into vars
	// dead marks a row discarded by a Gaussian-elimination harvest:
	// the reduced system replaced it wholesale, and any watch-list
	// entry still pointing here must be dropped, never propagated.
	dead bool
}

// propagateXor handles the assignment of watched variable v in x. It
// returns (conflict, impliedLit, propagate):
//
//   - if a replacement unassigned watch was found the clause is moved to
//     that variable's watch list and keep=false is returned,
//   - if exactly the other watched variable is unassigned, its forced
//     value is returned with imply=true,
//   - if everything is assigned and the parity is wrong, conflict=true.
//
// keep reports whether the clause must stay in v's watch list.
func (s *Solver) propagateXor(x *xorClause, v int32) (conflict bool, implied lit, imply bool, keep bool) {
	if x.dead {
		// Entry for a row discarded by an elimination harvest: purge it
		// so the dead row neither propagates nor stays pinned in memory
		// across a long-lived session.
		return false, 0, false, false
	}
	var wi int
	switch {
	case x.vars[x.w[0]] == v:
		wi = 0
	case x.vars[x.w[1]] == v:
		wi = 1
	default:
		// Stale watch entry (clause already moved); drop it.
		return false, 0, false, false
	}
	other := x.w[1-wi]

	// Look for an unassigned replacement watch distinct from both
	// current watches.
	for i := range x.vars {
		if i == x.w[0] || i == x.w[1] {
			continue
		}
		if s.assigns[x.vars[i]] == valUnassigned {
			x.w[wi] = i
			s.xorWatches[x.vars[i]] = append(s.xorWatches[x.vars[i]], x)
			return false, 0, false, false
		}
	}

	// No replacement: all variables except possibly vars[other] are
	// assigned. Compute the parity of the assigned ones.
	parity := false
	otherUnassigned := s.assigns[x.vars[other]] == valUnassigned
	for i, xv := range x.vars {
		if i == other && otherUnassigned {
			continue
		}
		if s.assigns[xv] == valTrue {
			parity = !parity
		}
	}
	if otherUnassigned {
		// vars[other] must make the parity equal rhs.
		want := parity != x.rhs // value needed is rhs ^ parity
		return false, mkLit(x.vars[other], !want), true, true
	}
	if parity != x.rhs {
		return true, 0, false, true
	}
	return false, 0, false, true
}

// xorReason materializes the clausal reason for an implication (or
// conflict) of x. If implied is a valid literal it is placed first; the
// remaining literals are the negations of the current assignments of
// the other variables, so the clause is false except for the implied
// literal — exactly the shape conflict analysis requires.
func (s *Solver) xorReason(x *xorClause, impliedVar int32, haveImplied bool) []lit {
	out := make([]lit, 0, len(x.vars))
	if haveImplied {
		// The implied literal is the one currently true on impliedVar.
		out = append(out, mkLit(impliedVar, s.assigns[impliedVar] != valTrue))
	}
	for _, v := range x.vars {
		if haveImplied && v == impliedVar {
			continue
		}
		// Negation of the current assignment: a false literal.
		if s.assigns[v] == valTrue {
			out = append(out, mkLit(v, true))
		} else {
			out = append(out, mkLit(v, false))
		}
	}
	return out
}
