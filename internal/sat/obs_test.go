package sat

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/obs"
)

// guardedPHP builds a formula whose models are easy to find but whose
// exhaustion proof is hard: variable 1 guards a pigeonhole instance
// (g ∨ C for every PHP clause), variables 2..3 are free. Projected
// onto {1,2,3} there are exactly 4 models (g true × free pair); after
// blocking them, proving Unsat requires refuting PHP(holes+1, holes).
func guardedPHP(holes int) *Solver {
	pigeons := holes + 1
	base := 3 // 1 = guard, 2..3 free
	v := func(p, h int) int { return base + p*holes + h + 1 }
	s := New(base + pigeons*holes)
	for p := 0; p < pigeons; p++ {
		lits := make([]int, 0, holes+1)
		lits = append(lits, 1)
		for h := 0; h < holes; h++ {
			lits = append(lits, v(p, h))
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(1, -v(p1, h), -v(p2, h))
			}
		}
	}
	return s
}

func TestEnumerateBudgetTypedError(t *testing.T) {
	proj := []int{1, 2, 3}

	// With a tiny conflict budget the exhaustion proof cannot finish:
	// the enumeration must surface ErrBudget, not silently stop.
	s := guardedPHP(8)
	s.MaxConflicts = 10
	n, st, err := s.EnumerateModels(proj, 0, func(map[int]bool) bool { return true })
	if st != Unknown {
		t.Fatalf("status %v, want Unknown (budget ran out)", st)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if errors.Is(err, ErrInterrupted) {
		t.Fatal("budget exhaustion misclassified as interrupt")
	}
	if n < 0 || n > 4 {
		t.Fatalf("delivered %d models, want 0..4", n)
	}

	// Unbudgeted, the same instance enumerates completely: 4 models,
	// Unsat, nil error — the "complete AllSAT" outcome.
	s2 := guardedPHP(8)
	n2, st2, err2 := s2.EnumerateModels(proj, 0, func(map[int]bool) bool { return true })
	if n2 != 4 || st2 != Unsat || err2 != nil {
		t.Fatalf("complete run: n=%d st=%v err=%v, want 4/Unsat/nil", n2, st2, err2)
	}
}

func TestEnumerateInterruptTypedError(t *testing.T) {
	s := New(3)
	s.Interrupt()
	n, st, err := s.EnumerateModels([]int{1, 2, 3}, 0, func(map[int]bool) bool { return true })
	if n != 0 || st != Unknown {
		t.Fatalf("n=%d st=%v, want 0/Unknown", n, st)
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if errors.Is(err, ErrBudget) {
		t.Fatal("interrupt misclassified as budget exhaustion")
	}
}

func TestCountModelsBudgetError(t *testing.T) {
	s := guardedPHP(8)
	s.MaxConflicts = 10
	_, exhausted, err := s.CountModels([]int{1, 2, 3}, 0)
	if exhausted {
		t.Fatal("budgeted count claimed exhaustion")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

// deterministicValues reads the DeterministicCounters out of a registry
// snapshot in list order.
func deterministicValues(r *obs.Registry) []int64 {
	snap := r.Snapshot()
	out := make([]int64, len(DeterministicCounters))
	for i, name := range DeterministicCounters {
		out[i] = snap.Counters[name]
	}
	return out
}

// TestSolveCountersDeterministicAcrossRuns locks in the cross-oracle
// invariant: repeated serial runs of the same seeded instance publish
// identical deterministic counters.
func TestSolveCountersDeterministicAcrossRuns(t *testing.T) {
	run := func() (*obs.Registry, int) {
		rng := rand.New(rand.NewSource(77))
		s := randomMixedInstance(rng, 20, 40, 8)
		reg := obs.NewRegistry()
		s.Obs = reg
		n, _, _ := s.EnumerateModels(allVars(20), 0, func(map[int]bool) bool { return true })
		return reg, n
	}
	reg1, n1 := run()
	reg2, n2 := run()
	if n1 != n2 {
		t.Fatalf("model counts differ: %d vs %d", n1, n2)
	}
	v1, v2 := deterministicValues(reg1), deterministicValues(reg2)
	for i, name := range DeterministicCounters {
		if v1[i] != v2[i] {
			t.Errorf("%s: run1 %d, run2 %d", name, v1[i], v2[i])
		}
	}
	snap := reg1.Snapshot()
	if snap.Counters[MetricSolveCalls] == 0 {
		t.Error("no solve calls recorded")
	}
	if got := snap.Counters[MetricEnumModels]; got != int64(n1) {
		t.Errorf("%s = %d, want %d", MetricEnumModels, got, n1)
	}
}

// TestSerialVsParallel1WorkerCounters asserts the ISSUE acceptance
// criterion: ParallelEnumerate with Workers=1 publishes exactly the
// same deterministic counters as a plain serial enumeration of the
// same instance, and the same models.
func TestSerialVsParallel1WorkerCounters(t *testing.T) {
	build := func() *Solver {
		rng := rand.New(rand.NewSource(123))
		return randomMixedInstance(rng, 18, 36, 6)
	}
	proj := allVars(18)

	serialReg := obs.NewRegistry()
	ss := build()
	ss.Obs = serialReg
	var serialModels []Model
	_, serialSt, err := ss.EnumerateModels(proj, 0, func(map[int]bool) bool {
		serialModels = append(serialModels, extractModel(ss, proj))
		return true
	})
	if err != nil {
		t.Fatalf("serial enumeration: %v", err)
	}
	SortModels(serialModels)

	parReg := obs.NewRegistry()
	ps := build()
	ps.Obs = parReg
	parModels, parSt := ParallelEnumerate(ps, proj, 0, ParallelOptions{Workers: 1})

	if serialSt != Unsat || parSt != Unsat {
		t.Fatalf("statuses %v/%v, want Unsat/Unsat", serialSt, parSt)
	}
	if !modelsEqual(serialModels, parModels) {
		t.Fatalf("model sets differ: %d vs %d", len(serialModels), len(parModels))
	}
	vs, vp := deterministicValues(serialReg), deterministicValues(parReg)
	for i, name := range DeterministicCounters {
		if vs[i] != vp[i] {
			t.Errorf("%s: serial %d, parallel(1) %d", name, vs[i], vp[i])
		}
	}
}

func TestParallelDriversPublishCubeMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	s := randomMixedInstance(rng, 14, 28, 5)
	reg := obs.NewRegistry()
	s.Obs = reg
	ParallelEnumerate(s, allVars(14), 0, ParallelOptions{Workers: 4})
	snap := reg.Snapshot()
	if snap.Counters[MetricCubes] == 0 {
		t.Error("no cubes recorded for a 4-worker enumeration")
	}
	if snap.Histograms[SpanParallelEnum+".ns"].Count == 0 {
		t.Error("parallel enumerate span not recorded")
	}
}

// TestNilObsSolvesUnchanged guards the nil-registry fast path: a solver
// without a registry behaves identically and records nothing.
func TestNilObsSolvesUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomMixedInstance(rng, 16, 32, 5)
	n, st, err := s.EnumerateModels(allVars(16), 0, func(map[int]bool) bool { return true })
	if st == Unknown || err != nil {
		t.Fatalf("st=%v err=%v", st, err)
	}
	_ = n
	if s.obsCache != nil {
		t.Error("instrument cache built without a registry")
	}
}
