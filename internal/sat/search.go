package sat

import "time"

// conflictInfo carries the clause that falsified the trail, in a form
// conflict analysis can consume uniformly for CNF and XOR conflicts.
type conflictInfo struct {
	lits []lit
}

// propagate performs unit propagation over CNF and XOR watches until a
// fixpoint or a conflict. It returns nil when no conflict occurred.
func (s *Solver) propagate() *conflictInfo {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++

		if c := s.propagateCNF(p); c != nil {
			return c
		}
		if c := s.propagateXors(p.varIdx()); c != nil {
			return c
		}
		if s.gmat != nil {
			if c := s.propagateGauss(p.varIdx()); c != nil {
				return c
			}
		}
	}
	return nil
}

// propagateCNF visits all clauses watching ¬p (p just became true).
func (s *Solver) propagateCNF(p lit) *conflictInfo {
	ws := s.watches[p]
	kept := ws[:0]
	for wi := 0; wi < len(ws); wi++ {
		w := ws[wi]
		if s.valueLit(w.blocker) == valTrue {
			kept = append(kept, w)
			continue
		}
		c := w.cls
		falseLit := p.not()
		// Binary clauses: the blocker IS the other literal; no watch
		// movement can ever help, so propagate or conflict directly.
		if len(c.lits) == 2 {
			other := c.lits[0]
			if other == falseLit {
				other = c.lits[1]
			}
			switch s.valueLit(other) {
			case valFalse:
				kept = append(kept, w)
				for wi++; wi < len(ws); wi++ {
					kept = append(kept, ws[wi])
				}
				s.watches[p] = kept
				return &conflictInfo{lits: c.lits}
			case valUnassigned:
				// Put the implied literal first so reasonLits works.
				if c.lits[0] != other {
					c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
				}
				s.uncheckedEnqueue(other, reason{kind: reasonClause, cls: c})
			}
			kept = append(kept, w)
			continue
		}
		// Normalize so that lits[1] is the falsified watch (¬p ... p is
		// true so the false literal in the clause is p.not()).
		if c.lits[0] == falseLit {
			c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
		}
		if s.valueLit(c.lits[0]) == valTrue {
			kept = append(kept, watcher{c, c.lits[0]})
			continue
		}
		// Find a new watch among lits[2:].
		found := false
		for i := 2; i < len(c.lits); i++ {
			if s.valueLit(c.lits[i]) != valFalse {
				c.lits[1], c.lits[i] = c.lits[i], c.lits[1]
				s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], watcher{c, c.lits[0]})
				found = true
				break
			}
		}
		if found {
			continue
		}
		// Clause is unit or conflicting.
		if s.valueLit(c.lits[0]) == valFalse {
			// Conflict: keep remaining watchers, restore list, report.
			kept = append(kept, w)
			for wi++; wi < len(ws); wi++ {
				kept = append(kept, ws[wi])
			}
			s.watches[p] = kept
			return &conflictInfo{lits: c.lits}
		}
		kept = append(kept, w)
		s.uncheckedEnqueue(c.lits[0], reason{kind: reasonClause, cls: c})
	}
	s.watches[p] = kept
	return nil
}

// propagateXors visits all XOR clauses watching variable v.
func (s *Solver) propagateXors(v int32) *conflictInfo {
	ws := s.xorWatches[v]
	kept := ws[:0]
	for wi := 0; wi < len(ws); wi++ {
		x := ws[wi]
		conflict, implied, imply, keep := s.propagateXor(x, v)
		if keep {
			kept = append(kept, x)
		}
		if conflict {
			for wi++; wi < len(ws); wi++ {
				kept = append(kept, ws[wi])
			}
			s.xorWatches[v] = kept
			return &conflictInfo{lits: s.xorReason(x, 0, false)}
		}
		if imply {
			s.Stats.XorProps++
			s.uncheckedEnqueue(implied, reason{kind: reasonXor, xor: x})
			// A propagation may cascade; the main loop drains the trail.
		}
	}
	s.xorWatches[v] = kept
	return nil
}

// reasonLits returns the clausal reason for variable v's assignment,
// with the asserting literal first.
func (s *Solver) reasonLits(v int32) []lit {
	r := s.reasons[v]
	switch r.kind {
	case reasonClause:
		return r.cls.lits
	case reasonXor:
		return s.xorReason(r.xor, v, true)
	case reasonGauss:
		// Materialized eagerly at propagation time: the matrix row that
		// implied v may since have been combined away.
		return r.lits
	default:
		return nil
	}
}

// analyze performs first-UIP conflict analysis. It returns the learned
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *conflictInfo) ([]lit, int) {
	learnt := s.analyzeBuf[:0]
	learnt = append(learnt, 0) // placeholder for the asserting literal

	pathC := 0
	var p lit = -1
	idx := len(s.trail) - 1
	lits := confl.lits

	for {
		start := 0
		if p != -1 {
			start = 1 // skip the asserting literal of the reason
		}
		for _, q := range lits[start:] {
			v := q.varIdx()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bumpVar(v)
			if int(s.level[v]) >= s.decisionLevel() {
				pathC++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Select next literal to expand: last trail literal that is seen.
		for !s.seen[s.trail[idx].varIdx()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.varIdx()
		s.seen[v] = false
		pathC--
		if pathC == 0 {
			break
		}
		lits = s.reasonLits(v)
	}
	learnt[0] = p.not()

	// Clause minimization: drop literals implied by the rest. The seen
	// flags of every original literal (kept or dropped) are cleared
	// afterwards; clearing only kept ones would poison later analyses.
	original := make([]lit, len(learnt))
	copy(original, learnt)
	minimized := learnt[:1]
	for _, q := range learnt[1:] {
		if !s.redundant(q) {
			minimized = append(minimized, q)
		}
	}
	learnt = minimized
	for _, q := range original[1:] {
		s.seen[q.varIdx()] = false
	}

	// Backjump level: highest level among learnt[1:].
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].varIdx()] > s.level[learnt[maxI].varIdx()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = int(s.level[learnt[1].varIdx()])
	}

	s.analyzeBuf = learnt // reuse backing array next time
	out := make([]lit, len(learnt))
	copy(out, learnt)
	return out, bt
}

// redundant reports whether literal q of a learned clause is implied by
// the remaining seen literals (local, non-recursive approximation of
// MiniSat's reason-side minimization: a literal whose reason consists
// entirely of seen or level-0 literals is redundant).
func (s *Solver) redundant(q lit) bool {
	v := q.varIdx()
	if s.reasons[v].kind == reasonNone {
		return false
	}
	for _, r := range s.reasonLits(v)[1:] {
		rv := r.varIdx()
		if !s.seen[rv] && s.level[rv] != 0 {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v int32) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild()
	}
	s.order.bumped(v)
}

func (s *Solver) decayVarActivity() { s.varInc /= 0.95 }

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClauseActivity() { s.claInc /= 0.999 }

// computeLBD counts distinct decision levels among a clause's literals.
func (s *Solver) computeLBD(lits []lit) int32 {
	levels := map[int32]struct{}{}
	for _, l := range lits {
		levels[s.level[l.varIdx()]] = struct{}{}
	}
	return int32(len(levels))
}

// pickBranchLit selects the unassigned variable with highest activity
// and applies the saved phase.
func (s *Solver) pickBranchLit() (lit, bool) {
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == valUnassigned {
			return mkLit(v, s.polarity[v]), true
		}
	}
	return 0, false
}

// luby returns element x (0-based) of the Luby restart sequence
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …
func luby(x int64) int64 {
	var size, seq int64 = 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

// reduceDB removes roughly half of the learned clauses, preferring to
// keep low-LBD and high-activity ones. Clauses that are reasons for
// current assignments are locked.
func (s *Solver) reduceDB() {
	if len(s.learnts) == 0 {
		return
	}
	// Selection sort by (lbd asc, act desc) would be O(n^2); use a simple
	// insertion-ordered copy since learned sets stay small in our
	// workloads, falling back to a pivot split for large sets.
	sorted := make([]*clause, len(s.learnts))
	copy(sorted, s.learnts)
	sortClauses(sorted)
	keepN := len(sorted) / 2
	locked := map[*clause]bool{}
	for v := int32(0); v < int32(s.numVars); v++ {
		if s.assigns[v] != valUnassigned && s.reasons[v].kind == reasonClause && s.reasons[v].cls.learned {
			locked[s.reasons[v].cls] = true
		}
	}
	var kept []*clause
	for i, c := range sorted {
		if i < keepN || c.lbd <= 2 || locked[c] || len(c.lits) <= 2 {
			kept = append(kept, c)
		} else {
			s.detachClause(c)
			s.Stats.LearnedPruned++
		}
	}
	s.learnts = kept
}

func sortClauses(cs []*clause) {
	// Shell sort: dependency-free, adequate for clause DB sizes here.
	n := len(cs)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			c := cs[i]
			j := i
			for ; j >= gap && clauseLess(c, cs[j-gap]); j -= gap {
				cs[j] = cs[j-gap]
			}
			cs[j] = c
		}
	}
}

func clauseLess(a, b *clause) bool {
	if a.lbd != b.lbd {
		return a.lbd < b.lbd
	}
	return a.act > b.act
}

func (s *Solver) detachClause(c *clause) {
	for _, w := range []lit{c.lits[0].not(), c.lits[1].not()} {
		ws := s.watches[w]
		for i, x := range ws {
			if x.cls == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// Solve searches for a satisfying assignment. It returns Sat, Unsat, or
// Unknown when MaxConflicts was exhausted. After Sat, read the model
// with Model or Value before adding more clauses.
//
// When Obs is set, the call's Stats delta, latency and outcome are
// published to the registry on exit; the search loop itself is not
// instrumented, so the nil-Obs path costs exactly one pointer check.
func (s *Solver) Solve() Status {
	if s.Obs == nil {
		return s.solveWith(nil)
	}
	before := s.Stats
	start := time.Now()
	st := s.solveWith(nil)
	s.flushObs(before, time.Since(start), st)
	return st
}

// SolveAssuming solves the formula under the given assumption literals
// (DIMACS form). The assumptions are planted as the decisions of levels
// 1..len(assumptions) and fully retracted before the call returns, so
// the solver — including every learned clause and all heuristic state —
// stays reusable for the next query. Unsat means "unsatisfiable under
// these assumptions": the formula itself is untouched and later calls
// with different assumptions may be Sat. After Sat, Model and Value
// read the captured satisfying assignment even though the trail has
// been unwound.
func (s *Solver) SolveAssuming(assumptions []int) Status {
	before := s.Stats
	s.Stats.AssumptionSolves++
	for _, x := range assumptions {
		v := x
		if v < 0 {
			v = -v
		}
		if v == 0 {
			panic("sat: zero literal")
		}
		s.grow(v)
	}
	assumps := make([]lit, len(assumptions))
	for i, x := range assumptions {
		assumps[i] = extToLit(x)
	}
	if s.Obs == nil {
		return s.solveWith(assumps)
	}
	start := time.Now()
	st := s.solveWith(assumps)
	s.flushObs(before, time.Since(start), st)
	return st
}

func (s *Solver) solveWith(assumps []lit) Status {
	if !s.ok {
		return Unsat
	}
	if s.stop.Load() {
		return Unknown
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}
	if s.EnableGauss || s.EnableGaussInSearch {
		if !s.gaussEliminate() {
			s.ok = false
			return Unsat
		}
	}
	if s.EnableGaussInSearch {
		if !s.gaussInSearchInit() {
			s.ok = false
			return Unsat
		}
	}
	s.assumps = assumps
	defer func() {
		s.assumps = nil
		s.cancelUntil(0)
	}()

	var restartN int64
	conflictBudget := int64(-1)
	if s.MaxConflicts > 0 {
		conflictBudget = s.MaxConflicts
	}
	maxLearnts := int64(len(s.clauses))/3 + 500

	for {
		limit := luby(restartN) * 100
		st, done := s.search(limit, &conflictBudget, &maxLearnts)
		if done {
			return st
		}
		restartN++
		s.Stats.Restarts++
		s.cancelUntil(0)
		if s.gmat != nil {
			// Rebuild the matrix from the RREF basis at every restart:
			// in-search combination monotonically densifies rows and the
			// densified rows produce long implication reasons, which
			// analyze() turns into long, weak learned clauses. Restarts
			// bound that window — the rebuild resets density and pivot
			// uniqueness, folds in any level-0 units learned since the
			// last boundary, and sheds stale watch entries, all for one
			// pass over the rows (measured on the planted m=512 cells:
			// rebuilding at restarts cuts conflicts 2-4x vs carrying the
			// combined rows across restart boundaries).
			if !s.gaussInSearchInit() {
				s.ok = false
				return Unsat
			}
		}
	}
}

// search runs CDCL until the restart limit, a result, or budget
// exhaustion. done=false means "restart requested".
func (s *Solver) search(conflictLimit int64, budget *int64, maxLearnts *int64) (Status, bool) {
	var conflicts int64
	for {
		confl := s.propagate()
		if confl != nil {
			conflicts++
			s.Stats.Conflicts++
			if s.stop.Load() {
				s.cancelUntil(0)
				return Unknown, true
			}
			if *budget > 0 {
				*budget--
				if *budget == 0 {
					s.cancelUntil(0)
					return Unknown, true
				}
			}
			// In-search Gauss can surface a conflict whose literals all
			// sit BELOW the current decision level: a row combination
			// leaves a row fully assigned and violated without any
			// current-level variable in it. First-UIP analysis requires
			// a current-level literal, so drop to the conflict's own
			// level first — the literals stay assigned there, the
			// conflict stays valid, and at level 0 it refutes the
			// formula. Watch-triggered conflicts always contain the
			// just-assigned variable, so for them this is a no-op.
			maxL := 0
			for _, q := range confl.lits {
				if l := int(s.level[q.varIdx()]); l > maxL {
					maxL = l
				}
			}
			if maxL < s.decisionLevel() {
				s.cancelUntil(maxL)
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat, true
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], reason{})
			} else {
				c := &clause{lits: learnt, learned: true, lbd: s.computeLBD(learnt)}
				s.learnts = append(s.learnts, c)
				s.Stats.Learned++
				s.Stats.LearnedLits += int64(len(learnt))
				s.attachClause(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], reason{kind: reasonClause, cls: c})
			}
			s.decayVarActivity()
			s.decayClauseActivity()
			if int64(len(s.learnts)) > *maxLearnts {
				s.reduceDB()
				*maxLearnts = *maxLearnts*11/10 + 10
			}
			if conflicts >= conflictLimit {
				return Unknown, false
			}
			continue
		}
		// No conflict: decide. The stop flag is polled here too so a
		// conflict-free dive through a large satisfiable space still
		// honours Interrupt promptly.
		if s.stop.Load() {
			s.cancelUntil(0)
			return Unknown, true
		}
		// Plant pending assumptions before any free decision: assumps[i]
		// is the decision of level i+1, so a backjump below an assumption
		// level replants it here on the way back up.
		if dl := s.decisionLevel(); dl < len(s.assumps) {
			p := s.assumps[dl]
			switch s.valueLit(p) {
			case valTrue:
				// Already implied: open a dummy level so the indices of
				// the remaining assumptions stay aligned with levels.
				s.trailLim = append(s.trailLim, len(s.trail))
			case valFalse:
				// Unsat under these assumptions — the formula itself is
				// untouched, so ok stays true and the solver reusable.
				return Unsat, true
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(p, reason{})
			}
			continue
		}
		next, ok := s.pickBranchLit()
		if !ok {
			s.captureModel()
			return Sat, true // all variables assigned
		}
		s.Stats.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, reason{})
	}
}
