package sat

import "math/bits"

// In-search XOR Gaussian elimination, the second half of the
// CryptoMiniSat design (Soos et al., SAT 2009; Han & Jiang, "When
// Boolean Satisfiability Meets Gaussian Elimination in a Simplex Way",
// CAV 2012): where gauss.go row-reduces the parity system once at
// level 0, this file keeps the reduced matrix LIVE across decision
// levels. Rows are dense []uint64 bitsets over the same deterministic
// column layout, each row watches two of its columns, and every
// assignment of a watched column updates the row's state:
//
//   - a replacement unassigned column moves the watch,
//   - exactly one unassigned column left implies its value — extracted
//     mid-search with an eagerly materialized clausal reason
//     (reasonGauss) that first-UIP analyze() consumes unchanged,
//   - zero unassigned columns checks the parity: conflict or satisfied.
//
// When a row's RESPONSIBLE (pivot) watch moves to a new column, that
// column is eliminated from every other row (the row is XOR-combined
// into them) — the Gauss-Jordan maintenance step that keeps the matrix
// reduced relative to the unassigned variables. It is what lets dense
// 256-wide parity rows imply values long before watch propagation
// alone would see a unit: combined rows shed shared columns, so
// implications surface as soon as the SYSTEM forces them, not when an
// individual row does.
//
// Soundness notes, load-bearing and worth stating once:
//
//   - Row combination is an invertible elementary row operation: the
//     matrix stays row-equivalent to the absorbed XOR system at all
//     times, so nothing needs to be undone on backjump or on
//     SolveAssuming retraction — cancelUntil only unwinds assignments,
//     and the watch scheme below is constructed to survive that.
//   - Watch invariant: while a row has unassigned columns, at least
//     one of them is watched; when a row becomes fully assigned, its
//     watches sit on maximal-decision-level columns, so any backjump
//     that unassigns part of the row unassigns a watch with it. The
//     final assignment of a row's columns therefore always triggers a
//     watch, and a violated parity is never missed.
//   - Reasons are materialized EAGERLY (reason.lits): a lazy reason
//     could read a row that a later elimination has already combined
//     away from the implication it must justify.
//   - Rows start as the level-0 RREF basis, but folding in level-0
//     assignments the last re-reduction has not seen can collapse two
//     rows onto the same support, so a combination CAN cancel a row to
//     empty mid-search: rhs=0 is inert, rhs=1 is a level-0 refutation
//     (see gaussFixRow).

// gaussMatrix is the live in-search state. It is rebuilt at level 0
// whenever the XOR row set changes (tracked by Solver.xorGen) and
// carried across queries — SolveAssuming retraction leaves it valid —
// and deep-copied by Clone so portfolio workers and warm service
// sessions inherit the reduced system without re-eliminating.
type gaussMatrix struct {
	// gen is the Solver.xorGen value the matrix was built from;
	// nAbsorbed the len(Solver.xors) prefix it absorbed (rows appended
	// later stay clause-watched until the next rebuild).
	gen       uint64
	nAbsorbed int

	cols  []int32 // column -> variable
	colOf []int32 // variable -> column+1 (0 = not a matrix column)
	words int     // bitset words per row

	rows  []gaussRow
	watch [][]int32 // column -> indices of rows watching it

	// nEntries counts live+stale watch-list entries. Stale entries
	// (rows re-watched by the elimination step leave their old entries
	// behind) are dropped lazily on visit and compacted wholesale at
	// solve boundaries, so lists cannot grow without bound across a
	// long-lived session.
	nEntries int
}

type gaussRow struct {
	bits []uint64
	rhs  bool
	// wc are the two watched columns; resp names the slot holding the
	// row's responsible (pivot) column. Watched columns always carry a
	// set bit in bits.
	wc   [2]int32
	resp uint8
}

func (g *gaussMatrix) hasCol(ri int, c int32) bool {
	return g.rows[ri].bits[c>>6]&(1<<(uint(c)&63)) != 0
}

// clone deep-copies the matrix; no mutable state is shared.
func (g *gaussMatrix) clone() *gaussMatrix {
	n := &gaussMatrix{
		gen:       g.gen,
		nAbsorbed: g.nAbsorbed,
		cols:      append([]int32(nil), g.cols...),
		colOf:     append([]int32(nil), g.colOf...),
		words:     g.words,
		rows:      make([]gaussRow, len(g.rows)),
		watch:     make([][]int32, len(g.watch)),
		nEntries:  g.nEntries,
	}
	for i, r := range g.rows {
		n.rows[i] = gaussRow{
			bits: append([]uint64(nil), r.bits...),
			rhs:  r.rhs,
			wc:   r.wc,
			resp: r.resp,
		}
	}
	for c, ws := range g.watch {
		if len(ws) > 0 {
			n.watch[c] = append([]int32(nil), ws...)
		}
	}
	return n
}

// compact rebuilds the watch lists from the rows' wc fields, dropping
// every stale entry. Called at solve boundaries when stale entries
// outnumber live ones, so scan time and memory stay proportional to
// the row count however long the solver lives.
func (g *gaussMatrix) compact() {
	if g.nEntries <= 4*len(g.rows) {
		return
	}
	for c := range g.watch {
		g.watch[c] = g.watch[c][:0]
	}
	for ri := range g.rows {
		r := &g.rows[ri]
		g.watch[r.wc[0]] = append(g.watch[r.wc[0]], int32(ri))
		g.watch[r.wc[1]] = append(g.watch[r.wc[1]], int32(ri))
	}
	g.nEntries = 2 * len(g.rows)
}

// gaussInSearchInit rebuilds the in-search matrix from the level-0
// reduced XOR rows, absorbing them out of the clause-watch scheme. It
// returns false when folding level-0 assignments refutes the system.
//
// The rebuild is unconditional at every solve boundary, and
// deliberately so: in-search row combination monotonically densifies
// the matrix (the XOR of two half-dense rows stays half-dense) and
// displaces pivots, and a session answers thousands of queries against
// one solver — carrying the previous search's combined rows forward
// would ratchet scan cost up query over query. Rebuilding from the
// RREF basis in s.xors resets density AND restores pivot uniqueness
// (each row's responsible column appears in no other row) for the cost
// of one pass over the rows, orders of magnitude below a single
// query's propagation work. What is worth keeping across queries —
// learned clauses, activities, phases — lives outside the matrix.
func (s *Solver) gaussInSearchInit() bool {
	if s.decisionLevel() != 0 {
		panic("sat: gaussInSearchInit above level 0")
	}
	s.gmat = nil
	if len(s.xors) == 0 {
		return true
	}
	s.Stats.GaussMatrixBuilds++

	// Column layout: every variable still unassigned in some row, in
	// ascending variable order — identical to gaussEliminate's layout,
	// so clones and rebuilds are deterministic.
	inCols := make(map[int32]bool)
	for _, x := range s.xors {
		for _, v := range x.vars {
			if s.assigns[v] == valUnassigned {
				inCols[v] = true
			}
		}
	}
	cols := make([]int32, 0, len(inCols))
	for v := range inCols {
		cols = append(cols, v)
	}
	sortInt32s(cols)
	colOf := make([]int32, s.numVars)
	for i, v := range cols {
		colOf[v] = int32(i) + 1
	}
	words := gaussWords(len(cols))

	g := &gaussMatrix{
		gen:       s.xorGen,
		nAbsorbed: len(s.xors),
		cols:      cols,
		colOf:     colOf,
		words:     words,
	}
	var units []lit
	for _, x := range s.xors {
		row := gaussRow{bits: make([]uint64, words), rhs: x.rhs}
		n := 0
		var first [2]int32
		for _, v := range x.vars {
			switch s.assigns[v] {
			case valTrue:
				row.rhs = !row.rhs
			case valFalse:
				// contributes 0; drop
			default:
				c := colOf[v] - 1
				row.bits[c>>6] |= 1 << (uint(c) & 63)
				if n < 2 {
					first[n] = c
				}
				n++
			}
		}
		switch n {
		case 0:
			if row.rhs {
				return false // 0 = 1 under level-0 assignments
			}
		case 1:
			units = append(units, mkLit(cols[first[0]], !row.rhs))
		default:
			row.wc = first
			row.resp = 0
			g.rows = append(g.rows, row)
		}
	}
	g.watch = make([][]int32, len(cols))
	for ri := range g.rows {
		r := &g.rows[ri]
		g.watch[r.wc[0]] = append(g.watch[r.wc[0]], int32(ri))
		g.watch[r.wc[1]] = append(g.watch[r.wc[1]], int32(ri))
	}
	g.nEntries = 2 * len(g.rows)
	s.gmat = g

	// The matrix owns the absorbed rows now; their clause watches go.
	// s.xors stays canonical — Clone and the next level-0 harvest read
	// it — but propagation for these rows runs through the matrix.
	s.xorWatches = make([][]*xorClause, s.numVars)

	for _, u := range units {
		switch s.valueLit(u) {
		case valTrue:
			continue
		case valFalse:
			return false
		}
		s.Stats.GaussUnits++
		s.uncheckedEnqueue(u, reason{})
	}
	return s.propagate() == nil
}

// propagateGauss handles the assignment of variable v against the
// in-search matrix: every row watching v's column is updated, moving
// watches, extracting implications, eliminating columns, or reporting
// a conflict. Called from the propagation loop after CNF and XOR
// watches.
func (s *Solver) propagateGauss(v int32) *conflictInfo {
	g := s.gmat
	if int(v) >= len(g.colOf) {
		return nil
	}
	c := g.colOf[v]
	if c == 0 {
		return nil
	}
	col := c - 1
	// Row fix-ups triggered below (eliminateCol → gaussFixRow →
	// setWatches) may APPEND to g.watch[col] while we iterate: a
	// fully-assigned row legitimately re-watches the column being
	// propagated when it carries the row's highest decision level. The
	// snapshot ws covers only the first n entries; whatever the updates
	// appended lives in g.watch[col][n:] and is spliced back in before
	// the compacted list is stored.
	ws := g.watch[col]
	n := len(ws)
	kept := ws[:0]
	for wi := 0; wi < n; wi++ {
		ri := ws[wi]
		r := &g.rows[ri]
		var widx int
		switch {
		case r.wc[0] == col:
			widx = 0
		case r.wc[1] == col:
			widx = 1
		default:
			// Stale entry: the row was re-watched by an elimination
			// step after this entry was created. Drop it.
			g.nEntries--
			continue
		}
		confl, keep := s.gaussUpdateRow(int(ri), widx)
		if keep {
			kept = append(kept, ri)
		} else {
			g.nEntries--
		}
		if confl != nil {
			for wi++; wi < n; wi++ {
				kept = append(kept, ws[wi])
			}
			kept = append(kept, g.watch[col][n:]...)
			g.watch[col] = kept
			return confl
		}
	}
	kept = append(kept, g.watch[col][n:]...)
	g.watch[col] = kept
	return nil
}

// gaussUpdateRow reacts to the assignment of row ri's watched column
// in slot widx. keep reports whether the row must stay in that
// column's watch list.
func (s *Solver) gaussUpdateRow(ri, widx int) (confl *conflictInfo, keep bool) {
	g := s.gmat
	r := &g.rows[ri]
	other := r.wc[1-widx]

	// Look for an unassigned replacement column distinct from the
	// other watch.
	if rep := g.findUnassigned(s, ri, other, -1); rep >= 0 {
		r.wc[widx] = rep
		g.watch[rep] = append(g.watch[rep], int32(ri))
		g.nEntries++
		if int(r.resp) == widx {
			// The responsible (pivot) watch moved: eliminate its new
			// column from every other row, keeping the matrix in
			// Gauss-Jordan form relative to the unassigned variables.
			return s.gaussEliminateCol(ri, rep), false
		}
		return nil, false
	}

	// No replacement: every column except possibly `other` is
	// assigned. The other watch only implies its variable if it is
	// actually still IN the row — an empty (cancelled) row keeps its
	// old watch columns without containing them.
	otherVar := g.cols[other]
	if s.assigns[otherVar] == valUnassigned && g.hasCol(ri, other) {
		want := g.rowParity(s, ri, other) != r.rhs
		implied := mkLit(otherVar, !want)
		s.Stats.GaussInSearchProps++
		s.uncheckedEnqueue(implied, reason{kind: reasonGauss, lits: g.reasonFor(s, ri, implied)})
		return nil, true
	}
	if g.rowParity(s, ri, -1) != r.rhs {
		s.Stats.GaussInSearchConflicts++
		return &conflictInfo{lits: g.conflictFor(s, ri)}, true
	}
	return nil, true // satisfied
}

// gaussEliminateCol XOR-combines row src into every other row that
// contains column col, then re-establishes each combined row's watch
// invariant — propagating rows the combination left with a single
// unassigned column and reporting rows it left fully assigned with the
// wrong parity.
func (s *Solver) gaussEliminateCol(src int, col int32) *conflictInfo {
	g := s.gmat
	sr := &g.rows[src]
	for ri := range g.rows {
		if ri == src || !g.hasCol(ri, col) {
			continue
		}
		r := &g.rows[ri]
		for w := range r.bits {
			r.bits[w] ^= sr.bits[w]
		}
		r.rhs = r.rhs != sr.rhs
		if confl := s.gaussFixRow(ri); confl != nil {
			return confl
		}
	}
	return nil
}

// gaussFixRow restores row ri's watch invariant after its bits
// changed: two unassigned watches when possible, an immediate
// implication when exactly one unassigned column remains, a parity
// check when none does. Fully-assigned rows watch their two
// maximal-decision-level columns, so any backjump that unassigns part
// of the row also unassigns a watch — the trigger that guarantees the
// row is re-examined.
//
// When the row's responsible column is still present and unassigned it
// is KEPT in the responsible slot. That preserves pivot uniqueness:
// eliminateCol never cancels another row's pivot (pivots appear in
// exactly one row, so a combination cannot touch the target's own),
// and a fix-up that silently re-seated responsibility on an arbitrary
// column would let pivots collide — after which eliminations combine
// rows chaotically and the matrix densifies instead of staying
// reduced. The fast path below (pivot alive + one other unassigned
// column) also skips the full-row parity scan entirely, which is what
// keeps per-assignment maintenance near the cost of a plain watch
// move.
func (s *Solver) gaussFixRow(ri int) *conflictInfo {
	g := s.gmat
	r := &g.rows[ri]

	bcol := r.wc[r.resp]
	if g.hasCol(ri, bcol) && s.assigns[g.cols[bcol]] == valUnassigned {
		// Pivot alive. Find one more unassigned column and the row is
		// watch-satisfied with no parity work.
		if rep := g.findUnassigned(s, ri, bcol, -1); rep >= 0 {
			if r.resp == 0 {
				g.setWatches(ri, bcol, rep)
			} else {
				g.setWatches(ri, rep, bcol)
			}
			return nil
		}
		// Pivot is the only unassigned column: the row implies it.
		return s.gaussImply(ri, bcol)
	}

	// Pivot gone or assigned: general scan. Collect up to two
	// unassigned columns and the two highest-level set columns for the
	// fully-assigned case.
	var un [2]int32
	nUn := 0
	hi, hi2 := int32(-1), int32(-1)
	var hiLvl, hi2Lvl int32 = -1, -1
	any := false
	for w, word := range r.bits {
		for word != 0 {
			c := int32(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			any = true
			v := g.cols[c]
			if s.assigns[v] == valUnassigned {
				if nUn < 2 {
					un[nUn] = c
				}
				nUn++
				if nUn == 2 {
					// Two unassigned columns are all we need.
					goto scanned
				}
				continue
			}
			if lvl := s.level[v]; lvl > hiLvl {
				hi2, hi2Lvl = hi, hiLvl
				hi, hiLvl = c, lvl
			} else if lvl > hi2Lvl {
				hi2, hi2Lvl = c, lvl
			}
		}
	}
scanned:
	if !any {
		// The row cancelled to empty: its partner was a duplicate. The
		// build starts from a linearly independent basis, but level-0
		// assignments folded in SINCE the last level-0 re-reduction can
		// collapse two distinct rows onto the same support (the
		// gaussRetrigger hysteresis makes that window real). An empty
		// row with rhs=1 says 0=1 under the level-0 trail — a
		// refutation of the formula itself, reported as an empty
		// conflict clause, which the search loop resolves at level 0.
		// With rhs=0 the row is trivially satisfied forever; its watch
		// entries go inert (gaussUpdateRow falls through to a parity
		// check that always passes) until the next rebuild drops it.
		if r.rhs {
			s.Stats.GaussInSearchConflicts++
			return &conflictInfo{}
		}
		return nil
	}

	switch nUn {
	case 2:
		// Adopt un[0] as the new pivot (responsible slot 0). It may
		// collide with another row's pivot until its own assignment
		// triggers an elimination — a transient the reduction repairs
		// lazily, never a soundness issue.
		r.resp = 0
		g.setWatches(ri, un[0], un[1])
		return nil
	case 1:
		return s.gaussImply(ri, un[0])
	default:
		if hi2 < 0 {
			hi2 = hi // single-column row
		}
		g.setWatches(ri, hi, hi2)
		if g.rowParity(s, ri, -1) != r.rhs {
			s.Stats.GaussInSearchConflicts++
			return &conflictInfo{lits: g.conflictFor(s, ri)}
		}
		return nil
	}
}

// gaussImply handles a row whose only unassigned column is ucol: every
// other column is assigned, so ucol's variable is implied. The row
// watches ucol (which is about to carry the row's highest decision
// level, satisfying the backjump-trigger invariant) plus any set
// column.
func (s *Solver) gaussImply(ri int, ucol int32) *conflictInfo {
	g := s.gmat
	r := &g.rows[ri]
	secondCol := ucol
	for w, word := range r.bits {
		if word != 0 {
			c := int32(w<<6 + bits.TrailingZeros64(word))
			if c == ucol {
				word &= word - 1
				if word != 0 {
					c = int32(w<<6 + bits.TrailingZeros64(word))
				} else {
					continue
				}
			}
			secondCol = c
			break
		}
	}
	if r.resp == 0 {
		g.setWatches(ri, ucol, secondCol)
	} else {
		g.setWatches(ri, secondCol, ucol)
	}
	impliedVar := g.cols[ucol]
	want := g.rowParity(s, ri, ucol) != r.rhs
	implied := mkLit(impliedVar, !want)
	s.Stats.GaussInSearchProps++
	s.uncheckedEnqueue(implied, reason{kind: reasonGauss, lits: g.reasonFor(s, ri, implied)})
	return nil
}

// setWatches points row ri's watches at columns a and b, appending
// watch-list entries only for columns not already watched (old entries
// left behind become stale and are dropped lazily). The responsible
// slot keeps its index; Gauss-Jordan uniqueness of the pivot is a
// performance property, not a soundness one, so a pivot displaced by
// combination does not cascade further eliminations.
func (g *gaussMatrix) setWatches(ri int, a, b int32) {
	r := &g.rows[ri]
	old := r.wc
	r.wc[0], r.wc[1] = a, b
	for _, c := range [2]int32{a, b} {
		if c != old[0] && c != old[1] {
			g.watch[c] = append(g.watch[c], int32(ri))
			g.nEntries++
		}
	}
}

// findUnassigned returns the first set column of row ri whose variable
// is unassigned, skipping columns skip1 and skip2 (-1 = none), or -1.
func (g *gaussMatrix) findUnassigned(s *Solver, ri int, skip1, skip2 int32) int32 {
	r := &g.rows[ri]
	for w, word := range r.bits {
		for word != 0 {
			c := int32(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			if c == skip1 || c == skip2 {
				continue
			}
			if s.assigns[g.cols[c]] == valUnassigned {
				return c
			}
		}
	}
	return -1
}

// rowParity computes the XOR of the assigned values over row ri's set
// columns, skipping column skip (-1 = none).
func (g *gaussMatrix) rowParity(s *Solver, ri int, skip int32) bool {
	parity := false
	for w, word := range g.rows[ri].bits {
		for word != 0 {
			c := int32(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			if c == skip {
				continue
			}
			if s.assigns[g.cols[c]] == valTrue {
				parity = !parity
			}
		}
	}
	return parity
}

// reasonFor materializes the clausal reason for an implication of row
// ri: the implied literal first, then the negations of the current
// assignments of every other set column — false literals, exactly the
// shape analyze() requires. The slice is freshly allocated: the row
// may be combined away before the implication leaves the trail.
func (g *gaussMatrix) reasonFor(s *Solver, ri int, implied lit) []lit {
	r := &g.rows[ri]
	out := make([]lit, 0, 8)
	out = append(out, implied)
	iv := implied.varIdx()
	for w, word := range r.bits {
		for word != 0 {
			c := int32(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			v := g.cols[c]
			if v == iv {
				continue
			}
			out = append(out, mkLit(v, s.assigns[v] == valTrue))
		}
	}
	return out
}

// conflictFor materializes the conflict clause of a fully assigned,
// parity-violated row: the negations of every set column's assignment.
func (g *gaussMatrix) conflictFor(s *Solver, ri int) []lit {
	r := &g.rows[ri]
	out := make([]lit, 0, 8)
	for w, word := range r.bits {
		for word != 0 {
			c := int32(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			v := g.cols[c]
			out = append(out, mkLit(v, s.assigns[v] == valTrue))
		}
	}
	return out
}
