package sat

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpus solves every DIMACS instance under testdata/corpus; the
// expected verdict is encoded in the file name (.sat.cnf / .unsat.cnf).
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.cnf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("corpus missing: %v", files)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			s, err := ParseDimacs(f)
			if err != nil {
				t.Fatal(err)
			}
			want := Unsat
			if strings.Contains(path, ".sat.") {
				want = Sat
			}
			if got := s.Solve(); got != want {
				t.Fatalf("%s: got %v, want %v", path, got, want)
			}
		})
	}
}

// TestCorpusParityChainModel checks a structural property of the
// alternating-parity chain: the model must strictly alternate.
func TestCorpusParityChainModel(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "corpus", "parity_chain.sat.cnf"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := ParseDimacs(f)
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat {
		t.Fatal("unsat")
	}
	for v := 1; v < s.NumVars(); v++ {
		if s.Value(v) == s.Value(v+1) {
			t.Fatalf("x%d == x%d violates the chain", v, v+1)
		}
	}
	if !s.Value(1) {
		t.Fatal("unit clause x1 violated")
	}
}

// TestCorpusModelCount verifies the solver's complete enumeration on
// the random 3-SAT instance whose brute-forced model count is recorded
// in its comment header.
func TestCorpusModelCount(t *testing.T) {
	path := filepath.Join("testdata", "corpus", "random3sat.sat.cnf")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want int
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "c models=") {
			if _, err := fmtSscanf(line, &want); err != nil {
				t.Fatal(err)
			}
		}
	}
	if want == 0 {
		t.Fatal("no model count header")
	}
	s, err := ParseDimacs(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	proj := make([]int, s.NumVars())
	for i := range proj {
		proj[i] = i + 1
	}
	got, exhausted, _ := s.CountModels(proj, 0)
	if !exhausted || got != want {
		t.Fatalf("counted %d models (exhausted=%v), header says %d", got, exhausted, want)
	}
}

func fmtSscanf(line string, out *int) (int, error) {
	var v int
	n := 0
	for _, c := range strings.TrimPrefix(line, "c models=") {
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + int(c-'0')
		n++
	}
	*out = v
	return n, nil
}
