package sat

import (
	"testing"
	"time"
)

func TestInterruptOnDoneFires(t *testing.T) {
	s := New(4)
	done := make(chan struct{})
	stop := s.InterruptOnDone(done)
	if s.Interrupted() {
		t.Fatal("interrupted before done closed")
	}
	close(done)
	deadline := time.Now().Add(2 * time.Second)
	for !s.Interrupted() {
		if time.Now().After(deadline) {
			t.Fatal("interrupt never fired after done closed")
		}
		time.Sleep(time.Millisecond)
	}
	stop() // must not hang or panic after the done branch won
}

func TestInterruptOnDoneStopDetaches(t *testing.T) {
	s := New(4)
	done := make(chan struct{})
	stop := s.InterruptOnDone(done)
	stop() // watcher exits via quit; a later done close must not interrupt
	close(done)
	time.Sleep(10 * time.Millisecond)
	if s.Interrupted() {
		t.Fatal("interrupt fired after stop detached the watcher")
	}
}

func TestInterruptOnDoneNilChannel(t *testing.T) {
	s := New(4)
	stop := s.InterruptOnDone(nil)
	stop() // no-op watcher
	if s.Interrupted() {
		t.Fatal("nil done interrupted the solver")
	}
}
