package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the extended DIMACS CNF format of CryptoMiniSat
// (the solver the paper uses): ordinary clauses are zero-terminated
// literal lists, and lines starting with 'x' are XOR clauses whose
// literal signs fold into the parity — "x1 2 3 0" means
// x1 ^ x2 ^ x3 = 1 and "x-1 2 3 0" means ¬x1 ^ x2 ^ x3 = 1, i.e.
// x1 ^ x2 ^ x3 = 0. This lets reconstruction instances be exported for
// external solvers and external instances be solved here.

// ParseDimacs reads an extended DIMACS document into a fresh solver.
func ParseDimacs(r io.Reader) (*Solver, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var s *Solver
	declaredVars, declaredClauses := 0, 0
	seenClauses := 0

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: bad problem line %q", line)
			}
			var err1, err2 error
			declaredVars, err1 = strconv.Atoi(fields[2])
			declaredClauses, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || declaredVars < 0 || declaredClauses < 0 {
				return nil, fmt.Errorf("sat: bad problem line %q", line)
			}
			s = New(declaredVars)
			continue
		}
		if s == nil {
			return nil, fmt.Errorf("sat: clause before problem line: %q", line)
		}
		isXor := false
		if strings.HasPrefix(line, "x") {
			isXor = true
			line = strings.TrimSpace(line[1:])
		}
		lits, err := parseLits(line)
		if err != nil {
			return nil, err
		}
		for _, l := range lits {
			v := l
			if v < 0 {
				v = -v
			}
			if v > declaredVars {
				return nil, fmt.Errorf("sat: literal %d exceeds declared %d variables", l, declaredVars)
			}
		}
		if isXor {
			// Signs fold into the parity: each negative literal flips
			// the right-hand side.
			rhs := true
			vars := make([]int, len(lits))
			for i, l := range lits {
				if l < 0 {
					rhs = !rhs
					vars[i] = -l
				} else {
					vars[i] = l
				}
			}
			if err := s.AddXorClause(vars, rhs); err != nil {
				return nil, err
			}
		} else {
			if err := s.AddClause(lits...); err != nil {
				return nil, err
			}
		}
		seenClauses++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("sat: missing problem line")
	}
	if seenClauses != declaredClauses {
		return nil, fmt.Errorf("sat: %d clauses, header declares %d", seenClauses, declaredClauses)
	}
	return s, nil
}

func parseLits(line string) ([]int, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[len(fields)-1] != "0" {
		return nil, fmt.Errorf("sat: clause not zero-terminated: %q", line)
	}
	lits := make([]int, 0, len(fields)-1)
	for _, f := range fields[:len(fields)-1] {
		l, err := strconv.Atoi(f)
		if err != nil || l == 0 {
			return nil, fmt.Errorf("sat: bad literal %q", f)
		}
		lits = append(lits, l)
	}
	return lits, nil
}

// DimacsWriter accumulates a formula and serializes it with a correct
// header. Use it when exporting instances (the Solver does not retain
// pre-simplification clauses, so export happens at build time).
type DimacsWriter struct {
	numVars int
	lines   []string
}

// NewDimacsWriter returns an empty writer with n declared variables.
func NewDimacsWriter(n int) *DimacsWriter { return &DimacsWriter{numVars: n} }

func (d *DimacsWriter) bump(lits []int) {
	for _, l := range lits {
		v := l
		if v < 0 {
			v = -v
		}
		if v > d.numVars {
			d.numVars = v
		}
	}
}

// AddClause records an ordinary clause.
func (d *DimacsWriter) AddClause(lits ...int) {
	d.bump(lits)
	d.lines = append(d.lines, litLine("", lits))
}

// AddXorClause records a parity constraint over positive variables.
func (d *DimacsWriter) AddXorClause(vars []int, rhs bool) {
	lits := append([]int(nil), vars...)
	if !rhs && len(lits) > 0 {
		lits[0] = -lits[0] // one negation flips the parity to 0
	}
	d.bump(lits)
	d.lines = append(d.lines, litLine("x", lits))
}

func litLine(prefix string, lits []int) string {
	var sb strings.Builder
	sb.WriteString(prefix)
	for _, l := range lits {
		fmt.Fprintf(&sb, "%d ", l)
	}
	sb.WriteString("0")
	return sb.String()
}

// WriteTo serializes the document.
func (d *DimacsWriter) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "p cnf %d %d\n", d.numVars, len(d.lines))
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, l := range d.lines {
		n, err := fmt.Fprintln(bw, l)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}
