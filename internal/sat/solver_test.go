package sat

import (
	"math/rand"
	"testing"
)

func TestTrivialSat(t *testing.T) {
	s := New(2)
	mustAdd(t, s, 1, 2)
	mustAdd(t, s, -1)
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if s.Value(1) {
		t.Error("x1 should be false")
	}
	if !s.Value(2) {
		t.Error("x2 should be true")
	}
}

// Value on an out-of-range variable id must answer false, never panic:
// stale projection lists from the enumeration and cube-split drivers
// can carry ids the solver never allocated.
func TestValueOutOfRange(t *testing.T) {
	s := New(2)
	mustAdd(t, s, 1)
	mustAdd(t, s, 2)
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	for _, v := range []int{0, -1, 3, 1 << 20} {
		if s.Value(v) {
			t.Errorf("Value(%d) true for unallocated variable", v)
		}
	}
	if !s.Value(1) || !s.Value(2) {
		t.Error("in-range values wrong")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New(1)
	mustAdd(t, s, 1)
	mustAdd(t, s, -1)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestEmptyFormulaSat(t *testing.T) {
	s := New(3)
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
}

func TestUnsatCore3Vars(t *testing.T) {
	// All 8 clauses over 3 variables: unsatisfiable.
	s := New(3)
	for mask := 0; mask < 8; mask++ {
		cls := make([]int, 3)
		for i := 0; i < 3; i++ {
			if mask&(1<<i) != 0 {
				cls[i] = i + 1
			} else {
				cls[i] = -(i + 1)
			}
		}
		mustAdd(t, s, cls...)
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes — classically hard for
	// resolution but tiny instances solve fast. Checks deep conflict
	// analysis paths.
	for _, n := range []int{3, 4, 5} {
		s := New((n + 1) * n)
		v := func(p, h int) int { return p*n + h + 1 }
		for p := 0; p <= n; p++ {
			cls := make([]int, n)
			for h := 0; h < n; h++ {
				cls[h] = v(p, h)
			}
			mustAdd(t, s, cls...)
		}
		for h := 0; h < n; h++ {
			for p1 := 0; p1 <= n; p1++ {
				for p2 := p1 + 1; p2 <= n; p2++ {
					mustAdd(t, s, -v(p1, h), -v(p2, h))
				}
			}
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d+1,%d): status %v", n, n, st)
		}
	}
}

func TestXorBasic(t *testing.T) {
	// x1 ^ x2 = 1, x1 = 1  =>  x2 = 0.
	s := New(2)
	if err := s.AddXorClause([]int{1, 2}, true); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, s, 1)
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Value(1) || s.Value(2) {
		t.Errorf("model x1=%v x2=%v", s.Value(1), s.Value(2))
	}
}

func TestXorChainUnsat(t *testing.T) {
	// x1^x2=1, x2^x3=1, x1^x3=1 has odd cycle parity: sum = 0 = 1, UNSAT.
	s := New(3)
	for _, pair := range [][2]int{{1, 2}, {2, 3}, {1, 3}} {
		if err := s.AddXorClause([]int{pair[0], pair[1]}, true); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestXorDuplicateCancellation(t *testing.T) {
	// x1 ^ x1 ^ x2 = 1 reduces to x2 = 1.
	s := New(2)
	if err := s.AddXorClause([]int{1, 1, 2}, true); err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Value(2) {
		t.Error("x2 should be forced true")
	}
}

func TestXorEmpty(t *testing.T) {
	s := New(1)
	if err := s.AddXorClause(nil, true); err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Unsat {
		t.Fatal("empty xor with rhs=1 must be UNSAT")
	}
	s2 := New(1)
	if err := s2.AddXorClause(nil, false); err != nil {
		t.Fatal(err)
	}
	if st := s2.Solve(); st != Sat {
		t.Fatal("empty xor with rhs=0 must be SAT")
	}
}

func TestXorRejectsNonPositiveVar(t *testing.T) {
	s := New(2)
	if err := s.AddXorClause([]int{1, -2}, true); err == nil {
		t.Error("expected error for negative variable")
	}
}

func TestWideXor(t *testing.T) {
	// x1^…^x10 = 1 with x1..x9 = 0 forces x10 = 1.
	s := New(10)
	vars := make([]int, 10)
	for i := range vars {
		vars[i] = i + 1
	}
	if err := s.AddXorClause(vars, true); err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 9; v++ {
		mustAdd(t, s, -v)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Value(10) {
		t.Error("x10 not forced")
	}
}

func TestEnumerateModelsExact(t *testing.T) {
	// x1 ^ x2 ^ x3 = 0 has exactly 4 solutions over 3 variables.
	s := New(3)
	if err := s.AddXorClause([]int{1, 2, 3}, false); err != nil {
		t.Fatal(err)
	}
	seen := map[[3]bool]bool{}
	n, st, err := s.EnumerateModels([]int{1, 2, 3}, 0, func(m map[int]bool) bool {
		key := [3]bool{m[1], m[2], m[3]}
		if seen[key] {
			t.Fatal("duplicate model")
		}
		seen[key] = true
		if m[1] != m[2] != m[3] { // parity check: xor of three
			// (m1 ^ m2) ^ m3 must be false
		}
		if (m[1] != m[2]) != m[3] != false {
			t.Fatalf("model violates parity: %v", m)
		}
		return true
	})
	if n != 4 || st != Unsat || err != nil {
		t.Fatalf("n=%d st=%v err=%v", n, st, err)
	}
}

func TestEnumerateEarlyStopAndLimit(t *testing.T) {
	s := New(4) // free variables: 16 models
	n, st, err := s.EnumerateModels([]int{1, 2, 3, 4}, 5, func(map[int]bool) bool { return true })
	if n != 5 || st != Sat || err != nil {
		t.Fatalf("limit: n=%d st=%v err=%v", n, st, err)
	}
	s2 := New(4)
	n2, st2, err2 := s2.EnumerateModels([]int{1, 2, 3, 4}, 0, func(map[int]bool) bool { return false })
	if n2 != 1 || st2 != Sat || err2 != nil {
		t.Fatalf("early stop: n=%d st=%v err=%v", n2, st2, err2)
	}
}

func TestSolveAfterModelThenMoreClauses(t *testing.T) {
	s := New(3)
	mustAdd(t, s, 1, 2, 3)
	if s.Solve() != Sat {
		t.Fatal("sat expected")
	}
	m := s.Model()
	// Block that model; still satisfiable (7 models originally).
	var blocking []int
	for v := 1; v <= 3; v++ {
		if m[v] {
			blocking = append(blocking, -v)
		} else {
			blocking = append(blocking, v)
		}
	}
	mustAdd(t, s, blocking...)
	if s.Solve() != Sat {
		t.Fatal("still satisfiable after one blocking clause")
	}
}

func TestMaxConflictsBudget(t *testing.T) {
	// A hard pigeonhole with a tiny budget must return Unknown.
	n := 8
	s := New((n + 1) * n)
	v := func(p, h int) int { return p*n + h + 1 }
	for p := 0; p <= n; p++ {
		cls := make([]int, n)
		for h := 0; h < n; h++ {
			cls[h] = v(p, h)
		}
		mustAdd(t, s, cls...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				mustAdd(t, s, -v(p1, h), -v(p2, h))
			}
		}
	}
	s.MaxConflicts = 10
	if st := s.Solve(); st != Unknown {
		t.Fatalf("expected Unknown with tiny budget, got %v", st)
	}
}

// brute-force model counting for random formulas, cross-checked against
// the solver's enumeration.
type rawFormula struct {
	nVars   int
	clauses [][]int
	xors    []struct {
		vars []int
		rhs  bool
	}
}

func (f *rawFormula) satisfied(assign uint32) bool {
	val := func(v int) bool { return assign&(1<<uint(v-1)) != 0 }
	for _, c := range f.clauses {
		ok := false
		for _, l := range c {
			if l > 0 && val(l) || l < 0 && !val(-l) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, x := range f.xors {
		p := false
		for _, v := range x.vars {
			if val(v) {
				p = !p
			}
		}
		if p != x.rhs {
			return false
		}
	}
	return true
}

func (f *rawFormula) countModels() int {
	n := 0
	for a := uint32(0); a < 1<<uint(f.nVars); a++ {
		if f.satisfied(a) {
			n++
		}
	}
	return n
}

func randomFormula(r *rand.Rand, nVars int) *rawFormula {
	f := &rawFormula{nVars: nVars}
	nc := 1 + r.Intn(3*nVars)
	for i := 0; i < nc; i++ {
		width := 1 + r.Intn(3)
		var cls []int
		for j := 0; j < width; j++ {
			v := 1 + r.Intn(nVars)
			if r.Intn(2) == 0 {
				v = -v
			}
			cls = append(cls, v)
		}
		f.clauses = append(f.clauses, cls)
	}
	nx := r.Intn(nVars)
	for i := 0; i < nx; i++ {
		width := 1 + r.Intn(4)
		var vars []int
		for j := 0; j < width; j++ {
			vars = append(vars, 1+r.Intn(nVars))
		}
		f.xors = append(f.xors, struct {
			vars []int
			rhs  bool
		}{vars, r.Intn(2) == 1})
	}
	return f
}

func TestRandomFormulasAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		nVars := 3 + r.Intn(8)
		f := randomFormula(r, nVars)
		want := f.countModels()

		s := New(nVars)
		for _, c := range f.clauses {
			mustAdd(t, s, c...)
		}
		for _, x := range f.xors {
			if err := s.AddXorClause(x.vars, x.rhs); err != nil {
				t.Fatal(err)
			}
		}
		proj := make([]int, nVars)
		for i := range proj {
			proj[i] = i + 1
		}
		got, exhausted, _ := s.CountModels(proj, 0)
		if !exhausted {
			t.Fatalf("trial %d: enumeration not exhausted", trial)
		}
		if got != want {
			t.Fatalf("trial %d: solver found %d models, brute force %d (vars=%d clauses=%v xors=%v)",
				trial, got, want, nVars, f.clauses, f.xors)
		}
	}
}

func TestModelsAreActuallyModels(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		nVars := 4 + r.Intn(10)
		f := randomFormula(r, nVars)
		s := New(nVars)
		for _, c := range f.clauses {
			mustAdd(t, s, c...)
		}
		for _, x := range f.xors {
			if err := s.AddXorClause(x.vars, x.rhs); err != nil {
				t.Fatal(err)
			}
		}
		if s.Solve() != Sat {
			continue
		}
		var assign uint32
		for v := 1; v <= nVars; v++ {
			if s.Value(v) {
				assign |= 1 << uint(v-1)
			}
		}
		if !f.satisfied(assign) {
			t.Fatalf("trial %d: solver model does not satisfy formula", trial)
		}
	}
}

func TestLargerRandomXorSystems(t *testing.T) {
	// Systems resembling the reconstruction instances: n variables, b
	// random parity rows. Verify every returned model satisfies all
	// rows and that UNSAT answers agree with Gaussian elimination rank
	// reasoning (rhs outside column space).
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		n := 30 + r.Intn(40)
		b := 10 + r.Intn(15)
		s := New(n)
		type row struct {
			vars []int
			rhs  bool
		}
		var rows []row
		// Build from a planted solution so the system is satisfiable.
		planted := make([]bool, n+1)
		for v := 1; v <= n; v++ {
			planted[v] = r.Intn(2) == 1
		}
		for i := 0; i < b; i++ {
			var vars []int
			p := false
			for v := 1; v <= n; v++ {
				if r.Intn(2) == 1 {
					vars = append(vars, v)
					if planted[v] {
						p = !p
					}
				}
			}
			rows = append(rows, row{vars, p})
			if err := s.AddXorClause(vars, p); err != nil {
				t.Fatal(err)
			}
		}
		if st := s.Solve(); st != Sat {
			t.Fatalf("trial %d: planted system unsat", trial)
		}
		for _, rw := range rows {
			p := false
			for _, v := range rw.vars {
				if s.Value(v) {
					p = !p
				}
			}
			if p != rw.rhs {
				t.Fatalf("trial %d: model violates xor row", trial)
			}
		}
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("status strings")
	}
}

func TestNewVarGrows(t *testing.T) {
	s := New(0)
	a := s.NewVar()
	b := s.NewVar()
	if a != 1 || b != 2 {
		t.Fatalf("vars %d %d", a, b)
	}
	mustAdd(t, s, a, b)
	mustAdd(t, s, -a)
	if s.Solve() != Sat || !s.Value(b) {
		t.Error("grown solver wrong")
	}
}

func TestAddClauseGrowsVars(t *testing.T) {
	s := New(1)
	mustAdd(t, s, 5) // implicitly grows to 5 vars
	if s.NumVars() != 5 {
		t.Fatalf("numVars %d", s.NumVars())
	}
	if s.Solve() != Sat || !s.Value(5) {
		t.Error("unit on grown var")
	}
}

func mustAdd(t *testing.T, s *Solver, lits ...int) {
	t.Helper()
	if err := s.AddClause(lits...); err != nil {
		t.Fatalf("AddClause(%v): %v", lits, err)
	}
}
