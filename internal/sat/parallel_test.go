package sat

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// randomMixedInstance builds a random instance with n variables,
// 3-clauses and xor rows, the same shape as the reconstruction CNF
// (parity rows + cardinality clauses).
func randomMixedInstance(rng *rand.Rand, n, clauses, xors int) *Solver {
	s := New(n)
	for i := 0; i < clauses; i++ {
		lits := make([]int, 3)
		for j := range lits {
			v := rng.Intn(n) + 1
			if rng.Intn(2) == 0 {
				v = -v
			}
			lits[j] = v
		}
		if err := s.AddClause(lits...); err != nil {
			return s // became unsat during construction; still usable
		}
	}
	for i := 0; i < xors; i++ {
		w := 2 + rng.Intn(3)
		seen := map[int]bool{}
		var vars []int
		for len(vars) < w {
			v := rng.Intn(n) + 1
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
		if err := s.AddXorClause(vars, rng.Intn(2) == 1); err != nil {
			return s
		}
	}
	return s
}

func allVars(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// php returns the pigeonhole principle PHP(holes+1, holes): hard
// enough that a Solve call visits many conflicts before refuting it.
func php(holes int) *Solver {
	pigeons := holes + 1
	v := func(p, h int) int { return p*holes + h + 1 }
	s := New(pigeons * holes)
	for p := 0; p < pigeons; p++ {
		lits := make([]int, holes)
		for h := 0; h < holes; h++ {
			lits[h] = v(p, h)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(-v(p1, h), -v(p2, h))
			}
		}
	}
	return s
}

func TestInterruptBeforeSolve(t *testing.T) {
	s := php(7)
	s.Interrupt()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("interrupted solve returned %v, want Unknown", st)
	}
	if !s.Interrupted() {
		t.Error("Interrupted() false after Interrupt()")
	}
	s.ClearInterrupt()
	if s.Interrupted() {
		t.Error("Interrupted() true after ClearInterrupt()")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP(8,7) after ClearInterrupt: %v, want Unsat", st)
	}
}

func TestInterruptDuringSolve(t *testing.T) {
	// A hard instance on one goroutine, interrupted from another. The
	// solve must come back Unknown promptly instead of finishing the
	// exponential refutation.
	s := php(10)
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(10 * time.Millisecond)
	s.Interrupt()
	select {
	case st := <-done:
		// Unknown when the interrupt landed mid-search; Unsat only if
		// the refutation finished before the flag was raised.
		if st != Unknown && st != Unsat {
			t.Fatalf("status %v", st)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("solver ignored the interrupt")
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := randomMixedInstance(rng, 30, 60, 10)
	cl := src.Clone()

	// Diverge: force opposite values of variable 1 on the two copies.
	if err := src.AddClause(1); err != nil {
		t.Fatalf("src unit: %v", err)
	}
	if err := cl.AddClause(-1); err != nil {
		t.Fatalf("clone unit: %v", err)
	}
	stSrc, stCl := src.Solve(), cl.Solve()
	if stSrc == Sat && !src.Value(1) {
		t.Error("source lost its own unit clause")
	}
	if stCl == Sat && cl.Value(1) {
		t.Error("clone lost its own unit clause")
	}
	if stSrc == Unknown || stCl == Unknown {
		t.Errorf("statuses %v/%v", stSrc, stCl)
	}
}

// TestCloneShareNothing hammers concurrent clones of one base solver
// under the race detector: every worker clones, mutates and solves
// privately. Any shared mutable state between clones is a race.
func TestCloneShareNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randomMixedInstance(rng, 40, 90, 12)
	src.Solve() // accumulate learnts and activity for Clone to copy
	// Concurrent cloning is only safe from a level-0 snapshot (the
	// contract the parallel drivers follow); take it serially first.
	base := src.Clone()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				cl := base.Clone()
				v := (w*20+i)%base.NumVars() + 1
				if i%2 == 0 {
					cl.AddClause(v)
				} else {
					cl.AddClause(-v)
				}
				if st := cl.Solve(); st == Unknown {
					t.Errorf("worker %d iter %d: Unknown", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func modelsEqual(a, b []Model) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestParallelEnumerateMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(6)
		src := randomMixedInstance(rng, n, 2*n, n/2)
		proj := allVars(n)

		want, wantSt := serialEnumerate(src.Clone(), proj, 0)
		for _, workers := range []int{1, 2, 4, 8} {
			got, gotSt := ParallelEnumerate(src, proj, 0, ParallelOptions{Workers: workers})
			if gotSt != wantSt {
				t.Fatalf("trial %d workers %d: status %v, want %v", trial, workers, gotSt, wantSt)
			}
			if !modelsEqual(got, want) {
				t.Fatalf("trial %d workers %d: %d models, want %d (or content differs)",
					trial, workers, len(got), len(want))
			}
		}
	}
}

func TestParallelEnumerateDoesNotConsumeSource(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := randomMixedInstance(rng, 10, 20, 4)
	proj := allVars(10)
	first, _ := ParallelEnumerate(src, proj, 0, ParallelOptions{Workers: 4})
	second, _ := ParallelEnumerate(src, proj, 0, ParallelOptions{Workers: 4})
	if !modelsEqual(first, second) {
		t.Fatalf("second enumeration differs: %d vs %d models", len(second), len(first))
	}
}

func TestParallelEnumerateLimitDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	src := randomMixedInstance(rng, 12, 18, 3)
	proj := allVars(12)
	all, st := ParallelEnumerate(src, proj, 0, ParallelOptions{Workers: 4})
	if st == Unknown || len(all) < 4 {
		t.Skip("instance too constrained for a limit test")
	}
	limit := len(all) / 2
	inFull := func(m Model) bool {
		for _, f := range all {
			if modelsEqual([]Model{m}, []Model{f}) {
				return true
			}
		}
		return false
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got, gotSt := ParallelEnumerate(src, proj, limit, ParallelOptions{Workers: workers})
		if gotSt != Sat {
			t.Fatalf("workers %d: status %v, want Sat (truncated)", workers, gotSt)
		}
		if len(got) != limit {
			t.Fatalf("workers %d: %d models, want %d", workers, len(got), limit)
		}
		for i, m := range got {
			if !inFull(m) {
				t.Fatalf("workers %d: model %d not in the full model set", workers, i)
			}
			if i > 0 && lessModel(m, got[i-1]) {
				t.Fatalf("workers %d: result not canonically sorted", workers)
			}
		}
		// Deterministic for a fixed worker count: a rerun is identical.
		again, _ := ParallelEnumerate(src, proj, limit, ParallelOptions{Workers: workers})
		if !modelsEqual(got, again) {
			t.Fatalf("workers %d: limited enumeration not deterministic across runs", workers)
		}
	}
}

func TestParallelFirstSatAndUnsat(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	sats, unsats := 0, 0
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(6)
		src := randomMixedInstance(rng, n, 3*n, n/2)
		proj := allVars(n)
		wantSt := src.Clone().Solve()
		model, st := ParallelFirst(src, proj, ParallelOptions{Workers: 4})
		if st != wantSt {
			t.Fatalf("trial %d: status %v, want %v", trial, st, wantSt)
		}
		switch st {
		case Sat:
			sats++
			// The model must actually satisfy the instance: pin every
			// variable to the model on a fresh clone and re-solve.
			chk := src.Clone()
			for i, v := range proj {
				l := v
				if !model[i] {
					l = -v
				}
				if err := chk.AddClause(l); err != nil {
					t.Fatalf("trial %d: model violates instance at var %d", trial, v)
				}
			}
			if chk.Solve() != Sat {
				t.Fatalf("trial %d: ParallelFirst model does not satisfy the instance", trial)
			}
		case Unsat:
			unsats++
		}
	}
	if sats == 0 || unsats == 0 {
		t.Logf("coverage: %d sat, %d unsat trials", sats, unsats)
	}
}

// TestParallelEnumerateHammer runs several ParallelEnumerate calls
// concurrently over one shared source solver. Under -race this proves
// the drivers and the clones they spawn share nothing mutable.
func TestParallelEnumerateHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	src := randomMixedInstance(rng, 12, 24, 4)
	proj := allVars(12)
	want, wantSt := ParallelEnumerate(src, proj, 0, ParallelOptions{Workers: 1})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, st := ParallelEnumerate(src, proj, 0, ParallelOptions{Workers: 4})
			if st != wantSt || !modelsEqual(got, want) {
				t.Errorf("concurrent enumeration diverged: %v/%d vs %v/%d",
					st, len(got), wantSt, len(want))
			}
		}()
	}
	wg.Wait()
}
