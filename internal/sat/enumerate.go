package sat

import (
	"errors"
	"fmt"
)

// Typed sentinel errors of the enumeration layer, in the style of the
// core.ErrCorrupt family: callers classify an incomplete AllSAT with
// errors.Is instead of guessing from a bare Unknown status.
var (
	// ErrBudget reports that MaxConflicts was exhausted mid-enumeration:
	// the models delivered so far are valid but the space was NOT
	// exhausted, and no completeness claim may be made.
	ErrBudget = errors.New("sat: conflict budget exhausted")
	// ErrInterrupted reports that Interrupt stopped the enumeration —
	// the cooperative-cancellation analogue of ErrBudget.
	ErrInterrupted = errors.New("sat: solve interrupted")
)

// EnumerateModels finds satisfying assignments one after another,
// projecting each model onto the given variables (1-based). After each
// model, a blocking clause over the projection is added, so successive
// models differ on at least one projected variable. Enumeration stops
// when fn returns false, when limit models were produced (limit <= 0
// means unbounded), or when the formula becomes unsatisfiable.
//
// It returns the number of models delivered and the final status: Unsat
// when the space was exhausted, Sat when stopped early by fn or limit.
// When the conflict budget ran out the status is Unknown and the error
// wraps ErrBudget; when an Interrupt stopped the search the error
// wraps ErrInterrupted. Both are the only non-nil error cases, so
// "err == nil" is exactly the callers' old "enumeration accounted for"
// condition — the silent Unknown return this API used to have is gone.
//
// The blocking clauses remain in the solver; enumeration is a
// consuming operation.
//
// The model map passed to fn is REUSED across iterations to avoid
// per-model allocation churn: fn must copy any values it wants to keep
// and must not retain the map beyond the call.
func (s *Solver) EnumerateModels(projection []int, limit int, fn func(model map[int]bool) bool) (int, Status, error) {
	models := s.Obs.Counter(MetricEnumModels)
	count := 0
	model := make(map[int]bool, len(projection))
	blocking := make([]int, 0, len(projection))
	for {
		st := s.Solve()
		if st != Sat {
			if st == Unknown {
				if s.Interrupted() {
					return count, Unknown, fmt.Errorf("sat: enumeration stopped after %d models: %w", count, ErrInterrupted)
				}
				return count, Unknown, fmt.Errorf("sat: enumeration stopped after %d models: %w", count, ErrBudget)
			}
			return count, st, nil
		}
		clear(model)
		blocking = blocking[:0]
		for _, v := range projection {
			val := s.Value(v)
			model[v] = val
			if val {
				blocking = append(blocking, -v)
			} else {
				blocking = append(blocking, v)
			}
		}
		count++
		models.Inc()
		if !fn(model) {
			return count, Sat, nil
		}
		if limit > 0 && count >= limit {
			return count, Sat, nil
		}
		if err := s.AddClause(blocking...); err != nil {
			// Empty projection: blocking impossible; treat as exhausted.
			return count, Unsat, nil
		}
	}
}

// EnumerateAssuming enumerates models under the given assumption
// literals, with the same projection/limit/fn contract as
// EnumerateModels — but without consuming the solver. The blocking
// clauses are guarded by a selector variable that is assumed alongside
// the caller's assumptions and dropped (together with every blocking
// clause) when the enumeration returns, so a reused session solver is
// left exactly as constrained as before the call. Unsat here means
// "exhausted under these assumptions", not that the formula is
// unsatisfiable.
func (s *Solver) EnumerateAssuming(assumptions []int, projection []int, limit int, fn func(model map[int]bool) bool) (int, Status, error) {
	models := s.Obs.Counter(MetricEnumModels)
	sel := s.acquireSelector()
	defer func() {
		s.DropGuard(sel)
		s.retireSelector(sel)
	}()
	assumps := make([]int, 0, len(assumptions)+1)
	assumps = append(assumps, assumptions...)
	assumps = append(assumps, sel)

	count := 0
	model := make(map[int]bool, len(projection))
	blocking := make([]int, 0, len(projection))
	for {
		st := s.SolveAssuming(assumps)
		if st != Sat {
			if st == Unknown {
				if s.Interrupted() {
					return count, Unknown, fmt.Errorf("sat: enumeration stopped after %d models: %w", count, ErrInterrupted)
				}
				return count, Unknown, fmt.Errorf("sat: enumeration stopped after %d models: %w", count, ErrBudget)
			}
			return count, st, nil
		}
		clear(model)
		blocking = blocking[:0]
		for _, v := range projection {
			val := s.Value(v)
			model[v] = val
			if val {
				blocking = append(blocking, -v)
			} else {
				blocking = append(blocking, v)
			}
		}
		count++
		models.Inc()
		if !fn(model) {
			return count, Sat, nil
		}
		if limit > 0 && count >= limit {
			return count, Sat, nil
		}
		// Block this projection under the guard. An empty or level-0
		// falsified projection degenerates to the unit ¬sel, which ends
		// the enumeration on the next solve.
		if err := s.AddGuardedClause(sel, blocking...); err != nil {
			return count, Unsat, nil
		}
	}
}

// CountModels counts models projected onto the given variables, up to
// max (<= 0 for unbounded). It returns the count and whether the space
// was exhausted (true) or the cap was hit (false); an exhausted
// conflict budget or interrupt surfaces as ErrBudget/ErrInterrupted.
func (s *Solver) CountModels(projection []int, max int) (int, bool, error) {
	n, st, err := s.EnumerateModels(projection, max, func(map[int]bool) bool { return true })
	return n, st == Unsat, err
}
