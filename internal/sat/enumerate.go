package sat

// EnumerateModels finds satisfying assignments one after another,
// projecting each model onto the given variables (1-based). After each
// model, a blocking clause over the projection is added, so successive
// models differ on at least one projected variable. Enumeration stops
// when fn returns false, when limit models were produced (limit <= 0
// means unbounded), or when the formula becomes unsatisfiable.
//
// It returns the number of models delivered and the final status: Unsat
// when the space was exhausted, Sat when stopped early by fn or limit,
// Unknown when the conflict budget ran out.
//
// The blocking clauses remain in the solver; enumeration is a
// consuming operation.
//
// The model map passed to fn is REUSED across iterations to avoid
// per-model allocation churn: fn must copy any values it wants to keep
// and must not retain the map beyond the call.
func (s *Solver) EnumerateModels(projection []int, limit int, fn func(model map[int]bool) bool) (int, Status) {
	count := 0
	model := make(map[int]bool, len(projection))
	blocking := make([]int, 0, len(projection))
	for {
		st := s.Solve()
		if st != Sat {
			return count, st
		}
		clear(model)
		blocking = blocking[:0]
		for _, v := range projection {
			val := s.Value(v)
			model[v] = val
			if val {
				blocking = append(blocking, -v)
			} else {
				blocking = append(blocking, v)
			}
		}
		count++
		if !fn(model) {
			return count, Sat
		}
		if limit > 0 && count >= limit {
			return count, Sat
		}
		if err := s.AddClause(blocking...); err != nil {
			// Empty projection: blocking impossible; treat as exhausted.
			return count, Unsat
		}
	}
}

// CountModels counts models projected onto the given variables, up to
// max (<= 0 for unbounded). It returns the count and whether the space
// was exhausted (true) or the cap was hit / budget ran out (false).
func (s *Solver) CountModels(projection []int, max int) (int, bool) {
	n, st := s.EnumerateModels(projection, max, func(map[int]bool) bool { return true })
	return n, st == Unsat
}
