package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDimacsBasic(t *testing.T) {
	doc := `c a comment
p cnf 3 3
1 2 0
-1 3 0
x2 3 0
`
	s, err := ParseDimacs(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	// Verify the xor: x2 ^ x3 must be 1.
	if s.Value(2) == s.Value(3) {
		t.Error("xor clause violated")
	}
	// Verify clause 1: x1 or x2.
	if !s.Value(1) && !s.Value(2) {
		t.Error("clause violated")
	}
}

func TestParseDimacsXorNegativeFoldsParity(t *testing.T) {
	// "x-1 2 0" means x1 ^ x2 = 0, i.e. x1 == x2.
	doc := "p cnf 2 2\nx-1 2 0\n1 0\n"
	s, err := ParseDimacs(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat || !s.Value(2) {
		t.Fatal("negative xor literal parity wrong")
	}
}

func TestParseDimacsErrors(t *testing.T) {
	bad := []string{
		"1 2 0\n",            // clause before header
		"p cnf 2 1\n1 2\n",   // missing terminator
		"p cnf 2 1\n1 5 0\n", // literal out of range
		"p cnf 2 2\n1 0\n",   // clause count mismatch
		"p dnf 2 1\n1 0\n",   // wrong format tag
		"p cnf 2 1\n1 q 0\n", // junk literal
		"",                   // empty
	}
	for _, doc := range bad {
		if _, err := ParseDimacs(strings.NewReader(doc)); err == nil {
			t.Errorf("accepted %q", doc)
		}
	}
}

func TestDimacsWriterRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		nVars := 3 + r.Intn(7)
		f := randomFormula(r, nVars)

		// Write through the DimacsWriter.
		dw := NewDimacsWriter(nVars)
		for _, c := range f.clauses {
			dw.AddClause(c...)
		}
		for _, x := range f.xors {
			dw.AddXorClause(x.vars, x.rhs)
		}
		var buf bytes.Buffer
		if _, err := dw.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}

		// Parse back and compare model counts with a directly-built
		// solver.
		parsed, err := ParseDimacs(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		direct := New(nVars)
		for _, c := range f.clauses {
			_ = direct.AddClause(c...)
		}
		for _, x := range f.xors {
			_ = direct.AddXorClause(x.vars, x.rhs)
		}
		proj := make([]int, nVars)
		for i := range proj {
			proj[i] = i + 1
		}
		nParsed, ok1, _ := parsed.CountModels(proj, 0)
		nDirect, ok2, _ := direct.CountModels(proj, 0)
		if !ok1 || !ok2 || nParsed != nDirect {
			t.Fatalf("trial %d: parsed %d models, direct %d", trial, nParsed, nDirect)
		}
	}
}

func TestDimacsWriterEmptyXorRhsHandling(t *testing.T) {
	// An even-parity xor over one variable is ¬x1.
	dw := NewDimacsWriter(1)
	dw.AddXorClause([]int{1}, false)
	var buf bytes.Buffer
	if _, err := dw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ParseDimacs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Solve() != Sat || s.Value(1) {
		t.Fatal("x1=0 expected")
	}
}

func TestDimacsWriterBumpsVars(t *testing.T) {
	dw := NewDimacsWriter(1)
	dw.AddClause(7)
	var buf bytes.Buffer
	if _, err := dw.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "p cnf 7 1") {
		t.Fatalf("header: %q", buf.String())
	}
}
