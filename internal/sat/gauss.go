package sat

// In-solver XOR Gaussian elimination, in the spirit of CryptoMiniSat's
// Gauss-Jordan component (Soos et al., SAT 2009): instead of leaving
// the b parity rows of A·x = TP as independent watch-propagated
// constraints, the solver row-reduces them over GF(2) at the start of
// a solve, folding in everything already fixed at level 0. Reduction
// exposes consequences watch propagation cannot see — inconsistent
// rows (0 = 1), forced variables (unit rows), and shorter equivalent
// rows — before the CDCL search starts. The reduced rows replace the
// originals in the watch scheme, so the per-propagation machinery is
// unchanged.
//
// The elimination is gated behind Solver.EnableGauss (default off):
// callers that build XOR chains deliberately cut for CNF-style locality
// would see their structure merged by row reduction, so incremental
// sessions opt in with uncut rows while the one-shot path is untouched.

// gaussWords is the bitset row width in 64-bit words for n columns.
func gaussWords(n int) int { return (n + 63) / 64 }

// gaussRetrigger is how much the level-0 trail must grow between two
// solves before the rows are re-reduced. Re-reducing on every call
// would be wasted work when nothing was fixed in between; 16 new
// permanent assignments is enough new information to harvest.
const gaussRetrigger = 16

// gaussEliminate row-reduces the XOR system at decision level 0. It
// returns false when the system is unsatisfiable (an inconsistent row,
// or a conflict while propagating derived units); the caller then sets
// ok = false. The reduction reruns only when the set of XOR rows or
// the level-0 trail changed materially since the last run.
func (s *Solver) gaussEliminate() bool {
	if s.decisionLevel() != 0 {
		panic("sat: gaussEliminate above level 0")
	}
	// Staleness is tracked by generation, not row count: a harvest
	// followed by AddXorClause can restore the old len(s.xors) while
	// the row SET differs, and a changed system must never be skipped.
	if s.xorGen == s.gaussGen && len(s.trail)-s.gaussTrail < gaussRetrigger {
		return true
	}
	s.gaussGen = s.xorGen
	s.gaussTrail = len(s.trail)
	if len(s.xors) == 0 {
		// Nothing to reduce: not a Gauss run (solvers with no parity
		// rows must report GaussRuns == 0).
		return true
	}
	s.Stats.GaussRuns++

	// Column layout: every variable still unassigned in some row, in
	// ascending variable order — deterministic, so clones and repeated
	// runs reduce identically.
	inCols := make(map[int32]bool)
	for _, x := range s.xors {
		for _, v := range x.vars {
			if s.assigns[v] == valUnassigned {
				inCols[v] = true
			}
		}
	}
	cols := make([]int32, 0, len(inCols))
	for v := range inCols {
		cols = append(cols, v)
	}
	sortInt32s(cols)
	colOf := make(map[int32]int, len(cols))
	for i, v := range cols {
		colOf[v] = i
	}
	words := gaussWords(len(cols))

	type row struct {
		bits []uint64
		rhs  bool
	}
	rows := make([]row, 0, len(s.xors))
	for _, x := range s.xors {
		r := row{bits: make([]uint64, words), rhs: x.rhs}
		empty := true
		for _, v := range x.vars {
			switch s.assigns[v] {
			case valTrue:
				r.rhs = !r.rhs
			case valFalse:
				// contributes 0; drop
			default:
				c := colOf[v]
				r.bits[c/64] ^= 1 << (c % 64)
				empty = false
			}
		}
		if empty {
			if r.rhs {
				return false // 0 = 1 under level-0 assignments
			}
			continue // trivially satisfied; drop
		}
		rows = append(rows, r)
	}

	// Gauss-Jordan to reduced row-echelon form, lowest-variable pivots
	// first. Full RREF (eliminating above the pivot too) keeps every
	// surviving row as short as the span allows.
	pivotRow := 0
	for c := 0; c < len(cols) && pivotRow < len(rows); c++ {
		w, b := c/64, uint64(1)<<(c%64)
		sel := -1
		for i := pivotRow; i < len(rows); i++ {
			if rows[i].bits[w]&b != 0 {
				sel = i
				break
			}
		}
		if sel < 0 {
			continue
		}
		rows[pivotRow], rows[sel] = rows[sel], rows[pivotRow]
		for i := 0; i < len(rows); i++ {
			if i == pivotRow || rows[i].bits[w]&b == 0 {
				continue
			}
			for k := 0; k < words; k++ {
				rows[i].bits[k] ^= rows[pivotRow].bits[k]
			}
			rows[i].rhs = rows[i].rhs != rows[pivotRow].rhs
		}
		pivotRow++
	}

	// Harvest: inconsistent rows refute the formula, unit rows become
	// level-0 assignments, longer rows re-enter the watch scheme.
	var units []lit
	kept := make([]*xorClause, 0, pivotRow)
	for _, r := range rows[:pivotRow] {
		var vars []int32
		for c, v := range cols {
			if r.bits[c/64]&(1<<(c%64)) != 0 {
				vars = append(vars, v)
			}
		}
		switch len(vars) {
		case 0:
			if r.rhs {
				return false
			}
		case 1:
			// v must equal rhs.
			units = append(units, mkLit(vars[0], !r.rhs))
		default:
			kept = append(kept, &xorClause{vars: vars, rhs: r.rhs, w: [2]int{0, 1}})
		}
	}
	// Dependent rows (beyond pivotRow) are all-zero with rhs folded in;
	// an inconsistent dependent row shows up as 0 = 1.
	for _, r := range rows[pivotRow:] {
		if r.rhs {
			return false
		}
	}

	// Swap the reduced system in wholesale: new rows, fresh watch
	// lists. The discarded pre-reduction rows are tagged dead so any
	// watch-list entry that survived the rebuild (none should today,
	// but a stale pointer must fail closed, not resurrect a dropped
	// row) is purged on its next visit instead of propagating a
	// superseded constraint or pinning the row's memory alive. Stale
	// xor reasons of level-0 literals are cleared for the same reason —
	// they are never dereferenced for level-0 assignments, but they
	// must not outlive the rows they point at.
	for _, x := range s.xors {
		x.dead = true
	}
	s.xors = kept
	s.xorGen++
	s.gaussGen = s.xorGen
	s.xorWatches = make([][]*xorClause, s.numVars)
	for _, x := range kept {
		s.xorWatches[x.vars[0]] = append(s.xorWatches[x.vars[0]], x)
		s.xorWatches[x.vars[1]] = append(s.xorWatches[x.vars[1]], x)
	}
	for v := range s.reasons {
		if s.reasons[v].kind == reasonXor {
			s.reasons[v] = reason{}
		}
	}

	for _, u := range units {
		switch s.valueLit(u) {
		case valTrue:
			continue
		case valFalse:
			return false
		}
		s.Stats.GaussUnits++
		s.uncheckedEnqueue(u, reason{})
	}
	if s.propagate() != nil {
		return false
	}
	s.gaussTrail = len(s.trail)
	return true
}
