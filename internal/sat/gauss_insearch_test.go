package sat

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/gf2"
	"repro/internal/obs"
)

// TestGaussInSearchHiddenUnit mirrors TestGaussDerivesHiddenUnit with
// the in-search propagator: the level-0 pass still runs underneath it,
// and the live matrix must be built.
func TestGaussInSearchHiddenUnit(t *testing.T) {
	s := New(3)
	mustAddXor(t, s, []int{1, 2}, true)
	mustAddXor(t, s, []int{1, 2, 3}, true)
	s.EnableGaussInSearch = true
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if s.Value(3) {
		t.Fatalf("x3 should be forced false by elimination")
	}
	if s.Stats.GaussRuns == 0 {
		t.Fatalf("level-0 elimination never ran")
	}
	if s.Stats.GaussMatrixBuilds == 0 {
		t.Fatalf("in-search matrix never built")
	}
}

// TestGaussInSearchPropagatesMidSearch checks the matrix actually
// extracts implications or conflicts during search: with the clause
// watches absorbed, all parity reasoning for the absorbed rows runs
// through the matrix, so a solved system with surviving wide rows must
// register in-search activity.
func TestGaussInSearchPropagatesMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New(16)
	s.EnableGaussInSearch = true
	for i := 0; i < 10; i++ {
		var vars []int
		for v := 1; v <= 16; v++ {
			if rng.Intn(2) == 0 {
				vars = append(vars, v)
			}
		}
		if len(vars) < 2 {
			vars = []int{1, 2}
		}
		mustAddXor(t, s, vars, rng.Intn(2) == 0)
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if s.Stats.GaussInSearchProps+s.Stats.GaussInSearchConflicts == 0 {
		t.Fatalf("matrix saw no in-search activity (props=%d conflicts=%d)",
			s.Stats.GaussInSearchProps, s.Stats.GaussInSearchConflicts)
	}
}

// TestGaussInSearchModelCountEquivalence compares projected model
// counts three ways — plain watches, level-0 Gauss, in-search Gauss —
// over random XOR systems mixed with CNF clauses. Model enumeration
// stresses retraction: every blocking clause restarts the search
// against the same live matrix.
func TestGaussInSearchModelCountEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 30; round++ {
		n := 5 + rng.Intn(5)
		rows := 1 + rng.Intn(n)
		type xr struct {
			vars []int
			rhs  bool
		}
		var xrs []xr
		for i := 0; i < rows; i++ {
			var vars []int
			for v := 1; v <= n; v++ {
				if rng.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
			if len(vars) == 0 {
				vars = []int{1 + rng.Intn(n)}
			}
			xrs = append(xrs, xr{vars, rng.Intn(2) == 0})
		}
		var cls [][]int
		for i := 0; i < 2; i++ {
			a := 1 + rng.Intn(n)
			b := 1 + rng.Intn(n)
			cls = append(cls, []int{a, -b})
		}
		build := func(mode int) *Solver {
			s := New(n)
			switch mode {
			case 1:
				s.EnableGauss = true
			case 2:
				s.EnableGaussInSearch = true
			}
			for _, x := range xrs {
				mustAddXor(t, s, x.vars, x.rhs)
			}
			for _, c := range cls {
				mustAdd(t, s, c...)
			}
			return s
		}
		proj := make([]int, n)
		for i := range proj {
			proj[i] = i + 1
		}
		var counts [3]int
		for mode := 0; mode < 3; mode++ {
			nM, ok, err := build(mode).CountModels(proj, 0)
			if err != nil || !ok {
				t.Fatalf("round %d mode %d: ok=%v err=%v", round, mode, ok, err)
			}
			counts[mode] = nM
		}
		if counts[0] != counts[1] || counts[0] != counts[2] {
			t.Fatalf("round %d: plain %d, gauss0 %d, insearch %d",
				round, counts[0], counts[1], counts[2])
		}
	}
}

// TestGaussInSearchDeterministic locks in counter reproducibility for
// the in-search engine: two identical solvers must produce identical
// Stats, including the new in-search counters.
func TestGaussInSearchDeterministic(t *testing.T) {
	build := func() *Solver {
		s := New(12)
		s.EnableGaussInSearch = true
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 8; i++ {
			var vars []int
			for v := 1; v <= 12; v++ {
				if rng.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
			if len(vars) == 0 {
				vars = []int{1}
			}
			mustAddXor(t, s, vars, rng.Intn(2) == 0)
		}
		mustAdd(t, s, 1, 2, 3)
		return s
	}
	a, b := build(), build()
	if stA, stB := a.Solve(), b.Solve(); stA != stB {
		t.Fatalf("status %v vs %v", stA, stB)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestGaussInSearchCloneWarm checks that a clone taken after a solve —
// matrix built, possibly combined by the search — answers assumption
// queries identically to a cold solver on the same system, and that
// the clone and its origin do not share mutable matrix state.
func TestGaussInSearchCloneWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 10
	type xr struct {
		vars []int
		rhs  bool
	}
	var xrs []xr
	for i := 0; i < 7; i++ {
		var vars []int
		for v := 1; v <= n; v++ {
			if rng.Intn(2) == 0 {
				vars = append(vars, v)
			}
		}
		if len(vars) < 2 {
			vars = []int{1, 2}
		}
		xrs = append(xrs, xr{vars, rng.Intn(2) == 0})
	}
	warm := New(n)
	warm.EnableGaussInSearch = true
	cold := New(n)
	for _, x := range xrs {
		mustAddXor(t, warm, x.vars, x.rhs)
		mustAddXor(t, cold, x.vars, x.rhs)
	}
	if st := warm.Solve(); st != Sat {
		t.Skipf("system unsat under seed, nothing to clone: %v", st)
	}
	c := warm.Clone()
	for q := 0; q < 20; q++ {
		var assumps []int
		for v := 1; v <= n; v++ {
			if rng.Intn(3) == 0 {
				if rng.Intn(2) == 0 {
					assumps = append(assumps, v)
				} else {
					assumps = append(assumps, -v)
				}
			}
		}
		want := cold.SolveAssuming(assumps)
		if got := c.SolveAssuming(assumps); got != want {
			t.Fatalf("query %d (%v): clone %v, cold %v", q, assumps, got, want)
		}
		// The origin must answer too: clone and origin search the same
		// matrix independently.
		if got := warm.SolveAssuming(assumps); got != want {
			t.Fatalf("query %d (%v): origin %v, cold %v", q, assumps, got, want)
		}
	}
}

// TestGaussReductionNotSkippedAfterAdd is the regression test for the
// staleness bug: the old check compared row COUNTS, which a harvest
// plus a later AddXorClause can leave unchanged while the row set
// differs. The generation counter must force a re-reduction after any
// AddXorClause, and still skip when nothing changed.
func TestGaussReductionNotSkippedAfterAdd(t *testing.T) {
	s := New(3)
	s.EnableGauss = true
	mustAddXor(t, s, []int{1, 2}, true)
	mustAddXor(t, s, []int{1, 2, 3}, true)
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	runs := s.Stats.GaussRuns
	if runs == 0 {
		t.Fatalf("elimination never ran")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("re-solve status %v", st)
	}
	if s.Stats.GaussRuns != runs {
		t.Fatalf("unchanged system was re-reduced (%d -> %d runs)", runs, s.Stats.GaussRuns)
	}
	// The harvest left one reduced row, matching the count the old
	// length check recorded; the new row contradicts it and must not be
	// silently skipped.
	mustAddXor(t, s, []int{1, 2}, false)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("contradicting row ignored: %v", st)
	}
	if s.Stats.GaussRuns <= runs {
		t.Fatalf("changed system skipped re-reduction (%d runs)", s.Stats.GaussRuns)
	}
}

// TestGaussRunsZeroWithoutXorRows is the regression test for the
// counter bug: a solver with no parity rows must report zero Gauss
// runs, both in Stats and in the published obs snapshot.
func TestGaussRunsZeroWithoutXorRows(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(4)
	s.EnableGauss = true
	s.Obs = reg
	mustAdd(t, s, 1, 2)
	mustAdd(t, s, -1, 3)
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if s.Stats.GaussRuns != 0 {
		t.Fatalf("GaussRuns = %d with no parity rows", s.Stats.GaussRuns)
	}
	if got := reg.Snapshot().Counters[MetricGaussRuns]; got != 0 {
		t.Fatalf("%s = %d with no parity rows", MetricGaussRuns, got)
	}
}

// TestXorWatchHygieneAcrossReuse is the regression test for stale
// watch entries: across many AddXorClause/Solve cycles on one solver,
// no watch list may hold a dead (harvest-discarded) row, and the total
// entry count must stay proportional to the live row set rather than
// the session's age.
func TestXorWatchHygieneAcrossReuse(t *testing.T) {
	s := New(24)
	s.EnableGauss = true
	rng := rand.New(rand.NewSource(7))
	for cycle := 0; cycle < 60; cycle++ {
		var vars []int
		for v := 1; v <= 24; v++ {
			if rng.Intn(3) == 0 {
				vars = append(vars, v)
			}
		}
		if len(vars) < 2 {
			vars = []int{1, 2}
		}
		mustAddXor(t, s, vars, rng.Intn(2) == 0)
		if st := s.Solve(); st == Unsat {
			break // random rows eventually refute; hygiene up to here is what matters
		}
		total, dead := 0, 0
		for _, ws := range s.xorWatches {
			for _, x := range ws {
				total++
				if x.dead {
					dead++
				}
			}
		}
		if dead != 0 {
			t.Fatalf("cycle %d: %d watch entries point at dead rows", cycle, dead)
		}
		if max := 2*len(s.xors) + 256; total > max {
			t.Fatalf("cycle %d: %d watch entries for %d rows (cap %d)", cycle, total, len(s.xors), max)
		}
	}
}

// buildGF2Reference encodes the XOR system plus assumption unit rows
// as an A·x = y instance for internal/gf2, the algebraic oracle of the
// differential hammer.
func buildGF2Reference(masks []uint, rhs []bool, n int, assumps []int) (*gf2.Matrix, bitvec.Vector) {
	m := gf2.NewMatrix(len(masks)+len(assumps), n)
	y := bitvec.New(len(masks) + len(assumps))
	for i, mask := range masks {
		for v := 0; v < n; v++ {
			if mask&(1<<uint(v)) != 0 {
				m.Set(i, v, true)
			}
		}
		y.Set(i, rhs[i])
	}
	for i, a := range assumps {
		v, val := a, true
		if v < 0 {
			v, val = -v, false
		}
		m.Set(len(masks)+i, v-1, true)
		y.Set(len(masks)+i, val)
	}
	return m, y
}

// TestGaussDifferentialHammer solves seeded random GF(2) systems four
// ways — plain XOR watches, level-0 Gauss, in-search Gauss, and
// internal/gf2 elimination — under batches of assumption queries. All
// four must agree on sat/unsat, and every SAT model must satisfy every
// parity row and assumption. Run with -race in CI.
func TestGaussDifferentialHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(1909))
	names := []string{"plain", "gauss0", "insearch"}
	for round := 0; round < 40; round++ {
		n := 6 + rng.Intn(10)
		rows := 2 + rng.Intn(n)
		masks := make([]uint, 0, rows)
		rhs := make([]bool, 0, rows)
		for i := 0; i < rows; i++ {
			mask := uint(rng.Intn(1 << uint(n)))
			if mask == 0 {
				mask = 1 << uint(rng.Intn(n))
			}
			masks = append(masks, mask)
			rhs = append(rhs, rng.Intn(2) == 0)
		}
		solvers := make([]*Solver, 3)
		for mode := range solvers {
			s := New(n)
			switch mode {
			case 1:
				s.EnableGauss = true
			case 2:
				s.EnableGaussInSearch = true
			}
			for i, mask := range masks {
				var vars []int
				for v := 0; v < n; v++ {
					if mask&(1<<uint(v)) != 0 {
						vars = append(vars, v+1)
					}
				}
				mustAddXor(t, s, vars, rhs[i])
			}
			solvers[mode] = s
		}
		for q := 0; q < 8; q++ {
			var assumps []int
			if q > 0 { // first query probes the unconstrained system
				for v := 1; v <= n; v++ {
					if rng.Intn(4) == 0 {
						if rng.Intn(2) == 0 {
							assumps = append(assumps, v)
						} else {
							assumps = append(assumps, -v)
						}
					}
				}
			}
			m, y := buildGF2Reference(masks, rhs, n, assumps)
			want := Unsat
			if _, ok := m.Solve(y); ok {
				want = Sat
			}
			for si, s := range solvers {
				st := s.SolveAssuming(assumps)
				if st != want {
					t.Fatalf("round %d query %d (%v): %s %v, gf2 %v",
						round, q, assumps, names[si], st, want)
				}
				if st != Sat {
					continue
				}
				for i, mask := range masks {
					parity := false
					for v := 0; v < n; v++ {
						if mask&(1<<uint(v)) != 0 && s.Value(v+1) {
							parity = !parity
						}
					}
					if parity != rhs[i] {
						t.Fatalf("round %d query %d: %s model violates row %d",
							round, q, names[si], i)
					}
				}
				for _, a := range assumps {
					v, val := a, true
					if v < 0 {
						v, val = -v, false
					}
					if s.Value(v) != val {
						t.Fatalf("round %d query %d: %s model drops assumption %d",
							round, q, names[si], a)
					}
				}
			}
		}
	}
}

// FuzzXorSystem fuzzes random parity systems through the three solver
// configurations and the gf2 oracle. Each row is two bytes: a variable
// bitmask (low 13 bits) and the rhs in the top bit.
func FuzzXorSystem(f *testing.F) {
	f.Add([]byte{5, 0b00011, 0x80, 0b00110, 0x00})
	f.Add([]byte{8, 0xFF, 0x80, 0x0F, 0x00, 0xF0, 0x81})
	f.Add([]byte{3, 0b011, 0x80, 0b011, 0x00}) // contradiction
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := int(data[0]%12) + 2
		body := data[1:]
		if len(body) > 32 {
			body = body[:32]
		}
		var masks []uint
		var rhs []bool
		for i := 0; i+1 < len(body); i += 2 {
			mask := (uint(body[i]) | uint(body[i+1]&0x1F)<<8) & (1<<uint(n) - 1)
			if mask == 0 {
				continue
			}
			masks = append(masks, mask)
			rhs = append(rhs, body[i+1]&0x80 != 0)
		}
		if len(masks) == 0 {
			return
		}
		m, y := buildGF2Reference(masks, rhs, n, nil)
		want := Unsat
		if _, ok := m.Solve(y); ok {
			want = Sat
		}
		for mode := 0; mode < 3; mode++ {
			s := New(n)
			switch mode {
			case 1:
				s.EnableGauss = true
			case 2:
				s.EnableGaussInSearch = true
			}
			for i, mask := range masks {
				var vars []int
				for v := 0; v < n; v++ {
					if mask&(1<<uint(v)) != 0 {
						vars = append(vars, v+1)
					}
				}
				if err := s.AddXorClause(vars, rhs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if st := s.Solve(); st != want {
				t.Fatalf("mode %d: %v, gf2 %v (n=%d rows=%d)", mode, st, want, n, len(masks))
			}
			if want != Sat {
				continue
			}
			for i, mask := range masks {
				parity := false
				for v := 0; v < n; v++ {
					if mask&(1<<uint(v)) != 0 && s.Value(v+1) {
						parity = !parity
					}
				}
				if parity != rhs[i] {
					t.Fatalf("mode %d: model violates row %d", mode, i)
				}
			}
		}
	})
}
