package sat

import (
	"strings"
	"testing"
)

// FuzzParseDimacs ensures arbitrary text never panics the parser and
// that accepted formulas solve without crashing.
func FuzzParseDimacs(f *testing.F) {
	f.Add("p cnf 3 2\n1 -2 0\nx2 3 0\n")
	f.Add("p cnf 1 1\n1 0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, doc string) {
		s, err := ParseDimacs(strings.NewReader(doc))
		if err != nil {
			return
		}
		s.MaxConflicts = 1000
		_ = s.Solve()
	})
}
