package sat

// varHeap is a max-heap of variables ordered by VSIDS activity, with a
// position index for O(log n) decrease/increase-key. Ties break toward
// the lower variable index so runs are deterministic.
type varHeap struct {
	act  *[]float64
	heap []int32
	pos  []int32 // pos[v] = index in heap, or -1
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) less(a, b int32) bool {
	aa, ab := (*h.act)[a], (*h.act)[b]
	if aa != ab {
		return aa > ab
	}
	return a < b
}

func (h *varHeap) inHeap(v int32) bool {
	return int(v) < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) insert(v int32) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
	if h.pos[v] >= 0 {
		return
	}
	h.pos[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) removeMax() int32 {
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.pos[top] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.pos[last] = 0
		h.down(0)
	}
	return top
}

// bumped restores heap order after variable v's activity increased.
func (h *varHeap) bumped(v int32) {
	if h.inHeap(v) {
		h.up(int(h.pos[v]))
	}
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.pos[h.heap[i]] = int32(i)
		i = p
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.less(h.heap[c+1], h.heap[c]) {
			c++
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.pos[h.heap[i]] = int32(i)
		i = c
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}

// rebuild re-heapifies after a global activity rescale.
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}
