package sat

import (
	"time"

	"repro/internal/obs"
)

// Metric names exported by the solver. Counters are deterministic for
// a deterministic search (they mirror Stats exactly); the histograms
// carry wall-clock latencies and are not.
const (
	MetricDecisions     = "sat.decisions"
	MetricPropagations  = "sat.propagations"
	MetricConflicts     = "sat.conflicts"
	MetricRestarts      = "sat.restarts"
	MetricLearned       = "sat.learned"
	MetricLearnedPruned = "sat.learned_pruned"
	MetricLearnedLits   = "sat.learned_lits"
	MetricXorProps      = "sat.xor_props"
	MetricSolveSat      = "sat.solve.sat"
	MetricSolveUnsat    = "sat.solve.unsat"
	MetricSolveUnknown  = "sat.solve.unknown"
	MetricSolveNS       = "sat.solve.ns"
	MetricSolveCalls    = "sat.solve.calls"
	MetricEnumModels    = "sat.enumerate.models"
	// Incremental-solving metrics: SolveAssuming calls, in-solver XOR
	// Gaussian eliminations and the level-0 units they derived, and a
	// gauge of learned clauses retained across calls in a reused solver.
	MetricAssumptionSolves = "sat.solve.assuming"
	MetricGaussRuns        = "sat.gauss.runs"
	MetricGaussUnits       = "sat.gauss.units"
	MetricLearnedRetained  = "sat.learned.retained"

	// In-search Gauss metrics: implications and conflicts extracted from
	// the live matrix mid-search, and matrix (re)builds at level 0.
	MetricGaussInSearchProps     = "sat.gauss.insearch.props"
	MetricGaussInSearchConflicts = "sat.gauss.insearch.conflicts"
	MetricGaussMatrixBuilds      = "sat.gauss.insearch.builds"

	// Parallel-driver metrics: cube fan-out, sibling cancellations and
	// whole-call latency of the cube-split engines.
	MetricCubes          = "sat.parallel.cubes"
	MetricCubeInterrupts = "sat.parallel.interrupts"
	SpanParallelEnum     = "sat.parallel.enumerate"
	SpanParallelFirst    = "sat.parallel.first"
)

// DeterministicCounters lists the solver counters that must be
// identical across repeated runs of the same seeded instance and
// across the serial vs 1-worker-parallel drivers — the cross-oracle
// invariant the metrics-driven test suite asserts on. Latency
// histograms and call counters are deliberately absent.
var DeterministicCounters = []string{
	MetricDecisions,
	MetricPropagations,
	MetricConflicts,
	MetricRestarts,
	MetricLearned,
	MetricLearnedPruned,
	MetricLearnedLits,
	MetricXorProps,
}

// obsInstruments caches the resolved instrument pointers for one
// registry, so the per-Solve flush does no map lookups.
type obsInstruments struct {
	reg *obs.Registry

	decisions     *obs.Counter
	propagations  *obs.Counter
	conflicts     *obs.Counter
	restarts      *obs.Counter
	learned       *obs.Counter
	learnedPruned *obs.Counter
	learnedLits   *obs.Counter
	xorProps      *obs.Counter

	solveSat     *obs.Counter
	solveUnsat   *obs.Counter
	solveUnknown *obs.Counter
	solveCalls   *obs.Counter
	solveNS      *obs.Histogram

	assumptionSolves *obs.Counter
	gaussRuns        *obs.Counter
	gaussUnits       *obs.Counter
	learnedRetained  *obs.Gauge

	gaussInSearchProps     *obs.Counter
	gaussInSearchConflicts *obs.Counter
	gaussMatrixBuilds      *obs.Counter
}

// instruments returns the cached instrument set for the solver's
// current registry, rebuilding it when SetObserver changed the
// registry. Must only be called with s.Obs != nil.
func (s *Solver) instruments() *obsInstruments {
	if s.obsCache != nil && s.obsCache.reg == s.Obs {
		return s.obsCache
	}
	r := s.Obs
	s.obsCache = &obsInstruments{
		reg:           r,
		decisions:     r.Counter(MetricDecisions),
		propagations:  r.Counter(MetricPropagations),
		conflicts:     r.Counter(MetricConflicts),
		restarts:      r.Counter(MetricRestarts),
		learned:       r.Counter(MetricLearned),
		learnedPruned: r.Counter(MetricLearnedPruned),
		learnedLits:   r.Counter(MetricLearnedLits),
		xorProps:      r.Counter(MetricXorProps),
		solveSat:      r.Counter(MetricSolveSat),
		solveUnsat:    r.Counter(MetricSolveUnsat),
		solveUnknown:  r.Counter(MetricSolveUnknown),
		solveCalls:    r.Counter(MetricSolveCalls),
		solveNS:       r.Histogram(MetricSolveNS),

		assumptionSolves: r.Counter(MetricAssumptionSolves),
		gaussRuns:        r.Counter(MetricGaussRuns),
		gaussUnits:       r.Counter(MetricGaussUnits),
		learnedRetained:  r.Gauge(MetricLearnedRetained),

		gaussInSearchProps:     r.Counter(MetricGaussInSearchProps),
		gaussInSearchConflicts: r.Counter(MetricGaussInSearchConflicts),
		gaussMatrixBuilds:      r.Counter(MetricGaussMatrixBuilds),
	}
	return s.obsCache
}

// flushObs publishes the counter deltas accumulated between before and
// the current Stats, plus the call's latency and outcome. The window
// is Solve-entry to Solve-exit, so construction-time propagations
// (clause addition) stay out of the published counters — that is what
// makes the serial and cloned-worker paths publish identical numbers.
func (s *Solver) flushObs(before Stats, d time.Duration, st Status) {
	in := s.instruments()
	after := s.Stats
	in.decisions.Add(after.Decisions - before.Decisions)
	in.propagations.Add(after.Propagations - before.Propagations)
	in.conflicts.Add(after.Conflicts - before.Conflicts)
	in.restarts.Add(after.Restarts - before.Restarts)
	in.learned.Add(after.Learned - before.Learned)
	in.learnedPruned.Add(after.LearnedPruned - before.LearnedPruned)
	in.learnedLits.Add(after.LearnedLits - before.LearnedLits)
	in.xorProps.Add(after.XorProps - before.XorProps)
	in.assumptionSolves.Add(after.AssumptionSolves - before.AssumptionSolves)
	in.gaussRuns.Add(after.GaussRuns - before.GaussRuns)
	in.gaussUnits.Add(after.GaussUnits - before.GaussUnits)
	in.gaussInSearchProps.Add(after.GaussInSearchProps - before.GaussInSearchProps)
	in.gaussInSearchConflicts.Add(after.GaussInSearchConflicts - before.GaussInSearchConflicts)
	in.gaussMatrixBuilds.Add(after.GaussMatrixBuilds - before.GaussMatrixBuilds)
	// The learned-clause DB carried into the NEXT call of a reused
	// solver is exactly what survives this one.
	in.learnedRetained.Set(int64(len(s.learnts)))
	in.solveCalls.Inc()
	in.solveNS.ObserveDuration(d)
	switch st {
	case Sat:
		in.solveSat.Inc()
	case Unsat:
		in.solveUnsat.Inc()
	default:
		in.solveUnknown.Inc()
	}
}
