package sat

import (
	"math/rand"
	"testing"
)

// TestGaussDerivesHiddenUnit checks that elimination finds a forced
// variable watch propagation alone cannot see: x1^x2 = 1 and
// x1^x2^x3 = 1 sum to x3 = 0, but each row keeps two unassigned
// watches so neither propagates on its own.
func TestGaussDerivesHiddenUnit(t *testing.T) {
	s := New(3)
	mustAddXor(t, s, []int{1, 2}, true)
	mustAddXor(t, s, []int{1, 2, 3}, true)
	s.EnableGauss = true
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if s.Value(3) {
		t.Fatalf("x3 should be forced false by elimination")
	}
	if s.Stats.GaussRuns == 0 {
		t.Fatalf("elimination never ran")
	}
	if s.Stats.GaussUnits == 0 {
		t.Fatalf("elimination derived no units")
	}
}

func TestGaussDetectsInconsistency(t *testing.T) {
	s := New(2)
	mustAddXor(t, s, []int{1, 2}, false)
	mustAddXor(t, s, []int{1, 2}, true)
	s.EnableGauss = true
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v, want Unsat", st)
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Unsat not sticky: %v", st)
	}
}

// TestGaussModelCountEquivalence compares full projected model counts
// with and without in-solver elimination over random XOR systems mixed
// with a few CNF clauses.
func TestGaussModelCountEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 30; round++ {
		n := 5 + rng.Intn(5)
		rows := 1 + rng.Intn(n)
		type xr struct {
			vars []int
			rhs  bool
		}
		var xrs []xr
		for i := 0; i < rows; i++ {
			var vars []int
			for v := 1; v <= n; v++ {
				if rng.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
			if len(vars) == 0 {
				vars = []int{1 + rng.Intn(n)}
			}
			xrs = append(xrs, xr{vars, rng.Intn(2) == 0})
		}
		var cls [][]int
		for i := 0; i < 2; i++ {
			a := 1 + rng.Intn(n)
			b := 1 + rng.Intn(n)
			cls = append(cls, []int{a, -b})
		}
		build := func(gauss bool) *Solver {
			s := New(n)
			s.EnableGauss = gauss
			for _, x := range xrs {
				mustAddXor(t, s, x.vars, x.rhs)
			}
			for _, c := range cls {
				mustAdd(t, s, c...)
			}
			return s
		}
		proj := make([]int, n)
		for i := range proj {
			proj[i] = i + 1
		}
		plain := build(false)
		gauss := build(true)
		nPlain, okPlain, err1 := plain.CountModels(proj, 0)
		nGauss, okGauss, err2 := gauss.CountModels(proj, 0)
		if err1 != nil || err2 != nil {
			t.Fatalf("round %d: errors %v / %v", round, err1, err2)
		}
		if !okPlain || !okGauss || nPlain != nGauss {
			t.Fatalf("round %d: plain %d (done=%v) vs gauss %d (done=%v)",
				round, nPlain, okPlain, nGauss, okGauss)
		}
	}
}

// TestGaussAssumingEquivalence runs assumption queries against the
// same XOR system with elimination on and off.
func TestGaussAssumingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 20; round++ {
		n := 6 + rng.Intn(4)
		var sys [][]int
		var rhs []bool
		for i := 0; i < n-2; i++ {
			var vars []int
			for v := 1; v <= n; v++ {
				if rng.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
			if len(vars) == 0 {
				continue
			}
			sys = append(sys, vars)
			rhs = append(rhs, rng.Intn(2) == 0)
		}
		plain, gauss := New(n), New(n)
		gauss.EnableGauss = true
		for i, vars := range sys {
			mustAddXor(t, plain, vars, rhs[i])
			mustAddXor(t, gauss, vars, rhs[i])
		}
		for q := 0; q < 10; q++ {
			var assumps []int
			for v := 1; v <= n; v++ {
				if rng.Intn(3) == 0 {
					if rng.Intn(2) == 0 {
						assumps = append(assumps, v)
					} else {
						assumps = append(assumps, -v)
					}
				}
			}
			a := plain.SolveAssuming(assumps)
			b := gauss.SolveAssuming(assumps)
			if a != b {
				t.Fatalf("round %d query %d (%v): plain %v, gauss %v", round, q, assumps, a, b)
			}
		}
	}
}

// TestGaussDeterministic asserts elimination and the search after it
// are reproducible: two identical solvers produce identical counters.
func TestGaussDeterministic(t *testing.T) {
	build := func() *Solver {
		s := New(12)
		s.EnableGauss = true
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 8; i++ {
			var vars []int
			for v := 1; v <= 12; v++ {
				if rng.Intn(2) == 0 {
					vars = append(vars, v)
				}
			}
			if len(vars) == 0 {
				vars = []int{1}
			}
			mustAddXor(t, s, vars, rng.Intn(2) == 0)
		}
		mustAdd(t, s, 1, 2, 3)
		return s
	}
	a, b := build(), build()
	stA, stB := a.Solve(), b.Solve()
	if stA != stB {
		t.Fatalf("status %v vs %v", stA, stB)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestGaussCloneAfterElimination checks a clone taken after an
// elimination carries the reduced system faithfully.
func TestGaussCloneAfterElimination(t *testing.T) {
	s := New(3)
	mustAddXor(t, s, []int{1, 2}, true)
	mustAddXor(t, s, []int{1, 2, 3}, true)
	s.EnableGauss = true
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	c := s.Clone()
	if st := c.SolveAssuming([]int{3}); st != Unsat {
		t.Fatalf("clone lost reduced row x3=0: %v", st)
	}
	if st := c.SolveAssuming([]int{-3}); st != Sat {
		t.Fatalf("clone over-constrained: %v", st)
	}
}

func mustAddXor(t *testing.T, s *Solver, vars []int, rhs bool) {
	t.Helper()
	if err := s.AddXorClause(vars, rhs); err != nil {
		t.Fatal(err)
	}
}
