package sat

import (
	"runtime"
	"sort"
	"sync"
)

// Model is a projected satisfying assignment as delivered by the
// parallel drivers: Model[i] is the value of the i-th projection
// variable.
type Model []bool

// lessModel orders models lexicographically (false < true), the
// canonical order the parallel drivers merge under so that results do
// not depend on worker count or scheduling.
func lessModel(a, b Model) bool {
	for i := range a {
		if a[i] != b[i] {
			return b[i]
		}
	}
	return false
}

// SortModels sorts models into the canonical lexicographic order.
func SortModels(ms []Model) {
	sort.Slice(ms, func(i, j int) bool { return lessModel(ms[i], ms[j]) })
}

// ParallelOptions tunes the cube-split drivers.
type ParallelOptions struct {
	// Workers is the solver pool size; <= 0 means runtime.GOMAXPROCS.
	Workers int
	// MaxCubeVars caps the number of split variables (the number of
	// cubes is 2^vars); <= 0 means the default of 8 (256 cubes).
	MaxCubeVars int
}

func (o ParallelOptions) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o ParallelOptions) maxCubeVars() int {
	if o.MaxCubeVars <= 0 {
		return 8
	}
	return o.MaxCubeVars
}

// pickCubeVars selects up to n projection variables to split the
// search space on, preferring variables that occur in many clauses and
// parity rows — the static analogue of branching on high-activity
// variables (activities are all zero before the first solve).
// Variables already assigned at level 0 are skipped; ties break toward
// the lower variable index so the cube set is deterministic.
func pickCubeVars(s *Solver, projection []int, n int) []int {
	if n <= 0 {
		return nil
	}
	occ := make(map[int32]int, len(projection))
	inProj := make(map[int32]bool, len(projection))
	for _, v := range projection {
		if v >= 1 && v <= s.numVars && s.assigns[v-1] == valUnassigned {
			inProj[int32(v-1)] = true
		}
	}
	count := func(v int32) {
		if inProj[v] {
			occ[v]++
		}
	}
	for _, c := range s.clauses {
		for _, l := range c.lits {
			count(l.varIdx())
		}
	}
	for _, x := range s.xors {
		for _, v := range x.vars {
			count(v)
		}
	}
	cands := make([]int32, 0, len(inProj))
	for v := range inProj {
		cands = append(cands, v)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if occ[a] != occ[b] {
			return occ[a] > occ[b]
		}
		return a < b
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]int, len(cands))
	for i, v := range cands {
		out[i] = int(v) + 1
	}
	return out
}

// cubeLits returns the assumption prefix of cube i over the split
// variables: bit j of i clear means vars[j] is asserted true, set
// means false. Cubes enumerate all 2^len(vars) sign combinations, so
// they partition the search space — models found in distinct cubes are
// distinct by construction.
func cubeLits(vars []int, i int) []int {
	out := make([]int, len(vars))
	for j, v := range vars {
		if i&(1<<j) != 0 {
			out[j] = -v
		} else {
			out[j] = v
		}
	}
	return out
}

// cubePlan decides the split degree for the instance: enough cubes to
// keep every worker busy with headroom for load imbalance, bounded by
// the available split variables.
func cubePlan(s *Solver, projection []int, opts ParallelOptions) []int {
	workers := opts.workers()
	if workers <= 1 {
		return nil
	}
	d := 1
	for 1<<d < 2*workers && d < opts.maxCubeVars() {
		d++
	}
	return pickCubeVars(s, projection, d)
}

// extractModel reads the solver's current model projected onto the
// given variables.
func extractModel(s *Solver, projection []int) Model {
	m := make(Model, len(projection))
	for i, v := range projection {
		m[i] = s.Value(v)
	}
	return m
}

// ParallelEnumerate enumerates the models of s projected onto
// projection with a pool of cloned solvers, each exhausting a disjoint
// cube of the search space. Unlike EnumerateModels it does not consume
// s: workers solve on clones and s itself is left at decision level 0
// with no blocking clauses added.
//
// The returned models are sorted canonically (lexicographically), so
// for a full enumeration (limit <= 0) the result is identical to a
// serial enumeration regardless of worker count. With limit > 0 each
// cube stops after its first limit models, so the merged result is a
// sorted subset of the full model set that is deterministic for a
// given worker count but may differ between worker counts (different
// cube splits stop at different models).
//
// The status is Unsat when the space was exhausted, Sat when the limit
// truncated it, and Unknown when any cube ran out of conflict budget.
func ParallelEnumerate(s *Solver, projection []int, limit int, opts ParallelOptions) ([]Model, Status) {
	defer s.Obs.StartSpan(SpanParallelEnum).End()
	// base is a private level-0 snapshot: workers clone it concurrently,
	// and cloning a solver at decision level 0 only reads it.
	base := s.Clone()
	cubeVars := cubePlan(base, projection, opts)
	if len(cubeVars) == 0 {
		models, st := serialEnumerate(base, projection, limit)
		if st == Unknown {
			return nil, Unknown
		}
		return models, st
	}
	nCubes := 1 << len(cubeVars)
	s.Obs.Counter(MetricCubes).Add(int64(nCubes))
	workers := opts.workers()
	if workers > nCubes {
		workers = nCubes
	}

	type cubeResult struct {
		models []Model
		st     Status
	}
	results := make([]cubeResult, nCubes)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				cl := base.Clone()
				for _, l := range cubeLits(cubeVars, i) {
					cl.AddClause(l)
				}
				models, st := serialEnumerate(cl, projection, limit)
				results[i] = cubeResult{models: models, st: st}
			}
		}()
	}
	for i := 0; i < nCubes; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	var all []Model
	exhausted := true
	for _, r := range results {
		all = append(all, r.models...)
		if r.st == Unknown {
			return nil, Unknown
		}
		if r.st == Sat {
			exhausted = false // cube hit its local limit
		}
	}
	SortModels(all)
	if limit > 0 && len(all) > limit {
		all = all[:limit]
		exhausted = false
	}
	if exhausted {
		return all, Unsat
	}
	return all, Sat
}

// serialEnumerate drains models from a private solver into canonically
// sorted Model values (the solver is consumed).
func serialEnumerate(s *Solver, projection []int, limit int) ([]Model, Status) {
	var out []Model
	// The budget/interrupt distinction is folded into the Unknown
	// status here; the cube drivers only need exhausted-or-not.
	_, st, _ := s.EnumerateModels(projection, limit, func(map[int]bool) bool {
		out = append(out, extractModel(s, projection))
		return true
	})
	SortModels(out)
	return out, st
}

// ParallelFirst searches for one model of s projected onto projection,
// racing cloned solvers over disjoint cubes and cancelling siblings as
// soon as the winner is decided. The result is deterministic for a
// deterministic per-cube solver: the model of the lowest-indexed
// satisfiable cube is returned, because a cube's siblings are only
// interrupted when a lower-indexed cube has already produced a model.
// Like ParallelEnumerate it does not consume s.
//
// Status Unsat means every cube was refuted (an UNSAT proof of the
// whole instance); Unknown means no model was found and at least one
// cube exhausted its conflict budget.
func ParallelFirst(s *Solver, projection []int, opts ParallelOptions) (Model, Status) {
	defer s.Obs.StartSpan(SpanParallelFirst).End()
	base := s.Clone()
	cubeVars := cubePlan(base, projection, opts)
	if len(cubeVars) == 0 {
		st := base.Solve()
		if st != Sat {
			return nil, st
		}
		return extractModel(base, projection), Sat
	}
	nCubes := 1 << len(cubeVars)
	s.Obs.Counter(MetricCubes).Add(int64(nCubes))
	interrupts := s.Obs.Counter(MetricCubeInterrupts)
	workers := opts.workers()
	if workers > nCubes {
		workers = nCubes
	}

	var (
		mu       sync.Mutex
		active   = map[int]*Solver{} // cube -> running clone
		statuses = make([]Status, nCubes)
		models   = make([]Model, nCubes)
		bestSat  = -1 // lowest satisfiable cube seen so far
		budgeted = false
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				mu.Lock()
				skip := bestSat >= 0 && i > bestSat
				var cl *Solver
				if !skip {
					cl = base.Clone()
					active[i] = cl
				}
				mu.Unlock()
				if skip {
					continue // a lower cube already won
				}
				for _, l := range cubeLits(cubeVars, i) {
					cl.AddClause(l)
				}
				st := cl.Solve()
				mu.Lock()
				delete(active, i)
				statuses[i] = st
				switch st {
				case Sat:
					models[i] = extractModel(cl, projection)
					if bestSat < 0 || i < bestSat {
						bestSat = i
						// Cancel siblings exploring cubes the winner
						// supersedes; lower cubes keep running.
						for j, sib := range active {
							if j > i {
								sib.Interrupt()
								interrupts.Inc()
							}
						}
					}
				case Unknown:
					if !cl.Interrupted() {
						budgeted = true // genuine budget exhaustion
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < nCubes; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	if bestSat >= 0 {
		return models[bestSat], Sat
	}
	if budgeted {
		return nil, Unknown
	}
	return nil, Unsat
}
