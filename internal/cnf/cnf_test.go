package cnf

import (
	"math/rand"
	"testing"

	"repro/internal/sat"
)

// countWithCardinality counts models of an otherwise-empty formula over
// n variables under the given cardinality constraint.
func countModels(t *testing.T, n int, install func(b *Builder, lits []int)) int {
	t.Helper()
	b := NewBuilder(n)
	lits := make([]int, n)
	for i := range lits {
		lits[i] = i + 1
	}
	install(b, lits)
	proj := lits
	cnt, exhausted, _ := b.S.CountModels(proj, 0)
	if !exhausted {
		t.Fatal("enumeration did not exhaust")
	}
	return cnt
}

func binomialRef(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
	}
	return c
}

func sumBinomials(n, lo, hi int) int {
	s := 0
	for k := lo; k <= hi; k++ {
		s += binomialRef(n, k)
	}
	return s
}

func TestAtMostKCounts(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for k := 0; k <= n; k++ {
			got := countModels(t, n, func(b *Builder, lits []int) { b.AtMostK(lits, k) })
			want := sumBinomials(n, 0, k)
			if got != want {
				t.Errorf("AtMost(%d of %d): %d models, want %d", k, n, got, want)
			}
		}
	}
}

func TestAtLeastKCounts(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for k := 0; k <= n+1; k++ {
			got := countModels(t, n, func(b *Builder, lits []int) { b.AtLeastK(lits, k) })
			want := sumBinomials(n, k, n)
			if got != want {
				t.Errorf("AtLeast(%d of %d): %d models, want %d", k, n, got, want)
			}
		}
	}
}

func TestExactlyKCounts(t *testing.T) {
	for n := 1; n <= 8; n++ {
		for k := 0; k <= n; k++ {
			got := countModels(t, n, func(b *Builder, lits []int) { b.ExactlyK(lits, k) })
			want := binomialRef(n, k)
			if got != want {
				t.Errorf("Exactly(%d of %d): %d models, want %d", k, n, got, want)
			}
		}
	}
}

func TestBinomialEncodingsAgree(t *testing.T) {
	for n := 1; n <= 7; n++ {
		for k := 0; k <= n; k++ {
			got := countModels(t, n, func(b *Builder, lits []int) {
				if err := b.ExactlyKBinomial(lits, k); err != nil {
					t.Fatal(err)
				}
			})
			want := binomialRef(n, k)
			if got != want {
				t.Errorf("binomial Exactly(%d of %d): %d, want %d", k, n, got, want)
			}
		}
	}
}

func TestCardinalityOverNegatedLiterals(t *testing.T) {
	// Exactly 2 of {¬x1, ¬x2, ¬x3, ¬x4} true = exactly 2 of x true.
	b := NewBuilder(4)
	b.ExactlyK([]int{-1, -2, -3, -4}, 2)
	cnt, _, _ := b.S.CountModels([]int{1, 2, 3, 4}, 0)
	if cnt != 6 {
		t.Errorf("count %d want 6", cnt)
	}
}

func TestXorCNFMatchesNative(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(8)
		var vars []int
		for v := 1; v <= n; v++ {
			if r.Intn(2) == 1 {
				vars = append(vars, v)
			}
		}
		rhs := r.Intn(2) == 1

		proj := make([]int, n)
		for i := range proj {
			proj[i] = i + 1
		}

		bn := NewBuilder(n)
		bn.AddXor(vars, rhs)
		cn, ok1, _ := bn.S.CountModels(proj, 0)

		bc := NewBuilder(n)
		bc.AddXorCNF(vars, rhs)
		cc, ok2, _ := bc.S.CountModels(proj, 0)

		if !ok1 || !ok2 || cn != cc {
			t.Fatalf("trial %d: native %d (%v) vs cnf %d (%v), vars=%v rhs=%v",
				trial, cn, ok1, cc, ok2, vars, rhs)
		}
	}
}

func TestXorCNFEdgeCases(t *testing.T) {
	// Empty with rhs true: unsat.
	b := NewBuilder(1)
	b.AddXorCNF(nil, true)
	if b.S.Solve() != sat.Unsat {
		t.Error("empty xor rhs=1 should be unsat")
	}
	// Single var.
	b2 := NewBuilder(1)
	b2.AddXorCNF([]int{1}, true)
	if b2.S.Solve() != sat.Sat || !b2.S.Value(1) {
		t.Error("single-var xor")
	}
}

func TestAtLeastMoreThanNUnsat(t *testing.T) {
	b := NewBuilder(3)
	b.AtLeastK([]int{1, 2, 3}, 4)
	if b.S.Solve() != sat.Unsat {
		t.Error("at-least-4-of-3 should be unsat")
	}
}

func TestBinomialRefusesExplosion(t *testing.T) {
	b := NewBuilder(100)
	lits := make([]int, 100)
	for i := range lits {
		lits[i] = i + 1
	}
	if err := b.AtMostKBinomial(lits, 50); err == nil {
		t.Error("expected clause-explosion error")
	}
}

func TestImpliesEquiv(t *testing.T) {
	b := NewBuilder(2)
	b.Implies(1, 2)
	b.AddClause(1)
	if b.S.Solve() != sat.Sat || !b.S.Value(2) {
		t.Error("implication did not propagate")
	}

	b2 := NewBuilder(2)
	b2.Equiv(1, 2)
	cnt, _, _ := b2.S.CountModels([]int{1, 2}, 0)
	if cnt != 2 {
		t.Errorf("equiv model count %d", cnt)
	}
}

func TestCardinalityWithXorInteraction(t *testing.T) {
	// x1^x2^x3^x4 = 0 and exactly 2 true: C(4,2)=6 parity-even... all
	// weight-2 vectors have even parity, so all 6 survive.
	b := NewBuilder(4)
	b.AddXor([]int{1, 2, 3, 4}, false)
	b.ExactlyK([]int{1, 2, 3, 4}, 2)
	cnt, _, _ := b.S.CountModels([]int{1, 2, 3, 4}, 0)
	if cnt != 6 {
		t.Errorf("count %d want 6", cnt)
	}
	// Odd parity with even count: impossible.
	b2 := NewBuilder(4)
	b2.AddXor([]int{1, 2, 3, 4}, true)
	b2.ExactlyK([]int{1, 2, 3, 4}, 2)
	if b2.S.Solve() != sat.Unsat {
		t.Error("odd parity with k=2 should be unsat")
	}
}

func TestXorCutMatchesNative(t *testing.T) {
	// Cutting must preserve the solution set projected onto the
	// original variables, for every cut length.
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(10)
		var vars []int
		for v := 1; v <= n; v++ {
			if r.Intn(3) > 0 {
				vars = append(vars, v)
			}
		}
		rhs := r.Intn(2) == 1
		proj := make([]int, n)
		for i := range proj {
			proj[i] = i + 1
		}

		ref := NewBuilder(n)
		ref.AddXor(vars, rhs)
		want, ok, _ := ref.S.CountModels(proj, 0)
		if !ok {
			t.Fatal("reference enumeration incomplete")
		}

		for _, cut := range []int{3, 4, 5, 8} {
			b := NewBuilder(n)
			b.AddXorCut(vars, rhs, cut)
			got, ok, _ := b.S.CountModels(proj, 0)
			if !ok || got != want {
				t.Fatalf("trial %d cut %d: %d models, want %d (vars=%v rhs=%v)",
					trial, cut, got, want, vars, rhs)
			}
		}
	}
}

func TestXorCutShortPassThrough(t *testing.T) {
	// Constraints within the cut length take the plain path.
	b := NewBuilder(3)
	b.AddXorCut([]int{1, 2, 3}, true, 8)
	if b.S.NumVars() != 3 {
		t.Errorf("aux variables allocated for a short xor: %d vars", b.S.NumVars())
	}
}

func TestXorCutPanicsOnTinyLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(4).AddXorCut([]int{1, 2, 3, 4}, true, 2)
}

func TestAtMostNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBuilder(3).AtMostK([]int{1, 2, 3}, -1)
}

func TestBinomialExactlyError(t *testing.T) {
	b := NewBuilder(80)
	lits := make([]int, 80)
	for i := range lits {
		lits[i] = i + 1
	}
	if err := b.ExactlyKBinomial(lits, 40); err == nil {
		t.Error("explosive exactly-k accepted")
	}
	// The at-least direction alone can also explode.
	b2 := NewBuilder(80)
	if err := b2.AtLeastKBinomial(lits, 40); err == nil {
		t.Error("explosive at-least accepted")
	}
	// Degenerate at-least cases.
	b3 := NewBuilder(3)
	if err := b3.AtLeastKBinomial([]int{1, 2, 3}, 0); err != nil {
		t.Error(err)
	}
	if err := b3.AtLeastKBinomial([]int{1, 2, 3}, 4); err != nil {
		t.Error(err)
	}
	if b3.S.Solve() != sat.Unsat {
		t.Error("at-least-4-of-3 should mark unsat")
	}
}

// TestLadderCounts checks the unasserted counter: every cardinality
// bound expressible as ladder assumptions must count exactly like the
// committed ExactlyK encoding, against the same reusable solver.
func TestLadderCounts(t *testing.T) {
	for n := 1; n <= 8; n++ {
		b := NewBuilder(n)
		lits := make([]int, n)
		for i := range lits {
			lits[i] = i + 1
		}
		outs := b.Ladder(lits, n)
		for k := 0; k <= n; k++ {
			var assumps []int
			if k >= 1 {
				assumps = append(assumps, outs[k-1])
			}
			if k < n {
				assumps = append(assumps, -outs[k])
			}
			got := 0
			_, st, err := b.S.EnumerateAssuming(assumps, lits, 0, func(map[int]bool) bool {
				got++
				return true
			})
			if err != nil || st != sat.Unsat {
				t.Fatalf("n=%d k=%d: st=%v err=%v", n, k, st, err)
			}
			if want := binomialRef(n, k); got != want {
				t.Errorf("Ladder n=%d k=%d: %d models, want %d", n, k, got, want)
			}
		}
	}
}

// TestGuardedBuilder checks Guard-scoped clauses only bind while their
// selector is assumed.
func TestGuardedBuilder(t *testing.T) {
	b := NewBuilder(2)
	sel := b.NewVar()
	b.Guard = sel
	b.AddClause(-1)
	b.AtMostK([]int{1, 2}, 1)
	b.Guard = 0

	if st := b.S.SolveAssuming([]int{1, 2}); st != sat.Sat {
		t.Fatalf("guard leaked without selector: %v", st)
	}
	if st := b.S.SolveAssuming([]int{sel, 1}); st != sat.Unsat {
		t.Fatalf("guarded clause inactive: %v", st)
	}
	if st := b.S.SolveAssuming([]int{sel, -1, 2}); st != sat.Sat {
		t.Fatalf("guarded constraints over-blocking: %v", st)
	}
}
