// Package cnf builds CNF(+XOR) formulas on top of the sat solver. Its
// centerpiece is the compact cardinality encoding the paper relies on:
// the sequential-counter ("LTSEQ") encoding of Sinz (CP 2005), which
// expresses "exactly k of m variables" with O(m·k) auxiliary variables
// and clauses — the naive binomial encoding would need C(m, k+1) +
// C(m, m−k+1) clauses and is provided only as an ablation baseline.
package cnf

import (
	"fmt"

	"repro/internal/sat"
)

// Builder accumulates constraints into an underlying solver and manages
// auxiliary-variable allocation.
type Builder struct {
	// S is the underlying solver; expose it for solving and model
	// queries once the formula is complete.
	S *sat.Solver

	// Guard, when nonzero, is a selector variable prepended (negated)
	// to every clause AddClause emits: the clauses added under the
	// guard only bind while Guard is assumed true via
	// sat.Solver.SolveAssuming. This is how an incremental session
	// encodes optional constraint groups (per-query properties) into
	// one reusable solver. XOR constraints cannot be guarded — parity
	// has no monotone selector form — so AddXor panics under a guard.
	Guard int
}

// NewBuilder returns a Builder over a fresh solver with n problem
// variables (1..n). Auxiliary variables are allocated above n.
func NewBuilder(n int) *Builder {
	return &Builder{S: sat.New(n)}
}

// NewVar allocates a fresh auxiliary variable.
func (b *Builder) NewVar() int { return b.S.NewVar() }

// AddClause adds a disjunction of DIMACS literals. Under a nonzero
// Guard the clause becomes (¬Guard ∨ lits...).
func (b *Builder) AddClause(lits ...int) {
	if b.Guard != 0 {
		guarded := make([]int, 0, len(lits)+1)
		guarded = append(guarded, -b.Guard)
		guarded = append(guarded, lits...)
		if err := b.S.AddClause(guarded...); err != nil {
			panic(fmt.Sprintf("cnf: %v", err))
		}
		return
	}
	if err := b.S.AddClause(lits...); err != nil {
		panic(fmt.Sprintf("cnf: %v", err))
	}
}

// AddXor adds the parity constraint over vars (= rhs) using the
// solver's native XOR clauses. This mirrors CryptoMiniSat's xor-clause
// input that the paper uses for the rows of A·x = TP.
func (b *Builder) AddXor(vars []int, rhs bool) {
	if b.Guard != 0 {
		panic("cnf: AddXor under a Guard — parity constraints cannot be selector-guarded")
	}
	if err := b.S.AddXorClause(vars, rhs); err != nil {
		panic(fmt.Sprintf("cnf: %v", err))
	}
}

// AddXorCut adds the parity constraint over vars (= rhs), cutting long
// constraints into chained segments of at most maxLen variables linked
// by fresh auxiliary variables:
//
//	x1^…^xL^t1 = 0,  t1^x(L+1)^…^t2 = 0,  …,  tk^…^xn = rhs.
//
// Short XOR clauses keep implication reasons — and therefore learned
// clauses — short, which is decisive for solving performance on the
// dense parity rows of A·x = TP (CryptoMiniSat applies the same
// transformation). Solutions projected onto the original variables are
// unchanged: every assignment of the x's extends uniquely to the t's.
func (b *Builder) AddXorCut(vars []int, rhs bool, maxLen int) {
	if maxLen < 3 {
		panic("cnf: AddXorCut needs maxLen >= 3")
	}
	if len(vars) <= maxLen {
		b.AddXor(vars, rhs)
		return
	}
	rest := vars
	carry := 0 // 0 = no carry variable yet
	for len(rest) > 0 {
		seg := make([]int, 0, maxLen+1)
		if carry != 0 {
			seg = append(seg, carry)
		}
		take := maxLen - len(seg)
		if take > len(rest) {
			take = len(rest)
		}
		seg = append(seg, rest[:take]...)
		rest = rest[take:]
		if len(rest) == 0 {
			b.AddXor(seg, rhs)
			return
		}
		carry = b.NewVar()
		seg = append(seg, carry)
		b.AddXor(seg, false) // segment ^ carry = 0, i.e. carry = segment sum
	}
}

// AddXorCNF adds the same parity constraint expanded to plain CNF via a
// chain of Tseitin XOR gates — the ablation baseline quantifying what
// native XOR support buys.
func (b *Builder) AddXorCNF(vars []int, rhs bool) {
	switch len(vars) {
	case 0:
		if rhs {
			b.AddClause() // empty clause: unsatisfiable
		}
		return
	case 1:
		if rhs {
			b.AddClause(vars[0])
		} else {
			b.AddClause(-vars[0])
		}
		return
	}
	// chain = vars[0]; chain = chain ^ vars[i] ...
	chain := vars[0]
	for _, v := range vars[1:] {
		z := b.NewVar()
		b.xorGate(z, chain, v)
		chain = z
	}
	if rhs {
		b.AddClause(chain)
	} else {
		b.AddClause(-chain)
	}
}

// xorGate encodes z <-> a ^ b.
func (b *Builder) xorGate(z, a, x int) {
	b.AddClause(-z, a, x)
	b.AddClause(-z, -a, -x)
	b.AddClause(z, -a, x)
	b.AddClause(z, a, -x)
}

// AtMostK constrains at most k of the literals to be true, using the
// Sinz sequential counter. k < 0 panics; k = 0 forces all literals
// false; k >= len(lits) adds nothing.
func (b *Builder) AtMostK(lits []int, k int) {
	n := len(lits)
	switch {
	case k < 0:
		panic("cnf: AtMostK with negative k")
	case k >= n:
		return
	case k == 0:
		for _, l := range lits {
			b.AddClause(-l)
		}
		return
	}
	// s[i][j] (1-based i in 1..n-1, j in 1..k): the count of true
	// literals among the first i is at least j.
	s := make([][]int, n) // s[i] valid for i in 1..n-1
	for i := 1; i < n; i++ {
		s[i] = make([]int, k+1)
		for j := 1; j <= k; j++ {
			s[i][j] = b.NewVar()
		}
	}
	x := func(i int) int { return lits[i-1] } // 1-based literal access

	b.AddClause(-x(1), s[1][1])
	for j := 2; j <= k; j++ {
		b.AddClause(-s[1][j])
	}
	for i := 2; i < n; i++ {
		b.AddClause(-x(i), s[i][1])
		b.AddClause(-s[i-1][1], s[i][1])
		for j := 2; j <= k; j++ {
			b.AddClause(-x(i), -s[i-1][j-1], s[i][j])
			b.AddClause(-s[i-1][j], s[i][j])
		}
		b.AddClause(-x(i), -s[i-1][k])
	}
	b.AddClause(-x(n), -s[n-1][k])
}

// AtLeastK constrains at least k of the literals to be true with a
// width-k sequential counter: u[i][j] holds iff at least j of the
// first i literals are true. This direct encoding stays O(n·k) — the
// textbook reduction AtMostK(¬lits, n−k) would build a width-(n−k)
// counter, which for the reconstruction problem's small k over large m
// explodes to hundreds of thousands of clauses.
func (b *Builder) AtLeastK(lits []int, k int) {
	n := len(lits)
	switch {
	case k <= 0:
		return
	case k > n:
		b.AddClause() // unsatisfiable
		return
	case k == 1:
		b.AddClause(lits...)
		return
	}
	// u[i][j] for i in 1..n, j in 1..k.
	u := make([][]int, n+1)
	for i := 1; i <= n; i++ {
		u[i] = make([]int, k+1)
		for j := 1; j <= k; j++ {
			u[i][j] = b.NewVar()
		}
	}
	x := func(i int) int { return lits[i-1] }

	// Base row: u[1][1] <-> x1; u[1][j] false for j >= 2.
	b.AddClause(-u[1][1], x(1))
	b.AddClause(u[1][1], -x(1))
	for j := 2; j <= k; j++ {
		b.AddClause(-u[1][j])
	}
	for i := 2; i <= n; i++ {
		for j := 1; j <= k; j++ {
			// Forward: support propagates up.
			b.AddClause(-u[i-1][j], u[i][j])
			if j == 1 {
				b.AddClause(-x(i), u[i][1])
			} else {
				b.AddClause(-x(i), -u[i-1][j-1], u[i][j])
			}
			// Backward: u needs support (prevents vacuous truth).
			b.AddClause(-u[i][j], u[i-1][j], x(i))
			if j > 1 {
				b.AddClause(-u[i][j], u[i-1][j], u[i-1][j-1])
			}
		}
	}
	b.AddClause(u[n][k])
}

// Ladder builds the width-w sequential counter of AtLeastK WITHOUT the
// final assertion and returns its output column: outs[j-1] is a
// variable equivalent to "at least j of lits are true", for j in 1..w.
// Nothing is constrained by the ladder itself — the counter rungs are
// full equivalences — so one ladder serves every cardinality bound up
// to w as assumption literals:
//
//	exactly k  =  assume outs[k-1] (k >= 1) and -outs[k] (k < w)
//
// which is how an incremental session reuses one encoding across
// queries with different logged change counts. w must be in
// [1, len(lits)].
func (b *Builder) Ladder(lits []int, w int) []int {
	n := len(lits)
	if w < 1 || w > n {
		panic(fmt.Sprintf("cnf: Ladder width %d outside [1, %d]", w, n))
	}
	// u[i][j] for i in 1..n, j in 1..w: at least j of the first i.
	u := make([][]int, n+1)
	for i := 1; i <= n; i++ {
		u[i] = make([]int, w+1)
		for j := 1; j <= w; j++ {
			u[i][j] = b.NewVar()
		}
	}
	x := func(i int) int { return lits[i-1] }

	// Base row: u[1][1] <-> x1; u[1][j] false for j >= 2.
	b.AddClause(-u[1][1], x(1))
	b.AddClause(u[1][1], -x(1))
	for j := 2; j <= w; j++ {
		b.AddClause(-u[1][j])
	}
	for i := 2; i <= n; i++ {
		for j := 1; j <= w; j++ {
			// Forward: count >= j propagates into u.
			b.AddClause(-u[i-1][j], u[i][j])
			if j == 1 {
				b.AddClause(-x(i), u[i][1])
			} else {
				b.AddClause(-x(i), -u[i-1][j-1], u[i][j])
			}
			// Backward: u true needs support from the count.
			b.AddClause(-u[i][j], u[i-1][j], x(i))
			if j > 1 {
				b.AddClause(-u[i][j], u[i-1][j], u[i-1][j-1])
			}
		}
	}
	return u[n][1 : w+1]
}

// ExactlyK constrains exactly k of the literals to be true — the
// cardinality constraint of the signal reconstruction problem, where k
// is the logged change count.
func (b *Builder) ExactlyK(lits []int, k int) {
	b.AtMostK(lits, k)
	b.AtLeastK(lits, k)
}

// MaxBinomialClauses caps the clause explosion the naive encodings are
// allowed to produce before they refuse to run.
const MaxBinomialClauses = 2_000_000

// AtMostKBinomial is the naive O(C(n,k+1)) encoding: one clause of
// negations for every (k+1)-subset. It returns an error instead of
// emitting more than MaxBinomialClauses clauses.
func (b *Builder) AtMostKBinomial(lits []int, k int) error {
	n := len(lits)
	if k >= n {
		return nil
	}
	if k < 0 {
		panic("cnf: AtMostKBinomial with negative k")
	}
	if c := binomial(n, k+1); c < 0 || c > MaxBinomialClauses {
		return fmt.Errorf("cnf: binomial at-most-%d over %d literals needs %d clauses", k, n, c)
	}
	subset := make([]int, k+1)
	var rec func(start, depth int) // enumerate (k+1)-subsets
	clause := make([]int, k+1)
	rec = func(start, depth int) {
		if depth == k+1 {
			for i, idx := range subset {
				clause[i] = -lits[idx]
			}
			b.AddClause(clause...)
			return
		}
		for i := start; i < n; i++ {
			subset[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return nil
}

// AtLeastKBinomial is the naive dual: one clause per (n-k+1)-subset.
func (b *Builder) AtLeastKBinomial(lits []int, k int) error {
	n := len(lits)
	if k <= 0 {
		return nil
	}
	if k > n {
		b.AddClause()
		return nil
	}
	neg := make([]int, n)
	for i, l := range lits {
		neg[i] = -l
	}
	return b.AtMostKBinomial(neg, n-k)
}

// ExactlyKBinomial combines both naive directions.
func (b *Builder) ExactlyKBinomial(lits []int, k int) error {
	if err := b.AtMostKBinomial(lits, k); err != nil {
		return err
	}
	return b.AtLeastKBinomial(lits, k)
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c < 0 || c > 1<<40 {
			return -1 // overflow sentinel
		}
	}
	return c
}

// Implies adds a -> b.
func (b *Builder) Implies(a, c int) { b.AddClause(-a, c) }

// Equiv adds a <-> b.
func (b *Builder) Equiv(a, c int) {
	b.AddClause(-a, c)
	b.AddClause(a, -c)
}
