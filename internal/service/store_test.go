package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/logstore"
	"repro/internal/obs"
)

// openTestStore opens a logstore in dir with test-friendly options.
func openTestStore(t testing.TB, dir string) *logstore.Store {
	t.Helper()
	st, rec, err := logstore.Open(dir, logstore.Options{NoSync: true, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Corrupt() {
		t.Fatalf("store recovery reported damage: %v", rec.Errs)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

// TestStoreTeeAndLogsEndpoint: unary wire-log jobs are teed into the
// store under their (device, signal, epoch) identity and GET /v1/logs
// serves both the stream listing and range listings over them.
func TestStoreTeeAndLogsEndpoint(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	_, base, reg := startServer(t, Config{Store: st}, 0)

	wire, _ := testLog(t, 16, 8, 3, 9)
	for i := 0; i < 3; i++ {
		resp, raw := postJSON(t, base+"/v1/reconstruct", map[string]any{
			"encoding": map[string]any{"m": 16, "b": 8},
			"log":      wire,
			"device":   "ecu-7",
			"signal":   "brake_req",
			"epoch_us": 1000 + int64(i),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reconstruct %d: %d: %s", i, resp.StatusCode, raw)
		}
	}
	// An inline TP/K job must NOT tee (there is no wire body to store).
	resp, raw := postJSON(t, base+"/v1/count", map[string]any{
		"encoding": map[string]any{"m": 16, "b": 8},
		"tp":       "00000000", "k": 0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline count: %d: %s", resp.StatusCode, raw)
	}

	if got := reg.Snapshot().Counters[MetricStoreTees]; got != 3 {
		t.Fatalf("%s = %d, want 3", MetricStoreTees, got)
	}

	// Keyless listing.
	httpResp, err := http.Get(base + "/v1/logs")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	var listing logsResponse
	if err := json.Unmarshal(raw, &listing); err != nil {
		t.Fatalf("logs listing: %v: %s", err, raw)
	}
	if len(listing.Keys) != 1 || listing.Keys[0].Device != "ecu-7" || listing.Keys[0].Records != 3 {
		t.Fatalf("listing = %+v, want one ecu-7 stream with 3 records", listing.Keys)
	}
	if listing.Keys[0].MinEpochUS != 1000 || listing.Keys[0].MaxEpochUS != 1002 {
		t.Fatalf("epoch bounds [%d, %d], want [1000, 1002]", listing.Keys[0].MinEpochUS, listing.Keys[0].MaxEpochUS)
	}

	// Range listing with bodies: byte-identical to what was posted.
	httpResp, err = http.Get(base + "/v1/logs?device=ecu-7&signal=brake_req&from_epoch_us=1001&to_epoch_us=1002&include_bodies=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	var ranged logsResponse
	if err := json.Unmarshal(raw, &ranged); err != nil {
		t.Fatalf("logs range: %v: %s", err, raw)
	}
	if len(ranged.Records) != 2 {
		t.Fatalf("range returned %d records, want 2", len(ranged.Records))
	}
	for i, rec := range ranged.Records {
		if rec.M != 16 || rec.B != 8 || rec.Entries != 1 {
			t.Fatalf("record %d header (m=%d b=%d n=%d), want (16, 8, 1)", i, rec.M, rec.B, rec.Entries)
		}
		if !bytes.Equal(rec.Body, wire) {
			t.Fatalf("record %d body not byte-identical to the posted log", i)
		}
	}

	// Missing-signal selection is a 400, and /v1/logs without a store
	// is 404 (the mux never registered it).
	httpResp, err = http.Get(base + "/v1/logs?device=ecu-7")
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("device-only listing: %d, want 400", httpResp.StatusCode)
	}
	_, bare, _ := startServer(t, Config{}, 0)
	httpResp, err = http.Get(bare + "/v1/logs")
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusNotFound {
		t.Fatalf("storeless /v1/logs: %d, want 404", httpResp.StatusCode)
	}
}

// TestStreamTee: streaming-ingest frames are teed under the hello's
// (device, signal) with their stream position, and a re-sent frame
// after a transient error stores exactly once.
func TestStreamTee(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	srv, _, reg := startServer(t, Config{Store: st, StreamAddr: "127.0.0.1:0"}, 0)

	wire, _ := testLog(t, 16, 8, 5)
	sc, err := DialStream(srv.StreamAddr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.Hello(StreamHello{
		Device: "ecu-9", Signal: "clk",
		Encoding: EncodingSpec{M: 16, B: 8},
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		msg, err := sc.SendFrame(wire)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Status != 0 {
			t.Fatalf("frame %d: status %d: %s", i, msg.Status, msg.Error)
		}
	}
	if _, err := sc.End(); err != nil {
		t.Fatal(err)
	}

	recs, err := st.Query(logstore.AllTime("ecu-9", "clk"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("stored %d stream frames, want 2", len(recs))
	}
	for i, rec := range recs {
		if !bytes.Equal(rec.Body, wire) {
			t.Fatalf("frame %d body not byte-identical", i)
		}
		if rec.TraceCycleBase != int64(i) { // one entry per frame
			t.Fatalf("frame %d trace_cycle_base = %d, want %d", i, rec.TraceCycleBase, i)
		}
	}
	if got := reg.Snapshot().Counters[MetricStoreTees]; got != 2 {
		t.Fatalf("%s = %d, want 2", MetricStoreTees, got)
	}
}

// equivCase is one store-vs-body equivalence corpus entry.
type equivCase struct {
	m, b    int
	changes []int
	props   string
	limit   int
	count   bool
}

// equivCorpus is the seeded diffcheck-style corpus: geometry, change
// patterns, properties, limits and count-only all vary.
func equivCorpus() []equivCase {
	return []equivCase{
		{m: 8, b: 6, changes: []int{2}, limit: 8},
		{m: 8, b: 6, changes: []int{2}, limit: 8, count: true},
		{m: 8, b: 6, changes: []int{1, 5}, limit: -1},
		{m: 16, b: 8, changes: []int{3, 9}, limit: 16},
		{m: 16, b: 8, changes: []int{3, 9}, props: "mingap(2)", limit: 16},
		{m: 16, b: 8, changes: []int{}, limit: 4},
		{m: 16, b: 8, changes: []int{0, 7, 12}, limit: -1, count: true},
		{m: 12, b: 8, changes: []int{4, 8}, props: "mingap(3)", limit: 8},
		{m: 12, b: 8, changes: []int{11}, limit: 8},
		{m: 24, b: 10, changes: []int{6, 17}, limit: 8},
		{m: 24, b: 10, changes: []int{6, 17}, limit: 8, count: true},
		{m: 24, b: 10, changes: []int{1, 2, 3}, props: "dk(24,3)", limit: 8},
	}
}

// stripVolatile zeroes the per-request transport flags that may
// legitimately differ between the two paths (cache/coalesce state
// depends on request order, not on the reconstruction).
func stripVolatile(results []entryResponse) []entryResponse {
	out := make([]entryResponse, len(results))
	for i, r := range results {
		r.Cached, r.Coalesced = false, false
		out[i] = r
	}
	return out
}

// TestStoreBodyEquivalence is the store-vs-body satellite: the seeded
// corpus goes through the request-body path once, is teed into the
// store, and POST /v1/query must return bit-identical reconstruction
// results — including across a full server AND store restart on the
// same directory (the -store-dir persistence acceptance criterion).
func TestStoreBodyEquivalence(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	_, base, _ := startServer(t, Config{Store: st}, 0)

	corpus := equivCorpus()
	bodyResults := make([][]entryResponse, len(corpus))
	for i, c := range corpus {
		wire, _ := testLog(t, c.m, c.b, c.changes...)
		endpoint := "/v1/reconstruct"
		if c.count {
			endpoint = "/v1/count"
		}
		resp, raw := postJSON(t, base+endpoint, map[string]any{
			"encoding":   map[string]any{"m": c.m, "b": c.b},
			"log":        wire,
			"properties": c.props,
			"limit":      c.limit,
			"device":     "ecu-equiv",
			"signal":     fmt.Sprintf("case-%02d", i),
			"epoch_us":   int64(10_000 + i),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("case %d body path: %d: %s", i, resp.StatusCode, raw)
		}
		var jr jobResponse
		if err := json.Unmarshal(raw, &jr); err != nil {
			t.Fatal(err)
		}
		bodyResults[i] = stripVolatile(jr.Results)
	}

	queryOnce := func(t *testing.T, base string, when string) {
		for i, c := range corpus {
			endpoint := "/v1/query"
			resp, raw := postJSON(t, base+endpoint, map[string]any{
				"device":     "ecu-equiv",
				"signal":     fmt.Sprintf("case-%02d", i),
				"encoding":   map[string]any{"m": c.m, "b": c.b},
				"properties": c.props,
				"limit":      c.limit,
				"count_only": c.count,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s case %d query path: %d: %s", when, i, resp.StatusCode, raw)
			}
			var qr queryResponse
			if err := json.Unmarshal(raw, &qr); err != nil {
				t.Fatal(err)
			}
			if len(qr.Records) != 1 {
				t.Fatalf("%s case %d: query returned %d records, want 1", when, i, len(qr.Records))
			}
			if qr.Records[0].EpochUS != int64(10_000+i) {
				t.Fatalf("%s case %d: epoch %d, want %d", when, i, qr.Records[0].EpochUS, 10_000+i)
			}
			got := stripVolatile(qr.Records[0].Results)
			if !reflect.DeepEqual(got, bodyResults[i]) {
				t.Fatalf("%s case %d: store path diverges from body path:\nstore: %+v\nbody:  %+v",
					when, i, got, bodyResults[i])
			}
		}
	}
	queryOnce(t, base, "warm")

	// Restart: a fresh store on the same directory behind a fresh
	// server (cold caches, cold sessions) must reproduce the exact
	// same results from disk.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, dir)
	_, base2, _ := startServer(t, Config{Store: st2}, 0)
	queryOnce(t, base2, "restarted")
}

// TestStoreQueryValidation covers /v1/query's failure surface.
func TestStoreQueryValidation(t *testing.T) {
	st := openTestStore(t, t.TempDir())
	_, base, _ := startServer(t, Config{Store: st}, 0)

	resp, _ := postJSON(t, base+"/v1/query", map[string]any{"signal": "s"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing device: %d, want 400", resp.StatusCode)
	}
	// Unknown stream: empty result set, not an error.
	resp, raw := postJSON(t, base+"/v1/query", map[string]any{"device": "nope", "signal": "s"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unknown stream: %d: %s", resp.StatusCode, raw)
	}
	var qr queryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Records) != 0 {
		t.Fatalf("unknown stream returned %d records", len(qr.Records))
	}
	// Geometry contradiction between request and stored frames: 400.
	wire, _ := testLog(t, 16, 8, 3)
	resp, raw = postJSON(t, base+"/v1/reconstruct", map[string]any{
		"encoding": map[string]any{"m": 16, "b": 8},
		"log":      wire, "device": "d", "signal": "s",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed job: %d: %s", resp.StatusCode, raw)
	}
	resp, _ = postJSON(t, base+"/v1/query", map[string]any{
		"device": "d", "signal": "s",
		"encoding": map[string]any{"m": 8, "b": 6},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("geometry mismatch: %d, want 400", resp.StatusCode)
	}
}

// TestStoreLimitPushdown: both read endpoints bound how many stored
// records a request returns or replays, flagging truncation — backed
// by logstore.Query.Limit, so an unbounded epoch range never
// materializes the whole stream server-side.
func TestStoreLimitPushdown(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	_, base, _ := startServer(t, Config{Store: st}, 0)

	wire, _ := testLog(t, 16, 8, 2)
	for i := 0; i < 5; i++ {
		resp, raw := postJSON(t, base+"/v1/reconstruct", map[string]any{
			"encoding": map[string]any{"m": 16, "b": 8},
			"log":      wire, "device": "ecu-lim", "signal": "sig",
			"epoch_us": 100 + int64(i),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: %d: %s", i, resp.StatusCode, raw)
		}
	}

	getLogs := func(limit string) logsResponse {
		t.Helper()
		httpResp, err := http.Get(base + "/v1/logs?device=ecu-lim&signal=sig&limit=" + limit)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(httpResp.Body)
		httpResp.Body.Close()
		if httpResp.StatusCode != http.StatusOK {
			t.Fatalf("logs limit=%s: %d: %s", limit, httpResp.StatusCode, raw)
		}
		var lr logsResponse
		if err := json.Unmarshal(raw, &lr); err != nil {
			t.Fatalf("logs limit=%s: %v: %s", limit, err, raw)
		}
		return lr
	}
	if lr := getLogs("2"); len(lr.Records) != 2 || !lr.Truncated {
		t.Fatalf("limit=2 returned %d records (truncated=%v), want 2 truncated", len(lr.Records), lr.Truncated)
	}
	if lr := getLogs("5"); len(lr.Records) != 5 || lr.Truncated {
		t.Fatalf("limit=5 returned %d records (truncated=%v), want all 5 untruncated", len(lr.Records), lr.Truncated)
	}

	resp, raw := postJSON(t, base+"/v1/query", map[string]any{
		"device": "ecu-lim", "signal": "sig",
		"encoding":    map[string]any{"m": 16, "b": 8},
		"max_records": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query max_records=3: %d: %s", resp.StatusCode, raw)
	}
	var qr queryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Records) != 3 || !qr.Truncated {
		t.Fatalf("max_records=3 replayed %d records (truncated=%v), want 3 truncated", len(qr.Records), qr.Truncated)
	}
	for i, rec := range qr.Records {
		if rec.EpochUS != 100+int64(i) {
			t.Fatalf("record %d has epoch %d; bounded replay must keep append order", i, rec.EpochUS)
		}
	}
}

// TestStoreTeeErrorDoesNotFailRequest: a closed store makes tees fail,
// which is counted but the serving request still succeeds.
func TestStoreTeeErrorDoesNotFailRequest(t *testing.T) {
	dir := t.TempDir()
	st, _, err := logstore.Open(dir, logstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	_, base, _ := startServer(t, Config{Store: st, Obs: reg}, 0)
	st.Close() // every tee now fails with ErrClosed

	wire, _ := testLog(t, 16, 8, 3)
	resp, raw := postJSON(t, base+"/v1/reconstruct", map[string]any{
		"encoding": map[string]any{"m": 16, "b": 8},
		"log":      wire, "device": "d", "signal": "s",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request failed because the tee failed: %d: %s", resp.StatusCode, raw)
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricStoreTeeErrors] != 1 || snap.Counters[MetricStoreTees] != 0 {
		t.Fatalf("tee errors/tees = %d/%d, want 1/0",
			snap.Counters[MetricStoreTeeErrors], snap.Counters[MetricStoreTees])
	}
	// Reads over the closed store fail closed with 503.
	httpResp, err := http.Get(base + "/v1/logs?device=d&signal=s")
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed-store listing: %d, want 503", httpResp.StatusCode)
	}
}
