package service

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// errQueueFull is returned by admission.acquire when the bounded wait
// queue is at capacity — the handler maps it to 429 + Retry-After.
var errQueueFull = errors.New("service: admission queue full")

// admission is the solve-path concurrency limiter: at most workers
// solves run at once, at most depth more may wait for a slot, and
// anything beyond that is rejected immediately so the caller can shed
// load instead of stacking goroutines without bound.
//
// Admission gates the expensive work (the SAT solve), not the HTTP
// request: cache hits and coalesced waiters never consume a slot, so a
// thundering herd of identical queries needs exactly one admission.
type admission struct {
	depth   int64
	waiting atomic.Int64
	slots   chan struct{}

	queueGauge *obs.Gauge
	busyGauge  *obs.Gauge
	shed       *obs.Counter
}

func newAdmission(depth, workers int, r *obs.Registry) *admission {
	return &admission{
		depth:      int64(depth),
		slots:      make(chan struct{}, workers),
		queueGauge: r.Gauge(MetricQueueDepth),
		busyGauge:  r.Gauge(MetricSolveBusy),
		shed:       r.Counter(MetricShed),
	}
}

// acquire claims a worker slot, waiting in the bounded queue if all
// workers are busy. It returns errQueueFull when the queue is at
// capacity and ctx.Err() when the request deadline expires while
// queued. On success the caller must invoke the release function.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	// Reserve a queue position with a CAS loop so the bound is exact
	// under concurrency (a plain Add could overshoot and bounce peers
	// that would have fit).
	for {
		w := a.waiting.Load()
		if w >= a.depth {
			a.shed.Inc()
			return nil, errQueueFull
		}
		if a.waiting.CompareAndSwap(w, w+1) {
			break
		}
	}
	a.queueGauge.Add(1)
	defer func() {
		a.waiting.Add(-1)
		a.queueGauge.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.busyGauge.Add(1)
		return func() {
			<-a.slots
			a.busyGauge.Add(-1)
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
