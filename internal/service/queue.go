package service

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// errQueueFull is returned by admission.acquire when the bounded wait
// queue is at capacity — the handler maps it to 429 + Retry-After.
var errQueueFull = errors.New("service: admission queue full")

// admission is the solve-path concurrency limiter: at most workers
// solves run at once, at most depth more may wait for a slot, and
// anything beyond that is rejected immediately so the caller can shed
// load instead of stacking goroutines without bound.
//
// Admission gates the expensive work (the SAT solve), not the HTTP
// request: cache hits and coalesced waiters never consume a slot, so a
// thundering herd of identical queries needs exactly one admission.
type admission struct {
	depth   int64
	waiting atomic.Int64
	slots   chan struct{}

	queueGauge *obs.Gauge
	busyGauge  *obs.Gauge
	shed       *obs.Counter
}

func newAdmission(depth, workers int, r *obs.Registry) *admission {
	return &admission{
		depth:      int64(depth),
		slots:      make(chan struct{}, workers),
		queueGauge: r.Gauge(MetricQueueDepth),
		busyGauge:  r.Gauge(MetricSolveBusy),
		shed:       r.Counter(MetricShed),
	}
}

// admitFunc is the admission side of one solve: it blocks until a
// worker slot is free (or the context dies) and returns the slot's
// release function. The unary path uses admission.acquire; the batch
// path uses a batchGrant's acquire, which draws on positions the whole
// batch reserved atomically up front.
type admitFunc func(ctx context.Context) (release func(), err error)

// acquire claims a worker slot, waiting in the bounded queue if all
// workers are busy. It returns errQueueFull when the queue is at
// capacity and ctx.Err() when the request deadline expires while
// queued. On success the caller must invoke the release function.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	// Reserve a queue position with a CAS loop so the bound is exact
	// under concurrency (a plain Add could overshoot and bounce peers
	// that would have fit).
	for {
		w := a.waiting.Load()
		if w >= a.depth {
			a.shed.Inc()
			return nil, errQueueFull
		}
		if a.waiting.CompareAndSwap(w, w+1) {
			break
		}
	}
	a.queueGauge.Add(1)
	defer func() {
		a.waiting.Add(-1)
		a.queueGauge.Add(-1)
	}()
	select {
	case a.slots <- struct{}{}:
		a.busyGauge.Add(1)
		return func() {
			<-a.slots
			a.busyGauge.Add(-1)
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// batchGrant holds queue positions a batch reserved atomically with
// reserveBatch. Each of the batch's solves converts one position into
// a worker slot via acquire; positions that never become solves (cache
// hits, coalesced entries, failed jobs) are returned by close. The
// grant is safe for concurrent use by the batch's workers.
type batchGrant struct {
	a        *admission
	reserved int64
	released atomic.Int64
}

// reserveBatch atomically reserves n queue positions — all or nothing.
// A batch whose entry count does not fit the remaining queue capacity
// is rejected as a unit with errQueueFull (no partial admission), so a
// batch can never strand half its jobs behind a full queue. The caller
// must eventually call close on the returned grant.
func (a *admission) reserveBatch(n int) (*batchGrant, error) {
	if n <= 0 {
		return &batchGrant{a: a}, nil
	}
	for {
		w := a.waiting.Load()
		if w+int64(n) > a.depth {
			a.shed.Inc()
			return nil, errQueueFull
		}
		if a.waiting.CompareAndSwap(w, w+int64(n)) {
			break
		}
	}
	a.queueGauge.Add(int64(n))
	return &batchGrant{a: a, reserved: int64(n)}, nil
}

// acquire claims a worker slot against one reserved position. The
// position is consumed whether the slot was won or the context died —
// each of the batch's entries admits at most once.
func (g *batchGrant) acquire(ctx context.Context) (release func(), err error) {
	defer g.releaseOne()
	select {
	case g.a.slots <- struct{}{}:
		g.a.busyGauge.Add(1)
		return func() {
			<-g.a.slots
			g.a.busyGauge.Add(-1)
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// releaseOne returns one reserved queue position, at most reserved
// times across all callers.
func (g *batchGrant) releaseOne() {
	for {
		r := g.released.Load()
		if r >= g.reserved {
			return
		}
		if g.released.CompareAndSwap(r, r+1) {
			g.a.waiting.Add(-1)
			g.a.queueGauge.Add(-1)
			return
		}
	}
}

// close returns every position not consumed by acquire. Call it after
// all the batch's workers have finished.
func (g *batchGrant) close() {
	for g.released.Load() < g.reserved {
		g.releaseOne()
	}
}
