package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/logstore"
)

// Durable log store integration. When Config.Store is set, timeprintd
// tees every successfully ingested wire log — unary request bodies and
// streaming-ingest frames — into the store, and serves two forensic
// endpoints over it:
//
//	GET  /v1/logs    list stored streams, or range-list one stream's
//	                 records (epoch, trace-cycle base, geometry, and
//	                 optionally the raw frame)
//	POST /v1/query   historical reconstruction: fetch stored frames for
//	                 a (device, signal, epoch-range) and replay them
//	                 through the warm session/dispatcher pipeline
//	                 exactly like the request-body path
//
// The replay guarantee is literal: /v1/query feeds each stored frame's
// entries through the same solveEntry pipeline (cache → singleflight →
// admission → dispatcher) a request carrying the frame in its body
// would hit, so reconstruction results are bit-identical to the
// request-body path — the store-vs-body equivalence test pins this.

// storeTee persists one successfully served wire log. Tee failures are
// counted but never fail the serving request: the reconstruction
// answer is already correct, and the store's own recovery machinery
// reports loss on the next open.
func (s *Server) storeTee(device, signal string, epochUS int64, tcBase int64, body []byte) {
	if s.store == nil {
		return
	}
	if device == "" {
		device = "unknown-device"
	}
	if signal == "" {
		signal = "unknown-signal"
	}
	if epochUS == 0 {
		epochUS = time.Now().UnixMicro()
	}
	_, err := s.store.Append(logstore.Record{
		Device:         device,
		Signal:         signal,
		Epoch:          epochUS,
		TraceCycleBase: tcBase,
		Body:           body,
	})
	if err != nil {
		s.obs.Counter(MetricStoreTeeErrors).Inc()
		return
	}
	s.obs.Counter(MetricStoreTees).Inc()
}

// logsKeySummary is one stored stream in the keyless /v1/logs listing.
type logsKeySummary struct {
	Device     string `json:"device"`
	Signal     string `json:"signal"`
	Records    int    `json:"records"`
	MinEpochUS int64  `json:"min_epoch_us"`
	MaxEpochUS int64  `json:"max_epoch_us"`
}

// logsRecord is one stored frame in a /v1/logs range listing. M, B and
// Entries come from the frame header (core.PeekLogHeader) — the frame
// is not decoded. Body is included only with include_bodies=1.
type logsRecord struct {
	EpochUS        int64  `json:"epoch_us"`
	TraceCycleBase int64  `json:"trace_cycle_base"`
	Bytes          int    `json:"bytes"`
	M              int    `json:"m"`
	B              int    `json:"b"`
	Entries        int    `json:"entries"`
	Body           []byte `json:"body,omitempty"`
}

type logsResponse struct {
	Keys      []logsKeySummary `json:"keys,omitempty"`
	Device    string           `json:"device,omitempty"`
	Signal    string           `json:"signal,omitempty"`
	Records   []logsRecord     `json:"records,omitempty"`
	Truncated bool             `json:"truncated,omitempty"`
}

// epochRange parses from/to query or body values: zero To means
// unbounded (epochs are Unix microseconds, so 0 is the natural floor).
func epochRange(from, to int64) (int64, int64) {
	if to == 0 {
		to = math.MaxInt64
	}
	return from, to
}

// Server-side ceilings on how many stored records one request may
// return or replay. Both endpoints also push their (capped) limit into
// the store scan itself — logstore.Query.Limit stops the walk at
// limit+1 matches — so an unbounded epoch range over a large stored
// stream never materializes the whole stream in memory; the +1 record
// is what flips the response's Truncated flag.
const (
	maxLogsLimit    = 10000
	maxQueryRecords = 4096
)

// handleStoreLogs serves GET /v1/logs. Without device+signal it lists
// the stored streams; with both it range-lists that stream's records.
func (s *Server) handleStoreLogs(w http.ResponseWriter, r *http.Request) {
	defer s.obs.StartSpan(SpanRequest).End()
	s.obs.Counter(MetricReqLogs).Inc()
	q := r.URL.Query()
	device, signal := q.Get("device"), q.Get("signal")
	if device == "" && signal == "" {
		keys := s.store.Keys()
		resp := logsResponse{Keys: make([]logsKeySummary, len(keys))}
		for i, k := range keys {
			resp.Keys[i] = logsKeySummary{
				Device: k.Device, Signal: k.Signal, Records: k.Records,
				MinEpochUS: k.MinEpoch, MaxEpochUS: k.MaxEpoch,
			}
		}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	if device == "" || signal == "" {
		s.writeError(w, badRequest("need both device and signal (or neither, for the stream listing)"))
		return
	}
	var from, to int64
	for name, dst := range map[string]*int64{"from_epoch_us": &from, "to_epoch_us": &to} {
		if v := q.Get(name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				s.writeError(w, badRequest("query %s=%q: %v", name, v, err))
				return
			}
			*dst = n
		}
	}
	from, to = epochRange(from, to)
	limit := 1000
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.writeError(w, badRequest("query limit=%q must be a positive integer", v))
			return
		}
		limit = n
	}
	if limit > maxLogsLimit {
		limit = maxLogsLimit
	}
	includeBodies := q.Get("include_bodies") == "1" || q.Get("include_bodies") == "true"

	recs, err := s.store.Query(logstore.Query{
		Device: device, Signal: signal, From: from, To: to, Limit: limit + 1,
	})
	if err != nil {
		s.writeError(w, s.storeError(err))
		return
	}
	resp := logsResponse{Device: device, Signal: signal}
	for _, rec := range recs {
		if len(resp.Records) >= limit {
			resp.Truncated = true
			break
		}
		lr := logsRecord{
			EpochUS:        rec.Epoch,
			TraceCycleBase: rec.TraceCycleBase,
			Bytes:          len(rec.Body),
		}
		// The header was validated on append; a failure here means the
		// store served bytes it should not have — fail closed.
		m, b, n, err := core.PeekLogHeader(rec.Body)
		if err != nil {
			s.writeError(w, s.storeError(err))
			return
		}
		lr.M, lr.B, lr.Entries = m, b, n
		if includeBodies {
			lr.Body = rec.Body
		}
		resp.Records = append(resp.Records, lr)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// queryRequest is the JSON body of POST /v1/query: a (device, signal,
// epoch-range) selection plus the same solve options a request-body
// job carries. ToEpochUS == 0 means unbounded.
type queryRequest struct {
	Device      string       `json:"device"`
	Signal      string       `json:"signal"`
	FromEpochUS int64        `json:"from_epoch_us,omitempty"`
	ToEpochUS   int64        `json:"to_epoch_us,omitempty"`
	Encoding    EncodingSpec `json:"encoding"`
	Properties  string       `json:"properties,omitempty"`
	Limit       int          `json:"limit,omitempty"`
	CountOnly   bool         `json:"count_only,omitempty"`
	TimeoutMS   int          `json:"timeout_ms,omitempty"`
	// MaxRecords bounds how many stored frames one query replays
	// (default 256, server-capped at maxQueryRecords); more match →
	// Truncated.
	MaxRecords int `json:"max_records,omitempty"`
}

// queryRecordResult is one stored frame's reconstruction: the same
// per-entry results the request-body path returns for this frame, with
// trace-cycles offset by the frame's stored stream position.
type queryRecordResult struct {
	EpochUS        int64           `json:"epoch_us"`
	TraceCycleBase int64           `json:"trace_cycle_base"`
	Results        []entryResponse `json:"results"`
}

type queryResponse struct {
	Device    string              `json:"device"`
	Signal    string              `json:"signal"`
	M         int                 `json:"m"`
	B         int                 `json:"b"`
	Records   []queryRecordResult `json:"records"`
	Truncated bool                `json:"truncated,omitempty"`
}

// handleStoreQuery serves POST /v1/query: historical reconstruction
// over stored frames, replayed through the warm session pipeline.
func (s *Server) handleStoreQuery(w http.ResponseWriter, r *http.Request) {
	defer s.obs.StartSpan(SpanRequest).End()
	s.obs.Counter(MetricReqQuery).Inc()
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	var req queryRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, badRequest("json body: %v", err))
		return
	}
	if req.Device == "" || req.Signal == "" {
		s.writeError(w, badRequest("need device and signal"))
		return
	}
	if req.MaxRecords <= 0 {
		req.MaxRecords = 256
	}
	if req.MaxRecords > maxQueryRecords {
		req.MaxRecords = maxQueryRecords
	}
	from, to := epochRange(req.FromEpochUS, req.ToEpochUS)
	recs, err := s.store.Query(logstore.Query{
		Device: req.Device, Signal: req.Signal, From: from, To: to, Limit: req.MaxRecords + 1,
	})
	if err != nil {
		s.writeError(w, s.storeError(err))
		return
	}
	resp := queryResponse{Device: req.Device, Signal: req.Signal}
	truncated := false
	if len(recs) > req.MaxRecords {
		recs, truncated = recs[:req.MaxRecords], true
	}
	if len(recs) == 0 {
		resp.Records = []queryRecordResult{}
		s.writeJSON(w, http.StatusOK, resp)
		return
	}

	// Resolve the encoding exactly like the request-body path: the
	// first stored frame's header fills in missing m and b, and every
	// frame must match the resolved spec.
	m0, b0, _, err := core.PeekLogHeader(recs[0].Body)
	if err != nil {
		s.writeError(w, s.storeError(err))
		return
	}
	if req.Encoding.M == 0 {
		req.Encoding.M = m0
	}
	if req.Encoding.B == 0 {
		req.Encoding.B = b0
	}
	spec, nerr := req.Encoding.normalize()
	if nerr != nil {
		s.writeError(w, badRequest("encoding: %v", nerr))
		return
	}
	constraints, propKey, err := canonProps(req.Properties)
	if err != nil {
		s.writeError(w, err)
		return
	}
	limit := effectiveLimit(req.Limit, req.CountOnly)

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	sess := s.sessions.get(spec)
	resp.M, resp.B = spec.M, spec.B

	for _, rec := range recs {
		m, b, entries, err := core.ReadLog(bytes.NewReader(rec.Body))
		if err != nil {
			// A stored body that fails full decode is corruption the
			// append-time validation could not see (it checks the header
			// only) — fail closed rather than skip silently.
			s.writeError(w, s.storeError(err))
			return
		}
		if m != spec.M || b != spec.B {
			s.writeError(w, badRequest(
				"stored frame at epoch %d has geometry (m=%d, b=%d), query resolved (m=%d, b=%d)",
				rec.Epoch, m, b, spec.M, spec.B))
			return
		}
		rr := queryRecordResult{EpochUS: rec.Epoch, TraceCycleBase: rec.TraceCycleBase}
		for i, e := range entries {
			er, err := s.solveEntry(ctx, sess, e, constraints, propKey, limit, req.CountOnly, s.admit.acquire)
			if err != nil {
				s.writeError(w, err)
				return
			}
			er.TraceCycle = int(rec.TraceCycleBase) + i
			rr.Results = append(rr.Results, er)
		}
		resp.Records = append(resp.Records, rr)
	}
	resp.Truncated = truncated
	s.writeJSON(w, http.StatusOK, resp)
}

// storeError maps store failures to HTTP semantics: corruption is 502
// (the store fails closed; the data is the problem, not the request),
// a closed store is 503, anything else 500.
func (s *Server) storeError(err error) error {
	switch {
	case errors.Is(err, logstore.ErrCorrupt), errors.Is(err, core.ErrCorrupt):
		return &httpError{code: http.StatusBadGateway, msg: "stored log failed validation: " + err.Error()}
	case errors.Is(err, logstore.ErrClosed):
		return &httpError{code: http.StatusServiceUnavailable, msg: "log store is closed"}
	}
	return err
}
