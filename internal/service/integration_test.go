package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/obs"
)

// testLog builds a wire-format log of the canonical test signal under
// an incremental LI-4 encoding small enough to solve in milliseconds.
func testLog(t testing.TB, m, b int, changes ...int) ([]byte, core.Signal) {
	t.Helper()
	enc, err := encoding.Incremental(m, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	truth := core.SignalFromChanges(m, changes...)
	var wire bytes.Buffer
	if err := core.WriteLog(&wire, m, b, []core.LogEntry{core.Log(enc, truth)}); err != nil {
		t.Fatal(err)
	}
	return wire.Bytes(), truth
}

// startServer runs a Server on an ephemeral port and tears it down with
// the test.
func startServer(t testing.TB, cfg Config, solveDelay time.Duration) (*Server, string, *obs.Registry) {
	t.Helper()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	srv := New(cfg)
	srv.solveDelay = solveDelay
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	return srv, "http://" + addr.String(), reg
}

func postWire(base string, wire []byte, query string) (*http.Response, map[string]any, error) {
	resp, err := http.Post(base+"/v1/reconstruct?"+query, "application/octet-stream", bytes.NewReader(wire))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out map[string]any
	_ = json.Unmarshal(raw, &out)
	return resp, out, nil
}

// The acceptance property: N concurrent identical requests cost
// exactly one SAT solve — the leader solves, everyone else coalesces
// onto its flight or hits the cache it fills.
func TestConcurrentIdenticalRequestsSolveOnce(t *testing.T) {
	// The oracle is pinned to SAT so the sat.solve.calls assertion below
	// stays meaningful (auto-routing would answer this k=2 query with
	// the algebraic decoder, which has no solver underneath).
	wire, truth := testLog(t, 16, 9, 3, 7)
	_, base, reg := startServer(t, Config{Workers: 4, Oracle: "sat"}, 500*time.Millisecond)

	const n = 8
	type outcome struct {
		status    int
		cached    bool
		coalesced bool
		found     bool
	}
	outcomes := make(chan outcome, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, body, err := postWire(base, wire, "scheme=incremental&depth=4&limit=-1")
			if err != nil {
				t.Error(err)
				return
			}
			o := outcome{status: resp.StatusCode}
			if results, ok := body["results"].([]any); ok && len(results) == 1 {
				r0 := results[0].(map[string]any)
				o.cached, _ = r0["cached"].(bool)
				o.coalesced, _ = r0["coalesced"].(bool)
				for _, c := range r0["candidates"].([]any) {
					if c.(string) == truth.String() {
						o.found = true
					}
				}
			}
			outcomes <- o
		}()
	}
	close(start)
	wg.Wait()
	close(outcomes)

	var leaders, shared int
	for o := range outcomes {
		if o.status != http.StatusOK {
			t.Fatalf("status %d", o.status)
		}
		if !o.found {
			t.Fatal("true signal missing from a response")
		}
		if o.cached || o.coalesced {
			shared++
		} else {
			leaders++
		}
	}
	if leaders != 1 || shared != n-1 {
		t.Fatalf("leaders=%d shared=%d, want 1 and %d", leaders, shared, n-1)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[MetricSolves]; got != 1 {
		t.Fatalf("%s = %d for %d identical requests, want exactly 1", MetricSolves, got, n)
	}
	if got := snap.Counters[MetricCoalesced] + snap.Counters[MetricCacheHits]; got != n-1 {
		t.Fatalf("coalesced+hits = %d, want %d", got, n-1)
	}
	if snap.Counters["sat.solve.calls"] == 0 {
		t.Fatal("solver instrumentation did not flow through the service registry")
	}
}

// With one worker, one queue slot and a held solve, the third distinct
// request must shed with 429 and a Retry-After hint.
func TestQueueFullSheds429(t *testing.T) {
	wire, _ := testLog(t, 16, 9, 4)
	_, base, reg := startServer(t, Config{Workers: 1, QueueDepth: 1}, 600*time.Millisecond)

	// Distinct limits make distinct cache keys, so nothing coalesces.
	req := func(limit int) (*http.Response, map[string]any, error) {
		return postWire(base, wire, fmt.Sprintf("scheme=incremental&depth=4&limit=%d", limit))
	}
	type result struct {
		status int
		err    error
	}
	running := make(chan result, 1)
	queued := make(chan result, 1)
	go func() {
		resp, _, err := req(1)
		running <- result{statusOf(resp), err}
	}()
	waitCounter(t, reg, MetricSolves, 1) // first request holds the worker
	go func() {
		resp, _, err := req(2)
		queued <- result{statusOf(resp), err}
	}()
	waitGauge(t, reg, MetricQueueDepth, 1) // second request fills the queue

	resp, _, err := req(3)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	for name, ch := range map[string]chan result{"running": running, "queued": queued} {
		r := <-ch
		if r.err != nil || r.status != http.StatusOK {
			t.Fatalf("%s request: status %d err %v", name, r.status, r.err)
		}
	}
	if got := reg.Snapshot().Counters[MetricShed]; got != 1 {
		t.Fatalf("%s = %d, want 1", MetricShed, got)
	}
}

// A request whose deadline expires mid-solve maps to 504 and counts a
// timeout; the admission slot is released for the next request.
func TestDeadlineMapsTo504(t *testing.T) {
	wire, _ := testLog(t, 16, 9, 5)
	_, base, reg := startServer(t, Config{Workers: 1}, 2*time.Second)

	resp, body, err := postWire(base, wire, "scheme=incremental&depth=4&timeout_ms=100")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %v)", resp.StatusCode, body)
	}
	snap := reg.Snapshot()
	if snap.Counters[MetricTimeouts] != 1 {
		t.Fatalf("%s = %d, want 1", MetricTimeouts, snap.Counters[MetricTimeouts])
	}
	if b := snap.Gauges[MetricSolveBusy]; b.Value != 0 {
		t.Fatalf("busy gauge = %d after timeout, want 0 (slot leaked)", b.Value)
	}
}

// SIGTERM must drain: the in-flight solve finishes with 200 while the
// daemon loop (Run under signal.NotifyContext, exactly the timeprintd
// main shape) exits nil.
func TestDrainOnSIGTERM(t *testing.T) {
	wire, _ := testLog(t, 16, 9, 6)
	reg := obs.NewRegistry()
	srv := New(Config{Obs: reg, Workers: 2, DrainTimeout: 5 * time.Second})
	srv.solveDelay = 400 * time.Millisecond

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx) }()
	<-srv.Ready()
	base := "http://" + srv.Addr().String()

	inflight := make(chan result2, 1)
	go func() {
		resp, body, err := postWire(base, wire, "scheme=incremental&depth=4")
		inflight <- result2{resp, body, err}
	}()
	waitCounter(t, reg, MetricSolves, 1) // the solve is in flight

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request: status %d during drain, want 200", r.resp.StatusCode)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v, want nil (clean drain)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after SIGTERM")
	}
	if !srv.Draining() {
		t.Fatal("server not marked draining after shutdown")
	}
	// The listener is gone: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

type result2 struct {
	resp *http.Response
	body map[string]any
	err  error
}

// The strict wire rules surface as 400s at the service boundary.
func TestServiceRejectsMalformedRequests(t *testing.T) {
	wire, _ := testLog(t, 16, 9, 2)
	_, base, _ := startServer(t, Config{}, 0)

	post := func(path, ct string, body []byte) (*http.Response, string) {
		resp, err := http.Post(base+path, ct, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp, string(raw)
	}

	// Pad-bit corruption travels the whole stack: flip a pad bit in the
	// final byte and the strict reader rejects the log.
	corrupt := append([]byte(nil), wire...)
	corrupt[len(corrupt)-1] ^= 0x80
	resp, body := post("/v1/reconstruct?scheme=incremental", "application/octet-stream", corrupt)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "pad") {
		t.Fatalf("pad corruption: status %d body %s", resp.StatusCode, body)
	}

	for name, tc := range map[string]struct {
		path string
		ct   string
		body string
	}{
		"unknown scheme": {"/v1/reconstruct?scheme=warbler", "application/octet-stream", string(wire)},
		"tp and log": {"/v1/reconstruct", "application/json",
			`{"encoding":{"m":16,"b":9},"tp":"101010101","k":1,"log":"` + jsonB64(wire) + `"}`},
		"tp width mismatch": {"/v1/count", "application/json",
			`{"encoding":{"m":16,"b":9},"tp":"1010","k":1}`},
		"bad properties": {"/v1/reconstruct", "application/json",
			`{"encoding":{"m":16,"b":9},"tp":"101010101","k":1,"properties":"gibberish("}`,
		},
		"unknown json field": {"/v1/reconstruct", "application/json",
			`{"encoding":{"m":16,"b":9},"tp":"101010101","k":1,"frobnicate":true}`},
		"geometry mismatch": {"/v1/compare", "application/json",
			`{"encoding":{"m":16,"b":9},"ref":"` + jsonB64(wire) + `","obs":"` + jsonB64(mustWire(t, 8, 9)) + `"}`},
	} {
		resp, body := post(tc.path, tc.ct, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d body %s, want 400", name, resp.StatusCode, body)
		}
	}
}

// /healthz and /metrics ride the service mux itself.
func TestServiceHealthAndMetricsEndpoints(t *testing.T) {
	wire, _ := testLog(t, 16, 9, 9)
	srv, base, _ := startServer(t, Config{}, 0)

	if resp, _, err := postWire(base, wire, "scheme=incremental&depth=4"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("reconstruct: %v %v", resp, err)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	snap, err := obs.ParseSnapshot(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters[MetricReqReconstruct] != 1 || snap.Counters[MetricSolves] != 1 {
		t.Fatalf("metrics endpoint: %v", snap.Counters)
	}
	_ = srv
}

// --- helpers ---

func statusOf(r *http.Response) int {
	if r == nil {
		return 0
	}
	return r.StatusCode
}

func mustWire(t testing.TB, m, b int) []byte {
	t.Helper()
	w, _ := testLog(t, m, b, 1)
	return w
}

func jsonB64(raw []byte) string {
	// encoding/json marshals []byte as base64; round through it so the
	// test string matches the decoder's expectation exactly.
	enc, _ := json.Marshal(raw)
	return strings.Trim(string(enc), `"`)
}

func waitCounter(t testing.TB, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Counters[name] < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter %s never reached %d (at %d)", name, want, reg.Snapshot().Counters[name])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitGauge(t testing.TB, reg *obs.Registry, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot().Gauges[name].Value < want {
		if time.Now().After(deadline) {
			t.Fatalf("gauge %s never reached %d (at %d)", name, want, reg.Snapshot().Gauges[name].Value)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
