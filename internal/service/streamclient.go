package service

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// StreamClient speaks the streaming-ingest protocol (stream.go) from
// the device side. It is the one client implementation shared by the
// service tests, the timeprintd smoke check, and the tprload harness —
// so the wire format has exactly one reader and one writer to drift.
type StreamClient struct {
	conn net.Conn
	br   *bufio.Reader
}

// StreamEntryResult mirrors the per-entry JSON of a frame reply.
type StreamEntryResult struct {
	TraceCycle int      `json:"trace_cycle"`
	TP         string   `json:"tp"`
	K          int      `json:"k"`
	Candidates []string `json:"candidates,omitempty"`
	Changes    [][]int  `json:"changes,omitempty"`
	Count      int      `json:"count"`
	Exhausted  bool     `json:"exhausted"`
	Cached     bool     `json:"cached,omitempty"`
	Coalesced  bool     `json:"coalesced,omitempty"`
}

// StreamMsg is the union of every server line: the hello ack
// (State "ok"), control lines ("error", "done", "draining"), and
// per-frame replies (State empty; Status set only on failure).
type StreamMsg struct {
	State          string              `json:"state,omitempty"`
	Status         int                 `json:"status,omitempty"`
	Error          string              `json:"error,omitempty"`
	M              int                 `json:"m,omitempty"`
	B              int                 `json:"b,omitempty"`
	NextTraceCycle int                 `json:"next_trace_cycle,omitempty"`
	Frame          int                 `json:"frame,omitempty"`
	TraceCycleBase int                 `json:"trace_cycle_base,omitempty"`
	Results        []StreamEntryResult `json:"results,omitempty"`
	Frames         int                 `json:"frames,omitempty"`
	Entries        int                 `json:"entries,omitempty"`
}

// DialStream connects to a timeprintd streaming listener.
func DialStream(addr string, timeout time.Duration) (*StreamClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &StreamClient{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Hello performs the handshake. It returns the server's ack (with the
// stream's resume position in NextTraceCycle) or an error when the
// server refuses the stream.
func (c *StreamClient) Hello(h StreamHello) (StreamMsg, error) {
	data, err := json.Marshal(h)
	if err != nil {
		return StreamMsg{}, err
	}
	if _, err := c.conn.Write(append(data, '\n')); err != nil {
		return StreamMsg{}, err
	}
	msg, err := c.readMsg()
	if err != nil {
		return msg, err
	}
	if msg.State != "ok" {
		return msg, fmt.Errorf("stream hello refused (%s %d): %s", msg.State, msg.Status, msg.Error)
	}
	return msg, nil
}

// SendFrame ships one complete core.WriteLog payload and returns the
// server's per-frame reply. A reply with Status != 0 is an error the
// server reported for this frame; State "draining" means the server is
// shutting down and the stream should reconnect later.
func (c *StreamClient) SendFrame(payload []byte) (StreamMsg, error) {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := c.conn.Write(lenBuf[:]); err != nil {
		return StreamMsg{}, err
	}
	if _, err := c.conn.Write(payload); err != nil {
		return StreamMsg{}, err
	}
	return c.readMsg()
}

// End sends the zero-length end-of-stream marker and returns the
// server's done summary.
func (c *StreamClient) End() (StreamMsg, error) {
	var zero [4]byte
	if _, err := c.conn.Write(zero[:]); err != nil {
		return StreamMsg{}, err
	}
	msg, err := c.readMsg()
	if err != nil {
		return msg, err
	}
	if msg.State != "done" {
		return msg, fmt.Errorf("stream end: unexpected reply state %q: %s", msg.State, msg.Error)
	}
	return msg, nil
}

// Close tears the connection down; the server keeps the stream's
// position for a reconnect.
func (c *StreamClient) Close() error { return c.conn.Close() }

func (c *StreamClient) readMsg() (StreamMsg, error) {
	line, err := readStreamLine(c.br)
	if err != nil {
		return StreamMsg{}, err
	}
	var msg StreamMsg
	if err := json.Unmarshal(line, &msg); err != nil {
		return StreamMsg{}, fmt.Errorf("stream reply: %v", err)
	}
	return msg, nil
}
