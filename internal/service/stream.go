package service

import (
	"bufio"
	"bytes"
	"container/list"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/reconstruct"
)

// Streaming ingest: the persistent-connection counterpart of /v1/batch
// for the paper's continuous-logging deployment. A device-side agent
// holds one TCP connection per traced signal and pushes core.WriteLog
// frames as the on-chip logger drains; the server appends each frame
// into a per-(device, signal) stream session whose encoding is built
// once and whose warm incremental solver answers every frame.
//
// Wire protocol (all JSON lines are '\n'-terminated):
//
//	client → hello line   {"device","signal","encoding",...}
//	server → ack line     {"state":"ok","m","b","next_trace_cycle"}
//	repeat:
//	  client → frame      uint32 LE length, then a complete WriteLog
//	  server → line       {"frame","trace_cycle_base","results":[...]}
//	                      or {"frame","status","error"}
//	client → zero length  clean end of stream
//	server → line         {"state":"done","frames","entries"}
//
// Control lines carry a "state" string ("ok", "error", "done",
// "draining"); per-frame replies carry no state and an integer
// "status" only on failure — StreamMsg (streamclient.go) is the
// client-side union of all of them.
//
// Failure discipline: a corrupt frame (bad length, core.ErrCorrupt,
// geometry mismatch) answers 400 and closes the connection — the
// stream's trace-cycle accounting cannot be trusted past it. Transient
// solve failures (shed, deadline, solver budget) answer an error line
// but keep the connection open, and the stream position does NOT
// advance: the client re-sends the frame. During drain the server
// answers {"state":"draining"} and closes; the stream position
// survives in the session table, so a reconnect resumes where the
// stream left off.

// StreamHello is the connection's opening JSON line. The encoding must
// be fully explicit (there is no request body to borrow m and b from —
// frames are validated against it instead).
type StreamHello struct {
	Device     string       `json:"device"`
	Signal     string       `json:"signal"`
	Encoding   EncodingSpec `json:"encoding"`
	Properties string       `json:"properties,omitempty"`
	// Limit and CountOnly apply to every entry of every frame.
	Limit     int  `json:"limit,omitempty"`
	CountOnly bool `json:"count_only,omitempty"`
	// TimeoutMS bounds each frame's solve work (capped by MaxTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// streamState is the durable per-(device, signal) position: where the
// stream's trace-cycle counter stands and which spec it is pinned to.
// It outlives connections (bounded LRU) so reconnects resume counting.
type streamState struct {
	specKey string
	nextTC  int
	busy    bool
}

// streamTable maps (device, signal) to stream positions. At most one
// live connection may hold a stream (busy); idle streams are evicted
// LRU beyond max.
type streamTable struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type streamEntry struct {
	key string
	st  *streamState
}

func newStreamTable(max int) *streamTable {
	return &streamTable{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// claim acquires exclusive use of the (device, signal) stream for one
// connection, creating it on first use. A stream already claimed by a
// live connection, or previously pinned to a different spec, is
// refused.
func (t *streamTable) claim(device, signal, specKey string) (*streamState, error) {
	key := device + "\x00" + signal
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[key]; ok {
		st := el.Value.(*streamEntry).st
		if st.busy {
			return nil, fmt.Errorf("stream %s/%s already has a live connection", device, signal)
		}
		if st.specKey != specKey {
			return nil, fmt.Errorf("stream %s/%s is pinned to a different encoding spec", device, signal)
		}
		st.busy = true
		t.ll.MoveToFront(el)
		return st, nil
	}
	st := &streamState{specKey: specKey, busy: true}
	t.items[key] = t.ll.PushFront(&streamEntry{key: key, st: st})
	// Evict idle streams beyond capacity; busy ones are skipped (their
	// connection still needs the position) by rotating them to the
	// front.
	for t.ll.Len() > t.max {
		oldest := t.ll.Back()
		if oldest.Value.(*streamEntry).st.busy {
			t.ll.MoveToFront(oldest)
			continue
		}
		t.ll.Remove(oldest)
		delete(t.items, oldest.Value.(*streamEntry).key)
	}
	return st, nil
}

// release returns a claimed stream to the table for a later reconnect.
func (t *streamTable) release(device, signal string) {
	key := device + "\x00" + signal
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[key]; ok {
		el.Value.(*streamEntry).st.busy = false
	}
}

// serveStream is the accept loop on the streaming listener.
func (s *Server) serveStream(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Listener closed: either Shutdown or a fatal accept error;
			// both end the loop.
			return
		}
		if s.Draining() {
			_ = writeStreamLine(conn, map[string]string{"state": "draining"})
			conn.Close()
			continue
		}
		s.streamMu.Lock()
		s.streamConns[conn] = struct{}{}
		s.streamMu.Unlock()
		s.streamWG.Add(1)
		go func() {
			defer s.streamWG.Done()
			defer func() {
				s.streamMu.Lock()
				delete(s.streamConns, conn)
				s.streamMu.Unlock()
				conn.Close()
			}()
			s.handleStreamConn(conn)
		}()
	}
}

// shutdownStream drains the streaming side: stop accepting, wake every
// connection blocked waiting for its next frame (an expired read
// deadline surfaces as a read error; the handler sees Draining and
// says goodbye), then wait for handlers — in-flight frames finish
// their solves — within ctx, force-closing whatever remains.
func (s *Server) shutdownStream(ctx context.Context) error {
	if s.streamLn == nil {
		return nil
	}
	s.streamLn.Close()
	s.streamMu.Lock()
	for conn := range s.streamConns {
		_ = conn.SetReadDeadline(time.Now())
	}
	s.streamMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.streamWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.streamMu.Lock()
		for conn := range s.streamConns {
			conn.Close()
		}
		s.streamMu.Unlock()
		<-done
		return fmt.Errorf("service: stream drain incomplete: %w", ctx.Err())
	}
}

// maxStreamLineBytes bounds the hello line; frame payloads are bounded
// by Config.MaxBodyBytes like HTTP bodies.
const maxStreamLineBytes = 1 << 20

func writeStreamLine(w io.Writer, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// streamFrameReply is the server's per-frame JSON line.
type streamFrameReply struct {
	Frame          int             `json:"frame"`
	Status         int             `json:"status,omitempty"`
	Error          string          `json:"error,omitempty"`
	TraceCycleBase int             `json:"trace_cycle_base,omitempty"`
	Results        []entryResponse `json:"results,omitempty"`
}

// handleStreamConn speaks the stream protocol on one connection.
func (s *Server) handleStreamConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	fail := func(code int, format string, args ...any) {
		_ = writeStreamLine(conn, map[string]any{"state": "error", "status": code, "error": fmt.Sprintf(format, args...)})
	}

	// Handshake.
	line, err := readStreamLine(br)
	if err != nil {
		fail(http.StatusBadRequest, "hello: %v", err)
		return
	}
	var hello StreamHello
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&hello); err != nil {
		fail(http.StatusBadRequest, "hello: %v", err)
		return
	}
	if hello.Device == "" || hello.Signal == "" {
		fail(http.StatusBadRequest, "hello needs device and signal")
		return
	}
	spec, err := hello.Encoding.normalize()
	if err != nil {
		fail(http.StatusBadRequest, "encoding: %v", err)
		return
	}
	constraints, propKey, err := canonProps(hello.Properties)
	if err != nil {
		code, msg := errorStatus(err)
		fail(code, "%s", msg)
		return
	}
	limit := effectiveLimit(hello.Limit, hello.CountOnly)

	st, err := s.streams.claim(hello.Device, hello.Signal, spec.key())
	if err != nil {
		fail(http.StatusConflict, "%v", err)
		return
	}
	defer s.streams.release(hello.Device, hello.Signal)
	sess := s.sessions.get(spec)
	s.obs.Counter(MetricReqStream).Inc()
	if err := writeStreamLine(conn, map[string]any{
		"state": "ok", "m": spec.M, "b": spec.B, "next_trace_cycle": st.nextTC,
	}); err != nil {
		return
	}

	// Frame loop.
	frames, entries := 0, 0
	for {
		payload, err := readFrame(br, s.cfg.MaxBodyBytes)
		if err != nil {
			if s.Draining() {
				_ = writeStreamLine(conn, map[string]string{"state": "draining"})
				return
			}
			if !errors.Is(err, io.EOF) {
				s.obs.Counter(MetricStreamFrameErrors).Inc()
				fail(http.StatusBadRequest, "frame %d: %v", frames, err)
			}
			return
		}
		if payload == nil { // zero-length frame: clean end of stream
			_ = writeStreamLine(conn, map[string]any{
				"state": "done", "frames": frames, "entries": entries,
			})
			return
		}
		reply, n, fatal := s.solveStreamFrame(hello, spec, sess, st, frames, payload, constraints, propKey, limit)
		entries += n
		if err := writeStreamLine(conn, reply); err != nil {
			return
		}
		if fatal {
			return
		}
		frames++
	}
}

// solveStreamFrame ingests one WriteLog frame into the stream: decode,
// validate against the pinned spec, solve every entry in order through
// the shared session. The stream position advances only when the whole
// frame succeeds, so a client can blindly re-send after a transient
// error (the cache makes replayed entries nearly free) — and only then
// is the frame teed into the durable store, under the hello's (device,
// signal) and its stream position, so re-sends never store twice.
// fatal marks protocol-level failures that close the connection.
func (s *Server) solveStreamFrame(hello StreamHello, spec EncodingSpec, sess *session, st *streamState, frame int, payload []byte, constraints []reconstruct.Constraint, propKey string, limit int) (reply streamFrameReply, entries int, fatal bool) {
	countOnly, timeoutMS := hello.CountOnly, hello.TimeoutMS
	defer s.obs.StartSpan(SpanStreamFrame).End()
	reply = streamFrameReply{Frame: frame}
	m, b, logEntries, err := core.ReadLog(bytes.NewReader(payload))
	if err != nil {
		s.obs.Counter(MetricStreamFrameErrors).Inc()
		reply.Status, reply.Error = http.StatusBadRequest, fmt.Sprintf("wire log: %v", err)
		return reply, 0, true
	}
	if m != spec.M || b != spec.B {
		s.obs.Counter(MetricStreamFrameErrors).Inc()
		reply.Status, reply.Error = http.StatusBadRequest, fmt.Sprintf("frame geometry (m=%d, b=%d) does not match stream (m=%d, b=%d)", m, b, spec.M, spec.B)
		return reply, 0, true
	}

	ctx, cancel := context.WithTimeout(context.Background(), s.timeout(timeoutMS))
	defer cancel()
	base := st.nextTC
	reply.TraceCycleBase = base
	for i, e := range logEntries {
		er, err := s.solveEntry(ctx, sess, e, constraints, propKey, limit, countOnly, s.admit.acquire)
		if err != nil {
			// Transient: report, drop the frame's partial results, and
			// leave nextTC where it was so a re-send is exact.
			s.obs.Counter(MetricStreamFrameErrors).Inc()
			reply.Status, reply.Error = errorStatus(err)
			reply.Results, reply.TraceCycleBase = nil, 0
			return reply, 0, false
		}
		er.TraceCycle = base + i
		reply.Results = append(reply.Results, er)
	}
	st.nextTC = base + len(logEntries)
	s.storeTee(hello.Device, hello.Signal, 0, int64(base), payload)
	s.obs.Counter(MetricStreamFrames).Inc()
	s.obs.Counter(MetricStreamEntries).Add(int64(len(logEntries)))
	return reply, len(logEntries), false
}

// readStreamLine reads one '\n'-terminated line with a hard size cap.
func readStreamLine(br *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		chunk, err := br.ReadSlice('\n')
		line = append(line, chunk...)
		if err == nil {
			return bytes.TrimRight(line, "\r\n"), nil
		}
		if err == bufio.ErrBufferFull {
			if len(line) > maxStreamLineBytes {
				return nil, fmt.Errorf("line exceeds %d bytes", maxStreamLineBytes)
			}
			continue
		}
		return nil, err
	}
}

// readFrame reads one length-prefixed frame. A zero length returns
// (nil, nil): the clean end-of-stream marker.
func readFrame(br *bufio.Reader, maxBytes int64) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 {
		return nil, nil
	}
	if int64(n) > maxBytes {
		return nil, fmt.Errorf("frame length %d exceeds cap %d", n, maxBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("short frame: %v", err)
	}
	return payload, nil
}
