package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/properties"
	"repro/internal/reconstruct"
	"repro/internal/sat"
	"repro/internal/trace"
)

// Default enumeration bounds when a request leaves limit at 0. A
// request asks for an exhaustive enumeration with limit = -1 (the
// deadline still bounds it).
const (
	defaultReconstructLimit = 16
	defaultCountLimit       = 4096
)

// jobRequest is the JSON job spec of /v1/reconstruct and /v1/count.
// Exactly one of (TP, K) or Log must be present: TP/K queries a single
// entry given inline; Log carries a whole core.WriteLog wire-format
// log (base64 in JSON, raw body for non-JSON content types) whose
// entries are queried individually.
type jobRequest struct {
	Encoding EncodingSpec `json:"encoding"`
	// TP is a single timeprint, MSB-first bits of width B; K its
	// change count.
	TP string `json:"tp,omitempty"`
	K  int    `json:"k,omitempty"`
	// Log is a wire-format timeprint log (base64-encoded in JSON).
	Log []byte `json:"log,omitempty"`
	// Cycles selects trace-cycle indices of Log (default: all).
	Cycles []int `json:"cycles,omitempty"`
	// Properties is a temporal-property expression in the
	// internal/properties grammar, e.g. "mingap(3); dk(32,3)".
	Properties string `json:"properties,omitempty"`
	// Limit caps candidates per entry: 0 = endpoint default,
	// -1 = exhaustive.
	Limit int `json:"limit,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline
	// (capped by Config.MaxTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Device, Signal and EpochUS label a wire-log job for the durable
	// log store (Config.Store): a successfully served Log is teed into
	// the store under this identity. Unset fields default to
	// "unknown-device"/"unknown-signal"/ingest time; ignored without a
	// store or for inline TP/K jobs.
	Device  string `json:"device,omitempty"`
	Signal  string `json:"signal,omitempty"`
	EpochUS int64  `json:"epoch_us,omitempty"`
}

// workItem is one (trace-cycle, entry) unit of solve work assembled
// from a job — inline TP/k, or one selected entry of a wire log.
type workItem struct {
	tc    int
	entry core.LogEntry
}

// canonProps parses and canonicalizes a properties expression. The
// parsed form's String() is the cache-key representation, so
// equivalent spellings ("mingap(3); dk(32,3)" vs "mingap(3);dk(32,3)")
// share cache entries.
func canonProps(expr string) ([]reconstruct.Constraint, string, error) {
	if expr == "" {
		return nil, "", nil
	}
	prop, err := properties.Parse(expr)
	if err != nil {
		return nil, "", badRequest("properties: %v", err)
	}
	return []reconstruct.Constraint{prop}, prop.String(), nil
}

// effectiveLimit resolves a job's limit against the endpoint defaults
// (0 = default, -1 = exhaustive).
func effectiveLimit(limit int, countOnly bool) int {
	if limit != 0 {
		return limit
	}
	if countOnly {
		return defaultCountLimit
	}
	return defaultReconstructLimit
}

// entryResponse is the per-trace-cycle result of a job.
type entryResponse struct {
	TraceCycle int    `json:"trace_cycle"`
	TP         string `json:"tp"`
	K          int    `json:"k"`
	solveResult
	// Cached reports the result came from the LRU; Coalesced that it
	// was shared with a concurrent identical request's solve.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
}

type jobResponse struct {
	M       int             `json:"m"`
	B       int             `json:"b"`
	Results []entryResponse `json:"results"`
}

// httpError carries a status code through the solve path to the
// response writer.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) *httpError {
	return &httpError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter(MetricReqReconstruct).Inc()
	s.handleJob(w, r, false)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	s.obs.Counter(MetricReqCount).Inc()
	s.handleJob(w, r, true)
}

// handleJob is the shared reconstruct/count path; countOnly drops the
// candidate materialization from the response (the cache keys differ,
// so the two endpoints never alias).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request, countOnly bool) {
	defer s.obs.StartSpan(SpanRequest).End()
	job, err := s.parseJob(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	spec, nerr := job.Encoding.normalize()
	if nerr != nil && job.Log == nil {
		// A wire log can still fill in m and b below; an inline TP/K
		// query cannot recover.
		s.writeError(w, badRequest("encoding: %v", nerr))
		return
	}

	// Assemble the (trace-cycle, entry) work list.
	var items []workItem
	if job.Log != nil {
		if job.TP != "" {
			s.writeError(w, badRequest("give either tp/k or log, not both"))
			return
		}
		m, b, entries, err := core.ReadLog(bytes.NewReader(job.Log))
		if err != nil {
			s.writeError(w, badRequest("wire log: %v", err))
			return
		}
		if job.Encoding.M == 0 {
			job.Encoding.M = m
		}
		if job.Encoding.B == 0 {
			job.Encoding.B = b
		}
		if spec, nerr = job.Encoding.normalize(); nerr != nil {
			s.writeError(w, badRequest("encoding: %v", nerr))
			return
		}
		if spec.M != m || spec.B != b {
			s.writeError(w, badRequest("encoding (m=%d, b=%d) does not match wire header (m=%d, b=%d)", spec.M, spec.B, m, b))
			return
		}
		if len(job.Cycles) == 0 {
			for tc, e := range entries {
				items = append(items, workItem{tc, e})
			}
		} else {
			for _, tc := range job.Cycles {
				if tc < 0 || tc >= len(entries) {
					s.writeError(w, badRequest("trace-cycle %d outside [0,%d)", tc, len(entries)))
					return
				}
				items = append(items, workItem{tc, entries[tc]})
			}
		}
	} else {
		if job.TP == "" {
			s.writeError(w, badRequest("need tp/k or a wire log"))
			return
		}
		tp, err := bitvec.Parse(job.TP)
		if err != nil {
			s.writeError(w, badRequest("tp: %v", err))
			return
		}
		if tp.Width() != spec.B {
			s.writeError(w, badRequest("tp width %d, want b=%d", tp.Width(), spec.B))
			return
		}
		items = append(items, workItem{0, core.LogEntry{TP: tp, K: job.K}})
	}

	// Canonicalize properties once (see canonProps: the parsed form's
	// String() is the cache-key representation).
	constraints, propKey, err := canonProps(job.Properties)
	if err != nil {
		s.writeError(w, err)
		return
	}
	limit := effectiveLimit(job.Limit, countOnly)

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(job.TimeoutMS))
	defer cancel()
	sess := s.sessions.get(spec)

	resp := jobResponse{M: spec.M, B: spec.B}
	for _, it := range items {
		er, err := s.solveEntry(ctx, sess, it.entry, constraints, propKey, limit, countOnly, s.admit.acquire)
		if err != nil {
			s.writeError(w, err)
			return
		}
		er.TraceCycle = it.tc
		resp.Results = append(resp.Results, er)
	}
	if job.Log != nil {
		// Tee the wire body into the durable store only after the whole
		// job succeeded: shed/failed requests are re-sent by clients, so
		// teeing earlier would store duplicates the counters can't
		// explain.
		s.storeTee(job.Device, job.Signal, job.EpochUS, 0, job.Log)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// solveEntry answers one (entry, properties, limit) query through the
// cache → singleflight → admission → solver pipeline. admit supplies
// the admission discipline: unary requests queue per solve, batch
// entries draw on the batch's atomic reservation.
func (s *Server) solveEntry(ctx context.Context, sess *session, entry core.LogEntry, constraints []reconstruct.Constraint, propKey string, limit int, countOnly bool, admit admitFunc) (entryResponse, error) {
	er := entryResponse{TP: entry.TP.String(), K: entry.K}
	key := cacheKey(sess.spec.key(), entry, propKey, limit, countOnly)

	if res, ok := s.cache.get(key); ok {
		er.solveResult, er.Cached = res, true
		return er, nil
	}
	res, shared, err := s.flight.do(ctx, key, func() (solveResult, error) {
		res, err := s.solve(ctx, sess, entry, constraints, limit, countOnly, admit)
		if err == nil {
			s.cache.add(key, res)
		}
		return res, err
	})
	if err != nil {
		return er, err
	}
	if shared {
		s.obs.Counter(MetricCoalesced).Inc()
	}
	er.solveResult, er.Coalesced = res, shared
	return er, nil
}

// solve answers one query under admission control and the request
// deadline, routed by the session's dispatcher to the cheapest sound
// backend (or the one pinned by Config.Oracle).
func (s *Server) solve(ctx context.Context, sess *session, entry core.LogEntry, constraints []reconstruct.Constraint, limit int, countOnly bool, admit admitFunc) (solveResult, error) {
	release, err := admit(ctx)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			return solveResult{}, &httpError{code: http.StatusTooManyRequests, msg: "admission queue full, retry later"}
		}
		return solveResult{}, s.deadlineError(err)
	}
	defer release()
	defer s.obs.StartSpan(SpanSolve).End()
	s.obs.Counter(MetricSolves).Inc()

	if s.solveDelay > 0 {
		select {
		case <-time.After(s.solveDelay):
		case <-ctx.Done():
			return solveResult{}, s.deadlineError(ctx.Err())
		}
	}

	if limit < 0 {
		limit = 0 // reconstruct's "exhaustive"
	}

	disp, err := sess.dispatcher(s.dispatchOptions())
	if err != nil {
		return solveResult{}, badRequest("encoding: %v", err)
	}
	sigs, exhausted, dec, err := disp.EnumerateRouted(ctx, entry, constraints, limit)
	if dec.Chosen == reconstruct.RouteSession && dec.FellBack {
		// A solve routed to the incremental session that it could not
		// express (constraint the session cannot guard) and re-ran on
		// one-shot SAT.
		s.obs.Counter(MetricSessionFallback).Inc()
	}
	if err != nil {
		if errors.Is(err, core.ErrWidth) || errors.Is(err, core.ErrKRange) {
			return solveResult{}, badRequest("%v", err)
		}
		return solveResult{}, s.solveError(ctx, err)
	}
	return s.solveResultFrom(sigs, exhausted, countOnly), nil
}

// dispatchOptions renders the server config as the per-session
// dispatcher configuration.
func (s *Server) dispatchOptions() reconstruct.DispatchOptions {
	return reconstruct.DispatchOptions{
		Force:          s.cfg.Oracle,
		Workers:        1,
		SessionMaxK:    s.cfg.SessionMaxK,
		DisableSession: s.cfg.DisableIncremental,
		GaussInSearch:  s.cfg.GaussInSearch,
		MaxConflicts:   s.cfg.MaxConflicts,
		Obs:            s.obs,
	}
}

// solveError maps enumeration errors to HTTP semantics, shared by the
// incremental and one-shot paths.
func (s *Server) solveError(ctx context.Context, err error) error {
	switch {
	case errors.Is(err, sat.ErrInterrupted):
		return s.deadlineError(ctx.Err())
	case errors.Is(err, sat.ErrBudget):
		return &httpError{code: http.StatusServiceUnavailable, msg: "solver conflict budget exhausted"}
	}
	return err
}

func (s *Server) solveResultFrom(sigs []core.Signal, exhausted, countOnly bool) solveResult {
	res := solveResult{Count: len(sigs), Exhausted: exhausted}
	if !countOnly {
		res.Candidates = make([]string, len(sigs))
		res.Changes = make([][]int, len(sigs))
		for i, sig := range sigs {
			res.Candidates[i] = sig.String()
			res.Changes[i] = sig.Changes()
		}
	}
	return res
}

// deadlineError maps a context error to the HTTP layer: an expired
// deadline is 504 (and counted), a client cancellation is 499-style
// (reported as 504 too — the connection is gone anyway).
func (s *Server) deadlineError(err error) error {
	s.obs.Counter(MetricTimeouts).Inc()
	msg := "request deadline exceeded before the solve finished"
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		msg = "request cancelled before the solve finished"
	}
	return &httpError{code: http.StatusGatewayTimeout, msg: msg}
}

// cacheKey hashes the canonical query identity: encoding session key,
// timeprint, k, properties, limit and operation. Two requests agree on
// the key iff the engine would do identical work for them.
func cacheKey(sessKey string, entry core.LogEntry, propKey string, limit int, countOnly bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|tp=%s|k=%d|props=%s|limit=%d|count=%t", sessKey, entry.TP.Key(), entry.K, propKey, limit, countOnly)
	return hex.EncodeToString(h.Sum(nil))
}

// timeout resolves the effective per-request deadline.
func (s *Server) timeout(requestMS int) time.Duration {
	d := s.cfg.DefaultTimeout
	if requestMS > 0 {
		d = time.Duration(requestMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// parseJob reads a job from either a JSON body or a raw wire-format
// body with query-parameter options.
func (s *Server) parseJob(r *http.Request) (jobRequest, error) {
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		var job jobRequest
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&job); err != nil {
			return jobRequest{}, badRequest("json body: %v", err)
		}
		return job, nil
	}
	// Raw wire-format body; options ride in the query string.
	raw, err := io.ReadAll(body)
	if err != nil {
		return jobRequest{}, badRequest("body: %v", err)
	}
	if len(raw) == 0 {
		return jobRequest{}, badRequest("empty body")
	}
	job := jobRequest{Log: raw}
	q := r.URL.Query()
	job.Encoding.Scheme = q.Get("scheme")
	job.Properties = q.Get("properties")
	job.Device = q.Get("device")
	job.Signal = q.Get("signal")
	if v := q.Get("epoch_us"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return jobRequest{}, badRequest("query epoch_us=%q: %v", v, err)
		}
		job.EpochUS = n
	}
	for name, dst := range map[string]*int{
		"m": &job.Encoding.M, "b": &job.Encoding.B, "depth": &job.Encoding.Depth,
		"limit": &job.Limit, "timeout_ms": &job.TimeoutMS,
	} {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return jobRequest{}, badRequest("query %s=%q: %v", name, v, err)
			}
			*dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return jobRequest{}, badRequest("query seed=%q: %v", v, err)
		}
		job.Encoding.Seed = n
	}
	if v := q.Get("cycles"); v != "" {
		for _, part := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return jobRequest{}, badRequest("query cycles=%q: %v", v, err)
			}
			job.Cycles = append(job.Cycles, n)
		}
	}
	return job, nil
}

// compareRequest carries two wire logs recorded under the same trace
// parameters; /v1/compare diffs them trace-cycle by trace-cycle (the
// paper's Section 5.2.2 hardware-vs-simulation check as a service).
type compareRequest struct {
	Encoding EncodingSpec `json:"encoding"`
	// Ref and Obs are core.WriteLog wire logs (base64 in JSON): the
	// reference (simulation) side and the observed (hardware) side.
	Ref []byte `json:"ref"`
	Obs []byte `json:"obs"`
}

type compareMismatch struct {
	TraceCycle int  `json:"trace_cycle"`
	KDiffers   bool `json:"k_differs"`
	TPDiffers  bool `json:"tp_differs"`
	// StartS is the absolute start time of the trace-cycle, present
	// when the session's clock rate is known.
	StartS *float64 `json:"start_s,omitempty"`
}

type compareResponse struct {
	M          int               `json:"m"`
	B          int               `json:"b"`
	Cycles     int               `json:"cycles_compared"`
	Mismatches []compareMismatch `json:"mismatches"`
	// First is the earliest mismatching trace-cycle, -1 when the logs
	// agree — the localization answer a debug flow consumes first.
	First int `json:"first_mismatch"`
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	defer s.obs.StartSpan(SpanRequest).End()
	s.obs.Counter(MetricReqCompare).Inc()
	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	var req compareRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, badRequest("json body: %v", err))
		return
	}
	if len(req.Ref) == 0 || len(req.Obs) == 0 {
		s.writeError(w, badRequest("need both ref and obs wire logs"))
		return
	}
	mr, br, refEntries, err := core.ReadLog(bytes.NewReader(req.Ref))
	if err != nil {
		s.writeError(w, badRequest("ref log: %v", err))
		return
	}
	mo, bo, obsEntries, err := core.ReadLog(bytes.NewReader(req.Obs))
	if err != nil {
		s.writeError(w, badRequest("obs log: %v", err))
		return
	}
	if mr != mo || br != bo {
		s.writeError(w, badRequest("logs disagree on geometry: ref (m=%d, b=%d) vs obs (m=%d, b=%d)", mr, br, mo, bo))
		return
	}
	if req.Encoding.M == 0 {
		req.Encoding.M = mr
	}
	if req.Encoding.B == 0 {
		req.Encoding.B = br
	}
	spec, nerr := req.Encoding.normalize()
	if nerr != nil {
		s.writeError(w, badRequest("encoding: %v", nerr))
		return
	}
	if spec.M != mr || spec.B != br {
		s.writeError(w, badRequest("encoding (m=%d, b=%d) does not match logs (m=%d, b=%d)", spec.M, spec.B, mr, br))
		return
	}
	// Register the session (shared with reconstruct/count requests for
	// the same signal, and counted by the sessions gauge), then build
	// the two aligned stores.
	s.sessions.get(spec)
	ref := trace.NewStore("ref", spec.ClockHz, mr, br)
	obsStore := trace.NewStore("obs", spec.ClockHz, mr, br)
	ref.Epoch, obsStore.Epoch = spec.Epoch, spec.Epoch
	ref.Obs = s.obs
	if err := ref.Append(refEntries...); err != nil {
		s.writeError(w, badRequest("ref log: %v", err))
		return
	}
	if err := obsStore.Append(obsEntries...); err != nil {
		s.writeError(w, badRequest("obs log: %v", err))
		return
	}
	mms, err := trace.Compare(ref, obsStore)
	if err != nil {
		s.writeError(w, badRequest("compare: %v", err))
		return
	}
	n := min(len(refEntries), len(obsEntries))
	resp := compareResponse{
		M: mr, B: br, Cycles: n,
		Mismatches: make([]compareMismatch, 0, len(mms)),
		First:      trace.FirstMismatch(mms),
	}
	for _, mm := range mms {
		cm := compareMismatch{TraceCycle: mm.TraceCycle, KDiffers: mm.KDiffers, TPDiffers: mm.TPDiffers}
		if spec.ClockHz > 0 {
			t := ref.TraceCycleStart(mm.TraceCycle)
			cm.StartS = &t
		}
		resp.Mismatches = append(resp.Mismatches, cm)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, map[string]string{"status": status})
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorStatus maps a solve-path error to its HTTP status and message —
// the per-job form of writeError the batch endpoint embeds in job
// results instead of failing the whole request.
func errorStatus(err error) (int, string) {
	he := &httpError{code: http.StatusInternalServerError, msg: err.Error()}
	errors.As(err, &he)
	return he.code, he.msg
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	he := &httpError{code: http.StatusInternalServerError, msg: err.Error()}
	errors.As(err, &he)
	if he.code == http.StatusTooManyRequests {
		// The client should back off for about one solve's worth of
		// queue drain; 1s is the conventional coarse hint.
		w.Header().Set("Retry-After", "1")
	} else {
		s.obs.Counter(MetricErrors).Inc()
	}
	s.writeJSON(w, he.code, map[string]string{"error": he.msg})
}
