package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/reconstruct"
)

// batchRequest is the JSON body of POST /v1/batch: many jobs against
// one shared encoding spec. The whole batch runs on a single session —
// one encoding build, one dispatcher — which is the point: a fleet
// frontend flushes a window of queries for one signal in one request
// instead of paying the session lookup and HTTP round-trip per query.
type batchRequest struct {
	Encoding EncodingSpec `json:"encoding"`
	Jobs     []batchJob   `json:"jobs"`
	// TimeoutMS bounds the whole batch (capped by Config.MaxTimeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// batchJob is one query of a batch: an inline TP/k entry or a wire log
// (optionally windowed by Cycles), with per-job properties, limit and
// count-only mode. The encoding is shared batch-wide and deliberately
// absent here.
type batchJob struct {
	TP         string `json:"tp,omitempty"`
	K          int    `json:"k,omitempty"`
	Log        []byte `json:"log,omitempty"`
	Cycles     []int  `json:"cycles,omitempty"`
	Properties string `json:"properties,omitempty"`
	Limit      int    `json:"limit,omitempty"`
	CountOnly  bool   `json:"count_only,omitempty"`
}

// batchJobResult is the per-job slot of the response. Jobs fail
// independently: Status carries the HTTP status the job would have
// drawn as a unary request (200, 400, 504, ...), so one malformed or
// timed-out job never poisons its siblings.
type batchJobResult struct {
	Index   int             `json:"index"`
	Status  int             `json:"status"`
	Error   string          `json:"error,omitempty"`
	Results []entryResponse `json:"results,omitempty"`
}

type batchResponse struct {
	M    int              `json:"m"`
	B    int              `json:"b"`
	Jobs []batchJobResult `json:"jobs"`
}

// parseBatchRequest decodes and structurally validates a batch body.
// It is a pure function over the raw bytes (no server state) so the
// fuzz target can drive it directly.
func parseBatchRequest(data []byte, maxJobs int) (batchRequest, error) {
	var req batchRequest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return batchRequest{}, badRequest("json body: %v", err)
	}
	if dec.More() {
		return batchRequest{}, badRequest("trailing data after batch object")
	}
	if len(req.Jobs) == 0 {
		return batchRequest{}, badRequest("batch needs at least one job")
	}
	if len(req.Jobs) > maxJobs {
		return batchRequest{}, badRequest("batch has %d jobs, cap is %d", len(req.Jobs), maxJobs)
	}
	return req, nil
}

// batchPlan is one job resolved against the shared spec: its work
// items plus the canonicalized solve parameters — or the per-job error
// that takes its response slot instead.
type batchPlan struct {
	items       []workItem
	constraints []reconstruct.Constraint
	propKey     string
	limit       int
	countOnly   bool
	err         *httpError
}

// planBatchJob resolves one job against the already-normalized shared
// spec. Errors are per-job: they fail this plan, not the batch.
func planBatchJob(spec EncodingSpec, job batchJob) batchPlan {
	p := batchPlan{countOnly: job.CountOnly}
	fail := func(he *httpError) batchPlan { return batchPlan{err: he} }
	switch {
	case job.Log != nil && job.TP != "":
		return fail(badRequest("give either tp/k or log, not both"))
	case job.Log != nil:
		m, b, entries, err := core.ReadLog(bytes.NewReader(job.Log))
		if err != nil {
			return fail(badRequest("wire log: %v", err))
		}
		if m != spec.M || b != spec.B {
			return fail(badRequest("wire header (m=%d, b=%d) does not match batch encoding (m=%d, b=%d)", m, b, spec.M, spec.B))
		}
		if len(job.Cycles) == 0 {
			for tc, e := range entries {
				p.items = append(p.items, workItem{tc, e})
			}
		} else {
			for _, tc := range job.Cycles {
				if tc < 0 || tc >= len(entries) {
					return fail(badRequest("trace-cycle %d outside [0,%d)", tc, len(entries)))
				}
				p.items = append(p.items, workItem{tc, entries[tc]})
			}
		}
	case job.TP != "":
		tp, err := bitvec.Parse(job.TP)
		if err != nil {
			return fail(badRequest("tp: %v", err))
		}
		if tp.Width() != spec.B {
			return fail(badRequest("tp width %d, want b=%d", tp.Width(), spec.B))
		}
		p.items = append(p.items, workItem{0, core.LogEntry{TP: tp, K: job.K}})
	default:
		return fail(badRequest("need tp/k or a wire log"))
	}
	constraints, propKey, err := canonProps(job.Properties)
	if err != nil {
		code, msg := errorStatus(err)
		return fail(&httpError{code: code, msg: msg})
	}
	p.constraints, p.propKey = constraints, propKey
	p.limit = effectiveLimit(job.Limit, job.CountOnly)
	return p
}

// resolveBatchSpec normalizes the shared spec, borrowing m and b from
// the first decodable wire log when the request leaves them unset
// (mirroring the unary wire-log convenience).
func resolveBatchSpec(req batchRequest) (EncodingSpec, error) {
	if req.Encoding.M == 0 || req.Encoding.B == 0 {
		for _, job := range req.Jobs {
			if job.Log == nil {
				continue
			}
			m, b, _, err := core.ReadLog(bytes.NewReader(job.Log))
			if err != nil {
				continue // the job's own plan reports this
			}
			if req.Encoding.M == 0 {
				req.Encoding.M = m
			}
			if req.Encoding.B == 0 {
				req.Encoding.B = b
			}
			break
		}
	}
	spec, err := req.Encoding.normalize()
	if err != nil {
		return spec, badRequest("encoding: %v", err)
	}
	return spec, nil
}

// handleBatch runs many jobs against one shared session. Admission is
// atomic: the batch reserves one queue position per solve entry up
// front (reserveBatch) and is shed whole with 429 when they do not all
// fit — a batch never half-runs. Within the admitted batch, entries
// solve with bounded parallelism (Config.BatchParallelism), every one
// drawing its worker slot through the shared grant, and each job
// reports its own typed status.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	defer s.obs.StartSpan(SpanRequest).End()
	defer s.obs.StartSpan(SpanBatch).End()
	s.obs.Counter(MetricReqBatch).Inc()

	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		s.writeError(w, badRequest("body: %v", err))
		return
	}
	req, err := parseBatchRequest(data, s.cfg.MaxBatchJobs)
	if err != nil {
		s.writeError(w, err)
		return
	}
	spec, err := resolveBatchSpec(req)
	if err != nil {
		s.writeError(w, err)
		return
	}

	// Plan every job before admitting anything, so the reservation is
	// sized by real solve entries and malformed jobs cost nothing.
	plans := make([]batchPlan, len(req.Jobs))
	total := 0
	for i, job := range req.Jobs {
		plans[i] = planBatchJob(spec, job)
		total += len(plans[i].items)
	}

	grant, err := s.admit.reserveBatch(total)
	if err != nil {
		s.obs.Counter(MetricBatchShed).Inc()
		s.writeError(w, &httpError{code: http.StatusTooManyRequests, msg: "admission queue cannot fit the whole batch, retry later"})
		return
	}
	defer grant.close()
	s.obs.Counter(MetricBatchJobs).Add(int64(len(req.Jobs)))
	s.obs.Counter(MetricBatchEntries).Add(int64(total))

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()
	sess := s.sessions.get(spec)

	// Flatten the admitted entries into tasks and fan out across a
	// bounded worker pool; each (job, item) slot is written by exactly
	// one worker, so assembly below needs no locking.
	type task struct{ job, item int }
	var tasks []task
	for j, p := range plans {
		for i := range p.items {
			tasks = append(tasks, task{j, i})
		}
	}
	results := make([][]entryResponse, len(plans))
	errs := make([][]error, len(plans))
	for j, p := range plans {
		results[j] = make([]entryResponse, len(p.items))
		errs[j] = make([]error, len(p.items))
	}
	workers := min(s.cfg.BatchParallelism, len(tasks))
	next := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				p := &plans[t.job]
				er, err := s.solveEntry(ctx, sess, p.items[t.item].entry, p.constraints, p.propKey, p.limit, p.countOnly, grant.acquire)
				if err != nil {
					errs[t.job][t.item] = err
					continue
				}
				er.TraceCycle = p.items[t.item].tc
				results[t.job][t.item] = er
			}
		}()
	}
	for _, t := range tasks {
		next <- t
	}
	close(next)
	wg.Wait()

	resp := batchResponse{M: spec.M, B: spec.B, Jobs: make([]batchJobResult, len(plans))}
	for j, p := range plans {
		jr := batchJobResult{Index: j, Status: http.StatusOK}
		if p.err != nil {
			jr.Status, jr.Error = p.err.code, p.err.msg
			resp.Jobs[j] = jr
			continue
		}
		for i := range p.items {
			if err := errs[j][i]; err != nil {
				// The first failing entry (in item order) speaks for the
				// job; partial results are dropped rather than returned
				// mislabeled as complete.
				jr.Status, jr.Error = errorStatus(err)
				jr.Results = nil
				break
			}
			jr.Results = append(jr.Results, results[j][i])
		}
		resp.Jobs[j] = jr
	}
	s.writeJSON(w, http.StatusOK, resp)
}
