// Package service implements timeprintd, the streaming reconstruction
// daemon: a long-running HTTP service that ingests timeprint logs —
// either the bit-exact core.WriteLog wire format or JSON job specs —
// and answers signal-reconstruction queries with the existing
// reconstruct engine.
//
// This is the off-chip backend of the paper's Figure 3 pipeline turned
// into a server: the on-chip logger streams constant-rate (TP, k)
// entries off-chip, and debug clients POST them here for on-demand
// reconstruction instead of running the solver locally.
//
//	POST /v1/reconstruct   enumerate candidate signals for log entries
//	POST /v1/count         count candidate signals (ambiguity probe)
//	POST /v1/compare       diff two wire logs trace-cycle by trace-cycle
//	GET  /healthz          liveness and drain state
//	GET  /metrics(.txt)    live obs.Registry snapshot
//
// The serving discipline is built for sustained heavy traffic:
//
//   - Sessions. Encodings are expensive to generate (the greedy LI-4
//     constructions are O(m³)); a session keyed by the canonical
//     (m, b, encoding, ClockHz/Epoch) tuple builds each encoding once
//     and shares it across requests.
//   - Bounded admission. SAT solves pass through a bounded admission
//     queue; when it is full the server sheds load with 429 and a
//     Retry-After hint instead of collapsing under a convoy.
//   - Deadlines. Every request runs under a deadline that is threaded
//     into the solver as a cooperative sat.Solver.Interrupt, so an
//     adversarial instance cannot pin a worker.
//   - Caching + coalescing. Results are cached in an LRU keyed by a
//     canonical hash of (encoding, m, b, TP, k, properties, limit),
//     and concurrent identical requests coalesce onto one in-flight
//     solve (singleflight), so a thundering herd of equal queries
//     costs exactly one SAT search.
//   - Graceful drain. Shutdown stops accepting, lets in-flight
//     requests finish inside a drain budget, then cancels stragglers.
package service

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/logstore"
	"repro/internal/obs"
	"repro/internal/reconstruct"
)

// Metric names published by the service layer.
const (
	// Per-endpoint request counters. MetricReqBatch counts /v1/batch
	// requests (admitted or shed); MetricReqStream counts streaming
	// ingest connections that completed a handshake.
	MetricReqReconstruct = "service.requests.reconstruct"
	MetricReqCount       = "service.requests.count"
	MetricReqCompare     = "service.requests.compare"
	MetricReqBatch       = "service.requests.batch"
	MetricReqStream      = "service.requests.stream"
	// MetricShed counts requests rejected with 429 because the
	// admission queue was full; MetricTimeouts counts solves stopped by
	// a request deadline (mapped to 504).
	MetricShed     = "service.http.shed"
	MetricTimeouts = "service.http.timeouts"
	MetricErrors   = "service.http.errors"
	// Admission-control gauges: queued solves waiting for a worker slot
	// and solves currently running (Max is peak concurrency).
	MetricQueueDepth = "service.queue.depth"
	MetricSolveBusy  = "service.solve.busy"
	// Cache counters: lookups served from the LRU, misses that led a
	// solve, entries evicted by capacity, and requests that coalesced
	// onto another request's in-flight solve.
	MetricCacheHits    = "service.cache.hits"
	MetricCacheMisses  = "service.cache.misses"
	MetricCacheEvicted = "service.cache.evicted"
	MetricCoalesced    = "service.coalesced"
	// MetricSolves counts SAT solves actually executed (cache misses
	// that won the singleflight race); MetricSessions counts live
	// sessions.
	MetricSolves   = "service.solves"
	MetricSessions = "service.sessions"
	// Incremental-session counters: solves answered by the retained
	// warm solver (reuse) and solves that found it busy and ran on a
	// clone of the session prototype instead. Both are published by
	// reconstruct.SessionOracle now that the dispatcher owns the
	// session pattern; the aliases keep the service's documented names
	// stable. MetricSessionFallback counts solves routed to the session
	// that it could not express (unsupported k, constraint the session
	// cannot guard) and were re-run on one-shot SAT.
	MetricSessionReuse    = reconstruct.MetricOracleSessionReuse
	MetricSessionClone    = reconstruct.MetricOracleSessionClone
	MetricSessionFallback = "service.session.fallback"
	// SpanSolve times the solve path (queue wait excluded); SpanRequest
	// times whole requests including queueing and serialization.
	SpanSolve   = "service.solve"
	SpanRequest = "service.request"
	// Batch counters: jobs and solve entries processed by admitted
	// batches, and batches rejected atomically because their entry
	// count did not fit the admission queue (also counted by
	// MetricShed). SpanBatch times whole /v1/batch requests.
	MetricBatchJobs    = "service.batch.jobs"
	MetricBatchEntries = "service.batch.entries"
	MetricBatchShed    = "service.batch.shed"
	SpanBatch          = "service.batch"
	// MetricEncodingBuilds counts session encodings actually
	// constructed — the amortization witness: a batch of N jobs (or a
	// whole stream) against one spec moves it by exactly 1.
	MetricEncodingBuilds = "service.encoding.builds"
	// Streaming-ingest counters: frames and entries accepted, and
	// frames answered with a per-frame error (shed, deadline, solver
	// budget). SpanStreamFrame times frame turnarounds.
	MetricStreamFrames      = "service.stream.frames"
	MetricStreamEntries     = "service.stream.entries"
	MetricStreamFrameErrors = "service.stream.frame_errors"
	SpanStreamFrame         = "service.stream.frame"
	// Durable log store integration (store.go): wire logs teed into
	// Config.Store after successful ingest, tee failures (counted, never
	// failing the serving request), and the forensic endpoints'
	// request counters.
	MetricStoreTees      = "service.store.tees"
	MetricStoreTeeErrors = "service.store.tee_errors"
	MetricReqLogs        = "service.requests.logs"
	MetricReqQuery       = "service.requests.query"
)

// Config tunes a Server. The zero value serves on an ephemeral port
// with sensible production defaults.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// QueueDepth bounds how many solves may wait for a worker slot
	// before the server sheds load with 429 (default 64).
	QueueDepth int
	// Workers bounds concurrently running solves (default GOMAXPROCS).
	Workers int
	// CacheSize is the LRU result-cache capacity in entries
	// (default 1024).
	CacheSize int
	// DefaultTimeout is the per-request solve deadline when the request
	// does not set one (default 10s); MaxTimeout caps what a request
	// may ask for (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxConflicts is a server-side cap on solver effort per solve;
	// 0 means unlimited.
	MaxConflicts int64
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// DrainTimeout bounds graceful shutdown: after SIGTERM, in-flight
	// requests get this long to finish before being cancelled
	// (default 15s).
	DrainTimeout time.Duration
	// MaxSessions bounds the session table (default 256); least
	// recently used sessions are evicted beyond it.
	MaxSessions int
	// SessionMaxK caps the change counts the incremental per-session
	// solver encodes its cardinality ladder for (default 16); entries
	// with larger k fall back to a one-shot instance.
	SessionMaxK int
	// DisableIncremental turns off per-session solver reuse: every
	// solve builds a fresh SAT instance (ablation/debug).
	DisableIncremental bool
	// GaussInSearch enables in-search Gaussian elimination in the
	// incremental session solvers: the reduced parity matrix stays live
	// across decision levels, extracting implications and conflicts
	// mid-search (the -gauss daemon flag).
	GaussInSearch bool
	// MaxBatchJobs bounds the jobs one /v1/batch request may carry
	// (default 256); BatchParallelism bounds how many of a batch's
	// entries solve concurrently (default Workers). Note the whole
	// batch's entry count must also fit the admission queue
	// (QueueDepth) or the batch is shed atomically with 429.
	MaxBatchJobs     int
	BatchParallelism int
	// StreamAddr, when non-empty, serves the length-prefixed TCP
	// streaming-ingest protocol (see stream.go) on this address
	// alongside the HTTP listener.
	StreamAddr string
	// MaxStreams bounds the per-(device,signal) stream-session table
	// (default 4096).
	MaxStreams int
	// Oracle pins every solve to one reconstruction backend ("sat",
	// "sat-par", "sat-inc", "decode", "brute", "exhaustive"). "" or
	// "auto" (the default) lets the dispatcher's cost model route each
	// request to the cheapest sound backend.
	Oracle string
	// Store, when non-nil, is the durable log store (internal/logstore)
	// the server tees ingested wire logs into and serves GET /v1/logs
	// and POST /v1/query from. The store is caller-owned: the caller
	// opens it (handling recovery reports) and closes it after
	// Shutdown.
	Store *logstore.Store
	// Obs receives the service metrics; nil disables instrumentation
	// (every layer below tolerates that).
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.SessionMaxK <= 0 {
		c.SessionMaxK = 16
	}
	if c.MaxBatchJobs <= 0 {
		c.MaxBatchJobs = 256
	}
	if c.BatchParallelism <= 0 {
		c.BatchParallelism = c.Workers
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 4096
	}
	return c
}

// Server is a live timeprintd instance. Construct with New, then
// either Start/Shutdown for embedding or Run for the daemon shape.
type Server struct {
	cfg      Config
	obs      *obs.Registry
	sessions *sessionTable
	cache    *lruCache
	flight   *flightGroup
	admit    *admission
	store    *logstore.Store

	http     *http.Server
	listener net.Listener
	ready    chan struct{}
	draining atomic.Bool

	// Streaming-ingest state (stream.go): the TCP listener bound when
	// Config.StreamAddr is set, the per-(device,signal) stream-session
	// table, and the live-connection tracking Shutdown uses to wake and
	// drain blocked frame reads.
	streamLn    net.Listener
	streams     *streamTable
	streamMu    sync.Mutex
	streamConns map[net.Conn]struct{}
	streamWG    sync.WaitGroup

	// solveDelay stretches every solve; tests use it to hold requests
	// in flight deterministically. Zero in production.
	solveDelay time.Duration
}

// New builds a server from cfg. It does not bind the listener yet.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		obs:      cfg.Obs,
		sessions: newSessionTable(cfg.MaxSessions, cfg.Obs),
		cache:    newLRUCache(cfg.CacheSize, cfg.Obs),
		flight:   newFlightGroup(),
		admit:    newAdmission(cfg.QueueDepth, cfg.Workers, cfg.Obs),
		store:    cfg.Store,
		ready:    make(chan struct{}),

		streams:     newStreamTable(cfg.MaxStreams),
		streamConns: make(map[net.Conn]struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/reconstruct", s.handleReconstruct)
	mux.HandleFunc("POST /v1/count", s.handleCount)
	mux.HandleFunc("POST /v1/compare", s.handleCompare)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	if s.store != nil {
		mux.HandleFunc("GET /v1/logs", s.handleStoreLogs)
		mux.HandleFunc("POST /v1/query", s.handleStoreQuery)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.Obs != nil {
		h := obs.Handler(cfg.Obs)
		mux.Handle("GET /metrics", h)
		mux.Handle("GET /metrics.txt", h)
	}
	s.http = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler exposes the service mux (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.http.Handler }

// Start binds the listener(s) and serves in a background goroutine. It
// returns the bound HTTP address once the server is accepting
// connections; when Config.StreamAddr is set the streaming-ingest TCP
// listener is bound too (see StreamAddr for its bound address).
func (s *Server) Start() (net.Addr, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("service: listen %s: %w", s.cfg.Addr, err)
	}
	s.listener = ln
	if s.cfg.StreamAddr != "" {
		sln, err := net.Listen("tcp", s.cfg.StreamAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("service: stream listen %s: %w", s.cfg.StreamAddr, err)
		}
		s.streamLn = sln
		go s.serveStream(sln)
	}
	close(s.ready)
	go func() {
		// ErrServerClosed is the normal shutdown outcome.
		_ = s.http.Serve(ln)
	}()
	return ln.Addr(), nil
}

// Ready is closed once the listener is bound.
func (s *Server) Ready() <-chan struct{} { return s.ready }

// Addr returns the bound address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.listener == nil {
		return nil
	}
	return s.listener.Addr()
}

// StreamAddr returns the bound streaming-ingest address (nil before
// Start or when Config.StreamAddr is unset).
func (s *Server) StreamAddr() net.Addr {
	if s.streamLn == nil {
		return nil
	}
	return s.streamLn.Addr()
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server gracefully: the listener closes, idle
// connections are torn down, and in-flight requests get until ctx's
// deadline to finish; after that the remaining connections are closed
// hard, which cancels their request contexts and — through
// InterruptOnDone — interrupts any solver still searching.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	streamErr := s.shutdownStream(ctx)
	if err := s.http.Shutdown(ctx); err != nil {
		closeErr := s.http.Close()
		return fmt.Errorf("service: drain incomplete (%w), connections closed (close: %v)", err, closeErr)
	}
	return streamErr
}

// Run is the daemon main loop: Start, then serve until ctx is
// cancelled (the caller wires SIGTERM/SIGINT into ctx via
// signal.NotifyContext), then drain within Config.DrainTimeout. It
// returns nil on a clean drain.
func (s *Server) Run(ctx context.Context) error {
	if _, err := s.Start(); err != nil {
		return err
	}
	<-ctx.Done()
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(dctx)
}
