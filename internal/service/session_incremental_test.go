package service

import (
	"testing"

	"repro/internal/sat"
)

// Sequential distinct queries against one encoding session pinned to
// the incremental backend must all be answered by the warm retained
// solver, with zero fallbacks to one-shot instances. (The oracle is
// pinned because auto-routing would send these small instances to the
// cheaper brute/decode backends.)
func TestIncrementalSessionCounters(t *testing.T) {
	_, base, reg := startServer(t, Config{Workers: 2, Oracle: "sat-inc"}, 0)
	queries := [][]int{{3, 7}, {2, 11}, {5, 9}}
	for i, changes := range queries {
		wire, _ := testLog(t, 16, 9, changes...)
		q := "scheme=incremental&depth=4&limit=-1"
		if i == 2 {
			q += "&properties=mingap(2)"
		}
		resp, body, err := postWire(base, wire, q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("query %d: status %d (%v)", i, resp.StatusCode, body)
		}
		results := body["results"].([]any)
		r0 := results[0].(map[string]any)
		if r0["exhausted"] != true || r0["count"].(float64) < 1 {
			t.Fatalf("query %d: result %v", i, r0)
		}
	}
	snap := reg.Snapshot()
	reuse, clone := snap.Counters[MetricSessionReuse], snap.Counters[MetricSessionClone]
	if reuse+clone != int64(len(queries)) {
		t.Fatalf("reuse=%d clone=%d, want sum %d", reuse, clone, len(queries))
	}
	if fb := snap.Counters[MetricSessionFallback]; fb != 0 {
		t.Fatalf("fallbacks = %d, want 0", fb)
	}
	if snap.Counters[sat.MetricAssumptionSolves] == 0 {
		t.Fatal("no assumption solves recorded")
	}
}

// A change count beyond the session ladder falls back to the one-shot
// path and still answers correctly.
func TestIncrementalFallbackOnLargeK(t *testing.T) {
	_, base, reg := startServer(t, Config{SessionMaxK: 2, Oracle: "sat-inc"}, 0)
	wire, _ := testLog(t, 16, 9, 2, 5, 9) // k = 3 > SessionMaxK
	resp, body, err := postWire(base, wire, "scheme=incremental&depth=4&limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d (%v)", resp.StatusCode, body)
	}
	r0 := body["results"].([]any)[0].(map[string]any)
	if r0["exhausted"] != true || r0["count"].(float64) < 1 {
		t.Fatalf("result %v", r0)
	}
	snap := reg.Snapshot()
	if fb := snap.Counters[MetricSessionFallback]; fb != 1 {
		t.Fatalf("fallbacks = %d, want 1", fb)
	}
	if n := snap.Counters[MetricSessionReuse] + snap.Counters[MetricSessionClone]; n != 0 {
		t.Fatalf("incremental solves = %d, want 0", n)
	}
}

// DisableIncremental routes everything through the one-shot path
// without even counting fallbacks.
func TestIncrementalDisabled(t *testing.T) {
	_, base, reg := startServer(t, Config{DisableIncremental: true}, 0)
	wire, _ := testLog(t, 16, 9, 3, 7)
	resp, body, err := postWire(base, wire, "scheme=incremental&depth=4&limit=-1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d (%v)", resp.StatusCode, body)
	}
	snap := reg.Snapshot()
	for _, m := range []string{MetricSessionReuse, MetricSessionClone, MetricSessionFallback} {
		if v := snap.Counters[m]; v != 0 {
			t.Fatalf("%s = %d with incremental disabled", m, v)
		}
	}
}
