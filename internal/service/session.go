package service

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/encoding"
	"repro/internal/obs"
	"repro/internal/reconstruct"
)

// EncodingSpec names an encoding (and the trace parameters of the
// signal logged under it) in a request. It is the session key: two
// requests with the same canonical spec share one built encoding.
type EncodingSpec struct {
	// Scheme selects the generator: "incremental" (default), "random",
	// "binary", "onehot", or "explicit" (Timestamps given verbatim).
	Scheme string `json:"scheme,omitempty"`
	// M is the trace-cycle length, B the timestamp width. For wire-log
	// requests both default to the log header's values; for binary and
	// onehot schemes B is derived from M and may be omitted.
	M int `json:"m,omitempty"`
	B int `json:"b,omitempty"`
	// Depth is the linear-independence depth for the generated schemes
	// (default 4, the paper's choice).
	Depth int `json:"depth,omitempty"`
	// Seed drives the "random" scheme.
	Seed int64 `json:"seed,omitempty"`
	// Timestamps (MSB-first bit strings, width B) define an "explicit"
	// encoding, e.g. the paper's Figure 4 table.
	Timestamps []string `json:"timestamps,omitempty"`
	// ClockHz and Epoch are the traced signal's clock rate and the
	// absolute time of clock-cycle 0 — the trace.Store parameters, used
	// by /v1/compare to map mismatches to absolute time.
	ClockHz float64 `json:"clock_hz,omitempty"`
	Epoch   float64 `json:"epoch,omitempty"`
}

// normalize fills defaults and validates the scheme-independent shape.
func (sp EncodingSpec) normalize() (EncodingSpec, error) {
	if sp.Scheme == "" {
		sp.Scheme = "incremental"
	}
	sp.Scheme = strings.ToLower(sp.Scheme)
	if sp.Depth == 0 {
		sp.Depth = 4
	}
	switch sp.Scheme {
	case "explicit":
		if len(sp.Timestamps) == 0 {
			return sp, fmt.Errorf("explicit encoding needs timestamps")
		}
		sp.M = len(sp.Timestamps)
		sp.B = len(sp.Timestamps[0])
	case "binary":
		if sp.M <= 0 {
			return sp, fmt.Errorf("encoding needs m > 0")
		}
		sp.B = encoding.Binary(sp.M).B()
	case "onehot", "one-hot":
		if sp.M <= 0 {
			return sp, fmt.Errorf("encoding needs m > 0")
		}
		sp.Scheme = "onehot"
		sp.B = sp.M
	case "incremental", "random", "random-constrained":
		if sp.Scheme == "random-constrained" {
			sp.Scheme = "random"
		}
		if sp.M <= 0 || sp.B <= 0 {
			return sp, fmt.Errorf("encoding scheme %q needs m and b", sp.Scheme)
		}
	default:
		return sp, fmt.Errorf("unknown encoding scheme %q", sp.Scheme)
	}
	if sp.ClockHz < 0 {
		return sp, fmt.Errorf("clock_hz must be >= 0")
	}
	return sp, nil
}

// key renders the canonical session key. Specs that normalize equally
// share a session (and a built encoding).
func (sp EncodingSpec) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme=%s|m=%d|b=%d|d=%d|seed=%d|clock=%g|epoch=%g",
		sp.Scheme, sp.M, sp.B, sp.Depth, sp.Seed, sp.ClockHz, sp.Epoch)
	for _, ts := range sp.Timestamps {
		b.WriteByte('|')
		b.WriteString(ts)
	}
	return b.String()
}

// build constructs the encoding — the expensive step a session
// amortizes across requests.
func (sp EncodingSpec) build() (*encoding.Encoding, error) {
	switch sp.Scheme {
	case "incremental":
		return encoding.Incremental(sp.M, sp.B, sp.Depth)
	case "random":
		return encoding.RandomConstrained(sp.M, sp.B, sp.Depth, sp.Seed, 0)
	case "binary":
		return encoding.Binary(sp.M), nil
	case "onehot":
		return encoding.OneHot(sp.M), nil
	case "explicit":
		ts := make([]bitvec.Vector, len(sp.Timestamps))
		for i, s := range sp.Timestamps {
			v, err := bitvec.Parse(s)
			if err != nil {
				return nil, fmt.Errorf("timestamp %d: %w", i, err)
			}
			ts[i] = v
		}
		return encoding.FromTimestamps(ts, "explicit")
	}
	return nil, fmt.Errorf("unknown encoding scheme %q", sp.Scheme)
}

// session is the per-(m, b, encoding, ClockHz/Epoch) state shared by
// requests: the lazily built encoding plus the cost-model dispatcher
// that owns the per-backend state (decoder pair index, incremental
// warm solver). The sync.Onces make concurrent first requests build
// each exactly once.
type session struct {
	spec EncodingSpec
	obs  *obs.Registry
	once sync.Once
	enc  *encoding.Encoding
	err  error

	dispOnce sync.Once
	disp     *reconstruct.Dispatcher
	dispErr  error
}

func (s *session) encoding() (*encoding.Encoding, error) {
	s.once.Do(func() {
		// The build counter is the amortization witness the batch API
		// and tprload assert on: a batch of N jobs (or a stream of N
		// frames) on one spec must move it by exactly 1.
		s.obs.Counter(MetricEncodingBuilds).Inc()
		s.enc, s.err = s.spec.build()
	})
	return s.enc, s.err
}

// dispatcher returns the session's oracle router, building it (and the
// encoding underneath) on first use. The dispatcher is shared by every
// request on the session, so the warm incremental solver and the
// decoder's pair index amortize across the session's lifetime.
func (s *session) dispatcher(opts reconstruct.DispatchOptions) (*reconstruct.Dispatcher, error) {
	s.dispOnce.Do(func() {
		enc, err := s.encoding()
		if err != nil {
			s.dispErr = err
			return
		}
		s.disp, s.dispErr = reconstruct.NewDispatcher(enc, opts)
	})
	return s.disp, s.dispErr
}

// sessionTable is a bounded LRU of sessions keyed by the canonical
// spec. Eviction only drops the cached encoding — a returning client
// pays one rebuild, never an error.
type sessionTable struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element

	reg   *obs.Registry
	gauge *obs.Gauge
}

type sessionEntry struct {
	key  string
	sess *session
}

func newSessionTable(max int, r *obs.Registry) *sessionTable {
	return &sessionTable{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
		reg:   r,
		gauge: r.Gauge(MetricSessions),
	}
}

// get returns the session for the normalized spec, creating it on
// first use.
func (t *sessionTable) get(sp EncodingSpec) *session {
	key := sp.key()
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[key]; ok {
		t.ll.MoveToFront(el)
		return el.Value.(*sessionEntry).sess
	}
	sess := &session{spec: sp, obs: t.reg}
	t.items[key] = t.ll.PushFront(&sessionEntry{key: key, sess: sess})
	// Eviction only forgets the table entry: requests (a batch mid-
	// flight, a live stream) that already hold the *session keep using
	// it — its encoding is never rebuilt under them. A returning client
	// pays one rebuild, never an error.
	for t.ll.Len() > t.max {
		oldest := t.ll.Back()
		t.ll.Remove(oldest)
		delete(t.items, oldest.Value.(*sessionEntry).key)
	}
	t.gauge.Set(int64(t.ll.Len()))
	return sess
}
